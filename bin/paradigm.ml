(* paradigm — command-line driver for the mixed task/data-parallelism
   compilation pipeline.

   Subcommands:
     graph      print an MDG (ASCII or Graphviz DOT)
     fit        calibrate cost-model parameters against the machine
     allocate   solve the convex allocation problem
     schedule   allocate + run the PSA, print the schedule
     simulate   full pipeline + MPMD execution on the simulated machine
     compile    parse a matrix program from a file and run the pipeline *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared argument handling                                            *)
(* ------------------------------------------------------------------ *)

type machine_kind = Cm5 | Ideal

let machine_conv =
  let parse = function
    | "cm5" -> Ok Cm5
    | "ideal" -> Ok Ideal
    | s -> Error (`Msg (Printf.sprintf "unknown machine %S (cm5|ideal)" s))
  in
  let print fmt = function
    | Cm5 -> Format.fprintf fmt "cm5"
    | Ideal -> Format.fprintf fmt "ideal"
  in
  Arg.conv (parse, print)

let machine_arg =
  let doc =
    "Simulated machine: $(b,cm5) (CM-5 constants with realistic \
     perturbations) or $(b,ideal) (cost models are exact)."
  in
  Arg.(value & opt machine_conv Cm5 & info [ "machine" ] ~docv:"MACHINE" ~doc)

let ground_truth = function
  | Cm5 -> Machine.Ground_truth.cm5_like ()
  | Ideal -> Machine.Ground_truth.ideal ()

let fail_msg fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("paradigm: " ^ msg);
      exit 1)
    fmt

let load_program ?optimise spec =
  match Frontend.Loader.load ?optimise spec with
  | Ok p -> p
  | Error (`Msg msg) -> fail_msg "%s" msg

let program_arg =
  let doc =
    "Program to compile: $(b,complex)[:N], $(b,strassen)[:N], \
     $(b,strassen2)[:N] (two recursion levels), $(b,example), or a path to a \
     matrix-program source file."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let procs_arg =
  let doc = "Number of processors in the target machine." in
  Arg.(value & opt int 64 & info [ "p"; "procs" ] ~docv:"PROCS" ~doc)

let optimise_arg =
  let doc =
    "Run the front-end optimiser (CSE + dead-code elimination) before \
     lowering.  Only affects programs loaded from source files."
  in
  Arg.(value & flag & info [ "O"; "optimise" ] ~doc)

let calibrated_params gt (spec : Frontend.Loader.t) =
  if spec.kernels = [] then Costmodel.Params.cm5 ()
  else
    let params, _, _ =
      Machine.Measure.calibrate gt ~procs:[ 1; 2; 4; 8; 16; 32; 64 ] spec.kernels
    in
    params

let check_procs procs =
  if procs < 1 then fail_msg "processor count must be >= 1"

(* All pipeline failures are typed ({!Core.Pipeline.error}); the CLI
   boundary renders them and exits 1. *)
let run_plan ~config params graph ~procs =
  match Core.Pipeline.plan ~config (Core.Pipeline.request params graph ~procs) with
  | Ok plan -> plan
  | Error e -> fail_msg "%s" (Core.Pipeline.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Telemetry plumbing: --trace FILE / --metrics                        *)
(* ------------------------------------------------------------------ *)

let trace_arg =
  let doc =
    "Write a Chrome trace-event JSON telemetry file to $(docv): pipeline \
     phase spans, solver convergence counters, PSA rounding/placement \
     events and (for $(b,simulate)) the machine event timeline, all on one \
     timeline.  Open it in chrome://tracing or Perfetto."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "After the run, print a summary table of the telemetry stream: event \
     counts, total span times and final counter samples."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

type telemetry = { obs : Obs.t; finish : unit -> unit }

(* With neither flag the sink is [Obs.null] and the instrumented
   pipeline runs at full speed. *)
let telemetry ~trace ~metrics =
  if trace = None && not metrics then
    { obs = Obs.null; finish = (fun () -> ()) }
  else begin
    let recorder = Obs.Recorder.create () in
    let obs = Obs.Recorder.sink recorder in
    Obs.process_name obs ~pid:0 "paradigm compiler";
    let finish () =
      (match trace with
      | Some path -> (
          match Obs.Chrome_format.save path (Obs.Recorder.events recorder) with
          | () -> Printf.printf "\ntelemetry trace written to %s\n" path
          | exception Sys_error msg -> fail_msg "cannot write trace: %s" msg)
      | None -> ());
      if metrics then begin
        print_newline ();
        print_string
          (Obs.Summary.to_string
             (Obs.Summary.of_events (Obs.Recorder.events recorder)))
      end
    in
    { obs; finish }
  end

(* ------------------------------------------------------------------ *)
(* graph                                                               *)
(* ------------------------------------------------------------------ *)

let graph_cmd =
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of ASCII.")
  in
  let run spec dot optimise =
    let p = load_program ~optimise spec in
    Printf.printf "# %s: %s\n" p.name (Mdg.Render.summary p.graph);
    if dot then print_string (Mdg.Render.to_dot p.graph)
    else print_string (Mdg.Render.to_ascii p.graph)
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Print a program's macro dataflow graph.")
    Term.(const run $ program_arg $ dot $ optimise_arg)

(* ------------------------------------------------------------------ *)
(* fit                                                                 *)
(* ------------------------------------------------------------------ *)

let fit_cmd =
  let run machine =
    let gt = ground_truth machine in
    Printf.printf "machine: %s\n\n" (Machine.Ground_truth.describe gt);
    let kernels =
      [
        Mdg.Graph.Matrix_init 64;
        Mdg.Graph.Matrix_add 64;
        Mdg.Graph.Matrix_multiply 64;
        Mdg.Graph.Matrix_init 128;
      ]
    in
    let params, qualities, tf =
      Machine.Measure.calibrate gt ~procs:[ 1; 2; 4; 8; 16; 32; 64 ] kernels
    in
    Format.printf "processing parameters (training-sets fit):@.";
    List.iter
      (fun (kernel, (q : Costmodel.Fit.quality)) ->
        Format.printf "  %a : %a  (r^2 = %.5f)@." Mdg.Graph.pp_kernel kernel
          Costmodel.Params.pp_processing
          (Costmodel.Params.processing params kernel)
          q.r_squared)
      qualities;
    Format.printf "@.transfer parameters:@.  %a@." Costmodel.Params.pp_transfer
      tf.params
  in
  Cmd.v
    (Cmd.info "fit"
       ~doc:"Calibrate cost-model parameters against the simulated machine.")
    Term.(const run $ machine_arg)

(* ------------------------------------------------------------------ *)
(* allocate                                                            *)
(* ------------------------------------------------------------------ *)

let allocate_cmd =
  let run spec procs machine trace metrics optimise =
    check_procs procs;
    let p = load_program ~optimise spec in
    let gt = ground_truth machine in
    let params = calibrated_params gt p in
    let g = Mdg.Graph.normalise p.graph in
    let tel = telemetry ~trace ~metrics in
    let r = Core.Allocation.solve ~obs:tel.obs params g ~procs in
    Printf.printf "program        : %s\n" p.name;
    Printf.printf "processors     : %d\n" procs;
    Printf.printf "Phi            : %.6f s\n" r.phi;
    Printf.printf "  average bound: %.6f s\n" r.average;
    Printf.printf "  critical path: %.6f s\n" r.critical_path;
    Printf.printf "solver         : %d iterations, converged = %b\n\n"
      r.solver.iterations r.solver.converged;
    Array.iteri
      (fun i a ->
        Printf.printf "  node %2d %-26s p_i = %7.3f\n" i
          (Mdg.Graph.node g i).label a)
      r.alloc;
    tel.finish ()
  in
  Cmd.v
    (Cmd.info "allocate"
       ~doc:"Solve the convex-programming processor allocation (paper Sec. 2).")
    Term.(
      const run $ program_arg $ procs_arg $ machine_arg $ trace_arg
      $ metrics_arg $ optimise_arg)

(* ------------------------------------------------------------------ *)
(* schedule                                                            *)
(* ------------------------------------------------------------------ *)

let schedule_cmd =
  let pb =
    let doc = "Processor bound PB (power of two). Default: Corollary 1." in
    Arg.(value & opt (some int) None & info [ "pb" ] ~docv:"PB" ~doc)
  in
  let run spec procs machine pb trace metrics optimise =
    check_procs procs;
    let p = load_program ~optimise spec in
    let gt = ground_truth machine in
    let params = calibrated_params gt p in
    let tel = telemetry ~trace ~metrics in
    let psa_options =
      match pb with
      | None -> Core.Psa.default_options
      | Some pb -> { Core.Psa.default_options with pb = Core.Psa.Fixed pb }
    in
    let config =
      Core.Pipeline.(
        default_config |> with_psa_options psa_options |> with_obs tel.obs)
    in
    let plan = run_plan ~config params p.graph ~procs in
    Printf.printf "program : %s on %d processors\n" p.name procs;
    Printf.printf "Phi     : %.6f s\n" (Core.Pipeline.phi plan);
    Printf.printf "T_psa   : %.6f s  (PB = %d)\n\n"
      (Core.Pipeline.predicted_time plan)
      plan.psa.pb;
    print_string
      (Core.Gantt.allocation_table plan.graph ~real:plan.allocation.alloc
         ~rounded:plan.psa.rounded_alloc);
    print_newline ();
    print_string (Core.Gantt.of_schedule plan.graph (Core.Pipeline.schedule plan));
    (match Core.Schedule.validate params plan.graph plan.psa.schedule with
    | Ok () -> print_endline "schedule validates: OK"
    | Error msgs ->
        print_endline "schedule validation FAILED:";
        List.iter (Printf.printf "  %s\n") msgs;
        exit 1);
    tel.finish ()
  in
  Cmd.v
    (Cmd.info "schedule"
       ~doc:"Allocate and run the Prioritised Scheduling Algorithm (paper Sec. 3).")
    Term.(
      const run $ program_arg $ procs_arg $ machine_arg $ pb $ trace_arg
      $ metrics_arg $ optimise_arg)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let simulate_cmd =
  let gantt =
    Arg.(
      value & flag
      & info [ "gantt" ] ~doc:"Print the simulated activity Gantt chart.")
  in
  let trace_json =
    let doc =
      "Write a Chrome trace-event JSON of the machine execution only to \
       $(docv) (see $(b,--trace) for the full pipeline telemetry)."
    in
    Arg.(value & opt (some string) None & info [ "trace-json" ] ~docv:"FILE" ~doc)
  in
  let run spec procs machine gantt trace trace_json metrics optimise =
    check_procs procs;
    let p = load_program ~optimise spec in
    let gt = ground_truth machine in
    let params = calibrated_params gt p in
    let tel = telemetry ~trace ~metrics in
    let config = Core.Pipeline.(default_config |> with_obs tel.obs) in
    let plan = run_plan ~config params p.graph ~procs in
    let mpmd = Core.Pipeline.simulate gt plan in
    let spmd = Core.Pipeline.simulate_spmd ~obs:tel.obs gt p.graph ~procs in
    let serial = Core.Pipeline.serial_time gt p.graph in
    let c =
      Core.Pipeline.comparison_of ~procs ~serial
        ~predicted:(Core.Pipeline.predicted_time plan)
        ~phi:(Core.Pipeline.phi plan) ~mpmd_time:mpmd.finish_time
        ~spmd_time:spmd.finish_time
    in
    Printf.printf "program            : %s on %d processors\n" p.name procs;
    Printf.printf "serial time        : %.6f s\n" c.serial;
    Printf.printf "MPMD (this paper)  : %.6f s   speedup %6.2f  efficiency %5.1f%%\n"
      c.mpmd_time c.mpmd_speedup (100.0 *. c.mpmd_efficiency);
    Printf.printf "SPMD (baseline)    : %.6f s   speedup %6.2f  efficiency %5.1f%%\n"
      c.spmd_time c.spmd_speedup (100.0 *. c.spmd_efficiency);
    Printf.printf "model prediction   : %.6f s   (%.1f%% off actual)\n" c.predicted
      (100.0 *. (c.predicted -. c.mpmd_time) /. c.mpmd_time);
    Printf.printf "convex optimum Phi : %.6f s\n" c.phi;
    if gantt then begin
      print_newline ();
      print_string (Core.Gantt.of_sim mpmd)
    end;
    (match trace_json with
    | Some path ->
        Machine.Trace_export.save ~process_name:p.name path mpmd;
        Printf.printf "\nChrome trace written to %s\n" path
    | None -> ());
    tel.finish ()
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the compiled MPMD program and the SPMD baseline on the machine.")
    Term.(
      const run $ program_arg $ procs_arg $ machine_arg $ gantt $ trace_arg
      $ trace_json $ metrics_arg $ optimise_arg)

(* ------------------------------------------------------------------ *)
(* compile                                                             *)
(* ------------------------------------------------------------------ *)

let compile_cmd =
  let run spec procs machine trace metrics optimise =
    check_procs procs;
    let p = load_program ~optimise spec in
    let gt = ground_truth machine in
    let params = calibrated_params gt p in
    let tel = telemetry ~trace ~metrics in
    let config = Core.Pipeline.(default_config |> with_obs tel.obs) in
    let plan = run_plan ~config params p.graph ~procs in
    let prog = Core.Codegen.mpmd gt plan.graph (Core.Pipeline.schedule plan) in
    Printf.printf "# %s compiled for %d processors\n" p.name procs;
    Printf.printf "# Phi = %.6f s, T_psa = %.6f s\n\n" (Core.Pipeline.phi plan)
      (Core.Pipeline.predicted_time plan);
    Format.printf "%a@." Machine.Program.pp prog;
    tel.finish ()
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Print the generated per-processor MPMD program (paper Sec. 1.2 step 5).")
    Term.(
      const run $ program_arg $ procs_arg $ machine_arg $ trace_arg
      $ metrics_arg $ optimise_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let port =
    let doc = "TCP port to listen on (0 picks an ephemeral port)." in
    Arg.(value & opt int 7464 & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let addr =
    let doc = "Address to bind." in
    Arg.(value & opt string "127.0.0.1" & info [ "addr" ] ~docv:"ADDR" ~doc)
  in
  let workers =
    let doc = "Worker-domain pool size." in
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let max_pending =
    let doc =
      "Bound on admitted connections waiting for a worker; beyond \
       workers+$(docv) in the system, new connections are shed with a typed \
       'overloaded' reply and a retry-after hint instead of queueing."
    in
    Arg.(value & opt int 64 & info [ "max-pending" ] ~docv:"N" ~doc)
  in
  let run port addr workers max_pending machine trace metrics =
    if workers < 1 then fail_msg "worker count must be >= 1";
    if max_pending < 0 then fail_msg "max-pending must be >= 0";
    let gt = ground_truth machine in
    let tel = telemetry ~trace ~metrics in
    let options =
      {
        Server.Daemon.default_options with
        addr;
        port;
        workers;
        max_pending;
        config = Core.Pipeline.(default_config |> with_obs tel.obs);
        default_params =
          lazy
            (let params, _, _ =
               Machine.Measure.calibrate gt
                 ~procs:[ 1; 2; 4; 8; 16; 32; 64 ]
                 [
                   Mdg.Graph.Matrix_init 64;
                   Mdg.Graph.Matrix_add 64;
                   Mdg.Graph.Matrix_multiply 64;
                   Mdg.Graph.Matrix_init 128;
                 ]
             in
             params);
      }
    in
    let srv =
      try Server.Daemon.start ~options ()
      with Unix.Unix_error (err, _, _) ->
        fail_msg "cannot listen on %s:%d: %s" addr port
          (Unix.error_message err)
    in
    Printf.printf "paradigm plan server listening on %s:%d (%d workers)\n%!"
      addr (Server.Daemon.port srv) workers;
    let stop_requested = Atomic.make false in
    let request_stop _ = Atomic.set stop_requested true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    while not (Atomic.get stop_requested) do
      Unix.sleepf 0.2
    done;
    prerr_endline "shutting down (draining in-flight requests)...";
    Server.Daemon.stop srv;
    let s = Server.Daemon.stats srv in
    let srv_stats = Server.Daemon.server_stats srv in
    Printf.printf
      "served %d requests on %d connections (%d shed); tape cache %d hits / \
       %d misses; warm cache %d exact + %d shape hits / %d misses; coalesced \
       %d requests onto %d solves\n"
      (Server.Daemon.requests_served srv)
      (Server.Daemon.connections_accepted srv)
      (Server.Daemon.connections_shed srv)
      s.tape_hits s.tape_misses s.warm_hits s.warm_shape_hits s.warm_misses
      s.coalesce_hits s.coalesce_leaders;
    if metrics then begin
      (* Per-op latency histogram — the serving-side counters the
         telemetry summary cannot see. *)
      print_string "request latency (ms buckets:";
      Array.iter (fun b -> Printf.printf " <=%g" b) srv_stats.bounds_ms;
      print_string " overflow)\n";
      List.iter
        (fun (l : Server.Protocol.op_latency) ->
          if Array.exists (fun c -> c > 0) l.buckets then begin
            Printf.printf "  %-6s" l.op;
            Array.iter (fun c -> Printf.printf " %6d" c) l.buckets;
            print_newline ()
          end)
        srv_stats.latency
    end;
    tel.finish ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the concurrent plan server (newline-delimited JSON over TCP; \
          see the README's Serving section for the protocol).")
    Term.(
      const run $ port $ addr $ workers $ max_pending $ machine_arg $ trace_arg
      $ metrics_arg)

(* ------------------------------------------------------------------ *)

let main =
  let doc =
    "Mixed functional+data parallelism via convex programming (ICPP'94 \
     reproduction)"
  in
  Cmd.group
    (Cmd.info "paradigm" ~version:"1.0.0" ~doc)
    [
      graph_cmd;
      fit_cmd;
      allocate_cmd;
      schedule_cmd;
      simulate_cmd;
      compile_cmd;
      serve_cmd;
    ]

let () =
  try exit (Cmd.eval main) with
  | Failure msg ->
      prerr_endline ("paradigm: " ^ msg);
      exit 1
  | Core.Pipeline.Error e ->
      prerr_endline ("paradigm: " ^ Core.Pipeline.error_to_string e);
      exit 1

(* Properties of the ISSUE 7 solver fast paths:

   - the parallel level-scheduled tape sweeps (eval / eval_grad /
     eval_hvp over a domain pool) are bit-identical to the serial
     sweeps, across random DAGs wide enough to fan out and across
     domain counts;
   - the masked active-face HVP equals the dense HVP on the free
     coordinates;
   - Jacobi-preconditioned Newton-CG reaches the same optimum as plain
     CG (the preconditioner changes the path, not the destination). *)

open Convex
module Vec = Numeric.Vec
module Pool = Numeric.Domain_pool
module G = Mdg.Graph

let nvars = 4

(* Wide random DAGs: fat sums and maxima of posynomial terms so the
   level schedule actually fans (par_threshold is 64 slots per level);
   narrow DAGs would run on participant 0 alone and the property would
   hold vacuously. *)
let wide_expr_gen =
  let open QCheck.Gen in
  let term =
    let* c = float_range 0.1 5.0 in
    let* es =
      list_size (int_range 1 3)
        (pair (int_range 0 (nvars - 1)) (float_range (-2.0) 2.0))
    in
    return (Expr.term ~coeff:c ~expts:es)
  in
  let fat inner =
    frequency
      [
        ( 3,
          let* xs = list_size (int_range 60 120) inner in
          return (Expr.sum xs) );
        ( 3,
          let* xs = list_size (int_range 60 120) inner in
          return (Expr.max_ xs) );
        ( 1,
          let* s = float_range 0.1 2.0 in
          let* xs = list_size (int_range 60 120) inner in
          return (Expr.scale s (Expr.max_ xs)) );
      ]
  in
  let* layer1 = fat term in
  let* layer2 = fat term in
  let* mix = fat term in
  return (Expr.sum [ layer1; layer2; mix ])

let point_gen = QCheck.Gen.(array_size (return nvars) (float_range (-1.2) 1.2))

let dir_gen = QCheck.Gen.(array_size (return nvars) (float_range (-1.0) 1.0))

let mu_gen = QCheck.Gen.oneofl [ 0.0; 0.05; 1.0 ]

let case_gen =
  QCheck.(make Gen.(quad wide_expr_gen point_gen dir_gen mu_gen))

(* One pool per domain count for the whole suite: spawning domains per
   QCheck sample would dominate the run. *)
let pool_of = Hashtbl.create 4

let pool nd =
  match Hashtbl.find_opt pool_of nd with
  | Some p -> p
  | None ->
      let p = Pool.create ~size:nd in
      Hashtbl.add pool_of nd p;
      p

let bit_equal a b = Array.for_all2 (fun x y -> Float.equal x y) a b

let prop_parallel_bit_identical =
  QCheck.Test.make
    ~name:"parallel tape sweeps bit-identical to serial (2-4 domains)"
    ~count:30 case_gen
    (fun (e, x, dx, mu) ->
      let t = Tape.compile e in
      let ws = Tape.create_workspace t in
      let ws' = Tape.create_workspace t in
      let g = Vec.create nvars 0.0 and g' = Vec.create nvars 0.0 in
      let h = Vec.create nvars 0.0 and h' = Vec.create nvars 0.0 in
      let v_eval = Tape.eval ~mu t ws x in
      let v_grad = Tape.eval_grad ~mu t ws ~x ~grad:g in
      let v_hvp = Tape.eval_hvp ~mu t ws ~x ~dx ~grad:g ~hvp:h in
      List.for_all
        (fun nd ->
          let p = pool nd in
          let ve = Tape.eval_pool ~mu t p ws' x in
          let vg = Tape.eval_grad_pool ~mu t p ws' ~x ~grad:g' in
          let ok_g = Float.equal v_grad vg && bit_equal g g' in
          let vh = Tape.eval_hvp_pool ~mu t p ws' ~x ~dx ~grad:g' ~hvp:h' in
          let ok_h =
            Float.equal v_hvp vh && bit_equal g g' && bit_equal h h'
          in
          if not (Float.equal v_eval ve && ok_g && ok_h) then
            QCheck.Test.fail_reportf
              "parallel sweep diverged at nd=%d (mu=%g, slots=%d)" nd mu
              (Tape.num_slots t)
          else true)
        [ 2; 3; 4 ])

let prop_masked_matches_dense =
  QCheck.Test.make ~name:"masked HVP = dense HVP on free coordinates"
    ~count:100
    QCheck.(
      make
        Gen.(
          quad wide_expr_gen point_gen
            (pair dir_gen (array_size (return nvars) bool))
            mu_gen))
    (fun (e, x, (dx0, free), mu) ->
      let t = Tape.compile e in
      (* The Newton-CG caller's contract: tangent directions live in
         the free subspace. *)
      let dx = Array.mapi (fun i d -> if free.(i) then d else 0.0) dx0 in
      let dense_ws = Tape.create_workspace t in
      let gd = Vec.create nvars 0.0 and hd = Vec.create nvars 0.0 in
      ignore (Tape.eval_hvp ~mu t dense_ws ~x ~dx ~grad:gd ~hvp:hd);
      let ws = Tape.create_workspace t in
      let g = Vec.create nvars 0.0 and h = Vec.create nvars 0.0 in
      ignore (Tape.eval_grad ~mu t ws ~x ~grad:g);
      Tape.hvp_mask ~mu t ws ~free;
      Tape.hvp_masked t ws ~x ~dx ~hvp:h;
      let ok = ref true in
      for i = 0 to nvars - 1 do
        if free.(i) && not (Float.equal h.(i) hd.(i)) then ok := false
      done;
      if not !ok then
        QCheck.Test.fail_reportf
          "masked HVP diverged from dense (mu=%g, active=%d/%d)" mu
          (Tape.mask_active ws) (Tape.num_slots t)
      else true)

(* Preconditioning changes the CG iterates, not where Newton converges:
   on random {e smooth} objectives (fat sums of posynomial terms, no
   max kinks) over a box, the solver with and without the Jacobi
   preconditioner must land on the same optimum to 1e-8 relative.

   Smoothness matters: objectives with [max_] terms end in an exact
   (mu = 0) stage whose Armijo search stalls somewhere in a kink
   valley, and the stall point is path-dependent — measured on this
   solver, two runs of the {e same} unpreconditioned configuration from
   starts 0.01 apart already disagree by up to ~2e-4 relative there.
   On smooth instances both variants genuinely reach stationarity, so
   the comparison is sharp. *)
let smooth_expr_gen =
  let open QCheck.Gen in
  let term =
    let* c = float_range 0.1 5.0 in
    let* es =
      list_size (int_range 1 3)
        (pair (int_range 0 (nvars - 1)) (float_range (-2.0) 2.0))
    in
    return (Expr.term ~coeff:c ~expts:es)
  in
  let* xs = list_size (int_range 40 120) term in
  let* s = float_range 0.5 2.0 in
  return (Expr.scale s (Expr.sum xs))

let prop_pcg_same_optimum =
  QCheck.Test.make
    ~name:"preconditioned CG reaches the plain-CG optimum (1e-8)"
    ~count:25
    QCheck.(make Gen.(pair smooth_expr_gen (oneofl [ 0.5; 1.0; 2.0 ])))
    (fun (e, span) ->
      let lo = Array.make nvars (-.span) and hi = Array.make nvars span in
      let prob = { Solver.objective = e; lo; hi } in
      (* A tight step tolerance so the comparison is not dominated by
         the stopping slack: at the default 1e-6 both solves stop
         anywhere in an O(tol)-wide neighbourhood. *)
      let solve precondition =
        Solver.solve
          ~options:{ Solver.default_options with precondition; tol = 1e-10 }
          prob
      in
      let pc = solve true in
      let plain = solve false in
      let tol = 1e-8 *. (1.0 +. Float.abs plain.Solver.value) in
      if Float.abs (pc.Solver.value -. plain.Solver.value) > tol then
        QCheck.Test.fail_reportf
          "optima differ: preconditioned %.12g vs plain %.12g (span %g)"
          pc.Solver.value plain.Solver.value span
      else true)

(* Concurrent solves (the plan server's worker domains) must not share
   a pool: [acquire] hands simultaneous callers distinct pools, each of
   which runs barrier-synchronised jobs correctly while the other is
   mid-job.  Under the old process-wide per-size singleton this
   interleaving deadlocked (parked workers only ever observe the
   newest epoch) or interleaved epochs into wrong sweeps. *)
let test_acquire_concurrent () =
  let gate = Atomic.make 0 in
  let worker () =
    let p = Pool.acquire ~size:2 in
    (* Rendezvous so both domains demonstrably hold a pool at once. *)
    Atomic.incr gate;
    while Atomic.get gate < 2 do
      Domain.cpu_relax ()
    done;
    let bar = Pool.barrier (Pool.size p) in
    let acc = Array.make 2 0 in
    for _ = 1 to 100 do
      Pool.run p (fun di ->
          acc.(di) <- acc.(di) + 1;
          Pool.await bar;
          acc.(di) <- acc.(di) + 1;
          Pool.await bar)
    done;
    Pool.release p;
    (p, acc)
  in
  let d = Domain.spawn worker in
  let p0, a = worker () in
  let p1, b = Domain.join d in
  Alcotest.(check bool) "concurrent acquires get distinct pools" true (p0 != p1);
  Alcotest.(check (array int)) "caller-domain jobs all ran" [| 200; 200 |] a;
  Alcotest.(check (array int)) "spawned-domain jobs all ran" [| 200; 200 |] b

(* Re-entering [run] on a pool that is already mid-job must refuse
   loudly instead of corrupting the in-flight job's epoch state. *)
let test_run_reentry_refused () =
  let p = Pool.acquire ~size:2 in
  (try
     Pool.run p (fun di -> if di = 0 then Pool.run p (fun _ -> ()));
     Alcotest.fail "re-entrant run should raise Invalid_argument"
   with Invalid_argument _ -> ());
  (* The refusal must leave the pool reusable. *)
  let hits = Atomic.make 0 in
  Pool.run p (fun _ -> Atomic.incr hits);
  Alcotest.(check int) "pool survives the refused re-entry" 2
    (Atomic.get hits);
  Pool.release p

(* A participant that raises mid-job poisons the barrier (the tape
   sweeps follow the same protocol), so its siblings drain instead of
   waiting forever — and [run] re-raises the original error, not a
   sibling's [Barrier_poisoned] echo. *)
let test_job_exception_propagates () =
  let p = Pool.acquire ~size:3 in
  let bar = Pool.barrier (Pool.size p) in
  (try
     Pool.run p (fun di ->
         try
           if di = 1 then failwith "boom";
           Pool.await bar;
           Pool.await bar
         with exn ->
           Pool.poison bar;
           raise exn);
     Alcotest.fail "the job's exception should re-raise from run"
   with Failure msg -> Alcotest.(check string) "original error wins" "boom" msg);
  (* A poisoned barrier stays poisoned; a fresh one works. *)
  (try
     Pool.await bar;
     Alcotest.fail "poisoned barrier should refuse further awaits"
   with Pool.Barrier_poisoned -> ());
  let bar' = Pool.barrier (Pool.size p) in
  let hits = Atomic.make 0 in
  Pool.run p (fun _ ->
      Pool.await bar';
      Atomic.incr hits);
  Alcotest.(check int) "pool and a fresh barrier still work" 3
    (Atomic.get hits);
  Pool.release p

(* The plan-server scenario the pool free list exists for: several
   domains each solving a problem whose tape crosses the parallel
   cutoff (1024 slots), with [options.domains > 1] — every solve must
   check out its own pool and land on the same optimum.  (The solver is
   deterministic, so the values must agree bit-for-bit across the
   racing domains.) *)
let test_concurrent_big_tape_solves () =
  let terms =
    List.init 1400 (fun i ->
        Expr.term
          ~coeff:(1.0 +. float_of_int (i mod 7))
          ~expts:
            [ (i mod nvars, if i mod 2 = 0 then 1.0 else -1.0) ])
  in
  let e = Expr.sum terms in
  let lo = Array.make nvars (-1.0) and hi = Array.make nvars 1.0 in
  let prob = { Solver.objective = e; lo; hi } in
  let options = { Solver.default_options with domains = 2 } in
  let solve () = (Solver.solve ~options prob).Solver.value in
  let ds = List.init 3 (fun _ -> Domain.spawn solve) in
  let v0 = solve () in
  let vs = List.map Domain.join ds in
  List.iteri
    (fun i v ->
      if not (Float.equal v v0) then
        Alcotest.failf "racing solve %d diverged: %.17g vs %.17g" i v v0)
    vs

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_parallel_bit_identical;
      prop_masked_matches_dense;
      prop_pcg_same_optimum;
    ]
  @ [
      Alcotest.test_case "concurrent big-tape solves" `Quick
        test_concurrent_big_tape_solves;
      Alcotest.test_case "concurrent acquires get distinct pools" `Quick
        test_acquire_concurrent;
      Alcotest.test_case "re-entrant run refused" `Quick
        test_run_reentry_refused;
      Alcotest.test_case "job exception poisons barrier and propagates" `Quick
        test_job_exception_propagates;
    ]

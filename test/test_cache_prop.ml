(* Properties of the plan caches (ISSUE 6 satellite):

   - warm-serving soundness: planning a perturbed-constant variant of a
     cached shape (a warm-start shape hit) never yields a Phi worse
     than the cold solve of the same problem beyond a 1e-6 relative
     guard band;
   - key soundness: structurally distinct random MDGs never collide on
     [Mdg.Graph.structural_hash];
   - procs-aware warm starts (ISSUE 7): a known shape at a new machine
     size is seeded from the nearest-procs optimum, rescaled, and the
     result stays within the warm-serving guard band;
   - the [Core.Lru] recency/eviction contract behind both caches.

   Random graphs come from the shared Generators module and shrink
   toward fewer layers / smaller width / smaller seeds. *)

module G = Mdg.Graph
module P = Core.Pipeline

let base_params = Generators.synth_params
let perturbed = Generators.perturbed

(* A layered case paired with a transfer-constant scale drawn from a
   small menu; shrinking reduces the graph and leaves the scale
   alone (the scale is not what makes a counterexample large). *)
let scaled_case =
  let gen =
    QCheck.Gen.(
      let* seed = int_bound 10_000 in
      let* layers = int_range 1 3 in
      let* width = int_range 1 3 in
      let* scale = oneofl [ 0.9; 0.95; 1.05; 1.1 ] in
      return ({ Generators.seed; layers; width }, scale))
  in
  let print (c, scale) =
    Printf.sprintf "%s, scale=%g" (Generators.layered_print c) scale
  in
  let shrink (c, scale) yield =
    Generators.layered_shrink c (fun c -> yield (c, scale))
  in
  QCheck.make ~print ~shrink gen

let plan_phi ?config req =
  match P.plan ?config req with
  | Ok p -> p
  | Error e -> QCheck.Test.fail_reportf "plan failed: %s" (P.error_to_string e)

(* Cold solve vs. the warm-start shape-hit path on the same perturbed
   problem.  The warm path may legitimately find a *better* point (it
   starts at a near-optimum); it must never be worse than the cold
   solve beyond the guard band. *)
let prop_warm_hit_phi_sound =
  QCheck.Test.make ~name:"warm shape hit: Phi within 1e-6 of cold solve"
    ~count:(Generators.count 15) scaled_case
    (fun (case, scale) ->
      let g = Generators.mdg_of_layered case in
      let seed = case.Generators.seed in
      let params = base_params () in
      let params' = perturbed ~scale params in
      let procs = 16 in
      let cold = plan_phi (P.request params' g ~procs) in
      let cache = Core.Plan_cache.create () in
      let config = P.(default_config |> with_cache cache) in
      (* Seed the cache with the base-constant optimum... *)
      ignore (plan_phi ~config (P.request params g ~procs));
      (* ...then plan the perturbed variant through it. *)
      let warm = plan_phi ~config (P.request params' g ~procs) in
      if warm.cache.warm <> P.Shape_hit then
        QCheck.Test.fail_reportf "expected a shape hit, got %s"
          (match warm.cache.warm with
          | P.Hit -> "exact hit"
          | P.Miss -> "miss"
          | P.Off -> "off"
          | P.Shape_hit -> "shape hit");
      let phi_cold = P.phi cold and phi_warm = P.phi warm in
      if phi_warm > phi_cold +. (1e-6 *. (1.0 +. Float.abs phi_cold)) then
        QCheck.Test.fail_reportf
          "warm Phi %.12g worse than cold Phi %.12g (seed %d, scale %g)"
          phi_warm phi_cold seed scale;
      true)

(* An exact-key hit returns the stored result: Phi must be identical
   bit-for-bit to the first solve's. *)
let prop_exact_hit_phi_identical =
  QCheck.Test.make ~name:"warm exact hit: Phi identical to first solve"
    ~count:(Generators.count 15)
    (Generators.layered ~max_layers:3 ~max_width:3 ())
    (fun case ->
      let g = Generators.mdg_of_layered case in
      let params = base_params () in
      let cache = Core.Plan_cache.create () in
      let config = P.(default_config |> with_cache cache) in
      let first = plan_phi ~config (P.request params g ~procs:16) in
      let again = plan_phi ~config (P.request params g ~procs:16) in
      again.cache.warm = P.Hit
      && again.cache.solve_skipped
      && P.phi again = P.phi first)

(* A known shape requested at a new machine size: the cache must
   answer with a rescaled nearest-procs seed (a procs hit, surfaced as
   a shape hit by the pipeline), and the planned Phi must stay within
   the warm-serving guard band of the cold solve at that size. *)
let prop_procs_hit_phi_sound =
  QCheck.Test.make ~name:"warm procs hit: rescaled seed, Phi within 1e-6"
    ~count:(Generators.count 10)
    (Generators.layered ~max_layers:3 ~max_width:3 ())
    (fun case ->
      let g = Generators.mdg_of_layered case in
      let seed = case.Generators.seed in
      let params = base_params () in
      let cold = plan_phi (P.request params g ~procs:32) in
      let cache = Core.Plan_cache.create () in
      let config = P.(default_config |> with_cache cache) in
      ignore (plan_phi ~config (P.request params g ~procs:16));
      let warm = plan_phi ~config (P.request params g ~procs:32) in
      let stats = Core.Plan_cache.stats cache in
      if stats.warm_procs_hits <> 1 then
        QCheck.Test.fail_reportf "expected 1 procs hit, stats say %d"
          stats.warm_procs_hits;
      if warm.cache.warm <> P.Shape_hit then
        QCheck.Test.fail_reportf "expected the procs seed to surface as a \
                                  shape hit";
      let phi_cold = P.phi cold and phi_warm = P.phi warm in
      if phi_warm > phi_cold +. (1e-6 *. (1.0 +. Float.abs phi_cold)) then
        QCheck.Test.fail_reportf
          "procs-warm Phi %.12g worse than cold Phi %.12g (seed %d)" phi_warm
          phi_cold seed;
      true)

(* The LRU under the caches: a touched entry survives an insertion
   past the capacity, the least recently used entry does not (a FIFO
   would evict the touched one). *)
let test_lru_eviction_order () =
  let l = Core.Lru.create 3 in
  List.iter (fun k -> ignore (Core.Lru.set l k (10 * k))) [ 1; 2; 3 ];
  (* Touch 1: recency now 1, 3, 2. *)
  Alcotest.(check (option int)) "find touches" (Some 10) (Core.Lru.find l 1);
  (* peek must not touch: 2 stays least recent. *)
  Alcotest.(check (option int)) "peek" (Some 20) (Core.Lru.peek l 2);
  let evicted = Core.Lru.set l 4 40 in
  Alcotest.(check (option (pair int int))) "evicts the LRU entry (2)"
    (Some (2, 20)) evicted;
  Alcotest.(check (option int)) "touched entry survives" (Some 10)
    (Core.Lru.peek l 1);
  Alcotest.(check (list (pair int int))) "recency order"
    [ (4, 40); (1, 10); (3, 30) ]
    (Core.Lru.to_list l);
  (* Replacing a binding refreshes its recency. *)
  ignore (Core.Lru.set l 3 33);
  let evicted = Core.Lru.set l 5 50 in
  Alcotest.(check (option (pair int int))) "replace refreshed 3, so 1 goes"
    (Some (1, 10)) evicted;
  Alcotest.(check int) "length stays at capacity" 3 (Core.Lru.length l)

(* The shape-seed table is bounded like the other two caches (the .mli
   promises every entry count is): shapes beyond [max_shapes] evict the
   least recently stored one, and one shape holds at most a handful of
   machine sizes — probing more [procs] values than that cap must
   answer the overflow via nearest-procs rescaling, not by growing the
   table. *)
let fake_result n value =
  {
    Core.Allocation.alloc = Array.make n 1.0;
    phi = value;
    average = value;
    critical_path = value;
    solver =
      {
        Convex.Solver.x = Array.make n value;
        value;
        iterations = 1;
        stages = 1;
        converged = true;
        hvp_evals = 0;
        cg_iterations = 0;
      };
    decomposed = None;
  }

let shape_key ?(fingerprint = 0L) ~h ~procs () =
  {
    Core.Plan_cache.graph_hash = Int64.of_int h;
    fingerprint;
    procs;
  }

let test_warm_shape_bounded () =
  let cache = Core.Plan_cache.create ~max_shapes:4 () in
  let r = fake_result 3 0.5 in
  for h = 1 to 8 do
    Core.Plan_cache.store_warm cache (shape_key ~h ~procs:8 ()) r
  done;
  (* Distinct fingerprint: the exact cache cannot answer, only the
     shape table can. *)
  let probe h =
    Core.Plan_cache.warm cache (shape_key ~fingerprint:1L ~h ~procs:8 ())
  in
  (match probe 1 with
  | None -> ()
  | Some _ -> Alcotest.fail "shape 1 should have been evicted (capacity 4)");
  (match probe 8 with
  | Some (Core.Plan_cache.Seed _) -> ()
  | _ -> Alcotest.fail "shape 8 should still hold a seed");
  let stats = Core.Plan_cache.stats cache in
  Alcotest.(check int) "evicted shape is a warm miss" 1 stats.warm_misses;
  Alcotest.(check int) "resident shape is a shape hit" 1 stats.warm_shape_hits

let test_warm_shape_procs_capped () =
  let cache = Core.Plan_cache.create () in
  let r = fake_result 3 0.5 in
  (* 12 machine sizes for one shape: more than the per-shape cap (8),
     so at least 4 of the probes below must be answered by rescaling
     from a neighbouring size rather than exactly. *)
  let sizes = List.init 12 (fun i -> 1 lsl i) in
  List.iter
    (fun procs -> Core.Plan_cache.store_warm cache (shape_key ~h:7 ~procs ()) r)
    sizes;
  List.iter
    (fun procs ->
      match
        Core.Plan_cache.warm cache (shape_key ~fingerprint:1L ~h:7 ~procs ())
      with
      | Some (Core.Plan_cache.Seed _) -> ()
      | _ ->
          Alcotest.failf "procs %d should seed (exactly or rescaled)" procs)
    sizes;
  let stats = Core.Plan_cache.stats cache in
  Alcotest.(check int) "every probe seeded" 12
    (stats.warm_shape_hits + stats.warm_procs_hits);
  Alcotest.(check bool) "per-shape procs entries capped at 8" true
    (stats.warm_shape_hits <= 8);
  Alcotest.(check int) "no warm misses" 0 stats.warm_misses

let signature = Generators.signature

let test_no_hash_collisions () =
  let shapes seed =
    (* Vary the shape with the seed so the population is not one
       layered family. *)
    {
      Kernels.Workloads.default_shape with
      layers = 1 + (seed mod 5);
      width = 1 + (seed mod 4);
      edge_density = 0.2 +. (0.15 *. float_of_int (seed mod 5));
    }
  in
  let seen = Hashtbl.create (2 * 10_000) in
  let collisions = ref 0 in
  for seed = 0 to 9_999 do
    let g = Kernels.Workloads.random_layered ~seed (shapes seed) in
    let h = G.structural_hash g in
    let s = signature g in
    match Hashtbl.find_opt seen h with
    | None -> Hashtbl.add seen h s
    | Some s' -> if not (String.equal s s') then incr collisions
  done;
  Alcotest.(check int) "structural_hash collisions in 10k random MDGs" 0
    !collisions

let suite =
  [
    QCheck_alcotest.to_alcotest prop_warm_hit_phi_sound;
    QCheck_alcotest.to_alcotest prop_exact_hit_phi_identical;
    QCheck_alcotest.to_alcotest prop_procs_hit_phi_sound;
    Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "warm shape table bounded" `Quick
      test_warm_shape_bounded;
    Alcotest.test_case "per-shape procs entries capped" `Quick
      test_warm_shape_procs_capped;
    Alcotest.test_case "no structural_hash collisions (10k graphs)" `Slow
      test_no_hash_collisions;
  ]

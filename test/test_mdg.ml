(* Tests for the MDG substrate: graph construction/validation,
   structural analyses, normalisation, rendering. *)

module G = Mdg.Graph
module A = Mdg.Analysis

let synth ?(alpha = 0.1) ?(tau = 1.0) () : G.kernel = Synthetic { alpha; tau }

(* Diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3. *)
let diamond () =
  let b = G.create_builder () in
  let n0 = G.add_node b ~label:"a" ~kernel:(synth ()) in
  let n1 = G.add_node b ~label:"b" ~kernel:(synth ~tau:2.0 ()) in
  let n2 = G.add_node b ~label:"c" ~kernel:(synth ~tau:3.0 ()) in
  let n3 = G.add_node b ~label:"d" ~kernel:(synth ()) in
  G.add_edge b ~src:n0 ~dst:n1 ~bytes:100.0 ~kind:Oned;
  G.add_edge b ~src:n0 ~dst:n2 ~bytes:200.0 ~kind:Twod;
  G.add_edge b ~src:n1 ~dst:n3 ~bytes:300.0 ~kind:Oned;
  G.add_edge b ~src:n2 ~dst:n3 ~bytes:400.0 ~kind:Oned;
  G.build b

let test_build_accessors () =
  let g = diamond () in
  Alcotest.(check int) "nodes" 4 (G.num_nodes g);
  Alcotest.(check int) "edges" 4 (List.length (G.edges g));
  Alcotest.(check int) "preds of 3" 2 (List.length (G.preds g 3));
  Alcotest.(check int) "succs of 0" 2 (List.length (G.succs g 0));
  Alcotest.(check (list int)) "sources" [ 0 ] (G.sources g);
  Alcotest.(check (list int)) "sinks" [ 3 ] (G.sinks g);
  Alcotest.(check string) "label" "b" (G.node g 1).label;
  (match G.edge_between g ~src:0 ~dst:2 with
  | Some e ->
      Alcotest.(check (float 0.0)) "bytes" 200.0 e.bytes;
      Alcotest.(check bool) "kind" true (e.kind = G.Twod)
  | None -> Alcotest.fail "edge 0->2 missing");
  Alcotest.(check bool) "no edge 1->2" true (G.edge_between g ~src:1 ~dst:2 = None)

let test_build_rejects_cycles () =
  let b = G.create_builder () in
  let n0 = G.add_node b ~label:"a" ~kernel:(synth ()) in
  let n1 = G.add_node b ~label:"b" ~kernel:(synth ()) in
  G.add_edge b ~src:n0 ~dst:n1 ~bytes:0.0 ~kind:Oned;
  G.add_edge b ~src:n1 ~dst:n0 ~bytes:0.0 ~kind:Oned;
  Alcotest.check_raises "cycle"
    (Invalid_argument "Graph.build: edge relation has a cycle") (fun () ->
      ignore (G.build b))

let test_build_rejects_bad_edges () =
  let b = G.create_builder () in
  let n0 = G.add_node b ~label:"a" ~kernel:(synth ()) in
  let n1 = G.add_node b ~label:"b" ~kernel:(synth ()) in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self loop")
    (fun () -> G.add_edge b ~src:n0 ~dst:n0 ~bytes:0.0 ~kind:Oned);
  Alcotest.check_raises "bad dst" (Invalid_argument "Graph.add_edge: bad dst")
    (fun () -> G.add_edge b ~src:n0 ~dst:7 ~bytes:0.0 ~kind:Oned);
  G.add_edge b ~src:n0 ~dst:n1 ~bytes:1.0 ~kind:Oned;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Graph.add_edge: duplicate edge") (fun () ->
      G.add_edge b ~src:n0 ~dst:n1 ~bytes:2.0 ~kind:Twod)

let test_kernel_validation () =
  let b = G.create_builder () in
  Alcotest.check_raises "alpha range"
    (Invalid_argument "Graph.add_node: alpha outside [0,1]") (fun () ->
      ignore (G.add_node b ~label:"x" ~kernel:(Synthetic { alpha = 1.5; tau = 1.0 })));
  Alcotest.check_raises "matrix size"
    (Invalid_argument "Graph.add_node: matrix size < 1") (fun () ->
      ignore (G.add_node b ~label:"x" ~kernel:(Matrix_add 0)))

let test_normalise_diamond_noop () =
  let g = diamond () in
  Alcotest.(check bool) "already normalised" true (G.is_normalised g);
  let g' = G.normalise g in
  Alcotest.(check int) "unchanged" (G.num_nodes g) (G.num_nodes g')

let test_normalise_adds_dummies () =
  let b = G.create_builder () in
  let n0 = G.add_node b ~label:"a" ~kernel:(synth ()) in
  let n1 = G.add_node b ~label:"b" ~kernel:(synth ()) in
  let n2 = G.add_node b ~label:"c" ~kernel:(synth ()) in
  ignore n0;
  ignore n1;
  ignore n2;
  (* Three independent nodes: need START and STOP. *)
  let g = G.normalise (G.build b) in
  Alcotest.(check int) "5 nodes" 5 (G.num_nodes g);
  Alcotest.(check bool) "normalised" true (G.is_normalised g);
  let start = G.start_node g and stop = G.stop_node g in
  Alcotest.(check bool) "start is dummy" true ((G.node g start).kernel = G.Dummy);
  Alcotest.(check bool) "stop is dummy" true ((G.node g stop).kernel = G.Dummy);
  Alcotest.(check int) "start fans out" 3 (List.length (G.succs g start));
  Alcotest.(check int) "stop fans in" 3 (List.length (G.preds g stop))

let test_normalise_single_node () =
  let b = G.create_builder () in
  ignore (G.add_node b ~label:"only" ~kernel:(synth ()));
  let g = G.normalise (G.build b) in
  Alcotest.(check bool) "normalised" true (G.is_normalised g);
  Alcotest.(check int) "3 nodes" 3 (G.num_nodes g)

let test_normalise_idempotent () =
  let g = G.normalise (diamond ()) in
  let g' = G.normalise g in
  Alcotest.(check int) "same size" (G.num_nodes g) (G.num_nodes g')

let test_start_stop_on_unnormalised () =
  let b = G.create_builder () in
  ignore (G.add_node b ~label:"a" ~kernel:(synth ()));
  ignore (G.add_node b ~label:"b" ~kernel:(synth ()));
  let g = G.build b in
  Alcotest.check_raises "no unique source"
    (Invalid_argument "Graph.start_node: graph not normalised") (fun () ->
      ignore (G.start_node g))

let test_kernel_helpers () =
  Alcotest.(check (float 0.0)) "mul flops" (2.0 *. 64.0 ** 3.0)
    (G.kernel_flops (Matrix_multiply 64));
  Alcotest.(check (float 0.0)) "add flops" 4096.0 (G.kernel_flops (Matrix_add 64));
  Alcotest.(check (float 0.0)) "bytes" 32768.0 (G.kernel_bytes (Matrix_add 64));
  Alcotest.(check (float 0.0)) "dummy flops" 0.0 (G.kernel_flops Dummy)

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let test_topological_order () =
  let g = diamond () in
  let order = A.topological_order g in
  Alcotest.(check int) "covers all" 4 (List.length order);
  let pos = Hashtbl.create 4 in
  List.iteri (fun i n -> Hashtbl.add pos n i) order;
  List.iter
    (fun (e : G.edge) ->
      Alcotest.(check bool) "edge respected" true
        (Hashtbl.find pos e.src < Hashtbl.find pos e.dst))
    (G.edges g)

let test_reachable () =
  let g = diamond () in
  let r = A.reachable g 1 in
  Alcotest.(check bool) "1 -> 3" true r.(3);
  Alcotest.(check bool) "1 itself" true r.(1);
  Alcotest.(check bool) "not 0" false r.(0);
  Alcotest.(check bool) "not 2" false r.(2)

let test_finish_times_and_critical_path () =
  let g = diamond () in
  (* Unit edge weights 0, node weights = tau. *)
  let node_weight i = (fun (nd : G.node) ->
      match nd.kernel with G.Synthetic { tau; _ } -> tau | _ -> 0.0)
      (G.node g i)
  in
  let edge_weight _ = 0.0 in
  let y = A.finish_times ~node_weight ~edge_weight g in
  Alcotest.(check (float 1e-9)) "y0" 1.0 y.(0);
  Alcotest.(check (float 1e-9)) "y1" 3.0 y.(1);
  Alcotest.(check (float 1e-9)) "y2" 4.0 y.(2);
  Alcotest.(check (float 1e-9)) "y3" 5.0 y.(3);
  Alcotest.(check (float 1e-9)) "cp" 5.0
    (A.critical_path_time ~node_weight ~edge_weight g);
  Alcotest.(check (list int)) "path" [ 0; 2; 3 ]
    (A.critical_path ~node_weight ~edge_weight g)

let test_critical_path_with_edge_weights () =
  let g = diamond () in
  let node_weight _ = 1.0 in
  (* Heavy edge 0->1 makes the upper path critical. *)
  let edge_weight (e : G.edge) = if e.src = 0 && e.dst = 1 then 10.0 else 0.0 in
  Alcotest.(check (list int)) "edge-weighted path" [ 0; 1; 3 ]
    (A.critical_path ~node_weight ~edge_weight g);
  Alcotest.(check (float 1e-9)) "time" 13.0
    (A.critical_path_time ~node_weight ~edge_weight g)

let test_negative_weight_rejected () =
  let g = diamond () in
  Alcotest.check_raises "negative node weight"
    (Invalid_argument "Analysis: negative or non-finite node weight") (fun () ->
      ignore (A.finish_times ~node_weight:(fun _ -> -1.0) ~edge_weight:(fun _ -> 0.0) g))

let test_total_area () =
  let g = diamond () in
  let area = A.total_area ~node_weight:(fun _ -> 2.0) ~procs:(fun _ -> 3.0) g in
  Alcotest.(check (float 1e-9)) "area" 24.0 area

let test_depth_width () =
  let g = diamond () in
  Alcotest.(check int) "depth" 3 (A.depth g);
  Alcotest.(check int) "width" 2 (A.max_width g)

(* ------------------------------------------------------------------ *)
(* Render                                                              *)
(* ------------------------------------------------------------------ *)

let test_render_dot () =
  let dot = Mdg.Render.to_dot (diamond ()) in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has node" true (contains dot "n0");
  Alcotest.(check bool) "has edge" true (contains dot "n0 -> n1")

let test_render_ascii_and_summary () =
  let text = Mdg.Render.to_ascii (diamond ()) in
  Alcotest.(check bool) "mentions levels" true
    (String.length text > 0 && String.sub text 0 5 = "level");
  let s = Mdg.Render.summary (diamond ()) in
  Alcotest.(check string) "summary" "4 nodes, 4 edges, depth 3, max width 2" s

(* ------------------------------------------------------------------ *)
(* Partition (blocks for the decomposed solver)                        *)
(* ------------------------------------------------------------------ *)

module Pt = Mdg.Partition

(* Two independent chains a->b and c->d: the interior splits into two
   weakly-connected components. *)
let two_chains () =
  let b = G.create_builder () in
  let a = G.add_node b ~label:"a" ~kernel:(synth ()) in
  let b1 = G.add_node b ~label:"b" ~kernel:(synth ()) in
  let c = G.add_node b ~label:"c" ~kernel:(synth ()) in
  let d = G.add_node b ~label:"d" ~kernel:(synth ()) in
  G.add_edge b ~src:a ~dst:b1 ~bytes:10.0 ~kind:Oned;
  G.add_edge b ~src:c ~dst:d ~bytes:10.0 ~kind:Oned;
  G.build b

let check_partition_invariants g (p : Pt.t) =
  let seen = Array.make (G.num_nodes g) 0 in
  Array.iter (Array.iter (fun n -> seen.(n) <- seen.(n) + 1)) p.Pt.blocks;
  Array.iter (fun c -> Alcotest.(check int) "node in exactly one block" 1 c) seen;
  List.iter
    (fun (e : G.edge) ->
      Alcotest.(check bool) "edges point forward across blocks" true
        (p.Pt.block_of.(e.src) <= p.Pt.block_of.(e.dst)))
    (G.edges g)

let test_partition_single_block () =
  let g = G.normalise (diamond ()) in
  let p = Pt.partition ~target:1 g in
  Alcotest.(check int) "one block" 1 (Pt.num_blocks p);
  Alcotest.(check int) "holds every node" (G.num_nodes g)
    (Array.length p.Pt.blocks.(0));
  Alcotest.(check int) "no cut edges" 0 (Array.length p.Pt.cut_edges);
  check_partition_invariants g p

let test_partition_splits_components () =
  let g = G.normalise (two_chains ()) in
  let p = Pt.partition ~target:2 g in
  Alcotest.(check int) "two blocks" 2 (Pt.num_blocks p);
  (* Each chain stays whole and the chains land in different blocks. *)
  Alcotest.(check int) "a with b" p.Pt.block_of.(0) p.Pt.block_of.(1);
  Alcotest.(check int) "c with d" p.Pt.block_of.(2) p.Pt.block_of.(3);
  Alcotest.(check bool) "chains separated" true
    (p.Pt.block_of.(0) <> p.Pt.block_of.(2));
  check_partition_invariants g p

let test_partition_chain_segments () =
  (* A single 6-node chain has one component; reaching the target
     requires slicing it into contiguous topological segments. *)
  let b = G.create_builder () in
  let ids =
    Array.init 6 (fun i ->
        G.add_node b ~label:(string_of_int i) ~kernel:(synth ()))
  in
  for i = 0 to 4 do
    G.add_edge b ~src:ids.(i) ~dst:ids.(i + 1) ~bytes:1.0 ~kind:Oned
  done;
  let g = G.normalise (G.build b) in
  let p = Pt.partition ~target:3 g in
  Alcotest.(check bool) "chain was sliced" true (Pt.num_blocks p >= 2);
  check_partition_invariants g p;
  (* cut_edges is exactly the cross-block subsequence of edges. *)
  let expected =
    List.filter
      (fun (e : G.edge) -> p.Pt.block_of.(e.src) <> p.Pt.block_of.(e.dst))
      (G.edges g)
  in
  Alcotest.(check int) "cut-edge count" (List.length expected)
    (Array.length p.Pt.cut_edges);
  (* Deterministic for a given graph and target. *)
  let p' = Pt.partition ~target:3 g in
  Alcotest.(check bool) "deterministic" true (p.Pt.blocks = p'.Pt.blocks)

let test_partition_validation () =
  let g = G.normalise (diamond ()) in
  Alcotest.check_raises "target < 1"
    (Invalid_argument "Partition.partition: target < 1") (fun () ->
      ignore (Pt.partition ~target:0 g));
  Alcotest.check_raises "unnormalised"
    (Invalid_argument "Partition.partition: graph must be normalised")
    (fun () -> ignore (Pt.partition ~target:2 (two_chains ())))

(* Property: random layered workloads always produce valid normalised
   DAGs whose analyses agree. *)
let prop_random_workload_well_formed =
  QCheck.Test.make ~name:"random layered MDGs are well-formed" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Kernels.Workloads.random_layered ~seed Kernels.Workloads.default_shape in
      G.is_normalised g
      && List.length (A.topological_order g) = G.num_nodes g
      && A.depth g >= 3
      &&
      let r = A.reachable g (G.start_node g) in
      Array.for_all Fun.id r)

let suite =
  [
    Alcotest.test_case "build + accessors" `Quick test_build_accessors;
    Alcotest.test_case "build rejects cycles" `Quick test_build_rejects_cycles;
    Alcotest.test_case "build rejects bad edges" `Quick test_build_rejects_bad_edges;
    Alcotest.test_case "kernel validation" `Quick test_kernel_validation;
    Alcotest.test_case "normalise is noop on normal graphs" `Quick
      test_normalise_diamond_noop;
    Alcotest.test_case "normalise adds START/STOP" `Quick
      test_normalise_adds_dummies;
    Alcotest.test_case "normalise single node" `Quick test_normalise_single_node;
    Alcotest.test_case "normalise idempotent" `Quick test_normalise_idempotent;
    Alcotest.test_case "start_node rejects unnormalised" `Quick
      test_start_stop_on_unnormalised;
    Alcotest.test_case "kernel flops/bytes" `Quick test_kernel_helpers;
    Alcotest.test_case "topological order" `Quick test_topological_order;
    Alcotest.test_case "reachability" `Quick test_reachable;
    Alcotest.test_case "finish times / critical path" `Quick
      test_finish_times_and_critical_path;
    Alcotest.test_case "critical path with edge weights" `Quick
      test_critical_path_with_edge_weights;
    Alcotest.test_case "rejects negative weights" `Quick
      test_negative_weight_rejected;
    Alcotest.test_case "processor-time area" `Quick test_total_area;
    Alcotest.test_case "depth and width" `Quick test_depth_width;
    Alcotest.test_case "render DOT" `Quick test_render_dot;
    Alcotest.test_case "render ASCII + summary" `Quick
      test_render_ascii_and_summary;
    Alcotest.test_case "partition: degenerate single block" `Quick
      test_partition_single_block;
    Alcotest.test_case "partition: components split cleanly" `Quick
      test_partition_splits_components;
    Alcotest.test_case "partition: chains slice into segments" `Quick
      test_partition_chain_segments;
    Alcotest.test_case "partition: validation" `Quick test_partition_validation;
    QCheck_alcotest.to_alcotest prop_random_workload_well_formed;
  ]

(* The plan server: JSON codec, wire protocol, end-to-end serving,
   cache behaviour over the wire, concurrency and graceful
   shutdown. *)

module Json = Server.Json
module Protocol = Server.Protocol
module Srv = Server.Daemon
module Client = Server.Client

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

(* A small diamond MDG of synthetic kernels: no calibration table
   needed, so it plans under any parameter set. *)
let diamond ?(tau = 1.0) () =
  let b = Mdg.Graph.create_builder () in
  let node label alpha tau =
    Mdg.Graph.add_node b ~label ~kernel:(Synthetic { alpha; tau })
  in
  let a = node "a" 0.05 tau in
  let l = node "left" 0.02 (2.0 *. tau) in
  let r = node "right" 0.10 (1.5 *. tau) in
  let j = node "join" 0.05 tau in
  Mdg.Graph.add_edge b ~src:a ~dst:l ~bytes:65536.0 ~kind:Mdg.Graph.Oned;
  Mdg.Graph.add_edge b ~src:a ~dst:r ~bytes:65536.0 ~kind:Mdg.Graph.Twod;
  Mdg.Graph.add_edge b ~src:l ~dst:j ~bytes:32768.0 ~kind:Mdg.Graph.Oned;
  Mdg.Graph.add_edge b ~src:r ~dst:j ~bytes:32768.0 ~kind:Mdg.Graph.Oned;
  Mdg.Graph.build b

let with_server ?options f =
  let srv = Srv.start ?options () in
  Fun.protect ~finally:(fun () -> Srv.stop srv) (fun () -> f srv)

let with_client srv f =
  let c = Client.connect ~port:(Srv.port srv) () in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let get = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Num 3.25;
      Json.Num (-17.0);
      Json.Num 1.0e-9;
      Json.Str "plain";
      Json.Str "esc \"quotes\" \\ and \n tab \t done";
      Json.List [ Json.Num 1.0; Json.Str "two"; Json.Null ];
      Json.Obj
        [
          ("a", Json.Num 1.0);
          ("nested", Json.Obj [ ("xs", Json.List [ Json.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      match Json.of_string (Json.to_string v) with
      | Ok v' ->
          Alcotest.(check string)
            "print/parse/print fixpoint" (Json.to_string v) (Json.to_string v')
      | Error msg -> Alcotest.failf "round-trip failed: %s" msg)
    samples;
  (* Integers survive exactly. *)
  Alcotest.(check string) "int rendering" "{\"n\":12345678901}"
    (Json.to_string (Json.Obj [ ("n", Json.int 12345678901) ]));
  Alcotest.(check int) "int round-trip" 12345678901
    (get
       (Result.bind
          (Json.of_string "{\"n\":12345678901}")
          (Json.int_field "n")))

let test_json_malformed () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed JSON %S" s
      | Error _ -> ())
    [
      "";
      "{";
      "[1,]";
      "{\"a\":}";
      "{\"a\" 1}";
      "nul";
      "\"unterminated";
      "1 2";
      "{\"a\":1}garbage";
      "'single'";
    ]

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_protocol_roundtrip () =
  let g = diamond () in
  let params = Costmodel.Params.cm5 () in
  let line =
    Json.to_string
      (Protocol.encode_plan_request ~id:(Json.int 7) ~params ~pb:8 g ~procs:32)
  in
  match Protocol.decode_request line with
  | Error (_, msg) -> Alcotest.failf "decode failed: %s" msg
  | Ok (id, Protocol.Plan req) ->
      Alcotest.(check string) "id echo" "7" (Json.to_string id);
      Alcotest.(check int) "procs" 32 req.procs;
      Alcotest.(check (option int)) "pb" (Some 8) req.pb;
      Alcotest.(check string)
        "graph round-trip"
        (Mdg.Serialize.to_string g)
        (Mdg.Serialize.to_string req.graph);
      let sent = Option.get req.params in
      Alcotest.(check int64)
        "params fingerprint survives the wire"
        (Costmodel.Params.fingerprint params)
        (Costmodel.Params.fingerprint sent)
  | Ok _ -> Alcotest.fail "decoded wrong request kind"

let test_protocol_bad_requests () =
  let expect_error line =
    match Protocol.decode_request line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted bad request %S" line
  in
  expect_error "not json at all";
  expect_error "{\"op\":\"plan\"}";
  (* missing mdg/procs *)
  expect_error "{\"op\":\"plan\",\"mdg\":\"bogus\",\"procs\":4}";
  expect_error "{\"op\":\"explode\"}";
  expect_error "{\"op\":\"plan\",\"mdg\":\"mdg\\nnode 0 mul:64 \\\"m\\\"\",\"procs\":\"four\"}"

(* ------------------------------------------------------------------ *)
(* End-to-end serving                                                  *)
(* ------------------------------------------------------------------ *)

let test_server_plan () =
  with_server @@ fun srv ->
  with_client srv @@ fun c ->
  get (Client.ping c);
  let g = diamond () in
  let summary = get (Client.plan c g ~procs:16) in
  (* The server must agree with planning the same request locally. *)
  let local =
    Core.Pipeline.plan_exn (Costmodel.Params.cm5 ()) g ~procs:16
  in
  Alcotest.(check (float 1e-9)) "phi" (Core.Pipeline.phi local) summary.phi;
  Alcotest.(check (float 1e-9))
    "t_psa" (Core.Pipeline.predicted_time local) summary.t_psa;
  Alcotest.(check int) "nodes" 4 summary.nodes;
  Alcotest.(check int) "alloc length" 4 (Array.length summary.alloc);
  Alcotest.(check bool) "makespan = t_psa" true
    (Float.abs (summary.makespan -. summary.t_psa) <= 1e-9);
  (match Core.Schedule.validate (Costmodel.Params.cm5 ()) local.graph
           (Core.Pipeline.schedule local)
   with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "local schedule invalid: %s" (String.concat "; " msgs))

let test_server_malformed_line () =
  with_server @@ fun srv ->
  with_client srv @@ fun c ->
  (* A garbage line gets a typed protocol error, and the connection
     remains usable for the next request. *)
  Client.send_line c "this is not json";
  (match Protocol.decode_reply (get (Client.recv_line c)) with
  | Ok (_, Protocol.Error_reply { kind; _ }) ->
      Alcotest.(check string) "kind" "protocol_error" kind
  | Ok _ -> Alcotest.fail "expected an error reply"
  | Error msg -> Alcotest.failf "unparseable reply: %s" msg);
  get (Client.ping c)

let test_server_typed_errors () =
  with_server @@ fun srv ->
  with_client srv @@ fun c ->
  let g = diamond () in
  (match Client.plan c g ~procs:0 with
  | Error msg ->
      Alcotest.(check bool) "invalid_procs surfaced" true
        (String.length msg >= 13 && String.sub msg 0 13 = "invalid_procs")
  | Ok _ -> Alcotest.fail "procs=0 must fail");
  (* A kernel with no calibration in the server's default table. *)
  let b = Mdg.Graph.create_builder () in
  ignore (Mdg.Graph.add_node b ~label:"m" ~kernel:(Mdg.Graph.Matrix_init 512));
  let g_uncal = Mdg.Graph.build b in
  (match Client.plan c g_uncal ~procs:4 with
  | Error msg ->
      Alcotest.(check bool) "missing_calibration surfaced" true
        (String.length msg >= 19 && String.sub msg 0 19 = "missing_calibration")
  | Ok _ -> Alcotest.fail "uncalibrated kernel must fail");
  (* A non-power-of-two PB is an invalid_request from the PSA. *)
  (match Client.plan ~pb:3 c g ~procs:8 with
  | Error msg ->
      Alcotest.(check bool) "invalid_request surfaced" true
        (String.length msg >= 15 && String.sub msg 0 15 = "invalid_request")
  | Ok _ -> Alcotest.fail "pb=3 must fail");
  (* The connection survived all three failures. *)
  get (Client.ping c)

let test_server_cache_over_wire () =
  with_server @@ fun srv ->
  with_client srv @@ fun c ->
  let g = diamond () in
  let first = get (Client.plan c g ~procs:16) in
  Alcotest.(check string) "first request misses tape" "miss" first.tape_cache;
  let second = get (Client.plan c g ~procs:16) in
  Alcotest.(check string) "second request hits tape" "hit" second.tape_cache;
  Alcotest.(check string) "second request hits warm" "hit" second.warm_cache;
  Alcotest.(check bool) "phi unchanged" true
    (Float.abs (second.phi -. first.phi)
    <= 1e-6 *. (1.0 +. Float.abs first.phi));
  let stats, server = get (Client.stats c) in
  Alcotest.(check bool) "stats counted the hit" true (stats.tape_hits >= 1);
  (match server with
  | None -> Alcotest.fail "stats reply carries no server section"
  | Some (srv : Protocol.server_stats) ->
      (* The stats line itself is counted only after its reply is
         built, so the snapshot covers the two completed plans. *)
      Alcotest.(check bool) "server served the requests" true (srv.served >= 2);
      Alcotest.(check int) "nothing shed" 0 srv.shed;
      let total = Array.fold_left ( + ) 0 in
      Alcotest.(check bool) "plan latencies bucketed" true
        (List.exists
           (fun (l : Protocol.op_latency) -> l.op = "plan" && total l.buckets >= 2)
           srv.latency));
  (* Same shape, perturbed constants: tape misses (new fingerprint)
     but the warm cache serves the shape seed. *)
  let params = Costmodel.Params.cm5 () in
  let tf = Costmodel.Params.transfer params in
  let perturbed =
    Costmodel.Params.make ~transfer:{ tf with t_n = tf.t_n *. 1.05 }
  in
  let third = get (Client.plan ~params:perturbed c g ~procs:16) in
  Alcotest.(check string) "perturbed constants: new tape" "miss" third.tape_cache;
  Alcotest.(check string) "perturbed constants: shape warm hit" "shape_hit"
    third.warm_cache

let test_server_concurrent_clients () =
  let domains = 4 and per_client = 6 in
  with_server @@ fun srv ->
  let port = Srv.port srv in
  let worker k =
    Domain.spawn (fun () ->
        let c = Client.connect ~port () in
        Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
            List.init per_client (fun i ->
                let tau = 0.5 +. (0.25 *. float_of_int ((k + i) mod 3)) in
                let g = diamond ~tau () in
                let procs = 4 lsl (i mod 3) in
                match Client.plan c g ~procs with
                | Ok s -> Float.is_finite s.phi && s.phi > 0.0
                | Error msg -> Alcotest.failf "client %d: %s" k msg)))
  in
  let results =
    List.init domains worker |> List.map Domain.join |> List.concat
  in
  Alcotest.(check int) "every request answered"
    (domains * per_client) (List.length results);
  Alcotest.(check bool) "every plan sane" true
    (List.for_all Fun.id results);
  Alcotest.(check int) "server counted them (plus pings)"
    (domains * per_client)
    (Srv.requests_served srv)

(* Deterministic shed: one worker, zero pending slots.  A ping pins
   the only worker to the first connection (workers hold a connection
   until it closes), so the second connection arrives with
   [workers + max_pending = 1] connections already in the system and
   must be shed with the typed overloaded reply, then closed. *)
let test_server_shed_typed () =
  let options = { Srv.default_options with workers = 1; max_pending = 0 } in
  with_server ~options @@ fun srv ->
  with_client srv @@ fun c1 ->
  get (Client.ping c1);
  let c2 = Client.connect ~port:(Srv.port srv) () in
  (match Protocol.decode_reply (get (Client.recv_line c2)) with
  | Ok (_, Protocol.Error_reply { kind; retry_after_ms; _ }) ->
      Alcotest.(check string) "typed overloaded error"
        Protocol.overloaded_kind kind;
      (match retry_after_ms with
      | Some ms -> Alcotest.(check bool) "retry hint positive" true (ms > 0)
      | None -> Alcotest.fail "shed reply carries no retry_after_ms")
  | Ok _ -> Alcotest.fail "expected an overloaded error reply"
  | Error msg -> Alcotest.failf "unparseable shed reply: %s" msg);
  (* The server closes a shed connection right after the reply. *)
  (match Client.recv_line c2 with
  | Error _ -> ()
  | Ok line -> Alcotest.failf "shed connection still open, got %S" line);
  Client.close c2;
  Alcotest.(check int) "shed counted" 1 (Srv.connections_shed srv);
  let _, server = get (Client.stats c1) in
  (match server with
  | Some (s : Protocol.server_stats) ->
      Alcotest.(check int) "shed visible in stats op" 1 s.shed;
      Alcotest.(check int) "max_pending echoed" 0 s.max_pending
  | None -> Alcotest.fail "stats reply carries no server section");
  (* Capacity freed: once c1 closes, a retry is admitted and served. *)
  Client.close c1;
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec retry () =
    if Unix.gettimeofday () > deadline then
      Alcotest.fail "retry after shed never admitted"
    else
      let c3 = Client.connect ~port:(Srv.port srv) () in
      match Client.ping c3 with
      | Ok () -> Client.close c3
      | Error _ ->
          Client.close c3;
          Unix.sleepf 0.02;
          retry ()
  in
  retry ()

(* Overload stress: more client domains than the server has capacity
   for, every client retrying shed connections.  Every request must
   eventually complete, every shed must be the typed overloaded reply
   (anything else is a failure), and nothing may hang. *)
let test_server_overload_stress () =
  let options = { Srv.default_options with workers = 2; max_pending = 1 } in
  with_server ~options @@ fun srv ->
  let port = Srv.port srv in
  let clients = 8 and per_client = 5 in
  let sheds = Atomic.make 0 in
  let worker k =
    Domain.spawn (fun () ->
        let completed = ref 0 in
        let attempts = ref 0 in
        while !completed < per_client do
          incr attempts;
          if !attempts > 500 then
            Alcotest.failf "client %d: gave up after %d attempts" k !attempts;
          let c = Client.connect ~port () in
          let tau = 0.5 +. (0.25 *. float_of_int ((k + !completed) mod 3)) in
          let g = diamond ~tau () in
          (match Client.plan c g ~procs:8 with
          | Ok s ->
              if not (Float.is_finite s.phi && s.phi > 0.0) then
                Alcotest.failf "client %d: insane plan" k;
              incr completed
          | Error msg ->
              if
                String.length msg >= 10
                && String.sub msg 0 10 = Protocol.overloaded_kind
              then begin
                Atomic.incr sheds;
                Unix.sleepf 0.005
              end
              else Alcotest.failf "client %d: unexpected error %s" k msg
          | exception Unix.Unix_error _ ->
              (* The send raced the server's post-shed close: the shed
                 was already counted server-side; just retry. *)
              Unix.sleepf 0.005);
          Client.close c
        done;
        !completed)
  in
  let totals = List.init clients worker |> List.map Domain.join in
  Alcotest.(check (list int)) "every client completed its quota"
    (List.init clients (fun _ -> per_client))
    totals;
  (* With 8 clients against 2 workers + 1 slot, admission control must
     actually have fired. *)
  Alcotest.(check bool) "server shed under pressure" true
    (Srv.connections_shed srv > 0)

let test_server_graceful_shutdown () =
  let srv = Srv.start () in
  let c = Client.connect ~port:(Srv.port srv) () in
  let g = diamond () in
  (* The ping pins the connection to a worker; the plan request is
     then on the wire before stop, and the drain must answer it even
     though stop begins immediately. *)
  get (Client.ping c);
  Client.send_line c
    (Json.to_string (Protocol.encode_plan_request ~id:(Json.int 1) g ~procs:8));
  Srv.stop srv;
  (match Protocol.decode_reply (get (Client.recv_line c)) with
  | Ok (_, Protocol.Plan_reply s) ->
      Alcotest.(check bool) "drained plan sane" true (s.phi > 0.0)
  | Ok _ -> Alcotest.fail "expected a plan reply from the drain"
  | Error msg -> Alcotest.failf "bad drained reply: %s" msg);
  Client.close c;
  (* After stop the listener is gone. *)
  (match Client.connect ~port:(Srv.port srv) () with
  | c2 ->
      (* A TIME_WAIT race can let one more connect through; it must
         not be answered. *)
      (match Client.ping c2 with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "server answered after stop");
      Client.close c2
  | exception Unix.Unix_error _ -> ());
  (* stop is idempotent *)
  Srv.stop srv

let suite =
  [
    Alcotest.test_case "json: round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json: malformed inputs rejected" `Quick
      test_json_malformed;
    Alcotest.test_case "protocol: plan request round-trip" `Quick
      test_protocol_roundtrip;
    Alcotest.test_case "protocol: bad requests rejected" `Quick
      test_protocol_bad_requests;
    Alcotest.test_case "server: plan matches local pipeline" `Quick
      test_server_plan;
    Alcotest.test_case "server: malformed line gets typed reply" `Quick
      test_server_malformed_line;
    Alcotest.test_case "server: typed pipeline errors" `Quick
      test_server_typed_errors;
    Alcotest.test_case "server: caches visible over the wire" `Quick
      test_server_cache_over_wire;
    Alcotest.test_case "server: concurrent clients" `Quick
      test_server_concurrent_clients;
    Alcotest.test_case "server: over capacity sheds typed" `Quick
      test_server_shed_typed;
    Alcotest.test_case "server: overload stress, no hangs" `Quick
      test_server_overload_stress;
    Alcotest.test_case "server: graceful shutdown drains" `Quick
      test_server_graceful_shutdown;
  ]

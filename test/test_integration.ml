(* Cross-library integration tests: the whole pipeline — front end,
   calibration, allocation, PSA, code generation, simulation —
   exercised together, with invariants that span the layers. *)

module G = Mdg.Graph
module P = Costmodel.Params

let gt_ideal = Machine.Ground_truth.ideal ()

let gt_cm5 = Machine.Ground_truth.cm5_like ()

let synth_params () = P.make ~transfer:P.cm5_transfer

let calibrated kernels =
  let params, _, _ =
    Machine.Measure.calibrate gt_cm5 ~procs:[ 1; 2; 4; 8; 16; 32; 64 ] kernels
  in
  params

(* The hand-built complex-matmul MDG and the one derived by the front
   end from an equivalent source program yield the same optimisation
   problem (same Phi). *)
let test_frontend_equals_handbuilt_complex_mm () =
  let hand, _ = Kernels.Complex_mm.graph ~n:64 () in
  let source =
    Frontend.Ast.program ~size:64
      [
        Frontend.Ast.stmt "Ar" Frontend.Ast.Init;
        Frontend.Ast.stmt "Ai" Frontend.Ast.Init;
        Frontend.Ast.stmt "Br" Frontend.Ast.Init;
        Frontend.Ast.stmt "Bi" Frontend.Ast.Init;
        Frontend.Ast.stmt "E" (Frontend.Ast.Mul ("Ar", "Br"));
        Frontend.Ast.stmt "F" (Frontend.Ast.Mul ("Ai", "Bi"));
        Frontend.Ast.stmt "Gm" (Frontend.Ast.Mul ("Ar", "Bi"));
        Frontend.Ast.stmt "H" (Frontend.Ast.Mul ("Ai", "Br"));
        Frontend.Ast.stmt "Cr" (Frontend.Ast.Sub ("E", "F"));
        Frontend.Ast.stmt "Ci" (Frontend.Ast.Add ("Gm", "H"));
      ]
  in
  let derived, _ = Frontend.Lower.to_mdg source in
  Alcotest.(check int) "same node count" (G.num_nodes hand) (G.num_nodes derived);
  Alcotest.(check int) "same edge count"
    (List.length (G.edges hand))
    (List.length (G.edges derived));
  let params = calibrated (Kernels.Complex_mm.kernels ~n:64) in
  let phi g = (Core.Allocation.solve params (G.normalise g) ~procs:32).phi in
  let p_hand = phi hand and p_derived = phi derived in
  Alcotest.(check bool)
    (Printf.sprintf "Phi agree (%.5f vs %.5f)" p_hand p_derived)
    true
    (Float.abs (p_hand -. p_derived) < 0.01 *. p_hand)

(* On the ideal machine the whole chain is self-consistent: the
   simulated MPMD time never exceeds the model's prediction by more
   than rounding noise, for random graphs. *)
let prop_sim_bounded_by_prediction_ideal =
  QCheck.Test.make ~name:"ideal machine: sim time <= predicted (+5%)" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let shape =
        { Kernels.Workloads.default_shape with layers = 3; width = 3 }
      in
      let g = Kernels.Workloads.random_layered ~seed shape in
      let params = synth_params () in
      let plan = Core.Pipeline.plan_exn params g ~procs:16 in
      let sim = Core.Pipeline.simulate gt_ideal plan in
      sim.finish_time <= (Core.Pipeline.predicted_time plan *. 1.05) +. 1e-9
      && sim.finish_time > 0.0)

(* Message accounting: every generated Send is delivered exactly once,
   whatever the graph. *)
let prop_all_messages_delivered =
  QCheck.Test.make ~name:"every MPMD send is delivered" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let shape =
        { Kernels.Workloads.default_shape with layers = 3; width = 3 }
      in
      let g = Kernels.Workloads.random_layered ~seed shape in
      let params = synth_params () in
      let plan = Core.Pipeline.plan_exn params g ~procs:8 in
      let prog = Core.Codegen.mpmd gt_ideal plan.graph (Core.Pipeline.schedule plan) in
      let sim = Machine.Sim.run gt_ideal prog in
      sim.messages_delivered = List.length (Machine.Program.sends prog))

(* Saving and reloading a schedule does not change what the machine
   executes. *)
let test_schedule_io_preserves_execution () =
  let g, _ = Kernels.Complex_mm.graph ~n:64 () in
  let params = calibrated (Kernels.Complex_mm.kernels ~n:64) in
  let plan = Core.Pipeline.plan_exn params g ~procs:16 in
  let sched = Core.Pipeline.schedule plan in
  let sched' = Core.Schedule_io.of_string (Core.Schedule_io.to_string sched) in
  let t1 = (Machine.Sim.run gt_cm5 (Core.Codegen.mpmd gt_cm5 plan.graph sched)).finish_time in
  let t2 = (Machine.Sim.run gt_cm5 (Core.Codegen.mpmd gt_cm5 plan.graph sched')).finish_time in
  Alcotest.(check (float 1e-12)) "identical execution" t1 t2

(* Paper-shape regression: the headline comparative results hold. *)
let test_paper_shape_regressions () =
  let params =
    calibrated
      (List.sort_uniq compare
         (Kernels.Complex_mm.kernels ~n:64 @ Kernels.Strassen_mdg.kernels ~n:128))
  in
  List.iter
    (fun (g, label) ->
      let c64 = Core.Pipeline.compare_mpmd_spmd_exn gt_cm5 params g ~procs:64 in
      let c16 = Core.Pipeline.compare_mpmd_spmd_exn gt_cm5 params g ~procs:16 in
      (* MPMD wins, and its advantage grows with machine size. *)
      Alcotest.(check bool) (label ^ ": MPMD beats SPMD at 64") true
        (c64.mpmd_speedup > c64.spmd_speedup);
      Alcotest.(check bool) (label ^ ": advantage grows with p") true
        (c64.mpmd_speedup /. c64.spmd_speedup
        > c16.mpmd_speedup /. c16.spmd_speedup);
      (* Predictions track actual times within 15% (Figure 9's story). *)
      Alcotest.(check bool) (label ^ ": prediction within 15%") true
        (Float.abs (c64.predicted -. c64.mpmd_time) /. c64.mpmd_time < 0.15);
      (* T_psa close to Phi (Table 3's story: within ~20%). *)
      Alcotest.(check bool) (label ^ ": T_psa within 20% of Phi") true
        ((c64.predicted -. c64.phi) /. c64.phi < 0.2))
    [
      (fst (Kernels.Complex_mm.graph ~n:64 ()), "complex-mm");
      (fst (Kernels.Strassen_mdg.graph ~n:128 ()), "strassen");
    ]

(* Theorem 3's guarantee holds end to end for the paper's workloads at
   every machine size. *)
let test_theorem3_on_paper_workloads () =
  let params =
    calibrated
      (List.sort_uniq compare
         (Kernels.Complex_mm.kernels ~n:64 @ Kernels.Strassen_mdg.kernels ~n:128))
  in
  List.iter
    (fun g ->
      List.iter
        (fun procs ->
          let plan = Core.Pipeline.plan_exn params g ~procs in
          Alcotest.(check bool)
            (Printf.sprintf "theorem 3 at p=%d" procs)
            true
            (Core.Bounds.check_theorem3
               ~t_psa:(Core.Pipeline.predicted_time plan)
               ~phi:(Core.Pipeline.phi plan) ~procs ~pb:plan.psa.pb))
        [ 16; 32; 64 ])
    [
      fst (Kernels.Complex_mm.graph ~n:64 ());
      fst (Kernels.Strassen_mdg.graph ~n:128 ());
    ]

(* Busy-area conservation between layers: the simulator's total busy
   time on compute equals the sum of ground-truth kernel times the
   codegen put in. *)
let test_busy_time_conservation () =
  let g, _ = Kernels.Complex_mm.graph ~n:64 () in
  let params = calibrated (Kernels.Complex_mm.kernels ~n:64) in
  let plan = Core.Pipeline.plan_exn params g ~procs:16 in
  let prog = Core.Codegen.mpmd gt_cm5 plan.graph (Core.Pipeline.schedule plan) in
  let sim = Machine.Sim.run gt_cm5 prog in
  let compute_busy =
    List.fold_left
      (fun acc (s : Machine.Sim.segment) ->
        match s.activity with
        | Machine.Sim.Busy_compute _ -> acc +. (s.finish -. s.start)
        | _ -> acc)
      0.0 sim.segments
  in
  let expected =
    List.fold_left
      (fun acc (e : Core.Schedule.entry) ->
        let nd = G.node plan.graph e.node in
        let k = Array.length e.procs in
        acc
        +. (float_of_int k
           *. Machine.Ground_truth.kernel_time gt_cm5 nd.kernel ~procs:k))
      0.0
      (Core.Schedule.entries (Core.Pipeline.schedule plan))
  in
  Alcotest.(check (float 1e-6)) "compute busy time" expected compute_busy

(* Increasing the machine never slows the optimum: Phi is monotone
   non-increasing in p for the paper workloads. *)
let test_phi_monotone_in_p () =
  let g, _ = Kernels.Complex_mm.graph ~n:64 () in
  let params = calibrated (Kernels.Complex_mm.kernels ~n:64) in
  let g = G.normalise g in
  let phis =
    List.map
      (fun procs -> (Core.Allocation.solve params g ~procs).phi)
      [ 4; 8; 16; 32; 64 ]
  in
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "monotone" true (b <= a +. (0.01 *. a));
        check rest
    | _ -> ()
  in
  check phis

let suite =
  [
    Alcotest.test_case "frontend == hand-built complex-mm" `Slow
      test_frontend_equals_handbuilt_complex_mm;
    QCheck_alcotest.to_alcotest prop_sim_bounded_by_prediction_ideal;
    QCheck_alcotest.to_alcotest prop_all_messages_delivered;
    Alcotest.test_case "schedule IO preserves execution" `Slow
      test_schedule_io_preserves_execution;
    Alcotest.test_case "paper-shape regressions" `Slow test_paper_shape_regressions;
    Alcotest.test_case "theorem 3 on paper workloads" `Slow
      test_theorem3_on_paper_workloads;
    Alcotest.test_case "busy-time conservation" `Slow test_busy_time_conservation;
    Alcotest.test_case "Phi monotone in machine size" `Slow test_phi_monotone_in_p;
  ]

(* Optimality properties of the allocation solver on random feasible
   MDGs: the returned point is projected-gradient stationary for the
   tightest smoothed objective, warm-started re-solves reproduce the
   cold optimum, and the second-order (tape Newton-CG) engine agrees
   with the pure first-order Reference engine.

   Cases come from the shared Generators module and shrink: a failure
   reports the smallest (layers, width, seed) triple that still
   trips the property. *)

module G = Mdg.Graph

let synth_params = Generators.synth_params

let procs = 16

(* The solver's own tightest smoothing temperature: mu_final scaled by
   the objective magnitude at the default (box centre) start. *)
let mu_final obj n =
  let centre = Array.make n (0.5 *. log (float_of_int procs)) in
  1e-6 *. Float.max (Float.abs (Convex.Expr.eval obj centre)) 1e-30

(* KKT stationarity, stated as achievable descent: from the returned
   optimum, no Armijo-backtracked projected-gradient step decreases
   the mu_final-smoothed objective by more than a small multiple of
   the solver tolerance.  (The raw projected-gradient norm is the
   wrong measure here: at a kink of the max the smoothed gradient is
   O(1) even at the exact minimiser, but no feasible step along it
   descends.)

   The band tracks the solver's accuracy floor.  The solver's
   kink-valley escape runs this very probe at mu_final and only
   returns once it finds at most ~tol relative descent (or two escape
   passes are spent), so the floor is now structural: the worst
   achievable descent over seeds 0..2999 is 9.9e-7 relative — down
   from ~2e-4 before this PR, when stalled anneals simply returned.
   1e-5 keeps 10x headroom for instances whose two escape passes run
   out while descent remains. *)
let prop_stationary =
  QCheck.Test.make ~name:"solve is projected-gradient stationary at mu_final"
    ~count:(Generators.count 100)
    (Generators.layered ())
    (fun case ->
      let g = Generators.mdg_of_layered case in
      let p = synth_params () in
      let r = Core.Allocation.solve p g ~procs in
      let n = G.num_nodes g in
      let obj = Core.Allocation.objective p g ~procs in
      let mu = mu_final obj n in
      let x = Array.map log r.alloc in
      let hi = log (float_of_int procs) in
      let fx, gr = Convex.Expr.eval_grad ~mu obj x in
      let rec probe alpha tries =
        if tries = 0 then 0.0
        else begin
          let c =
            Array.mapi
              (fun i xi -> Float.min hi (Float.max 0.0 (xi -. (alpha *. gr.(i)))))
              x
          in
          let fc = Convex.Expr.eval ~mu obj c in
          if fc < fx then fx -. fc else probe (alpha /. 2.0) (tries - 1)
        end
      in
      probe 1.0 30 <= 1e-5 *. (1.0 +. Float.abs fx))

(* Seed 6004 (at the then-fixed layers=4, width=4) once tripped the
   stationarity property (a stalled anneal before the mu = 0 polish);
   pin its convergence. *)
let test_seed_6004 () =
  let g = Generators.mdg_of_seed 6004 in
  let p = synth_params () in
  let r = Core.Allocation.solve p g ~procs in
  Alcotest.(check bool) "seed 6004 converges" true r.solver.converged

(* Warm-starting from the cold optimum skips the anneal and lands on
   the same optimum: never worse than 1e-6 (structural: the solver
   returns x0 if it cannot improve on it), and no further below than
   the first-order solve's own accuracy band — on rare seeds the cold
   anneal stops several 1e-3 above the true optimum and the warm
   re-solve recovers most of that. *)
let prop_warm_matches_cold =
  QCheck.Test.make ~name:"warm-started solve reaches the cold optimum"
    ~count:(Generators.count 100)
    (Generators.layered ())
    (fun case ->
      let g = Generators.mdg_of_layered case in
      let p = synth_params () in
      let cold = Core.Allocation.solve p g ~procs in
      let warm =
        Core.Allocation.solve ~x0:(Array.map log cold.alloc) p g ~procs
      in
      let band = 1.0 +. Float.abs cold.phi in
      warm.phi <= cold.phi +. (1e-6 *. band)
      && Float.abs (warm.phi -. cold.phi) <= 1e-2 *. band)

(* The tape engine (with its Newton-CG refinement) and the DAG-walking
   Reference engine (pure FISTA) minimise the same convex program to
   the same optimum, up to the first-order engine's accuracy. *)
let prop_engines_agree =
  QCheck.Test.make ~name:"second-order tape engine agrees with Reference"
    ~count:(Generators.count 100)
    (Generators.layered ~max_layers:3 ~max_width:3 ())
    (fun case ->
      let g = Generators.mdg_of_layered case in
      let p = synth_params () in
      let tape = Core.Allocation.solve p g ~procs in
      let refr = Core.Allocation.solve ~engine:`Reference p g ~procs in
      Float.abs (tape.phi -. refr.phi) <= 1e-2 *. (1.0 +. Float.abs refr.phi))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_stationary; prop_warm_matches_cold; prop_engines_agree ]
  @ [ Alcotest.test_case "seed 6004 converges" `Quick test_seed_6004 ]

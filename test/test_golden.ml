(* Golden regression pins for the end-to-end allocation solve: Phi and
   the solver's stage/iteration counts for the two paper programs
   (complex matrix multiply, recursive Strassen at levels 1-2) on the
   simulated CM-5 at 64 processors, against test/golden/solver.golden.

   The golden file carries its own tolerances per row; see its header
   for the format and how to regenerate after an intentional solver
   change. *)

module G = Mdg.Graph
module GT = Machine.Ground_truth

let calib_procs = [ 1; 2; 4; 8; 16; 32; 64 ]

let cases () =
  let gt = GT.cm5_like () in
  let complex =
    let g, _ = Kernels.Complex_mm.graph ~n:64 () in
    let p, _, _ =
      Machine.Measure.calibrate gt ~procs:calib_procs
        (Kernels.Complex_mm.kernels ~n:64)
    in
    ("complex-mm-64", g, p)
  in
  let strassen levels =
    let n = 128 in
    let g = Kernels.Strassen_mdg.graph_recursive ~levels ~n in
    let p, _, _ =
      Machine.Measure.calibrate gt ~procs:calib_procs
        (Kernels.Strassen_mdg.kernels_recursive ~levels ~n)
    in
    (Printf.sprintf "strassen-l%d" levels, g, p)
  in
  [ complex; strassen 1; strassen 2 ]

type golden = {
  phi : float;
  phi_rel_tol : float;
  stages : int;
  iterations : int;
  iter_tol : int;
}

let load_golden path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       let line = String.trim line in
       if line <> "" && line.[0] <> '#' then
         Scanf.sscanf line "%s %f %f %d %d %d"
           (fun name phi phi_rel_tol stages iterations iter_tol ->
             rows := (name, { phi; phi_rel_tol; stages; iterations; iter_tol }) :: !rows)
     done
   with End_of_file -> close_in ic);
  !rows

let test_golden () =
  (* dune runs tests from _build/default/test; golden/ is declared as a
     dependency of the test stanza. *)
  let golden = load_golden "golden/solver.golden" in
  List.iter
    (fun (name, g, p) ->
      let exp =
        try List.assoc name golden
        with Not_found -> Alcotest.failf "no golden row for %s" name
      in
      let r = Core.Allocation.solve p (G.normalise g) ~procs:64 in
      if
        Float.abs (r.phi -. exp.phi) > exp.phi_rel_tol *. Float.abs exp.phi
      then
        Alcotest.failf "%s: Phi %.9f drifted from golden %.9f (rel tol %g)"
          name r.phi exp.phi exp.phi_rel_tol;
      if r.solver.stages <> exp.stages then
        Alcotest.failf "%s: %d solver stages, golden %d" name r.solver.stages
          exp.stages;
      if abs (r.solver.iterations - exp.iterations) > exp.iter_tol then
        Alcotest.failf "%s: %d iterations, golden %d (tol %d)" name
          r.solver.iterations exp.iterations exp.iter_tol)
    (cases ())

let suite =
  [ Alcotest.test_case "Phi and stage counts match golden" `Slow test_golden ]

(* Golden regression pins for the end-to-end allocation solve: Phi and
   the solver's stage/iteration counts for the two paper programs
   (complex matrix multiply, recursive Strassen at levels 1-2) on the
   simulated CM-5 at 64 processors, against test/golden/solver.golden.

   The golden file carries its own tolerances per row; see its header
   for the format and how to regenerate after an intentional solver
   change. *)

module G = Mdg.Graph
module GT = Machine.Ground_truth

let calib_procs = [ 1; 2; 4; 8; 16; 32; 64 ]

let cases () =
  let gt = GT.cm5_like () in
  let complex =
    let g, _ = Kernels.Complex_mm.graph ~n:64 () in
    let p, _, _ =
      Machine.Measure.calibrate gt ~procs:calib_procs
        (Kernels.Complex_mm.kernels ~n:64)
    in
    ("complex-mm-64", g, p)
  in
  let strassen levels =
    let n = 128 in
    let g = Kernels.Strassen_mdg.graph_recursive ~levels ~n in
    let p, _, _ =
      Machine.Measure.calibrate gt ~procs:calib_procs
        (Kernels.Strassen_mdg.kernels_recursive ~levels ~n)
    in
    (Printf.sprintf "strassen-l%d" levels, g, p)
  in
  [ complex; strassen 1; strassen 2 ]

type golden = {
  phi : float;
  phi_rel_tol : float;
  stages : int;
  iterations : int;
  iter_tol : int;
}

let load_golden path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       let line = String.trim line in
       if line <> "" && line.[0] <> '#' then
         Scanf.sscanf line "%s %f %f %d %d %d"
           (fun name phi phi_rel_tol stages iterations iter_tol ->
             rows := (name, { phi; phi_rel_tol; stages; iterations; iter_tol }) :: !rows)
     done
   with End_of_file -> close_in ic);
  !rows

(* A golden-file row for the measured result, reusing the old row's
   tolerances: what the file should say if the drift is intentional. *)
let fresh_row name (r : Core.Allocation.result) exp =
  Printf.sprintf "%-16s %.9f %g %d %d %d" name r.phi exp.phi_rel_tol
    r.solver.stages r.solver.iterations exp.iter_tol

let regen_command =
  "PARADIGM_GOLDEN_REGEN=1 dune exec test/test_main.exe -- test golden \
   --verbose"

(* dune runs tests from _build/default/test (golden/ is declared as a
   dependency of the test stanza); `dune exec test/test_main.exe` from
   the repo root — the regen command — needs the source-tree path. *)
let golden_path () =
  if Sys.file_exists "golden/solver.golden" then "golden/solver.golden"
  else "test/golden/solver.golden"

let test_golden () =
  let golden = load_golden (golden_path ()) in
  let problems = ref [] in
  let fresh = ref [] in
  let mismatch fmt =
    Printf.ksprintf (fun m -> problems := m :: !problems) fmt
  in
  (* Check every case and every field before failing, so one run shows
     the full extent of a drift (a solver change usually moves all
     three programs at once). *)
  List.iter
    (fun (name, g, p) ->
      let r = Core.Allocation.solve p (G.normalise g) ~procs:64 in
      match List.assoc_opt name golden with
      | None -> mismatch "%s: no golden row" name
      | Some exp ->
          fresh := fresh_row name r exp :: !fresh;
          let delta = Float.abs (r.phi -. exp.phi) in
          let allowed = exp.phi_rel_tol *. Float.abs exp.phi in
          if delta > allowed then
            mismatch
              "%s: Phi %.9f vs golden %.9f — |delta| %.3g over tolerance \
               %.3g (rel %g)"
              name r.phi exp.phi delta allowed exp.phi_rel_tol;
          if r.solver.stages <> exp.stages then
            mismatch "%s: %d solver stages vs golden %d (exact-match field)"
              name r.solver.stages exp.stages;
          let drift = abs (r.solver.iterations - exp.iterations) in
          if drift > exp.iter_tol then
            mismatch "%s: %d iterations vs golden %d — drift %d over tol %d"
              name r.solver.iterations exp.iterations drift exp.iter_tol)
    (cases ());
  if Sys.getenv_opt "PARADIGM_GOLDEN_REGEN" <> None then
    Printf.printf
      "\n# fresh rows for test/golden/solver.golden (current tolerances):\n%s\n"
      (String.concat "\n" (List.rev !fresh));
  match List.rev !problems with
  | [] -> ()
  | ps ->
      Alcotest.failf
        "%d golden mismatch(es):\n  %s\n\nIf the drift is intentional, print \
         replacement rows with\n  %s\nand paste them into \
         test/golden/solver.golden."
        (List.length ps)
        (String.concat "\n  " ps)
        regen_command

(* ---------------------------------------------------------------- *)
(* Decomposed (consensus-ADMM) pins: Φ, block count and outer
   iteration count for the paper's Strassen programs and the two
   random workloads `bench scale` pins.  Same file and column layout
   as the monolithic rows, with [stages] read as the (exact) block
   count and [iterations]/[iter_tol] as the ADMM outer iterations. *)

let admm_options =
  { Core.Decompose.default_options with Core.Decompose.mode = Core.Decompose.On }

(* The two `random:<spec>:<seed>` workloads bench scale pins. *)
let random_pins =
  [ ("depth=3,branch=3,div=1,comb=1", 17); ("depth=5,branch=3,cutoff=0.2", 1994) ]

let admm_cases () =
  let gt = GT.cm5_like () in
  let strassen levels =
    let n = 128 in
    let g = G.normalise (Kernels.Strassen_mdg.graph_recursive ~levels ~n) in
    let p, _, _ =
      Machine.Measure.calibrate gt ~procs:calib_procs
        (Kernels.Strassen_mdg.kernels_recursive ~levels ~n)
    in
    (Printf.sprintf "admm-strassen-l%d" levels, g, p)
  in
  let random (spec, seed) =
    let s =
      match Workgen.spec_of_string spec with
      | Ok s -> s
      | Error m -> Alcotest.failf "bad pinned spec %s: %s" spec m
    in
    ( Printf.sprintf "admm-random-%d" seed,
      Workgen.generate s ~seed,
      Costmodel.Params.make ~transfer:Costmodel.Params.cm5_transfer )
  in
  [ strassen 2; strassen 3 ] @ List.map random random_pins

let default_admm_exp =
  { phi = nan; phi_rel_tol = 1e-6; stages = 0; iterations = 0; iter_tol = 3 }

let test_golden_admm () =
  let golden = load_golden (golden_path ()) in
  let problems = ref [] in
  let fresh = ref [] in
  let mismatch fmt =
    Printf.ksprintf (fun m -> problems := m :: !problems) fmt
  in
  List.iter
    (fun (name, g, p) ->
      let r = Core.Allocation.solve ~decompose:admm_options p g ~procs:64 in
      match r.decomposed with
      | None -> mismatch "%s: the decomposed path did not run" name
      | Some st ->
          let blocks = st.Core.Decompose.blocks in
          let outer =
            st.Core.Decompose.admm.Convex.Admm.outer_iterations
          in
          let exp =
            Option.value (List.assoc_opt name golden) ~default:default_admm_exp
          in
          fresh :=
            Printf.sprintf "%-16s %.9f %g %d %d %d" name r.phi
              exp.phi_rel_tol blocks outer exp.iter_tol
            :: !fresh;
          if Float.is_nan exp.phi then mismatch "%s: no golden row" name
          else begin
            let delta = Float.abs (r.phi -. exp.phi) in
            let allowed = exp.phi_rel_tol *. Float.abs exp.phi in
            if delta > allowed then
              mismatch
                "%s: Phi %.9f vs golden %.9f — |delta| %.3g over tolerance \
                 %.3g (rel %g)"
                name r.phi exp.phi delta allowed exp.phi_rel_tol;
            if blocks <> exp.stages then
              mismatch "%s: %d blocks vs golden %d (exact-match field)" name
                blocks exp.stages;
            let drift = abs (outer - exp.iterations) in
            if drift > exp.iter_tol then
              mismatch
                "%s: %d outer iterations vs golden %d — drift %d over tol %d"
                name outer exp.iterations drift exp.iter_tol
          end)
    (admm_cases ());
  if Sys.getenv_opt "PARADIGM_GOLDEN_REGEN" <> None then
    Printf.printf
      "\n# fresh ADMM rows for test/golden/solver.golden (current \
       tolerances):\n%s\n"
      (String.concat "\n" (List.rev !fresh));
  match List.rev !problems with
  | [] -> ()
  | ps ->
      Alcotest.failf
        "%d ADMM golden mismatch(es):\n  %s\n\nIf the drift is intentional, \
         print replacement rows with\n  %s\nand paste them into \
         test/golden/solver.golden."
        (List.length ps)
        (String.concat "\n  " ps)
        regen_command

let suite =
  [
    Alcotest.test_case "Phi and stage counts match golden" `Slow test_golden;
    Alcotest.test_case "decomposed Phi/blocks/outer match golden" `Slow
      test_golden_admm;
  ]

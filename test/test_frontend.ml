(* Tests for the front end: AST validation, the textual parser, and
   lowering (dependence analysis -> MDG). *)

module G = Mdg.Graph
open Frontend

let simple_program () =
  Ast.program ~size:32
    [
      Ast.stmt "A" Ast.Init;
      Ast.stmt "B" Ast.Init;
      Ast.stmt "C" (Ast.Mul ("A", "B"));
      Ast.stmt "D" (Ast.Add ("C", "A"));
    ]

(* ------------------------------------------------------------------ *)
(* Ast                                                                 *)
(* ------------------------------------------------------------------ *)

let test_ast_valid () =
  let p = simple_program () in
  Alcotest.(check int) "4 stmts" 4 (List.length p.stmts);
  Alcotest.(check (list string))
    "matrices" [ "A"; "B"; "C"; "D" ] (Ast.defined_matrices p)

let test_ast_undefined_operand () =
  Alcotest.check_raises "undefined"
    (Invalid_argument "Ast.program: statement 0 reads undefined matrix X")
    (fun () ->
      ignore (Ast.program ~size:8 [ Ast.stmt "A" (Ast.Add ("X", "X")) ]))

let test_ast_use_before_def () =
  Alcotest.check_raises "use before def"
    (Invalid_argument "Ast.program: statement 0 reads undefined matrix A")
    (fun () ->
      ignore
        (Ast.program ~size:8
           [ Ast.stmt "B" (Ast.Add ("A", "A")); Ast.stmt "A" Ast.Init ]))

let test_ast_redefinition_allowed () =
  (* A matrix may be overwritten; later reads see the latest writer. *)
  let p =
    Ast.program ~size:8
      [
        Ast.stmt "A" Ast.Init;
        Ast.stmt "A" (Ast.Add ("A", "A"));
        Ast.stmt "B" (Ast.Add ("A", "A"));
      ]
  in
  let deps = Lower.flow_dependences p in
  (* B reads the redefinition (stmt 1), not the init (stmt 0). *)
  Alcotest.(check bool) "B depends on stmt 1" true
    (List.exists (fun (w, r, m) -> w = 1 && r = 2 && m = "A") deps);
  Alcotest.(check bool) "B does not depend on stmt 0" false
    (List.exists (fun (w, r, _) -> w = 0 && r = 2) deps)

let test_ast_kernels () =
  let p = simple_program () in
  Alcotest.(check bool) "init" true
    (Ast.kernel_of_stmt ~size:32 (List.nth p.stmts 0) = G.Matrix_init 32);
  Alcotest.(check bool) "mul" true
    (Ast.kernel_of_stmt ~size:32 (List.nth p.stmts 2) = G.Matrix_multiply 32);
  Alcotest.(check bool) "add" true
    (Ast.kernel_of_stmt ~size:32 (List.nth p.stmts 3) = G.Matrix_add 32)

(* ------------------------------------------------------------------ *)
(* Parse                                                               *)
(* ------------------------------------------------------------------ *)

let test_parse_roundtrip () =
  let text = "size 16\nA = init\nB = init @col\nC = A * B\nD = C + C @col\n" in
  let p = Parse.program_of_string text in
  Alcotest.(check int) "size" 16 p.size;
  Alcotest.(check int) "stmts" 4 (List.length p.stmts);
  let s1 = List.nth p.stmts 1 in
  Alcotest.(check bool) "col dist" true (s1.dist = Ast.Col);
  let reprinted = Parse.program_to_string p in
  let p2 = Parse.program_of_string reprinted in
  Alcotest.(check bool) "roundtrip" true (p = p2)

let test_parse_comments_blanks () =
  let text = "# header\nsize 8\n\nA = init   # trailing comment\nB = A + A\n" in
  let p = Parse.program_of_string text in
  Alcotest.(check int) "2 stmts" 2 (List.length p.stmts)

let test_parse_errors () =
  let fails text =
    try
      ignore (Parse.program_of_string text);
      false
    with Parse.Parse_error _ -> true
  in
  Alcotest.(check bool) "missing size" true (fails "A = init\n");
  Alcotest.(check bool) "bad operator" true (fails "size 4\nA = init\nB = A / A\n");
  Alcotest.(check bool) "bad size" true (fails "size zero\n");
  Alcotest.(check bool) "bad dist" true (fails "size 4\nA = init @diag\n");
  Alcotest.(check bool) "garbage" true (fails "size 4\nA = = =\n")

let test_parse_undefined_becomes_invalid_arg () =
  Alcotest.(check bool) "semantic error" true
    (try
       ignore (Parse.program_of_string "size 4\nB = A + A\n");
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Lower                                                               *)
(* ------------------------------------------------------------------ *)

let test_lower_structure () =
  let p = simple_program () in
  let g, map = Lower.to_mdg p in
  Alcotest.(check bool) "normalised" true (G.is_normalised g);
  (* 4 statements + START/STOP as needed.  A and B are sources, D is
     the only sink, so a START dummy is added: 4 + 1 START + 0 = ...
     sinks: D only.  sources: A, B -> START added.  5 nodes + STOP? D
     is the unique sink so no STOP. *)
  Alcotest.(check int) "5 nodes" 5 (G.num_nodes g);
  let c = map.node_of_stmt.(2) in
  Alcotest.(check int) "C has 2 preds" 2 (List.length (G.preds g c))

let test_lower_merges_operands () =
  (* D = C + C reads the same matrix twice: one edge with doubled
     bytes. *)
  let p =
    Ast.program ~size:16
      [
        Ast.stmt "A" Ast.Init;
        Ast.stmt "C" (Ast.Mul ("A", "A"));
        Ast.stmt "D" (Ast.Add ("C", "C"));
      ]
  in
  let g, map = Lower.to_mdg p in
  let edge =
    G.edge_between g ~src:map.node_of_stmt.(1) ~dst:map.node_of_stmt.(2)
  in
  match edge with
  | Some e ->
      Alcotest.(check (float 0.0)) "doubled bytes" (2.0 *. 8.0 *. 256.0) e.bytes
  | None -> Alcotest.fail "missing edge"

let test_lower_transfer_kinds () =
  let p =
    Ast.program ~size:8
      [
        Ast.stmt ~dist:Ast.Row "A" Ast.Init;
        Ast.stmt ~dist:Ast.Col "B" Ast.Init;
        Ast.stmt ~dist:Ast.Row "C" (Ast.Add ("A", "A"));
        Ast.stmt ~dist:Ast.Row "D" (Ast.Add ("B", "B"));
      ]
  in
  let g, map = Lower.to_mdg p in
  let kind src dst =
    match G.edge_between g ~src:map.node_of_stmt.(src) ~dst:map.node_of_stmt.(dst) with
    | Some e -> e.kind
    | None -> Alcotest.fail "missing edge"
  in
  Alcotest.(check bool) "row->row is 1D" true (kind 0 2 = G.Oned);
  Alcotest.(check bool) "col->row is 2D" true (kind 1 3 = G.Twod)

let test_lower_kernels_dedup () =
  let p = simple_program () in
  let ks = Lower.kernels p in
  Alcotest.(check int) "3 distinct kernels" 3 (List.length ks)

let test_lower_dependence_list () =
  let p = simple_program () in
  let deps = Lower.flow_dependences p in
  (* C reads A and B; D reads C and A. *)
  Alcotest.(check int) "4 dependences" 4 (List.length deps);
  Alcotest.(check bool) "0->2 A" true (List.mem (0, 2, "A") deps);
  Alcotest.(check bool) "1->2 B" true (List.mem (1, 2, "B") deps);
  Alcotest.(check bool) "2->3 C" true (List.mem (2, 3, "C") deps);
  Alcotest.(check bool) "0->3 A" true (List.mem (0, 3, "A") deps)

(* End to end: a front-end program goes through allocation, PSA and
   simulation without errors. *)
let test_lower_end_to_end () =
  let p =
    Ast.program ~size:64
      [
        Ast.stmt "A" Ast.Init;
        Ast.stmt "B" Ast.Init;
        Ast.stmt "C" (Ast.Mul ("A", "B"));
        Ast.stmt "D" (Ast.Mul ("B", "A"));
        Ast.stmt "E" (Ast.Add ("C", "D"));
      ]
  in
  let g, _ = Lower.to_mdg p in
  let gt = Machine.Ground_truth.cm5_like () in
  let params, _, _ =
    Machine.Measure.calibrate gt ~procs:[ 1; 2; 4; 8; 16 ] (Lower.kernels p)
  in
  let plan = Core.Pipeline.plan_exn params g ~procs:16 in
  let sim = Core.Pipeline.simulate gt plan in
  Alcotest.(check bool) "simulation completes" true (sim.finish_time > 0.0);
  Alcotest.(check bool) "prediction within 30%" true
    (Float.abs (Core.Pipeline.predicted_time plan -. sim.finish_time)
     /. sim.finish_time
    < 0.3)

(* ------------------------------------------------------------------ *)
(* Loader                                                              *)
(* ------------------------------------------------------------------ *)

let loader_error spec =
  match Loader.load spec with
  | Ok _ -> Alcotest.failf "expected %S to fail to load" spec
  | Error (`Msg msg) ->
      Alcotest.(check bool)
        (Printf.sprintf "%S error message is non-empty" spec)
        true
        (String.length msg > 0);
      msg

let test_loader_builtins () =
  List.iter
    (fun (spec, expect_kernels) ->
      match Loader.load spec with
      | Error (`Msg msg) -> Alcotest.failf "%S failed: %s" spec msg
      | Ok p ->
          Alcotest.(check bool)
            (spec ^ " has nodes") true
            (Mdg.Graph.num_nodes p.graph > 0);
          Alcotest.(check bool)
            (spec ^ " kernel list") expect_kernels (p.kernels <> []))
    [
      ("complex", true);
      ("complex:32", true);
      ("strassen:64", true);
      ("strassen2:32", true);
      ("example", false);
    ]

let test_loader_bad_size () =
  let msg = loader_error "complex:abc" in
  Alcotest.(check bool) "mentions the bad size" true
    (let contains hay needle =
       let nl = String.length needle and hl = String.length hay in
       let rec go i =
         i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
       in
       go 0
     in
     contains msg "abc");
  ignore (loader_error "complex:0");
  ignore (loader_error "complex:-4")

let test_loader_unknown () =
  ignore (loader_error "no-such-program");
  ignore (loader_error "/nonexistent/path/program.mp")

let test_loader_file () =
  let path = Filename.temp_file "loader_test" ".mp" in
  let oc = open_out path in
  output_string oc "size 32\nA = init\nB = init\nC = A * B\n";
  close_out oc;
  (match Loader.load path with
  | Error (`Msg msg) -> Alcotest.failf "file load failed: %s" msg
  | Ok p ->
      Alcotest.(check string) "named after the file" path p.name;
      Alcotest.(check bool) "has nodes" true (Mdg.Graph.num_nodes p.graph > 0));
  (* Malformed source must surface as a clean error, not an exception. *)
  let oc = open_out path in
  output_string oc "size 32\nA = init\nB = A $ A\n";
  close_out oc;
  ignore (loader_error path);
  Sys.remove path

let suite =
  [
    Alcotest.test_case "ast: valid program" `Quick test_ast_valid;
    Alcotest.test_case "ast: undefined operand" `Quick test_ast_undefined_operand;
    Alcotest.test_case "ast: use before definition" `Quick test_ast_use_before_def;
    Alcotest.test_case "ast: redefinition uses last writer" `Quick
      test_ast_redefinition_allowed;
    Alcotest.test_case "ast: kernel mapping" `Quick test_ast_kernels;
    Alcotest.test_case "parse: roundtrip" `Quick test_parse_roundtrip;
    Alcotest.test_case "parse: comments and blanks" `Quick
      test_parse_comments_blanks;
    Alcotest.test_case "parse: syntax errors" `Quick test_parse_errors;
    Alcotest.test_case "parse: semantic errors propagate" `Quick
      test_parse_undefined_becomes_invalid_arg;
    Alcotest.test_case "lower: structure" `Quick test_lower_structure;
    Alcotest.test_case "lower: operand merging" `Quick test_lower_merges_operands;
    Alcotest.test_case "lower: transfer kinds" `Quick test_lower_transfer_kinds;
    Alcotest.test_case "lower: kernel dedup" `Quick test_lower_kernels_dedup;
    Alcotest.test_case "lower: dependence list" `Quick test_lower_dependence_list;
    Alcotest.test_case "lower: end-to-end compile+simulate" `Slow
      test_lower_end_to_end;
    Alcotest.test_case "loader: builtins" `Quick test_loader_builtins;
    Alcotest.test_case "loader: bad size is a clean error" `Quick
      test_loader_bad_size;
    Alcotest.test_case "loader: unknown spec is a clean error" `Quick
      test_loader_unknown;
    Alcotest.test_case "loader: file round-trip and parse error" `Quick
      test_loader_file;
  ]

(* Tests for the flat-tape compiler (Convex.Tape): randomized
   cross-checks against the reference DAG-walking Expr.eval /
   Expr.eval_grad, central finite differences on the smoothed
   objective, the zero-allocation guarantee of a warm tape, and
   end-to-end consistency of Allocation.solve between the tape and
   reference solver engines. *)

open Convex
module G = Mdg.Graph
module P = Costmodel.Params

let nvars = 3

let rel_close ?(eps = 1e-9) a b =
  Float.abs (a -. b) <= eps *. (1.0 +. Float.max (Float.abs a) (Float.abs b))

(* ------------------------------------------------------------------ *)
(* Random posynomial/max DAGs with sharing                             *)
(* ------------------------------------------------------------------ *)

(* Leaves are monomial terms (plus occasional constants); interior
   nodes combine *previously generated* nodes with sum/max/scale, so
   the result is a genuine DAG with shared subexpressions, nested
   maxima and foldable constant subtrees — the shapes [Tape.compile]
   has to get right. *)
let random_dag_gen =
  let open QCheck.Gen in
  let term_gen =
    let* c = float_range 0.1 5.0 in
    let* k = int_range 1 nvars in
    let* expts =
      list_size (return k)
        (pair (int_range 0 (nvars - 1)) (float_range (-2.0) 2.0))
    in
    return (Expr.term ~coeff:c ~expts)
  in
  let leaf =
    frequency [ (4, term_gen); (1, map Expr.const (float_range 0.0 3.0)) ]
  in
  let combine pool =
    let* op = int_range 0 3 in
    let* picks = list_size (int_range 2 4) (oneofl pool) in
    match op with
    | 0 -> return (Expr.sum picks)
    | 1 -> return (Expr.max_ picks)
    | 2 ->
        let* s = float_range 0.0 2.0 in
        return (Expr.scale s (List.hd picks))
    | _ ->
        (* A sum with a constant summand exercises bias folding. *)
        let* c = float_range 0.0 2.0 in
        return (Expr.sum (Expr.const c :: picks))
  in
  let* leaves = list_size (int_range 3 6) leaf in
  let* rounds = int_range 2 6 in
  let rec grow pool rounds =
    if rounds = 0 then return (Expr.sum pool)
    else
      let* e = combine pool in
      grow (e :: pool) (rounds - 1)
  in
  grow leaves rounds

let point_gen =
  QCheck.Gen.(array_size (return nvars) (float_range (-1.5) 1.5))

let mus = [ 0.0; 0.05; 1.0 ]

let prop_tape_eval_matches_expr =
  QCheck.Test.make ~name:"tape eval == Expr.eval (random DAGs, all mu)"
    ~count:300
    (QCheck.make QCheck.Gen.(pair random_dag_gen point_gen))
    (fun (e, x) ->
      let tape = Tape.compile e in
      let ws = Tape.create_workspace tape in
      List.for_all
        (fun mu -> rel_close (Expr.eval ~mu e x) (Tape.eval ~mu tape ws x))
        mus)

let prop_tape_grad_matches_expr =
  QCheck.Test.make ~name:"tape eval_grad == Expr.eval_grad (random DAGs)"
    ~count:300
    (QCheck.make QCheck.Gen.(pair random_dag_gen point_gen))
    (fun (e, x) ->
      let tape = Tape.compile e in
      let ws = Tape.create_workspace tape in
      let grad = Array.make nvars 0.0 in
      List.for_all
        (fun mu ->
          let v_ref, g_ref = Expr.eval_grad ~mu e x in
          let v = Tape.eval_grad ~mu tape ws ~x ~grad in
          rel_close v_ref v
          && Array.for_all2 (fun a b -> rel_close a b) g_ref grad)
        mus)

let prop_tape_grad_matches_finite_difference =
  (* On the smoothed (mu > 0, C^1) objective the tape gradient must
     agree with central differences. *)
  QCheck.Test.make ~name:"tape gradient vs central finite differences"
    ~count:100
    (QCheck.make QCheck.Gen.(pair random_dag_gen point_gen))
    (fun (e, x) ->
      let mu = 0.1 in
      let tape = Tape.compile e in
      let ws = Tape.create_workspace tape in
      let grad = Array.make nvars 0.0 in
      ignore (Tape.eval_grad ~mu tape ws ~x ~grad);
      let h = 1e-6 in
      let ok = ref true in
      for i = 0 to nvars - 1 do
        let xp = Array.copy x and xm = Array.copy x in
        xp.(i) <- xp.(i) +. h;
        xm.(i) <- xm.(i) -. h;
        let fd = (Tape.eval ~mu tape ws xp -. Tape.eval ~mu tape ws xm) /. (2.0 *. h) in
        if not (rel_close ~eps:1e-3 fd grad.(i)) then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Structure: folding, sizes, validation                               *)
(* ------------------------------------------------------------------ *)

let test_tape_constant_folding () =
  (* A constant subtree (through scale/sum) collapses; a constant
     summand is fused into the sum's bias instead of keeping its own
     slot.  Maxima are never folded — smoothing makes even a constant
     max depend on the evaluation-time mu. *)
  let const_subtree =
    Expr.scale 2.0 (Expr.sum [ Expr.const 1.0; Expr.const 3.0 ])
  in
  let t = Expr.term ~coeff:1.0 ~expts:[ (0, 1.0) ] in
  let e = Expr.sum [ const_subtree; t; Expr.const 0.5 ] in
  let tape = Tape.compile e in
  (* Slots: the term and the sum — the constants all folded away. *)
  Alcotest.(check int) "slots" 2 (Tape.num_slots tape);
  let ws = Tape.create_workspace tape in
  let x = [| 0.3 |] in
  Alcotest.(check (float 1e-12))
    "folded value" (Expr.eval e x) (Tape.eval tape ws x);
  (* A constant max keeps its slots and smooths like the reference. *)
  let cm = Expr.sum [ Expr.max_ [ Expr.const 1.0; Expr.const 3.0 ]; t ] in
  let ctape = Tape.compile cm in
  let cws = Tape.create_workspace ctape in
  List.iter
    (fun mu ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "const max at mu=%g" mu)
        (Expr.eval ~mu cm x)
        (Tape.eval ~mu ctape cws x))
    [ 0.0; 0.5 ]

let test_tape_fully_constant () =
  let e = Expr.sum [ Expr.const 1.0; Expr.scale 3.0 (Expr.const 2.0) ] in
  let tape = Tape.compile e in
  Alcotest.(check int) "one slot" 1 (Tape.num_slots tape);
  Alcotest.(check int) "no vars" 0 (Tape.n_vars tape);
  let ws = Tape.create_workspace tape in
  Alcotest.(check (float 1e-12)) "value" 7.0 (Tape.eval tape ws [||])

let test_tape_dag_sharing_compiles_once () =
  let shared = Expr.term ~coeff:1.0 ~expts:[ (0, 1.0) ] in
  let e = Expr.sum [ Expr.scale 2.0 shared; Expr.scale 3.0 shared ] in
  let tape = Tape.compile e in
  (* term + two scales + sum = 4 slots, not 5 (shared term emitted once). *)
  Alcotest.(check int) "slots" 4 (Tape.num_slots tape)

let test_tape_rejects_short_x () =
  let e = Expr.term ~coeff:1.0 ~expts:[ (1, 1.0) ] in
  let tape = Tape.compile e in
  let ws = Tape.create_workspace tape in
  Alcotest.check_raises "short x"
    (Invalid_argument "Tape.eval: tape uses variable 1 but x has dim 1")
    (fun () -> ignore (Tape.eval tape ws [| 0.0 |]))

let test_tape_subgradient_at_kink_matches_expr () =
  (* At an exact tie the subgradient must pick the same branch as the
     reference (first maximising branch in construction order). *)
  let a = Expr.term ~coeff:1.0 ~expts:[ (0, 1.0) ] in
  let b = Expr.term ~coeff:1.0 ~expts:[ (0, -1.0) ] in
  let m = Expr.max_ [ a; b ] in
  let x = [| 0.0 |] in
  let _, g_ref = Expr.eval_grad m x in
  let tape = Tape.compile m in
  let ws = Tape.create_workspace tape in
  let grad = Array.make 1 0.0 in
  ignore (Tape.eval_grad tape ws ~x ~grad);
  Alcotest.(check (float 1e-12)) "same branch" g_ref.(0) grad.(0)

(* ------------------------------------------------------------------ *)
(* Affine/hinge opcodes (the consensus-ADMM block-objective grammar)   *)
(* ------------------------------------------------------------------ *)

(* An ADMM-shaped objective: hinge penalties and two-sided pins over
   affine forms, mixed with a posynomial term under a max. *)
let admm_shaped_expr () =
  Expr.sum
    [
      Expr.hinge (Expr.affine ~bias:(-0.2) ~coefs:[ (0, 1.0); (1, -1.0) ]);
      Expr.sq_affine ~bias:0.4 ~coefs:[ (1, 1.5); (2, -0.25) ];
      Expr.max_
        [
          Expr.term ~coeff:0.5 ~expts:[ (0, 1.0); (2, -0.5) ];
          Expr.hinge (Expr.affine ~bias:0.1 ~coefs:[ (2, 1.0) ]);
        ];
    ]

let test_tape_affine_hinge_matches_expr () =
  let e = admm_shaped_expr () in
  let tape = Tape.compile e in
  let ws = Tape.create_workspace tape in
  let grad = Array.make nvars 0.0 in
  List.iter
    (fun x ->
      List.iter
        (fun mu ->
          let v_ref, g_ref = Expr.eval_grad ~mu e x in
          let v = Tape.eval_grad ~mu tape ws ~x ~grad in
          if not (rel_close v_ref v) then
            Alcotest.failf "affine/hinge value mismatch at mu=%g" mu;
          Array.iteri
            (fun i gi ->
              if not (rel_close ~eps:1e-9 gi grad.(i)) then
                Alcotest.failf
                  "affine/hinge gradient mismatch at mu=%g, var %d" mu i)
            g_ref)
        mus)
    [ [| 0.3; -0.4; 0.8 |]; [| -1.0; 1.0; 0.0 |]; [| 0.2; 0.2; 0.2 |] ]

let test_tape_hinge_hvp_matches_finite_difference () =
  (* The hinge opcode's adjoint-tangent injection: H·dx from
     forward-over-reverse vs central differences of the tape gradient
     along dx, at a point where every hinge is strictly active or
     strictly inactive (the generalised Hessian is locally exact). *)
  let e = admm_shaped_expr () in
  let mu = 0.1 in
  let tape = Tape.compile e in
  let ws = Tape.create_workspace tape in
  let x = [| 0.3; -0.4; 0.8 |] in
  let dx = [| 0.5; -1.0; 0.25 |] in
  let grad = Array.make nvars 0.0 in
  let hvp = Array.make nvars 0.0 in
  ignore (Tape.eval_hvp ~mu tape ws ~x ~dx ~grad ~hvp);
  let h = 1e-5 in
  let at s =
    let xs = Array.mapi (fun i xi -> xi +. (s *. dx.(i))) x in
    let g = Array.make nvars 0.0 in
    ignore (Tape.eval_grad ~mu tape ws ~x:xs ~grad:g);
    g
  in
  let gp = at h and gm = at (-.h) in
  for i = 0 to nvars - 1 do
    let fd = (gp.(i) -. gm.(i)) /. (2.0 *. h) in
    if not (rel_close ~eps:1e-4 fd hvp.(i)) then
      Alcotest.failf "hinge HVP vs finite differences: var %d (%g vs %g)" i
        hvp.(i) fd
  done

(* ------------------------------------------------------------------ *)
(* Zero allocation on the warm path                                    *)
(* ------------------------------------------------------------------ *)

let test_tape_warm_gradient_no_alloc () =
  (* A warm tape gradient must not allocate per DAG node or per
     variable (the reference implementation allocates an n-vector per
     node).  The only per-call heap traffic permitted is the boxed
     float return and optional-argument wrapper at the API boundary —
     a constant handful of words, independent of tape size. *)
  let e =
    Expr.sum
      (List.init 20 (fun i ->
           Expr.max_
             [
               Expr.term ~coeff:(1.0 +. float_of_int i)
                 ~expts:[ (i mod nvars, 1.0); ((i + 1) mod nvars, -0.5) ];
               Expr.term ~coeff:0.5 ~expts:[ ((i + 2) mod nvars, 2.0) ];
               Expr.const (float_of_int i);
             ]))
  in
  let tape = Tape.compile e in
  let ws = Tape.create_workspace tape in
  let x = [| 0.2; -0.4; 0.6 |] in
  let grad = Array.make nvars 0.0 in
  (* Warm up both code paths. *)
  ignore (Tape.eval_grad tape ws ~x ~grad);
  ignore (Tape.eval_grad ~mu:0.01 tape ws ~x ~grad);
  let calls = 200 in
  let words_before = Gc.minor_words () in
  for _ = 1 to calls do
    ignore (Tape.eval_grad tape ws ~x ~grad);
    ignore (Tape.eval_grad ~mu:0.01 tape ws ~x ~grad);
    ignore (Tape.eval ~mu:0.01 tape ws x)
  done;
  let words = Gc.minor_words () -. words_before in
  let per_call = words /. float_of_int (3 * calls) in
  if per_call >= 16.0 then
    Alcotest.failf "warm tape call allocates %.1f words per call" per_call

(* ------------------------------------------------------------------ *)
(* End-to-end: tape vs reference solver engines                        *)
(* ------------------------------------------------------------------ *)

let seed_params kernels =
  let p = P.make ~transfer:P.cm5_transfer in
  List.iter
    (fun k ->
      match k with
      | G.Matrix_multiply _ -> P.set_processing p k { alpha = 0.12; tau = 0.3 }
      | G.Matrix_add _ | G.Matrix_init _ ->
          P.set_processing p k { alpha = 0.07; tau = 0.004 }
      | G.Synthetic _ | G.Dummy -> ())
    kernels;
  p

let check_engines_agree name g kernels =
  let params = seed_params kernels in
  let g = G.normalise g in
  let procs = 64 in
  (* Disable the Newton-CG refinement so both engines run the identical
     FISTA trajectory: this test isolates the evaluator (tape vs Expr).
     Second-order-vs-reference agreement is pinned separately by the
     solver property suite. *)
  let options = { Solver.default_options with second_order = false } in
  let tape = Core.Allocation.solve ~options params g ~procs in
  let reference = Core.Allocation.solve ~options ~engine:`Reference params g ~procs in
  let rel = Float.abs (tape.phi -. reference.phi) /. reference.phi in
  if rel > 1e-6 then
    Alcotest.failf "%s: tape phi %.9f vs reference phi %.9f (rel %.2e)" name
      tape.phi reference.phi rel;
  (* Both allocations must be feasible and equivalent under the exact
     objective. *)
  let eval alloc = Core.Allocation.evaluate params g ~procs ~alloc in
  let d = Float.abs (eval tape.alloc -. eval reference.alloc) in
  Alcotest.(check bool)
    (name ^ ": allocations equivalent under exact objective") true
    (d /. reference.phi < 1e-6)

let test_solver_engines_agree_complex_mm () =
  let g, _ = Kernels.Complex_mm.graph ~n:64 () in
  check_engines_agree "complex-mm" g (Kernels.Complex_mm.kernels ~n:64)

let test_solver_engines_agree_strassen () =
  let g, _ = Kernels.Strassen_mdg.graph ~n:128 () in
  check_engines_agree "strassen" g (Kernels.Strassen_mdg.kernels ~n:128)

let test_allocation_objective_tape_smoke () =
  (* Cheap consistency smoke on the real allocation objective: tape
     and reference evaluate identically at random feasible points. *)
  let g, _ = Kernels.Strassen_mdg.graph ~n:128 () in
  let g = G.normalise g in
  let params = seed_params (Kernels.Strassen_mdg.kernels ~n:128) in
  let obj = Core.Allocation.objective params g ~procs:64 in
  let tape = Tape.compile obj in
  let ws = Tape.create_workspace tape in
  let n = G.num_nodes g in
  let grad = Array.make n 0.0 in
  let rng = Random.State.make [| 1994 |] in
  for _ = 1 to 20 do
    let x =
      Array.init n (fun _ -> Random.State.float rng (log 64.0))
    in
    List.iter
      (fun mu ->
        let v_ref, g_ref = Expr.eval_grad ~mu obj x in
        let v = Tape.eval_grad ~mu tape ws ~x ~grad in
        if not (rel_close v_ref v) then
          Alcotest.failf "objective value mismatch at mu=%g" mu;
        Array.iteri
          (fun i gi ->
            if not (rel_close ~eps:1e-8 gi grad.(i)) then
              Alcotest.failf "objective gradient mismatch at mu=%g, var %d" mu i)
          g_ref)
      [ 0.0; 1e-3 ]
  done

let suite =
  [
    QCheck_alcotest.to_alcotest prop_tape_eval_matches_expr;
    QCheck_alcotest.to_alcotest prop_tape_grad_matches_expr;
    QCheck_alcotest.to_alcotest prop_tape_grad_matches_finite_difference;
    Alcotest.test_case "tape folds constants" `Quick test_tape_constant_folding;
    Alcotest.test_case "tape folds fully-constant DAGs" `Quick
      test_tape_fully_constant;
    Alcotest.test_case "tape compiles shared nodes once" `Quick
      test_tape_dag_sharing_compiles_once;
    Alcotest.test_case "tape rejects short x" `Quick test_tape_rejects_short_x;
    Alcotest.test_case "tape subgradient at kink matches Expr" `Quick
      test_tape_subgradient_at_kink_matches_expr;
    Alcotest.test_case "affine/hinge opcodes match Expr" `Quick
      test_tape_affine_hinge_matches_expr;
    Alcotest.test_case "hinge HVP vs finite differences" `Quick
      test_tape_hinge_hvp_matches_finite_difference;
    Alcotest.test_case "warm tape gradient allocates nothing" `Quick
      test_tape_warm_gradient_no_alloc;
    Alcotest.test_case "solver engines agree: complex-mm" `Quick
      test_solver_engines_agree_complex_mm;
    Alcotest.test_case "solver engines agree: strassen" `Slow
      test_solver_engines_agree_strassen;
    Alcotest.test_case "allocation objective: tape smoke" `Quick
      test_allocation_objective_tape_smoke;
  ]

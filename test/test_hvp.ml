(* Property suite for Tape.eval_hvp: the forward-over-reverse
   Hessian-vector product is checked against central finite differences
   of the tape gradient on random posynomial-with-max DAGs, the induced
   bilinear form is symmetric, and the value/gradient computed alongside
   the product agree exactly with the plain evaluation sweeps. *)

open Convex
module Vec = Numeric.Vec

let nvars = 3

(* Random expressions of the objective's shape — sums and maxima of
   posynomial terms, arbitrarily nested — over a fixed small variable
   set so points and directions are easy to generate. *)
let expr_gen =
  let open QCheck.Gen in
  let term =
    let* c = float_range 0.1 5.0 in
    let* es =
      list_size (int_range 1 3)
        (pair (int_range 0 (nvars - 1)) (float_range (-2.0) 2.0))
    in
    return (Expr.term ~coeff:c ~expts:es)
  in
  let rec build depth =
    if depth = 0 then term
    else
      frequency
        [
          (2, term);
          ( 3,
            let* xs = list_size (int_range 2 4) (build (depth - 1)) in
            return (Expr.sum xs) );
          ( 3,
            let* xs = list_size (int_range 2 4) (build (depth - 1)) in
            return (Expr.max_ xs) );
          ( 1,
            let* s = float_range 0.1 2.0 in
            let* e = build (depth - 1) in
            return (Expr.scale s e) );
        ]
  in
  build 3

let point_gen = QCheck.Gen.(array_size (return nvars) (float_range (-1.2) 1.2))
let dir_gen = QCheck.Gen.(array_size (return nvars) (float_range (-1.0) 1.0))

let case_gen = QCheck.(make Gen.(triple expr_gen point_gen dir_gen))

let hvp_of ~mu e ~x ~dx =
  let t = Tape.compile e in
  let ws = Tape.create_workspace t in
  let grad = Vec.create nvars 0.0 in
  let hvp = Vec.create nvars 0.0 in
  let v = Tape.eval_hvp ~mu t ws ~x ~dx ~grad ~hvp in
  (t, ws, v, grad, hvp)

(* H·v against a central finite difference of the gradient.  Only at
   mu > 0 — the smoothed objective is C², whereas at mu <= 0 the
   generalised Hessian of the active piece need not match differences
   taken across a kink. *)
let prop_hvp_matches_fd ~mu =
  QCheck.Test.make
    ~name:(Printf.sprintf "HVP = FD of gradient (mu = %g)" mu)
    ~count:150 case_gen
    (fun (e, x, dx) ->
      let t, ws, _, _, hvp = hvp_of ~mu e ~x ~dx in
      let h = 1e-5 in
      let shift s = Array.mapi (fun i xi -> xi +. (s *. h *. dx.(i))) x in
      let gp = Vec.create nvars 0.0 in
      let gm = Vec.create nvars 0.0 in
      ignore (Tape.eval_grad ~mu t ws ~x:(shift 1.0) ~grad:gp);
      ignore (Tape.eval_grad ~mu t ws ~x:(shift (-1.0)) ~grad:gm);
      let scale = ref 1.0 in
      Array.iter (fun v -> scale := Float.max !scale (Float.abs v)) hvp;
      let ok = ref true in
      for i = 0 to nvars - 1 do
        let fd = (gp.(i) -. gm.(i)) /. (2.0 *. h) in
        if Float.abs (fd -. hvp.(i)) > 1e-4 *. !scale then ok := false
      done;
      !ok)

(* The Hessian is symmetric: <Hv, w> = <Hw, v>. *)
let prop_hvp_symmetric ~mu =
  QCheck.Test.make
    ~name:(Printf.sprintf "<Hv,w> = <Hw,v> (mu = %g)" mu)
    ~count:150
    QCheck.(make Gen.(pair (triple expr_gen point_gen dir_gen) dir_gen))
    (fun ((e, x, v), w) ->
      let _, _, _, _, hv = hvp_of ~mu e ~x ~dx:v in
      let _, _, _, _, hw = hvp_of ~mu e ~x ~dx:w in
      let dot a b =
        let s = ref 0.0 in
        Array.iteri (fun i ai -> s := !s +. (ai *. b.(i))) a;
        !s
      in
      let hvw = dot hv w and hwv = dot hw v in
      Float.abs (hvw -. hwv) <= 1e-9 *. (1.0 +. Float.abs hvw))

(* The value and gradient computed alongside the product are the same
   sweeps eval/eval_grad run, at smoothed and exact temperatures. *)
let prop_hvp_value_grad_consistent ~mu =
  QCheck.Test.make
    ~name:(Printf.sprintf "eval_hvp value/gradient = eval/eval_grad (mu = %g)" mu)
    ~count:150 case_gen
    (fun (e, x, dx) ->
      let t, ws, v, grad, _ = hvp_of ~mu e ~x ~dx in
      let g' = Vec.create nvars 0.0 in
      let v' = Tape.eval_grad ~mu t ws ~x ~grad:g' in
      v = v' && Array.for_all2 (fun a b -> a = b) grad g')

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_hvp_matches_fd ~mu:1.0;
      prop_hvp_matches_fd ~mu:0.05;
      prop_hvp_symmetric ~mu:1.0;
      prop_hvp_symmetric ~mu:0.05;
      prop_hvp_value_grad_consistent ~mu:1.0;
      prop_hvp_value_grad_consistent ~mu:0.05;
      prop_hvp_value_grad_consistent ~mu:0.0;
    ]

(* Singleflight coalescing (ISSUE 10 tentpole):

   - rendezvous: K concurrent identical misses enter the solver exactly
     once, everyone gets the leader's result (private copies);
   - leader failure: the exception is re-raised in every waiter — no
     waiter hangs — and the flight is cleaned up so a retry solves
     fresh;
   - pipeline level: K domains planning the same request through one
     shared cache compile exactly one tape and receive bit-identical
     plans;
   - a small QCheck property runs the pipeline race over random layered
     graphs. *)

module P = Core.Pipeline
module PC = Core.Plan_cache

let fake_result n value =
  {
    Core.Allocation.alloc = Array.make n value;
    phi = value;
    average = value;
    critical_path = value;
    solver =
      {
        Convex.Solver.x = Array.make n value;
        value;
        iterations = 1;
        stages = 1;
        converged = true;
        hvp_evals = 0;
        cg_iterations = 0;
      };
    decomposed = None;
  }

let key ?(h = 42) ?(procs = 16) () =
  { PC.graph_hash = Int64.of_int h; fingerprint = 0L; procs }

(* Leader-side rendezvous: hold the solve open until [k - 1] followers
   are blocked on the flight, so the coalescing below is deterministic
   rather than a scheduling accident.  The deadline keeps a broken
   implementation from hanging the suite — assertions then fail
   instead. *)
let await_waiters cache key ~n =
  let deadline = Unix.gettimeofday () +. 5.0 in
  while PC.waiting cache key < n && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.001
  done

let test_k_misses_one_solve () =
  let cache = PC.create () in
  let k = 4 in
  let key = key () in
  let entries = Atomic.make 0 in
  let solve () =
    Atomic.incr entries;
    await_waiters cache key ~n:(k - 1);
    fake_result 3 1.5
  in
  let doms =
    List.init k (fun _ -> Domain.spawn (fun () -> PC.coalesce cache key ~solve))
  in
  let results = List.map Domain.join doms in
  Alcotest.(check int) "exactly one solver entry" 1 (Atomic.get entries);
  let leaders =
    List.length (List.filter (fun (_, role) -> role = `Leader) results)
  in
  Alcotest.(check int) "exactly one leader" 1 leaders;
  List.iter
    (fun ((r : Core.Allocation.result), _) ->
      Alcotest.(check (float 0.0)) "shared phi" 1.5 r.phi;
      Alcotest.(check (array (float 0.0))) "shared alloc" (Array.make 3 1.5)
        r.alloc)
    results;
  (* The returned arrays are private copies: no two results alias. *)
  let allocs = List.map (fun ((r : Core.Allocation.result), _) -> r.alloc) results in
  List.iteri
    (fun i a ->
      List.iteri (fun j b -> if i < j then assert (not (a == b))) allocs)
    allocs;
  let stats = PC.stats cache in
  Alcotest.(check int) "one coalesce leader" 1 stats.coalesce_leaders;
  Alcotest.(check int) "k-1 coalesce hits" (k - 1) stats.coalesce_hits;
  Alcotest.(check int) "flight cleaned up" 0 (PC.waiting cache key)

exception Boom

let test_leader_failure_propagates () =
  let cache = PC.create () in
  let k = 4 in
  let key = key () in
  let entries = Atomic.make 0 in
  let solve () =
    Atomic.incr entries;
    await_waiters cache key ~n:(k - 1);
    raise Boom
  in
  let doms =
    List.init k (fun _ ->
        Domain.spawn (fun () ->
            match PC.coalesce cache key ~solve with
            | _ -> `Result
            | exception Boom -> `Boom
            | exception _ -> `Other))
  in
  let outcomes = List.map Domain.join doms in
  (* Every caller — the leader and all waiters — observes the typed
     failure; nobody hangs, nobody gets a stale result. *)
  List.iter
    (fun o ->
      Alcotest.(check bool) "every caller saw the leader's exception" true
        (o = `Boom))
    outcomes;
  Alcotest.(check int) "one failed solver entry" 1 (Atomic.get entries);
  Alcotest.(check int) "no waiters left behind" 0 (PC.waiting cache key);
  (* Nothing was published: the next request for the key solves
     fresh (and succeeds). *)
  let r, role = PC.coalesce cache key ~solve:(fun () -> fake_result 3 2.0) in
  Alcotest.(check bool) "retry leads a fresh flight" true (role = `Leader);
  Alcotest.(check (float 0.0)) "retry solved fresh" 2.0 r.phi

(* A reusable start-line: released once every party has arrived, so
   the K pipeline calls below actually race. *)
let barrier k =
  let lock = Mutex.create () and cond = Condition.create () in
  let arrived = ref 0 in
  fun () ->
    Mutex.protect lock (fun () ->
        incr arrived;
        if !arrived >= k then Condition.broadcast cond
        else while !arrived < k do Condition.wait cond lock done)

let race_plans ~k cache req =
  let config = P.(default_config |> with_cache cache) in
  let await = barrier k in
  List.init k (fun _ ->
      Domain.spawn (fun () ->
          await ();
          P.plan ~config req))
  |> List.map Domain.join

let check_one_solve_identical_plans ~k cache plans =
  let plans =
    List.map
      (function
        | Ok p -> p
        | Error e -> Alcotest.failf "plan failed: %s" (P.error_to_string e))
      plans
  in
  let stats = PC.stats cache in
  (* Followers never compile; late arrivals hit the resident tape: the
     whole race costs exactly one compile. *)
  Alcotest.(check int) "exactly one tape compile" 1 stats.tape_misses;
  (* Every request is a coalesce leader, a coalesced follower, or a
     post-publication exact warm hit — nothing solved redundantly. *)
  Alcotest.(check int) "k requests partition into lead/follow/warm-hit" k
    (stats.coalesce_leaders + stats.coalesce_hits + stats.warm_hits);
  Alcotest.(check bool) "at least one leader" true (stats.coalesce_leaders >= 1);
  let coalesced =
    List.length (List.filter (fun (p : P.plan) -> p.cache.coalesced) plans)
  in
  Alcotest.(check int) "coalesced outcomes match the counter"
    stats.coalesce_hits coalesced;
  (* Bit-identical plans: same Phi, same allocation vector. *)
  let first = List.hd plans in
  List.iter
    (fun (p : P.plan) ->
      Alcotest.(check (float 0.0)) "identical phi" (P.phi first) (P.phi p);
      Alcotest.(check (array (float 0.0)))
        "identical allocation" first.allocation.alloc p.allocation.alloc)
    plans

let test_pipeline_race () =
  let k = 4 in
  let g = Generators.mdg_of_layered { Generators.seed = 42; layers = 2; width = 2 } in
  let params = Generators.synth_params () in
  let cache = PC.create () in
  let plans = race_plans ~k cache (P.request params g ~procs:16) in
  check_one_solve_identical_plans ~k cache plans

let prop_race_one_solve =
  QCheck.Test.make
    ~name:"pipeline race: one compile, identical plans (random graphs)"
    ~count:(Generators.count 8)
    (Generators.layered ~max_layers:2 ~max_width:2 ())
    (fun case ->
      let k = 3 in
      let g = Generators.mdg_of_layered case in
      let params = Generators.synth_params () in
      let cache = PC.create () in
      let plans = race_plans ~k cache (P.request params g ~procs:8) in
      check_one_solve_identical_plans ~k cache plans;
      true)

let suite =
  [
    Alcotest.test_case "K concurrent misses, one solve" `Quick
      test_k_misses_one_solve;
    Alcotest.test_case "leader failure wakes every waiter" `Quick
      test_leader_failure_propagates;
    Alcotest.test_case "pipeline race: one compile, identical plans" `Quick
      test_pipeline_race;
    QCheck_alcotest.to_alcotest prop_race_one_solve;
  ]

(* Tests for the extension modules: MDG/schedule serialisation, static
   cost estimation and heuristic allocation baselines. *)

module G = Mdg.Graph
module P = Costmodel.Params

let check_close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Mdg.Serialize                                                       *)
(* ------------------------------------------------------------------ *)

let graphs_equal g1 g2 =
  G.num_nodes g1 = G.num_nodes g2
  && Array.for_all2
       (fun (a : G.node) (b : G.node) ->
         a.id = b.id && a.label = b.label && a.kernel = b.kernel)
       (G.nodes g1) (G.nodes g2)
  && List.equal
       (fun (a : G.edge) (b : G.edge) ->
         a.src = b.src && a.dst = b.dst && a.bytes = b.bytes && a.kind = b.kind)
       (G.edges g1) (G.edges g2)

let test_serialize_roundtrip_paper_graphs () =
  List.iter
    (fun g ->
      let text = Mdg.Serialize.to_string g in
      let g' = Mdg.Serialize.of_string text in
      Alcotest.(check bool) "roundtrip" true (graphs_equal g g'))
    [
      fst (Kernels.Complex_mm.graph ~n:64 ());
      fst (Kernels.Strassen_mdg.graph ~n:128 ());
      Kernels.Example_mdg.graph ();
    ]

let test_serialize_labels_with_specials () =
  let b = G.create_builder () in
  ignore
    (G.add_node b ~label:"weird \"label\" with \\ and\nnewline"
       ~kernel:(Synthetic { alpha = 0.1; tau = 1.0 }));
  ignore (G.add_node b ~label:"" ~kernel:G.Dummy);
  G.add_edge b ~src:0 ~dst:1 ~bytes:12.5 ~kind:Twod;
  let g = G.build b in
  let g' = Mdg.Serialize.of_string (Mdg.Serialize.to_string g) in
  Alcotest.(check bool) "specials roundtrip" true (graphs_equal g g')

let test_serialize_file_io () =
  let g = fst (Kernels.Complex_mm.graph ~n:16 ()) in
  let path = Filename.temp_file "mdg" ".txt" in
  Mdg.Serialize.save path g;
  let g' = Mdg.Serialize.load path in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip" true (graphs_equal g g')

let test_serialize_errors () =
  let fails text =
    try
      ignore (Mdg.Serialize.of_string text);
      false
    with Mdg.Serialize.Parse_error _ -> true
  in
  Alcotest.(check bool) "no header" true (fails "node 0 dummy \"x\"\n");
  Alcotest.(check bool) "bad kernel" true (fails "mdg\nnode 0 frobnicate \"x\"\n");
  Alcotest.(check bool) "sparse ids" true (fails "mdg\nnode 1 dummy \"x\"\n");
  Alcotest.(check bool) "bad kind" true
    (fails "mdg\nnode 0 dummy \"x\"\nnode 1 dummy \"y\"\nedge 0 1 1 3d\n");
  Alcotest.(check bool) "unterminated label" true (fails "mdg\nnode 0 dummy \"x\n")

let prop_serialize_roundtrip_random =
  QCheck.Test.make ~name:"serialize roundtrips random workloads" ~count:30
    QCheck.(int_range 0 5000)
    (fun seed ->
      let g =
        Kernels.Workloads.random_layered ~seed Kernels.Workloads.default_shape
      in
      graphs_equal g (Mdg.Serialize.of_string (Mdg.Serialize.to_string g)))

(* ------------------------------------------------------------------ *)
(* Core.Schedule_io                                                    *)
(* ------------------------------------------------------------------ *)

let schedules_equal s1 s2 =
  Core.Schedule.machine_procs s1 = Core.Schedule.machine_procs s2
  && List.equal
       (fun (a : Core.Schedule.entry) (b : Core.Schedule.entry) ->
         a.node = b.node && a.start = b.start && a.finish = b.finish
         && a.procs = b.procs)
       (Core.Schedule.entries s1) (Core.Schedule.entries s2)

let test_schedule_io_roundtrip () =
  let g = fst (Kernels.Complex_mm.graph ~n:64 ()) in
  let params = P.cm5 () in
  Costmodel.Params.set_processing params (G.Matrix_init 64)
    { alpha = 0.05; tau = 1.6e-3 };
  let plan = Core.Pipeline.plan_exn params g ~procs:8 in
  let s = Core.Pipeline.schedule plan in
  let s' = Core.Schedule_io.of_string (Core.Schedule_io.to_string s) in
  Alcotest.(check bool) "roundtrip" true (schedules_equal s s')

let test_schedule_io_errors () =
  let fails text =
    try
      ignore (Core.Schedule_io.of_string text);
      false
    with Core.Schedule_io.Parse_error _ -> true
  in
  Alcotest.(check bool) "no header" true (fails "entry 0 0 1 0\n");
  Alcotest.(check bool) "bad procs" true (fails "schedule zero\n");
  Alcotest.(check bool) "garbage" true (fails "schedule 4\nentry x\n")

let test_schedule_io_file () =
  let s =
    Core.Schedule.make ~machine_procs:4
      [
        { Core.Schedule.node = 0; procs = [| 0; 2 |]; start = 0.0; finish = 0.5 };
        { Core.Schedule.node = 1; procs = [| 1 |]; start = 0.25; finish = 1.0 };
      ]
  in
  let path = Filename.temp_file "sched" ".txt" in
  Core.Schedule_io.save path s;
  let s' = Core.Schedule_io.load path in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip" true (schedules_equal s s')

(* ------------------------------------------------------------------ *)
(* Static_estimate                                                     *)
(* ------------------------------------------------------------------ *)

let ds = Costmodel.Static_estimate.cm5_datasheet

let test_static_estimates_reasonable () =
  (* Within the right ballpark of the paper's Table 1 — static
     estimation is allowed to be rough but must not be wild. *)
  let add = Costmodel.Static_estimate.estimate_processing ds (G.Matrix_add 64) in
  let mul =
    Costmodel.Static_estimate.estimate_processing ds (G.Matrix_multiply 64)
  in
  Alcotest.(check bool) "add tau within 30%" true
    (Float.abs (add.tau -. 3.73e-3) /. 3.73e-3 < 0.3);
  Alcotest.(check bool) "mul tau within 30%" true
    (Float.abs (mul.tau -. 298.47e-3) /. 298.47e-3 < 0.3);
  Alcotest.(check bool) "mul alpha in [5%, 20%]" true
    (mul.alpha > 0.05 && mul.alpha < 0.2);
  Alcotest.(check bool) "alphas ordered: mul > add" true (mul.alpha > add.alpha)

let test_static_scaling_with_size () =
  (* tau scales with the operation count; alpha shrinks as loops get
     bigger (fixed overheads amortise). *)
  let small = Costmodel.Static_estimate.estimate_processing ds (G.Matrix_add 32) in
  let large = Costmodel.Static_estimate.estimate_processing ds (G.Matrix_add 128) in
  Alcotest.(check bool) "tau grows ~16x" true
    (large.tau /. small.tau > 10.0 && large.tau /. small.tau < 20.0);
  Alcotest.(check bool) "alpha shrinks" true (large.alpha < small.alpha)

let test_static_synthetic_dummy () =
  let s =
    Costmodel.Static_estimate.estimate_processing ds
      (G.Synthetic { alpha = 0.3; tau = 2.0 })
  in
  check_close "synthetic passthrough" 0.3 s.alpha;
  let d = Costmodel.Static_estimate.estimate_processing ds G.Dummy in
  check_close "dummy" 0.0 d.tau

let test_static_params_usable_end_to_end () =
  (* A statically-parameterised compile runs and lands within 2x of the
     fitted-parameter compile on the simulated machine. *)
  let g, _ = Kernels.Complex_mm.graph ~n:64 () in
  let gt = Machine.Ground_truth.cm5_like () in
  let static_params =
    Costmodel.Static_estimate.params ds (Kernels.Complex_mm.kernels ~n:64)
  in
  let fitted_params, _, _ =
    Machine.Measure.calibrate gt
      ~procs:[ 1; 2; 4; 8; 16; 32; 64 ]
      (Kernels.Complex_mm.kernels ~n:64)
  in
  let run params =
    (Core.Pipeline.simulate gt (Core.Pipeline.plan_exn params g ~procs:32)).finish_time
  in
  let t_static = run static_params and t_fitted = run fitted_params in
  Alcotest.(check bool)
    (Printf.sprintf "static %.4f vs fitted %.4f" t_static t_fitted)
    true
    (t_static < 2.0 *. t_fitted)

(* ------------------------------------------------------------------ *)
(* Heuristic                                                           *)
(* ------------------------------------------------------------------ *)

let heuristic_params () =
  let params = P.make ~transfer:P.cm5_transfer in
  params

let test_heuristic_data_parallel () =
  let g = Kernels.Workloads.fork_join ~branches:3 ~tau:1.0 ~alpha:0.1 ~bytes:1024.0 in
  let alloc =
    Core.Heuristic.allocate (heuristic_params ()) g ~procs:8 Core.Heuristic.Data_parallel
  in
  Array.iter (fun a -> check_close "all p" 8.0 a) alloc

let test_heuristic_level_uniform () =
  let g = Kernels.Workloads.fork_join ~branches:4 ~tau:1.0 ~alpha:0.1 ~bytes:1024.0 in
  let alloc =
    Core.Heuristic.allocate (heuristic_params ()) g ~procs:8 Core.Heuristic.Level_uniform
  in
  (* The 4 branch nodes share a level: 2 processors each. *)
  let branch_alloc = alloc.(2) in
  check_close "branch gets p/4" 2.0 branch_alloc

let test_heuristic_tau_proportional () =
  let b = G.create_builder () in
  let fork = G.add_node b ~label:"fork" ~kernel:(Synthetic { alpha = 0.1; tau = 1.0 }) in
  let heavy = G.add_node b ~label:"heavy" ~kernel:(Synthetic { alpha = 0.1; tau = 3.0 }) in
  let light = G.add_node b ~label:"light" ~kernel:(Synthetic { alpha = 0.1; tau = 1.0 }) in
  G.add_edge b ~src:fork ~dst:heavy ~bytes:0.0 ~kind:Oned;
  G.add_edge b ~src:fork ~dst:light ~bytes:0.0 ~kind:Oned;
  let g = G.normalise (G.build b) in
  let alloc =
    Core.Heuristic.allocate (heuristic_params ()) g ~procs:8
      Core.Heuristic.Level_tau_proportional
  in
  check_close "heavy gets 3/4 of 8" 6.0 alloc.(heavy);
  check_close "light gets 1/4 of 8" 2.0 alloc.(light)

let test_heuristic_alloc_in_range () =
  let g =
    Kernels.Workloads.random_layered ~seed:5 Kernels.Workloads.default_shape
  in
  List.iter
    (fun strategy ->
      let alloc = Core.Heuristic.allocate (heuristic_params ()) g ~procs:16 strategy in
      Array.iter
        (fun a ->
          Alcotest.(check bool) "in [1,16]" true (a >= 1.0 && a <= 16.0))
        alloc)
    Core.Heuristic.all

let test_heuristic_convex_never_worse_in_phi () =
  (* The convex optimum has, by definition, the smallest Phi. *)
  let g, _ = Kernels.Complex_mm.graph ~n:64 () in
  let gt = Machine.Ground_truth.cm5_like () in
  let params, _, _ =
    Machine.Measure.calibrate gt
      ~procs:[ 1; 2; 4; 8; 16; 32; 64 ]
      (Kernels.Complex_mm.kernels ~n:64)
  in
  match Core.Heuristic.evaluate_all params g ~procs:64 with
  | (_, phi_convex, _) :: rest ->
      List.iter
        (fun (name, phi, _) ->
          Alcotest.(check bool)
            (Printf.sprintf "convex <= %s" name)
            true
            (phi_convex <= phi +. (0.01 *. phi)))
        rest
  | [] -> Alcotest.fail "no results"

let suite =
  [
    Alcotest.test_case "serialize: paper graphs roundtrip" `Quick
      test_serialize_roundtrip_paper_graphs;
    Alcotest.test_case "serialize: special characters" `Quick
      test_serialize_labels_with_specials;
    Alcotest.test_case "serialize: file IO" `Quick test_serialize_file_io;
    Alcotest.test_case "serialize: parse errors" `Quick test_serialize_errors;
    QCheck_alcotest.to_alcotest prop_serialize_roundtrip_random;
    Alcotest.test_case "schedule_io: roundtrip" `Quick test_schedule_io_roundtrip;
    Alcotest.test_case "schedule_io: parse errors" `Quick test_schedule_io_errors;
    Alcotest.test_case "schedule_io: file IO" `Quick test_schedule_io_file;
    Alcotest.test_case "static: Table-1 ballpark" `Quick
      test_static_estimates_reasonable;
    Alcotest.test_case "static: scaling with size" `Quick
      test_static_scaling_with_size;
    Alcotest.test_case "static: synthetic/dummy" `Quick test_static_synthetic_dummy;
    Alcotest.test_case "static: end-to-end usable" `Slow
      test_static_params_usable_end_to_end;
    Alcotest.test_case "heuristic: data parallel" `Quick
      test_heuristic_data_parallel;
    Alcotest.test_case "heuristic: level uniform" `Quick
      test_heuristic_level_uniform;
    Alcotest.test_case "heuristic: tau proportional" `Quick
      test_heuristic_tau_proportional;
    Alcotest.test_case "heuristic: allocations in range" `Quick
      test_heuristic_alloc_in_range;
    Alcotest.test_case "heuristic: convex minimises Phi" `Slow
      test_heuristic_convex_never_worse_in_phi;
  ]

(* Property suite for the consensus-ADMM decomposed solver (ISSUE 9):

   1. the decomposed path's final Φ stays within the monolithic
      solver's 1e-5 relative stationarity band (the ADMM consensus
      point seeds the monolithic polish, whose never-worse guard
      anchors the bound);
   2. Mdg.Partition covers every node exactly once with non-empty,
      ascending, edge-monotone, deterministic blocks;
   3. the consensus residual history is well-formed under the stopping
      rule: one (primal, dual) pair per outer iteration, the running
      best primal residual is non-increasing, and a converged run's
      last iteration is its best;
   4. [decompose] off (or Auto below threshold) is bit-identical to
      the plain solver — same Φ, same allocation, no stats.

   Every entry of test/corpus/workgen.seeds (including the high-fan-out
   pins appended for this suite) is replayed through the
   ADMM-vs-monolithic and partition checks on every run.  Failures
   shrink via Workgen.shrink_spec as in test_workgen_prop. *)

module G = Mdg.Graph
module W = Workgen
module D = Core.Decompose

let synth_params = Generators.synth_params
let procs = 16

(* Force the decomposition on regardless of graph size, with few
   enough blocks that even shrunk counterexamples split. *)
let on ?(target = 4) () =
  { D.default_options with D.mode = D.On; target_blocks = target }

let phi_band phi = 1e-5 *. (1.0 +. Float.abs phi)

(* ------------------------------------------------------------------ *)
(* The invariant bundle (shared by QCheck and corpus replay)           *)
(* ------------------------------------------------------------------ *)

let check_partition fail g ~target =
  let part = Mdg.Partition.partition ~target g in
  let n = G.num_nodes g in
  let nb = Mdg.Partition.num_blocks part in
  if nb < 1 then fail "no blocks";
  if nb > Int.max 1 target then
    fail (Printf.sprintf "%d blocks exceed target %d" nb target);
  let seen = Array.make n 0 in
  Array.iter
    (fun members ->
      if Array.length members = 0 then fail "empty block";
      Array.iteri
        (fun i id ->
          if id < 0 || id >= n then fail "member out of range";
          if i > 0 && members.(i - 1) >= id then
            fail "member ids not strictly ascending";
          seen.(id) <- seen.(id) + 1)
        members)
    part.Mdg.Partition.blocks;
  Array.iteri
    (fun id c ->
      if c <> 1 then
        fail (Printf.sprintf "node %d appears in %d blocks" id c))
    seen;
  Array.iteri
    (fun id b ->
      if b < 0 || b >= nb then fail "block_of out of range";
      if not (Array.exists (( = ) id) part.Mdg.Partition.blocks.(b)) then
        fail "block_of disagrees with blocks")
    part.Mdg.Partition.block_of;
  List.iter
    (fun (e : G.edge) ->
      if part.Mdg.Partition.block_of.(e.src) > part.Mdg.Partition.block_of.(e.dst)
      then
        fail
          (Printf.sprintf "edge %d->%d crosses blocks backwards" e.src e.dst))
    (G.edges g);
  let cuts =
    List.filter
      (fun (e : G.edge) ->
        part.Mdg.Partition.block_of.(e.src)
        <> part.Mdg.Partition.block_of.(e.dst))
      (G.edges g)
  in
  if List.length cuts <> Array.length part.Mdg.Partition.cut_edges then
    fail "cut_edges disagrees with block_of";
  (* Determinism: a second partition is structurally identical. *)
  let part' = Mdg.Partition.partition ~target g in
  if part.Mdg.Partition.blocks <> part'.Mdg.Partition.blocks then
    fail "partition is not deterministic"

let check_admm_matches fail g ~procs =
  let params = synth_params () in
  let mono = Core.Allocation.solve params g ~procs in
  let dec = Core.Allocation.solve ~decompose:(on ()) params g ~procs in
  (* One-sided: the consensus seed goes through the monolithic polish
     with its never-worse guard, so the decomposed Phi may be *better*
     than the cold solve (it skips the anneal's smoothing plateaus) but
     must never be worse beyond the stationarity band. *)
  let band = phi_band mono.phi in
  if dec.phi -. mono.phi > band then
    fail
      (Printf.sprintf "decomposed Phi %.9g worse than monolithic %.9g (band %.3g)"
         dec.phi mono.phi band);
  match dec.decomposed with
  | None -> () (* single-block partition: the monolithic path ran *)
  | Some st ->
      if st.D.blocks < 2 then fail "decomposed stats with fewer than 2 blocks";
      if st.D.admm.Convex.Admm.outer_iterations < 1 then
        fail "decomposition ran zero outer iterations";
      (* The consensus point itself can sit above the optimum (the
         polish closes the gap), but it must be a finite, in-band-or-
         better-than-x0 objective value. *)
      if not (Float.is_finite st.D.phi_admm) then
        fail "consensus-point Phi is not finite"

let check_residual_history fail g ~procs =
  let params = synth_params () in
  let dec = Core.Allocation.solve ~decompose:(on ()) params g ~procs in
  match dec.decomposed with
  | None -> ()
  | Some st ->
      let a = st.D.admm in
      let res = a.Convex.Admm.residuals in
      if Array.length res <> a.Convex.Admm.outer_iterations then
        fail
          (Printf.sprintf "%d residual pairs for %d outer iterations"
             (Array.length res) a.Convex.Admm.outer_iterations);
      Array.iter
        (fun (pr, du) ->
          if pr < 0.0 || du < 0.0 || not (Float.is_finite (pr +. du)) then
            fail "residuals must be finite and non-negative")
        res;
      (* Monotone under the stopping rule: the running best primal
         residual never increases, and a converged run stops at its
         best (the rule fires the first time the band is entered). *)
      let best = ref infinity in
      Array.iter
        (fun (pr, _) -> if pr < !best then best := pr)
        res;
      let last_pr, _ = res.(Array.length res - 1) in
      (* Guard band at numerical zero: residuals this deep in the
         stopping band wobble by ULPs (a run can touch exactly 0.0 and
         stop one rounding error above it). *)
      let zero_band = 1e-15 in
      if a.Convex.Admm.converged && last_pr > !best +. zero_band then
        fail
          (Printf.sprintf
             "converged run stopped at primal %.3g above its best %.3g"
             last_pr !best);
      if a.Convex.Admm.primal_residual <> last_pr then
        fail "stats.primal_residual is not the last history entry"

let check_off_identical fail g ~procs =
  let params = synth_params () in
  let plain = Core.Allocation.solve params g ~procs in
  let off =
    Core.Allocation.solve
      ~decompose:{ (on ()) with D.mode = D.Off }
      params g ~procs
  in
  if off.decomposed <> None then fail "mode Off produced decompose stats";
  if off.phi <> plain.phi then
    fail
      (Printf.sprintf "Off Phi %.17g <> plain %.17g" off.phi plain.phi);
  if off.alloc <> plain.alloc then fail "Off allocation differs from plain";
  (* Auto below the node threshold is equally inert. *)
  let auto =
    Core.Allocation.solve
      ~decompose:{ D.default_options with D.node_threshold = G.num_nodes g }
      params g ~procs
  in
  if auto.decomposed <> None then
    fail "Auto below threshold produced decompose stats";
  if auto.phi <> plain.phi || auto.alloc <> plain.alloc then
    fail "Auto below threshold is not bit-identical to plain"

(* The full bundle, for corpus pins. *)
let check_all fail spec seed =
  let g = W.generate spec ~seed in
  List.iter (fun target -> check_partition fail g ~target) [ 1; 2; 4; 8 ];
  check_admm_matches fail g ~procs;
  check_residual_history fail g ~procs;
  check_off_identical fail g ~procs

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let qfail msg = QCheck.Test.fail_report msg

let prop name ~count ?(arb = Generators.workgen_case ()) body =
  QCheck.Test.make ~name ~count:(Generators.count count) arb (fun case ->
      body case.Generators.wg_spec case.Generators.wg_seed;
      true)

let prop_partition =
  prop "partition: exact cover, monotone blocks, deterministic" ~count:40
    (fun spec seed ->
      let g = W.generate spec ~seed in
      List.iter (fun target -> check_partition qfail g ~target) [ 1; 2; 3; 8 ])

let prop_admm_phi =
  prop "decomposed Phi within 1e-5 relative of monolithic" ~count:8
    (fun spec seed -> check_admm_matches qfail (W.generate spec ~seed) ~procs)

let prop_residuals =
  prop "residual history well-formed under the stopping rule" ~count:6
    (fun spec seed ->
      check_residual_history qfail (W.generate spec ~seed) ~procs)

let prop_off_identical =
  prop "decompose off / below threshold is bit-identical" ~count:8
    (fun spec seed -> check_off_identical qfail (W.generate spec ~seed) ~procs)

(* ------------------------------------------------------------------ *)
(* Strassen pins: the paper's program, decomposed                      *)
(* ------------------------------------------------------------------ *)

let test_strassen_decomposed () =
  let gt = Machine.Ground_truth.cm5_like () in
  let levels = 2 and n = 128 in
  let g = G.normalise (Kernels.Strassen_mdg.graph_recursive ~levels ~n) in
  let params, _, _ =
    Machine.Measure.calibrate gt
      ~procs:[ 1; 2; 4; 8; 16; 32; 64 ]
      (Kernels.Strassen_mdg.kernels_recursive ~levels ~n)
  in
  let mono = Core.Allocation.solve params g ~procs:64 in
  let dec =
    Core.Allocation.solve ~decompose:(on ~target:4 ()) params g ~procs:64
  in
  (match dec.decomposed with
  | None -> Alcotest.fail "strassen-l2 did not decompose"
  | Some st ->
      Alcotest.(check bool)
        "at least 4 blocks" true
        (st.D.blocks >= 4);
      Alcotest.(check bool)
        "consensus slots exist" true (st.D.consensus > 0));
  let band = phi_band mono.phi in
  Alcotest.(check bool)
    (Printf.sprintf "decomposed Phi %.9f not worse than %.9f" dec.phi mono.phi)
    true
    (dec.phi -. mono.phi <= band)

(* The pipeline surface: with_decompose threads the options through
   plan, and the plan's allocation carries the stats. *)
let test_pipeline_decomposed () =
  let g = Generators.mdg_of_seed ~layers:4 ~width:4 42 in
  let params = synth_params () in
  let module P = Core.Pipeline in
  let config = P.(default_config |> with_decompose (on ())) in
  let plan = P.plan_exn ~config params g ~procs in
  let plain = P.plan_exn params g ~procs in
  (match plan.P.allocation.decomposed with
  | None -> ()
  | Some st ->
      Alcotest.(check bool) "blocks >= 2" true (st.D.blocks >= 2));
  let band = phi_band (P.phi plain) in
  if P.phi plan -. P.phi plain > band then
    Alcotest.failf "pipeline decomposed Phi %.9g worse than plain %.9g (band %.3g)"
      (P.phi plan) (P.phi plain) band

(* ------------------------------------------------------------------ *)
(* Corpus replay                                                       *)
(* ------------------------------------------------------------------ *)

let test_corpus_replay () =
  let entries = Test_workgen_prop.load_corpus () in
  Alcotest.(check bool) "corpus is not empty" true (entries <> []);
  List.iter
    (fun (spec, seed) ->
      let fail msg =
        Alcotest.failf "corpus pin %s seed %d: %s" (W.spec_to_string spec)
          seed msg
      in
      check_all fail spec seed)
    entries

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_partition; prop_admm_phi; prop_residuals; prop_off_identical ]
  @ [
      Alcotest.test_case "strassen-l2 decomposes into the monolithic band"
        `Slow test_strassen_decomposed;
      Alcotest.test_case "pipeline threads decompose options" `Quick
        test_pipeline_decomposed;
      Alcotest.test_case "corpus replay (ADMM bundle)" `Slow
        test_corpus_replay;
    ]

(* Aggregates every suite into one alcotest binary (dune runtest). *)

let () =
  Alcotest.run "paradigm-repro"
    [
      ("numeric", Test_numeric.suite);
      ("convex", Test_convex.suite);
      ("tape", Test_tape.suite);
      ("hvp", Test_hvp.suite);
      ("solver-prop", Test_solver_prop.suite);
      ("bounds-prop", Test_bounds_prop.suite);
      ("golden", Test_golden.suite);
      ("mdg", Test_mdg.suite);
      ("costmodel", Test_costmodel.suite);
      ("machine", Test_machine.suite);
      ("kernels", Test_kernels.suite);
      ("frontend", Test_frontend.suite);
      ("core", Test_core.suite);
      ("extensions", Test_extensions.suite);
      ("network", Test_network.suite);
      ("extensions2", Test_extensions2.suite);
      ("interp", Test_interp.suite);
      ("obs", Test_obs.suite);
      ("expand", Test_expand.suite);
      ("server", Test_server.suite);
      ("cache-prop", Test_cache_prop.suite);
      ("coalesce", Test_coalesce.suite);
      ("workgen-prop", Test_workgen_prop.suite);
      ("admm-prop", Test_admm_prop.suite);
      ("par-tape", Test_par_tape.suite);
      ("integration", Test_integration.suite);
    ]

(* Tests for the convex substrate: expression DAGs, posynomials and the
   projected-gradient solver.  The central properties are the ones the
   paper's formulation rests on: posynomials are convex after the log
   substitution, smoothed maxima upper-bound true maxima, and the
   solver finds global minima of convex objectives. *)

open Convex
module Vec = Numeric.Vec

let check_close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Expr                                                                *)
(* ------------------------------------------------------------------ *)

let test_expr_const_term () =
  let e = Expr.term ~coeff:2.0 ~expts:[ (0, 1.0); (1, -1.0) ] in
  (* 2 * p0 / p1 at p = (e, e^2) -> 2/e. *)
  check_close "term value" (2.0 /. exp 1.0) (Expr.eval e [| 1.0; 2.0 |]);
  check_close "const" 3.5 (Expr.eval (Expr.const 3.5) [||])

let test_expr_eval_p () =
  let e = Expr.term ~coeff:4.0 ~expts:[ (0, -1.0) ] in
  check_close "4/p at p=8" 0.5 (Expr.eval_p e [| 8.0 |])

let test_expr_merge_duplicate_vars () =
  (* p0^1 * p0^-1 collapses to a constant. *)
  let e = Expr.term ~coeff:5.0 ~expts:[ (0, 1.0); (0, -1.0) ] in
  check_close "collapsed" 5.0 (Expr.eval e [| 123.0 |]);
  Alcotest.(check int) "no variables" (-1) (Expr.max_var e)

let test_expr_sum_max () =
  let a = Expr.const 1.0 and b = Expr.const 3.0 in
  check_close "sum" 4.0 (Expr.eval (Expr.sum [ a; b ]) [||]);
  check_close "max" 3.0 (Expr.eval (Expr.max_ [ a; b ]) [||]);
  check_close "scale" 6.0 (Expr.eval (Expr.scale 2.0 b) [||])

let test_expr_smoothed_max_bounds () =
  let a = Expr.term ~coeff:1.0 ~expts:[ (0, 1.0) ] in
  let b = Expr.term ~coeff:1.0 ~expts:[ (0, -1.0) ] in
  let m = Expr.max_ [ a; b ] in
  let x = [| 0.7 |] in
  let exact = Expr.eval m x in
  let mu = 0.05 in
  let smooth = Expr.eval ~mu m x in
  Alcotest.(check bool) "smooth >= exact" true (smooth >= exact);
  Alcotest.(check bool)
    "smooth <= exact + mu ln 2" true
    (smooth <= exact +. (mu *. log 2.0) +. 1e-12)

let test_expr_gradient_matches_finite_difference () =
  let e =
    Expr.sum
      [
        Expr.term ~coeff:2.0 ~expts:[ (0, 1.5); (1, -0.5) ];
        Expr.max_
          [
            Expr.term ~coeff:1.0 ~expts:[ (0, -1.0) ];
            Expr.term ~coeff:0.3 ~expts:[ (1, 2.0) ];
          ];
      ]
  in
  let x = [| 0.4; 0.9 |] in
  let mu = 0.01 in
  let _, g = Expr.eval_grad ~mu e x in
  let h = 1e-6 in
  for i = 0 to 1 do
    let xp = Array.copy x and xm = Array.copy x in
    xp.(i) <- xp.(i) +. h;
    xm.(i) <- xm.(i) -. h;
    let fd = (Expr.eval ~mu e xp -. Expr.eval ~mu e xm) /. (2.0 *. h) in
    check_close ~eps:1e-4 (Printf.sprintf "dx%d" i) fd g.(i)
  done

let test_expr_subgradient_at_kink () =
  (* At a kink the exact-max gradient must match one branch. *)
  let a = Expr.term ~coeff:1.0 ~expts:[ (0, 1.0) ] in
  let b = Expr.term ~coeff:1.0 ~expts:[ (0, -1.0) ] in
  let m = Expr.max_ [ a; b ] in
  let _, g = Expr.eval_grad m [| 0.0 |] in
  Alcotest.(check bool) "one-sided gradient" true
    (Float.abs (g.(0) -. 1.0) < 1e-9 || Float.abs (g.(0) +. 1.0) < 1e-9)

let test_expr_dag_sharing () =
  (* A diamond-shaped DAG evaluates each shared node once; num_nodes
     counts distinct nodes. *)
  let shared = Expr.term ~coeff:1.0 ~expts:[ (0, 1.0) ] in
  let left = Expr.scale 2.0 shared in
  let right = Expr.scale 3.0 shared in
  let top = Expr.sum [ left; right ] in
  Alcotest.(check int) "node count" 4 (Expr.num_nodes top);
  check_close "value" 5.0 (Expr.eval top [| 0.0 |])

let test_expr_validation () =
  Alcotest.check_raises "negative const"
    (Invalid_argument "Expr.const: negative or non-finite constant") (fun () ->
      ignore (Expr.const (-1.0)));
  Alcotest.check_raises "zero coeff"
    (Invalid_argument "Expr.term: coefficient must be positive and finite")
    (fun () -> ignore (Expr.term ~coeff:0.0 ~expts:[]));
  Alcotest.check_raises "empty max" (Invalid_argument "Expr.max_: empty list")
    (fun () -> ignore (Expr.max_ []));
  Alcotest.check_raises "short x"
    (Invalid_argument
       "Expr.eval: expression uses variable 1 but x has dim 1") (fun () ->
      ignore (Expr.eval (Expr.term ~coeff:1.0 ~expts:[ (1, 1.0) ]) [| 0.0 |]))

(* ------------------------------------------------------------------ *)
(* Affine forms and hinge penalties (the consensus-ADMM grammar)       *)
(* ------------------------------------------------------------------ *)

let test_affine_eval () =
  (* Any-sign bias and coefficients, unlike posynomial terms. *)
  let e = Expr.affine ~bias:(-1.5) ~coefs:[ (0, 2.0); (1, -0.5) ] in
  check_close "value"
    (-1.5 +. (2.0 *. 0.4) -. (0.5 *. 0.9))
    (Expr.eval e [| 0.4; 0.9 |]);
  (* Duplicate indices sum; zero coefficients leave the support. *)
  let merged = Expr.affine ~bias:0.25 ~coefs:[ (0, 1.0); (0, -1.0); (1, 0.0) ] in
  check_close "cancelled to bias" 0.25 (Expr.eval merged [| 123.0; 456.0 |]);
  Alcotest.(check int) "no live variables" (-1) (Expr.max_var merged)

let test_hinge_eval () =
  (* (max(x - 1, 0))^2: quadratic on the active side, flat below. *)
  let e = Expr.hinge (Expr.affine ~bias:(-1.0) ~coefs:[ (0, 1.0) ]) in
  check_close "active side" 4.0 (Expr.eval e [| 3.0 |]);
  check_close "inactive side" 0.0 (Expr.eval e [| 0.5 |]);
  check_close "at the kink" 0.0 (Expr.eval e [| 1.0 |]);
  (* Constant children fold at construction. *)
  let folded = Expr.hinge (Expr.const 2.0) in
  Alcotest.(check int) "constant hinge folds" 1 (Expr.num_nodes folded);
  check_close "folded value" 4.0 (Expr.eval folded [||])

let test_sq_affine_eval () =
  (* The two-sided pin: a full square, active on both sides. *)
  let v x = 0.3 -. (1.2 *. x) in
  let e = Expr.sq_affine ~bias:0.3 ~coefs:[ (0, -1.2) ] in
  check_close "positive side" (v (-1.0) ** 2.0) (Expr.eval e [| -1.0 |]);
  check_close "negative side" (v 2.0 ** 2.0) (Expr.eval e [| 2.0 |]);
  check_close "at the root" 0.0 (Expr.eval e [| 0.25 |])

let test_affine_hinge_gradient_fd () =
  (* Gradient of an ADMM-shaped objective (hinges and pins mixed with
     posynomial terms under a max) vs central differences. *)
  let e =
    Expr.sum
      [
        Expr.hinge (Expr.affine ~bias:(-0.2) ~coefs:[ (0, 1.0); (1, -1.0) ]);
        Expr.sq_affine ~bias:0.4 ~coefs:[ (1, 1.5) ];
        Expr.max_
          [
            Expr.term ~coeff:0.5 ~expts:[ (0, 1.0) ];
            Expr.hinge (Expr.affine ~bias:0.1 ~coefs:[ (1, 1.0) ]);
          ];
      ]
  in
  let x = [| 0.6; 0.3 |] in
  let mu = 0.05 in
  let _, g = Expr.eval_grad ~mu e x in
  let h = 1e-6 in
  for i = 0 to 1 do
    let xp = Array.copy x and xm = Array.copy x in
    xp.(i) <- xp.(i) +. h;
    xm.(i) <- xm.(i) -. h;
    let fd = (Expr.eval ~mu e xp -. Expr.eval ~mu e xm) /. (2.0 *. h) in
    check_close ~eps:1e-4 (Printf.sprintf "dx%d" i) fd g.(i)
  done

let test_solver_tracks_pinned_target () =
  (* The ADMM block-subproblem shape: a posynomial cost plus a heavy
     two-sided pin toward a consensus target.  The optimum of
     e^x + 100 (x - 0.7)^2 sits at 0.7 - e^0.7 / 200 ~ 0.69. *)
  let e =
    Expr.sum
      [
        Expr.term ~coeff:1.0 ~expts:[ (0, 1.0) ];
        Expr.scale 100.0 (Expr.sq_affine ~bias:(-0.7) ~coefs:[ (0, 1.0) ]);
      ]
  in
  let r = Solver.solve { objective = e; lo = [| -2.0 |]; hi = [| 2.0 |] } in
  check_close ~eps:1e-3 "tracks the pin" (0.7 -. (exp 0.7 /. 200.0)) r.x.(0)

let random_hinge_expr_gen =
  let open QCheck.Gen in
  let affine_gen =
    let* b = float_range (-2.0) 2.0 in
    let* a0 = float_range (-2.0) 2.0 in
    let* a1 = float_range (-2.0) 2.0 in
    return (Expr.affine ~bias:b ~coefs:[ (0, a0); (1, a1) ])
  in
  let* hinges = list_size (int_range 1 4) (map Expr.hinge affine_gen) in
  let* b = float_range (-1.0) 1.0 in
  let* a = float_range (-2.0) 2.0 in
  let* c = float_range 0.1 3.0 in
  let* a1 = float_range (-2.0) 2.0 in
  let term = Expr.term ~coeff:c ~expts:[ (1, a1) ] in
  return (Expr.sum (Expr.sq_affine ~bias:b ~coefs:[ (0, a) ] :: term :: hinges))

let prop_hinge_convex_in_x =
  QCheck.Test.make
    ~name:"hinge/affine penalty sums are convex in x (midpoint)" ~count:200
    QCheck.(
      make
        Gen.(
          triple random_hinge_expr_gen
            (pair (float_range (-1.5) 1.5) (float_range (-1.5) 1.5))
            (pair (float_range (-1.5) 1.5) (float_range (-1.5) 1.5))))
    (fun (e, (x0, x1), (y0, y1)) ->
      let x = [| x0; x1 |] and y = [| y0; y1 |] in
      let mid = [| (x0 +. y0) /. 2.0; (x1 +. y1) /. 2.0 |] in
      let fx = Expr.eval e x and fy = Expr.eval e y in
      let fm = Expr.eval e mid in
      fm <= ((fx +. fy) /. 2.0) +. (1e-9 *. (1.0 +. Float.abs fx +. Float.abs fy)))

(* Convexity in x: midpoint property for random expressions. *)
let random_expr_gen =
  let open QCheck.Gen in
  let term_gen =
    let* c = float_range 0.1 5.0 in
    let* a0 = float_range (-2.0) 2.0 in
    let* a1 = float_range (-2.0) 2.0 in
    return (Expr.term ~coeff:c ~expts:[ (0, a0); (1, a1) ])
  in
  let* ts = list_size (int_range 1 4) term_gen in
  let* ms = list_size (int_range 1 3) term_gen in
  return (Expr.sum [ Expr.sum ts; Expr.max_ ms ])

let prop_expr_convex_in_x =
  QCheck.Test.make ~name:"expressions are convex in x (midpoint)" ~count:200
    QCheck.(
      make
        Gen.(
          triple random_expr_gen
            (pair (float_range (-1.5) 1.5) (float_range (-1.5) 1.5))
            (pair (float_range (-1.5) 1.5) (float_range (-1.5) 1.5))))
    (fun (e, (x0, x1), (y0, y1)) ->
      let x = [| x0; x1 |] and y = [| y0; y1 |] in
      let mid = [| (x0 +. y0) /. 2.0; (x1 +. y1) /. 2.0 |] in
      let fx = Expr.eval e x and fy = Expr.eval e y in
      let fm = Expr.eval e mid in
      fm <= ((fx +. fy) /. 2.0) +. (1e-9 *. (1.0 +. Float.abs fx +. Float.abs fy)))

(* ------------------------------------------------------------------ *)
(* Posynomial                                                          *)
(* ------------------------------------------------------------------ *)

let test_posy_eval () =
  let p =
    Posynomial.sum
      [ Posynomial.monomial 2.0 [ (0, 1.0) ]; Posynomial.monomial 3.0 [ (0, -1.0) ] ]
  in
  (* 2p + 3/p at p = 3 -> 7. *)
  check_close "eval" 7.0 (Posynomial.eval p [| 3.0 |])

let test_posy_algebra () =
  let x = Posynomial.var 0 in
  let one = Posynomial.constant 1.0 in
  let p = Posynomial.mul (Posynomial.add x one) (Posynomial.add x one) in
  (* (p+1)^2 = p^2 + 2p + 1 at p=2 -> 9. *)
  check_close "square" 9.0 (Posynomial.eval p [| 2.0 |]);
  Alcotest.(check int) "3 monomials" 3 (List.length (Posynomial.monomials p));
  let p3 = Posynomial.pow (Posynomial.add x one) 3 in
  check_close "cube" 27.0 (Posynomial.eval p3 [| 2.0 |])

let test_posy_merge () =
  (* p + p merges into one monomial 2p. *)
  let x = Posynomial.var 0 in
  let p = Posynomial.add x x in
  Alcotest.(check int) "merged" 1 (List.length (Posynomial.monomials p));
  check_close "value" 10.0 (Posynomial.eval p [| 5.0 |])

let test_posy_mul_var () =
  let p = Posynomial.monomial 4.0 [ (0, -1.0) ] in
  let q = Posynomial.mul_var 0 1.0 p in
  Alcotest.(check bool) "constant" true (Posynomial.is_constant q);
  check_close "value" 4.0 (Posynomial.eval q [| 7.0 |])

let test_posy_to_expr_consistent () =
  let p =
    Posynomial.sum
      [
        Posynomial.monomial 2.0 [ (0, 1.0); (1, -0.5) ];
        Posynomial.monomial 0.7 [ (1, 2.0) ];
        Posynomial.constant 1.2;
      ]
  in
  let e = Posynomial.to_expr p in
  let point = [| 2.0; 3.0 |] in
  check_close "posy vs expr" (Posynomial.eval p point) (Expr.eval_p e point)

let test_posy_degree () =
  let p =
    Posynomial.sum
      [ Posynomial.monomial 1.0 [ (0, 2.0) ]; Posynomial.monomial 1.0 [ (0, -1.0) ] ]
  in
  let lo, hi = Posynomial.degree_in 0 p in
  check_close "lo" (-1.0) lo;
  check_close "hi" 2.0 hi

let test_posy_rejects_negative () =
  Alcotest.check_raises "negative coeff"
    (Invalid_argument "Posynomial.of_monomials: non-positive coefficient")
    (fun () -> ignore (Posynomial.monomial (-1.0) []))

(* ------------------------------------------------------------------ *)
(* Solver                                                              *)
(* ------------------------------------------------------------------ *)

let box n lo hi = (Vec.create n lo, Vec.create n hi)

let test_solver_quadratic_like () =
  (* minimise e^x + e^-x : minimum at x = 0, value 2. *)
  let e =
    Expr.sum
      [ Expr.term ~coeff:1.0 ~expts:[ (0, 1.0) ]; Expr.term ~coeff:1.0 ~expts:[ (0, -1.0) ] ]
  in
  let lo, hi = box 1 (-3.0) 3.0 in
  let r = Solver.solve { objective = e; lo; hi } in
  check_close ~eps:1e-5 "argmin" 0.0 r.x.(0);
  check_close ~eps:1e-6 "min value" 2.0 r.value

let test_solver_boundary () =
  (* minimise e^x on [0, ln 4]: minimum at the lower boundary. *)
  let e = Expr.term ~coeff:1.0 ~expts:[ (0, 1.0) ] in
  let lo, hi = box 1 0.0 (log 4.0) in
  let r = Solver.solve { objective = e; lo; hi } in
  check_close ~eps:1e-6 "argmin at boundary" 0.0 r.x.(0);
  check_close ~eps:1e-6 "value" 1.0 r.value

let test_solver_max_objective () =
  (* minimise max(e^x, e^-x, 2·e^(x-1)): solve by scanning. *)
  let e =
    Expr.max_
      [
        Expr.term ~coeff:1.0 ~expts:[ (0, 1.0) ];
        Expr.term ~coeff:1.0 ~expts:[ (0, -1.0) ];
        Expr.term ~coeff:2.0 ~expts:[ (0, 1.0) ];
      ]
  in
  let lo, hi = box 1 (-2.0) 2.0 in
  let r = Solver.solve { objective = e; lo; hi } in
  (* Brute-force scan for reference. *)
  let best = ref infinity in
  for k = 0 to 40_000 do
    let x = -2.0 +. (4.0 *. float_of_int k /. 40_000.0) in
    best := Float.min !best (Expr.eval e [| x |])
  done;
  Alcotest.(check bool)
    "within 1e-5 of scanned optimum" true
    (r.value <= !best +. 1e-5)

let test_solver_two_vars () =
  (* minimise e^(x0) + e^(x1) + 4 e^(-x0-x1); stationary point where
     e^(x0) = e^(x1) = 2 e^(-2 x0)  =>  x0 = x1 = (ln 4)/3. *)
  let e =
    Expr.sum
      [
        Expr.term ~coeff:1.0 ~expts:[ (0, 1.0) ];
        Expr.term ~coeff:1.0 ~expts:[ (1, 1.0) ];
        Expr.term ~coeff:4.0 ~expts:[ (0, -1.0); (1, -1.0) ];
      ]
  in
  let lo, hi = box 2 (-4.0) 4.0 in
  let r = Solver.solve { objective = e; lo; hi } in
  let expected = log 4.0 /. 3.0 in
  check_close ~eps:1e-4 "x0" expected r.x.(0);
  check_close ~eps:1e-4 "x1" expected r.x.(1)

let test_solver_respects_x0_and_box () =
  let e = Expr.term ~coeff:1.0 ~expts:[ (0, -1.0) ] in
  let lo, hi = box 1 0.0 2.0 in
  let r = Solver.solve ~x0:[| 50.0 |] { objective = e; lo; hi } in
  Alcotest.(check bool) "inside box" true (r.x.(0) >= 0.0 && r.x.(0) <= 2.0);
  check_close ~eps:1e-6 "pushed to upper bound" 2.0 r.x.(0)

let test_solver_empty_box_rejected () =
  let e = Expr.const 1.0 in
  Alcotest.check_raises "empty box" (Invalid_argument "Solver.solve: empty box")
    (fun () ->
      ignore (Solver.solve { objective = e; lo = [| 1.0 |]; hi = [| 0.0 |] }))

let test_golden_section () =
  let f x = ((x -. 1.7) ** 2.0) +. 3.0 in
  let x = Solver.golden_section ~f ~lo:(-10.0) ~hi:10.0 () in
  check_close ~eps:1e-6 "golden section argmin" 1.7 x

let prop_solver_beats_random_points =
  (* Global optimality: no random feasible point does better. *)
  QCheck.Test.make ~name:"solver value <= random feasible evaluations" ~count:50
    QCheck.(
      make
        Gen.(
          pair random_expr_gen
            (list_size (return 20)
               (pair (float_range (-1.0) 1.0) (float_range (-1.0) 1.0)))))
    (fun (e, points) ->
      let lo = [| -1.0; -1.0 |] and hi = [| 1.0; 1.0 |] in
      let r = Solver.solve { objective = e; lo; hi } in
      List.for_all
        (fun (x0, x1) ->
          r.value <= Expr.eval e [| x0; x1 |] +. (1e-5 *. (1.0 +. r.value)))
        points)

let suite =
  [
    Alcotest.test_case "expr constants and terms" `Quick test_expr_const_term;
    Alcotest.test_case "expr eval in p-space" `Quick test_expr_eval_p;
    Alcotest.test_case "expr merges duplicate vars" `Quick
      test_expr_merge_duplicate_vars;
    Alcotest.test_case "expr sum/max/scale" `Quick test_expr_sum_max;
    Alcotest.test_case "expr smoothed max bounds" `Quick
      test_expr_smoothed_max_bounds;
    Alcotest.test_case "expr gradient vs finite differences" `Quick
      test_expr_gradient_matches_finite_difference;
    Alcotest.test_case "expr subgradient at kink" `Quick
      test_expr_subgradient_at_kink;
    Alcotest.test_case "expr DAG sharing" `Quick test_expr_dag_sharing;
    Alcotest.test_case "expr validation" `Quick test_expr_validation;
    Alcotest.test_case "affine forms: any-sign eval and merging" `Quick
      test_affine_eval;
    Alcotest.test_case "hinge: positive-part square" `Quick test_hinge_eval;
    Alcotest.test_case "sq_affine: two-sided pin" `Quick test_sq_affine_eval;
    Alcotest.test_case "affine/hinge gradient vs finite differences" `Quick
      test_affine_hinge_gradient_fd;
    Alcotest.test_case "solver: tracks a heavy consensus pin" `Quick
      test_solver_tracks_pinned_target;
    QCheck_alcotest.to_alcotest prop_hinge_convex_in_x;
    QCheck_alcotest.to_alcotest prop_expr_convex_in_x;
    Alcotest.test_case "posynomial evaluation" `Quick test_posy_eval;
    Alcotest.test_case "posynomial algebra" `Quick test_posy_algebra;
    Alcotest.test_case "posynomial monomial merging" `Quick test_posy_merge;
    Alcotest.test_case "posynomial mul_var" `Quick test_posy_mul_var;
    Alcotest.test_case "posynomial -> expr consistency" `Quick
      test_posy_to_expr_consistent;
    Alcotest.test_case "posynomial degree range" `Quick test_posy_degree;
    Alcotest.test_case "posynomial rejects negatives" `Quick
      test_posy_rejects_negative;
    Alcotest.test_case "solver: 1-var interior optimum" `Quick
      test_solver_quadratic_like;
    Alcotest.test_case "solver: boundary optimum" `Quick test_solver_boundary;
    Alcotest.test_case "solver: nonsmooth max objective" `Quick
      test_solver_max_objective;
    Alcotest.test_case "solver: 2-var interior optimum" `Quick
      test_solver_two_vars;
    Alcotest.test_case "solver: projection of x0" `Quick
      test_solver_respects_x0_and_box;
    Alcotest.test_case "solver: rejects empty box" `Quick
      test_solver_empty_box_rejected;
    Alcotest.test_case "golden-section search" `Quick test_golden_section;
    QCheck_alcotest.to_alcotest prop_solver_beats_random_points;
  ]

(* Tests for the core library: schedules, theorem bounds, the convex
   allocation, the PSA, code generation and the pipeline. *)

module G = Mdg.Graph
module P = Costmodel.Params
module W = Costmodel.Weights
open Core

let check_close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let synth_params () = P.make ~transfer:P.cm5_transfer

(* A small normalised graph with real transfer costs. *)
let transfer_graph () =
  let b = G.create_builder () in
  let n0 = G.add_node b ~label:"produce" ~kernel:(Synthetic { alpha = 0.05; tau = 0.4 }) in
  let n1 = G.add_node b ~label:"left" ~kernel:(Synthetic { alpha = 0.1; tau = 0.8 }) in
  let n2 = G.add_node b ~label:"right" ~kernel:(Synthetic { alpha = 0.1; tau = 0.8 }) in
  let n3 = G.add_node b ~label:"consume" ~kernel:(Synthetic { alpha = 0.05; tau = 0.2 }) in
  let bytes = 65536.0 in
  G.add_edge b ~src:n0 ~dst:n1 ~bytes ~kind:Oned;
  G.add_edge b ~src:n0 ~dst:n2 ~bytes ~kind:Twod;
  G.add_edge b ~src:n1 ~dst:n3 ~bytes ~kind:Oned;
  G.add_edge b ~src:n2 ~dst:n3 ~bytes ~kind:Oned;
  G.normalise (G.build b)

(* ------------------------------------------------------------------ *)
(* Schedule                                                            *)
(* ------------------------------------------------------------------ *)

let test_schedule_make_and_accessors () =
  let s =
    Schedule.make ~machine_procs:4
      [
        { Schedule.node = 0; procs = [| 0; 1 |]; start = 0.0; finish = 1.0 };
        { Schedule.node = 1; procs = [| 2; 3 |]; start = 0.5; finish = 2.0 };
      ]
  in
  check_close "makespan" 2.0 (Schedule.makespan s);
  Alcotest.(check int) "alloc" 2 (Schedule.allocation s 0);
  check_close "busy area" 5.0 (Schedule.busy_area s);
  Alcotest.(check int) "entries" 2 (Schedule.num_entries s)

let test_schedule_rejects_bad_entries () =
  Alcotest.check_raises "dup node"
    (Invalid_argument "Schedule.make: node 0 scheduled twice") (fun () ->
      ignore
        (Schedule.make ~machine_procs:2
           [
             { Schedule.node = 0; procs = [| 0 |]; start = 0.0; finish = 1.0 };
             { Schedule.node = 0; procs = [| 1 |]; start = 0.0; finish = 1.0 };
           ]));
  Alcotest.check_raises "outside machine"
    (Invalid_argument "Schedule.make: node 0 uses processor 5 outside machine")
    (fun () ->
      ignore
        (Schedule.make ~machine_procs:2
           [ { Schedule.node = 0; procs = [| 5 |]; start = 0.0; finish = 1.0 } ]));
  Alcotest.check_raises "bad interval"
    (Invalid_argument "Schedule.make: node 0 has a bad interval") (fun () ->
      ignore
        (Schedule.make ~machine_procs:2
           [ { Schedule.node = 0; procs = [| 0 |]; start = 2.0; finish = 1.0 } ]))

let test_schedule_validate_catches_overlap () =
  let g = Kernels.Workloads.fully_independent ~count:2 ~tau:1.0 ~alpha:0.0 in
  let params = synth_params () in
  (* Both real nodes on the same processor at the same time. *)
  let w i = W.node_weight params g ~alloc:(fun _ -> 1.0) i in
  let entries =
    List.init (G.num_nodes g) (fun i ->
        { Schedule.node = i; procs = [| 0 |]; start = 0.0; finish = w i })
  in
  let s = Schedule.make ~machine_procs:2 entries in
  match Schedule.validate params g s with
  | Ok () -> Alcotest.fail "expected overlap error"
  | Error msgs ->
      Alcotest.(check bool) "mentions overlap" true
        (List.exists
           (fun m ->
             String.length m >= 5
             && String.sub m 0 5 = "nodes"
             (* "nodes %d and %d overlap..." *))
           msgs)

(* ------------------------------------------------------------------ *)
(* Bounds                                                              *)
(* ------------------------------------------------------------------ *)

let test_bounds_factors () =
  check_close "theorem1 p=64 pb=32" (1.0 +. (64.0 /. 33.0))
    (Bounds.theorem1_factor ~procs:64 ~pb:32);
  check_close "theorem2 p=64 pb=32" (2.25 *. 4.0)
    (Bounds.theorem2_factor ~procs:64 ~pb:32);
  check_close "theorem3 = product"
    (Bounds.theorem1_factor ~procs:64 ~pb:32 *. Bounds.theorem2_factor ~procs:64 ~pb:32)
    (Bounds.theorem3_factor ~procs:64 ~pb:32)

let test_bounds_optimal_pb () =
  (* Corollary 1 by brute force over all powers of two. *)
  List.iter
    (fun procs ->
      let best = Bounds.optimal_pb ~procs in
      List.iter
        (fun pb ->
          Alcotest.(check bool)
            (Printf.sprintf "p=%d pb=%d" procs pb)
            true
            (Bounds.theorem3_factor ~procs ~pb
            >= Bounds.theorem3_factor ~procs ~pb:best -. 1e-12))
        (Numeric.Pow2.pow2_range procs))
    [ 1; 2; 4; 8; 16; 32; 64; 100 ]

let test_bounds_validation () =
  Alcotest.check_raises "pb > procs"
    (Invalid_argument "Bounds: pb outside [1, procs]") (fun () ->
      ignore (Bounds.theorem1_factor ~procs:4 ~pb:8))

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)
(* ------------------------------------------------------------------ *)

let test_allocation_requires_normalised () =
  let b = G.create_builder () in
  ignore (G.add_node b ~label:"a" ~kernel:(Synthetic { alpha = 0.1; tau = 1.0 }));
  ignore (G.add_node b ~label:"b" ~kernel:(Synthetic { alpha = 0.1; tau = 1.0 }));
  let g = G.build b in
  Alcotest.check_raises "unnormalised"
    (Invalid_argument "Allocation: graph must be normalised (unique START/STOP)")
    (fun () -> ignore (Allocation.solve (synth_params ()) g ~procs:4))

let test_allocation_within_box () =
  let g = transfer_graph () in
  let r = Allocation.solve (synth_params ()) g ~procs:8 in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "in [1,8]" true (p >= 1.0 -. 1e-9 && p <= 8.0 +. 1e-9))
    r.alloc;
  Alcotest.(check bool) "solver converged" true r.solver.converged

let test_allocation_phi_is_max_avg_cp () =
  let g = transfer_graph () in
  let r = Allocation.solve (synth_params ()) g ~procs:8 in
  check_close ~eps:1e-9 "phi = max(avg, cp)" (Float.max r.average r.critical_path) r.phi

let test_allocation_consistent_with_weights () =
  (* The expression-based objective evaluated at an allocation matches
     the float-based Weights computation (t_n = 0 so the 1D network
     surrogate is exact). *)
  let g = transfer_graph () in
  let params = synth_params () in
  let alloc = [| 2.0; 4.0; 3.0; 2.0; 1.0; 1.0 |] in
  let alloc = Array.sub alloc 0 (G.num_nodes g) in
  let from_expr = Allocation.evaluate params g ~procs:8 ~alloc in
  let from_weights = W.lower_bound params g ~alloc:(fun i -> alloc.(i)) ~procs:8 in
  check_close ~eps:1e-9 "expr vs weights" from_weights from_expr

let test_allocation_symmetric_branches () =
  (* Identical parallel branches should receive near-identical
     allocations (unique convex optimum). *)
  let g = Kernels.Workloads.fork_join ~branches:2 ~tau:1.0 ~alpha:0.1 ~bytes:8192.0 in
  let r = Allocation.solve (synth_params ()) g ~procs:8 in
  (* Branch nodes are ids 2 and 3 (fork=0, join=1 built first). *)
  let b1, b2 = (r.alloc.(2), r.alloc.(3)) in
  Alcotest.(check bool)
    (Printf.sprintf "symmetric (%.3f vs %.3f)" b1 b2)
    true
    (Float.abs (b1 -. b2) < 0.05 *. Float.max b1 b2)

let test_allocation_example_phi_below_hand_schedules () =
  (* Phi lower-bounds both hand schedules from the paper's example. *)
  let g = Kernels.Example_mdg.graph () in
  let r = Allocation.solve (synth_params ()) g ~procs:4 in
  Alcotest.(check bool) "phi <= naive" true
    (r.phi <= Kernels.Example_mdg.naive_finish_time ~procs:4 +. 1e-6);
  Alcotest.(check bool) "phi <= mixed" true
    (r.phi <= Kernels.Example_mdg.mixed_finish_time ~procs:4 +. 1e-6)

let prop_allocation_globally_optimal =
  (* No random feasible allocation evaluates below the solver's Phi. *)
  QCheck.Test.make ~name:"Phi <= objective at random allocations" ~count:20
    QCheck.(pair (int_range 0 500) (list_of_size (Gen.return 8) (float_range 0.0 1.0)))
    (fun (seed, raws) ->
      let shape =
        { Kernels.Workloads.default_shape with layers = 3; width = 3 }
      in
      let g = Kernels.Workloads.random_layered ~seed shape in
      let procs = 16 in
      let params = synth_params () in
      let r = Allocation.solve params g ~procs in
      let n = G.num_nodes g in
      let alloc =
        Array.init n (fun i ->
            let raw = List.nth raws (i mod List.length raws) in
            1.0 +. (raw *. float_of_int (procs - 1)))
      in
      r.phi <= Allocation.evaluate params g ~procs ~alloc +. (0.01 *. r.phi))

(* ------------------------------------------------------------------ *)
(* PSA                                                                 *)
(* ------------------------------------------------------------------ *)

let test_psa_rounding_modes () =
  let alloc = [| 1.0; 2.9; 3.0; 5.9; 47.0 |] in
  Alcotest.(check (array int)) "nearest" [| 1; 2; 4; 4; 32 |]
    (Psa.round_allocation ~rounding:Psa.Nearest ~procs:64 alloc);
  Alcotest.(check (array int)) "floor" [| 1; 2; 2; 4; 32 |]
    (Psa.round_allocation ~rounding:Psa.Floor ~procs:64 alloc);
  Alcotest.(check (array int)) "ceil" [| 1; 4; 4; 8; 64 |]
    (Psa.round_allocation ~rounding:Psa.Ceil ~procs:64 alloc)

let test_psa_rounding_caps_at_machine () =
  let r = Psa.round_allocation ~rounding:Psa.Nearest ~procs:6 [| 5.9 |] in
  (* floor_pow2 6 = 4. *)
  Alcotest.(check (array int)) "capped" [| 4 |] r

let test_psa_bound () =
  Alcotest.(check (array int)) "bounded" [| 1; 4; 4 |]
    (Psa.apply_bound ~pb:4 [| 1; 4; 16 |]);
  Alcotest.check_raises "non-pow2 PB"
    (Invalid_argument "Psa.apply_bound: PB must be a power of two") (fun () ->
      ignore (Psa.apply_bound ~pb:6 [| 1 |]))

let run_psa ?options g procs =
  let params = synth_params () in
  let r = Allocation.solve params g ~procs in
  (params, r, Psa.schedule ?options params g ~procs ~alloc:r.alloc)

let test_psa_schedule_is_valid () =
  let g = transfer_graph () in
  let params, _, psa = run_psa g 8 in
  (match Schedule.validate params g psa.schedule with
  | Ok () -> ()
  | Error msgs -> Alcotest.fail (String.concat "; " msgs));
  check_close "t_psa = makespan of STOP"
    (Schedule.entry psa.schedule (G.stop_node g)).finish psa.t_psa

let test_psa_respects_pb () =
  let g = transfer_graph () in
  let _, _, psa =
    run_psa ~options:{ Psa.default_options with pb = Psa.Fixed 2 } g 8
  in
  Array.iter
    (fun a -> Alcotest.(check bool) "<= PB" true (a <= 2))
    psa.rounded_alloc

let test_psa_auto_pb_matches_corollary () =
  let g = transfer_graph () in
  let _, _, psa = run_psa g 8 in
  Alcotest.(check int) "corollary PB" (Bounds.optimal_pb ~procs:8) psa.pb

let test_psa_lower_bounds_hold () =
  (* T_psa >= critical path and >= average at the rounded allocation. *)
  let g = transfer_graph () in
  let params, _, psa = run_psa g 8 in
  let alloc i = float_of_int psa.rounded_alloc.(i) in
  let cp = W.critical_path_time params g ~alloc in
  let avg = W.average_finish_time params g ~alloc ~procs:8 in
  Alcotest.(check bool) "t_psa >= C_PB" true (psa.t_psa >= cp -. 1e-9);
  Alcotest.(check bool) "t_psa >= A_PB" true (psa.t_psa >= avg -. 1e-9)

let test_psa_fifo_ablation_no_better () =
  (* FIFO priority is a valid schedule too, and lowest-EST should not
     be (meaningfully) worse on the fork/join family. *)
  let g = Kernels.Workloads.fork_join ~branches:6 ~tau:0.5 ~alpha:0.1 ~bytes:4096.0 in
  let _, _, psa_est = run_psa g 8 in
  let _, _, psa_fifo =
    run_psa ~options:{ Psa.default_options with priority = Psa.Fifo } g 8
  in
  Alcotest.(check bool) "EST <= FIFO * 1.5" true
    (psa_est.t_psa <= psa_fifo.t_psa *. 1.5)

(* The PSA's processor-selection hot path was rewritten from a
   per-node list allocation + full sort to an in-place partial
   selection.  This reference implementation is the original
   list-based algorithm; schedules must be identical (same processor
   sets, same times) on real MDGs and random workloads. *)
let reference_list_schedule params g ~procs ~rounded =
  let module Ready = Set.Make (struct
    type t = float * int * int

    let compare = compare
  end) in
  let n = G.num_nodes g in
  let allocf i = float_of_int rounded.(i) in
  let node_weight i = W.node_weight params g ~alloc:allocf i in
  let edge_weight e = W.edge_weight params ~alloc:allocf e in
  let avail = Array.make procs 0.0 in
  let finish = Array.make n 0.0 in
  let remaining_preds =
    Array.init n (fun i -> List.length (G.preds g i))
  in
  let est = Array.make n 0.0 in
  let ready = ref Ready.empty in
  let seq = ref 0 in
  let push node =
    ready := Ready.add (est.(node), !seq, node) !ready;
    incr seq
  in
  push (G.start_node g);
  let entries = ref [] in
  let continue = ref true in
  while !continue do
    match Ready.min_elt_opt !ready with
    | None -> continue := false
    | Some ((_, _, node) as elt) ->
        ready := Ready.remove elt !ready;
        let k = rounded.(node) in
        let by_avail =
          List.init procs (fun p -> (avail.(p), p)) |> List.sort compare
        in
        let chosen =
          List.filteri (fun idx _ -> idx < k) by_avail
          |> List.map snd |> List.sort Int.compare |> Array.of_list
        in
        let pst =
          Array.fold_left (fun acc p -> Float.max acc avail.(p)) 0.0 chosen
        in
        let start = Float.max est.(node) pst in
        let fin = start +. node_weight node in
        Array.iter (fun p -> avail.(p) <- fin) chosen;
        finish.(node) <- fin;
        entries :=
          { Schedule.node; procs = chosen; start; finish = fin } :: !entries;
        List.iter
          (fun (e : G.edge) ->
            remaining_preds.(e.dst) <- remaining_preds.(e.dst) - 1;
            est.(e.dst) <-
              Float.max est.(e.dst) (finish.(e.src) +. edge_weight e);
            if remaining_preds.(e.dst) = 0 then push e.dst)
          (G.succs g node)
  done;
  Schedule.make ~machine_procs:procs (List.rev !entries)

let matrix_params kernels =
  let p = synth_params () in
  List.iter
    (fun k ->
      match k with
      | G.Matrix_multiply _ -> P.set_processing p k { alpha = 0.12; tau = 0.3 }
      | G.Matrix_add _ | G.Matrix_init _ ->
          P.set_processing p k { alpha = 0.07; tau = 0.004 }
      | G.Synthetic _ | G.Dummy -> ())
    kernels;
  p

let test_psa_selection_matches_reference () =
  let cases =
    [
      ( "complex-mm",
        G.normalise (fst (Kernels.Complex_mm.graph ~n:64 ())),
        matrix_params (Kernels.Complex_mm.kernels ~n:64) );
      ( "strassen",
        G.normalise (fst (Kernels.Strassen_mdg.graph ~n:128 ())),
        matrix_params (Kernels.Strassen_mdg.kernels ~n:128) );
      ( "random layered",
        Kernels.Workloads.random_layered ~seed:7
          { Kernels.Workloads.default_shape with layers = 4; width = 5 },
        synth_params () );
    ]
  in
  List.iter
    (fun (name, g, params) ->
      List.iter
        (fun procs ->
          let alloc = (Allocation.solve params g ~procs).alloc in
          let psa = Psa.schedule params g ~procs ~alloc in
          let reference =
            reference_list_schedule params g ~procs
              ~rounded:psa.rounded_alloc
          in
          List.iter2
            (fun (a : Schedule.entry) (b : Schedule.entry) ->
              let ctx = Printf.sprintf "%s p=%d node %d" name procs a.node in
              Alcotest.(check int) (ctx ^ " node") b.node a.node;
              Alcotest.(check (array int)) (ctx ^ " procs") b.procs a.procs;
              check_close (ctx ^ " start") b.start a.start;
              check_close (ctx ^ " finish") b.finish a.finish)
            (Schedule.entries psa.schedule)
            (Schedule.entries reference))
        [ 4; 16; 64 ])
    cases

(* Theorem properties on random graphs. *)
let theorem_prop ~name ~count check =
  QCheck.Test.make ~name ~count
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let shape = { Kernels.Workloads.default_shape with layers = 3; width = 4 } in
      let g = Kernels.Workloads.random_layered ~seed shape in
      let procs = 16 in
      let params = synth_params () in
      let alloc_r = Allocation.solve params g ~procs in
      let psa = Psa.schedule params g ~procs ~alloc:alloc_r.alloc in
      check params g procs alloc_r psa)

let prop_theorem1 =
  theorem_prop ~name:"Theorem 1: T_psa <= (1 + p/(p-PB+1)) * T_opt^PB" ~count:30
    (fun params g procs _alloc psa ->
      let allocf i = float_of_int psa.rounded_alloc.(i) in
      let lower = W.lower_bound params g ~alloc:allocf ~procs in
      Bounds.check_theorem1 ~t_psa:psa.t_psa ~t_opt_lower:lower ~procs
        ~pb:psa.pb)

let prop_theorem3 =
  theorem_prop ~name:"Theorem 3: T_psa <= full factor * Phi" ~count:30
    (fun _params _g procs alloc_r psa ->
      Bounds.check_theorem3 ~t_psa:psa.t_psa ~phi:alloc_r.phi ~procs ~pb:psa.pb)

let prop_theorem2 =
  (* Theorem 2: after rounding and bounding, the best achievable finish
     time (lower-bounded by max(A_PB, C_PB)) is within
     (3/2)^2 (p/PB)^2 of Phi. *)
  theorem_prop ~name:"Theorem 2: max(A_PB, C_PB) <= (3/2)^2 (p/PB)^2 Phi"
    ~count:30 (fun params g procs alloc_r psa ->
      let allocf i = float_of_int psa.rounded_alloc.(i) in
      let lower = W.lower_bound params g ~alloc:allocf ~procs in
      lower
      <= (Bounds.theorem2_factor ~procs ~pb:psa.pb *. alloc_r.phi) +. 1e-9)

let prop_rounding_factor_bounds =
  (* The rounding-off step changes no node's allocation by more than a
     factor in [2/3, 4/3] (paper Section 5, discussion before
     Theorem 2). *)
  QCheck.Test.make ~name:"rounding stays within [2/3, 4/3] per node" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range 1.0 64.0))
    (fun alloc ->
      let arr = Array.of_list alloc in
      let rounded = Psa.round_allocation ~rounding:Psa.Nearest ~procs:64 arr in
      let lo, hi = Bounds.rounding_factor_bounds in
      Array.for_all2
        (fun p r ->
          let f = float_of_int r /. p in
          f >= lo -. 1e-9 && f <= hi +. 1e-9)
        arr rounded)

let prop_schedule_always_valid =
  theorem_prop ~name:"PSA schedules always validate" ~count:30
    (fun params g _procs _alloc psa ->
      match Schedule.validate params g psa.schedule with
      | Ok () -> true
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Codegen + pipeline                                                  *)
(* ------------------------------------------------------------------ *)

let test_codegen_sim_matches_prediction_on_ideal () =
  (* On the ideal machine with CM-5 params, simulated MPMD time matches
     the model prediction closely (same cost structure; the only slack
     is message/compute overlap the model does not credit). *)
  let g = transfer_graph () in
  let params = synth_params () in
  let plan = Pipeline.plan_exn params g ~procs:8 in
  let gt = Machine.Ground_truth.ideal () in
  let sim = Pipeline.simulate gt plan in
  let rel =
    Float.abs (sim.finish_time -. Pipeline.predicted_time plan)
    /. Pipeline.predicted_time plan
  in
  Alcotest.(check bool)
    (Printf.sprintf "within 15%% (got %.1f%%)" (100.0 *. rel))
    true (rel < 0.15)

let test_codegen_mpmd_has_expected_messages () =
  let g = transfer_graph () in
  let params = synth_params () in
  let plan = Pipeline.plan_exn params g ~procs:4 in
  let gt = Machine.Ground_truth.ideal () in
  let prog = Codegen.mpmd gt plan.graph (Pipeline.schedule plan) in
  (* Every Send has a matching Recv. *)
  Alcotest.(check int) "sends = recvs"
    (List.length (Machine.Program.sends prog))
    (List.length (Machine.Program.recvs prog));
  Alcotest.(check bool) "has messages" true
    (List.length (Machine.Program.sends prog) > 0)

let test_spmd_oned_graph_no_real_comm () =
  (* A chain with only 1D transfers on identical processor sets runs
     SPMD with local copies only: simulated time ~= sum of kernel
     times. *)
  let g = Kernels.Workloads.chain ~length:4 ~tau:0.1 ~alpha:0.05 ~bytes:32768.0 in
  let gt = Machine.Ground_truth.ideal () in
  let sim = Pipeline.simulate_spmd gt g ~procs:8 in
  let expected =
    4.0 *. Machine.Ground_truth.kernel_time gt (Synthetic { alpha = 0.05; tau = 0.1 }) ~procs:8
  in
  check_close ~eps:1e-3 "spmd time" expected sim.finish_time

let test_pipeline_mpmd_beats_spmd_on_complex_mm () =
  let g, _ = Kernels.Complex_mm.graph ~n:64 () in
  let gt = Machine.Ground_truth.cm5_like () in
  let params, _, _ =
    Machine.Measure.calibrate gt
      ~procs:[ 1; 2; 4; 8; 16; 32; 64 ]
      (Kernels.Complex_mm.kernels ~n:64)
  in
  List.iter
    (fun procs ->
      let c = Pipeline.compare_mpmd_spmd_exn gt params g ~procs in
      Alcotest.(check bool)
        (Printf.sprintf "MPMD wins at p=%d" procs)
        true (c.mpmd_speedup > c.spmd_speedup))
    [ 16; 32; 64 ]

let test_pipeline_serial_time () =
  let g = Kernels.Workloads.chain ~length:3 ~tau:2.0 ~alpha:0.1 ~bytes:0.0 in
  let gt = Machine.Ground_truth.ideal () in
  check_close "serial" 6.0 (Pipeline.serial_time gt g)

let test_gantt_renders () =
  let g = transfer_graph () in
  let params = synth_params () in
  let plan = Pipeline.plan_exn params g ~procs:4 in
  let s = Gantt.of_schedule plan.graph (Pipeline.schedule plan) in
  Alcotest.(check bool) "has rows" true (String.length s > 100);
  let table =
    Gantt.allocation_table plan.graph ~real:plan.allocation.alloc
      ~rounded:plan.psa.rounded_alloc
  in
  Alcotest.(check bool) "table has header" true
    (String.length table > 0 && String.sub table 0 4 = "node");
  let gt = Machine.Ground_truth.ideal () in
  let sim = Pipeline.simulate gt plan in
  Alcotest.(check bool) "sim gantt" true (String.length (Gantt.of_sim sim) > 100)

let suite =
  [
    Alcotest.test_case "schedule: make + accessors" `Quick
      test_schedule_make_and_accessors;
    Alcotest.test_case "schedule: rejects bad entries" `Quick
      test_schedule_rejects_bad_entries;
    Alcotest.test_case "schedule: validate catches overlap" `Quick
      test_schedule_validate_catches_overlap;
    Alcotest.test_case "bounds: theorem factors" `Quick test_bounds_factors;
    Alcotest.test_case "bounds: Corollary 1 optimal PB" `Quick
      test_bounds_optimal_pb;
    Alcotest.test_case "bounds: validation" `Quick test_bounds_validation;
    Alcotest.test_case "allocation: requires normalised graph" `Quick
      test_allocation_requires_normalised;
    Alcotest.test_case "allocation: within box + converged" `Quick
      test_allocation_within_box;
    Alcotest.test_case "allocation: phi = max(avg, cp)" `Quick
      test_allocation_phi_is_max_avg_cp;
    Alcotest.test_case "allocation: expr matches weights" `Quick
      test_allocation_consistent_with_weights;
    Alcotest.test_case "allocation: symmetry" `Quick
      test_allocation_symmetric_branches;
    Alcotest.test_case "allocation: phi lower-bounds hand schedules" `Quick
      test_allocation_example_phi_below_hand_schedules;
    QCheck_alcotest.to_alcotest prop_allocation_globally_optimal;
    Alcotest.test_case "psa: rounding modes" `Quick test_psa_rounding_modes;
    Alcotest.test_case "psa: rounding capped at machine" `Quick
      test_psa_rounding_caps_at_machine;
    Alcotest.test_case "psa: bounding step" `Quick test_psa_bound;
    Alcotest.test_case "psa: schedules validate" `Quick test_psa_schedule_is_valid;
    Alcotest.test_case "psa: respects fixed PB" `Quick test_psa_respects_pb;
    Alcotest.test_case "psa: auto PB = Corollary 1" `Quick
      test_psa_auto_pb_matches_corollary;
    Alcotest.test_case "psa: lower bounds hold" `Quick test_psa_lower_bounds_hold;
    Alcotest.test_case "psa: partial selection == reference sort" `Quick
      test_psa_selection_matches_reference;
    Alcotest.test_case "psa: FIFO ablation sanity" `Quick
      test_psa_fifo_ablation_no_better;
    QCheck_alcotest.to_alcotest prop_theorem1;
    QCheck_alcotest.to_alcotest prop_theorem2;
    QCheck_alcotest.to_alcotest prop_rounding_factor_bounds;
    QCheck_alcotest.to_alcotest prop_theorem3;
    QCheck_alcotest.to_alcotest prop_schedule_always_valid;
    Alcotest.test_case "codegen: sim matches prediction (ideal)" `Quick
      test_codegen_sim_matches_prediction_on_ideal;
    Alcotest.test_case "codegen: sends match recvs" `Quick
      test_codegen_mpmd_has_expected_messages;
    Alcotest.test_case "codegen: SPMD 1D chain has no real comm" `Quick
      test_spmd_oned_graph_no_real_comm;
    Alcotest.test_case "pipeline: MPMD beats SPMD (complex mm)" `Slow
      test_pipeline_mpmd_beats_spmd_on_complex_mm;
    Alcotest.test_case "pipeline: serial time" `Quick test_pipeline_serial_time;
    Alcotest.test_case "gantt renders" `Quick test_gantt_renders;
  ]

(* Paper Section 5 guarantees exercised across machine sizes: on random
   MDGs and p in {4, 16, 64}, the PSA's finish time stays within the
   Theorem 3 factor of the convex optimum, and the Corollary 1
   processor bound is a power of two in [1, p] that establishes
   Theorem 1's premise (no node allocated more than PB processors).

   Cases come from the shared Generators module and shrink toward
   fewer layers / smaller width / smaller seeds. *)

let synth_params = Generators.synth_params

let machine_sizes = [ 4; 16; 64 ]

let prop_theorem3_all_p =
  QCheck.Test.make ~name:"T_psa <= theorem3_factor * Phi for p in {4,16,64}"
    ~count:(Generators.count 100)
    (Generators.layered ())
    (fun case ->
      let g = Generators.mdg_of_layered case in
      let p = synth_params () in
      List.for_all
        (fun procs ->
          let r = Core.Allocation.solve p g ~procs in
          let psa = Core.Psa.schedule p g ~procs ~alloc:r.alloc in
          Core.Bounds.check_theorem3 ~t_psa:psa.t_psa ~phi:r.phi ~procs
            ~pb:psa.pb)
        machine_sizes)

let prop_corollary1_premise =
  QCheck.Test.make
    ~name:"Corollary-1 PB is a power of two establishing Theorem 1's premise"
    ~count:(Generators.count 100)
    (Generators.layered ())
    (fun case ->
      let g = Generators.mdg_of_layered case in
      let p = synth_params () in
      List.for_all
        (fun procs ->
          let pb = Core.Bounds.optimal_pb ~procs in
          let r = Core.Allocation.solve p g ~procs in
          let psa = Core.Psa.schedule p g ~procs ~alloc:r.alloc in
          pb >= 1
          && pb <= procs
          && pb land (pb - 1) = 0
          && psa.pb = pb
          && Array.for_all (fun a -> a >= 1 && a <= pb) psa.rounded_alloc)
        machine_sizes)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_theorem3_all_p; prop_corollary1_premise ]

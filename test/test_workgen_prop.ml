(* Pipeline-wide metamorphic properties over Workgen's recursive
   divide-combine workloads (ISSUE 8): for any generated workload the
   whole stack must hold its contracts end to end —

   1. the PSA schedule passes Schedule.validate;
   2. Theorem 3 / Corollary 1 bounds hold;
   3. plan-cache exact hits are bit-identical and shape hits never
      worse than a cold solve;
   4. serial and domain-pool tape sweeps (what PARADIGM_DOMAINS=4
      selects inside the solver) agree bit-for-bit;
   5. the solver's Phi is monotone non-increasing in the machine size
      on a fixed shape;
   6. generation is deterministic per (spec, seed);

   plus front-end coverage: interpreting a generated recursive
   program and re-executing it in its lowered MDG's schedule order
   compute the same matrices.

   Failures shrink (fewer levels, smaller fan-out, constant costs) via
   Workgen.shrink_spec, and every entry of test/corpus/workgen.seeds
   is replayed through the full invariant bundle on every run so past
   failures stay fixed.  Replay a single case locally with
     PARADIGM_WORKGEN_REPLAY='<spec>:<seed>' dune runtest --force *)

module G = Mdg.Graph
module W = Workgen

let synth_params = Generators.synth_params
let procs = 16
let guard phi = 1e-6 *. (1.0 +. Float.abs phi)

(* ------------------------------------------------------------------ *)
(* The invariant bundle                                                *)
(*                                                                     *)
(* Each check takes a [fail : string -> unit] so the same code runs    *)
(* under QCheck (fail_report) and under Alcotest (corpus replay).      *)
(* ------------------------------------------------------------------ *)

let check_deterministic fail spec seed =
  let a = W.generate spec ~seed and b = W.generate spec ~seed in
  if G.structural_hash a <> G.structural_hash b then
    fail "two generations of the same (spec, seed) hash differently";
  if Generators.signature a <> Generators.signature b then
    fail "two generations of the same (spec, seed) differ structurally"

let check_well_formed fail spec seed =
  let g = W.generate spec ~seed in
  if not (G.is_normalised g) then fail "generated graph is not normalised";
  ignore (G.start_node g);
  ignore (G.stop_node g);
  let n = G.num_nodes g in
  let bound = (W.num_tasks spec * (spec.W.divide + spec.W.combine + 1)) + 2 in
  (* normalise reuses a unique source/sink as START/STOP, so the
     smallest legal workload (leaf -> combine) has just two nodes. *)
  if n < 2 then fail (Printf.sprintf "only %d nodes" n);
  if n > bound then
    fail (Printf.sprintf "%d nodes exceed the balanced-tree bound %d" n bound)

(* Solve + PSA once; the schedule and bounds checks share the result. *)
let solve_and_schedule g params ~procs =
  let r = Core.Allocation.solve params g ~procs in
  let psa = Core.Psa.schedule params g ~procs ~alloc:r.alloc in
  (r, psa)

let check_schedule_valid fail g params ~procs =
  let r, psa = solve_and_schedule g params ~procs in
  (match Core.Schedule.validate params g psa.schedule with
  | Ok () -> ()
  | Error msgs ->
      fail ("Schedule.validate: " ^ String.concat "; " msgs));
  (r, psa)

let check_bounds fail g params ~procs =
  let r, psa = solve_and_schedule g params ~procs in
  if
    not
      (Core.Bounds.check_theorem3 ~t_psa:psa.t_psa ~phi:r.phi ~procs
         ~pb:psa.pb)
  then
    fail
      (Printf.sprintf "Theorem 3 violated: T_psa %g > factor * Phi %g"
         psa.t_psa r.phi);
  let pb = Core.Bounds.optimal_pb ~procs in
  if psa.pb <> pb then
    fail (Printf.sprintf "PSA applied PB %d, Corollary 1 says %d" psa.pb pb);
  if pb < 1 || pb > procs || pb land (pb - 1) <> 0 then
    fail (Printf.sprintf "PB %d is not a power of two in [1, %d]" pb procs);
  if not (Array.for_all (fun a -> a >= 1 && a <= pb) psa.rounded_alloc) then
    fail "a rounded allocation escapes [1, PB]"

let plan_phi ?config req =
  match Core.Pipeline.plan ?config req with
  | Ok p -> p
  | Error e -> failwith ("plan failed: " ^ Core.Pipeline.error_to_string e)

let check_cache_sound fail g ~procs =
  let module P = Core.Pipeline in
  let params = synth_params () in
  let params' = Generators.perturbed ~scale:1.07 params in
  let cold' = plan_phi (P.request params' g ~procs) in
  let cache = Core.Plan_cache.create () in
  let config = P.(default_config |> with_cache cache) in
  let first = plan_phi ~config (P.request params g ~procs) in
  (* Exact duplicate: served from the cache, bit-identical. *)
  let again = plan_phi ~config (P.request params g ~procs) in
  if again.cache.warm <> P.Hit then fail "second identical plan missed";
  if not again.cache.solve_skipped then
    fail "exact hit re-entered the solver";
  if P.phi again <> P.phi first then
    fail
      (Printf.sprintf "exact hit Phi %.17g <> first Phi %.17g" (P.phi again)
         (P.phi first));
  (* Perturbed constants: a shape hit, never worse than a cold solve. *)
  let warm' = plan_phi ~config (P.request params' g ~procs) in
  if warm'.cache.warm <> P.Shape_hit then
    fail "perturbed plan was not a shape hit";
  if P.phi warm' > P.phi cold' +. guard (P.phi cold') then
    fail
      (Printf.sprintf "shape-hit Phi %.12g worse than cold %.12g"
         (P.phi warm') (P.phi cold'))

(* Serial vs pooled tape sweeps on this workload's own objective —
   the sweep pair PARADIGM_DOMAINS=4 switches inside the solver.  The
   level schedule gathers adjoints in serial order, so the contract is
   bit-identity, not approximate agreement. *)
let check_pool_sweeps_identical fail g ~procs =
  let params = synth_params () in
  let obj = Core.Allocation.objective params g ~procs in
  let tape = Convex.Tape.compile obj in
  let ws = Convex.Tape.create_workspace tape in
  let ws' = Convex.Tape.create_workspace tape in
  let n = Convex.Tape.n_vars tape in
  let hi = log (float_of_int procs) in
  let pool = Numeric.Domain_pool.acquire ~size:4 in
  Fun.protect
    ~finally:(fun () -> Numeric.Domain_pool.release pool)
    (fun () ->
      List.iter
        (fun (mu, point) ->
          let x = Array.make n point in
          let g1 = Array.make n 0.0 and g2 = Array.make n 0.0 in
          let v1 = Convex.Tape.eval_grad ~mu tape ws ~x ~grad:g1 in
          let v2 =
            Convex.Tape.eval_grad_pool ~mu tape pool ws' ~x ~grad:g2
          in
          if v1 <> v2 then
            fail
              (Printf.sprintf
                 "serial value %.17g <> pooled value %.17g (mu=%g)" v1 v2 mu);
          Array.iteri
            (fun i a ->
              if a <> g2.(i) then
                fail
                  (Printf.sprintf
                     "grad[%d]: serial %.17g <> pooled %.17g (mu=%g)" i a
                     g2.(i) mu))
            g1)
        [ (1.0, 0.5 *. hi); (0.05, 0.25 *. hi); (0.0, hi) ])

let check_phi_monotone fail g =
  let phis =
    List.map
      (fun procs -> (Core.Allocation.solve (synth_params ()) g ~procs).phi)
      [ 4; 8; 16; 32 ]
  in
  let rec go = function
    | a :: (b :: _ as rest) ->
        if b > a +. (1e-4 *. (1.0 +. Float.abs a)) then
          fail
            (Printf.sprintf "Phi rose from %.9g to %.9g with more processors"
               a b);
        go rest
    | _ -> ()
  in
  go phis

(* Front-end: interp the generated program, then re-execute its
   statements in the lowered MDG's schedule order; SSA form plus
   correct flow-dependence edges make the two runs compute identical
   matrices. *)
let frontend_params prog =
  let p = synth_params () in
  List.iter
    (fun (k : G.kernel) ->
      let pr : Costmodel.Params.processing =
        match k with
        | Matrix_init _ -> { alpha = 0.2; tau = 0.005 }
        | Matrix_add _ -> { alpha = 0.15; tau = 0.01 }
        | Matrix_multiply _ -> { alpha = 0.1; tau = 0.05 }
        | Synthetic _ | Dummy -> assert false
      in
      Costmodel.Params.set_processing p k pr)
    (Frontend.Lower.kernels prog);
  p

let check_frontend_agrees fail spec seed =
  let prog = W.generate_program spec ~seed ~size:8 in
  let g, map = Frontend.Lower.to_mdg prog in
  let params = frontend_params prog in
  let plan = Core.Pipeline.plan_exn params g ~procs:8 in
  let stmt_of_node = Hashtbl.create 32 in
  Array.iteri
    (fun stmt node -> Hashtbl.replace stmt_of_node node stmt)
    map.node_of_stmt;
  let stmts = Array.of_list prog.stmts in
  let order =
    (* Schedule.entries is sorted by start time (ties by node id); keep
       only statement nodes (dropping START/STOP dummies). *)
    Core.Schedule.entries (Core.Pipeline.schedule plan)
    |> List.filter_map (fun (e : Core.Schedule.entry) ->
           Hashtbl.find_opt stmt_of_node e.node)
  in
  if List.length order <> Array.length stmts then
    fail "schedule does not place every statement exactly once";
  let reordered =
    Frontend.Ast.program ~size:prog.size (List.map (fun k -> stmts.(k)) order)
  in
  if
    not
      (Frontend.Interp.equivalent
         ~on:(Frontend.Ast.defined_matrices prog)
         prog reordered)
  then fail "schedule-order execution disagrees with the interpreter"

(* The full bundle, for corpus pins and env-var replay. *)
let check_all fail spec seed =
  let g = W.generate spec ~seed in
  check_deterministic fail spec seed;
  check_well_formed fail spec seed;
  let _ = check_schedule_valid fail g (synth_params ()) ~procs in
  check_bounds fail g (synth_params ()) ~procs;
  check_cache_sound fail g ~procs;
  check_pool_sweeps_identical fail g ~procs;
  check_phi_monotone fail g;
  check_frontend_agrees fail spec seed

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let qfail msg = QCheck.Test.fail_report msg

let prop name ~count ?(arb = Generators.workgen_case ()) body =
  QCheck.Test.make ~name ~count:(Generators.count count) arb (fun case ->
      body case.Generators.wg_spec case.Generators.wg_seed;
      true)

let prop_deterministic =
  prop "generate is deterministic per (spec, seed)" ~count:50
    (check_deterministic qfail)

let prop_well_formed =
  prop "generated graphs are normalised and tree-bounded" ~count:100
    (check_well_formed qfail)

let prop_schedule_valid =
  prop "Schedule.validate passes on generated workloads" ~count:20
    (fun spec seed ->
      let g = W.generate spec ~seed in
      ignore (check_schedule_valid qfail g (synth_params ()) ~procs))

let prop_bounds =
  prop "Theorem 3 and Corollary 1 hold on generated workloads" ~count:15
    (fun spec seed ->
      let g = W.generate spec ~seed in
      List.iter
        (fun procs -> check_bounds qfail g (synth_params ()) ~procs)
        [ 4; 16; 64 ])

let prop_cache =
  prop "plan cache: exact hits bit-identical, shape hits never worse"
    ~count:10 (fun spec seed ->
      check_cache_sound qfail (W.generate spec ~seed) ~procs)

let prop_pool_sweeps =
  prop "serial and 4-domain tape sweeps are bit-identical" ~count:15
    (fun spec seed ->
      check_pool_sweeps_identical qfail (W.generate spec ~seed) ~procs)

let prop_phi_monotone =
  prop "Phi is monotone non-increasing in machine size" ~count:10
    (fun spec seed -> check_phi_monotone qfail (W.generate spec ~seed))

let prop_frontend =
  QCheck.Test.make
    ~name:"interp agrees with schedule-order execution of lowered programs"
    ~count:(Generators.count 15) (Generators.program_case ())
    (fun case ->
      check_frontend_agrees qfail case.Generators.wg_spec
        case.Generators.wg_seed;
      true)

let prop_program_deterministic =
  QCheck.Test.make ~name:"generate_program is deterministic per (spec, seed)"
    ~count:(Generators.count 50) (Generators.program_case ())
    (fun { Generators.wg_spec = spec; wg_seed = seed } ->
      Workgen.generate_program spec ~seed ~size:8
      = Workgen.generate_program spec ~seed ~size:8)

(* ------------------------------------------------------------------ *)
(* Spec grammar and shrinking                                          *)
(* ------------------------------------------------------------------ *)

let test_spec_roundtrip () =
  let specs =
    [
      W.default_spec;
      { W.default_spec with depth = 0; branching = 1; divide = 0; combine = 0 };
      W.spec_of_string_exn "depth=4,branch=2,cutoff=0.5,tau=u0.01~0.05";
      W.spec_of_string_exn "tau=0.25,alpha=0.1,bytes=l2048~4096,twod=1";
    ]
  in
  List.iter
    (fun s ->
      let str = W.spec_to_string s in
      match W.spec_of_string str with
      | Ok s' ->
          Alcotest.(check bool)
            (Printf.sprintf "%S round-trips" str)
            true (s = s')
      | Error e -> Alcotest.failf "%S failed to parse back: %s" str e)
    specs;
  (* The empty string is the default spec. *)
  Alcotest.(check bool) "empty spec is default" true
    (W.spec_of_string "" = Ok W.default_spec)

let test_spec_errors () =
  let fails str =
    match W.spec_of_string str with
    | Ok _ -> Alcotest.failf "%S unexpectedly parsed" str
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%S has a message" str)
          true
          (String.length msg > 0)
  in
  fails "depth";
  fails "depth=x";
  fails "unknown=3";
  fails "tau=u1";
  fails "tau=q1~2";
  fails "depth=-1";
  fails "branch=0";
  fails "cutoff=1.5";
  fails "tau=l0~1"

let test_shrink_well_founded () =
  (* From a maximal spec, greedily taking the first shrink candidate
     must bottom out; every candidate along the way is valid. *)
  let start =
    W.spec_of_string_exn "depth=4,branch=4,div=3,comb=3,cutoff=0.5,wiring=0.5"
  in
  let steps = ref 0 in
  let s = ref start in
  let continue = ref true in
  while !continue do
    match W.shrink_spec !s with
    | [] -> continue := false
    | cands ->
        List.iter W.validate cands;
        s := List.hd cands;
        incr steps;
        if !steps > 1000 then Alcotest.fail "shrinking did not terminate"
  done;
  Alcotest.(check bool) "shrinking reached a minimal spec" true (!steps > 0);
  Alcotest.(check int) "minimal spec has depth 0" 0 !s.W.depth

let test_structural_corners () =
  (* cutoff = 1: every child collapses to a leaf, so the graph is one
     divide phase, [branching] leaves, one combine phase — and the
     lone divide/combine nodes double as START/STOP (normalise reuses
     a unique source/sink). *)
  let s = W.spec_of_string_exn "depth=3,branch=2,div=1,comb=1,cutoff=1" in
  let g = W.generate s ~seed:5 in
  Alcotest.(check int) "cutoff=1 node count" (1 + 2 + 1) (G.num_nodes g);
  (* No divide/combine nodes and no cutoff: pure leaves, b^d of them. *)
  let s = W.spec_of_string_exn "depth=3,branch=2,div=0,comb=0" in
  let g = W.generate s ~seed:5 in
  Alcotest.(check int) "leaf-only node count" (8 + 2) (G.num_nodes g);
  (* Degenerate recursion: a single leaf between START and STOP. *)
  let s = W.spec_of_string_exn "depth=0" in
  let g = W.generate s ~seed:5 in
  Alcotest.(check int) "single leaf" 3 (G.num_nodes g)

(* ------------------------------------------------------------------ *)
(* Corpus replay                                                       *)
(* ------------------------------------------------------------------ *)

(* dune runs the test binary from _build/default/test; `dune exec
   test/test_main.exe` from the repo root needs the source-tree path. *)
let corpus_path =
  if Sys.file_exists "corpus/workgen.seeds" then "corpus/workgen.seeds"
  else "test/corpus/workgen.seeds"

let load_corpus () =
  let ic = open_in corpus_path in
  let entries = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then
         match String.index_opt line ' ' with
         | Some i ->
             let spec = W.spec_of_string_exn (String.sub line 0 i) in
             let seed =
               int_of_string
                 (String.trim
                    (String.sub line (i + 1) (String.length line - i - 1)))
             in
             entries := (spec, seed) :: !entries
         | None -> failwith ("corpus line without a seed: " ^ line)
     done
   with End_of_file -> close_in ic);
  List.rev !entries

let test_corpus_replay () =
  let entries = load_corpus () in
  Alcotest.(check bool) "corpus is not empty" true (entries <> []);
  List.iter
    (fun (spec, seed) ->
      let fail msg =
        Alcotest.failf "corpus pin %s seed %d: %s" (W.spec_to_string spec)
          seed msg
      in
      check_all fail spec seed)
    entries

let test_env_replay () =
  match Sys.getenv_opt "PARADIGM_WORKGEN_REPLAY" with
  | None | Some "" -> ()
  | Some entry -> (
      match String.rindex_opt entry ':' with
      | None ->
          Alcotest.failf
            "PARADIGM_WORKGEN_REPLAY=%S: want '<spec>:<seed>'" entry
      | Some i ->
          let spec = W.spec_of_string_exn (String.sub entry 0 i) in
          let seed =
            int_of_string
              (String.sub entry (i + 1) (String.length entry - i - 1))
          in
          let fail msg =
            Alcotest.failf "replay %s seed %d: %s" (W.spec_to_string spec)
              seed msg
          in
          check_all fail spec seed)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_deterministic;
      prop_well_formed;
      prop_schedule_valid;
      prop_bounds;
      prop_cache;
      prop_pool_sweeps;
      prop_phi_monotone;
      prop_frontend;
      prop_program_deterministic;
    ]
  @ [
      Alcotest.test_case "spec grammar round-trips" `Quick test_spec_roundtrip;
      Alcotest.test_case "spec grammar rejects bad input" `Quick
        test_spec_errors;
      Alcotest.test_case "shrinking is well-founded" `Quick
        test_shrink_well_founded;
      Alcotest.test_case "structural corners" `Quick test_structural_corners;
      Alcotest.test_case "corpus replay" `Slow test_corpus_replay;
      Alcotest.test_case "env replay hook (PARADIGM_WORKGEN_REPLAY)" `Quick
        test_env_replay;
    ]

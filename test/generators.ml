(* Shared random-workload generators for the property suites.

   Before this module existed, test_solver_prop.ml, test_bounds_prop.ml
   and test_cache_prop.ml each rolled their own random-MDG helper
   around Kernels.Workloads.random_layered, none of them shrinking (a
   failure printed an unreduced case).  Everything random in the
   property harness now comes from here:

   - [layered] cases wrap the layered generator with QCheck shrinking
     toward fewer layers / smaller width / smaller seeds;
   - [workgen] cases wrap Workgen's recursive divide-combine generator
     (and [program] cases its Frontend.Ast sibling) with shrinking via
     Workgen.shrink_spec;
   - [count] scales every suite's QCheck count by PARADIGM_QCHECK_MULT
     (the `make test-long` hook). *)

module G = Mdg.Graph

let synth_params () =
  Costmodel.Params.make ~transfer:Costmodel.Params.cm5_transfer

(* Same-machine re-calibration: scale the per-byte transfer costs,
   keep the processing table.  Distinct scale => distinct fingerprint,
   same structural hash => the cached-plan path takes a shape hit. *)
let perturbed ~scale params =
  let tf = Costmodel.Params.transfer params in
  let p =
    Costmodel.Params.make
      ~transfer:{ tf with t_ps = tf.t_ps *. scale; t_pr = tf.t_pr *. scale }
  in
  List.iter
    (fun kernel ->
      Costmodel.Params.set_processing p kernel
        (Costmodel.Params.processing params kernel))
    (Costmodel.Params.known_kernels params);
  p

(* ------------------------------------------------------------------ *)
(* QCheck count scaling (`make test-long`)                             *)
(* ------------------------------------------------------------------ *)

let long_factor =
  match Sys.getenv_opt "PARADIGM_QCHECK_MULT" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> n
      | _ ->
          Printf.eprintf "ignoring bad PARADIGM_QCHECK_MULT=%S\n%!" s;
          1)
  | None -> 1

let count n = n * long_factor

(* ------------------------------------------------------------------ *)
(* Structural signature (collision oracle)                             *)
(* ------------------------------------------------------------------ *)

(* Exactly the data Mdg.Graph.structural_hash consumes, so a hash
   collision between graphs with different signatures is a true
   collision rather than a structurally-equal pair — and two equal
   signatures mean structurally identical graphs. *)
let signature g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (string_of_int (G.num_nodes g));
  Array.iter
    (fun (nd : G.node) ->
      Buffer.add_char buf '|';
      Buffer.add_string buf (Format.asprintf "%a" G.pp_kernel nd.kernel))
    (G.nodes g);
  List.iter
    (fun (e : G.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "|%d>%d:%h:%s" e.src e.dst e.bytes
           (match e.kind with Oned -> "1" | Twod -> "2")))
    (G.edges g);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Layered cases                                                       *)
(* ------------------------------------------------------------------ *)

type layered = { seed : int; layers : int; width : int }

let mdg_of_seed ?(layers = 4) ?(width = 4) seed =
  G.normalise
    (Kernels.Workloads.random_layered ~seed
       { Kernels.Workloads.default_shape with layers; width })

let mdg_of_layered { seed; layers; width } = mdg_of_seed ~layers ~width seed

let layered_print { seed; layers; width } =
  Printf.sprintf "layered{seed=%d; layers=%d; width=%d}" seed layers width

let layered_shrink c yield =
  if c.layers > 1 then yield { c with layers = c.layers - 1 };
  if c.width > 1 then yield { c with width = c.width - 1 };
  QCheck.Shrink.int c.seed (fun seed -> yield { c with seed })

let layered ?(max_layers = 4) ?(max_width = 4) () =
  let gen =
    QCheck.Gen.(
      map3
        (fun seed layers width -> { seed; layers; width })
        (int_bound 100_000) (int_range 1 max_layers) (int_range 1 max_width))
  in
  QCheck.make ~print:layered_print ~shrink:layered_shrink gen

(* ------------------------------------------------------------------ *)
(* Workgen cases                                                       *)
(* ------------------------------------------------------------------ *)

type workgen = { wg_spec : Workgen.spec; wg_seed : int }

let workgen_print { wg_spec; wg_seed } =
  Printf.sprintf "%s : seed %d" (Workgen.spec_to_string wg_spec) wg_seed

let workgen_shrink c yield =
  List.iter
    (fun wg_spec -> yield { c with wg_spec })
    (Workgen.shrink_spec c.wg_spec);
  QCheck.Shrink.int c.wg_seed (fun wg_seed -> yield { c with wg_seed })

(* The float knobs come from small menus rather than continuous draws
   so a printed case (spec_to_string uses %g) parses back to the exact
   same spec. *)
let workgen_gen ~max_depth ~max_branching ~max_phase =
  QCheck.Gen.(
    let* depth = int_range 1 max_depth in
    let* branching = int_range 1 max_branching in
    let* divide = int_range 0 max_phase in
    let* combine = int_range 0 max_phase in
    let* cutoff = oneofl [ 0.0; 0.0; 0.25 ] in
    let* wiring = oneofl [ 0.0; 0.3; 0.6 ] in
    let* twod_fraction = oneofl [ 0.0; 0.25 ] in
    let* tau_decay = oneofl [ 0.6; 1.0 ] in
    let* bytes_decay = oneofl [ 0.5; 1.0 ] in
    let* wg_seed = int_bound 100_000 in
    return
      {
        wg_spec =
          {
            Workgen.default_spec with
            depth;
            branching;
            divide;
            combine;
            cutoff;
            wiring;
            twod_fraction;
            tau_decay;
            bytes_decay;
          };
        wg_seed;
      })

let workgen_case ?(max_depth = 3) ?(max_branching = 3) ?(max_phase = 2) () =
  QCheck.make ~print:workgen_print ~shrink:workgen_shrink
    (workgen_gen ~max_depth ~max_branching ~max_phase)

let mdg_of_workgen { wg_spec; wg_seed } = Workgen.generate wg_spec ~seed:wg_seed

(* Program cases stay small: statement counts grow with the recursion
   tree and the interpreter multiplies real matrices. *)
let program_case () =
  QCheck.make ~print:workgen_print ~shrink:workgen_shrink
    (workgen_gen ~max_depth:2 ~max_branching:2 ~max_phase:2)

let program_of_workgen ?(size = 8) { wg_spec; wg_seed } =
  Workgen.generate_program wg_spec ~seed:wg_seed ~size

(* Tests for the second wave of extensions: recursive Strassen MDGs,
   the front-end optimiser, and Chrome trace export. *)

module G = Mdg.Graph
open Frontend

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Recursive Strassen                                                  *)
(* ------------------------------------------------------------------ *)

let test_recursive_level1_shape () =
  let g = Kernels.Strassen_mdg.graph_recursive ~levels:1 ~n:128 in
  (* 2 init + 10 pre + 7 mul + 8 post + 1 assemble + START (the assemble node is the unique sink) = 29. *)
  Alcotest.(check int) "29 nodes" 29 (G.num_nodes g);
  Alcotest.(check bool) "normalised" true (G.is_normalised g);
  let muls =
    Array.to_list (G.nodes g)
    |> List.filter (fun (nd : G.node) ->
           match nd.kernel with G.Matrix_multiply _ -> true | _ -> false)
  in
  Alcotest.(check int) "7 multiplies" 7 (List.length muls);
  List.iter
    (fun (nd : G.node) ->
      Alcotest.(check bool) "64x64 muls" true (nd.kernel = G.Matrix_multiply 64))
    muls

let test_recursive_level2_shape () =
  let g = Kernels.Strassen_mdg.graph_recursive ~levels:2 ~n:128 in
  (* Top level: 10 pre + 8 post; each of 7 products expands to
     10 + 7 + 8 + 1 = 26 nodes; plus 2 inits, 1 assemble, START/STOP:
     2 + 10 + 7*26 + 8 + 1 + 2 = 205. *)
  Alcotest.(check int) "204 nodes" 204 (G.num_nodes g);
  let count p =
    Array.to_list (G.nodes g)
    |> List.filter (fun (nd : G.node) -> p nd.kernel)
    |> List.length
  in
  Alcotest.(check int) "49 leaf multiplies" 49
    (count (function G.Matrix_multiply 32 -> true | _ -> false));
  Alcotest.(check int) "half-size adds" 18
    (count (function G.Matrix_add 64 -> true | _ -> false));
  Alcotest.(check int) "quarter-size adds" (7 * 18)
    (count (function G.Matrix_add 32 -> true | _ -> false))

let test_recursive_kernels () =
  Alcotest.(check int) "4 kernels at 2 levels" 4
    (List.length (Kernels.Strassen_mdg.kernels_recursive ~levels:2 ~n:128));
  Alcotest.check_raises "indivisible"
    (Invalid_argument "Strassen_mdg: n must be divisible by 2^levels")
    (fun () -> ignore (Kernels.Strassen_mdg.graph_recursive ~levels:3 ~n:20))

let test_recursive_schedulable () =
  (* The 205-node graph goes through the whole pipeline. *)
  let g = Kernels.Strassen_mdg.graph_recursive ~levels:2 ~n:128 in
  let gt = Machine.Ground_truth.cm5_like () in
  let params, _, _ =
    Machine.Measure.calibrate gt
      ~procs:[ 1; 2; 4; 8; 16; 32; 64 ]
      (Kernels.Strassen_mdg.kernels_recursive ~levels:2 ~n:128)
  in
  (* A low-effort solve suffices: this test validates schedulability
     and simulation of the big graph, not allocation optimality. *)
  let config =
    Core.Pipeline.(
      default_config
      |> with_solver_options
           { Convex.Solver.default_options with max_iters = 40; mu_final = 1e-3 })
  in
  let plan = Core.Pipeline.plan_exn ~config params g ~procs:64 in
  (match Core.Schedule.validate params plan.graph plan.psa.schedule with
  | Ok () -> ()
  | Error msgs -> Alcotest.fail (String.concat "; " msgs));
  let sim = Core.Pipeline.simulate gt plan in
  Alcotest.(check bool) "simulates" true (sim.finish_time > 0.0);
  Alcotest.(check bool) "prediction sane" true
    (Float.abs (Core.Pipeline.predicted_time plan -. sim.finish_time)
     /. sim.finish_time
    < 0.5)

(* ------------------------------------------------------------------ *)
(* Optimiser                                                           *)
(* ------------------------------------------------------------------ *)

let prog stmts = Ast.program ~size:16 stmts

let test_dce_removes_unused () =
  let p =
    prog
      [
        Ast.stmt "A" Ast.Init;
        Ast.stmt "B" Ast.Init;
        Ast.stmt "Unused" (Ast.Mul ("A", "B"));
        Ast.stmt "C" (Ast.Add ("A", "B"));
      ]
  in
  let q = Opt.dead_code_elimination ~keep:[ "C" ] p in
  Alcotest.(check int) "3 stmts left" 3 (List.length q.stmts);
  Alcotest.(check bool) "Unused gone" false
    (List.exists (fun (s : Ast.stmt) -> s.target = "Unused") q.stmts)

let test_dce_removes_shadowed_definition () =
  let p =
    prog
      [
        Ast.stmt "A" Ast.Init;
        Ast.stmt "B" (Ast.Add ("A", "A"));  (* dead: B redefined below, never read *)
        Ast.stmt "B" (Ast.Mul ("A", "A"));
      ]
  in
  let q = Opt.dead_code_elimination p in
  Alcotest.(check int) "2 stmts" 2 (List.length q.stmts)

let test_dce_keeps_transitive_deps () =
  let p =
    prog
      [
        Ast.stmt "A" Ast.Init;
        Ast.stmt "B" (Ast.Add ("A", "A"));
        Ast.stmt "C" (Ast.Mul ("B", "B"));
      ]
  in
  let q = Opt.dead_code_elimination ~keep:[ "C" ] p in
  Alcotest.(check int) "all kept" 3 (List.length q.stmts)

let test_dce_rejects_unknown_keep () =
  Alcotest.check_raises "unknown"
    (Invalid_argument "Opt: keep mentions undefined matrix Z") (fun () ->
      ignore (Opt.dead_code_elimination ~keep:[ "Z" ] (prog [ Ast.stmt "A" Ast.Init ])))

let test_cse_merges_duplicates () =
  let p =
    prog
      [
        Ast.stmt "A" Ast.Init;
        Ast.stmt "B" Ast.Init;
        Ast.stmt "P" (Ast.Mul ("A", "B"));
        Ast.stmt "Q" (Ast.Mul ("A", "B"));  (* same value as P *)
        Ast.stmt "R" (Ast.Add ("P", "Q"));
      ]
  in
  let q = Opt.common_subexpressions p in
  Alcotest.(check int) "Q eliminated" 4 (List.length q.stmts);
  (* R now reads P twice. *)
  let r = List.nth q.stmts 3 in
  Alcotest.(check bool) "R reads P twice" true (r.rhs = Ast.Add ("P", "P"))

let test_cse_add_commutative_mul_not () =
  let p =
    prog
      [
        Ast.stmt "A" Ast.Init;
        Ast.stmt "B" Ast.Init;
        Ast.stmt "S1" (Ast.Add ("A", "B"));
        Ast.stmt "S2" (Ast.Add ("B", "A"));  (* merged: + commutes *)
        Ast.stmt "P1" (Ast.Mul ("A", "B"));
        Ast.stmt "P2" (Ast.Mul ("B", "A"));  (* kept: matrix * does not *)
        Ast.stmt "Out" (Ast.Add ("S2", "P2"));
      ]
  in
  let q = Opt.common_subexpressions p in
  Alcotest.(check int) "one add merged" 6 (List.length q.stmts)

let test_cse_respects_redefinition () =
  let p =
    prog
      [
        Ast.stmt "A" Ast.Init;
        Ast.stmt "B" Ast.Init;
        Ast.stmt "S" (Ast.Add ("A", "B"));
        Ast.stmt "A" Ast.Init;               (* A changes value *)
        Ast.stmt "T" (Ast.Add ("A", "B"));   (* must NOT merge with S *)
      ]
  in
  let q = Opt.common_subexpressions p in
  Alcotest.(check int) "nothing merged" 5 (List.length q.stmts)

let test_cse_never_merges_init () =
  let p = prog [ Ast.stmt "A" Ast.Init; Ast.stmt "B" Ast.Init ] in
  Alcotest.(check int) "inits kept" 2
    (List.length (Opt.common_subexpressions p).stmts)

let test_optimise_shrinks_mdg () =
  let p =
    prog
      [
        Ast.stmt "A" Ast.Init;
        Ast.stmt "B" Ast.Init;
        Ast.stmt "P" (Ast.Mul ("A", "B"));
        Ast.stmt "Q" (Ast.Mul ("A", "B"));
        Ast.stmt "Dead" (Ast.Add ("Q", "Q"));
        Ast.stmt "Out" (Ast.Add ("P", "Q"));
      ]
  in
  let q = Opt.optimise ~keep:[ "Out" ] p in
  let g_before, _ = Lower.to_mdg p in
  let g_after, _ = Lower.to_mdg q in
  Alcotest.(check bool) "fewer nodes" true
    (G.num_nodes g_after < G.num_nodes g_before);
  (* 4 statements survive: A, B, P, Out. *)
  Alcotest.(check int) "4 stmts" 4 (List.length q.stmts)

let test_optimise_preserves_semantics_structurally () =
  (* The dependence structure of the kept outputs is preserved: Out
     still transitively depends on both inits. *)
  let p =
    prog
      [
        Ast.stmt "A" Ast.Init;
        Ast.stmt "B" Ast.Init;
        Ast.stmt "P" (Ast.Mul ("A", "B"));
        Ast.stmt "Q" (Ast.Mul ("A", "B"));
        Ast.stmt "Out" (Ast.Add ("P", "Q"));
      ]
  in
  let q = Opt.optimise ~keep:[ "Out" ] p in
  let g, map = Lower.to_mdg q in
  let out_stmt =
    List.mapi (fun k s -> (k, s)) q.stmts
    |> List.find (fun (_, (s : Ast.stmt)) -> s.target = "Out")
    |> fst
  in
  let out_node = map.node_of_stmt.(out_stmt) in
  (* Walk back: Out is reachable from both init statements. *)
  List.iteri
    (fun k (s : Ast.stmt) ->
      if s.rhs = Ast.Init then
        let reach = Mdg.Analysis.reachable g map.node_of_stmt.(k) in
        Alcotest.(check bool) ("reaches Out from " ^ s.target) true
          reach.(out_node))
    q.stmts

(* ------------------------------------------------------------------ *)
(* Trace export                                                        *)
(* ------------------------------------------------------------------ *)

let small_sim () =
  let gt = Machine.Ground_truth.ideal () in
  let prog =
    Machine.Program.make ~procs:2
      [|
        [
          Machine.Program.Compute { node = 3; seconds = 0.5 };
          Machine.Program.Send { edge = 7; dst_proc = 1; bytes = 100.0 };
        ];
        [ Machine.Program.Recv { edge = 7; src_proc = 0; bytes = 100.0 } ];
      |]
  in
  Machine.Sim.run gt prog

let test_trace_json_structure () =
  let json = Machine.Trace_export.to_json (small_sim ()) in
  Alcotest.(check bool) "array" true
    (String.length json > 2 && json.[0] = '[');
  Alcotest.(check bool) "has compute event" true
    (contains json "\"compute node 3\"");
  Alcotest.(check bool) "has send event" true (contains json "\"send edge 7\"");
  Alcotest.(check bool) "has recv event" true (contains json "\"recv edge 7\"");
  Alcotest.(check bool) "thread metadata" true (contains json "\"thread_name\"");
  Alcotest.(check bool) "durations in us" true (contains json "\"dur\":500000.000")

let test_trace_event_count () =
  let r = small_sim () in
  let json = Machine.Trace_export.to_json r in
  (* Count "ph":"X" occurrences = number of segments. *)
  let occurrences =
    let rec go i acc =
      if i + 9 > String.length json then acc
      else if String.sub json i 9 = "\"ph\":\"X\"," then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "one event per segment" (List.length r.segments)
    occurrences

let test_trace_file () =
  let path = Filename.temp_file "trace" ".json" in
  Machine.Trace_export.save path (small_sim ());
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "nonempty file" true (len > 100)

let suite =
  [
    Alcotest.test_case "strassen recursive: level-1 shape" `Quick
      test_recursive_level1_shape;
    Alcotest.test_case "strassen recursive: level-2 shape" `Quick
      test_recursive_level2_shape;
    Alcotest.test_case "strassen recursive: kernels + validation" `Quick
      test_recursive_kernels;
    Alcotest.test_case "strassen recursive: full pipeline (205 nodes)" `Slow
      test_recursive_schedulable;
    Alcotest.test_case "opt: DCE removes unused" `Quick test_dce_removes_unused;
    Alcotest.test_case "opt: DCE removes shadowed defs" `Quick
      test_dce_removes_shadowed_definition;
    Alcotest.test_case "opt: DCE keeps transitive deps" `Quick
      test_dce_keeps_transitive_deps;
    Alcotest.test_case "opt: DCE validates keep" `Quick test_dce_rejects_unknown_keep;
    Alcotest.test_case "opt: CSE merges duplicates" `Quick test_cse_merges_duplicates;
    Alcotest.test_case "opt: CSE commutativity rules" `Quick
      test_cse_add_commutative_mul_not;
    Alcotest.test_case "opt: CSE respects redefinition" `Quick
      test_cse_respects_redefinition;
    Alcotest.test_case "opt: CSE never merges init" `Quick test_cse_never_merges_init;
    Alcotest.test_case "opt: optimise shrinks the MDG" `Quick
      test_optimise_shrinks_mdg;
    Alcotest.test_case "opt: dependence structure preserved" `Quick
      test_optimise_preserves_semantics_structurally;
    Alcotest.test_case "trace: JSON structure" `Quick test_trace_json_structure;
    Alcotest.test_case "trace: event count" `Quick test_trace_event_count;
    Alcotest.test_case "trace: file output" `Quick test_trace_file;
  ]

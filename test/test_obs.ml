(* Tests for the Obs telemetry subsystem: sink round-trips, exporter
   well-formedness, the null sink's no-op guarantee, and a regression
   asserting a fully traced strassen2 pipeline run still produces a
   valid schedule. *)

module E = Obs.Events

(* ------------------------------------------------------------------ *)
(* A tiny JSON parser (validity checking only).                        *)
(* ------------------------------------------------------------------ *)

exception Bad_json of string

let parse_json (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let literal word =
    String.iter (fun c -> expect c) word
  in
  let parse_string () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done;
              go ()
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let parse_number () =
    let digits () =
      let seen = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
            seen := true;
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      if not !seen then fail "expected digit"
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec parse_value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else
          let rec members () =
            skip_ws ();
            parse_string ();
            skip_ws ();
            expect ':';
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or }"
          in
          members ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else
          let rec elements () =
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ]"
          in
          elements ()
    | Some '"' -> parse_string ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "expected a JSON value");
    skip_ws ()
  in
  parse_value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let check_json msg text =
  match parse_json text with
  | () -> ()
  | exception Bad_json why ->
      Alcotest.failf "%s: invalid JSON (%s) in:\n%s" msg why text

(* ------------------------------------------------------------------ *)
(* Null sink                                                           *)
(* ------------------------------------------------------------------ *)

let test_null_noop () =
  Alcotest.(check bool) "null disabled" false (Obs.enabled Obs.null);
  let calls = ref 0 in
  let v =
    Obs.span Obs.null "unseen" (fun () ->
        incr calls;
        42)
  in
  Alcotest.(check int) "span returns thunk value" 42 v;
  Alcotest.(check int) "thunk ran once" 1 !calls;
  (* Emitting on the null sink must be a silent no-op. *)
  Obs.instant Obs.null "nothing";
  Obs.counter Obs.null "nothing" [ ("x", 1.0) ];
  Obs.complete Obs.null "nothing" ~ts:0.0 ~dur:1.0;
  Obs.flush Obs.null;
  (match Obs.Sink.tee Obs.null Obs.null with
  | Obs.Sink.Null -> ()
  | _ -> Alcotest.fail "tee null null should be null");
  (* The no-op guarantee is what keeps bench numbers unaffected: the
     guarded emission pattern does zero work on the hot path. *)
  let words_before = Gc.minor_words () in
  for _ = 1 to 1000 do
    if Obs.enabled Obs.null then
      Obs.instant Obs.null "never" ~args:[ ("i", E.Int 0) ]
  done;
  let words_after = Gc.minor_words () in
  Alcotest.(check bool)
    "guarded null emission allocates nothing" true
    (words_after -. words_before < 256.0)

(* ------------------------------------------------------------------ *)
(* Recorder round-trip                                                 *)
(* ------------------------------------------------------------------ *)

let test_recorder_roundtrip () =
  let r = Obs.Recorder.create () in
  let obs = Obs.Recorder.sink r in
  Alcotest.(check bool) "recorder enabled" true (Obs.enabled obs);
  Obs.process_name obs ~pid:0 "test process";
  Obs.instant obs ~cat:"c" "first" ~args:[ ("k", E.Int 7) ];
  Obs.counter obs "count" [ ("v", 3.5) ];
  let x = Obs.span obs "work" (fun () -> "done") in
  Alcotest.(check string) "span result" "done" x;
  Obs.complete obs ~pid:1 ~tid:2 "seg" ~ts:0.5 ~dur:0.25;
  Alcotest.(check int) "five events" 5 (Obs.Recorder.length r);
  let names = List.map E.name (Obs.Recorder.events r) in
  Alcotest.(check (list string))
    "names in emission order"
    [ "process_name"; "first"; "count"; "work"; "seg" ]
    names;
  (match Obs.Recorder.events r with
  | [ _; E.Instant { args = [ ("k", E.Int 7) ]; cat = "c"; _ };
      E.Counter { series = [ ("v", 3.5) ]; _ };
      E.Complete { dur; _ };
      E.Complete { ts = 0.5; dur = 0.25; pid = 1; tid = 2; _ } ] ->
      Alcotest.(check bool) "span duration non-negative" true (dur >= 0.0)
  | _ -> Alcotest.fail "unexpected event payloads");
  Obs.Recorder.clear r;
  Alcotest.(check int) "clear empties" 0 (Obs.Recorder.length r)

let test_tee () =
  let a = Obs.Recorder.create () in
  let b = Obs.Recorder.create () in
  let obs = Obs.Sink.tee (Obs.Recorder.sink a) (Obs.Recorder.sink b) in
  Obs.instant obs "both";
  Alcotest.(check int) "left saw it" 1 (Obs.Recorder.length a);
  Alcotest.(check int) "right saw it" 1 (Obs.Recorder.length b)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let sample_events () =
  [
    E.Process_name { pid = 0; name = "proc \"quoted\"\n" };
    E.Thread_name { pid = 0; tid = 3; name = "P03" };
    E.Complete
      {
        name = "span";
        cat = "pipeline";
        pid = 0;
        tid = 0;
        ts = 0.001;
        dur = 0.5;
        args = [ ("n", E.Int 12); ("ok", E.Bool true); ("s", E.Str "x\\y") ];
      };
    E.Instant
      {
        name = "mark";
        cat = "";
        pid = 0;
        tid = 0;
        ts = 1e-9;
        args = [ ("f", E.Float 1.25e-6) ];
      };
    E.Counter
      {
        name = "conv";
        pid = 0;
        tid = 0;
        ts = 2.0;
        series = [ ("mu", 1e-4); ("iters", 31.0) ];
      };
  ]

let test_chrome_json () =
  let json = Obs.Chrome_format.to_json (sample_events ()) in
  check_json "chrome trace" json;
  Alcotest.(check bool) "is an array" true (json.[0] = '[');
  let contains needle =
    let nl = String.length needle and jl = String.length json in
    let rec go i =
      if i + nl > jl then false
      else if String.sub json i nl = needle then true
      else go (i + 1)
    in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains needle))
    [
      "\"ph\":\"X\"";
      "\"ph\":\"i\"";
      "\"ph\":\"C\"";
      "\"ph\":\"M\"";
      "\"dur\":500000.000";
      "proc \\\"quoted\\\"\\n";
    ]

let test_jsonl () =
  List.iter
    (fun ev ->
      let line = Obs.Jsonl_format.to_line ev in
      check_json "jsonl line" line;
      Alcotest.(check bool)
        "single line" false
        (String.contains line '\n'))
    (sample_events ())

let test_jsonl_sink_streams () =
  let path = Filename.temp_file "obs_test" ".jsonl" in
  let oc = open_out path in
  let obs = Obs.Jsonl_format.sink oc in
  List.iter (Obs.emit obs) (sample_events ());
  Obs.flush obs;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Alcotest.(check int) "one line per event" 5 (List.length !lines);
  List.iter (check_json "streamed line") !lines

let test_summary () =
  let events =
    [
      E.Complete
        { name = "a"; cat = ""; pid = 0; tid = 0; ts = 0.0; dur = 1.5; args = [] };
      E.Complete
        { name = "a"; cat = ""; pid = 0; tid = 0; ts = 2.0; dur = 0.5; args = [] };
      E.Instant { name = "b"; cat = ""; pid = 0; tid = 0; ts = 0.0; args = [] };
      E.Counter
        { name = "c"; pid = 0; tid = 0; ts = 0.0; series = [ ("v", 1.0) ] };
      E.Counter
        { name = "c"; pid = 0; tid = 0; ts = 1.0; series = [ ("v", 9.0) ] };
      E.Process_name { pid = 0; name = "meta ignored" };
    ]
  in
  match Obs.Summary.of_events events with
  | [ a; b; c ] ->
      Alcotest.(check string) "row a" "a" a.Obs.Summary.name;
      Alcotest.(check int) "a count" 2 a.count;
      Alcotest.(check (float 1e-9)) "a total" 2.0 a.total_dur;
      Alcotest.(check string) "row b" "b" b.name;
      Alcotest.(check string) "row c" "c" c.name;
      Alcotest.(check (list (pair string (float 1e-9))))
        "c keeps last sample"
        [ ("v", 9.0) ]
        c.last;
      let table = Obs.Summary.to_string [ a; b; c ] in
      Alcotest.(check bool) "table mentions a" true
        (String.length table > 0 && String.contains table 'a')
  | rows -> Alcotest.failf "expected 3 rows, got %d" (List.length rows)

(* ------------------------------------------------------------------ *)
(* Traced pipeline regression                                          *)
(* ------------------------------------------------------------------ *)

let count_name events name =
  List.length (List.filter (fun ev -> E.name ev = name) events)

let test_traced_strassen2_pipeline () =
  let g = Kernels.Strassen_mdg.graph_recursive ~levels:2 ~n:32 in
  let gt = Machine.Ground_truth.cm5_like () in
  let params, _, _ =
    Machine.Measure.calibrate gt
      ~procs:[ 1; 2; 4; 8; 16; 32; 64 ]
      (Kernels.Strassen_mdg.kernels_recursive ~levels:2 ~n:32)
  in
  let recorder = Obs.Recorder.create () in
  let config =
    Core.Pipeline.(
      default_config
      |> with_solver_options
           { Convex.Solver.default_options with max_iters = 40; mu_final = 1e-3 }
      |> with_obs (Obs.Recorder.sink recorder))
  in
  let plan = Core.Pipeline.plan_exn ~config params g ~procs:16 in
  (* The traced run must still produce a valid schedule: telemetry is
     observation, never interference. *)
  (match Core.Schedule.validate params plan.graph plan.psa.schedule with
  | Ok () -> ()
  | Error msgs -> Alcotest.fail (String.concat "; " msgs));
  let sim = Core.Pipeline.simulate gt plan in
  Alcotest.(check bool) "simulated" true (sim.finish_time > 0.0);
  let events = Obs.Recorder.events recorder in
  let nodes = Mdg.Graph.num_nodes plan.graph in
  (* Compiler-side spans. *)
  List.iter
    (fun name ->
      Alcotest.(check int) (name ^ " span emitted") 1 (count_name events name))
    [
      "pipeline.plan";
      "pipeline.allocate";
      "pipeline.schedule";
      "pipeline.codegen";
      "pipeline.simulate";
      "solver.solve";
    ];
  (* Solver convergence counters: one per smoothing stage. *)
  Alcotest.(check bool)
    "solver stages reported" true
    (count_name events "solver.stage" >= 2);
  (* PSA decisions: one rounding and one placement event per node. *)
  Alcotest.(check int) "psa.round per node" nodes
    (count_name events "psa.round");
  Alcotest.(check int) "psa.place per node" nodes
    (count_name events "psa.place");
  (* The machine timeline was forwarded into the same sink. *)
  Alcotest.(check bool)
    "machine segments forwarded" true
    (List.exists
       (function
         | E.Complete { pid = 1; cat = "compute"; _ } -> true | _ -> false)
       events);
  Alcotest.(check int) "messages counter" 1
    (count_name events "sim.messages_delivered");
  (* And the whole stream renders as one well-formed Chrome trace. *)
  check_json "full pipeline chrome trace" (Obs.Chrome_format.to_json events)

let suite =
  [
    Alcotest.test_case "null sink is a no-op" `Quick test_null_noop;
    Alcotest.test_case "recorder round-trip" `Quick test_recorder_roundtrip;
    Alcotest.test_case "tee duplicates events" `Quick test_tee;
    Alcotest.test_case "chrome trace well-formed" `Quick test_chrome_json;
    Alcotest.test_case "jsonl lines well-formed" `Quick test_jsonl;
    Alcotest.test_case "jsonl sink streams" `Quick test_jsonl_sink_streams;
    Alcotest.test_case "summary aggregates" `Quick test_summary;
    Alcotest.test_case "traced strassen2 validates" `Slow
      test_traced_strassen2_pipeline;
  ]

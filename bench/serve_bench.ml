(* Load generator for the plan server (`bench/main.exe -- serve`).

   PR 6's bench only measured the friendliest possible traffic: one
   graph shape, warmed caches, 100 % hits.  Real serving traffic is
   adversarial, so this generator drives four mixes:

   - [near-dup]   the original steady state: one shape, a few
                  parameter variants, warmed — every request a cache
                  hit (throughput ceiling).
   - [cold-heavy] every request a fresh workgen shape — the all-miss
                  floor: each request pays compile + cold solve.
   - [hot-key]    K clients hammer the same *uncached* key in lockstep
                  rounds — the singleflight showcase: coalescing turns
                  N concurrent cold solves into 1 solve + N-1 waits.
   - [overload]   a shuffled heterogeneous mix (hot/dup/cold) against
                  a deliberately undersized server (2 workers, 1
                  pending slot) — exercises bounded queueing: excess
                  connections get the typed `overloaded` reply and
                  retry, nothing hangs.

   Each mix emits one row (req/s, p50/p99, cache + coalesce + shed
   columns) into BENCH_serve.json; `serve-quick` is the CI smoke
   variant and exits non-zero if any request fails, the tape cache
   never hits on the near-dup mix, or the hot-key mix never
   coalesces. *)

module Daemon = Server.Daemon
module Client = Server.Client

type sample = {
  latency : float;  (* seconds *)
  tape_hit : bool;
  warm_hit : bool;  (* exact or shape *)
  skipped : bool;
  coalesced : bool;
}

type outcome = { samples : sample list; failed : int; shed : int }

let no_outcome = { samples = []; failed = 0; shed = 0 }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let idx = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let sample_of_summary ~latency (s : Server.Protocol.plan_summary) =
  {
    latency;
    tape_hit = s.tape_cache = "hit";
    warm_hit = s.warm_cache = "hit" || s.warm_cache = "shape_hit";
    skipped = s.solve_skipped;
    coalesced = s.coalesced;
  }

(* A reusable rendezvous: the hot-key mix releases all clients into
   the same round together, so their identical requests actually
   overlap in the server instead of trickling in. *)
module Barrier = struct
  type t = {
    lock : Mutex.t;
    cond : Condition.t;
    parties : int;
    mutable count : int;
    mutable phase : int;
  }

  let create parties =
    {
      lock = Mutex.create ();
      cond = Condition.create ();
      parties;
      count = 0;
      phase = 0;
    }

  let await b =
    Mutex.protect b.lock (fun () ->
        let phase = b.phase in
        b.count <- b.count + 1;
        if b.count = b.parties then begin
          b.count <- 0;
          b.phase <- phase + 1;
          Condition.broadcast b.cond
        end
        else
          while b.phase = phase do
            Condition.wait b.cond b.lock
          done)
end

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

(* The request mix: one graph shape, [variants] parameter sets that
   differ in the network constant (as successive re-calibrations
   would), hence [variants] distinct cache fingerprints. *)
let make_variants ~variants params =
  let tf = Costmodel.Params.transfer params in
  List.init variants (fun i ->
      let scale = 1.0 +. (0.02 *. float_of_int i) in
      let p = Costmodel.Params.make ~transfer:{ tf with t_n = tf.t_n *. scale } in
      List.iter
        (fun kernel ->
          Costmodel.Params.set_processing p kernel
            (Costmodel.Params.processing params kernel))
        (Costmodel.Params.known_kernels params);
      p)

(* Synthetic-kernel recursive workloads: distinct seeds give distinct
   structural hashes (irregular recursion via cutoff/wiring), so every
   seed is a fresh cache key under the same parameter set. *)
let workgen_spec =
  {
    Workgen.default_spec with
    depth = 2;
    branching = 3;
    cutoff = 0.15;
    wiring = 0.3;
  }

let workgen_graph seed = Workgen.generate workgen_spec ~seed

(* The hot-key contended graph: a deeper recursion whose cold solve is
   long enough (~100 ms) that concurrent requests reliably land while
   the leader is still solving. *)
let hot_spec = { workgen_spec with depth = 3 }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

type row = {
  mix : string;
  workload : string;
  clients : int;
  duration : float;
  requests : int;
  failed : int;
  shed : int;  (* client-observed overloaded replies *)
  req_per_s : float;
  p50_ms : float;
  p99_ms : float;
  tape_hit_rate : float;
  warm_hit_rate : float;
  solve_skipped_rate : float;
  coalesced_rate : float;
  queue_depth_max : int;  (* sampled while the mix ran *)
  stats : Core.Plan_cache.stats;
  srv_shed : int;
}

let make_row ~mix ~workload ~clients ~elapsed ~queue_depth_max ~stats ~srv_shed
    outcomes =
  let samples = List.concat_map (fun (o : outcome) -> o.samples) outcomes in
  let failed =
    List.fold_left (fun acc (o : outcome) -> acc + o.failed) 0 outcomes
  in
  let shed =
    List.fold_left (fun acc (o : outcome) -> acc + o.shed) 0 outcomes
  in
  let requests = List.length samples in
  let latencies = Array.of_list (List.map (fun s -> s.latency) samples) in
  Array.sort compare latencies;
  let rate pred =
    if requests = 0 then 0.0
    else
      float_of_int (List.length (List.filter pred samples))
      /. float_of_int requests
  in
  {
    mix;
    workload;
    clients;
    duration = elapsed;
    requests;
    failed;
    shed;
    req_per_s = float_of_int requests /. elapsed;
    p50_ms = 1e3 *. percentile latencies 50.0;
    p99_ms = 1e3 *. percentile latencies 99.0;
    tape_hit_rate = rate (fun s -> s.tape_hit);
    warm_hit_rate = rate (fun s -> s.warm_hit);
    solve_skipped_rate = rate (fun s -> s.skipped);
    coalesced_rate = rate (fun s -> s.coalesced);
    queue_depth_max;
    stats;
    srv_shed;
  }

let print_row r =
  Printf.printf
    "[%s] %d clients, %.1f s: %d requests (%d failed, %d shed), %.1f req/s\n\
    \  latency p50 %.2f ms, p99 %.2f ms\n\
    \  cache: tape hits %.1f%%, warm hits %.1f%%, solve skipped %.1f%%, \
     coalesced %.1f%%\n\
    \  server: tape %d/%d hits, warm %d exact + %d shape / %d misses, \
     coalesce %d hits on %d leaders, shed %d, max queue depth %d\n\
     %!"
    r.mix r.clients r.duration r.requests r.failed r.shed r.req_per_s r.p50_ms
    r.p99_ms (100.0 *. r.tape_hit_rate) (100.0 *. r.warm_hit_rate)
    (100.0 *. r.solve_skipped_rate)
    (100.0 *. r.coalesced_rate)
    r.stats.tape_hits
    (r.stats.tape_hits + r.stats.tape_misses)
    r.stats.warm_hits r.stats.warm_shape_hits r.stats.warm_misses
    r.stats.coalesce_hits r.stats.coalesce_leaders r.srv_shed r.queue_depth_max

(* ------------------------------------------------------------------ *)
(* Mix harness                                                         *)
(* ------------------------------------------------------------------ *)

(* Run [clients] domains against a fresh daemon, sampling the queue
   depth from the main domain while they run.  [client k] does the
   whole per-client loop and returns its outcome. *)
let with_daemon ?(options = Daemon.default_options) ~mix ~workload ~clients
    ~client () =
  let srv = Daemon.start ~options () in
  Fun.protect ~finally:(fun () -> Daemon.stop srv) @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let doms =
    List.init clients (fun k -> Domain.spawn (fun () -> client srv k))
  in
  (* Poll queue depth while clients run: the daemon is in-process, so
     the max depth the admission control reached is observable
     directly.  Domain.join has no timeout, so each client gets a
     collector domain that flips a counter, and the main domain polls
     until all have finished. *)
  let depth_max = ref 0 in
  let done_count = Atomic.make 0 in
  let results = Array.make clients no_outcome in
  let collectors =
    List.mapi
      (fun i d ->
        Domain.spawn (fun () ->
            let r = Domain.join d in
            results.(i) <- r;
            Atomic.incr done_count))
      doms
  in
  while Atomic.get done_count < clients do
    depth_max := max !depth_max (Daemon.queue_depth srv);
    Unix.sleepf 0.005
  done;
  List.iter Domain.join collectors;
  let elapsed = Unix.gettimeofday () -. t0 in
  make_row ~mix ~workload ~clients ~elapsed ~queue_depth_max:!depth_max
    ~stats:(Daemon.stats srv)
    ~srv_shed:(Daemon.connections_shed srv)
    (Array.to_list results)

(* ------------------------------------------------------------------ *)
(* Mix 1: near-duplicate steady state (the PR-6 bench)                 *)
(* ------------------------------------------------------------------ *)

let near_dup_loop ~port ~graph ~procs ~deadline ~param_cycle k =
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let n_variants = Array.length param_cycle in
  let samples = ref [] in
  let failed = ref 0 in
  let i = ref k in
  while Unix.gettimeofday () < deadline do
    let params = param_cycle.(!i mod n_variants) in
    incr i;
    let t0 = Unix.gettimeofday () in
    (match Client.plan ~params c graph ~procs with
    | Ok s ->
        samples :=
          sample_of_summary ~latency:(Unix.gettimeofday () -. t0) s :: !samples
    | Error _ -> incr failed)
  done;
  { samples = !samples; failed = !failed; shed = 0 }

let run_near_dup ~duration ~clients ~variants () =
  let gt = Machine.Ground_truth.cm5_like () in
  let levels = 2 and n = 128 in
  let graph = Kernels.Strassen_mdg.graph_recursive ~levels ~n in
  let params, _, _ =
    Machine.Measure.calibrate gt
      ~procs:[ 1; 2; 4; 8; 16; 32; 64 ]
      (Kernels.Strassen_mdg.kernels_recursive ~levels ~n)
  in
  let param_cycle = Array.of_list (make_variants ~variants params) in
  let srv = Daemon.start () in
  Fun.protect ~finally:(fun () -> Daemon.stop srv) @@ fun () ->
  let port = Daemon.port srv in
  (* Warm-up: solve each variant once so the timed window measures the
     serving steady state, not first-compile cost. *)
  let w = Client.connect ~port () in
  Array.iter
    (fun params ->
      match Client.plan ~params w graph ~procs:64 with
      | Ok _ -> ()
      | Error msg -> failwith ("serve bench warm-up failed: " ^ msg))
    param_cycle;
  Client.close w;
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. duration in
  let outcomes =
    List.init clients (fun k ->
        Domain.spawn (fun () ->
            near_dup_loop ~port ~graph ~procs:64 ~deadline ~param_cycle k))
    |> List.map Domain.join
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  make_row ~mix:"near-dup" ~workload:"strassen2:128" ~clients ~elapsed
    ~queue_depth_max:0 ~stats:(Daemon.stats srv)
    ~srv_shed:(Daemon.connections_shed srv)
    outcomes

(* ------------------------------------------------------------------ *)
(* Mix 2: cold-heavy (every request a fresh shape)                     *)
(* ------------------------------------------------------------------ *)

let run_cold_heavy ~duration ~clients () =
  let params = Costmodel.Params.cm5 () in
  let deadline = Unix.gettimeofday () +. duration in
  let client srv k =
    let c = Client.connect ~port:(Daemon.port srv) () in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    let samples = ref [] and failed = ref 0 in
    let i = ref 0 in
    while Unix.gettimeofday () < deadline do
      (* Disjoint seed ranges per client: no two requests in the run
         share a cache key. *)
      let graph = workgen_graph ((k * 1_000_000) + !i) in
      incr i;
      let t0 = Unix.gettimeofday () in
      (match Client.plan ~params c graph ~procs:16 with
      | Ok s ->
          samples :=
            sample_of_summary ~latency:(Unix.gettimeofday () -. t0) s
            :: !samples
      | Error _ -> incr failed)
    done;
    { samples = !samples; failed = !failed; shed = 0 }
  in
  with_daemon ~mix:"cold-heavy"
    ~workload:("random:" ^ Workgen.spec_to_string workgen_spec)
    ~clients ~client ()

(* ------------------------------------------------------------------ *)
(* Mix 3: hot-key contention (the singleflight showcase)               *)
(* ------------------------------------------------------------------ *)

let run_hot_key ~rounds ~clients () =
  let params = Costmodel.Params.cm5 () in
  let barrier = Barrier.create clients in
  let client srv _k =
    let c = Client.connect ~port:(Daemon.port srv) () in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    let samples = ref [] and failed = ref 0 in
    for r = 0 to rounds - 1 do
      (* Every client requests the same *fresh* key: one leader
         solves, the rest should coalesce onto its flight. *)
      let graph = Workgen.generate hot_spec ~seed:(7_000_000 + r) in
      Barrier.await barrier;
      let t0 = Unix.gettimeofday () in
      match Client.plan ~params c graph ~procs:16 with
      | Ok s ->
          samples :=
            sample_of_summary ~latency:(Unix.gettimeofday () -. t0) s
            :: !samples
      | Error _ -> incr failed
    done;
    { samples = !samples; failed = !failed; shed = 0 }
  in
  with_daemon ~mix:"hot-key"
    ~workload:("random:" ^ Workgen.spec_to_string hot_spec)
    ~clients ~client ()

(* ------------------------------------------------------------------ *)
(* Mix 4: shuffled heterogeneous traffic against an undersized server  *)
(* ------------------------------------------------------------------ *)

(* Deterministic per-client request stream (LCG, same constants as
   workgen's): ~1/2 hot-pool repeats, ~1/4 near-dup parameter
   variants, ~1/4 cold fresh shapes, shuffled. *)
let lcg state =
  state := Int64.add (Int64.mul !state 6364136223846793005L) 1442695040888963407L;
  Int64.to_int (Int64.shift_right_logical !state 33)

let run_overload ~duration ~clients ~workers ~max_pending () =
  let params = Costmodel.Params.cm5 () in
  let variants = Array.of_list (make_variants ~variants:3 params) in
  let pool = Array.init 4 workgen_graph in
  let deadline = Unix.gettimeofday () +. duration in
  let options = { Daemon.default_options with workers; max_pending } in
  let client srv k =
    let port = Daemon.port srv in
    let samples = ref [] and failed = ref 0 and shed = ref 0 in
    let rng = ref (Int64.of_int ((k * 2654435761) + 12345)) in
    let cold = ref 0 in
    let conn = ref None in
    let reconnect () =
      (match !conn with Some c -> Client.close c | None -> ());
      conn := None;
      match Client.connect ~port () with
      | c ->
          conn := Some c;
          Some c
      | exception Unix.Unix_error _ -> None
    in
    let get_conn () = match !conn with Some c -> Some c | None -> reconnect () in
    while Unix.gettimeofday () < deadline do
      match get_conn () with
      | None -> Unix.sleepf 0.01
      | Some c -> (
          let pick = lcg rng mod 4 in
          let graph, req_params =
            if pick < 2 then (pool.(lcg rng mod Array.length pool), params)
            else if pick = 2 then
              (pool.(lcg rng mod Array.length pool),
               variants.(lcg rng mod Array.length variants))
            else begin
              incr cold;
              (workgen_graph ((k * 1_000_000) + 500_000 + !cold), params)
            end
          in
          let t0 = Unix.gettimeofday () in
          match Client.plan ~params:req_params c graph ~procs:16 with
          | Ok s ->
              samples :=
                sample_of_summary ~latency:(Unix.gettimeofday () -. t0) s
                :: !samples
          | Error msg ->
              if
                String.length msg >= 10
                && String.sub msg 0 10 = Server.Protocol.overloaded_kind
              then begin
                (* Typed shed: the server closed this connection after
                   the reply — honour the hint, then reconnect. *)
                incr shed;
                ignore (reconnect ());
                Unix.sleepf 0.02
              end
              else begin
                incr failed;
                ignore (reconnect ())
              end
          | exception Unix.Unix_error _ ->
              (* The send raced the server's post-shed close. *)
              incr shed;
              ignore (reconnect ());
              Unix.sleepf 0.02)
    done;
    (match !conn with Some c -> Client.close c | None -> ());
    { samples = !samples; failed = !failed; shed = !shed }
  in
  with_daemon ~options ~mix:"overload"
    ~workload:
      (Printf.sprintf "mixed hot/dup/cold, %d workers + %d pending" workers
         max_pending)
    ~clients ~client ()

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let write_json path rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"experiment\": \"serve\",\n  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"mix\": %S, \"workload\": %S, \"clients\": %d,\n\
        \     \"duration_seconds\": %.3f, \"requests\": %d, \"failed\": %d,\n\
        \     \"shed\": %d, \"req_per_s\": %.2f, \"p50_ms\": %.3f, \"p99_ms\": \
         %.3f,\n\
        \     \"tape_hit_rate\": %.4f, \"warm_hit_rate\": %.4f,\n\
        \     \"solve_skipped_rate\": %.4f, \"coalesced_rate\": %.4f,\n\
        \     \"coalesce_hits\": %d, \"coalesce_leaders\": %d,\n\
        \     \"server_shed\": %d, \"queue_depth_max\": %d}%s\n"
        r.mix r.workload r.clients r.duration r.requests r.failed r.shed
        r.req_per_s r.p50_ms r.p99_ms r.tape_hit_rate r.warm_hit_rate
        r.solve_skipped_rate r.coalesced_rate r.stats.coalesce_hits
        r.stats.coalesce_leaders r.srv_shed r.queue_depth_max
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

let header title =
  print_newline ();
  print_endline (String.make 72 '-');
  print_endline title;
  print_endline (String.make 72 '-')

let serve () =
  header "Plan server under load: near-dup / cold-heavy / hot-key / overload";
  let rows =
    [
      run_near_dup ~duration:10.0 ~clients:4 ~variants:3 ();
      run_cold_heavy ~duration:10.0 ~clients:4 ();
      run_hot_key ~rounds:8 ~clients:4 ();
      run_overload ~duration:8.0 ~clients:6 ~workers:2 ~max_pending:1 ();
    ]
  in
  List.iter print_row rows;
  write_json "BENCH_serve.json" rows

(* CI smoke variant: short runs of the near-dup, cold-heavy and
   hot-key mixes with hard floors — any failed request, a never-
   warming tape cache, or a hot-key mix that never coalesces fails
   the build. *)
let serve_quick () =
  header "Plan server smoke: near-dup / cold-heavy / hot-key";
  let near = run_near_dup ~duration:2.0 ~clients:2 ~variants:2 () in
  let cold = run_cold_heavy ~duration:2.0 ~clients:2 () in
  let hot = run_hot_key ~rounds:3 ~clients:4 () in
  List.iter print_row [ near; cold; hot ];
  List.iter
    (fun r ->
      if r.failed > 0 then
        failwith (Printf.sprintf "serve-quick[%s]: failed requests" r.mix);
      if r.requests = 0 then
        failwith (Printf.sprintf "serve-quick[%s]: no requests completed" r.mix))
    [ near; cold; hot ];
  if near.tape_hit_rate <= 0.0 then
    failwith "serve-quick: tape cache never hit on the near-dup mix";
  if hot.stats.coalesce_hits <= 0 then
    failwith "serve-quick: hot-key mix never coalesced concurrent misses"

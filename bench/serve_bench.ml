(* Load generator for the plan server (`bench/main.exe -- serve`).

   Serving scenario from the README: many clients repeatedly request
   plans for the same MDG shape — the two-level Strassen graph — under
   a small set of cost-parameter variants (re-calibrations of the same
   machine).  The steady state exercises both caches: every request
   after warm-up should hit the compiled-tape cache, and an exact
   fingerprint repeat should be answered from the warm-start cache's
   stored result without re-entering the solver.

   Reports req/s, p50/p99 latency and client-observed cache rates;
   `serve` writes BENCH_serve.json, `serve-quick` is the CI smoke
   variant and exits non-zero if any request fails or the tape cache
   never hits. *)

module Daemon = Server.Daemon
module Client = Server.Client

type sample = {
  latency : float;  (* seconds *)
  tape_hit : bool;
  warm_hit : bool;  (* exact or shape *)
  skipped : bool;
}

type outcome = { samples : sample list; failed : int }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let idx = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

(* The request mix: one graph shape, [variants] parameter sets that
   differ in the network constant (as successive re-calibrations
   would), hence [variants] distinct cache fingerprints. *)
let make_variants ~variants params =
  let tf = Costmodel.Params.transfer params in
  List.init variants (fun i ->
      let scale = 1.0 +. (0.02 *. float_of_int i) in
      let p = Costmodel.Params.make ~transfer:{ tf with t_n = tf.t_n *. scale } in
      List.iter
        (fun kernel ->
          Costmodel.Params.set_processing p kernel
            (Costmodel.Params.processing params kernel))
        (Costmodel.Params.known_kernels params);
      p)

let client_loop ~port ~graph ~procs ~deadline ~param_cycle k =
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let n_variants = Array.length param_cycle in
  let samples = ref [] in
  let failed = ref 0 in
  let i = ref k in
  while Unix.gettimeofday () < deadline do
    let params = param_cycle.(!i mod n_variants) in
    incr i;
    let t0 = Unix.gettimeofday () in
    (match Client.plan ~params c graph ~procs with
    | Ok s ->
        samples :=
          {
            latency = Unix.gettimeofday () -. t0;
            tape_hit = s.tape_cache = "hit";
            warm_hit = s.warm_cache = "hit" || s.warm_cache = "shape_hit";
            skipped = s.solve_skipped;
          }
          :: !samples
    | Error _ -> incr failed)
  done;
  { samples = !samples; failed = !failed }

type report = {
  duration : float;
  clients : int;
  requests : int;
  failed : int;
  req_per_s : float;
  p50_ms : float;
  p99_ms : float;
  tape_hit_rate : float;
  warm_hit_rate : float;
  solve_skipped_rate : float;
  stats : Core.Plan_cache.stats;
}

let run ~duration ~clients ~variants () =
  let gt = Machine.Ground_truth.cm5_like () in
  let levels = 2 and n = 128 in
  let graph = Kernels.Strassen_mdg.graph_recursive ~levels ~n in
  let params, _, _ =
    Machine.Measure.calibrate gt
      ~procs:[ 1; 2; 4; 8; 16; 32; 64 ]
      (Kernels.Strassen_mdg.kernels_recursive ~levels ~n)
  in
  let param_cycle = Array.of_list (make_variants ~variants params) in
  let srv = Daemon.start () in
  Fun.protect ~finally:(fun () -> Daemon.stop srv) @@ fun () ->
  let port = Daemon.port srv in
  (* Warm-up: solve each variant once so the timed window measures the
     serving steady state, not first-compile cost. *)
  let w = Client.connect ~port () in
  Array.iter
    (fun params ->
      match Client.plan ~params w graph ~procs:64 with
      | Ok _ -> ()
      | Error msg -> failwith ("serve bench warm-up failed: " ^ msg))
    param_cycle;
  Client.close w;
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. duration in
  let outcomes =
    List.init clients (fun k ->
        Domain.spawn (fun () ->
            client_loop ~port ~graph ~procs:64 ~deadline ~param_cycle k))
    |> List.map Domain.join
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let samples = List.concat_map (fun (o : outcome) -> o.samples) outcomes in
  let failed =
    List.fold_left (fun acc (o : outcome) -> acc + o.failed) 0 outcomes
  in
  let requests = List.length samples in
  let latencies =
    Array.of_list (List.map (fun s -> s.latency) samples)
  in
  Array.sort compare latencies;
  let rate pred =
    if requests = 0 then 0.0
    else
      float_of_int (List.length (List.filter pred samples))
      /. float_of_int requests
  in
  {
    duration = elapsed;
    clients;
    requests;
    failed;
    req_per_s = float_of_int requests /. elapsed;
    p50_ms = 1e3 *. percentile latencies 50.0;
    p99_ms = 1e3 *. percentile latencies 99.0;
    tape_hit_rate = rate (fun s -> s.tape_hit);
    warm_hit_rate = rate (fun s -> s.warm_hit);
    solve_skipped_rate = rate (fun s -> s.skipped);
    stats = Daemon.stats srv;
  }

let print_report r =
  Printf.printf
    "%d clients, %.1f s: %d requests (%d failed), %.1f req/s\n\
     latency p50 %.2f ms, p99 %.2f ms\n\
     cache: tape hits %.1f%%, warm hits %.1f%%, solve skipped %.1f%%\n\
     server totals: tape %d/%d hits, warm %d exact + %d shape / %d misses\n%!"
    r.clients r.duration r.requests r.failed r.req_per_s r.p50_ms r.p99_ms
    (100.0 *. r.tape_hit_rate) (100.0 *. r.warm_hit_rate)
    (100.0 *. r.solve_skipped_rate) r.stats.tape_hits
    (r.stats.tape_hits + r.stats.tape_misses)
    r.stats.warm_hits r.stats.warm_shape_hits r.stats.warm_misses

let write_json path r =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"serve\",\n\
    \  \"graph\": \"strassen2:128\",\n\
    \  \"procs\": 64,\n\
    \  \"clients\": %d,\n\
    \  \"duration_seconds\": %.3f,\n\
    \  \"requests\": %d,\n\
    \  \"failed\": %d,\n\
    \  \"req_per_s\": %.2f,\n\
    \  \"p50_ms\": %.3f,\n\
    \  \"p99_ms\": %.3f,\n\
    \  \"tape_hit_rate\": %.4f,\n\
    \  \"warm_hit_rate\": %.4f,\n\
    \  \"solve_skipped_rate\": %.4f\n\
     }\n"
    r.clients r.duration r.requests r.failed r.req_per_s r.p50_ms r.p99_ms
    r.tape_hit_rate r.warm_hit_rate r.solve_skipped_rate;
  close_out oc;
  Printf.printf "wrote %s\n" path

let header () =
  print_newline ();
  print_endline (String.make 72 '-');
  print_endline
    "Plan server under load: strassen2:128 near-duplicate request mix";
  print_endline (String.make 72 '-')

let serve () =
  header ();
  let r = run ~duration:10.0 ~clients:4 ~variants:3 () in
  print_report r;
  write_json "BENCH_serve.json" r

(* CI smoke variant: short, and a hard failure if the server dropped a
   request or the tape cache never warmed up. *)
let serve_quick () =
  header ();
  let r = run ~duration:2.0 ~clients:2 ~variants:2 () in
  print_report r;
  if r.failed > 0 then failwith "serve-quick: failed requests";
  if r.requests = 0 then failwith "serve-quick: no requests completed";
  if r.tape_hit_rate <= 0.0 then failwith "serve-quick: tape cache never hit"

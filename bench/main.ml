(* Benchmark harness.

   `dune exec bench/main.exe` (no args) regenerates every table and
   figure of the paper and then runs the Bechamel micro-benchmarks of
   the core algorithms.  `dune exec bench/main.exe -- <experiment>`
   runs one experiment: fig1 tab1 fig3 tab2 fig5 fig6 fig7 fig8 fig9
   tab3 ablate micro. *)

open Bechamel
open Toolkit

let micro_tests () =
  let gt = Machine.Ground_truth.cm5_like () in
  let params, _, _ =
    Machine.Measure.calibrate gt
      ~procs:[ 1; 2; 4; 8; 16; 32; 64 ]
      (List.sort_uniq compare
         (Kernels.Complex_mm.kernels ~n:64 @ Kernels.Strassen_mdg.kernels ~n:128))
  in
  let cm_graph = Mdg.Graph.normalise (fst (Kernels.Complex_mm.graph ~n:64 ())) in
  let st_graph = Mdg.Graph.normalise (fst (Kernels.Strassen_mdg.graph ~n:128 ())) in
  let cm_alloc = (Core.Allocation.solve params cm_graph ~procs:64).alloc in
  let st_alloc = (Core.Allocation.solve params st_graph ~procs:64).alloc in
  let cm_plan = Core.Pipeline.plan_exn params cm_graph ~procs:64 in
  let cm_prog = Core.Codegen.mpmd gt cm_graph (Core.Pipeline.schedule cm_plan) in
  let mat_a = Kernels.Dense.random_matrix ~seed:1 64 in
  let mat_b = Kernels.Dense.random_matrix ~seed:2 64 in
  [
    Test.make ~name:"allocation: complex-mm objective solve (12 nodes)"
      (Staged.stage (fun () ->
           ignore (Core.Allocation.solve params cm_graph ~procs:64)));
    Test.make ~name:"psa: schedule complex-mm"
      (Staged.stage (fun () ->
           ignore (Core.Psa.schedule params cm_graph ~procs:64 ~alloc:cm_alloc)));
    Test.make ~name:"psa: schedule strassen (29 nodes)"
      (Staged.stage (fun () ->
           ignore (Core.Psa.schedule params st_graph ~procs:64 ~alloc:st_alloc)));
    Test.make ~name:"codegen+sim: complex-mm MPMD on 64 procs"
      (Staged.stage (fun () -> ignore (Machine.Sim.run gt cm_prog)));
    Test.make ~name:"kernel: naive 64x64 matmul"
      (Staged.stage (fun () -> ignore (Numeric.Mat.matmul mat_a mat_b)));
    Test.make ~name:"kernel: one-level Strassen 64x64"
      (Staged.stage (fun () -> ignore (Kernels.Dense.strassen_one_level mat_a mat_b)));
    Test.make ~name:"objective: legacy Expr.eval_grad on strassen expr"
      (let obj = Core.Allocation.objective params st_graph ~procs:64 in
       let x = Array.map log st_alloc in
       Staged.stage (fun () -> ignore (Convex.Expr.eval_grad ~mu:1e-4 obj x)));
    Test.make ~name:"objective: tape eval_grad on strassen expr"
      (let obj = Core.Allocation.objective params st_graph ~procs:64 in
       let tape = Convex.Tape.compile obj in
       let ws = Convex.Tape.create_workspace tape in
       let x = Array.map log st_alloc in
       let grad = Array.make (Array.length x) 0.0 in
       Staged.stage (fun () ->
           ignore (Convex.Tape.eval_grad ~mu:1e-4 tape ws ~x ~grad)));
    Test.make ~name:"objective: tape compile (strassen)"
      (let obj = Core.Allocation.objective params st_graph ~procs:64 in
       Staged.stage (fun () -> ignore (Convex.Tape.compile obj)));
  ]

let run_micro () =
  print_newline ();
  print_endline (String.make 72 '-');
  print_endline "Bechamel micro-benchmarks (time per run, OLS estimate)";
  print_endline (String.make 72 '-');
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-54s %12.3f us\n" name (est /. 1e3)
          | _ -> Printf.printf "%-54s %12s\n" name "n/a")
        ols)
    (micro_tests ())

let () =
  match Sys.argv with
  | [| _ |] ->
      Experiments.all ();
      run_micro ()
  | [| _; "micro" |] -> run_micro ()
  | [| _; "serve" |] -> Serve_bench.serve ()
  | [| _; "serve-quick" |] -> Serve_bench.serve_quick ()
  | [| _; name |] -> (Experiments.by_name name) ()
  | argv when Array.length argv > 2 && argv.(1) = "scale" ->
      (* Ad-hoc scaling rows, e.g.
           main.exe -- scale 3 random:depth=4,branch=3:17
         (a bare int is a Strassen recursion depth; the random spec
         grammar is Workgen.spec_of_string's). *)
      Experiments.scale_custom
        (Array.to_list (Array.sub argv 2 (Array.length argv - 2)))
  | _ ->
      prerr_endline
        "usage: main.exe \
         [fig1|tab1|fig3|tab2|fig5|fig6|fig7|fig8|fig9|tab3|ablate|sweep|static|heuristics|topology|scale|scale-quick|expand|serve|serve-quick|micro]\n\
         \       main.exe scale [<levels>|strassen:<levels>|random:<spec>:<seed>]...";
      exit 2

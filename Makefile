# Development entry points.  `make verify` is the tier-1 gate: build,
# test, and (when ocamlformat is installed) formatting drift.

.PHONY: all build test test-long fmt fmt-apply verify bench-quick bench-serve-quick clean

all: build

build:
	dune build

test:
	dune runtest

# Soak run for the property suites: every QCheck case count is
# multiplied by PARADIGM_QCHECK_MULT (see test/generators.ml), so the
# random-workload properties see 10x the cases.  The nightly CI job
# runs this under both PARADIGM_DOMAINS=1 and =4.
test-long:
	PARADIGM_QCHECK_MULT=10 dune runtest --force

# Formatting check, gated on the pinned ocamlformat (see .ocamlformat)
# being installed so environments without it still pass `make verify`.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

fmt-apply:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt --auto-promote; \
	else \
		echo "ocamlformat not installed; cannot reformat"; exit 1; \
	fi

verify: build test fmt

# Quick performance sanity: micro-benchmarks (tape vs legacy
# eval_grad among them) plus the scale experiment at smoke levels 1-2.
bench-quick: build
	dune exec bench/main.exe -- micro
	dune exec bench/main.exe -- scale-quick

# Serving smoke: start the plan server, drive it with concurrent
# clients for 2 s, and fail on any dropped request or a cold tape
# cache (see bench/serve_bench.ml).
bench-serve-quick: build
	dune exec bench/main.exe -- serve-quick

clean:
	dune clean

(* Compiling a user program through the front end.

   Writes a small matrix program in the textual IR, parses it, runs
   dependence analysis to derive the MDG (the step the paper performs
   by hand), then allocates, schedules and simulates it. *)

let source =
  {|
# Two independent chains that join at the end: C = (A*B) + (A2*B2)^T-ish
size 64
A  = init
B  = init
A2 = init        @col
B2 = init        @col
P  = A * B       # row-distributed product
Q  = A2 * B2 @col
R  = P + P       # double the first product (still row)
C  = R + Q       # joining Q forces a 2D redistribution
|}

let () =
  let prog = Frontend.Parse.program_of_string source in
  print_endline "=== source program ===";
  print_string (Frontend.Parse.program_to_string prog);

  print_endline "\n=== dependence analysis ===";
  List.iter
    (fun (w, r, m) -> Printf.printf "  s%d -> s%d carries %s\n" w r m)
    (Frontend.Lower.flow_dependences prog);

  let g, _map = Frontend.Lower.to_mdg prog in
  print_endline "\n=== derived MDG ===";
  print_string (Mdg.Render.to_ascii g);

  let gt = Machine.Ground_truth.cm5_like () in
  let params, _, _ =
    Machine.Measure.calibrate gt
      ~procs:[ 1; 2; 4; 8; 16; 32 ]
      (Frontend.Lower.kernels prog)
  in
  let procs = 16 in
  let plan = Core.Pipeline.plan_exn params g ~procs in
  Printf.printf "\nPhi = %.4f s, T_psa = %.4f s on %d processors\n"
    (Core.Pipeline.phi plan)
    (Core.Pipeline.predicted_time plan)
    procs;
  print_string
    (Core.Gantt.allocation_table plan.graph ~real:plan.allocation.alloc
       ~rounded:plan.psa.rounded_alloc);
  print_newline ();
  print_string (Core.Gantt.of_schedule plan.graph (Core.Pipeline.schedule plan));

  let sim = Core.Pipeline.simulate gt plan in
  Printf.printf "\nsimulated MPMD time: %.4f s (prediction off by %+.1f%%)\n"
    sim.finish_time
    (100.0 *. (Core.Pipeline.predicted_time plan -. sim.finish_time)
    /. sim.finish_time);
  print_endline "\n=== simulated machine activity ===";
  print_string (Core.Gantt.of_sim sim)

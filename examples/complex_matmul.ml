(* The paper's first test program: 64x64 complex matrix multiply.

   Full reproduction pipeline: calibrate cost-model parameters against
   the simulated machine (training-sets approach), build the MDG, run
   the convex allocator + PSA at several machine sizes, execute both
   the MPMD result and the SPMD baseline, and report speedups. *)

let () =
  let n = 64 in
  let g, _ids = Kernels.Complex_mm.graph ~n () in
  let gt = Machine.Ground_truth.cm5_like () in
  Printf.printf "machine: %s\n\n" (Machine.Ground_truth.describe gt);

  print_endline "=== MDG (paper Figure 6, left) ===";
  print_string (Mdg.Render.to_ascii g);

  (* Training-sets calibration (paper Section 4). *)
  let procs_swept = [ 1; 2; 4; 8; 16; 32; 64 ] in
  let params, kernel_quality, transfer_fit =
    Machine.Measure.calibrate gt ~procs:procs_swept (Kernels.Complex_mm.kernels ~n)
  in
  print_endline "\n=== fitted processing parameters (cf. paper Table 1) ===";
  List.iter
    (fun (kernel, (q : Costmodel.Fit.quality)) ->
      Format.printf "%a : %a (r^2 = %.5f)@." Mdg.Graph.pp_kernel kernel
        Costmodel.Params.pp_processing
        (Costmodel.Params.processing params kernel)
        q.r_squared)
    kernel_quality;
  Format.printf "\n=== fitted transfer parameters (cf. paper Table 2) ===@.";
  Format.printf "%a@." Costmodel.Params.pp_transfer transfer_fit.params;

  print_endline "\n=== MPMD vs SPMD (cf. paper Figure 8) ===";
  Printf.printf "%6s %12s %12s %9s %9s %8s %8s\n" "procs" "MPMD (s)"
    "SPMD (s)" "S_mpmd" "S_spmd" "E_mpmd" "E_spmd";
  List.iter
    (fun procs ->
      let c = Core.Pipeline.compare_mpmd_spmd_exn gt params g ~procs in
      Printf.printf "%6d %12.5f %12.5f %9.2f %9.2f %7.1f%% %7.1f%%\n" procs
        c.mpmd_time c.spmd_time c.mpmd_speedup c.spmd_speedup
        (100.0 *. c.mpmd_efficiency)
        (100.0 *. c.spmd_efficiency))
    [ 4; 8; 16; 32; 64 ];

  print_endline "\n=== schedule on 4 processors (cf. paper Figure 7) ===";
  let plan = Core.Pipeline.plan_exn params g ~procs:4 in
  print_string
    (Core.Gantt.allocation_table plan.graph ~real:plan.allocation.alloc
       ~rounded:plan.psa.rounded_alloc);
  print_newline ();
  print_string (Core.Gantt.of_schedule plan.graph (Core.Pipeline.schedule plan));

  print_endline "\n=== numerical check of the decomposition ===";
  Printf.printf "4-mul/2-add complex product matches direct: %b\n"
    (Kernels.Complex_mm.verify_numerics ~n:16 ~seed:42)

(* Quickstart: allocate and schedule a small mixed-parallelism MDG.

   Builds the paper's Figure 1 example (one loop feeding two
   independent loops), runs the convex-programming allocator and the
   PSA on a 4-processor machine, and shows that the mixed
   task+data-parallel schedule beats the naive all-processors one. *)

let () =
  let g = Kernels.Example_mdg.graph () in
  let procs = 4 in
  print_endline "=== MDG (paper Figure 1) ===";
  print_string (Mdg.Render.to_ascii g);
  Printf.printf "structure: %s\n\n" (Mdg.Render.summary g);

  (* The example has no data transfers, so any parameter set with a
     transfer table works; processing costs come from the Synthetic
     kernels themselves. *)
  let params = Costmodel.Params.cm5 () in
  let plan = Core.Pipeline.plan_exn params g ~procs in

  Printf.printf "convex-programming optimum Phi       : %.3f s\n"
    (Core.Pipeline.phi plan);
  Printf.printf "PSA predicted finish time T_psa      : %.3f s\n"
    (Core.Pipeline.predicted_time plan);
  Printf.printf "naive all-on-%d-processors schedule   : %.3f s\n" procs
    (Kernels.Example_mdg.naive_finish_time ~procs);
  Printf.printf "paper's mixed schedule               : %.3f s\n\n"
    (Kernels.Example_mdg.mixed_finish_time ~procs);

  print_endline "=== allocation ===";
  print_string
    (Core.Gantt.allocation_table plan.graph ~real:plan.allocation.alloc
       ~rounded:plan.psa.rounded_alloc);

  print_endline "\n=== schedule (Gantt) ===";
  print_string (Core.Gantt.of_schedule plan.graph (Core.Pipeline.schedule plan));

  (* Execute the generated MPMD program on the simulated machine. *)
  let gt = Machine.Ground_truth.cm5_like () in
  let sim = Core.Pipeline.simulate gt plan in
  Printf.printf "\nsimulated MPMD execution time        : %.3f s\n"
    sim.finish_time;
  Printf.printf "simulated machine utilisation        : %.1f%%\n"
    (100.0 *. Machine.Sim.utilisation sim)

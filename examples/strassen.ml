(* The paper's second test program: one-level Strassen multiply of
   128x128 matrices (27 loop nests).  Exercises the allocator on a
   wide, irregular MDG, validates the schedule, and compares the
   theoretical bound of Theorem 3 with the deviation achieved in
   practice (cf. paper Table 3). *)

let () =
  let n = 128 in
  let g, ids = Kernels.Strassen_mdg.graph ~n () in
  let gt = Machine.Ground_truth.cm5_like () in

  print_endline "=== MDG structure (paper Figure 6, right) ===";
  Printf.printf "%s\n" (Mdg.Render.summary g);
  Printf.printf "pre-adds: %d, multiplies: %d, post-adds: %d\n\n"
    (Array.length ids.pre_adds) (Array.length ids.muls)
    (Array.length ids.post_adds);

  let params, _, _ =
    Machine.Measure.calibrate gt
      ~procs:[ 1; 2; 4; 8; 16; 32; 64 ]
      (Kernels.Strassen_mdg.kernels ~n)
  in

  print_endline "=== Phi vs T_psa across machine sizes (cf. paper Table 3) ===";
  Printf.printf "%6s %10s %10s %10s %14s\n" "procs" "Phi (s)" "T_psa (s)"
    "change" "Theorem 3 cap";
  List.iter
    (fun procs ->
      let plan = Core.Pipeline.plan_exn params g ~procs in
      let phi = Core.Pipeline.phi plan in
      let t_psa = Core.Pipeline.predicted_time plan in
      let pb = plan.psa.pb in
      Printf.printf "%6d %10.4f %10.4f %+9.1f%% %13.1fx\n" procs phi t_psa
        (100.0 *. (t_psa -. phi) /. phi)
        (Core.Bounds.theorem3_factor ~procs ~pb);
      match Core.Schedule.validate params plan.graph plan.psa.schedule with
      | Ok () -> ()
      | Error msgs ->
          List.iter (Printf.printf "  schedule invalid: %s\n") msgs)
    [ 16; 32; 64 ];

  print_endline "\n=== simulated execution, 64 processors ===";
  let plan = Core.Pipeline.plan_exn params g ~procs:64 in
  let sim = Core.Pipeline.simulate gt plan in
  let spmd = Core.Pipeline.simulate_spmd gt g ~procs:64 in
  let serial = Core.Pipeline.serial_time gt g in
  Printf.printf "serial time            : %.4f s\n" serial;
  Printf.printf "MPMD (this paper)      : %.4f s  (speedup %.1f)\n"
    sim.finish_time (serial /. sim.finish_time);
  Printf.printf "SPMD (data-parallel)   : %.4f s  (speedup %.1f)\n"
    spmd.finish_time (serial /. spmd.finish_time);
  Printf.printf "model prediction T_psa : %.4f s (%.1f%% off actual)\n"
    (Core.Pipeline.predicted_time plan)
    (100.0
    *. (Core.Pipeline.predicted_time plan -. sim.finish_time)
    /. sim.finish_time);

  print_endline "\n=== numerical check of one-level Strassen ===";
  Printf.printf "Strassen(32x32) matches naive product: %b\n"
    (Kernels.Strassen_mdg.verify_numerics ~n:32 ~seed:7)

(* Interconnect topology study.

   The paper's transfer model assumes uniform network costs between
   all processor pairs ("valid for most of the current machines").
   This example checks that assumption on the simulated machine: the
   same compiled MPMD program is executed on the uniform network, a
   CM-5-style fat tree (with root-bisection contention), and a 2-D
   mesh, and the collective-communication primitives are measured on
   each machine size. *)

let () =
  let gt = Machine.Ground_truth.cm5_like () in
  let n = 64 in
  let g, _ = Kernels.Complex_mm.graph ~n () in
  let params, _, _ =
    Machine.Measure.calibrate gt
      ~procs:[ 1; 2; 4; 8; 16; 32; 64 ]
      (Kernels.Complex_mm.kernels ~n)
  in

  print_endline "=== complex matrix multiply on different interconnects ===";
  List.iter
    (fun procs ->
      let plan = Core.Pipeline.plan_exn params g ~procs in
      let prog = Core.Codegen.mpmd gt plan.graph (Core.Pipeline.schedule plan) in
      let base = (Machine.Sim.run gt prog).finish_time in
      Printf.printf "\n%d processors (uniform: %.5f s)\n" procs base;
      List.iter
        (fun topo ->
          let t = (Machine.Sim.run ~topology:topo gt prog).finish_time in
          Printf.printf "  %-56s %+6.2f%%\n"
            (Machine.Topology.describe topo)
            (100.0 *. (t -. base) /. base))
        [
          Machine.Topology.fat_tree ~procs ();
          Machine.Topology.mesh2d ~procs ();
        ])
    [ 16; 64 ];

  print_endline "\n=== collective primitives (32 KiB payloads) ===";
  Printf.printf "%8s %16s %16s\n" "procs" "broadcast (ms)" "allgather (ms)";
  List.iter
    (fun m ->
      let procs = Array.init m Fun.id in
      let run fragment =
        let code = Array.make m [] in
        List.iter (fun (p, ops) -> code.(p) <- code.(p) @ ops) fragment;
        (Machine.Sim.run gt (Machine.Program.make ~procs:m code)).finish_time
      in
      let bcast =
        run
          (Machine.Collectives.broadcast ~edge_base:0 ~procs ~root_index:0
             ~bytes:32768.0)
      in
      let gather =
        run
          (Machine.Collectives.allgather ~edge_base:0 ~procs
             ~bytes_per_proc:(32768.0 /. float_of_int m))
      in
      Printf.printf "%8d %16.3f %16.3f\n" m (bcast *. 1e3) (gather *. 1e3))
    [ 2; 4; 8; 16; 32; 64 ]

(** Chrome trace-event JSON rendering of recorded telemetry.

    Produces the array-of-objects format understood by
    [chrome://tracing] and Perfetto.  Timestamps are converted from
    seconds to microseconds; [Complete] events become ["ph":"X"],
    [Instant] events ["ph":"i"], [Counter] events ["ph":"C"], and the
    metadata events ["ph":"M"] process/thread names.  Distinct [pid]s
    render as separate processes, which is how the compiler's
    wall-clock timeline and the machine's simulated timeline coexist
    in one file. *)

val event_to_json : Events.t -> string
(** One event as a JSON object (no trailing separator). *)

val to_json : Events.t list -> string
(** The whole trace as a JSON array. *)

val save : string -> Events.t list -> unit
(** Write {!to_json} to a file path. *)

(** Pluggable event sinks.

    A sink is either [Null] — the disabled path, guaranteed to be a
    no-op so instrumented code costs nothing when telemetry is off —
    or a pair of [emit]/[flush] callbacks.  Instrumentation sites
    should guard argument construction with {!enabled} so the [Null]
    path allocates nothing. *)

type t =
  | Null
  | Sink of { emit : Events.t -> unit; flush : unit -> unit }

val null : t
(** The disabled sink: [emit]/[flush] do nothing. *)

val make : emit:(Events.t -> unit) -> ?flush:(unit -> unit) -> unit -> t
(** A sink from callbacks ([flush] defaults to a no-op). *)

val enabled : t -> bool
(** [false] exactly for {!null}. *)

val emit : t -> Events.t -> unit

val flush : t -> unit

val locking : t -> t
(** A sink serialising [emit] and [flush] through a private mutex.
    Wrap any non-thread-safe sink (e.g. {!Recorder.sink}) in this
    before sharing it across domains — the plan server does exactly
    that.  [locking null] is [null]. *)

val tee : t -> t -> t
(** A sink forwarding every event to both arguments.  [tee null s]
    and [tee s null] are [s] itself. *)

(** Pipeline-wide telemetry.

    One sink observes the whole compilation-and-execution pipeline:
    top-level phase spans, the convex solver's per-stage convergence
    counters, the PSA's rounding/clamping and placement decisions, and
    the machine simulator's event timeline.  Exporters turn a recorded
    stream into a single Chrome trace (every timeline in one file) or
    a JSON-lines log.

    The disabled path is free: {!null} performs no work, {!span}
    on {!null} just runs its thunk, and the [emit_*] helpers return
    before constructing an event.  Hot loops should additionally guard
    argument-list construction with {!enabled}:

    {[
      if Obs.enabled obs then
        Obs.instant obs ~cat:"psa" "psa.place" ~args:[ ... ]
    ]}

    Compiler-side events are stamped with wall-clock seconds since
    {!Obs} was loaded (pid 0 by convention); simulator events carry
    simulated seconds under their own pid, keeping the two timelines
    separate in trace viewers. *)

module Events = Events
module Sink = Sink
module Recorder = Recorder
module Chrome_format = Chrome_format
module Jsonl_format = Jsonl_format
module Summary = Summary

type t = Sink.t

val null : t
(** The disabled sink (zero-cost no-op). *)

val enabled : t -> bool

val now : unit -> float
(** Wall-clock seconds since the telemetry epoch (process start). *)

val emit : t -> Events.t -> unit

val flush : t -> unit

val span :
  t ->
  ?pid:int ->
  ?tid:int ->
  ?cat:string ->
  ?args:(string * Events.value) list ->
  string ->
  (unit -> 'a) ->
  'a
(** [span t name f] runs [f ()] and emits a [Complete] event covering
    its wall-clock extent (emitted even if [f] raises).  On {!null}
    it is exactly [f ()]. *)

val instant :
  t ->
  ?pid:int ->
  ?tid:int ->
  ?cat:string ->
  ?ts:float ->
  ?args:(string * Events.value) list ->
  string ->
  unit
(** A point event.  [ts] defaults to {!now}[ ()]. *)

val counter :
  t ->
  ?pid:int ->
  ?tid:int ->
  ?ts:float ->
  string ->
  (string * float) list ->
  unit
(** A sampled set of named values.  [ts] defaults to {!now}[ ()]. *)

val complete :
  t ->
  ?pid:int ->
  ?tid:int ->
  ?cat:string ->
  ?args:(string * Events.value) list ->
  string ->
  ts:float ->
  dur:float ->
  unit
(** A span with caller-supplied extent — used to forward events that
    live on another clock (e.g. simulated time). *)

val process_name : t -> pid:int -> string -> unit

val thread_name : t -> pid:int -> tid:int -> string -> unit

(** In-memory event recorder.

    The backing store for post-hoc exporters (Chrome trace, metric
    summaries) and for tests: create a recorder, pass {!sink} to the
    instrumented code, then read {!events} back in emission order. *)

type t

val create : unit -> t

val sink : t -> Sink.t
(** A sink appending every event to [t]. *)

val events : t -> Events.t list
(** Recorded events, oldest first. *)

val length : t -> int

val clear : t -> unit

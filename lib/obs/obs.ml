module Events = Events
module Sink = Sink
module Recorder = Recorder
module Chrome_format = Chrome_format
module Jsonl_format = Jsonl_format
module Summary = Summary

type t = Sink.t

let null = Sink.null

let enabled = Sink.enabled

let epoch = Unix.gettimeofday ()

let now () = Unix.gettimeofday () -. epoch

let emit = Sink.emit

let flush = Sink.flush

let span t ?(pid = 0) ?(tid = 0) ?(cat = "") ?(args = []) name f =
  match t with
  | Sink.Null -> f ()
  | _ ->
      let t0 = now () in
      Fun.protect
        ~finally:(fun () ->
          Sink.emit t
            (Events.Complete
               { name; cat; pid; tid; ts = t0; dur = now () -. t0; args }))
        f

let instant t ?(pid = 0) ?(tid = 0) ?(cat = "") ?ts ?(args = []) name =
  match t with
  | Sink.Null -> ()
  | _ ->
      let ts = match ts with Some ts -> ts | None -> now () in
      Sink.emit t (Events.Instant { name; cat; pid; tid; ts; args })

let counter t ?(pid = 0) ?(tid = 0) ?ts name series =
  match t with
  | Sink.Null -> ()
  | _ ->
      let ts = match ts with Some ts -> ts | None -> now () in
      Sink.emit t (Events.Counter { name; pid; tid; ts; series })

let complete t ?(pid = 0) ?(tid = 0) ?(cat = "") ?(args = []) name ~ts ~dur =
  match t with
  | Sink.Null -> ()
  | _ -> Sink.emit t (Events.Complete { name; cat; pid; tid; ts; dur; args })

let process_name t ~pid name =
  match t with
  | Sink.Null -> ()
  | _ -> Sink.emit t (Events.Process_name { pid; name })

let thread_name t ~pid ~tid name =
  match t with
  | Sink.Null -> ()
  | _ -> Sink.emit t (Events.Thread_name { pid; tid; name })

let us t = t *. 1e6

let event_to_json (ev : Events.t) =
  match ev with
  | Complete { name; cat; pid; tid; ts; dur; args } ->
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d%s}"
        (Events.json_escape name)
        (Events.json_escape (if cat = "" then "default" else cat))
        (us ts) (us dur) pid tid
        (match args with
        | [] -> ""
        | _ -> ",\"args\":" ^ Events.args_to_json args)
  | Instant { name; cat; pid; tid; ts; args } ->
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d%s}"
        (Events.json_escape name)
        (Events.json_escape (if cat = "" then "default" else cat))
        (us ts) pid tid
        (match args with
        | [] -> ""
        | _ -> ",\"args\":" ^ Events.args_to_json args)
  | Counter { name; pid; tid; ts; series } ->
      let args =
        Events.args_to_json
          (List.map (fun (k, v) -> (k, Events.Float v)) series)
      in
      Printf.sprintf
        "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":%s}"
        (Events.json_escape name) (us ts) pid tid args
  | Process_name { pid; name } ->
      Printf.sprintf
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"%s\"}}"
        pid (Events.json_escape name)
  | Thread_name { pid; tid; name } ->
      Printf.sprintf
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
        pid tid (Events.json_escape name)

let to_json events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (event_to_json ev))
    events;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let save path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json events))

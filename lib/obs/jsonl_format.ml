let to_line (ev : Events.t) =
  match ev with
  | Complete { name; cat; pid; tid; ts; dur; args } ->
      Printf.sprintf
        "{\"type\":\"complete\",\"name\":\"%s\",\"cat\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":%s}"
        (Events.json_escape name) (Events.json_escape cat) pid tid
        (Events.json_float ts) (Events.json_float dur)
        (Events.args_to_json args)
  | Instant { name; cat; pid; tid; ts; args } ->
      Printf.sprintf
        "{\"type\":\"instant\",\"name\":\"%s\",\"cat\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"args\":%s}"
        (Events.json_escape name) (Events.json_escape cat) pid tid
        (Events.json_float ts) (Events.args_to_json args)
  | Counter { name; pid; tid; ts; series } ->
      Printf.sprintf
        "{\"type\":\"counter\",\"name\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"values\":%s}"
        (Events.json_escape name) pid tid (Events.json_float ts)
        (Events.args_to_json
           (List.map (fun (k, v) -> (k, Events.Float v)) series))
  | Process_name { pid; name } ->
      Printf.sprintf "{\"type\":\"process_name\",\"pid\":%d,\"name\":\"%s\"}"
        pid (Events.json_escape name)
  | Thread_name { pid; tid; name } ->
      Printf.sprintf
        "{\"type\":\"thread_name\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\"}" pid
        tid (Events.json_escape name)

let sink oc =
  Sink.make
    ~emit:(fun ev ->
      output_string oc (to_line ev);
      output_char oc '\n')
    ~flush:(fun () -> flush oc)
    ()

type t = { mutable rev : Events.t list; mutable count : int }

let create () = { rev = []; count = 0 }

let sink t =
  Sink.make
    ~emit:(fun ev ->
      t.rev <- ev :: t.rev;
      t.count <- t.count + 1)
    ()

let events t = List.rev t.rev

let length t = t.count

let clear t =
  t.rev <- [];
  t.count <- 0

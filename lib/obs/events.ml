type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type t =
  | Complete of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : float;
      dur : float;
      args : (string * value) list;
    }
  | Instant of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : float;
      args : (string * value) list;
    }
  | Counter of {
      name : string;
      pid : int;
      tid : int;
      ts : float;
      series : (string * float) list;
    }
  | Process_name of { pid : int; name : string }
  | Thread_name of { pid : int; tid : int; name : string }

let name = function
  | Complete { name; _ } | Instant { name; _ } | Counter { name; _ } -> name
  | Process_name _ -> "process_name"
  | Thread_name _ -> "thread_name"

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if not (Float.is_finite v) then "0"
  else
    (* %.12g round-trips every value we emit while staying compact for
       the common small integers and powers of ten. *)
    let s = Printf.sprintf "%.12g" v in
    (* "nan"/"inf" are caught above; %g never emits a leading '+'. *)
    s

let value_to_json = function
  | Int i -> string_of_int i
  | Float f -> json_float f
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Bool b -> if b then "true" else "false"

let args_to_json args =
  match args with
  | [] -> "{}"
  | _ ->
      let fields =
        List.map
          (fun (k, v) ->
            Printf.sprintf "\"%s\":%s" (json_escape k) (value_to_json v))
          args
      in
      "{" ^ String.concat "," fields ^ "}"

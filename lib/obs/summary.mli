(** Aggregate view of a recorded event stream, for the [--metrics]
    CLI flag and quick test assertions: per event name, how many
    events were emitted, total span time, and the last sampled value
    of each counter series. *)

type row = {
  name : string;
  count : int;                      (** events with this name *)
  total_dur : float;                (** summed [Complete] durations, s *)
  last : (string * float) list;     (** last [Counter] sample, if any *)
}

val of_events : Events.t list -> row list
(** Rows sorted by name.  Metadata events are ignored. *)

val to_string : row list -> string
(** A human-readable table. *)

type row = {
  name : string;
  count : int;
  total_dur : float;
  last : (string * float) list;
}

let of_events events =
  let tbl : (string, row) Hashtbl.t = Hashtbl.create 16 in
  let touch name f =
    let row =
      Option.value
        (Hashtbl.find_opt tbl name)
        ~default:{ name; count = 0; total_dur = 0.0; last = [] }
    in
    Hashtbl.replace tbl name (f { row with count = row.count + 1 })
  in
  List.iter
    (fun (ev : Events.t) ->
      match ev with
      | Events.Complete { name; dur; _ } ->
          touch name (fun r -> { r with total_dur = r.total_dur +. dur })
      | Events.Instant { name; _ } -> touch name Fun.id
      | Events.Counter { name; series; _ } ->
          touch name (fun r -> { r with last = series })
      | Events.Process_name _ | Events.Thread_name _ -> ())
    events;
  Hashtbl.fold (fun _ row acc -> row :: acc) tbl []
  |> List.sort (fun a b -> String.compare a.name b.name)

let to_string rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-28s %8s %14s  %s\n" "event" "count" "total (s)"
       "last sample");
  List.iter
    (fun r ->
      let last =
        String.concat ", "
          (List.map (fun (k, v) -> Printf.sprintf "%s=%g" k v) r.last)
      in
      Buffer.add_string buf
        (Printf.sprintf "%-28s %8d %14.6f  %s\n" r.name r.count r.total_dur
           last))
    rows;
  Buffer.contents buf

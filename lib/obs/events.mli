(** Telemetry events.

    A single event vocabulary covers the whole pipeline: wall-clock
    spans of compiler phases, counters sampled by the convex solver,
    instants recording PSA decisions, and simulated-time segments
    forwarded from the machine simulator.  Timestamps and durations
    are in seconds; the origin is the emitter's choice (wall time
    since process start for compiler events, simulated time for
    machine events) and the [pid] field keeps the timelines apart. *)

type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type t =
  | Complete of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : float;   (** start, seconds *)
      dur : float;  (** duration, seconds *)
      args : (string * value) list;
    }
  | Instant of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : float;
      args : (string * value) list;
    }
  | Counter of {
      name : string;
      pid : int;
      tid : int;
      ts : float;
      series : (string * float) list;
    }
  | Process_name of { pid : int; name : string }
  | Thread_name of { pid : int; tid : int; name : string }

val name : t -> string
(** The event name ([process_name]/[thread_name] for metadata). *)

val json_escape : string -> string
(** Escape a string for inclusion between double quotes in JSON. *)

val json_float : float -> string
(** Compact JSON number for a float (non-finite values become [0]). *)

val value_to_json : value -> string
(** One argument value as a JSON literal. *)

val args_to_json : (string * value) list -> string
(** An argument list as a JSON object, [{}] when empty. *)

type t =
  | Null
  | Sink of { emit : Events.t -> unit; flush : unit -> unit }

let null = Null

let make ~emit ?(flush = fun () -> ()) () = Sink { emit; flush }

let enabled = function Null -> false | Sink _ -> true

let emit t ev = match t with Null -> () | Sink s -> s.emit ev

let flush = function Null -> () | Sink s -> s.flush ()

let locking = function
  | Null -> Null
  | Sink s ->
      let m = Mutex.create () in
      Sink
        {
          emit = (fun ev -> Mutex.protect m (fun () -> s.emit ev));
          flush = (fun () -> Mutex.protect m (fun () -> s.flush ()));
        }

let tee a b =
  match (a, b) with
  | Null, s | s, Null -> s
  | Sink x, Sink y ->
      Sink
        {
          emit =
            (fun ev ->
              x.emit ev;
              y.emit ev);
          flush =
            (fun () ->
              x.flush ();
              y.flush ());
        }

(** JSON-lines rendering: one self-describing JSON object per event,
    one event per line.  Unlike the Chrome format this needs no
    buffering, so {!sink} streams events to a channel as they are
    emitted — suitable for tailing a live run. *)

val to_line : Events.t -> string
(** One event as a single-line JSON object (no newline). *)

val sink : out_channel -> Sink.t
(** A sink writing each event as one line to the channel.  [flush]
    flushes the channel; the channel is not closed. *)

(** Machine parameters for the cost models of paper Section 4.

    Transfer parameters correspond to Table 2; per-kernel Amdahl
    processing parameters correspond to Table 1.  In the paper these
    are obtained on the CM-5 by the training-sets approach; here they
    are either the paper's published constants ({!cm5}) or the result
    of fitting against the machine simulator ({!Fit}). *)

type transfer = {
  t_ss : float;  (** message send startup cost, seconds *)
  t_ps : float;  (** per-byte send cost, seconds/byte *)
  t_sr : float;  (** message receive startup cost, seconds *)
  t_pr : float;  (** per-byte receive cost, seconds/byte *)
  t_n : float;   (** network delay per byte, seconds/byte *)
}

type processing = {
  alpha : float;  (** serial fraction, in [0,1] *)
  tau : float;    (** single-processor execution time, seconds *)
}

type t

val make : transfer:transfer -> t
(** Parameter set with an empty processing table. *)

val transfer : t -> transfer

val set_processing : t -> Mdg.Graph.kernel -> processing -> unit
(** Record fitted Amdahl parameters for a kernel.  [Synthetic] and
    [Dummy] kernels are handled implicitly and may not be registered.
    Raises [Invalid_argument] on out-of-range parameters. *)

val processing : t -> Mdg.Graph.kernel -> processing
(** Amdahl parameters for a kernel: [Synthetic] returns its own
    parameters, [Dummy] returns zero cost, matrix kernels are looked
    up.  Raises [Not_found] if a matrix kernel was never registered. *)

val known_kernels : t -> Mdg.Graph.kernel list
(** Registered matrix kernels, deterministically ordered. *)

val fingerprint : t -> int64
(** Deterministic 64-bit digest of every cost constant: the transfer
    parameters and the registered per-kernel Amdahl pairs (in
    {!known_kernels} order).  Equal fingerprints yield identical cost
    expressions on the same graph, so the fingerprint is the
    cost-constant component of plan-cache keys.  Stable across
    processes. *)

val cm5_transfer : transfer
(** The paper's Table 2 constants for the CM-5. *)

val cm5 : unit -> t
(** Fresh parameter set with Table 2 transfer constants and Table 1
    processing constants for MatAdd(64) and MatMul(64) preregistered. *)

val pp_transfer : Format.formatter -> transfer -> unit

val pp_processing : Format.formatter -> processing -> unit

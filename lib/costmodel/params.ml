type transfer = {
  t_ss : float;
  t_ps : float;
  t_sr : float;
  t_pr : float;
  t_n : float;
}

type processing = { alpha : float; tau : float }

type t = {
  transfer : transfer;
  table : (Mdg.Graph.kernel, processing) Hashtbl.t;
}

let check_transfer tr =
  let nonneg name v =
    if v < 0.0 || not (Float.is_finite v) then
      invalid_arg (Printf.sprintf "Params: negative transfer parameter %s" name)
  in
  nonneg "t_ss" tr.t_ss;
  nonneg "t_ps" tr.t_ps;
  nonneg "t_sr" tr.t_sr;
  nonneg "t_pr" tr.t_pr;
  nonneg "t_n" tr.t_n

let make ~transfer =
  check_transfer transfer;
  { transfer; table = Hashtbl.create 16 }

let transfer t = t.transfer

let check_processing { alpha; tau } =
  if alpha < 0.0 || alpha > 1.0 || not (Float.is_finite alpha) then
    invalid_arg "Params.set_processing: alpha outside [0,1]";
  if tau < 0.0 || not (Float.is_finite tau) then
    invalid_arg "Params.set_processing: negative tau"

let set_processing t kernel proc =
  (match kernel with
  | Mdg.Graph.Synthetic _ | Mdg.Graph.Dummy ->
      invalid_arg "Params.set_processing: synthetic/dummy kernels are implicit"
  | Mdg.Graph.Matrix_init _ | Mdg.Graph.Matrix_add _ | Mdg.Graph.Matrix_multiply _ -> ());
  check_processing proc;
  Hashtbl.replace t.table kernel proc

let processing t kernel =
  match kernel with
  | Mdg.Graph.Synthetic { alpha; tau } -> { alpha; tau }
  | Mdg.Graph.Dummy -> { alpha = 0.0; tau = 0.0 }
  | Mdg.Graph.Matrix_init _ | Mdg.Graph.Matrix_add _ | Mdg.Graph.Matrix_multiply _ -> (
      match Hashtbl.find_opt t.table kernel with
      | Some p -> p
      | None -> raise Not_found)

let known_kernels t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort compare

(* The fingerprint folds every constant that enters a cost expression:
   the five transfer parameters and the registered per-kernel Amdahl
   pairs (in the deterministic [known_kernels] order).  Two parameter
   sets with equal fingerprints therefore produce identical objectives
   on the same graph, which is what makes the fingerprint a sound
   plan-cache key component. *)
let fingerprint t =
  let module F = Numeric.Fnv in
  let tr = t.transfer in
  let h = F.float F.seed tr.t_ss in
  let h = F.float h tr.t_ps in
  let h = F.float h tr.t_sr in
  let h = F.float h tr.t_pr in
  let h = F.float h tr.t_n in
  List.fold_left
    (fun h k ->
      let { alpha; tau } = Hashtbl.find t.table k in
      F.float (F.float (Mdg.Graph.hash_kernel h k) alpha) tau)
    h (known_kernels t)

(* Table 2 of the paper: microsecond/nanosecond constants converted to
   seconds. *)
let cm5_transfer =
  {
    t_ss = 777.56e-6;
    t_ps = 486.98e-9;
    t_sr = 465.58e-6;
    t_pr = 426.25e-9;
    t_n = 0.0;
  }

let cm5 () =
  let t = make ~transfer:cm5_transfer in
  (* Table 1 of the paper. *)
  set_processing t (Mdg.Graph.Matrix_add 64) { alpha = 0.067; tau = 3.73e-3 };
  set_processing t (Mdg.Graph.Matrix_multiply 64) { alpha = 0.121; tau = 298.47e-3 };
  t

let pp_transfer fmt tr =
  Format.fprintf fmt
    "{t_ss=%.2f us; t_ps=%.2f ns; t_sr=%.2f us; t_pr=%.2f ns; t_n=%.2f ns}"
    (tr.t_ss *. 1e6) (tr.t_ps *. 1e9) (tr.t_sr *. 1e6) (tr.t_pr *. 1e9)
    (tr.t_n *. 1e9)

let pp_processing fmt p =
  Format.fprintf fmt "{alpha=%.1f%%; tau=%.2f ms}" (p.alpha *. 100.0)
    (p.tau *. 1e3)

(** 64-bit FNV-1a hashing, used for structural fingerprints.

    A tiny incremental hasher: fold values into a running [t] and read
    the digest out as an [int64] (or hex string).  Deterministic across
    runs and platforms — fingerprints computed by one process are
    meaningful to another, unlike [Hashtbl.hash] of boxed floats.

    Collisions are possible in principle (64-bit digests) but
    vanishingly unlikely at the cache sizes involved; the plan-cache
    property suite pins the absence of collisions across 10k random
    MDGs. *)

type t = int64

val seed : t
(** The FNV-1a offset basis. *)

val byte : t -> int -> t
(** Fold one byte (low 8 bits of the argument). *)

val int : t -> int -> t
(** Fold a native int (as 8 little-endian bytes). *)

val int64 : t -> int64 -> t

val float : t -> float -> t
(** Folds the IEEE-754 bit pattern, so [-0.0] and [0.0] differ and
    NaNs hash by representation. *)

val string : t -> string -> t
(** Folds the length and then the bytes, so concatenation boundaries
    are unambiguous. *)

val to_hex : t -> string
(** 16-character lowercase hex digest. *)

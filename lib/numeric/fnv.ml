type t = int64

let seed = 0xcbf29ce484222325L

let prime = 0x100000001b3L

let byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let int64 h v =
  let h = ref h in
  for shift = 0 to 7 do
    h := byte !h (Int64.to_int (Int64.shift_right_logical v (8 * shift)))
  done;
  !h

let int h v = int64 h (Int64.of_int v)

let float h v = int64 h (Int64.bits_of_float v)

let string h s =
  let h = ref (int h (String.length s)) in
  String.iter (fun c -> h := byte !h (Char.code c)) s;
  !h

let to_hex h = Printf.sprintf "%016Lx" h

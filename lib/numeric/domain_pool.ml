(* Long-lived fork-join pools over OCaml 5 domains.

   A pool of [size] participants is the caller's domain plus [size-1]
   worker domains parked on a condition variable.  [run] publishes one
   job (an [int -> unit] indexed by participant), runs index 0 on the
   calling domain, and joins.  Workers survive across jobs, so the
   per-job cost is one broadcast and one join — no domain spawning on
   any hot path.

   [barrier] is the intra-job synchroniser for level-scheduled sweeps:
   a sense-reversing barrier that spins briefly (the common case when
   every participant has its own core and levels are short) and falls
   back to the condition variable when a participant is descheduled —
   essential when domains outnumber cores, as they do in CI runs that
   force PARADIGM_DOMAINS=4 onto two-core machines. *)

type t = {
  size : int;
  lock : Mutex.t;
  cond : Condition.t;  (* workers wait here for a new epoch *)
  done_cond : Condition.t;  (* [run] waits here for workers to finish *)
  mutable epoch : int;
  mutable job : int -> unit;
  mutable finished : int;  (* workers done with the current epoch *)
  mutable error : exn option;  (* first exception raised by any participant *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let size t = t.size

let record_error t exn =
  Mutex.protect t.lock (fun () ->
      if t.error = None then t.error <- Some exn)

let worker t i =
  let last = ref 0 in
  let rec loop () =
    let job =
      Mutex.protect t.lock (fun () ->
          while t.epoch = !last && not t.stop do
            Condition.wait t.cond t.lock
          done;
          if t.stop then None
          else begin
            last := t.epoch;
            Some t.job
          end)
    in
    match job with
    | None -> ()
    | Some f ->
        (try f i with exn -> record_error t exn);
        Mutex.protect t.lock (fun () ->
            t.finished <- t.finished + 1;
            if t.finished = t.size - 1 then Condition.broadcast t.done_cond);
        loop ()
  in
  loop ()

let create ~size =
  if size < 1 then invalid_arg "Domain_pool.create: size must be >= 1";
  let t =
    {
      size;
      lock = Mutex.create ();
      cond = Condition.create ();
      done_cond = Condition.create ();
      epoch = 0;
      job = ignore;
      finished = 0;
      error = None;
      stop = false;
      domains = [];
    }
  in
  t.domains <- List.init (size - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
  t

let shutdown t =
  let joinable =
    Mutex.protect t.lock (fun () ->
        if t.stop then []
        else begin
          t.stop <- true;
          Condition.broadcast t.cond;
          t.domains
        end)
  in
  List.iter Domain.join joinable;
  if joinable <> [] then t.domains <- []

let run t f =
  if t.size = 1 then f 0
  else begin
    Mutex.protect t.lock (fun () ->
        if t.stop then invalid_arg "Domain_pool.run: pool is shut down";
        t.job <- f;
        t.finished <- 0;
        t.error <- None;
        t.epoch <- t.epoch + 1;
        Condition.broadcast t.cond);
    (try f 0 with exn -> record_error t exn);
    Mutex.protect t.lock (fun () ->
        while t.finished < t.size - 1 do
          Condition.wait t.done_cond t.lock
        done);
    match t.error with
    | Some exn ->
        t.error <- None;
        raise exn
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Shared pools                                                        *)
(* ------------------------------------------------------------------ *)

(* One pool per requested size, created on first use and kept for the
   process lifetime (worker domains park between jobs).  [at_exit]
   joins them so binaries terminate cleanly. *)
let shared_lock = Mutex.create ()

let shared_pools : (int, t) Hashtbl.t = Hashtbl.create 4

let shutdown_shared () =
  let pools =
    Mutex.protect shared_lock (fun () ->
        let ps = Hashtbl.fold (fun _ p acc -> p :: acc) shared_pools [] in
        Hashtbl.reset shared_pools;
        ps)
  in
  List.iter shutdown pools

let exit_hook_installed = ref false

let shared ~size =
  if size < 1 then invalid_arg "Domain_pool.shared: size must be >= 1";
  Mutex.protect shared_lock (fun () ->
      match Hashtbl.find_opt shared_pools size with
      | Some p -> p
      | None ->
          if not !exit_hook_installed then begin
            exit_hook_installed := true;
            at_exit shutdown_shared
          end;
          let p = create ~size in
          Hashtbl.add shared_pools size p;
          p)

(* ------------------------------------------------------------------ *)
(* Barriers                                                            *)
(* ------------------------------------------------------------------ *)

type barrier = {
  parties : int;
  count : int Atomic.t;
  gen : int Atomic.t;
  block : Mutex.t;
  released : Condition.t;
}

let barrier parties =
  if parties < 1 then invalid_arg "Domain_pool.barrier: parties must be >= 1";
  {
    parties;
    count = Atomic.make 0;
    gen = Atomic.make 0;
    block = Mutex.create ();
    released = Condition.create ();
  }

(* Spin budget before parking on the condition variable.  Short: a
   descheduled sibling means the wait is a scheduling quantum, which
   spinning cannot hide. *)
let spin_budget = 2000

let await b =
  if b.parties > 1 then begin
    let g = Atomic.get b.gen in
    if Atomic.fetch_and_add b.count 1 = b.parties - 1 then begin
      Atomic.set b.count 0;
      Mutex.protect b.block (fun () ->
          Atomic.incr b.gen;
          Condition.broadcast b.released)
    end
    else begin
      let spins = ref 0 in
      while Atomic.get b.gen = g && !spins < spin_budget do
        incr spins;
        Domain.cpu_relax ()
      done;
      if Atomic.get b.gen = g then
        Mutex.protect b.block (fun () ->
            while Atomic.get b.gen = g do
              Condition.wait b.released b.block
            done)
    end
  end

(* Long-lived fork-join pools over OCaml 5 domains.

   A pool of [size] participants is the caller's domain plus [size-1]
   worker domains parked on a condition variable.  [run] publishes one
   job (an [int -> unit] indexed by participant), runs index 0 on the
   calling domain, and joins.  Workers survive across jobs, so the
   per-job cost is one broadcast and one join — no domain spawning on
   any hot path.

   [barrier] is the intra-job synchroniser for level-scheduled sweeps:
   a sense-reversing barrier that spins briefly (the common case when
   every participant has its own core and levels are short) and falls
   back to the condition variable when a participant is descheduled —
   essential when domains outnumber cores, as they do in CI runs that
   force PARADIGM_DOMAINS=4 onto two-core machines. *)

type t = {
  size : int;
  lock : Mutex.t;
  cond : Condition.t;  (* workers wait here for a new epoch *)
  done_cond : Condition.t;  (* [run] waits here for workers to finish *)
  running : bool Atomic.t;  (* a [run] is in flight — re-entry guard *)
  mutable epoch : int;
  mutable job : int -> unit;
  mutable finished : int;  (* workers done with the current epoch *)
  mutable error : exn option;  (* first exception raised by any participant *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

exception Barrier_poisoned

let size t = t.size

(* Keep the first {e real} exception: a participant that raises
   [Barrier_poisoned] only observed some sibling's failure, and which
   participant reaches [record_error] first is a race. *)
let record_error t exn =
  Mutex.protect t.lock (fun () ->
      match t.error with
      | None -> t.error <- Some exn
      | Some Barrier_poisoned when exn <> Barrier_poisoned ->
          t.error <- Some exn
      | Some _ -> ())

let worker t i =
  let last = ref 0 in
  let rec loop () =
    let job =
      Mutex.protect t.lock (fun () ->
          while t.epoch = !last && not t.stop do
            Condition.wait t.cond t.lock
          done;
          if t.stop then None
          else begin
            last := t.epoch;
            Some t.job
          end)
    in
    match job with
    | None -> ()
    | Some f ->
        (try f i with exn -> record_error t exn);
        Mutex.protect t.lock (fun () ->
            t.finished <- t.finished + 1;
            if t.finished = t.size - 1 then Condition.broadcast t.done_cond);
        loop ()
  in
  loop ()

let create ~size =
  if size < 1 then invalid_arg "Domain_pool.create: size must be >= 1";
  let t =
    {
      size;
      lock = Mutex.create ();
      cond = Condition.create ();
      done_cond = Condition.create ();
      running = Atomic.make false;
      epoch = 0;
      job = ignore;
      finished = 0;
      error = None;
      stop = false;
      domains = [];
    }
  in
  t.domains <- List.init (size - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
  t

let shutdown t =
  let joinable =
    Mutex.protect t.lock (fun () ->
        if t.stop then []
        else begin
          t.stop <- true;
          Condition.broadcast t.cond;
          t.domains
        end)
  in
  List.iter Domain.join joinable;
  if joinable <> [] then t.domains <- []

let run t f =
  if t.size = 1 then f 0
  else begin
    (* A pool runs one job at a time: its epoch/finished bookkeeping is
       job-global, so a concurrent [run] would strand the first job's
       workers on a stale epoch (deadlock) or interleave epochs into
       silently wrong sweeps.  Refuse loudly instead — callers that
       need concurrency check out distinct pools via {!acquire}. *)
    if not (Atomic.compare_and_set t.running false true) then
      invalid_arg "Domain_pool.run: pool already running a job";
    Fun.protect ~finally:(fun () -> Atomic.set t.running false) @@ fun () ->
    Mutex.protect t.lock (fun () ->
        if t.stop then invalid_arg "Domain_pool.run: pool is shut down";
        t.job <- f;
        t.finished <- 0;
        t.error <- None;
        t.epoch <- t.epoch + 1;
        Condition.broadcast t.cond);
    (try f 0 with exn -> record_error t exn);
    Mutex.protect t.lock (fun () ->
        while t.finished < t.size - 1 do
          Condition.wait t.done_cond t.lock
        done);
    match t.error with
    | Some exn ->
        t.error <- None;
        raise exn
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Shared pools                                                        *)
(* ------------------------------------------------------------------ *)

(* A checked-out free list per size: [acquire] hands each caller a pool
   no other caller holds (a pool's job state is single-job — see [run]),
   and [release] returns it for reuse so worker domains park between
   solves instead of respawning.  Every pool ever created is also kept
   on a registry the [at_exit] hook joins, so binaries terminate
   cleanly even if a pool is still checked out when the process ends. *)
let shared_lock = Mutex.create ()

let free_pools : (int, t list) Hashtbl.t = Hashtbl.create 4

let all_shared : t list ref = ref []

let shutdown_shared () =
  let pools =
    Mutex.protect shared_lock (fun () ->
        Hashtbl.reset free_pools;
        let ps = !all_shared in
        all_shared := [];
        ps)
  in
  List.iter shutdown pools

let exit_hook_installed = ref false

let acquire ~size =
  if size < 1 then invalid_arg "Domain_pool.acquire: size must be >= 1";
  Mutex.protect shared_lock (fun () ->
      match Hashtbl.find_opt free_pools size with
      | Some (p :: rest) ->
          Hashtbl.replace free_pools size rest;
          p
      | Some [] | None ->
          if not !exit_hook_installed then begin
            exit_hook_installed := true;
            at_exit shutdown_shared
          end;
          let p = create ~size in
          all_shared := p :: !all_shared;
          p)

let release p =
  Mutex.protect shared_lock (fun () ->
      (* After [shutdown_shared] the registry is empty: the process is
         exiting and the pool is already joined — drop it. *)
      if List.memq p !all_shared then
        let rest =
          Option.value ~default:[] (Hashtbl.find_opt free_pools p.size)
        in
        if not (List.memq p rest) then
          Hashtbl.replace free_pools p.size (p :: rest))

(* ------------------------------------------------------------------ *)
(* Barriers                                                            *)
(* ------------------------------------------------------------------ *)

type barrier = {
  parties : int;
  count : int Atomic.t;
  gen : int Atomic.t;
  poisoned : bool Atomic.t;
  block : Mutex.t;
  released : Condition.t;
}

let barrier parties =
  if parties < 1 then invalid_arg "Domain_pool.barrier: parties must be >= 1";
  {
    parties;
    count = Atomic.make 0;
    gen = Atomic.make 0;
    poisoned = Atomic.make false;
    block = Mutex.create ();
    released = Condition.create ();
  }

(* A participant that raises mid-job stops attending barrier phases, so
   its siblings would wait for it forever.  [poison] breaks that: it
   releases everyone currently parked (by advancing the generation) and
   makes every subsequent [await] raise, so the job drains and [run]
   can re-raise the original error.  A poisoned barrier stays poisoned
   — callers discard it and build a fresh one for the next job. *)
let poison b =
  if b.parties > 1 && not (Atomic.get b.poisoned) then begin
    Atomic.set b.poisoned true;
    Mutex.protect b.block (fun () ->
        Atomic.incr b.gen;
        Condition.broadcast b.released)
  end

(* Spin budget before parking on the condition variable.  Short: a
   descheduled sibling means the wait is a scheduling quantum, which
   spinning cannot hide. *)
let spin_budget = 2000

let await b =
  if b.parties > 1 then begin
    if Atomic.get b.poisoned then raise Barrier_poisoned;
    let g = Atomic.get b.gen in
    if Atomic.fetch_and_add b.count 1 = b.parties - 1 then begin
      Atomic.set b.count 0;
      Mutex.protect b.block (fun () ->
          Atomic.incr b.gen;
          Condition.broadcast b.released)
    end
    else begin
      let spins = ref 0 in
      while Atomic.get b.gen = g && !spins < spin_budget do
        incr spins;
        Domain.cpu_relax ()
      done;
      if Atomic.get b.gen = g then
        Mutex.protect b.block (fun () ->
            while Atomic.get b.gen = g do
              Condition.wait b.released b.block
            done)
    end;
    (* A generation advance may have come from [poison], not from the
       last party arriving — do not let a released waiter resume the
       sweep on a dead job. *)
    if Atomic.get b.poisoned then raise Barrier_poisoned
  end

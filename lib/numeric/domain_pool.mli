(** Long-lived fork-join pools over OCaml 5 domains.

    A pool holds [size - 1] parked worker domains; {!run} hands every
    participant (the caller is index [0]) the same job and joins.
    Workers persist across jobs, so the per-job overhead is one
    condition-variable broadcast and one join — suitable for sweeps
    called thousands of times per solve.  {!barrier} provides the
    intra-job level synchroniser for topologically level-scheduled
    array sweeps (see {!Convex.Tape}): it spins briefly and then
    blocks, so forcing more domains than cores (as CI does) degrades
    gracefully instead of busy-waiting through scheduler quanta. *)

type t

val create : size:int -> t
(** A fresh pool with [size] participants ([size - 1] spawned worker
    domains).  [size = 1] spawns nothing and {!run} degenerates to a
    plain call.  Raises [Invalid_argument] if [size < 1]. *)

val acquire : size:int -> t
(** Check a pool of [size] participants out of the process-wide free
    list, creating one when none is free.  The caller holds the pool
    exclusively — concurrent [acquire] calls from different domains get
    {e distinct} pools, so each may {!run} jobs without coordinating
    with the others — and should hand it back with {!release} when
    done, so its parked workers are reused instead of respawned.
    Pools never released are still joined by an [at_exit] hook.
    Thread-safe. *)

val release : t -> unit
(** Return an {!acquire}d pool to the free list.  Call at most once per
    [acquire], after the last [run] on the pool has returned. *)

val size : t -> int

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f i] for every participant index
    [i = 0 .. size-1], index 0 on the calling domain, and returns when
    all participants have finished.  If any participant raises, the
    first exception is re-raised in the caller after the join (a real
    error is preferred over {!Barrier_poisoned} echoes from siblings).
    A pool runs one job at a time: a concurrent or re-entrant [run] on
    the same pool raises [Invalid_argument] instead of corrupting the
    in-flight job. *)

val shutdown : t -> unit
(** Stop and join the workers.  Idempotent.  Only needed for pools
    from {!create}; {!shared} pools are shut down at exit. *)

type barrier

exception Barrier_poisoned
(** Raised by {!await} once the barrier has been {!poison}ed. *)

val barrier : int -> barrier
(** A reusable sense-reversing barrier for [parties] participants. *)

val await : barrier -> unit
(** Block until all [parties] participants have called [await] for the
    current phase; the barrier then resets for the next phase.  Raises
    {!Barrier_poisoned} (instead of blocking, or instead of resuming
    after a wake-up) once the barrier is poisoned. *)

val poison : barrier -> unit
(** Break the barrier: release every participant currently parked in
    {!await} and make all subsequent [await]s raise
    {!Barrier_poisoned}.  A participant that raises mid-job calls this
    so its siblings drain instead of waiting forever for a party that
    will never arrive; the poisoned barrier must then be discarded.
    Idempotent. *)

(** Long-lived fork-join pools over OCaml 5 domains.

    A pool holds [size - 1] parked worker domains; {!run} hands every
    participant (the caller is index [0]) the same job and joins.
    Workers persist across jobs, so the per-job overhead is one
    condition-variable broadcast and one join — suitable for sweeps
    called thousands of times per solve.  {!barrier} provides the
    intra-job level synchroniser for topologically level-scheduled
    array sweeps (see {!Convex.Tape}): it spins briefly and then
    blocks, so forcing more domains than cores (as CI does) degrades
    gracefully instead of busy-waiting through scheduler quanta. *)

type t

val create : size:int -> t
(** A fresh pool with [size] participants ([size - 1] spawned worker
    domains).  [size = 1] spawns nothing and {!run} degenerates to a
    plain call.  Raises [Invalid_argument] if [size < 1]. *)

val shared : size:int -> t
(** The process-wide pool for [size], created on first use and reused
    for the process lifetime (an [at_exit] hook joins the workers).
    Thread-safe. *)

val size : t -> int

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f i] for every participant index
    [i = 0 .. size-1], index 0 on the calling domain, and returns when
    all participants have finished.  If any participant raises, the
    first exception is re-raised in the caller after the join.  A pool
    runs one job at a time; [run] must not be re-entered from inside a
    job on the same pool. *)

val shutdown : t -> unit
(** Stop and join the workers.  Idempotent.  Only needed for pools
    from {!create}; {!shared} pools are shut down at exit. *)

type barrier

val barrier : int -> barrier
(** A reusable sense-reversing barrier for [parties] participants. *)

val await : barrier -> unit
(** Block until all [parties] participants have called [await] for the
    current phase; the barrier then resets for the next phase. *)

(** Consensus-ADMM decomposition of the allocation program.

    Bridges {!Mdg.Partition} (which blocks own which nodes) and
    {!Convex.Admm} (the numeric consensus driver): builds, per block,
    a penalty objective over the block's own log-allocations plus
    boundary finish-time copies, and maps the cross-block structure
    onto Admm's export/import/area/link metadata.

    Per block [k] the objective is a ρ-free penalty sum (so the tape
    compiles once; see {!Convex.Admm}):
    - [hinge (y_m − H_m)] for each boundary source [m] the block owns
      ([H_m] a pinned parameter carrying the consensus target), plus
      [hinge (y_STOP − T)] in the block owning STOP;
    - [hinge (A_k − S_k)] for the block's area share;
    - [sq_affine (η_m − P_m)] for each boundary time imported from an
      upstream block ([η_m] a box-constrained copy variable);
    - a small proximal damping [w·(x − x_prev)²] per local variable.

    Cross-cut transfer terms price the {e other} endpoint's allocation
    with a pinned parameter linked to the owning block's current
    iterate (Gauss–Jacobi), so the union of block areas equals the
    monolithic [A_p] whenever the linked values agree, and the finish
    time recurrences compose across the cut through the η copies.

    The consensus point is returned as a {e starting point} for the
    monolithic solve: {!Core.Allocation.solve} hands it to the
    existing warm-start probe and µ = 0 polish, whose never-worse
    guard keeps the final Φ inside the monolithic stationarity band
    regardless of how far the ADMM iterates got. *)

type mode =
  | Off  (** never decompose *)
  | Auto  (** decompose when the graph has more than [node_threshold] nodes *)
  | On  (** always decompose (degenerate single-block partitions still skip) *)

type options = {
  mode : mode;
  target_blocks : int;  (** partition target (see {!Mdg.Partition}) *)
  node_threshold : int;  (** [Auto] activation threshold, in nodes *)
  prox_weight : float;
      (** proximal damping weight as a fraction of the initial Φ scale *)
  admm : Convex.Admm.options;  (** consensus driver options *)
}

val default_options : options
(** [Auto] above 2000 nodes, 8 target blocks, 0.05 proximal weight,
    {!Convex.Admm.default_options}. *)

type stats = {
  blocks : int;  (** partition blocks actually used *)
  cut_edges : int;
  consensus : int;  (** boundary finish-time consensus slots *)
  phi_admm : float;  (** global Φ at the consensus point, before polish *)
  admm : Convex.Admm.stats;
}

val active : options -> Mdg.Graph.t -> bool
(** Does [options.mode] ask for decomposition of this graph?  (The
    graph must be normalised for [Auto]/[On] to be meaningful.) *)

val consensus :
  ?obs:Obs.t ->
  options:options ->
  phi:(Numeric.Vec.t -> float) ->
  Costmodel.Params.t ->
  Mdg.Graph.t ->
  procs:int ->
  (Numeric.Vec.t * stats) option
(** Partition the graph, run consensus ADMM over the blocks, and
    return the assembled global log-allocation of the best-Φ iterate
    ([phi] is the monolithic objective, used both for scaling the
    penalties and for scoring iterates).  [None] when the partition
    degenerates to a single block (nothing to decompose).  The result
    lies inside the box [0, ln procs]^n and is intended as the [x0] of
    the monolithic polish. *)

(* Bounded least-recently-used map: a hash table over an intrusive
   doubly-linked recency list.  Every operation is O(1) expected; not
   thread-safe (callers such as {!Plan_cache} hold their own lock). *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (* towards most recent *)
  mutable next : ('k, 'v) node option;  (* towards least recent *)
}

type ('k, 'v) t = {
  cap : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* most recently used *)
  mutable tail : ('k, 'v) node option;  (* least recently used *)
}

let create cap =
  if cap < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  { cap; tbl = Hashtbl.create (Int.min cap 64); head = None; tail = None }

let capacity t = t.cap

let length t = Hashtbl.length t.tbl

(* Splice [n] out of the recency list (it must be linked). *)
let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  (* Compare payloads physically: [t.head != Some n] would allocate a
     fresh [Some] block and so never short-circuit. *)
  match t.head with
  | Some h when h == n -> ()
  | _ ->
      unlink t n;
      push_front t n

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
      touch t n;
      Some n.value

let peek t k = Option.map (fun n -> n.value) (Hashtbl.find_opt t.tbl k)

let mem t k = Hashtbl.mem t.tbl k

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl k

let set t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      n.value <- v;
      touch t n;
      None
  | None ->
      let evicted =
        if Hashtbl.length t.tbl >= t.cap then
          match t.tail with
          | Some lru ->
              unlink t lru;
              Hashtbl.remove t.tbl lru.key;
              Some (lru.key, lru.value)
          | None -> None
        else None
      in
      let n = { key = k; value = v; prev = None; next = None } in
      push_front t n;
      Hashtbl.add t.tbl k n;
      evicted

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None

let to_list t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some n -> walk ((n.key, n.value) :: acc) n.next
  in
  walk [] t.head

let iter f t = List.iter (fun (k, v) -> f k v) (to_list t)

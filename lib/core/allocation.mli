(** Processor allocation by convex programming (paper Section 2).

    Builds the objective

    {v
      Phi = max(A_p, C_p)
      A_p = (1/p) * sum_i T_i * p_i
      C_p = y_STOP,   y_i = max over preds (y_m + t^D_mi) + T_i
      T_i = sum t^R + t^C + sum t^S
    v}

    over the log-transformed per-node processor counts [x_i = ln p_i],
    where every cost term is a posynomial (Lemmas 1–2), so the problem
    is convex with a unique minimum, and solves it with
    {!Convex.Solver}.  The resulting real-valued allocation is the
    input to the PSA's rounding step. *)

type result = {
  alloc : float array;       (** optimal real allocation, in [1, p] *)
  phi : float;               (** optimal objective value Φ *)
  average : float;           (** A_p at the optimum *)
  critical_path : float;     (** C_p at the optimum *)
  solver : Convex.Solver.result;
  decomposed : Decompose.stats option;
      (** consensus-ADMM statistics when the decomposed path ran
          (see {!solve}'s [decompose]); [None] otherwise *)
}

val objective :
  Costmodel.Params.t -> Mdg.Graph.t -> procs:int -> Convex.Expr.t
(** The convex expression for Φ, with variable [i] = [ln pᵢ].  The
    graph must be normalised ({!Mdg.Graph.normalise}). *)

val average_expr :
  Costmodel.Params.t -> Mdg.Graph.t -> procs:int -> Convex.Expr.t
(** Just the [A_p] term. *)

val critical_path_expr :
  Costmodel.Params.t -> Mdg.Graph.t -> procs:int -> Convex.Expr.t
(** Just the [C_p] term. *)

val solve :
  ?options:Convex.Solver.options ->
  ?engine:
    [ `Tape | `Reference | `Precompiled of Convex.Solver.compiled ] ->
  ?obs:Obs.t ->
  ?x0:Numeric.Vec.t ->
  ?decompose:Decompose.options ->
  Costmodel.Params.t ->
  Mdg.Graph.t ->
  procs:int ->
  result
(** Solve the allocation problem.  Raises [Invalid_argument] if the
    graph is not normalised or [procs < 1]; raises [Not_found] if the
    parameter set lacks processing entries for a kernel in the
    graph.  [obs] (default {!Obs.null}) receives the underlying
    solver's convergence telemetry — see {!Convex.Solver.solve}.

    [decompose] (default: off) enables the consensus-ADMM decomposed
    path ({!Decompose}) subject to its mode/threshold: the MDG is
    partitioned, per-block subproblems are solved in parallel, and the
    consensus point is polished by a seeded monolithic solve.  The
    consensus point is a candidate only: the cold deterministic solve
    still runs, and the better exact Φ of the two is kept, so the
    decomposed result is never worse than the monolithic one (and
    often escapes the cold anneal's stall face).  Ignored when an
    explicit [x0] is supplied (a warm start already encodes a better
    seed).

    [x0] warm-starts the solver in log-space ([x0.(i) = ln p_i],
    typically [Array.map log previous.alloc]): across parameter or
    machine-size sweeps the previous optimum is usually
    near-stationary for the next problem, letting the solver skip its
    annealing stages — see {!Convex.Solver.solve}.

    [engine] (default [`Tape]) selects the objective evaluator: the
    objective is compiled once to a flat tape ({!Convex.Tape}) that
    drives every solver iteration and the exact Φ evaluation;
    [`Precompiled c] reuses an existing compilation of {e this exact
    problem's} objective (the plan cache's tape path — the caller is
    responsible for the key discipline, see {!Plan_cache});
    [`Reference] is the original DAG-walking {!Convex.Expr.eval_grad}
    path (orders of magnitude slower on large MDGs; kept for
    cross-checking). *)

val evaluate :
  Costmodel.Params.t -> Mdg.Graph.t -> procs:int -> alloc:float array -> float
(** Φ evaluated at an arbitrary allocation (each entry in [1, p]) —
    the exact max, not the smoothed objective.  Useful for comparing
    candidate allocations and in optimality tests. *)

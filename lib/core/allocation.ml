module E = Convex.Expr
module G = Mdg.Graph
module P = Costmodel.Params
module T = Costmodel.Transfer

type result = {
  alloc : float array;
  phi : float;
  average : float;
  critical_path : float;
  solver : Convex.Solver.result;
  decomposed : Decompose.stats option;
}

let check params g ~procs =
  if procs < 1 then invalid_arg "Allocation: procs < 1";
  if not (G.is_normalised g) then
    invalid_arg "Allocation: graph must be normalised (unique START/STOP)";
  (* Fail fast on missing calibration. *)
  Array.iter (fun (nd : G.node) -> ignore (P.processing params nd.kernel)) (G.nodes g)

(* T_i as a convex expression: receive components of incoming edges,
   the processing cost, and send components of outgoing edges. *)
let node_weight_expr params g i =
  let nd = G.node g i in
  let tr = P.transfer params in
  let recvs =
    List.map
      (fun (e : G.edge) ->
        T.receive_expr tr ~kind:e.kind ~bytes:e.bytes ~vi:e.src ~vj:e.dst)
      (G.preds g i)
  in
  let sends =
    List.map
      (fun (e : G.edge) ->
        T.send_expr tr ~kind:e.kind ~bytes:e.bytes ~vi:e.src ~vj:e.dst)
      (G.succs g i)
  in
  let proc = Costmodel.Processing.expr (P.processing params nd.kernel) ~var:i in
  E.sum (recvs @ (proc :: sends))

(* T_i * p_i: uses the dedicated *_times_p forms so that every term
   stays posynomial (paper Section 2, condition 2). *)
let node_area_expr params g i =
  let nd = G.node g i in
  let tr = P.transfer params in
  let recvs =
    List.map
      (fun (e : G.edge) ->
        T.receive_times_p_expr tr ~kind:e.kind ~bytes:e.bytes ~vi:e.src ~vj:e.dst)
      (G.preds g i)
  in
  let sends =
    List.map
      (fun (e : G.edge) ->
        T.send_times_p_expr tr ~kind:e.kind ~bytes:e.bytes ~vi:e.src ~vj:e.dst)
      (G.succs g i)
  in
  let proc =
    Costmodel.Processing.expr_times_p (P.processing params nd.kernel) ~var:i
  in
  E.sum (recvs @ (proc :: sends))

let average_expr params g ~procs =
  check params g ~procs;
  let n = G.num_nodes g in
  E.scale
    (1.0 /. float_of_int procs)
    (E.sum (List.init n (node_area_expr params g)))

let critical_path_expr params g ~procs =
  check params g ~procs;
  let tr = P.transfer params in
  let n = G.num_nodes g in
  let weight = Array.init n (node_weight_expr params g) in
  let y = Array.make n None in
  List.iter
    (fun i ->
      let arrivals =
        List.map
          (fun (e : G.edge) ->
            let d =
              T.network_expr tr ~kind:e.kind ~bytes:e.bytes ~vi:e.src ~vj:e.dst
            in
            E.add (Option.get y.(e.src)) d)
          (G.preds g i)
      in
      let start = match arrivals with [] -> E.const 0.0 | _ -> E.max_ arrivals in
      y.(i) <- Some (E.add start weight.(i)))
    (Mdg.Analysis.topological_order g);
  Option.get y.(G.stop_node g)

let objective params g ~procs =
  E.max_ [ average_expr params g ~procs; critical_path_expr params g ~procs ]

let solve ?options ?(engine = `Tape) ?obs ?x0 ?decompose params g ~procs =
  check params g ~procs;
  let n = G.num_nodes g in
  let avg = average_expr params g ~procs in
  let cp = critical_path_expr params g ~procs in
  let obj = E.max_ [ avg; cp ] in
  let lo = Numeric.Vec.create n 0.0 in
  let hi = Numeric.Vec.create n (log (float_of_int procs)) in
  (* Compile the objective to a flat tape once and drive both the
     solve and the exact Φ evaluation through it; [`Reference] keeps
     the DAG-walking path callable for consistency checks. *)
  let solver_engine, eval_obj, branches =
    match engine with
    | `Tape ->
        let c = Convex.Solver.compile ?obs obj in
        ( Convex.Solver.Precompiled c,
          (fun x -> Convex.Solver.eval_compiled c x),
          fun () -> Convex.Solver.compiled_branches c )
    | `Precompiled c ->
        (* A tape-cache hit: the caller compiled (or retrieved) the
           tape for exactly this (params, graph, procs) problem. *)
        ( Convex.Solver.Precompiled c,
          (fun x -> Convex.Solver.eval_compiled c x),
          fun () -> Convex.Solver.compiled_branches c )
    | `Reference ->
        (Convex.Solver.Reference, (fun x -> E.eval obj x), fun () -> [||])
  in
  (* Decomposed path: consensus ADMM over an MDG partition produces a
     near-optimal global point.  The consensus point is a *candidate*
     only, under the plan cache's warm-serving discipline: the cold
     deterministic solve (bit-identical to the undecomposed path) runs
     regardless, the consensus point is polished by a seeded solve,
     and the better exact Φ of the two is kept — the decomposition can
     improve the plan (the seeded polish often escapes the cold
     anneal's stall face), never degrade it.  A caller-supplied [x0]
     (warm start from the plan cache or a sweep sibling) wins over
     decomposition. *)
  let consensus =
    match x0 with
    | Some _ -> None
    | None -> (
        match decompose with
        | Some dopts when Decompose.active dopts g ->
            Decompose.consensus ?obs ~options:dopts ~phi:eval_obj params g
              ~procs
        | _ -> None)
  in
  let solve ?x0 () =
    Convex.Solver.solve ?options ~engine:solver_engine ?obs ?x0
      { objective = obj; lo; hi }
  in
  let solver, decomposed =
    match consensus with
    | None -> (solve ?x0 (), None)
    | Some (xa, st) ->
        let cold = solve () in
        let seeded = solve ~x0:xa () in
        ((if seeded.value < cold.value then seeded else cold), Some st)
  in
  let alloc = Array.map exp solver.x in
  (* The exact (mu = 0) Φ sweep just computed A_p and C_p on its way
     to the root max; read them off the tape instead of re-walking the
     expression DAG — two DAG evals cost more than the whole tape
     sweep on deep MDGs.  [branches] is in [max_] construction order,
     i.e. [avg] then [cp]; the Reference engine (and a root collapsed
     by simplification) falls back to the DAG walk. *)
  let phi = eval_obj solver.x in
  let average, critical_path =
    match branches () with
    | [| a; c |] -> (a, c)
    | _ -> (E.eval avg solver.x, E.eval cp solver.x)
  in
  { alloc; phi; average; critical_path; solver; decomposed }

let evaluate params g ~procs ~alloc =
  check params g ~procs;
  if Array.length alloc <> G.num_nodes g then
    invalid_arg "Allocation.evaluate: allocation length mismatch";
  Array.iter
    (fun p ->
      if p < 1.0 || p > float_of_int procs +. 1e-9 then
        invalid_arg "Allocation.evaluate: allocation outside [1, procs]")
    alloc;
  let x = Array.map log alloc in
  E.eval (objective params g ~procs) x

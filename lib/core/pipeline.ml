module G = Mdg.Graph

type config = {
  solver_options : Convex.Solver.options;
  psa_options : Psa.options;
  obs : Obs.t;
  cache : Plan_cache.t option;
  require_convergence : bool;
  decompose : Decompose.options option;
}

let default_config =
  {
    solver_options = Convex.Solver.default_options;
    psa_options = Psa.default_options;
    obs = Obs.null;
    cache = None;
    require_convergence = false;
    decompose = None;
  }

let with_solver_options solver_options config = { config with solver_options }

let with_psa_options psa_options config = { config with psa_options }

let with_obs obs config = { config with obs }

let with_cache cache config = { config with cache = Some cache }

let with_require_convergence require_convergence config =
  { config with require_convergence }

let with_decompose decompose config = { config with decompose = Some decompose }

type request = {
  params : Costmodel.Params.t;
  graph : Mdg.Graph.t;
  procs : int;
  x0 : Numeric.Vec.t option;
}

let request ?x0 params graph ~procs = { params; graph; procs; x0 }

type error =
  | Invalid_procs of int
  | Missing_calibration of Mdg.Graph.kernel
  | Invalid_request of string
  | Solver_not_converged of { iterations : int; stages : int }

let error_to_string = function
  | Invalid_procs p -> Printf.sprintf "invalid processor count %d (need >= 1)" p
  | Missing_calibration k ->
      Format.asprintf "no cost-model calibration for kernel %a" G.pp_kernel k
  | Invalid_request msg -> Printf.sprintf "invalid request: %s" msg
  | Solver_not_converged { iterations; stages } ->
      Printf.sprintf
        "allocation solver did not converge (%d iterations over %d stages)"
        iterations stages

let error_kind = function
  | Invalid_procs _ -> "invalid_procs"
  | Missing_calibration _ -> "missing_calibration"
  | Invalid_request _ -> "invalid_request"
  | Solver_not_converged _ -> "solver_not_converged"

exception Error of error

type cache_use = Hit | Shape_hit | Miss | Off

type cache_outcome = {
  tape : cache_use;
  warm : cache_use;
  solve_skipped : bool;
  coalesced : bool;
}

type plan = {
  graph : G.t;
  params : Costmodel.Params.t;
  procs : int;
  allocation : Allocation.result;
  psa : Psa.result;
  config : config;
  cache : cache_outcome;
}

let no_cache = { tape = Off; warm = Off; solve_skipped = false; coalesced = false }

(* Allocation/PSA validation failures surface as [Invalid_argument];
   uncalibrated kernels as [Not_found] from the parameter table.  The
   checks below turn the ones a *well-typed* caller can still hit into
   typed errors up front; anything residual (an impossible internal
   state) stays an exception. *)
let validate { params; graph; procs; x0 } =
  if procs < 1 then Result.Error (Invalid_procs procs)
  else
    let g = G.normalise graph in
    let missing =
      Array.fold_left
        (fun acc (nd : G.node) ->
          match acc with
          | Some _ -> acc
          | None -> (
              match Costmodel.Params.processing params nd.kernel with
              | (_ : Costmodel.Params.processing) -> None
              | exception Not_found -> Some nd.kernel))
        None (G.nodes g)
    in
    match missing with
    | Some k -> Result.Error (Missing_calibration k)
    | None -> (
        match x0 with
        | Some x when Numeric.Vec.dim x <> G.num_nodes g ->
            Result.Error
              (Invalid_request
                 (Printf.sprintf "x0 has dimension %d but the graph has %d nodes"
                    (Numeric.Vec.dim x) (G.num_nodes g)))
        | _ -> Result.Ok g)

let emit_cache_counter obs outcome =
  if Obs.enabled obs then
    Obs.counter obs "pipeline.cache"
      [
        ("tape_hit", match outcome.tape with Hit -> 1.0 | _ -> 0.0);
        ( "warm_hit",
          match outcome.warm with Hit | Shape_hit -> 1.0 | _ -> 0.0 );
        ("solve_skipped", if outcome.solve_skipped then 1.0 else 0.0);
        ("coalesced", if outcome.coalesced then 1.0 else 0.0);
      ]

(* Solve the allocation through the configured cache.  An exact
   (graph, constants, procs) duplicate is answered with the cached
   result outright — the solver is deterministic, so re-solving the
   identical problem could only reproduce it, and even the warm-accept
   probe costs dozens of tape evaluations.  Otherwise reuse the
   compiled tape for the key and seed the solver with the latest
   same-shape optimum — the warm-start probe then skips the smoothing
   anneal, but the final stages still run to full tolerance: the
   probe's directional no-decrease certificate is too weak at kinks of
   the exact objective to return a perturbed-problem seed verbatim
   (its Phi can be ~1e-5 off), so [accept_warm_start] is left to the
   caller's solver options rather than forced here. *)
let solve_cached config cache (req : request) g =
  let key =
    {
      Plan_cache.graph_hash = G.structural_hash g;
      fingerprint = Costmodel.Params.fingerprint req.params;
      procs = req.procs;
    }
  in
  let obs = config.obs in
  let hit = match req.x0 with Some _ -> None | None -> Plan_cache.warm cache key in
  match hit with
  | Some (Plan_cache.Exact allocation) ->
      let outcome =
        {
          tape = (if Plan_cache.tape_cached cache key then Hit else Miss);
          warm = Hit;
          solve_skipped = true;
          coalesced = false;
        }
      in
      emit_cache_counter obs outcome;
      (allocation, outcome)
  | (None | Some (Seed _)) as hit ->
      (* The miss path proper: compile (through the tape cache), solve,
         record.  Returns the per-request cache outcome alongside the
         allocation so the coalescing wrapper below can surface the
         leader's view. *)
      let run_miss () =
        let compiled, tape_use =
          Plan_cache.tape cache key ~compile:(fun () ->
              Convex.Solver.compile ~obs
                (Allocation.objective req.params g ~procs:req.procs))
        in
        let solve ?x0 () =
          Allocation.solve ~options:config.solver_options
            ~engine:(`Precompiled compiled) ~obs ?x0
            ?decompose:config.decompose req.params g ~procs:req.procs
        in
        let allocation, warm_use =
          match req.x0 with
          | Some x -> (solve ~x0:x (), Off)
          | None -> (
              match hit with
              | Some (Plan_cache.Seed seed) ->
                  (* Warm-serving guarantee: a seeded solve's smoothing
                     ladder is scaled by its start point, so from a
                     sibling optimum it can stall measurably above what
                     the cold solve finds.  Solve cold-deterministically
                     (bit-identical to the uncached path) and use the
                     sibling optimum only as a candidate: when the
                     current objective values it below the cold answer, a
                     seeded re-solve polishes it further, and the better
                     of the two is kept — the seed can improve the plan,
                     never degrade it (test_cache_prop exercises this). *)
                  let cold = solve () in
                  let seed_phi =
                    Convex.Solver.eval_compiled compiled seed
                  in
                  let best =
                    if seed_phi < cold.phi then
                      let seeded = solve ~x0:seed () in
                      if seeded.phi < cold.phi then seeded else cold
                    else cold
                  in
                  (best, Shape_hit)
              | _ -> (solve (), Miss))
        in
        Plan_cache.store_warm cache key allocation;
        (allocation, tape_use, warm_use)
      in
      let allocation, outcome =
        match req.x0 with
        | Some _ ->
            (* An explicit x0 is not part of the cache key, so two
               requests with the same key can legitimately want
               different solves — never coalesce them. *)
            let allocation, tape_use, warm_use = run_miss () in
            ( allocation,
              {
                tape = (match tape_use with `Hit -> Hit | `Miss -> Miss);
                warm = warm_use;
                solve_skipped = allocation.solver.iterations = 0;
                coalesced = false;
              } )
        | None -> (
            (* Singleflight: concurrent identical misses block on one
               solve and share its result; a leader failure re-raises
               in every waiter (caught as a typed error above). *)
            let leader_uses = ref None in
            let allocation, role =
              Plan_cache.coalesce cache key ~solve:(fun () ->
                  let allocation, tape_use, warm_use = run_miss () in
                  leader_uses := Some (tape_use, warm_use);
                  allocation)
            in
            match role with
            | `Leader ->
                let tape_use, warm_use = Option.get !leader_uses in
                ( allocation,
                  {
                    tape = (match tape_use with `Hit -> Hit | `Miss -> Miss);
                    warm = warm_use;
                    solve_skipped = allocation.solver.iterations = 0;
                    coalesced = false;
                  } )
            | `Follower ->
                (* Served by the leader's solve: the tape is resident
                   by now and this request never entered the solver. *)
                ( allocation,
                  { tape = Hit; warm = Hit; solve_skipped = true; coalesced = true }
                ))
      in
      emit_cache_counter obs outcome;
      (allocation, outcome)

let plan ?(config = default_config) (req : request) =
  let obs = config.obs in
  Obs.span obs ~cat:"pipeline" "pipeline.plan"
    ~args:[ ("procs", Obs.Events.Int req.procs) ]
  @@ fun () ->
  match validate req with
  | Error e -> Result.Error e
  | Ok g -> (
      match
        Obs.span obs ~cat:"pipeline" "pipeline.allocate"
          ~args:[ ("nodes", Obs.Events.Int (G.num_nodes g)) ]
          (fun () ->
            match config.cache with
            | Some cache -> solve_cached config cache req g
            | None ->
                ( Allocation.solve ~options:config.solver_options ~obs
                    ?x0:req.x0 ?decompose:config.decompose req.params g
                    ~procs:req.procs,
                  no_cache ))
      with
      | exception Invalid_argument msg -> Result.Error (Invalid_request msg)
      | allocation, cache ->
          if config.require_convergence && not allocation.solver.converged
          then
            Result.Error
              (Solver_not_converged
                 {
                   iterations = allocation.solver.iterations;
                   stages = allocation.solver.stages;
                 })
          else (
            match
              Obs.span obs ~cat:"pipeline" "pipeline.schedule" (fun () ->
                  Psa.schedule ~options:config.psa_options ~obs req.params g
                    ~procs:req.procs ~alloc:allocation.alloc)
            with
            | exception Invalid_argument msg ->
                Result.Error (Invalid_request msg)
            | psa ->
                Ok
                  {
                    graph = g;
                    params = req.params;
                    procs = req.procs;
                    allocation;
                    psa;
                    config;
                    cache;
                  }))

let plan_exn ?config ?x0 params g ~procs =
  match plan ?config (request ?x0 params g ~procs) with
  | Ok p -> p
  | Result.Error e -> raise (Error e)

let phi p = p.allocation.phi

let predicted_time p = p.psa.t_psa

let schedule p = p.psa.schedule

(* pid 1 carries the MPMD machine timeline, pid 2 the SPMD baseline's,
   so both can coexist with the compiler's pid-0 wall-clock spans in
   one trace file. *)
let mpmd_sim_pid = 1

let spmd_sim_pid = 2

let simulate gt p =
  let obs = p.config.obs in
  let prog =
    Obs.span obs ~cat:"pipeline" "pipeline.codegen" (fun () ->
        Codegen.mpmd gt p.graph p.psa.schedule)
  in
  Obs.span obs ~cat:"pipeline" "pipeline.simulate" (fun () ->
      Machine.Sim.run ~obs ~obs_pid:mpmd_sim_pid gt prog)

let simulate_spmd ?(obs = Obs.null) gt g ~procs =
  let g = G.normalise g in
  let prog =
    Obs.span obs ~cat:"pipeline" "pipeline.codegen_spmd" (fun () ->
        Codegen.spmd gt g ~procs)
  in
  Obs.span obs ~cat:"pipeline" "pipeline.simulate_spmd" (fun () ->
      Machine.Sim.run ~obs ~obs_pid:spmd_sim_pid gt prog)

let serial_time gt g =
  Array.fold_left
    (fun acc (nd : G.node) ->
      acc +. Machine.Ground_truth.kernel_serial_time gt nd.kernel)
    0.0
    (G.nodes (G.normalise g))

type comparison = {
  procs : int;
  serial : float;
  mpmd_time : float;
  spmd_time : float;
  mpmd_speedup : float;
  spmd_speedup : float;
  mpmd_efficiency : float;
  spmd_efficiency : float;
  predicted : float;
  phi : float;
}

let comparison_of ~procs ~serial ~predicted ~phi ~mpmd_time ~spmd_time =
  {
    procs;
    serial;
    mpmd_time;
    spmd_time;
    mpmd_speedup = Numeric.Stats.speedup ~serial ~parallel:mpmd_time;
    spmd_speedup = Numeric.Stats.speedup ~serial ~parallel:spmd_time;
    mpmd_efficiency = Numeric.Stats.efficiency ~serial ~parallel:mpmd_time ~procs;
    spmd_efficiency = Numeric.Stats.efficiency ~serial ~parallel:spmd_time ~procs;
    predicted;
    phi;
  }

let compare_mpmd_spmd ?(config = default_config) gt (req : request) =
  match plan ~config { req with graph = G.normalise req.graph } with
  | Result.Error e -> Result.Error e
  | Ok p ->
      let mpmd = simulate gt p in
      let spmd = simulate_spmd ~obs:config.obs gt p.graph ~procs:req.procs in
      let serial = serial_time gt p.graph in
      Ok
        (comparison_of ~procs:req.procs ~serial ~predicted:(predicted_time p)
           ~phi:(phi p) ~mpmd_time:mpmd.finish_time
           ~spmd_time:spmd.finish_time)

let compare_mpmd_spmd_exn ?config gt params g ~procs =
  match compare_mpmd_spmd ?config gt (request params g ~procs) with
  | Ok c -> c
  | Result.Error e -> raise (Error e)

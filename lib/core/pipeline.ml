module G = Mdg.Graph

type config = {
  solver_options : Convex.Solver.options;
  psa_options : Psa.options;
  obs : Obs.t;
}

let default_config =
  {
    solver_options = Convex.Solver.default_options;
    psa_options = Psa.default_options;
    obs = Obs.null;
  }

let with_solver_options solver_options config = { config with solver_options }

let with_psa_options psa_options config = { config with psa_options }

let with_obs obs config = { config with obs }

type plan = {
  graph : G.t;
  params : Costmodel.Params.t;
  procs : int;
  allocation : Allocation.result;
  psa : Psa.result;
  config : config;
}

let plan ?(config = default_config) ?x0 params g ~procs =
  let obs = config.obs in
  Obs.span obs ~cat:"pipeline" "pipeline.plan"
    ~args:[ ("procs", Obs.Events.Int procs) ]
  @@ fun () ->
  let g = G.normalise g in
  let allocation =
    Obs.span obs ~cat:"pipeline" "pipeline.allocate"
      ~args:[ ("nodes", Obs.Events.Int (G.num_nodes g)) ]
      (fun () ->
        Allocation.solve ~options:config.solver_options ~obs ?x0 params g
          ~procs)
  in
  let psa =
    Obs.span obs ~cat:"pipeline" "pipeline.schedule" (fun () ->
        Psa.schedule ~options:config.psa_options ~obs params g ~procs
          ~alloc:allocation.alloc)
  in
  { graph = g; params; procs; allocation; psa; config }

let phi p = p.allocation.phi

let predicted_time p = p.psa.t_psa

let schedule p = p.psa.schedule

(* pid 1 carries the MPMD machine timeline, pid 2 the SPMD baseline's,
   so both can coexist with the compiler's pid-0 wall-clock spans in
   one trace file. *)
let mpmd_sim_pid = 1

let spmd_sim_pid = 2

let simulate gt p =
  let obs = p.config.obs in
  let prog =
    Obs.span obs ~cat:"pipeline" "pipeline.codegen" (fun () ->
        Codegen.mpmd gt p.graph p.psa.schedule)
  in
  Obs.span obs ~cat:"pipeline" "pipeline.simulate" (fun () ->
      Machine.Sim.run ~obs ~obs_pid:mpmd_sim_pid gt prog)

let simulate_spmd ?(obs = Obs.null) gt g ~procs =
  let g = G.normalise g in
  let prog =
    Obs.span obs ~cat:"pipeline" "pipeline.codegen_spmd" (fun () ->
        Codegen.spmd gt g ~procs)
  in
  Obs.span obs ~cat:"pipeline" "pipeline.simulate_spmd" (fun () ->
      Machine.Sim.run ~obs ~obs_pid:spmd_sim_pid gt prog)

let serial_time gt g =
  Array.fold_left
    (fun acc (nd : G.node) ->
      acc +. Machine.Ground_truth.kernel_serial_time gt nd.kernel)
    0.0
    (G.nodes (G.normalise g))

type comparison = {
  procs : int;
  serial : float;
  mpmd_time : float;
  spmd_time : float;
  mpmd_speedup : float;
  spmd_speedup : float;
  mpmd_efficiency : float;
  spmd_efficiency : float;
  predicted : float;
  phi : float;
}

let comparison_of ~procs ~serial ~predicted ~phi ~mpmd_time ~spmd_time =
  {
    procs;
    serial;
    mpmd_time;
    spmd_time;
    mpmd_speedup = Numeric.Stats.speedup ~serial ~parallel:mpmd_time;
    spmd_speedup = Numeric.Stats.speedup ~serial ~parallel:spmd_time;
    mpmd_efficiency = Numeric.Stats.efficiency ~serial ~parallel:mpmd_time ~procs;
    spmd_efficiency = Numeric.Stats.efficiency ~serial ~parallel:spmd_time ~procs;
    predicted;
    phi;
  }

let compare_mpmd_spmd ?(config = default_config) gt params g ~procs =
  let g = G.normalise g in
  let p = plan ~config params g ~procs in
  let mpmd = simulate gt p in
  let spmd = simulate_spmd ~obs:config.obs gt g ~procs in
  let serial = serial_time gt g in
  comparison_of ~procs ~serial ~predicted:(predicted_time p) ~phi:(phi p)
    ~mpmd_time:mpmd.finish_time ~spmd_time:spmd.finish_time

(* Deprecated pre-[config] entry points, kept so external callers of
   the scattered optional-argument API keep compiling. *)

let config_of_options ?solver_options ?psa_options () =
  let config = default_config in
  let config =
    match solver_options with
    | None -> config
    | Some o -> with_solver_options o config
  in
  match psa_options with None -> config | Some o -> with_psa_options o config

let plan_with_options ?solver_options ?psa_options params g ~procs =
  plan ~config:(config_of_options ?solver_options ?psa_options ()) params g
    ~procs

let compare_mpmd_spmd_with_options ?solver_options ?psa_options gt params g
    ~procs =
  compare_mpmd_spmd
    ~config:(config_of_options ?solver_options ?psa_options ())
    gt params g ~procs

(** Bounded least-recently-used map.

    A hash table paired with an intrusive recency list: {!find} and
    {!set} move the binding to the front, and inserting past the
    capacity evicts the least recently used binding.  All operations
    are O(1) expected.  Not thread-safe — callers that share an
    instance across domains (e.g. {!Plan_cache}) must hold their own
    lock. *)

type ('k, 'v) t

val create : int -> ('k, 'v) t
(** [create cap] holds at most [cap] bindings.  Raises
    [Invalid_argument] when [cap < 1]. *)

val capacity : ('k, 'v) t -> int

val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup that marks the binding as most recently used. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Lookup without touching the recency order. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership without touching the recency order. *)

val set : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** Insert or replace, marking the binding most recently used.  When an
    insert would exceed the capacity the least recently used binding is
    evicted and returned. *)

val remove : ('k, 'v) t -> 'k -> unit

val clear : ('k, 'v) t -> unit

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Bindings from most to least recently used. *)

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
(** Iterate from most to least recently used. *)

(** End-to-end compilation pipeline: the composition the PARADIGM
    compiler performs (paper Section 1.2).

    [plan] runs allocation (convex program) and scheduling (PSA);
    [simulate] generates the MPMD program and executes it on the
    simulated machine; [simulate_spmd] runs the pure-data-parallel
    baseline the paper compares against.

    Every entry point is parameterised by a single {!config} record
    carrying the solver options, PSA options and the telemetry sink —
    build one from {!default_config} with the [with_*] combinators:

    {[
      let config =
        Pipeline.(
          default_config
          |> with_psa_options { Psa.default_options with pb = Psa.Fixed 8 }
          |> with_obs (Obs.Recorder.sink recorder))
      in
      Pipeline.plan ~config params g ~procs
    ]}

    With a live sink the pipeline emits ["pipeline.plan"] /
    ["pipeline.allocate"] / ["pipeline.schedule"] /
    ["pipeline.codegen"] / ["pipeline.simulate"] wall-clock spans on
    pid 0, the solver and PSA emit their convergence and
    rounding/placement events (see {!Convex.Solver.solve} and
    {!Psa.schedule}), and the machine simulator forwards its
    simulated-time event trace on pid 1 (MPMD) / pid 2 (SPMD) — so a
    single Chrome trace shows the whole compile-and-run timeline. *)

type config = {
  solver_options : Convex.Solver.options;
  psa_options : Psa.options;
  obs : Obs.t;
}

val default_config : config
(** Default solver and PSA options, {!Obs.null} sink. *)

val with_solver_options : Convex.Solver.options -> config -> config

val with_psa_options : Psa.options -> config -> config

val with_obs : Obs.t -> config -> config

type plan = {
  graph : Mdg.Graph.t;
  params : Costmodel.Params.t;
  procs : int;
  allocation : Allocation.result;
  psa : Psa.result;
  config : config;  (** the configuration the plan was built with;
                        [simulate] reuses its sink *)
}

val plan :
  ?config:config ->
  ?x0:Numeric.Vec.t ->
  Costmodel.Params.t ->
  Mdg.Graph.t ->
  procs:int ->
  plan
(** Normalises the graph if necessary, solves the allocation problem
    and runs the PSA.  [x0] warm-starts the allocation solve in
    log-space, indexed by the normalised graph's nodes — typically
    [Array.map log previous.allocation.alloc] from an earlier plan of
    the same graph under nearby parameters or machine size (see
    {!Allocation.solve}). *)

val phi : plan -> float
(** Φ: the convex program's optimal finish time. *)

val predicted_time : plan -> float
(** T_psa: the schedule's (model-)predicted program finish time. *)

val schedule : plan -> Schedule.t

val simulate : Machine.Ground_truth.t -> plan -> Machine.Sim.result
(** Generate the MPMD program and execute it on the machine.  Uses the
    plan's configured sink for codegen/simulate spans and the machine
    event timeline. *)

val simulate_spmd :
  ?obs:Obs.t ->
  Machine.Ground_truth.t ->
  Mdg.Graph.t ->
  procs:int ->
  Machine.Sim.result
(** Run the SPMD baseline of the (normalised) graph. *)

val serial_time : Machine.Ground_truth.t -> Mdg.Graph.t -> float
(** Measured single-processor execution time: sum of kernel serial
    times, no communication.  The speedup baseline of Figure 8. *)

type comparison = {
  procs : int;
  serial : float;
  mpmd_time : float;
  spmd_time : float;
  mpmd_speedup : float;
  spmd_speedup : float;
  mpmd_efficiency : float;
  spmd_efficiency : float;
  predicted : float;   (** T_psa *)
  phi : float;
}

val comparison_of :
  procs:int ->
  serial:float ->
  predicted:float ->
  phi:float ->
  mpmd_time:float ->
  spmd_time:float ->
  comparison
(** Assemble a comparison from already-measured times (speedups and
    efficiencies are derived) — for callers that need the individual
    simulation results as well. *)

val compare_mpmd_spmd :
  ?config:config ->
  Machine.Ground_truth.t ->
  Costmodel.Params.t ->
  Mdg.Graph.t ->
  procs:int ->
  comparison
(** The full Figure 8 / Figure 9 / Table 3 measurement for one machine
    size. *)

(** {2 Deprecated}

    Thin wrappers over the {!config} API, kept for source
    compatibility with the pre-[config] optional-argument interface. *)

val plan_with_options :
  ?solver_options:Convex.Solver.options ->
  ?psa_options:Psa.options ->
  Costmodel.Params.t ->
  Mdg.Graph.t ->
  procs:int ->
  plan
[@@ocaml.deprecated "Use Pipeline.plan ?config with Pipeline.with_* builders."]

val compare_mpmd_spmd_with_options :
  ?solver_options:Convex.Solver.options ->
  ?psa_options:Psa.options ->
  Machine.Ground_truth.t ->
  Costmodel.Params.t ->
  Mdg.Graph.t ->
  procs:int ->
  comparison
[@@ocaml.deprecated
  "Use Pipeline.compare_mpmd_spmd ?config with Pipeline.with_* builders."]

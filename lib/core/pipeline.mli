(** End-to-end compilation pipeline: the composition the PARADIGM
    compiler performs (paper Section 1.2), behind a single
    request/result planning surface.

    {!plan} runs allocation (convex program) and scheduling (PSA) for
    a {!request} and returns [(plan, error) result] — every failure
    mode the pipeline can encounter (bad processor count, missing
    calibration, invalid inputs, solver non-convergence under
    {!config.require_convergence}) is a typed {!error}, not an
    exception.  The same entry point serves both transports: the
    [paradigm] CLI subcommands and the socket plan server
    ({!Server.Daemon}) construct a request, call {!plan}, and render
    the outcome for their medium.  {!plan_exn} is the thin
    raise-on-error convenience for tests and scripts.

    [simulate] generates the MPMD program and executes it on the
    simulated machine; [simulate_spmd] runs the pure-data-parallel
    baseline the paper compares against.

    Every entry point is parameterised by a single {!config} record
    carrying the solver options, PSA options, the telemetry sink and
    (optionally) the shared {!Plan_cache} — build one from
    {!default_config} with the [with_*] combinators:

    {[
      let config =
        Pipeline.(
          default_config
          |> with_psa_options { Psa.default_options with pb = Psa.Fixed 8 }
          |> with_cache (Plan_cache.create ())
          |> with_obs (Obs.Recorder.sink recorder))
      in
      Pipeline.plan ~config (Pipeline.request params g ~procs)
    ]}

    With a cache configured, {!plan} keys the compiled objective tape
    and the last result by [(Mdg.Graph.structural_hash,
    Costmodel.Params.fingerprint, procs)]: an exact duplicate request
    is answered with the cached allocation outright (the solver is
    deterministic, so re-solving could only reproduce it), while a
    near-duplicate (same MDG shape, perturbed constants) seeds the
    solver with the sibling optimum and lets the warm-start probe
    decide whether the smoothing anneal is needed.  The per-request
    outcome is reported in {!plan.cache}.

    With a live sink the pipeline emits ["pipeline.plan"] /
    ["pipeline.allocate"] / ["pipeline.schedule"] /
    ["pipeline.codegen"] / ["pipeline.simulate"] wall-clock spans on
    pid 0 plus a ["pipeline.cache"] counter per cached plan, the
    solver and PSA emit their convergence and rounding/placement
    events (see {!Convex.Solver.solve} and {!Psa.schedule}), and the
    machine simulator forwards its simulated-time event trace on pid 1
    (MPMD) / pid 2 (SPMD). *)

type config = {
  solver_options : Convex.Solver.options;
  psa_options : Psa.options;
  obs : Obs.t;
  cache : Plan_cache.t option;
      (** shared tape/warm-start caches; [None] (default) plans cold *)
  require_convergence : bool;
      (** return {!error.Solver_not_converged} instead of a plan when
          the final exact stage misses its tolerance (default
          [false]: the iterate is still feasible and usually within
          the solver's accuracy band, so batch callers keep it) *)
  decompose : Decompose.options option;
      (** consensus-ADMM decomposed allocation (see {!Decompose} and
          {!Allocation.solve}); [None] (default) keeps the monolithic
          path.  With {!Decompose.default_options} the decomposition
          auto-activates above the node threshold.  Ignored for
          requests carrying an explicit [x0] or answered from the
          warm cache. *)
}

val default_config : config
(** Default solver and PSA options, {!Obs.null} sink, no cache, no
    convergence requirement. *)

val with_solver_options : Convex.Solver.options -> config -> config

val with_psa_options : Psa.options -> config -> config

val with_obs : Obs.t -> config -> config

val with_cache : Plan_cache.t -> config -> config

val with_require_convergence : bool -> config -> config

val with_decompose : Decompose.options -> config -> config

(** {2 Requests and errors} *)

type request = {
  params : Costmodel.Params.t;
  graph : Mdg.Graph.t;
  procs : int;
  x0 : Numeric.Vec.t option;
      (** explicit warm start (log-space, indexed by the normalised
          graph's nodes); takes precedence over the cache's seed *)
}

val request :
  ?x0:Numeric.Vec.t ->
  Costmodel.Params.t ->
  Mdg.Graph.t ->
  procs:int ->
  request

type error =
  | Invalid_procs of int
      (** processor count outside [1, ∞) *)
  | Missing_calibration of Mdg.Graph.kernel
      (** the parameter set has no Amdahl entry for a kernel used by
          the graph *)
  | Invalid_request of string
      (** structurally invalid input surfaced by a pipeline stage
          (e.g. a fixed PB that is not a power of two, an allocation
          outside the machine) *)
  | Solver_not_converged of { iterations : int; stages : int }
      (** only with {!config.require_convergence} *)

val error_to_string : error -> string
(** One-line human-readable rendering, stable enough for CLI output. *)

val error_kind : error -> string
(** Short machine-readable tag (["invalid_procs"],
    ["missing_calibration"], ["invalid_request"],
    ["solver_not_converged"]) — the wire protocol's error kind. *)

exception Error of error
(** Raised by {!plan_exn}; CLI boundaries catch it and exit 1. *)

(** {2 Planning} *)

type cache_use = Hit | Shape_hit | Miss | Off

type cache_outcome = {
  tape : cache_use;   (** [Shape_hit] never applies to tapes *)
  warm : cache_use;
  solve_skipped : bool;
      (** the allocation was served without entering the solver (an
          exact warm-cache hit, or a coalesced follower), or the
          solver accepted a caller-supplied warm start outright — see
          {!Convex.Solver.options.accept_warm_start} *)
  coalesced : bool;
      (** this request was a cache miss served by a {e concurrent}
          identical request's solve ({!Plan_cache.coalesce}): it
          blocked on the in-flight solve and shares its result instead
          of solving again.  Requests carrying an explicit [x0] are
          never coalesced (the seed is not part of the cache key). *)
}

type plan = {
  graph : Mdg.Graph.t;
  params : Costmodel.Params.t;
  procs : int;
  allocation : Allocation.result;
  psa : Psa.result;
  config : config;  (** the configuration the plan was built with;
                        [simulate] reuses its sink *)
  cache : cache_outcome;
}

val plan : ?config:config -> request -> (plan, error) result
(** Normalises the graph if necessary, validates the request, solves
    the allocation problem (through the cache when configured) and
    runs the PSA. *)

val plan_exn :
  ?config:config ->
  ?x0:Numeric.Vec.t ->
  Costmodel.Params.t ->
  Mdg.Graph.t ->
  procs:int ->
  plan
(** [plan] with the request inline, raising {!Error} on failure —
    for tests, benchmarks and scripts where an error is fatal
    anyway. *)

val phi : plan -> float
(** Φ: the convex program's optimal finish time. *)

val predicted_time : plan -> float
(** T_psa: the schedule's (model-)predicted program finish time. *)

val schedule : plan -> Schedule.t

(** {2 Simulation} *)

val simulate : Machine.Ground_truth.t -> plan -> Machine.Sim.result
(** Generate the MPMD program and execute it on the machine.  Uses the
    plan's configured sink for codegen/simulate spans and the machine
    event timeline. *)

val simulate_spmd :
  ?obs:Obs.t ->
  Machine.Ground_truth.t ->
  Mdg.Graph.t ->
  procs:int ->
  Machine.Sim.result
(** Run the SPMD baseline of the (normalised) graph. *)

val serial_time : Machine.Ground_truth.t -> Mdg.Graph.t -> float
(** Measured single-processor execution time: sum of kernel serial
    times, no communication.  The speedup baseline of Figure 8. *)

type comparison = {
  procs : int;
  serial : float;
  mpmd_time : float;
  spmd_time : float;
  mpmd_speedup : float;
  spmd_speedup : float;
  mpmd_efficiency : float;
  spmd_efficiency : float;
  predicted : float;   (** T_psa *)
  phi : float;
}

val comparison_of :
  procs:int ->
  serial:float ->
  predicted:float ->
  phi:float ->
  mpmd_time:float ->
  spmd_time:float ->
  comparison
(** Assemble a comparison from already-measured times (speedups and
    efficiencies are derived) — for callers that need the individual
    simulation results as well. *)

val compare_mpmd_spmd :
  ?config:config ->
  Machine.Ground_truth.t ->
  request ->
  (comparison, error) result
(** The full Figure 8 / Figure 9 / Table 3 measurement for one machine
    size. *)

val compare_mpmd_spmd_exn :
  ?config:config ->
  Machine.Ground_truth.t ->
  Costmodel.Params.t ->
  Mdg.Graph.t ->
  procs:int ->
  comparison
(** [compare_mpmd_spmd] with the request inline, raising {!Error} on
    failure — the {!plan_exn} of comparisons. *)

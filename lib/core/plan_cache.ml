type key = { graph_hash : int64; fingerprint : int64; procs : int }

type stats = {
  tape_hits : int;
  tape_misses : int;
  warm_hits : int;
  warm_shape_hits : int;
  warm_procs_hits : int;
  warm_misses : int;
  coalesce_leaders : int;
  coalesce_hits : int;
  tape_entries : int;
  warm_entries : int;
}

type warm_hit = Exact of Allocation.result | Seed of Numeric.Vec.t

(* One in-flight solve.  Waiters block on [fcond] (paired with the
   cache's global mutex) until the leader publishes; the record
   outlives its table entry, so a waiter that was registered before
   the leader finished still observes the outcome after removal. *)
type flight = {
  fcond : Condition.t;
  mutable fstate : flight_state;
  mutable fwaiters : int;
}

and flight_state =
  | Pending
  | Done of Allocation.result
  | Failed of exn

type t = {
  lock : Mutex.t;
  tapes : (key, Convex.Solver.compiled) Lru.t;
  warm_exact : (key, Allocation.result) Lru.t;
  inflight : (key, flight) Hashtbl.t;
  (* Latest optimum per graph shape, per machine size: the nested
     [procs] map is what makes a different-[procs] request on a known
     shape answerable (by rescaling the nearest stored optimum) rather
     than a cold miss.  Bounded like the other tables — LRU over
     shapes, and each shape's [procs] map capped at
     [max_procs_per_shape] (evicting the size farthest in log ratio
     from the newcomer) — so a long-running server with a diverse
     request mix cannot grow it without limit. *)
  warm_shape : (int64, (int, Numeric.Vec.t) Hashtbl.t) Lru.t;
  mutable tape_hits : int;
  mutable tape_misses : int;
  mutable warm_hits : int;
  mutable warm_shape_hits : int;
  mutable warm_procs_hits : int;
  mutable warm_misses : int;
  mutable coalesce_leaders : int;
  mutable coalesce_hits : int;
}

(* Machine sizes are powers of two in practice, so a handful of
   per-shape entries already spans the realistic [procs] range. *)
let max_procs_per_shape = 8

let create ?(max_tapes = 64) ?(max_warm = 512) ?(max_shapes = 256) () =
  if max_tapes < 1 || max_warm < 1 || max_shapes < 1 then
    invalid_arg "Plan_cache.create: bounds must be >= 1";
  {
    lock = Mutex.create ();
    tapes = Lru.create max_tapes;
    warm_exact = Lru.create max_warm;
    warm_shape = Lru.create max_shapes;
    inflight = Hashtbl.create 16;
    tape_hits = 0;
    tape_misses = 0;
    warm_hits = 0;
    warm_shape_hits = 0;
    warm_procs_hits = 0;
    warm_misses = 0;
    coalesce_leaders = 0;
    coalesce_hits = 0;
  }

let locked t f = Mutex.protect t.lock f

let tape t key ~compile =
  let cached =
    locked t (fun () ->
        match Lru.find t.tapes key with
        | Some c ->
            t.tape_hits <- t.tape_hits + 1;
            Some c
        | None ->
            t.tape_misses <- t.tape_misses + 1;
            None)
  in
  match cached with
  | Some c -> (Convex.Solver.share_tape c, `Hit)
  | None ->
      (* Compile outside the lock: tape compilation of a large MDG is
         the expensive step, and other keys' requests must not queue
         behind it.  A concurrent miss on the same key compiles twice
         and the second insertion is dropped. *)
      let c = compile () in
      locked t (fun () ->
          if not (Lru.mem t.tapes key) then
            ignore (Lru.set t.tapes key c : (key * _) option));
      (c, `Miss)

(* Private copies both ways: cached optima must not alias arrays the
   caller (or a concurrent domain) can mutate. *)
let copy_result (r : Allocation.result) =
  {
    r with
    alloc = Array.copy r.alloc;
    solver = { r.solver with x = Array.copy r.solver.x };
  }

(* Rescale an optimum stored for [p] processors to [p'] in log space:
   every allocation is shifted by log(p'/p) — the same share of the new
   machine — then clamped into the new box [0, log p'].  A directional
   heuristic only; the caller still gates the seed through the solver's
   warm-start probe. *)
let rescale_seed x ~from_procs ~to_procs =
  let shift = log (float_of_int to_procs /. float_of_int from_procs) in
  let hi = log (float_of_int to_procs) in
  Array.map (fun v -> Float.min hi (Float.max 0.0 (v +. shift))) x

let warm t key =
  locked t (fun () ->
      match Lru.find t.warm_exact key with
      | Some r ->
          t.warm_hits <- t.warm_hits + 1;
          Some (Exact (copy_result r))
      | None -> (
          match Lru.find t.warm_shape key.graph_hash with
          | None ->
              t.warm_misses <- t.warm_misses + 1;
              None
          | Some by_procs -> (
              match Hashtbl.find_opt by_procs key.procs with
              | Some x ->
                  t.warm_shape_hits <- t.warm_shape_hits + 1;
                  Some (Seed (Array.copy x))
              | None ->
                  (* Same shape at a different machine size: seed from
                     the stored optimum with the nearest procs ratio
                     (ties towards the larger machine). *)
                  let best =
                    Hashtbl.fold
                      (fun p x acc ->
                        let d =
                          Float.abs
                            (log (float_of_int key.procs /. float_of_int p))
                        in
                        match acc with
                        | Some (dp, p', _) when d > dp || (d = dp && p < p')
                          ->
                            acc
                        | _ -> Some (d, p, x))
                      by_procs None
                  in
                  (match best with
                  | Some (_, p, x) ->
                      t.warm_procs_hits <- t.warm_procs_hits + 1;
                      Some
                        (Seed
                           (rescale_seed x ~from_procs:p ~to_procs:key.procs))
                  | None ->
                      t.warm_misses <- t.warm_misses + 1;
                      None))))

let tape_cached t key =
  locked t (fun () ->
      let resident = Lru.mem t.tapes key in
      if resident then t.tape_hits <- t.tape_hits + 1;
      resident)

let store_warm t key result =
  let result = copy_result result in
  locked t (fun () ->
      ignore (Lru.set t.warm_exact key result : (key * _) option);
      (* The shape seed may outlive its exact entry; that is fine — it
         is only ever a starting point. *)
      let by_procs =
        match Lru.find t.warm_shape key.graph_hash with
        | Some h -> h
        | None ->
            let h = Hashtbl.create 4 in
            ignore (Lru.set t.warm_shape key.graph_hash h : (int64 * _) option);
            h
      in
      (if (not (Hashtbl.mem by_procs key.procs))
          && Hashtbl.length by_procs >= max_procs_per_shape
       then
         (* Make room by dropping the machine size least likely to seed
            a request near the newcomer: the farthest in log ratio. *)
         let victim =
           Hashtbl.fold
             (fun p _ acc ->
               let d =
                 Float.abs (log (float_of_int key.procs /. float_of_int p))
               in
               match acc with
               | Some (dp, _) when dp >= d -> acc
               | _ -> Some (d, p))
             by_procs None
         in
         match victim with
         | Some (_, p) -> Hashtbl.remove by_procs p
         | None -> ());
      Hashtbl.replace by_procs key.procs result.solver.x)

(* ------------------------------------------------------------------ *)
(* Singleflight coalescing                                             *)
(* ------------------------------------------------------------------ *)

let coalesce t key ~solve =
  let role =
    locked t (fun () ->
        match Hashtbl.find_opt t.inflight key with
        | Some f ->
            f.fwaiters <- f.fwaiters + 1;
            `Follow f
        | None ->
            let f = { fcond = Condition.create (); fstate = Pending; fwaiters = 0 } in
            Hashtbl.replace t.inflight key f;
            t.coalesce_leaders <- t.coalesce_leaders + 1;
            `Lead f)
  in
  match role with
  | `Lead f -> (
      (* The solve runs outside the lock: it re-enters the cache
         ([tape]/[warm]/[store_warm]) and can take hundreds of
         milliseconds.  Publication removes the flight first, so a
         request arriving after completion starts fresh (and will find
         the stored warm entry instead of a stale flight). *)
      let publish state =
        locked t (fun () ->
            f.fstate <- state;
            Hashtbl.remove t.inflight key;
            Condition.broadcast f.fcond)
      in
      match solve () with
      | r ->
          publish (Done (copy_result r));
          (r, `Leader)
      | exception exn ->
          publish (Failed exn);
          raise exn)
  | `Follow f -> (
      let outcome =
        locked t (fun () ->
            let rec wait () =
              match f.fstate with
              | Pending ->
                  Condition.wait f.fcond t.lock;
                  wait ()
              | Done r ->
                  t.coalesce_hits <- t.coalesce_hits + 1;
                  Done (copy_result r)
              | Failed _ as s -> s
            in
            wait ())
      in
      match outcome with
      | Done r -> (r, `Follower)
      | Failed exn -> raise exn
      | Pending -> assert false)

let waiting t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.inflight key with
      | Some f -> f.fwaiters
      | None -> 0)

let stats t =
  locked t (fun () ->
      {
        tape_hits = t.tape_hits;
        tape_misses = t.tape_misses;
        warm_hits = t.warm_hits;
        warm_shape_hits = t.warm_shape_hits;
        warm_procs_hits = t.warm_procs_hits;
        warm_misses = t.warm_misses;
        coalesce_leaders = t.coalesce_leaders;
        coalesce_hits = t.coalesce_hits;
        tape_entries = Lru.length t.tapes;
        warm_entries = Lru.length t.warm_exact;
      })

let clear t =
  locked t (fun () ->
      Lru.clear t.tapes;
      Lru.clear t.warm_exact;
      Lru.clear t.warm_shape;
      (* In-flight solves are left alone: their leaders publish to the
         flight records the waiters hold directly, so clearing mid-solve
         cannot strand anyone. *)
      t.tape_hits <- 0;
      t.tape_misses <- 0;
      t.warm_hits <- 0;
      t.warm_shape_hits <- 0;
      t.warm_procs_hits <- 0;
      t.warm_misses <- 0;
      t.coalesce_leaders <- 0;
      t.coalesce_hits <- 0)

type key = { graph_hash : int64; fingerprint : int64; procs : int }

type stats = {
  tape_hits : int;
  tape_misses : int;
  warm_hits : int;
  warm_shape_hits : int;
  warm_misses : int;
  tape_entries : int;
  warm_entries : int;
}

type warm_hit = Exact of Allocation.result | Seed of Numeric.Vec.t

type t = {
  lock : Mutex.t;
  max_tapes : int;
  max_warm : int;
  tapes : (key, Convex.Solver.compiled) Hashtbl.t;
  tape_order : key Queue.t;
  warm_exact : (key, Allocation.result) Hashtbl.t;
  warm_order : key Queue.t;
  (* Latest optimum per (graph_hash, procs) shape, whatever the
     fingerprint — the near-duplicate seed. *)
  warm_shape : (int64 * int, Numeric.Vec.t) Hashtbl.t;
  mutable tape_hits : int;
  mutable tape_misses : int;
  mutable warm_hits : int;
  mutable warm_shape_hits : int;
  mutable warm_misses : int;
}

let create ?(max_tapes = 64) ?(max_warm = 512) () =
  if max_tapes < 1 || max_warm < 1 then
    invalid_arg "Plan_cache.create: bounds must be >= 1";
  {
    lock = Mutex.create ();
    max_tapes;
    max_warm;
    tapes = Hashtbl.create 32;
    tape_order = Queue.create ();
    warm_exact = Hashtbl.create 64;
    warm_order = Queue.create ();
    warm_shape = Hashtbl.create 32;
    tape_hits = 0;
    tape_misses = 0;
    warm_hits = 0;
    warm_shape_hits = 0;
    warm_misses = 0;
  }

let locked t f = Mutex.protect t.lock f

let shape_of key = (key.graph_hash, key.procs)

let tape t key ~compile =
  let cached =
    locked t (fun () ->
        match Hashtbl.find_opt t.tapes key with
        | Some c ->
            t.tape_hits <- t.tape_hits + 1;
            Some c
        | None ->
            t.tape_misses <- t.tape_misses + 1;
            None)
  in
  match cached with
  | Some c -> (Convex.Solver.share_tape c, `Hit)
  | None ->
      (* Compile outside the lock: tape compilation of a large MDG is
         the expensive step, and other keys' requests must not queue
         behind it.  A concurrent miss on the same key compiles twice
         and the second insertion is dropped. *)
      let c = compile () in
      locked t (fun () ->
          if not (Hashtbl.mem t.tapes key) then begin
            if Queue.length t.tape_order >= t.max_tapes then
              Hashtbl.remove t.tapes (Queue.pop t.tape_order);
            Hashtbl.add t.tapes key c;
            Queue.add key t.tape_order
          end);
      (c, `Miss)

(* Private copies both ways: cached optima must not alias arrays the
   caller (or a concurrent domain) can mutate. *)
let copy_result (r : Allocation.result) =
  {
    r with
    alloc = Array.copy r.alloc;
    solver = { r.solver with x = Array.copy r.solver.x };
  }

let warm t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.warm_exact key with
      | Some r ->
          t.warm_hits <- t.warm_hits + 1;
          Some (Exact (copy_result r))
      | None -> (
          match Hashtbl.find_opt t.warm_shape (shape_of key) with
          | Some x ->
              t.warm_shape_hits <- t.warm_shape_hits + 1;
              Some (Seed (Array.copy x))
          | None ->
              t.warm_misses <- t.warm_misses + 1;
              None))

let tape_cached t key =
  locked t (fun () ->
      let resident = Hashtbl.mem t.tapes key in
      if resident then t.tape_hits <- t.tape_hits + 1;
      resident)

let store_warm t key result =
  let result = copy_result result in
  locked t (fun () ->
      if not (Hashtbl.mem t.warm_exact key) then begin
        if Queue.length t.warm_order >= t.max_warm then begin
          let old = Queue.pop t.warm_order in
          Hashtbl.remove t.warm_exact old;
          (* The shape seed may outlive its exact entry; that is fine —
             it is only ever a starting point. *)
        end;
        Queue.add key t.warm_order
      end;
      Hashtbl.replace t.warm_exact key result;
      Hashtbl.replace t.warm_shape (shape_of key) result.solver.x)

let stats t =
  locked t (fun () ->
      {
        tape_hits = t.tape_hits;
        tape_misses = t.tape_misses;
        warm_hits = t.warm_hits;
        warm_shape_hits = t.warm_shape_hits;
        warm_misses = t.warm_misses;
        tape_entries = Hashtbl.length t.tapes;
        warm_entries = Hashtbl.length t.warm_exact;
      })

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tapes;
      Hashtbl.reset t.warm_exact;
      Hashtbl.reset t.warm_shape;
      Queue.clear t.tape_order;
      Queue.clear t.warm_order;
      t.tape_hits <- 0;
      t.tape_misses <- 0;
      t.warm_hits <- 0;
      t.warm_shape_hits <- 0;
      t.warm_misses <- 0)

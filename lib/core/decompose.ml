module E = Convex.Expr
module G = Mdg.Graph
module P = Costmodel.Params
module T = Costmodel.Transfer
module Vec = Numeric.Vec
module Admm = Convex.Admm

type mode = Off | Auto | On

type options = {
  mode : mode;
  target_blocks : int;
  node_threshold : int;
  prox_weight : float;
  admm : Admm.options;
}

let default_options =
  {
    mode = Auto;
    target_blocks = 8;
    node_threshold = 2000;
    prox_weight = 0.05;
    admm = Admm.default_options;
  }

type stats = {
  blocks : int;
  cut_edges : int;
  consensus : int;
  phi_admm : float;
  admm : Admm.stats;
}

let active options g =
  match options.mode with
  | Off -> false
  | On -> true
  | Auto -> G.num_nodes g > options.node_threshold

(* A built block: the Admm spec plus the index metadata needed to seed
   the η copies from upstream blocks before the first solve. *)
type built = {
  spec : Admm.block;
  imp_srcs : int array;  (** global ids of imported boundary sources *)
  exp_srcs : int array;  (** global ids of exported boundary sources *)
  x0 : Vec.t;  (** mutable: η entries are filled by the init pass *)
  n_members : int;
}

let dedup_sorted l =
  let a = List.sort_uniq compare l in
  Array.of_list a

let consensus ?(obs = Obs.null) ~options ~phi params g ~procs =
  let part = Mdg.Partition.partition ~target:options.target_blocks g in
  let nb = Mdg.Partition.num_blocks part in
  if nb < 2 then None
  else begin
    let n = G.num_nodes g in
    let lnp = log (float_of_int procs) in
    let x0g = Vec.create n (0.5 *. lnp) in
    (* One monolithic evaluation fixes the time scale everything else
       hangs off: the proximal weight, the η boxes, and (inside Admm)
       the initial ρ. *)
    let scale0 = Float.max (phi x0g) 1e-9 in
    let eta_hi = (20.0 *. scale0) +. 1.0 in
    let w_prox = (options.prox_weight *. scale0) ** 2.0 in
    let tr = P.transfer params in
    let topo = Mdg.Analysis.topological_order g in
    (* Consensus slots: one per distinct cut-edge source, ascending. *)
    let key_of = Array.make n (-1) in
    let sources =
      dedup_sorted
        (Array.to_list (Array.map (fun (e : G.edge) -> e.src) part.cut_edges))
    in
    Array.iteri (fun key m -> key_of.(m) <- key) sources;
    let n_cons = Array.length sources in
    (* Position of every node inside its owning block (members are
       stored ascending, so the position is the rank). *)
    let loc = Array.make n (-1) in
    Array.iter
      (fun members -> Array.iteri (fun li id -> loc.(id) <- li) members)
      part.blocks;
    let stop = G.stop_node g in
    let build k =
      let members = part.blocks.(k) in
      let nk = Array.length members in
      let local = Array.make n (-1) in
      Array.iteri (fun li id -> local.(id) <- li) members;
      let imp_srcs = ref [] and exp_srcs = ref [] and exts = ref [] in
      Array.iter
        (fun (e : G.edge) ->
          if part.block_of.(e.dst) = k then begin
            imp_srcs := e.src :: !imp_srcs;
            exts := e.src :: !exts
          end;
          if part.block_of.(e.src) = k then begin
            exp_srcs := e.src :: !exp_srcs;
            exts := e.dst :: !exts
          end)
        part.cut_edges;
      let imp_srcs = dedup_sorted !imp_srcs in
      let exp_srcs = dedup_sorted !exp_srcs in
      let exts = dedup_sorted !exts in
      let ni = Array.length imp_srcs in
      let ne = Array.length exp_srcs in
      let nx = Array.length exts in
      let has_stop = part.block_of.(stop) = k in
      let ne_tot = ne + if has_stop then 1 else 0 in
      (* Variable layout: locals, η copies, then the pinned parameters
         (external allocations, consensus targets H/S/P, prox). *)
      let eta_of = Array.make n (-1) in
      Array.iteri (fun ii m -> eta_of.(m) <- nk + ii) imp_srcs;
      let ext_of = Array.make n (-1) in
      Array.iteri (fun xi m -> ext_of.(m) <- nk + ni + xi) exts;
      let h_base = nk + ni + nx in
      let s_param = h_base + ne_tot in
      let p_base = s_param + 1 in
      let x_base = p_base + ni in
      let nvars = x_base + nk in
      let vmap i = if local.(i) >= 0 then local.(i) else ext_of.(i) in
      let node_weight i =
        let nd = G.node g i in
        let recvs =
          List.map
            (fun (e : G.edge) ->
              T.receive_expr tr ~kind:e.kind ~bytes:e.bytes ~vi:(vmap e.src)
                ~vj:(vmap e.dst))
            (G.preds g i)
        in
        let sends =
          List.map
            (fun (e : G.edge) ->
              T.send_expr tr ~kind:e.kind ~bytes:e.bytes ~vi:(vmap e.src)
                ~vj:(vmap e.dst))
            (G.succs g i)
        in
        let proc =
          Costmodel.Processing.expr (P.processing params nd.kernel)
            ~var:(local.(i))
        in
        E.sum (recvs @ (proc :: sends))
      in
      let node_area i =
        let nd = G.node g i in
        let recvs =
          List.map
            (fun (e : G.edge) ->
              T.receive_times_p_expr tr ~kind:e.kind ~bytes:e.bytes
                ~vi:(vmap e.src) ~vj:(vmap e.dst))
            (G.preds g i)
        in
        let sends =
          List.map
            (fun (e : G.edge) ->
              T.send_times_p_expr tr ~kind:e.kind ~bytes:e.bytes
                ~vi:(vmap e.src) ~vj:(vmap e.dst))
            (G.succs g i)
        in
        let proc =
          Costmodel.Processing.expr_times_p (P.processing params nd.kernel)
            ~var:(local.(i))
        in
        E.sum (recvs @ (proc :: sends))
      in
      let area =
        E.scale
          (1.0 /. float_of_int procs)
          (E.sum (Array.to_list (Array.map node_area members)))
      in
      (* Block finish-time recurrence: in-block predecessors chain
         directly; cut predecessors arrive through their η copy. *)
      let y = Array.make nk None in
      List.iter
        (fun i ->
          if local.(i) >= 0 then begin
            let arrivals =
              List.map
                (fun (e : G.edge) ->
                  let d =
                    T.network_expr tr ~kind:e.kind ~bytes:e.bytes
                      ~vi:(vmap e.src) ~vj:(vmap e.dst)
                  in
                  let ysrc =
                    if local.(e.src) >= 0 then Option.get y.(local.(e.src))
                    else E.affine ~bias:0.0 ~coefs:[ (eta_of.(e.src), 1.0) ]
                  in
                  E.add ysrc d)
                (G.preds g i)
            in
            let start =
              match arrivals with [] -> E.const 0.0 | _ -> E.max_ arrivals
            in
            y.(local.(i)) <- Some (E.add start (node_weight i))
          end)
        topo;
      let export_exprs =
        Array.init ne_tot (fun ei ->
            if ei < ne then Option.get y.(local.(exp_srcs.(ei)))
            else Option.get y.(local.(stop)))
      in
      let pens = ref [] in
      Array.iteri
        (fun ei ye ->
          pens :=
            E.hinge
              (E.add ye (E.affine ~bias:0.0 ~coefs:[ (h_base + ei, -1.0) ]))
            :: !pens)
        export_exprs;
      pens :=
        E.hinge (E.add area (E.affine ~bias:0.0 ~coefs:[ (s_param, -1.0) ]))
        :: !pens;
      Array.iteri
        (fun ii m ->
          ignore m;
          pens :=
            E.sq_affine ~bias:0.0
              ~coefs:[ (nk + ii, 1.0); (p_base + ii, -1.0) ]
            :: !pens)
        imp_srcs;
      for li = 0 to nk - 1 do
        pens :=
          E.scale w_prox
            (E.sq_affine ~bias:0.0 ~coefs:[ (li, 1.0); (x_base + li, -1.0) ])
          :: !pens
      done;
      let objective = E.sum (List.rev !pens) in
      let lo = Vec.create nvars 0.0 and hi = Vec.create nvars 0.0 in
      let x0 = Vec.create nvars 0.0 in
      for li = 0 to nk - 1 do
        hi.(li) <- lnp;
        x0.(li) <- x0g.(members.(li));
        (* prox params start at the initial iterate *)
        lo.(x_base + li) <- x0.(li);
        hi.(x_base + li) <- x0.(li);
        x0.(x_base + li) <- x0.(li)
      done;
      for ii = 0 to ni - 1 do
        hi.(nk + ii) <- eta_hi
        (* x0 η entries are seeded by the init pass below *)
      done;
      Array.iteri
        (fun xi m ->
          let p = nk + ni + xi in
          lo.(p) <- x0g.(m);
          hi.(p) <- x0g.(m);
          x0.(p) <- x0g.(m);
          ignore xi)
        exts;
      (* H/S/P parameter slots stay pinned at 0 until Admm's first
         set_params; the measure exprs never read them. *)
      let exports =
        Array.init ne_tot (fun ei ->
            if ei < ne then
              { Admm.key = key_of.(exp_srcs.(ei)); param = h_base + ei }
            else { Admm.key = -1; param = h_base + ei })
      in
      let imports =
        Array.init ni (fun ii ->
            {
              Admm.key = key_of.(imp_srcs.(ii));
              copy = nk + ii;
              param = p_base + ii;
            })
      in
      let links =
        Array.map (fun m -> (ext_of.(m), (part.block_of.(m), loc.(m)))) exts
      in
      let prox = Array.init nk (fun li -> (li, x_base + li)) in
      let measure x =
        (Array.map (fun e -> E.eval e x) export_exprs, E.eval area x)
      in
      {
        spec =
          {
            Admm.objective;
            lo;
            hi;
            x0;
            exports;
            imports;
            area_param = s_param;
            prox;
            links;
            measure;
          };
        imp_srcs;
        exp_srcs;
        x0;
        n_members = nk;
      }
    in
    let built = Array.init nb build in
    (* Seed the η copies: blocks are topologically monotone, so one
       ascending pass computes every boundary finish time at x0 before
       any block that imports it is measured. *)
    let h0 = Array.make (Int.max n_cons 1) 0.0 in
    Array.iter
      (fun b ->
        Array.iteri
          (fun ii m -> b.x0.(b.n_members + ii) <- h0.(key_of.(m)))
          b.imp_srcs;
        let ys, _ = b.spec.Admm.measure b.x0 in
        Array.iteri (fun ei m -> h0.(key_of.(m)) <- ys.(ei)) b.exp_srcs)
      built;
    let assemble sols =
      let xg = Array.make n 0.0 in
      Array.iteri
        (fun k members ->
          Array.iteri (fun li id -> xg.(id) <- sols.(k).(li)) members)
        part.blocks;
      xg
    in
    let cost sols = phi (assemble sols) in
    let res =
      Admm.run ~obs ~options:options.admm ~n_cons ~cost
        (Array.map (fun b -> b.spec) built)
    in
    let xg = assemble res.Admm.solutions in
    (* The consensus point feeds the monolithic polish; keep it inside
       the monolithic box. *)
    let xg =
      Vec.clamp ~lo:(Vec.create n 0.0) ~hi:(Vec.create n lnp) xg
    in
    Some
      ( xg,
        {
          blocks = nb;
          cut_edges = Array.length part.cut_edges;
          consensus = n_cons;
          phi_admm = res.Admm.phi;
          admm = res.Admm.stats;
        } )
  end

module G = Mdg.Graph
module Pow2 = Numeric.Pow2

type pb_choice = Auto | Fixed of int | Unbounded

type rounding = Nearest | Floor | Ceil

type priority = Lowest_est | Fifo

type options = {
  pb : pb_choice;
  rounding : rounding;
  priority : priority;
}

let default_options = { pb = Auto; rounding = Nearest; priority = Lowest_est }

type result = {
  schedule : Schedule.t;
  rounded_alloc : int array;
  pb : int;
  t_psa : float;
}

let round_allocation ~rounding ~procs alloc =
  if procs < 1 then invalid_arg "Psa.round_allocation: procs < 1";
  let cap = Pow2.floor_pow2 procs in
  Array.map
    (fun p ->
      if p < 1.0 || not (Float.is_finite p) then
        invalid_arg "Psa.round_allocation: allocation entry < 1";
      let rounded =
        match rounding with
        | Nearest -> Pow2.nearest_pow2 p
        | Floor -> Pow2.floor_pow2 (int_of_float (Float.floor p))
        | Ceil -> Pow2.ceil_pow2 (int_of_float (Float.ceil p))
      in
      Int.min rounded cap)
    alloc

let apply_bound ~pb alloc =
  if not (Pow2.is_pow2 pb) then
    invalid_arg "Psa.apply_bound: PB must be a power of two";
  Array.map (fun p -> Int.min p pb) alloc

(* List scheduling.  [avail.(p)] is the time processor [p] becomes
   free.  For a node needing k processors we take the k earliest-free
   processors; PST is the k-th smallest availability. *)
let list_schedule ~obs ~priority ~procs ~node_weight ~edge_weight ~alloc g =
  let n = G.num_nodes g in
  let avail = Array.make procs 0.0 in
  (* Reusable buffer for selecting the k least-loaded processors —
     the scheduler's hot path.  A partial selection over this single
     array replaces the per-node [List.init] + full sort. *)
  let order = Array.init procs (fun p -> p) in
  let finish = Array.make n 0.0 in
  let scheduled = Array.make n false in
  let remaining_preds = Array.make n 0 in
  for i = 0 to n - 1 do
    remaining_preds.(i) <- List.length (G.preds g i)
  done;
  let est = Array.make n 0.0 in
  (* Ready pool with deterministic ordering. *)
  let module Ready = Set.Make (struct
    type t = float * int * int
    (* (priority key, insertion seq, node) *)

    let compare = compare
  end) in
  let ready = ref Ready.empty in
  let seq = ref 0 in
  let push node =
    let key =
      match priority with
      | Lowest_est -> est.(node)
      | Fifo -> float_of_int !seq
    in
    ready := Ready.add (key, !seq, node) !ready;
    incr seq
  in
  push (G.start_node g);
  let entries = ref [] in
  let continue = ref true in
  while !continue do
    match Ready.min_elt_opt !ready with
    | None -> continue := false
    | Some ((_, _, node) as elt) ->
        ready := Ready.remove elt !ready;
        let k = Int.min alloc.(node) procs in
        (* Pick the k earliest-available processors (ties by lowest
           id): an in-place partial selection sort of [order] — only
           the first k positions are ordered, and nothing is
           allocated beyond the [chosen] array the schedule entry
           keeps anyway. *)
        for p = 0 to procs - 1 do
          order.(p) <- p
        done;
        for j = 0 to k - 1 do
          let best = ref j in
          for l = j + 1 to procs - 1 do
            let pl = order.(l) and pb = order.(!best) in
            if avail.(pl) < avail.(pb) || (avail.(pl) = avail.(pb) && pl < pb)
            then best := l
          done;
          let tmp = order.(j) in
          order.(j) <- order.(!best);
          order.(!best) <- tmp
        done;
        let chosen = Array.sub order 0 k in
        Array.sort Int.compare chosen;
        let pst =
          Array.fold_left (fun acc p -> Float.max acc avail.(p)) 0.0 chosen
        in
        let start = Float.max est.(node) pst in
        let w = node_weight node in
        let fin = start +. w in
        Array.iter (fun p -> avail.(p) <- fin) chosen;
        finish.(node) <- fin;
        scheduled.(node) <- true;
        if Obs.enabled obs then
          Obs.instant obs ~cat:"psa" "psa.place"
            ~args:
              [
                ("node", Obs.Events.Int node);
                ("procs", Obs.Events.Int k);
                ("est", Obs.Events.Float est.(node));
                ("pst", Obs.Events.Float pst);
                ("start", Obs.Events.Float start);
                ("finish", Obs.Events.Float fin);
              ];
        entries :=
          { Schedule.node; procs = chosen; start; finish = fin } :: !entries;
        (* Release successors whose predecessors are now all done. *)
        List.iter
          (fun (e : G.edge) ->
            remaining_preds.(e.dst) <- remaining_preds.(e.dst) - 1;
            est.(e.dst) <-
              Float.max est.(e.dst) (finish.(e.src) +. edge_weight e);
            if remaining_preds.(e.dst) = 0 then push e.dst)
          (G.succs g node)
  done;
  if Array.exists not scheduled then
    invalid_arg "Psa.list_schedule: graph not fully scheduled (not normalised?)";
  Schedule.make ~machine_procs:procs (List.rev !entries)

let schedule ?(options = default_options) ?(obs = Obs.null) params g ~procs
    ~alloc =
  if not (G.is_normalised g) then
    invalid_arg "Psa.schedule: graph must be normalised";
  if Array.length alloc <> G.num_nodes g then
    invalid_arg "Psa.schedule: allocation length mismatch";
  let pb =
    match options.pb with
    | Auto -> Bounds.optimal_pb ~procs
    | Fixed pb ->
        if not (Pow2.is_pow2 pb) || pb > procs then
          invalid_arg "Psa.schedule: fixed PB must be a power of two <= procs";
        pb
    | Unbounded -> Pow2.floor_pow2 procs
  in
  let rounded = round_allocation ~rounding:options.rounding ~procs alloc in
  let bounded = apply_bound ~pb rounded in
  (* Per-node rounding trail: the convex program's continuous p_i, its
     power-of-two rounding, and the PB clamp actually applied. *)
  if Obs.enabled obs then
    Array.iteri
      (fun i p ->
        Obs.instant obs ~cat:"psa" "psa.round"
          ~args:
            [
              ("node", Obs.Events.Int i);
              ("continuous", Obs.Events.Float p);
              ("pow2", Obs.Events.Int rounded.(i));
              ("clamped", Obs.Events.Int bounded.(i));
              ("pb", Obs.Events.Int pb);
            ])
      alloc;
  let allocf i = float_of_int bounded.(i) in
  let node_weight i = Costmodel.Weights.node_weight params g ~alloc:allocf i in
  let edge_weight e = Costmodel.Weights.edge_weight params ~alloc:allocf e in
  let sched =
    list_schedule ~obs ~priority:options.priority ~procs ~node_weight
      ~edge_weight ~alloc:bounded g
  in
  {
    schedule = sched;
    rounded_alloc = bounded;
    pb;
    t_psa = (Schedule.entry sched (G.stop_node g)).finish;
  }

(** The Prioritised Scheduling Algorithm (paper Section 3).

    Steps:
    + round the convex program's real allocation to the nearest power
      of two (never changing a node's allocation by more than a factor
      in [2/3, 4/3]);
    + clamp every allocation to the processor bound PB chosen by
      Corollary 1 (or supplied explicitly);
    + recompute node and edge weights under the new allocation;
    + list-schedule: repeatedly pick the ready node with the lowest
      Earliest Start Time and place it on the required number of
      processors at [max(EST, PST)], where PST is the earliest time
      that many processors are simultaneously free. *)

type pb_choice =
  | Auto           (** Corollary 1's optimal power of two *)
  | Fixed of int   (** explicit bound (must be a power of two) *)
  | Unbounded      (** skip the bounding step (PB = machine size) *)

type rounding =
  | Nearest  (** paper's rounding-off step *)
  | Floor    (** ablation: always round down *)
  | Ceil     (** ablation: always round up (clamped to the machine) *)

type priority =
  | Lowest_est  (** paper's prioritisation *)
  | Fifo        (** ablation: plain list scheduling in ready order *)

type options = {
  pb : pb_choice;
  rounding : rounding;
  priority : priority;
}

val default_options : options

type result = {
  schedule : Schedule.t;
  rounded_alloc : int array;   (** after rounding and bounding *)
  pb : int;                    (** the bound actually applied *)
  t_psa : float;               (** finish time of STOP — the PSA's
                                   predicted program finish time *)
}

val round_allocation :
  rounding:rounding -> procs:int -> float array -> int array
(** Steps 1 of the PSA in isolation (exposed for tests/ablation):
    power-of-two rounding clamped to the largest power of two that is
    [<=] the machine size. *)

val apply_bound : pb:int -> int array -> int array
(** Step 2: clamp to PB.  Raises [Invalid_argument] if [pb] is not a
    power of two. *)

val schedule :
  ?options:options ->
  ?obs:Obs.t ->
  Costmodel.Params.t ->
  Mdg.Graph.t ->
  procs:int ->
  alloc:float array ->
  result
(** Run the full PSA on a normalised graph with the given real-valued
    allocation (typically {!Allocation.solve}[.alloc]).

    With a live [obs] sink (default {!Obs.null}: no overhead) every
    node emits a ["psa.round"] instant recording its continuous
    allocation, power-of-two rounding and PB clamp, and every
    list-scheduling placement emits a ["psa.place"] instant with the
    node's EST, PST, start, finish and processor count. *)

(** Shared plan caches: compiled objective tapes and warm-start seeds.

    The planner answers heavy, highly repetitive traffic: many clients
    submit the same MDG shapes under the same (or nearby) cost
    constants and machine sizes.  Two caches amortise that repetition:

    - the {b tape cache} maps [(structural hash, cost fingerprint,
      procs)] to the objective's compiled instruction tape
      ({!Convex.Solver.compile}), so repeated requests skip the
      Expr-DAG construction-to-tape compilation;
    - the {b warm-start cache} maps the same key (exactly) and its
      shape projection [(structural hash, procs)] (approximately) to
      the last optimum found.  An exact duplicate is answered with the
      cached {!Allocation.result} outright — the solver is not
      re-entered at all — while a near-duplicate (same shape,
      perturbed constants) re-solves seeded at the cached optimum and
      skips the smoothing anneal when the warm-start probe allows it
      ({!Convex.Solver.solve}).  A known shape requested at a {e new}
      machine size seeds from the stored optimum with the nearest
      procs ratio, rescaled by [log(p'/p)] in the log-space
      allocation and clamped into the new box — a directional guess
      the solver's warm-start probe then vets, which turns per-[procs]
      sweeps over one program into shape hits instead of cold misses.

    Keys use {!Mdg.Graph.structural_hash} and
    {!Costmodel.Params.fingerprint}; because the structural hash
    ignores node labels, requests for the same computation under
    different names share entries.

    A third structure, the {b in-flight table}, coalesces concurrent
    identical misses: while one domain is solving a key, every other
    request for the same key blocks on the flight and shares the one
    result instead of solving again (see {!coalesce}).

    All operations are thread-safe (one internal mutex; compilation
    itself happens outside the lock).  Entry counts are bounded;
    insertion beyond the bound evicts the {e least recently used}
    entry ({!Lru}), so a hot working set survives a burst of one-off
    requests that a FIFO would have let push it out.  Typically one
    cache is created per server (or per benchmark sweep) and passed to
    {!Pipeline.plan} via {!Pipeline.config.cache}. *)

type t

type key = { graph_hash : int64; fingerprint : int64; procs : int }

type stats = {
  tape_hits : int;
  tape_misses : int;
  warm_hits : int;       (** exact-key warm hits *)
  warm_shape_hits : int; (** same-shape, same-procs, different-fingerprint hits *)
  warm_procs_hits : int; (** same-shape, different-procs rescaled hits *)
  warm_misses : int;
  coalesce_leaders : int; (** in-flight solves led (one per coalesced group) *)
  coalesce_hits : int;    (** requests served by another request's solve *)
  tape_entries : int;
  warm_entries : int;
}

val create : ?max_tapes:int -> ?max_warm:int -> ?max_shapes:int -> unit -> t
(** [max_tapes] (default 64) bounds compiled-tape entries; [max_warm]
    (default 512) bounds exact warm-start entries; [max_shapes]
    (default 256) bounds the graph shapes carrying per-[procs] seed
    vectors (each shape holds at most a handful of machine sizes). *)

val tape :
  t -> key -> compile:(unit -> Convex.Solver.compiled) ->
  Convex.Solver.compiled * [ `Hit | `Miss ]
(** The compiled tape for [key], compiling (outside the lock) and
    inserting on a miss.  The returned value owns a private workspace
    ({!Convex.Solver.share_tape}) and may be used freely on the
    calling domain.  Two domains missing the same key concurrently
    both compile; one insertion wins — harmless, just redundant
    work. *)

type warm_hit =
  | Exact of Allocation.result
      (** The exact [(hash, fingerprint, procs)] entry: the previous
          solve's full result, reusable verbatim (the solver is
          deterministic, so re-solving the identical problem could only
          reproduce it).  Arrays are private copies. *)
  | Seed of Numeric.Vec.t
      (** The most recent log-space optimum of the same [(hash, procs)]
          shape under any fingerprint — or, when the shape has only
          been solved at other machine sizes, the nearest-procs
          optimum rescaled by [log(p'/p)] and clamped into the new
          box.  A starting point only. *)

val warm : t -> key -> warm_hit option

val tape_cached : t -> key -> bool
(** Whether a compiled tape for [key] is resident, without
    materialising a workspace; counts as a tape hit when it is.  Used
    by the exact-duplicate fast path, which answers without evaluating
    the objective. *)

val store_warm : t -> key -> Allocation.result -> unit
(** Record a completed solve under the exact key, and its optimum as
    the shape's most-recent seed. *)

(** {2 Singleflight coalescing}

    Under concurrent load, N identical cache misses arriving together
    would cost N cold solves of the same convex program.  {!coalesce}
    collapses them: the first caller for a key becomes the {e leader}
    and runs [solve] (outside the cache lock); every caller that
    arrives while that solve is in flight blocks and receives the
    leader's result (a private copy) without entering the solver.  If
    the leader's [solve] raises, the exception is re-raised in {e
    every} waiter — a failed solve wakes its followers with the error,
    it never hangs them — and nothing is published, so a later request
    retries from scratch.

    Coalescing is only sound when the key fully determines the result:
    callers whose solve depends on extra inputs (an explicit [x0]
    seed) must bypass it. *)

val coalesce :
  t ->
  key ->
  solve:(unit -> Allocation.result) ->
  Allocation.result * [ `Leader | `Follower ]
(** [`Leader] ran [solve] itself; [`Follower] was served by a
    concurrent leader's solve.  Either way the arrays in the returned
    result are private to the caller. *)

val waiting : t -> key -> int
(** Number of followers currently blocked on [key]'s in-flight solve
    (0 when none is in flight) — introspection for tests and
    telemetry. *)

val stats : t -> stats

val clear : t -> unit
(** Drop every entry and zero the counters. *)

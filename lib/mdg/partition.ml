type t = {
  blocks : int array array;
  block_of : int array;
  cut_edges : Graph.edge array;
}

let num_blocks p = Array.length p.blocks

(* Union-find with path compression; union by smaller root id keeps
   the representative deterministic. *)
let rec find uf i =
  if uf.(i) = i then i
  else begin
    let r = find uf uf.(i) in
    uf.(i) <- r;
    r
  end

let union uf i j =
  let ri = find uf i and rj = find uf j in
  if ri <> rj then if ri < rj then uf.(rj) <- ri else uf.(ri) <- rj

let partition ~target g =
  if target < 1 then invalid_arg "Partition.partition: target < 1";
  if not (Graph.is_normalised g) then
    invalid_arg "Partition.partition: graph must be normalised";
  let n = Graph.num_nodes g in
  let start = Graph.start_node g and stop = Graph.stop_node g in
  let interior i = i <> start && i <> stop in
  (* Topological positions drive both the slicing of oversized
     components and the final block order. *)
  let pos = Array.make n 0 in
  List.iteri (fun i id -> pos.(id) <- i) (Analysis.topological_order g);
  let uf = Array.init n (fun i -> i) in
  List.iter
    (fun (e : Graph.edge) ->
      if interior e.src && interior e.dst then union uf e.src e.dst)
    (Graph.edges g);
  (* Components of the interior, each sorted by topological position
     (ascending node id within equal positions cannot happen: positions
     are unique). *)
  let comp_tbl : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    if interior i then begin
      let r = find uf i in
      let l = Option.value (Hashtbl.find_opt comp_tbl r) ~default:[] in
      Hashtbl.replace comp_tbl r (i :: l)
    end
  done;
  let interior_count = Hashtbl.fold (fun _ l a -> a + List.length l) comp_tbl 0 in
  if interior_count = 0 || target = 1 then begin
    (* Nothing to decompose: one block holding everything. *)
    let all = Array.init n (fun i -> i) in
    {
      blocks = [| all |];
      block_of = Array.make n 0;
      cut_edges = [||];
    }
  end
  else begin
    let comps =
      Hashtbl.fold (fun _ l acc -> Array.of_list l :: acc) comp_tbl []
    in
    List.iter
      (fun c -> Array.sort (fun a b -> compare pos.(a) pos.(b)) c)
      comps;
    (* Fair share per block; components above it are sliced into
       contiguous segments of their topological order, so the only
       intra-component cut edges point from an earlier segment to a
       later one. *)
    let quota = Int.max 1 ((interior_count + target - 1) / target) in
    let pieces =
      List.concat_map
        (fun c ->
          let sz = Array.length c in
          if sz <= quota then [ c ]
          else begin
            let k = (sz + quota - 1) / quota in
            let chunk = (sz + k - 1) / k in
            List.init k (fun i ->
                let lo = i * chunk in
                Array.sub c lo (Int.min chunk (sz - lo)))
            |> List.filter (fun a -> Array.length a > 0)
          end)
        comps
    in
    (* Earliest-node order makes segment blocks monotone along every
       edge; pieces from different components carry no edges at all. *)
    let pieces =
      List.sort (fun a b -> compare pos.(a.(0)) pos.(b.(0))) pieces
    in
    (* Greedy linear merge into at most [target] balanced blocks. *)
    let blocks = ref [] in
    let current = ref [] and cur_size = ref 0 and closed = ref 0 in
    let close () =
      if !current <> [] then begin
        blocks := List.rev !current :: !blocks;
        incr closed;
        current := [];
        cur_size := 0
      end
    in
    List.iter
      (fun piece ->
        current := piece :: !current;
        cur_size := !cur_size + Array.length piece;
        if !cur_size >= quota && !closed < target - 1 then close ())
      pieces;
    close ();
    (* [!blocks] holds the most recently closed block first; rev_map
       restores closing order. *)
    let blocks = List.rev_map (fun ps -> Array.concat ps) !blocks in
    let blocks = Array.of_list blocks in
    let nb = Array.length blocks in
    (* START opens the first block, STOP closes the last; node ids
       ascending within each block for a canonical result. *)
    blocks.(0) <- Array.append [| start |] blocks.(0);
    blocks.(nb - 1) <- Array.append blocks.(nb - 1) [| stop |];
    Array.iter (fun b -> Array.sort compare b) blocks;
    let block_of = Array.make n 0 in
    Array.iteri
      (fun bi members -> Array.iter (fun id -> block_of.(id) <- bi) members)
      blocks;
    let cut_edges =
      List.filter
        (fun (e : Graph.edge) -> block_of.(e.src) <> block_of.(e.dst))
        (Graph.edges g)
      |> Array.of_list
    in
    { blocks; block_of; cut_edges }
  end

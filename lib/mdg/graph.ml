type kernel =
  | Matrix_init of int
  | Matrix_add of int
  | Matrix_multiply of int
  | Synthetic of { alpha : float; tau : float }
  | Dummy

type transfer_kind = Oned | Twod

type node = { id : int; label : string; kernel : kernel }

type edge = { src : int; dst : int; bytes : float; kind : transfer_kind }

type t = {
  nodes : node array;
  edges : edge list;
  preds : edge list array;
  succs : edge list array;
}

type builder = {
  mutable b_nodes : node list;  (* reverse order *)
  mutable b_edges : edge list;
  mutable b_count : int;
  pairs : (int * int, unit) Hashtbl.t;
}

let create_builder () =
  { b_nodes = []; b_edges = []; b_count = 0; pairs = Hashtbl.create 32 }

let add_node b ~label ~kernel =
  (match kernel with
  | Matrix_init n | Matrix_add n | Matrix_multiply n ->
      if n < 1 then invalid_arg "Graph.add_node: matrix size < 1"
  | Synthetic { alpha; tau } ->
      if alpha < 0.0 || alpha > 1.0 then
        invalid_arg "Graph.add_node: alpha outside [0,1]";
      if tau < 0.0 then invalid_arg "Graph.add_node: negative tau"
  | Dummy -> ());
  let id = b.b_count in
  b.b_nodes <- { id; label; kernel } :: b.b_nodes;
  b.b_count <- id + 1;
  id

let add_edge b ~src ~dst ~bytes ~kind =
  if src < 0 || src >= b.b_count then invalid_arg "Graph.add_edge: bad src";
  if dst < 0 || dst >= b.b_count then invalid_arg "Graph.add_edge: bad dst";
  if src = dst then invalid_arg "Graph.add_edge: self loop";
  if bytes < 0.0 || not (Float.is_finite bytes) then
    invalid_arg "Graph.add_edge: negative byte count";
  if Hashtbl.mem b.pairs (src, dst) then
    invalid_arg "Graph.add_edge: duplicate edge";
  Hashtbl.add b.pairs (src, dst) ();
  b.b_edges <- { src; dst; bytes; kind } :: b.b_edges

(* Kahn's algorithm; raises on cycles. *)
let check_acyclic ~n ~edges =
  let indeg = Array.make n 0 in
  List.iter (fun e -> indeg.(e.dst) <- indeg.(e.dst) + 1) edges;
  let out = Array.make n [] in
  List.iter (fun e -> out.(e.src) <- e.dst :: out.(e.src)) edges;
  let q = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i q) indeg;
  let visited = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    incr visited;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v q)
      out.(u)
  done;
  if !visited <> n then invalid_arg "Graph.build: edge relation has a cycle"

let of_nodes_edges nodes edges =
  let n = Array.length nodes in
  check_acyclic ~n ~edges;
  let preds = Array.make n [] in
  let succs = Array.make n [] in
  (* Keep deterministic order: edges sorted by (src, dst). *)
  let edges =
    List.sort (fun a b -> compare (a.src, a.dst) (b.src, b.dst)) edges
  in
  List.iter
    (fun e ->
      preds.(e.dst) <- preds.(e.dst) @ [ e ];
      succs.(e.src) <- succs.(e.src) @ [ e ])
    edges;
  { nodes; edges; preds; succs }

let build b =
  let nodes = Array.of_list (List.rev b.b_nodes) in
  if Array.length nodes = 0 then invalid_arg "Graph.build: empty graph";
  of_nodes_edges nodes b.b_edges

let num_nodes g = Array.length g.nodes

let nodes g = g.nodes

let node g i =
  if i < 0 || i >= num_nodes g then invalid_arg "Graph.node: bad index";
  g.nodes.(i)

let edges g = g.edges

let preds g i =
  if i < 0 || i >= num_nodes g then invalid_arg "Graph.preds: bad index";
  g.preds.(i)

let succs g i =
  if i < 0 || i >= num_nodes g then invalid_arg "Graph.succs: bad index";
  g.succs.(i)

let edge_between g ~src ~dst = List.find_opt (fun e -> e.dst = dst) g.succs.(src)

let sources g =
  Array.to_list g.nodes
  |> List.filter_map (fun nd -> if g.preds.(nd.id) = [] then Some nd.id else None)

let sinks g =
  Array.to_list g.nodes
  |> List.filter_map (fun nd -> if g.succs.(nd.id) = [] then Some nd.id else None)

let is_normalised g =
  match (sources g, sinks g) with
  | [ s ], [ t ] -> s <> t
  | _ -> false

let normalise g =
  if is_normalised g then g
  else begin
    let n = num_nodes g in
    let srcs = sources g in
    let snks = sinks g in
    let single_node = num_nodes g = 1 in
    let nodes = Array.to_list g.nodes in
    let extra = ref [] in
    let next = ref n in
    let edges = ref g.edges in
    let fresh label =
      let id = !next in
      incr next;
      extra := { id; label; kernel = Dummy } :: !extra;
      id
    in
    (match srcs with
    | [ _ ] when not single_node -> ()
    | _ ->
        let start = fresh "START" in
        List.iter
          (fun s ->
            edges := { src = start; dst = s; bytes = 0.0; kind = Oned } :: !edges)
          srcs);
    (match snks with
    | [ _ ] when not single_node -> ()
    | _ ->
        let stop = fresh "STOP" in
        List.iter
          (fun s ->
            edges := { src = s; dst = stop; bytes = 0.0; kind = Oned } :: !edges)
          snks);
    let all = Array.of_list (nodes @ List.rev !extra) in
    of_nodes_edges all !edges
  end

let start_node g =
  match sources g with
  | [ s ] -> s
  | _ -> invalid_arg "Graph.start_node: graph not normalised"

let stop_node g =
  match sinks g with
  | [ s ] -> s
  | _ -> invalid_arg "Graph.stop_node: graph not normalised"

let hash_kernel h (k : kernel) =
  let module F = Numeric.Fnv in
  match k with
  | Matrix_init n -> F.int (F.byte h 1) n
  | Matrix_add n -> F.int (F.byte h 2) n
  | Matrix_multiply n -> F.int (F.byte h 3) n
  | Synthetic { alpha; tau } -> F.float (F.float (F.byte h 4) alpha) tau
  | Dummy -> F.byte h 5

(* Structural identity for the plan caches: node kernels (in id order)
   and the edge relation with its transfer payloads.  Labels are
   deliberately excluded — they never enter the cost model, so two
   clients submitting the same computation under different node names
   share cache entries. *)
let structural_hash g =
  let module F = Numeric.Fnv in
  let h = F.int F.seed (num_nodes g) in
  let h = Array.fold_left (fun h nd -> hash_kernel h nd.kernel) h g.nodes in
  List.fold_left
    (fun h e ->
      let h = F.int (F.int h e.src) e.dst in
      let h = F.float h e.bytes in
      F.byte h (match e.kind with Oned -> 1 | Twod -> 2))
    h g.edges

let kernel_flops = function
  | Matrix_init n -> float_of_int (n * n)
  | Matrix_add n -> float_of_int (n * n)
  | Matrix_multiply n ->
      let nf = float_of_int n in
      2.0 *. nf *. nf *. nf
  | Synthetic _ | Dummy -> 0.0

let kernel_bytes = function
  | Matrix_init n | Matrix_add n | Matrix_multiply n -> float_of_int (8 * n * n)
  | Synthetic _ | Dummy -> 0.0

let pp_kernel fmt = function
  | Matrix_init n -> Format.fprintf fmt "init(%dx%d)" n n
  | Matrix_add n -> Format.fprintf fmt "add(%dx%d)" n n
  | Matrix_multiply n -> Format.fprintf fmt "mul(%dx%d)" n n
  | Synthetic { alpha; tau } ->
      Format.fprintf fmt "synthetic(alpha=%g, tau=%g)" alpha tau
  | Dummy -> Format.fprintf fmt "dummy"

let pp_transfer_kind fmt = function
  | Oned -> Format.fprintf fmt "1D"
  | Twod -> Format.fprintf fmt "2D"

let pp fmt g =
  Format.fprintf fmt "@[<v>MDG with %d nodes, %d edges@," (num_nodes g)
    (List.length g.edges);
  Array.iter
    (fun nd ->
      Format.fprintf fmt "  [%d] %s : %a@," nd.id nd.label pp_kernel nd.kernel)
    g.nodes;
  List.iter
    (fun e ->
      Format.fprintf fmt "  %d -> %d (%g bytes, %a)@," e.src e.dst e.bytes
        pp_transfer_kind e.kind)
    g.edges;
  Format.fprintf fmt "@]"

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let quote label =
  let buf = Buffer.create (String.length label + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    label;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* Parse a trailing quoted string starting at [start]; returns the
   label. *)
let unquote line lineno start =
  let n = String.length line in
  if start >= n || line.[start] <> '"' then fail lineno "expected quoted label";
  let buf = Buffer.create 16 in
  let rec go i =
    if i >= n then fail lineno "unterminated label"
    else
      match line.[i] with
      | '"' ->
          if i + 1 <> n then fail lineno "trailing characters after label";
          Buffer.contents buf
      | '\\' ->
          if i + 1 >= n then fail lineno "dangling escape";
          (match line.[i + 1] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | 'n' -> Buffer.add_char buf '\n'
          | c -> fail lineno "bad escape \\%c" c);
          go (i + 2)
      | c ->
          Buffer.add_char buf c;
          go (i + 1)
  in
  go (start + 1)

let kernel_to_string : Graph.kernel -> string = function
  | Matrix_init n -> Printf.sprintf "init:%d" n
  | Matrix_add n -> Printf.sprintf "add:%d" n
  | Matrix_multiply n -> Printf.sprintf "mul:%d" n
  | Synthetic { alpha; tau } -> Printf.sprintf "synthetic:%.17g:%.17g" alpha tau
  | Dummy -> "dummy"

let kernel_of_string s : (Graph.kernel, string) result =
  let bad () = Result.Error (Printf.sprintf "bad kernel %S" s) in
  let int n k =
    match int_of_string_opt n with Some n -> Ok (k n) | None -> bad ()
  in
  match String.split_on_char ':' s with
  | [ "dummy" ] -> Ok Graph.Dummy
  | [ "init"; n ] -> int n (fun n -> Graph.Matrix_init n)
  | [ "add"; n ] -> int n (fun n -> Graph.Matrix_add n)
  | [ "mul"; n ] -> int n (fun n -> Graph.Matrix_multiply n)
  | [ "synthetic"; a; t ] -> (
      match (float_of_string_opt a, float_of_string_opt t) with
      | Some alpha, Some tau -> Ok (Graph.Synthetic { alpha; tau })
      | _ -> bad ())
  | _ -> bad ()

let kernel_of_string_at lineno s : Graph.kernel =
  match kernel_of_string s with
  | Ok k -> k
  | Result.Error msg -> fail lineno "%s" msg

let kind_to_string : Graph.transfer_kind -> string = function
  | Oned -> "1d"
  | Twod -> "2d"

let kind_of_string lineno = function
  | "1d" -> Graph.Oned
  | "2d" -> Graph.Twod
  | s -> fail lineno "bad transfer kind %S" s

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "mdg\n";
  Array.iter
    (fun (nd : Graph.node) ->
      Buffer.add_string buf
        (Printf.sprintf "node %d %s %s\n" nd.id (kernel_to_string nd.kernel)
           (quote nd.label)))
    (Graph.nodes g);
  List.iter
    (fun (e : Graph.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "edge %d %d %.17g %s\n" e.src e.dst e.bytes
           (kind_to_string e.kind)))
    (Graph.edges g);
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let b = Graph.create_builder () in
  let next_id = ref 0 in
  let saw_header = ref false in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim raw in
      if line <> "" && line.[0] <> '#' then
        if not !saw_header then
          if line = "mdg" then saw_header := true
          else fail lineno "expected 'mdg' header"
        else
          match String.index_opt line ' ' with
          | None -> fail lineno "cannot parse line"
          | Some sp -> (
              let keyword = String.sub line 0 sp in
              let rest = String.sub line (sp + 1) (String.length line - sp - 1) in
              match keyword with
              | "node" -> (
                  (* node <id> <kernel> "<label>" *)
                  match String.split_on_char ' ' rest with
                  | id :: kernel :: _ ->
                      let id =
                        match int_of_string_opt id with
                        | Some i -> i
                        | None -> fail lineno "bad node id %S" id
                      in
                      if id <> !next_id then
                        fail lineno "node ids must be dense and ordered (got %d, expected %d)"
                          id !next_id;
                      let kernel = kernel_of_string_at lineno kernel in
                      (* The label is the first '"' on the line. *)
                      let qpos =
                        match String.index_opt line '"' with
                        | Some q -> q
                        | None -> fail lineno "missing label"
                      in
                      let label = unquote line lineno qpos in
                      let got = Graph.add_node b ~label ~kernel in
                      assert (got = id);
                      incr next_id
                  | _ -> fail lineno "cannot parse node line")
              | "edge" -> (
                  match String.split_on_char ' ' rest with
                  | [ src; dst; bytes; kind ] ->
                      let int_field name v =
                        match int_of_string_opt v with
                        | Some i -> i
                        | None -> fail lineno "bad %s %S" name v
                      in
                      let bytes =
                        match float_of_string_opt bytes with
                        | Some f -> f
                        | None -> fail lineno "bad bytes %S" bytes
                      in
                      Graph.add_edge b ~src:(int_field "src" src)
                        ~dst:(int_field "dst" dst) ~bytes
                        ~kind:(kind_of_string lineno kind)
                  | _ -> fail lineno "cannot parse edge line")
              | other -> fail lineno "unknown keyword %S" other))
    lines;
  if not !saw_header then fail 0 "missing 'mdg' header";
  Graph.build b

let save path g =
  let oc = open_out path in
  output_string oc (to_string g);
  close_out oc

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text

(** MDG partitioning for the decomposed (consensus-ADMM) solver.

    The allocation objective is separable by construction: node terms
    couple only through the shared [A_p]/[C_p] bound, and the finish-
    time recurrence couples a node only to its predecessors.  Cutting
    the MDG into blocks therefore cuts the convex program into block
    subproblems that talk through (a) the global area/critical-path
    consensus and (b) the finish times of cut-edge sources.

    Strategy: drop START/STOP, take the weakly-connected components of
    the interior (divide-combine workloads often split cleanly), and
    slice any component larger than its fair share into contiguous
    segments of the topological order — the critical-path recurrence
    then only crosses block boundaries forward.  Pieces are merged
    greedily (in topological order of their earliest node) into at
    most [target] balanced blocks; START joins the first block and
    STOP the last.

    Invariants, relied on by {!Core.Decompose} and pinned by the
    property suite:
    - every node appears in exactly one block;
    - blocks are non-empty, node ids ascending within a block;
    - for every edge, [block_of src <= block_of dst] (so imports
      always come from earlier-or-same blocks);
    - the result is deterministic for a given graph and [target]. *)

type t = private {
  blocks : int array array;  (** block -> member node ids, ascending *)
  block_of : int array;  (** node id -> owning block *)
  cut_edges : Graph.edge array;
      (** edges whose endpoints live in different blocks, in
          {!Graph.edges} order *)
}

val partition : target:int -> Graph.t -> t
(** Partition a {e normalised} graph into at most [target] blocks
    (fewer when the graph is small; at least one).  Raises
    [Invalid_argument] if the graph is not normalised or
    [target < 1]. *)

val num_blocks : t -> int

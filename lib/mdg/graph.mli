(** Macro Dataflow Graphs (paper Section 1.1).

    A weighted DAG whose nodes correspond to loop nests of a program
    and whose edges correspond to precedence constraints carrying data
    transfers.  Node weights (processing + send/receive costs) and edge
    weights (network costs) are *not* stored here — they are functions
    of the processor allocation and are provided by [Costmodel]; the
    graph only records the structural data those functions need: the
    kernel each node runs and the bytes/kind of each transfer. *)

type kernel =
  | Matrix_init of int
      (** initialise an N×N matrix *)
  | Matrix_add of int
      (** add two N×N matrices *)
  | Matrix_multiply of int
      (** multiply two N×N matrices *)
  | Synthetic of { alpha : float; tau : float }
      (** a loop with explicitly given Amdahl parameters (used for the
          paper's Figure 1 example and for random test graphs) *)
  | Dummy
      (** zero-cost START/STOP marker *)

type transfer_kind =
  | Oned  (** ROW2ROW / COL2COL: same distribution dimension *)
  | Twod  (** ROW2COL / COL2ROW: distribution dimension changes *)

type node = private {
  id : int;          (** dense index in [0, num_nodes) *)
  label : string;
  kernel : kernel;
}

type edge = private {
  src : int;
  dst : int;
  bytes : float;     (** total array bytes transferred *)
  kind : transfer_kind;
}

type t

(** {1 Construction} *)

type builder

val create_builder : unit -> builder

val add_node : builder -> label:string -> kernel:kernel -> int
(** Returns the new node's id. *)

val add_edge :
  builder -> src:int -> dst:int -> bytes:float -> kind:transfer_kind -> unit
(** Raises [Invalid_argument] on unknown endpoints, self loops, negative
    byte counts, or duplicate (src, dst) pairs. *)

val build : builder -> t
(** Validates acyclicity and freezes the graph.  Raises
    [Invalid_argument] if the edge relation has a cycle. *)

(** {1 Accessors} *)

val num_nodes : t -> int

val nodes : t -> node array

val node : t -> int -> node

val edges : t -> edge list

val preds : t -> int -> edge list
(** Incoming edges of a node. *)

val succs : t -> int -> edge list
(** Outgoing edges of a node. *)

val edge_between : t -> src:int -> dst:int -> edge option

val sources : t -> int list
(** Nodes with no predecessors. *)

val sinks : t -> int list
(** Nodes with no successors. *)

(** {1 START/STOP normalisation (paper Section 2)} *)

val normalise : t -> t
(** Ensure the graph has a unique zero-cost START node preceding all
    sources and a unique zero-cost STOP node succeeding all sinks,
    adding [Dummy] nodes (with zero-byte 1D edges) when necessary.
    START is relabelled to id order position but is always a source and
    STOP always a sink.  Idempotent. *)

val is_normalised : t -> bool

val start_node : t -> int
(** The unique source of a normalised graph; raises [Invalid_argument]
    otherwise. *)

val stop_node : t -> int
(** The unique sink of a normalised graph; raises [Invalid_argument]
    otherwise. *)

(** {1 Structural identity} *)

val structural_hash : t -> int64
(** A deterministic 64-bit FNV-1a digest of the graph's structure:
    node count, per-node kernels in id order, and every edge's
    endpoints, byte count and transfer kind.  Node {e labels are
    excluded} — they never affect cost — so two requests for the same
    computation under different names share plan-cache entries.
    Stable across processes and runs. *)

val hash_kernel : int64 -> kernel -> int64
(** Fold one kernel into an FNV-1a state (see {!Numeric.Fnv}); exposed
    so cost-model fingerprints hash kernels the same way. *)

(** {1 Kernel helpers} *)

val kernel_flops : kernel -> float
(** Floating-point operation count of a kernel (0 for [Dummy] and
    [Synthetic]). *)

val kernel_bytes : kernel -> float
(** Size in bytes of one N×N double-precision operand of the kernel
    (0 for [Dummy] and [Synthetic]). *)

val pp_kernel : Format.formatter -> kernel -> unit

val pp_transfer_kind : Format.formatter -> transfer_kind -> unit

val pp : Format.formatter -> t -> unit

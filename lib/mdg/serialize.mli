(** Textual serialisation of MDGs.

    A stable, human-editable line format:

    {v
      mdg
      node <id> <kernel> "<label>"
      ...
      edge <src> <dst> <bytes> <1d|2d>
      ...
    v}

    where [<kernel>] is one of [init:<n>], [add:<n>], [mul:<n>],
    [synthetic:<alpha>:<tau>], [dummy].  Node ids must be dense and in
    order (they are re-checked on load).  The format round-trips:
    [of_string (to_string g)] reconstructs an identical graph. *)

exception Parse_error of { line : int; message : string }

val to_string : Graph.t -> string

val of_string : string -> Graph.t
(** Raises {!Parse_error} on malformed input, and [Invalid_argument]
    if the described graph itself is invalid (cycles, bad sizes...). *)

val kernel_to_string : Graph.kernel -> string
(** The kernel field of the line format ([mul:64],
    [synthetic:<alpha>:<tau>], ...), reused by the plan server's wire
    protocol. *)

val kernel_of_string : string -> (Graph.kernel, string) result
(** Inverse of {!kernel_to_string}; [Error] describes the problem. *)

val save : string -> Graph.t -> unit
(** Write to a file path. *)

val load : string -> Graph.t
(** Read from a file path; raises [Sys_error] if unreadable. *)

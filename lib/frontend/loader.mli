(** Result-based program loading for drivers.

    Resolves a program spec — a built-in generator name with an
    optional size suffix ([complex[:N]], [strassen[:N]],
    [strassen2[:N]], [example]) or a path to a matrix-program source
    file — to a named MDG plus the kernel list needed for
    calibration.  All failure modes (bad size suffix, unknown name,
    unreadable file, parse error, invalid program) are reported as
    [Error (`Msg ...)] rather than exceptions, so CLIs can print a
    clean one-line diagnostic and exit non-zero. *)

type t = {
  name : string;                       (** human-readable description *)
  graph : Mdg.Graph.t;
  kernels : Mdg.Graph.kernel list;     (** distinct kernels, for
                                           calibration; empty for the
                                           synthetic example graph *)
}

val load : ?optimise:bool -> string -> (t, [> `Msg of string ]) result
(** [load spec] resolves [spec].  If [spec] names an existing file it
    is parsed as matrix-program source ([optimise], default false,
    runs the front-end optimiser before lowering); otherwise it must
    be a built-in name, with [:N] selecting the problem size. *)

val spec_syntax : string
(** One-line description of accepted specs, for usage/error text. *)

type t = {
  name : string;
  graph : Mdg.Graph.t;
  kernels : Mdg.Graph.kernel list;
}

let spec_syntax =
  "complex[:N], strassen[:N], strassen2[:N], example, or a path to a \
   matrix-program source file"

let err fmt = Printf.ksprintf (fun m -> Error (`Msg m)) fmt

let ( let* ) = Result.bind

(* "name:N" -> (name, N); a missing suffix yields [default]. *)
let with_size spec default =
  match String.index_opt spec ':' with
  | None -> Ok (spec, default)
  | Some i -> (
      let base = String.sub spec 0 i in
      let num = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt num with
      | Some n when n >= 1 -> Ok (base, n)
      | _ ->
          err "bad size %S in program spec %S (expected a positive integer)"
            num spec)

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error msg -> err "cannot read %S: %s" path msg

let of_source ?(optimise = false) ~name text =
  try
    let prog = Parse.program_of_string text in
    let prog = if optimise then Opt.optimise prog else prog in
    let graph, _ = Lower.to_mdg prog in
    Ok { name; graph; kernels = Lower.kernels prog }
  with
  | Parse.Parse_error { line; message } ->
      err "%s: parse error at line %d: %s" name line message
  | Invalid_argument msg -> err "%s: invalid program: %s" name msg

let builtin base n =
  match base with
  | "complex" ->
      let n = if n = 0 then 64 else n in
      let graph, _ = Kernels.Complex_mm.graph ~n () in
      Some
        {
          name = Printf.sprintf "complex matrix multiply (%dx%d)" n n;
          graph;
          kernels = Kernels.Complex_mm.kernels ~n;
        }
  | "strassen" ->
      let n = if n = 0 then 128 else n in
      let graph, _ = Kernels.Strassen_mdg.graph ~n () in
      Some
        {
          name = Printf.sprintf "strassen matrix multiply (%dx%d)" n n;
          graph;
          kernels = Kernels.Strassen_mdg.kernels ~n;
        }
  | "strassen2" ->
      let n = if n = 0 then 128 else n in
      Some
        {
          name = Printf.sprintf "two-level strassen (%dx%d)" n n;
          graph = Kernels.Strassen_mdg.graph_recursive ~levels:2 ~n;
          kernels = Kernels.Strassen_mdg.kernels_recursive ~levels:2 ~n;
        }
  | "example" ->
      Some
        {
          name = "paper figure-1 example";
          graph = Kernels.Example_mdg.graph ();
          kernels = [];
        }
  | _ -> None

let load ?optimise spec =
  if Sys.file_exists spec && not (Sys.is_directory spec) then
    let* text = read_file spec in
    of_source ?optimise ~name:spec text
  else
    let* base, n = with_size spec 0 in
    match builtin base n with
    | Some program -> Ok program
    | None -> err "unknown program %S (expected %s)" spec spec_syntax

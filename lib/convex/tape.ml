module Vec = Numeric.Vec

(* Opcodes.  Each slot k reads:
     op_const : value c.(k)
     op_term  : coeff c.(k), exponent segment [lo.(k), hi.(k)) of
                term_var/term_expt
     op_sum   : constant bias c.(k), child segment [lo.(k), hi.(k)) of child
     op_max   : child segment [lo.(k), hi.(k)) of child
     op_scale : factor c.(k), single child slot lo.(k)
     op_affine: bias c.(k), coefficient segment [lo.(k), hi.(k)) of
                term_var/term_expt — value bias + Σ aᵢ·xᵢ (any-sign)
     op_hinge : single child slot lo.(k) — value (max(child, 0))²
   Slots are in topological (children-first) order; the root is [root]. *)
let op_const = 0

let op_term = 1

let op_sum = 2

let op_max = 3

let op_scale = 4

let op_affine = 5

let op_hinge = 6

(* Level schedule and transpose of the instruction array, built once
   per tape on first use (parallel sweeps and masked HVPs share it).
   Slots of level l occupy level_slots.[level_off.(l), level_off.(l+1))
   in ascending slot order; slots within a level are mutually
   independent.  [pin_*] is the transpose: the incoming (parent) edges
   of every slot, ordered by descending parent so a gather reproduces
   the serial reverse sweep's per-cell accumulation order exactly.
   [vin_*] is the same transpose for the (term slot, entry) pairs
   feeding each variable's gradient component. *)
type plan = {
  level_off : int array;  (* n_levels + 1 *)
  level_slots : int array;  (* num_slots, grouped by level *)
  fan : bool array;  (* per level: wide enough to split across domains *)
  pin_off : int array;  (* num_slots + 1 *)
  par_slot : int array;  (* parent slot, descending per child *)
  par_edge : int array;  (* index into [child]/[w], or -1 for scale *)
  vin_off : int array;  (* n_vars + 1 *)
  vterm_slot : int array;  (* term slot, descending per variable *)
  vterm_entry : int array;  (* index into [term_var]/[term_expt] *)
}

type t = {
  n_vars : int;
  root : int;
  op : int array;
  lo : int array;
  hi : int array;
  c : float array;
  term_var : int array;
  term_expt : float array;
  child : int array;
  plan : plan option Atomic.t;  (* built lazily; Atomic for publication *)
}

type workspace = {
  v : float array;  (* per-slot values *)
  adj : float array;  (* per-slot adjoints *)
  w : float array;  (* softmax weights, parallel to [child] *)
  s : float array;  (* scalar scratch (softmax normaliser) *)
  vd : float array;  (* per-slot value tangents (HVP forward sweep) *)
  adjd : float array;  (* per-slot adjoint tangents (HVP reverse sweep) *)
  wd : float array;  (* softmax weight tangents, parallel to [child] *)
  sel : int array;  (* per-slot first-maximising branch (maxima only) *)
  (* Masked-HVP state, valid from [hvp_mask] until the workspace's next
     forward sweep (see the .mli invariants). *)
  mutable mask_mu : float;
  mutable mask_valid : bool;  (* sets below match [mask_free]/[mask_mu] *)
  mask_free : bool array;  (* free set the mask was built for *)
  mutable n_active : int;
  active : int array;  (* slots with a possibly nonzero value tangent *)
  mutable n_union : int;
  union : int array;  (* [active] plus adjoint-tangent-reachable slots *)
  flags : Bytes.t;  (* scratch: bit0 = active, bit1 = adjoint-tangent *)
  mutable bar : Numeric.Domain_pool.barrier option;  (* parallel sweeps *)
  mutable bar_parties : int;
}

(* [compile] writes slots and their term/child segments straight into
   growable flat arrays as the emit walk returns from each node — the
   walk is children-first, so a slot's segment entries land just below
   the slot's own index and segments stay contiguous.  (An earlier
   version collected boxed per-slot instructions in a list and
   assembled the arrays in a second pass; on deep-MDG tapes the list
   cells and variant boxes dominated compile time.)

   A positively scaled max is fused into the max slot itself
   ([f·max v = f·lse_mu v], applied after the log-sum-exp), saving the
   scale slot. *)

(* Open-addressing memo keyed by {!Expr.id} for [compile].  The
   allocation objectives of deep MDGs reach hundreds of thousands of
   DAG nodes and each node/edge visit is a memo probe, so stdlib
   [Hashtbl]'s boxed bucket chains dominate compile time; flat parallel
   arrays with linear probing keep every probe inside a few cache
   lines.  One entry carries both memoised facts about a node — its
   constant-folded value (if any) and its emitted slot (if any). *)
module Memo = struct
  type t = {
    mutable key : int array;  (* Expr ids; 0 = empty (ids start at 1) *)
    mutable cstate : Bytes.t;  (* '\000' unknown, '\001' const, '\002' not *)
    mutable cval : float array;  (* constant value when cstate = '\001' *)
    mutable slot : int array;  (* emitted slot, -1 = none yet *)
    mutable uses : int array;  (* incoming DAG edges (parent references) *)
    mutable seen : Bytes.t;  (* visited by the use-count walk *)
    mutable mask : int;
    mutable count : int;
  }

  let create () =
    let cap = 1 lsl 16 in
    { key = Array.make cap 0; cstate = Bytes.make cap '\000';
      cval = Array.make cap 0.0; slot = Array.make cap (-1);
      uses = Array.make cap 0; seen = Bytes.make cap '\000';
      mask = cap - 1; count = 0 }

  (* Multiplicative scramble: sequential ids would otherwise cluster. *)
  let hash k = (k * 0x9E3779B1) land max_int

  let probe t k =
    let mask = t.mask and key = t.key in
    let i = ref (hash k land mask) in
    while
      let k' = Array.unsafe_get key !i in
      k' <> 0 && k' <> k
    do
      i := (!i + 1) land mask
    done;
    !i

  let grow t =
    let old_key = t.key and old_cstate = t.cstate in
    let old_cval = t.cval and old_slot = t.slot in
    let old_uses = t.uses and old_seen = t.seen in
    let cap = 2 * (t.mask + 1) in
    t.key <- Array.make cap 0;
    t.cstate <- Bytes.make cap '\000';
    t.cval <- Array.make cap 0.0;
    t.slot <- Array.make cap (-1);
    t.uses <- Array.make cap 0;
    t.seen <- Bytes.make cap '\000';
    t.mask <- cap - 1;
    Array.iteri
      (fun i k ->
        if k <> 0 then begin
          let j = probe t k in
          t.key.(j) <- k;
          Bytes.set t.cstate j (Bytes.get old_cstate i);
          t.cval.(j) <- old_cval.(i);
          t.slot.(j) <- old_slot.(i);
          t.uses.(j) <- old_uses.(i);
          Bytes.set t.seen j (Bytes.get old_seen i)
        end)
      old_key

  (* Index of [k]'s entry, inserting an empty one if absent.  The
     returned index is invalidated by any later insertion (the table
     may grow), so callers re-probe after recursing. *)
  let idx t k =
    if 2 * t.count >= t.mask + 1 then grow t;
    let i = probe t k in
    if t.key.(i) = 0 then begin
      t.key.(i) <- k;
      t.count <- t.count + 1
    end;
    i
end

let compile root_expr =
  let memo = Memo.create () in
  (* Use counts (incoming DAG edges per node), for the sum-flattening
     below: a sum referenced exactly once can be spliced into its
     (sum) parent instead of costing a slot and a child edge of its
     own.  The builders upstream produce long chains of single-use
     binary sums (critical-path recurrences accumulate [add] by
     [add]), so this shrinks deep-MDG tapes considerably. *)
  let rec count_uses e =
    let i = Memo.idx memo (Expr.id e) in
    if Bytes.get memo.Memo.seen i = '\000' then begin
      Bytes.set memo.Memo.seen i '\001';
      let bump e' =
        let j = Memo.idx memo (Expr.id e') in
        memo.Memo.uses.(j) <- memo.Memo.uses.(j) + 1;
        count_uses e'
      in
      match Expr.view e with
      | Expr.V_const _ | Expr.V_term _ | Expr.V_affine _ -> ()
      | Expr.V_scale (_, e') | Expr.V_hinge e' -> bump e'
      | Expr.V_sum es | Expr.V_max es -> Array.iter bump es
    end
  in
  count_uses root_expr;
  let uses_of e = memo.Memo.uses.(Memo.idx memo (Expr.id e)) in
  (* [const_val e] is [Some v] when the subtree at [e] contains no
     variables, memoised per DAG node. *)
  let rec const_val e =
    let i = Memo.idx memo (Expr.id e) in
    match Bytes.get memo.Memo.cstate i with
    | '\001' -> Some memo.Memo.cval.(i)
    | '\002' -> None
    | _ ->
        let r =
          match Expr.view e with
          | Expr.V_const c -> Some c
          | Expr.V_term { coeff; expts } ->
              (* exp of an empty sum: the constant [coeff]. *)
              if Array.length expts = 0 then Some coeff else None
          | Expr.V_scale (f, e') ->
              Option.map (fun v -> f *. v) (const_val e')
          | Expr.V_sum es ->
              Array.fold_left
                (fun acc e' ->
                  match (acc, const_val e') with
                  | Some a, Some v -> Some (a +. v)
                  | _ -> None)
                (Some 0.0) es
          | Expr.V_max _ ->
              (* Never foldable: the log-sum-exp smoothing makes even a
                 max of constants depend on the evaluation-time [mu]. *)
              None
          | Expr.V_affine { bias; coefs } ->
              if Array.length coefs = 0 then Some bias else None
          | Expr.V_hinge e' ->
              Option.map
                (fun u ->
                  let up = Float.max u 0.0 in
                  up *. up)
                (const_val e')
        in
        let i = Memo.idx memo (Expr.id e) in
        (match r with
        | Some v ->
            Bytes.set memo.Memo.cstate i '\001';
            memo.Memo.cval.(i) <- v
        | None -> Bytes.set memo.Memo.cstate i '\002');
        r
  in
  (* Growable tape buffers.  [push_slot o l h cv] appends one slot and
     returns its index; segment entries for a slot must be pushed
     (contiguously) before the slot itself. *)
  let scap = ref 4096 and nslots = ref 0 in
  let op_b = ref (Array.make !scap 0) in
  let lo_b = ref (Array.make !scap 0) in
  let hi_b = ref (Array.make !scap 0) in
  let c_b = ref (Array.make !scap 0.0) in
  let grow_int r len = r := Array.append !r (Array.make len 0) in
  let grow_flt r len = r := Array.append !r (Array.make len 0.0) in
  let push_slot o l h cv =
    if !nslots = !scap then begin
      grow_int op_b !scap;
      grow_int lo_b !scap;
      grow_int hi_b !scap;
      grow_flt c_b !scap;
      scap := 2 * !scap
    end;
    let k = !nslots in
    !op_b.(k) <- o;
    !lo_b.(k) <- l;
    !hi_b.(k) <- h;
    !c_b.(k) <- cv;
    incr nslots;
    k
  in
  let tcap = ref 4096 and tlen = ref 0 in
  let tv_b = ref (Array.make !tcap 0) in
  let te_b = ref (Array.make !tcap 0.0) in
  let push_entry var e =
    if !tlen = !tcap then begin
      grow_int tv_b !tcap;
      grow_flt te_b !tcap;
      tcap := 2 * !tcap
    end;
    !tv_b.(!tlen) <- var;
    !te_b.(!tlen) <- e;
    incr tlen
  in
  let ccap = ref 4096 and clen = ref 0 in
  let ch_b = ref (Array.make !ccap 0) in
  let push_child s =
    if !clen = !ccap then begin
      grow_int ch_b !ccap;
      ccap := 2 * !ccap
    end;
    !ch_b.(!clen) <- s;
    incr clen
  in
  (* Highest variable index, tracked during the emit walk (every term
     with a variable survives constant folding — a subtree containing
     one is never constant — so this equals {!Expr.max_var} without a
     second full DAG traversal). *)
  let max_var = ref (-1) in
  (* Constant slots carry no gradient and never change, so equal values
     share one slot (the builders emit thousands of identical latency
     constants as max branches).  A variable-free posynomial term is
     the constant [coeff] (exp of an empty sum), so it joins the pool
     instead of costing a term slot. *)
  let const_slots = Hashtbl.create 64 in
  let push_const v =
    match Hashtbl.find_opt const_slots v with
    | Some s -> s
    | None ->
        let s = push_slot op_const 0 0 v in
        Hashtbl.add const_slots v s;
        s
  in
  (* Exponent entries are pushed in reverse, and sum children in
     reverse construction order, matching the segment layout of the
     earlier two-pass assembly bit-for-bit (the accumulations are
     commutative but float addition order is not). *)
  let push_term coeff expts =
    let l = !tlen in
    for j = Array.length expts - 1 downto 0 do
      let i, a = expts.(j) in
      if i > !max_var then max_var := i;
      push_entry i a
    done;
    push_slot op_term l !tlen coeff
  in
  (* Affine slots reuse the term segment arrays (variable, coefficient)
     with the bias where a term keeps its coefficient; the gradient
     transpose below then covers affine entries for free. *)
  let push_affine bias coefs =
    let l = !tlen in
    for j = Array.length coefs - 1 downto 0 do
      let i, a = coefs.(j) in
      if i > !max_var then max_var := i;
      push_entry i a
    done;
    push_slot op_affine l !tlen bias
  in
  let push_max f kids =
    let l = !clen in
    Array.iter push_child kids;
    push_slot op_max l !clen f
  in
  let rec emit e =
    let i = Memo.idx memo (Expr.id e) in
    let s = memo.Memo.slot.(i) in
    if s >= 0 then s
    else begin
      let slot =
        match const_val e with
        | Some v -> push_const v
        | None -> (
            match Expr.view e with
            | Expr.V_const c -> push_const c
            | Expr.V_term { coeff; expts } -> push_term coeff expts
            | Expr.V_scale (f, e') ->
                (* Compose chains of single-use scales into one factor
                   and fold that factor into a single-use term's
                   coefficient: multiplication reassociates, so only
                   rounding (and a slot per folded link) changes. *)
                let f = ref f and ec = ref e' in
                let rec chase () =
                  if uses_of !ec = 1 then
                    match Expr.view !ec with
                    | Expr.V_scale (g, e'') ->
                        f := !f *. g;
                        ec := e'';
                        chase ()
                    | _ -> ()
                in
                chase ();
                (match Expr.view !ec with
                | Expr.V_term { coeff; expts } when uses_of !ec = 1 ->
                    push_term (!f *. coeff) expts
                | Expr.V_max es when uses_of !ec = 1 ->
                    (* Fuse the factor into the max slot: the sweeps
                       multiply the slot's output (and its adjoints) by
                       the factor, in the same float operations the
                       separate scale slot performed. *)
                    push_max !f (Array.map emit es)
                | _ ->
                    let s = emit !ec in
                    push_slot op_scale s 0 !f)
            | Expr.V_sum es ->
                (* Fold constant summands into the bias.  A non-const
                   summand that is itself a sum with no other parent is
                   spliced in place of a child reference — addition
                   reassociates, so only float rounding (and the tape
                   size) changes. *)
                let bias = ref 0.0 in
                let kids = ref [] in
                let nk = ref 0 in
                let rec add_child e' =
                  match const_val e' with
                  | Some v -> bias := !bias +. v
                  | None -> (
                      match Expr.view e' with
                      | Expr.V_sum es' when uses_of e' = 1 ->
                          Array.iter add_child es'
                      | _ ->
                          kids := emit e' :: !kids;
                          incr nk)
                in
                Array.iter add_child es;
                if !bias = 0.0 && !nk = 1 then List.hd !kids
                else begin
                  let l = !clen in
                  (* [kids] is in reverse construction order, which is
                     the sum-segment layout (see [push_term]). *)
                  List.iter push_child !kids;
                  push_slot op_sum l !clen !bias
                end
            | Expr.V_max es ->
                (* Constant branches stay as slots so the subgradient
                   tie-break (first maximising branch, in order) and
                   the softmax weighting match {!Expr} exactly. *)
                push_max 1.0 (Array.map emit es)
            | Expr.V_affine { bias; coefs } -> push_affine bias coefs
            | Expr.V_hinge e' ->
                let s = emit e' in
                push_slot op_hinge s 0 1.0)
      in
      let i = Memo.idx memo (Expr.id e) in
      memo.Memo.slot.(i) <- slot;
      slot
    end
  in
  let root = emit root_expr in
  { n_vars = !max_var + 1; root;
    op = Array.sub !op_b 0 !nslots; lo = Array.sub !lo_b 0 !nslots;
    hi = Array.sub !hi_b 0 !nslots; c = Array.sub !c_b 0 !nslots;
    term_var = Array.sub !tv_b 0 !tlen;
    term_expt = Array.sub !te_b 0 !tlen;
    child = Array.sub !ch_b 0 !clen; plan = Atomic.make None }

let n_vars t = t.n_vars

let num_slots t = Array.length t.op

let num_term_entries t = Array.length t.term_var

let num_children t = Array.length t.child

let create_workspace t =
  let n = Int.max 1 (num_slots t) in
  {
    v = Array.make n 0.0;
    adj = Array.make n 0.0;
    w = Array.make (Int.max 1 (num_children t)) 0.0;
    s = Array.make 1 0.0;
    vd = Array.make n 0.0;
    adjd = Array.make n 0.0;
    wd = Array.make (Int.max 1 (num_children t)) 0.0;
    sel = Array.make n (-1);
    mask_mu = 0.0;
    mask_valid = false;
    mask_free = Array.make (Int.max 1 t.n_vars) false;
    n_active = 0;
    active = Array.make n 0;
    n_union = 0;
    union = Array.make n 0;
    flags = Bytes.make n '\000';
    bar = None;
    bar_parties = 0;
  }

let check_dim name t x =
  if Vec.dim x < t.n_vars then
    invalid_arg
      (Printf.sprintf "Tape.%s: tape uses variable %d but x has dim %d" name
         (t.n_vars - 1) (Vec.dim x))

(* Unsafe indexing for the O(|tape|) inner loops.  Every index comes
   from the tape's own, internally consistent arrays ([child] and the
   segment bounds point inside the tape; [term_var] is below [n_vars],
   which [check_dim] verifies against the caller's vectors), and the
   bounds checks are a measurable fraction of sweep time on the
   ~500k-slot tapes of deep MDGs.  Float expressions below keep the
   exact shape of the checked originals, so results are bit-identical. *)
external ( .%() ) : 'a array -> int -> 'a = "%array_unsafe_get"

external ( .%()<- ) : 'a array -> int -> 'a -> unit = "%array_unsafe_set"

(* First maximising branch of max slot [p] for the reverse sweeps'
   subgradient tie-break, replayed from [sel] (the strict-[>] forward
   scan records the earliest of any tie, the branch {!Expr.eval_grad}
   picks).  When the max is empty or every branch is [neg_infinity]
   [sel] is -1: settle on [lo] if the slot's value is [neg_infinity]
   (matching a downward [>=] rescan), and on nothing for NaN. *)
let rev_sel t ws p =
  if ws.sel.(p) >= 0 then ws.sel.(p)
  else if ws.v.(p) = neg_infinity && t.hi.(p) > t.lo.(p) then t.lo.(p)
  else min_int

(* Forward sweep.  With [weights = true] (gradient path, mu > 0) the
   normalised softmax weights of every max are stored in [ws.w] for
   the reverse sweep.  Allocation-free: all accumulators live in the
   workspace's flat float arrays. *)
let forward ~mu ~weights t ws x =
  let v = ws.v and w = ws.w and s = ws.s and sel = ws.sel in
  let opa = t.op and loa = t.lo and hia = t.hi and ca = t.c in
  let tv = t.term_var and te = t.term_expt and ch = t.child in
  let n = Array.length opa in
  for k = 0 to n - 1 do
    let o = opa.%(k) in
    if o = op_term then begin
      v.%(k) <- 0.0;
      for j = loa.%(k) to hia.%(k) - 1 do
        v.%(k) <- v.%(k) +. (te.%(j) *. x.%(tv.%(j)))
      done;
      v.%(k) <- ca.%(k) *. exp v.%(k)
    end
    else if o = op_sum then begin
      v.%(k) <- ca.%(k);
      for j = loa.%(k) to hia.%(k) - 1 do
        v.%(k) <- v.%(k) +. v.%(ch.%(j))
      done
    end
    else if o = op_max then begin
      v.%(k) <- neg_infinity;
      (* Record the first maximising branch: the masked-HVP path and
         the parallel reverse gather replay the subgradient tie-break
         from [sel] instead of rescanning.  (Workspace cells, not
         refs, keep the sweep allocation-free without flambda.) *)
      sel.%(k) <- -1;
      for j = loa.%(k) to hia.%(k) - 1 do
        if v.%(ch.%(j)) > v.%(k) then begin
          v.%(k) <- v.%(ch.%(j));
          sel.%(k) <- j
        end
      done;
      if mu > 0.0 && Float.is_finite v.%(k) then begin
        (* v.(k) currently holds the shift m; s.(0) accumulates the
           log-sum-exp normaliser. *)
        s.%(0) <- 0.0;
        for j = loa.%(k) to hia.%(k) - 1 do
          let e = exp ((v.%(ch.%(j)) -. v.%(k)) /. mu) in
          if weights then w.%(j) <- e;
          s.%(0) <- s.%(0) +. e
        done;
        if weights then
          for j = loa.%(k) to hia.%(k) - 1 do
            w.%(j) <- w.%(j) /. s.%(0)
          done;
        v.%(k) <- v.%(k) +. (mu *. log s.%(0))
      end;
      (* Fused scale factor (1.0 for a plain max: bit-identical). *)
      v.%(k) <- ca.%(k) *. v.%(k)
    end
    else if o = op_scale then v.%(k) <- ca.%(k) *. v.%(loa.%(k))
    else if o = op_affine then begin
      v.%(k) <- ca.%(k);
      for j = loa.%(k) to hia.%(k) - 1 do
        v.%(k) <- v.%(k) +. (te.%(j) *. x.%(tv.%(j)))
      done
    end
    else if o = op_hinge then begin
      let up = Float.max v.%(loa.%(k)) 0.0 in
      v.%(k) <- up *. up
    end
    else (* op_const *) v.%(k) <- ca.%(k)
  done;
  v.(t.root)

let eval ?(mu = 0.0) t ws x =
  check_dim "eval" t x;
  forward ~mu ~weights:false t ws x

(* Branch values of a root max, read off the last forward sweep.  The
   objective Φ = max(A_p, C_p) already computes both components on the
   way to the root, so callers that report them (e.g.
   {!Core.Allocation}) can read the child slots instead of re-walking
   the expression DAG — on a 10k-node MDG those two DAG evals cost
   more than the entire tape sweep. *)
let root_branches t ws =
  if t.op.(t.root) <> op_max then [||]
  else begin
    let lo = t.lo.(t.root) and hi = t.hi.(t.root) in
    let f = t.c.(t.root) in
    Array.init (hi - lo) (fun j -> f *. ws.v.(t.child.(lo + j)))
  end

(* Forward sweep carrying first-order tangents along direction [dx]:
   after the sweep, [ws.vd.(k)] is the directional derivative of slot
   [k] along [dx], and for smoothed maxima [ws.wd.(j)] holds the
   tangent of the softmax weight [ws.w.(j)].  At [mu <= 0] the max is
   piecewise linear: the tangent follows the first maximising branch
   (construction order), the same branch the subgradient picks, so the
   Gauss–Newton-style reverse sweep below yields the Hessian of the
   active piece.  Allocation-free, like {!forward}. *)
let forward_tangent ~mu t ws x dx =
  let v = ws.v and w = ws.w and s = ws.s in
  let vd = ws.vd and wd = ws.wd and sel = ws.sel in
  let opa = t.op and loa = t.lo and hia = t.hi and ca = t.c in
  let tv = t.term_var and te = t.term_expt and ch = t.child in
  let n = Array.length opa in
  for k = 0 to n - 1 do
    let o = opa.%(k) in
    if o = op_term then begin
      v.%(k) <- 0.0;
      vd.%(k) <- 0.0;
      for j = loa.%(k) to hia.%(k) - 1 do
        v.%(k) <- v.%(k) +. (te.%(j) *. x.%(tv.%(j)));
        vd.%(k) <- vd.%(k) +. (te.%(j) *. dx.%(tv.%(j)))
      done;
      v.%(k) <- ca.%(k) *. exp v.%(k);
      (* d(c·e^s) = c·e^s·ds *)
      vd.%(k) <- v.%(k) *. vd.%(k)
    end
    else if o = op_sum then begin
      v.%(k) <- ca.%(k);
      vd.%(k) <- 0.0;
      for j = loa.%(k) to hia.%(k) - 1 do
        v.%(k) <- v.%(k) +. v.%(ch.%(j));
        vd.%(k) <- vd.%(k) +. vd.%(ch.%(j))
      done
    end
    else if o = op_max then begin
      v.%(k) <- neg_infinity;
      (* The strict [>] keeps the earliest of any tie, matching the
         subgradient tie-break. *)
      sel.%(k) <- -1;
      for j = loa.%(k) to hia.%(k) - 1 do
        if v.%(ch.%(j)) > v.%(k) then begin
          v.%(k) <- v.%(ch.%(j));
          sel.%(k) <- j
        end
      done;
      vd.%(k) <- (if sel.%(k) >= 0 then vd.%(ch.%(sel.%(k))) else 0.0);
      if mu > 0.0 && Float.is_finite v.%(k) then begin
        let m = v.%(k) in
        s.%(0) <- 0.0;
        for j = loa.%(k) to hia.%(k) - 1 do
          let e = exp ((v.%(ch.%(j)) -. m) /. mu) in
          w.%(j) <- e;
          s.%(0) <- s.%(0) +. e
        done;
        vd.%(k) <- 0.0;
        for j = loa.%(k) to hia.%(k) - 1 do
          w.%(j) <- w.%(j) /. s.%(0);
          vd.%(k) <- vd.%(k) +. (w.%(j) *. vd.%(ch.%(j)))
        done;
        (* dw_j = w_j (dv_j - dv_k)/mu, with dv_k = sum_l w_l dv_l
           (both of the unscaled log-sum-exp: the weights are its
           derivatives; the fused factor enters via the adjoints). *)
        for j = loa.%(k) to hia.%(k) - 1 do
          wd.%(j) <- w.%(j) *. (vd.%(ch.%(j)) -. vd.%(k)) /. mu
        done;
        v.%(k) <- m +. (mu *. log s.%(0))
      end;
      v.%(k) <- ca.%(k) *. v.%(k);
      vd.%(k) <- ca.%(k) *. vd.%(k)
    end
    else if o = op_scale then begin
      v.%(k) <- ca.%(k) *. v.%(loa.%(k));
      vd.%(k) <- ca.%(k) *. vd.%(loa.%(k))
    end
    else if o = op_affine then begin
      v.%(k) <- ca.%(k);
      vd.%(k) <- 0.0;
      for j = loa.%(k) to hia.%(k) - 1 do
        v.%(k) <- v.%(k) +. (te.%(j) *. x.%(tv.%(j)));
        vd.%(k) <- vd.%(k) +. (te.%(j) *. dx.%(tv.%(j)))
      done
    end
    else if o = op_hinge then begin
      let cj = loa.%(k) in
      let up = Float.max v.%(cj) 0.0 in
      v.%(k) <- up *. up;
      (* d((u)₊²) = 2(u)₊·du, C¹ across the kink. *)
      vd.%(k) <- 2.0 *. up *. vd.%(cj)
    end
    else begin
      (* op_const *)
      v.%(k) <- ca.%(k);
      vd.%(k) <- 0.0
    end
  done;
  v.(t.root)

let eval_hvp ?(mu = 0.0) t ws ~x ~dx ~grad ~hvp =
  check_dim "eval_hvp" t x;
  if Vec.dim dx <> Vec.dim x then
    invalid_arg "Tape.eval_hvp: dx/x dimension mismatch";
  if Vec.dim grad <> Vec.dim x || Vec.dim hvp <> Vec.dim x then
    invalid_arg "Tape.eval_hvp: grad/hvp/x dimension mismatch";
  (* The dense tangent sweeps write tangents outside any mask's sets,
     breaking the zero-tangent invariant a cached mask relies on. *)
  ws.mask_valid <- false;
  let value = forward_tangent ~mu t ws x dx in
  let v = ws.v and adj = ws.adj and w = ws.w in
  let vd = ws.vd and adjd = ws.adjd and wd = ws.wd in
  let opa = t.op and loa = t.lo and hia = t.hi and ca = t.c in
  let tv = t.term_var and te = t.term_expt and ch = t.child in
  let n = Array.length opa in
  Array.fill adj 0 n 0.0;
  Array.fill adjd 0 n 0.0;
  Array.fill grad 0 (Vec.dim grad) 0.0;
  Array.fill hvp 0 (Vec.dim hvp) 0.0;
  adj.(t.root) <- 1.0;
  for k = n - 1 downto 0 do
    let a = adj.%(k) in
    let ad = adjd.%(k) in
    if a <> 0.0 || ad <> 0.0 then begin
      let o = opa.%(k) in
      if o = op_term then
        for j = loa.%(k) to hia.%(k) - 1 do
          let i = tv.%(j) in
          let e = te.%(j) in
          grad.%(i) <- grad.%(i) +. (a *. e *. v.%(k));
          (* d(a·e·v) = e·(da·v + a·dv) *)
          hvp.%(i) <- hvp.%(i) +. (e *. ((ad *. v.%(k)) +. (a *. vd.%(k))))
        done
      else if o = op_affine then
        (* Constant gradient row: only the adjoint tangent curves. *)
        for j = loa.%(k) to hia.%(k) - 1 do
          let i = tv.%(j) in
          let e = te.%(j) in
          grad.%(i) <- grad.%(i) +. (a *. e);
          hvp.%(i) <- hvp.%(i) +. (ad *. e)
        done
      else if o = op_sum then
        for j = loa.%(k) to hia.%(k) - 1 do
          let cj = ch.%(j) in
          adj.%(cj) <- adj.%(cj) +. a;
          adjd.%(cj) <- adjd.%(cj) +. ad
        done
      else if o = op_max then begin
        (* The fused scale factor multiplies both adjoints, exactly as
           the separate scale slot did before propagation. *)
        let ac = a *. ca.%(k) in
        let adc = ad *. ca.%(k) in
        if mu > 0.0 && Float.is_finite v.%(k) then
          for j = loa.%(k) to hia.%(k) - 1 do
            let cj = ch.%(j) in
            adj.%(cj) <- adj.%(cj) +. (ac *. w.%(j));
            (* d(a·w_j) = da·w_j + a·dw_j — the a·dw_j term is where the
               curvature of the smoothed max enters the Hessian. *)
            adjd.%(cj) <- adjd.%(cj) +. (adc *. w.%(j)) +. (ac *. wd.%(j))
          done
        else begin
          (* First maximising branch, replayed from [sel]; the branch
             indicator is locally constant, so its tangent is zero. *)
          let j = rev_sel t ws k in
          if j >= loa.%(k) then begin
            let cj = ch.%(j) in
            adj.%(cj) <- adj.%(cj) +. ac;
            adjd.%(cj) <- adjd.%(cj) +. adc
          end
        end
      end
      else if o = op_scale then begin
        let cj = loa.%(k) in
        adj.%(cj) <- adj.%(cj) +. (a *. ca.%(k));
        adjd.%(cj) <- adjd.%(cj) +. (ad *. ca.%(k))
      end
      else if o = op_hinge then begin
        (* adj factor 2(u)₊ depends on the child value, so the adjoint
           tangent picks up a·2·𝟙[u>0]·du on top of the chained ad. *)
        let cj = loa.%(k) in
        let u = v.%(cj) in
        let up = Float.max u 0.0 in
        adj.%(cj) <- adj.%(cj) +. (a *. 2.0 *. up);
        adjd.%(cj) <-
          adjd.%(cj) +. (ad *. 2.0 *. up)
          +. (if u > 0.0 then a *. 2.0 *. vd.%(cj) else 0.0)
      end
      (* op_const: adjoint discarded *)
    end
  done;
  value

let eval_grad ?(mu = 0.0) t ws ~x ~grad =
  check_dim "eval_grad" t x;
  if Vec.dim grad <> Vec.dim x then
    invalid_arg "Tape.eval_grad: grad/x dimension mismatch";
  let value = forward ~mu ~weights:true t ws x in
  let v = ws.v and adj = ws.adj and w = ws.w in
  let opa = t.op and loa = t.lo and hia = t.hi and ca = t.c in
  let tv = t.term_var and te = t.term_expt and ch = t.child in
  let n = Array.length opa in
  Array.fill adj 0 n 0.0;
  Array.fill grad 0 (Vec.dim grad) 0.0;
  adj.(t.root) <- 1.0;
  for k = n - 1 downto 0 do
    let a = adj.%(k) in
    if a <> 0.0 then begin
      let o = opa.%(k) in
      if o = op_term then
        for j = loa.%(k) to hia.%(k) - 1 do
          let i = tv.%(j) in
          grad.%(i) <- grad.%(i) +. (a *. te.%(j) *. v.%(k))
        done
      else if o = op_affine then
        for j = loa.%(k) to hia.%(k) - 1 do
          let i = tv.%(j) in
          grad.%(i) <- grad.%(i) +. (a *. te.%(j))
        done
      else if o = op_sum then
        for j = loa.%(k) to hia.%(k) - 1 do
          let cj = ch.%(j) in
          adj.%(cj) <- adj.%(cj) +. a
        done
      else if o = op_max then begin
        let ac = a *. ca.%(k) in
        if mu > 0.0 && Float.is_finite v.%(k) then
          for j = loa.%(k) to hia.%(k) - 1 do
            let cj = ch.%(j) in
            adj.%(cj) <- adj.%(cj) +. (ac *. w.%(j))
          done
        else begin
          (* Subgradient: the first maximising branch in construction
             order, exactly as {!Expr.eval_grad} picks it, replayed
             from the forward scan's [sel]. *)
          let j = rev_sel t ws k in
          if j >= loa.%(k) then begin
            let cj = ch.%(j) in
            adj.%(cj) <- adj.%(cj) +. ac
          end
        end
      end
      else if o = op_scale then begin
        let cj = loa.%(k) in
        adj.%(cj) <- adj.%(cj) +. (a *. ca.%(k))
      end
      else if o = op_hinge then begin
        let cj = loa.%(k) in
        let up = Float.max v.%(cj) 0.0 in
        adj.%(cj) <- adj.%(cj) +. (a *. 2.0 *. up)
      end
      (* op_const: adjoint discarded *)
    end
  done;
  value

(* ------------------------------------------------------------------ *)
(* Level schedule and transpose                                        *)
(* ------------------------------------------------------------------ *)

module Domain_pool = Numeric.Domain_pool

(* Minimum slots in a level before it is split across domains; below
   this the handoff costs more than the work. *)
let par_threshold = 64

let build_plan t =
  let n = Array.length t.op in
  let level = Array.make (Int.max 1 n) 0 in
  let max_level = ref 0 in
  for k = 0 to n - 1 do
    let o = t.op.(k) in
    let l =
      if o = op_sum || o = op_max then begin
        let m = ref (-1) in
        for j = t.lo.(k) to t.hi.(k) - 1 do
          if level.(t.child.(j)) > !m then m := level.(t.child.(j))
        done;
        !m + 1
      end
      else if o = op_scale || o = op_hinge then level.(t.lo.(k)) + 1
      else 0
    in
    level.(k) <- l;
    if l > !max_level then max_level := l
  done;
  let nl = !max_level + 1 in
  let level_off = Array.make (nl + 1) 0 in
  for k = 0 to n - 1 do
    level_off.(level.(k) + 1) <- level_off.(level.(k) + 1) + 1
  done;
  for l = 0 to nl - 1 do
    level_off.(l + 1) <- level_off.(l + 1) + level_off.(l)
  done;
  let level_slots = Array.make (Int.max 1 n) 0 in
  let cursor = Array.sub level_off 0 nl in
  for k = 0 to n - 1 do
    let l = level.(k) in
    level_slots.(cursor.(l)) <- k;
    cursor.(l) <- cursor.(l) + 1
  done;
  let fan =
    Array.init nl (fun l -> level_off.(l + 1) - level_off.(l) >= par_threshold)
  in
  (* Transpose: incoming (parent, edge) pairs per slot, parents
     descending and edges ascending within a parent, so a gather adds
     contributions in exactly the serial reverse sweep's order. *)
  let pin_off = Array.make (n + 1) 0 in
  for k = 0 to n - 1 do
    let o = t.op.(k) in
    if o = op_sum || o = op_max then
      for j = t.lo.(k) to t.hi.(k) - 1 do
        let ch = t.child.(j) in
        pin_off.(ch + 1) <- pin_off.(ch + 1) + 1
      done
    else if o = op_scale || o = op_hinge then begin
      let ch = t.lo.(k) in
      pin_off.(ch + 1) <- pin_off.(ch + 1) + 1
    end
  done;
  for k = 0 to n - 1 do
    pin_off.(k + 1) <- pin_off.(k + 1) + pin_off.(k)
  done;
  let ne = pin_off.(n) in
  let par_slot = Array.make (Int.max 1 ne) 0 in
  let par_edge = Array.make (Int.max 1 ne) 0 in
  let cur = Array.sub pin_off 0 (Int.max 1 n) in
  for k = n - 1 downto 0 do
    let o = t.op.(k) in
    if o = op_sum || o = op_max then
      for j = t.lo.(k) to t.hi.(k) - 1 do
        let ch = t.child.(j) in
        par_slot.(cur.(ch)) <- k;
        par_edge.(cur.(ch)) <- j;
        cur.(ch) <- cur.(ch) + 1
      done
    else if o = op_scale || o = op_hinge then begin
      let ch = t.lo.(k) in
      par_slot.(cur.(ch)) <- k;
      par_edge.(cur.(ch)) <- -1;
      cur.(ch) <- cur.(ch) + 1
    end
  done;
  (* Same transpose for gradient components: the (term slot, entry)
     pairs feeding each variable, slots descending. *)
  let nv = t.n_vars in
  let vin_off = Array.make (nv + 1) 0 in
  Array.iter (fun i -> vin_off.(i + 1) <- vin_off.(i + 1) + 1) t.term_var;
  for i = 0 to nv - 1 do
    vin_off.(i + 1) <- vin_off.(i + 1) + vin_off.(i)
  done;
  let nt = vin_off.(nv) in
  let vterm_slot = Array.make (Int.max 1 nt) 0 in
  let vterm_entry = Array.make (Int.max 1 nt) 0 in
  let curv = Array.sub vin_off 0 (Int.max 1 nv) in
  for k = n - 1 downto 0 do
    if t.op.(k) = op_term || t.op.(k) = op_affine then
      for j = t.lo.(k) to t.hi.(k) - 1 do
        let i = t.term_var.(j) in
        vterm_slot.(curv.(i)) <- k;
        vterm_entry.(curv.(i)) <- j;
        curv.(i) <- curv.(i) + 1
      done
  done;
  { level_off; level_slots; fan; pin_off; par_slot; par_edge; vin_off;
    vterm_slot; vterm_entry }

let plan_of t =
  match Atomic.get t.plan with
  | Some p -> p
  | None -> (
      let p = build_plan t in
      (* A concurrent build produces an identical plan; first publisher
         wins and the loser's copy is dropped. *)
      if Atomic.compare_and_set t.plan None (Some p) then p
      else match Atomic.get t.plan with Some p' -> p' | None -> p)

let num_levels t = Array.length (plan_of t).level_off - 1

let get_barrier ws nd =
  match ws.bar with
  | Some b when ws.bar_parties = nd -> b
  | _ ->
      let b = Domain_pool.barrier nd in
      ws.bar <- Some b;
      ws.bar_parties <- nd;
      b

(* Run one barrier-synchronised pool job.  A participant that raises
   poisons the barrier so its siblings drain out of their waits instead
   of blocking forever on a party that will never arrive; [run] then
   re-raises the participant's error here, and the (now single-use)
   poisoned barrier is dropped from the workspace so the next sweep
   builds a fresh one. *)
let run_barrier_job pool ws bar job =
  try
    Domain_pool.run pool (fun di ->
        try job di
        with exn ->
          Domain_pool.poison bar;
          raise exn)
  with exn ->
    ws.bar <- None;
    raise exn

(* Iterate the plan's levels inside a pool job.  Narrow levels run
   whole on participant 0; wide ([fan]) levels are chunked evenly
   across participants, with a barrier before them (when following
   participant-0-only work, whose writes must become visible) and one
   after.  Consecutive narrow levels need no barrier: only participant
   0 touches them.  [prev] threads the "previous level was fanned"
   flag across the phases of one job so phase boundaries follow the
   same rule; every participant executes the same control flow, so
   barrier counts always agree. *)
let sweep_levels plan bar nd di ~descending ~prev body =
  let nl = Array.length plan.level_off - 1 in
  let prev_fan = ref prev in
  for step = 0 to nl - 1 do
    let l = if descending then nl - 1 - step else step in
    let lo = plan.level_off.(l) and hi = plan.level_off.(l + 1) in
    if plan.fan.(l) then begin
      if not !prev_fan then Domain_pool.await bar;
      let chunk = (hi - lo + nd - 1) / nd in
      let a = lo + (di * chunk) in
      let b = Int.min hi (a + chunk) in
      if a < b then body a b;
      Domain_pool.await bar;
      prev_fan := true
    end
    else begin
      if di = 0 then body lo hi;
      prev_fan := false
    end
  done;
  !prev_fan

(* The per-variable gather phase, same barrier protocol as one level. *)
let var_phase bar nd di ~prev ~count body =
  if count >= par_threshold then begin
    if not prev then Domain_pool.await bar;
    let chunk = (count + nd - 1) / nd in
    let a = di * chunk in
    let b = Int.min count (a + chunk) in
    if a < b then body a b;
    Domain_pool.await bar
  end
  else if di = 0 then body 0 count

(* ------------------------------------------------------------------ *)
(* Parallel sweeps                                                     *)
(* ------------------------------------------------------------------ *)

(* Per-slot forward step, bit-identical to the loop body of {!forward}
   but with local accumulators (the [ws.s] scratch cell would race). *)
let forward_slot ~mu ~weights t ws x k =
  let v = ws.v and w = ws.w in
  let o = t.op.(k) in
  if o = op_term then begin
    let acc = ref 0.0 in
    for j = t.lo.(k) to t.hi.(k) - 1 do
      acc := !acc +. (t.term_expt.(j) *. x.(t.term_var.(j)))
    done;
    v.(k) <- t.c.(k) *. exp !acc
  end
  else if o = op_sum then begin
    let acc = ref t.c.(k) in
    for j = t.lo.(k) to t.hi.(k) - 1 do
      acc := !acc +. v.(t.child.(j))
    done;
    v.(k) <- !acc
  end
  else if o = op_max then begin
    let m = ref neg_infinity and sl = ref (-1) in
    for j = t.lo.(k) to t.hi.(k) - 1 do
      if v.(t.child.(j)) > !m then begin
        m := v.(t.child.(j));
        sl := j
      end
    done;
    ws.sel.(k) <- !sl;
    if mu > 0.0 && Float.is_finite !m then begin
      let s0 = ref 0.0 in
      for j = t.lo.(k) to t.hi.(k) - 1 do
        let e = exp ((v.(t.child.(j)) -. !m) /. mu) in
        if weights then w.(j) <- e;
        s0 := !s0 +. e
      done;
      if weights then
        for j = t.lo.(k) to t.hi.(k) - 1 do
          w.(j) <- w.(j) /. !s0
        done;
      v.(k) <- t.c.(k) *. (!m +. (mu *. log !s0))
    end
    else v.(k) <- t.c.(k) *. !m
  end
  else if o = op_scale then v.(k) <- t.c.(k) *. v.(t.lo.(k))
  else if o = op_affine then begin
    let acc = ref t.c.(k) in
    for j = t.lo.(k) to t.hi.(k) - 1 do
      acc := !acc +. (t.term_expt.(j) *. x.(t.term_var.(j)))
    done;
    v.(k) <- !acc
  end
  else if o = op_hinge then begin
    let up = Float.max v.(t.lo.(k)) 0.0 in
    v.(k) <- up *. up
  end
  else v.(k) <- t.c.(k)

(* Per-slot tangent forward step, mirroring {!forward_tangent}. *)
let forward_tangent_slot ~mu t ws x dx k =
  let v = ws.v and w = ws.w and vd = ws.vd and wd = ws.wd in
  let o = t.op.(k) in
  if o = op_term then begin
    let acc = ref 0.0 and accd = ref 0.0 in
    for j = t.lo.(k) to t.hi.(k) - 1 do
      acc := !acc +. (t.term_expt.(j) *. x.(t.term_var.(j)));
      accd := !accd +. (t.term_expt.(j) *. dx.(t.term_var.(j)))
    done;
    v.(k) <- t.c.(k) *. exp !acc;
    vd.(k) <- v.(k) *. !accd
  end
  else if o = op_sum then begin
    let acc = ref t.c.(k) and accd = ref 0.0 in
    for j = t.lo.(k) to t.hi.(k) - 1 do
      acc := !acc +. v.(t.child.(j));
      accd := !accd +. vd.(t.child.(j))
    done;
    v.(k) <- !acc;
    vd.(k) <- !accd
  end
  else if o = op_max then begin
    let m = ref neg_infinity and sl = ref (-1) in
    for j = t.lo.(k) to t.hi.(k) - 1 do
      if v.(t.child.(j)) > !m then begin
        m := v.(t.child.(j));
        sl := j
      end
    done;
    ws.sel.(k) <- !sl;
    if mu > 0.0 && Float.is_finite !m then begin
      let s0 = ref 0.0 in
      for j = t.lo.(k) to t.hi.(k) - 1 do
        let e = exp ((v.(t.child.(j)) -. !m) /. mu) in
        w.(j) <- e;
        s0 := !s0 +. e
      done;
      let d = ref 0.0 in
      for j = t.lo.(k) to t.hi.(k) - 1 do
        w.(j) <- w.(j) /. !s0;
        d := !d +. (w.(j) *. vd.(t.child.(j)))
      done;
      for j = t.lo.(k) to t.hi.(k) - 1 do
        wd.(j) <- w.(j) *. (vd.(t.child.(j)) -. !d) /. mu
      done;
      v.(k) <- t.c.(k) *. (!m +. (mu *. log !s0));
      vd.(k) <- t.c.(k) *. !d
    end
    else begin
      v.(k) <- t.c.(k) *. !m;
      vd.(k) <- t.c.(k) *. (if !sl >= 0 then vd.(t.child.(!sl)) else 0.0)
    end
  end
  else if o = op_scale then begin
    v.(k) <- t.c.(k) *. v.(t.lo.(k));
    vd.(k) <- t.c.(k) *. vd.(t.lo.(k))
  end
  else if o = op_affine then begin
    let acc = ref t.c.(k) and accd = ref 0.0 in
    for j = t.lo.(k) to t.hi.(k) - 1 do
      acc := !acc +. (t.term_expt.(j) *. x.(t.term_var.(j)));
      accd := !accd +. (t.term_expt.(j) *. dx.(t.term_var.(j)))
    done;
    v.(k) <- !acc;
    vd.(k) <- !accd
  end
  else if o = op_hinge then begin
    let cj = t.lo.(k) in
    let up = Float.max v.(cj) 0.0 in
    v.(k) <- up *. up;
    vd.(k) <- 2.0 *. up *. vd.(cj)
  end
  else begin
    v.(k) <- t.c.(k);
    vd.(k) <- 0.0
  end

(* Gather the adjoint of slot [k] from its parents (all in higher
   levels, hence already settled).  Same contributions, same order and
   same zero-skip guard as the serial scatter in {!eval_grad}. *)
let adj_gather ~mu t plan ws k =
  let v = ws.v and adj = ws.adj and w = ws.w in
  let acc = ref (if k = t.root then 1.0 else 0.0) in
  for idx = plan.pin_off.(k) to plan.pin_off.(k + 1) - 1 do
    let p = plan.par_slot.(idx) in
    let a = adj.(p) in
    if a <> 0.0 then begin
      let o = t.op.(p) in
      if o = op_sum then acc := !acc +. a
      else if o = op_max then begin
        if mu > 0.0 && Float.is_finite v.(p) then
          acc := !acc +. (a *. t.c.(p) *. w.(plan.par_edge.(idx)))
        else if plan.par_edge.(idx) = rev_sel t ws p then
          acc := !acc +. (a *. t.c.(p))
      end
      else if o = op_scale then acc := !acc +. (a *. t.c.(p))
      else begin
        (* op_hinge: the adjoint factor 2(u)₊ reads the child's value —
           which is this very slot's v.(k). *)
        let up = Float.max v.(k) 0.0 in
        acc := !acc +. (a *. 2.0 *. up)
      end
    end
  done;
  adj.(k) <- !acc

(* Joint adjoint/adjoint-tangent gather, mirroring {!eval_hvp}. *)
let adjd_gather ~mu t plan ws k =
  let v = ws.v and adj = ws.adj and w = ws.w in
  let vd = ws.vd and adjd = ws.adjd and wd = ws.wd in
  let acc = ref (if k = t.root then 1.0 else 0.0) in
  let accd = ref 0.0 in
  for idx = plan.pin_off.(k) to plan.pin_off.(k + 1) - 1 do
    let p = plan.par_slot.(idx) in
    let a = adj.(p) in
    let ad = adjd.(p) in
    if a <> 0.0 || ad <> 0.0 then begin
      let o = t.op.(p) in
      if o = op_sum then begin
        acc := !acc +. a;
        accd := !accd +. ad
      end
      else if o = op_max then begin
        let ac = a *. t.c.(p) in
        let adc = ad *. t.c.(p) in
        if mu > 0.0 && Float.is_finite v.(p) then begin
          let j = plan.par_edge.(idx) in
          acc := !acc +. (ac *. w.(j));
          accd := !accd +. (adc *. w.(j)) +. (ac *. wd.(j))
        end
        else if plan.par_edge.(idx) = rev_sel t ws p then begin
          acc := !acc +. ac;
          accd := !accd +. adc
        end
      end
      else if o = op_scale then begin
        acc := !acc +. (a *. t.c.(p));
        accd := !accd +. (ad *. t.c.(p))
      end
      else begin
        (* op_hinge: child value/tangent are this slot's own cells. *)
        let u = v.(k) in
        let up = Float.max u 0.0 in
        acc := !acc +. (a *. 2.0 *. up);
        accd :=
          !accd +. (ad *. 2.0 *. up)
          +. (if u > 0.0 then a *. 2.0 *. vd.(k) else 0.0)
      end
    end
  done;
  adj.(k) <- !acc;
  adjd.(k) <- !accd

let eval_pool ?(mu = 0.0) t pool ws x =
  check_dim "eval_pool" t x;
  let nd = Domain_pool.size pool in
  if nd <= 1 then forward ~mu ~weights:false t ws x
  else begin
    let plan = plan_of t in
    let bar = get_barrier ws nd in
    run_barrier_job pool ws bar (fun di ->
        let (_ : bool) =
          sweep_levels plan bar nd di ~descending:false ~prev:true
            (fun a b ->
              for idx = a to b - 1 do
                forward_slot ~mu ~weights:false t ws x plan.level_slots.(idx)
              done)
        in
        ());
    ws.v.(t.root)
  end

let eval_grad_pool ?(mu = 0.0) t pool ws ~x ~grad =
  check_dim "eval_grad_pool" t x;
  if Vec.dim grad <> Vec.dim x then
    invalid_arg "Tape.eval_grad_pool: grad/x dimension mismatch";
  let nd = Domain_pool.size pool in
  if nd <= 1 then eval_grad ~mu t ws ~x ~grad
  else begin
    let plan = plan_of t in
    let bar = get_barrier ws nd in
    Array.fill grad 0 (Vec.dim grad) 0.0;
    let nv = t.n_vars in
    run_barrier_job pool ws bar (fun di ->
        let prev =
          sweep_levels plan bar nd di ~descending:false ~prev:true
            (fun a b ->
              for idx = a to b - 1 do
                forward_slot ~mu ~weights:true t ws x plan.level_slots.(idx)
              done)
        in
        let prev =
          sweep_levels plan bar nd di ~descending:true ~prev
            (fun a b ->
              for idx = a to b - 1 do
                adj_gather ~mu t plan ws plan.level_slots.(idx)
              done)
        in
        var_phase bar nd di ~prev ~count:nv (fun a b ->
            let v = ws.v and adj = ws.adj in
            for i = a to b - 1 do
              let acc = ref 0.0 in
              for idx = plan.vin_off.(i) to plan.vin_off.(i + 1) - 1 do
                let k = plan.vterm_slot.(idx) in
                let a = adj.(k) in
                if a <> 0.0 then
                  if t.op.(k) = op_term then
                    acc :=
                      !acc
                      +. (a *. t.term_expt.(plan.vterm_entry.(idx)) *. v.(k))
                  else
                    (* op_affine: constant gradient row *)
                    acc := !acc +. (a *. t.term_expt.(plan.vterm_entry.(idx)))
              done;
              grad.(i) <- !acc
            done));
    ws.v.(t.root)
  end

let eval_hvp_pool ?(mu = 0.0) t pool ws ~x ~dx ~grad ~hvp =
  check_dim "eval_hvp_pool" t x;
  if Vec.dim dx <> Vec.dim x then
    invalid_arg "Tape.eval_hvp_pool: dx/x dimension mismatch";
  if Vec.dim grad <> Vec.dim x || Vec.dim hvp <> Vec.dim x then
    invalid_arg "Tape.eval_hvp_pool: grad/hvp/x dimension mismatch";
  let nd = Domain_pool.size pool in
  if nd <= 1 then eval_hvp ~mu t ws ~x ~dx ~grad ~hvp
  else begin
    ws.mask_valid <- false;
    let plan = plan_of t in
    let bar = get_barrier ws nd in
    Array.fill grad 0 (Vec.dim grad) 0.0;
    Array.fill hvp 0 (Vec.dim hvp) 0.0;
    let nv = t.n_vars in
    run_barrier_job pool ws bar (fun di ->
        let prev =
          sweep_levels plan bar nd di ~descending:false ~prev:true
            (fun a b ->
              for idx = a to b - 1 do
                forward_tangent_slot ~mu t ws x dx plan.level_slots.(idx)
              done)
        in
        let prev =
          sweep_levels plan bar nd di ~descending:true ~prev
            (fun a b ->
              for idx = a to b - 1 do
                adjd_gather ~mu t plan ws plan.level_slots.(idx)
              done)
        in
        var_phase bar nd di ~prev ~count:nv (fun a b ->
            let v = ws.v and adj = ws.adj in
            let vd = ws.vd and adjd = ws.adjd in
            for i = a to b - 1 do
              let gacc = ref 0.0 and hacc = ref 0.0 in
              for idx = plan.vin_off.(i) to plan.vin_off.(i + 1) - 1 do
                let k = plan.vterm_slot.(idx) in
                let a = adj.(k) in
                let ad = adjd.(k) in
                if a <> 0.0 || ad <> 0.0 then begin
                  let e = t.term_expt.(plan.vterm_entry.(idx)) in
                  if t.op.(k) = op_term then begin
                    gacc := !gacc +. (a *. e *. v.(k));
                    hacc := !hacc +. (e *. ((ad *. v.(k)) +. (a *. vd.(k))))
                  end
                  else begin
                    (* op_affine *)
                    gacc := !gacc +. (a *. e);
                    hacc := !hacc +. (ad *. e)
                  end
                end
              done;
              grad.(i) <- !gacc;
              hvp.(i) <- !hacc
            done));
    ws.v.(t.root)
  end

(* ------------------------------------------------------------------ *)
(* Masked HVPs on the active face                                      *)
(* ------------------------------------------------------------------ *)

(* Flag bits in [ws.flags]. *)
let f_active = '\001' (* value tangent can be nonzero *)

let f_adjt = '\002' (* adjoint tangent can be nonzero *)

let flag_has b f = Char.code b land Char.code f <> 0

let flag_add b f = Char.chr (Char.code b lor Char.code f)

let hvp_mask ?(mu = 0.0) t ws ~free =
  if Array.length free < t.n_vars then
    invalid_arg "Tape.hvp_mask: free/x dimension mismatch";
  (* The index sets depend only on the free set, the sign of [mu] and
     tape structure (a max value is non-finite exactly when its child
     segment is empty — a structural fact), not on the current point,
     so a rebuild for the same [free] and [mu] is the identity: skip
     it.  The zero-tangent invariant also still holds, because the only
     sweeps that write tangents between masks are the masked ones
     themselves, which stay inside the sets ({!eval_hvp} writes them
     everywhere and invalidates).  This makes the per-outer-iteration
     re-mask of a Newton stage with an unchanged active face free. *)
  let same_free () =
    let same = ref true in
    let i = ref 0 in
    while !same && !i < t.n_vars do
      if Array.unsafe_get free !i <> Array.unsafe_get ws.mask_free !i then
        same := false;
      incr i
    done;
    !same
  in
  if ws.mask_valid && ws.mask_mu = mu && same_free () then ()
  else begin
  let n = Array.length t.op in
  let flags = ws.flags in
  Bytes.fill flags 0 n '\000';
  ws.mask_mu <- mu;
  (* Upward closure: slots whose value depends on a free variable.
     Only these can carry a nonzero value tangent. *)
  let na = ref 0 in
  for k = 0 to n - 1 do
    let o = t.op.(k) in
    let act =
      if o = op_term || o = op_affine then begin
        let any = ref false in
        let j = ref t.lo.(k) in
        while (not !any) && !j < t.hi.(k) do
          if free.(t.term_var.(!j)) then any := true;
          incr j
        done;
        !any
      end
      else if o = op_sum || o = op_max then begin
        let any = ref false in
        let j = ref t.lo.(k) in
        while (not !any) && !j < t.hi.(k) do
          if flag_has (Bytes.get flags t.child.(!j)) f_active then any := true;
          incr j
        done;
        !any
      end
      else if o = op_scale || o = op_hinge then
        flag_has (Bytes.get flags t.lo.(k)) f_active
      else false
    in
    if act then begin
      Bytes.set flags k (flag_add (Bytes.get flags k) f_active);
      ws.active.(!na) <- k;
      incr na
    end
  done;
  ws.n_active <- !na;
  (* Downward closure of adjoint-tangent flow: smoothed maxima that
     depend on a free variable inject curvature into ALL their
     branches (the softmax weights shift together), and hinges inject
     it into their child at {e any} mu — the adjoint factor 2(u)₊
     depends on the child's value.  From there the tangent adjoint
     propagates through children like the adjoint.  At mu <= 0 a max
     with an incoming adjoint tangent conservatively flags all its
     branches, keeping the sets point-independent (the masked sweep
     itself still follows only the selected branch).  Without hinges
     nothing seeds an adjoint tangent at mu <= 0 and the closure is
     empty — the masked HVP is the Hessian of the active piece swept
     over the active slots alone. *)
  for k = n - 1 downto 0 do
    let b = Bytes.get flags k in
    let o = t.op.(k) in
    if o = op_max then begin
      if mu > 0.0 then begin
        if
          (flag_has b f_active || flag_has b f_adjt)
          && Float.is_finite ws.v.(k)
        then
          for j = t.lo.(k) to t.hi.(k) - 1 do
            let ch = t.child.(j) in
            Bytes.set flags ch (flag_add (Bytes.get flags ch) f_adjt)
          done
        else if flag_has b f_adjt then begin
          (* Kink even at mu > 0 (infinite value): selected branch. *)
          let j = rev_sel t ws k in
          if j >= t.lo.(k) then begin
            let ch = t.child.(j) in
            Bytes.set flags ch (flag_add (Bytes.get flags ch) f_adjt)
          end
        end
      end
      else if flag_has b f_adjt then
        for j = t.lo.(k) to t.hi.(k) - 1 do
          let ch = t.child.(j) in
          Bytes.set flags ch (flag_add (Bytes.get flags ch) f_adjt)
        done
    end
    else if o = op_hinge then begin
      if flag_has b f_active || flag_has b f_adjt then begin
        let ch = t.lo.(k) in
        Bytes.set flags ch (flag_add (Bytes.get flags ch) f_adjt)
      end
    end
    else if flag_has b f_adjt then begin
      if o = op_sum then
        for j = t.lo.(k) to t.hi.(k) - 1 do
          let ch = t.child.(j) in
          Bytes.set flags ch (flag_add (Bytes.get flags ch) f_adjt)
        done
      else if o = op_scale then begin
        let ch = t.lo.(k) in
        Bytes.set flags ch (flag_add (Bytes.get flags ch) f_adjt)
      end
    end
  done;
  let nu = ref 0 in
  for k = 0 to n - 1 do
    if Bytes.get flags k <> '\000' then begin
      ws.union.(!nu) <- k;
      incr nu
    end
  done;
  ws.n_union <- !nu;
  (* Stale tangents from earlier sweeps must read as zero wherever the
     masked sweeps skip writing. *)
  Array.fill ws.vd 0 n 0.0;
  Array.fill ws.adjd 0 n 0.0;
  Array.fill ws.wd 0 (Array.length ws.wd) 0.0;
  Array.blit free 0 ws.mask_free 0 t.n_vars;
  ws.mask_valid <- true
  end

let hvp_masked t ws ~x ~dx ~hvp =
  check_dim "hvp_masked" t x;
  if Vec.dim dx <> Vec.dim x then
    invalid_arg "Tape.hvp_masked: dx/x dimension mismatch";
  if Vec.dim hvp <> Vec.dim x then
    invalid_arg "Tape.hvp_masked: hvp/x dimension mismatch";
  let mu = ws.mask_mu in
  let v = ws.v and adj = ws.adj and w = ws.w in
  let vd = ws.vd and adjd = ws.adjd and wd = ws.wd in
  let opa = t.op and loa = t.lo and hia = t.hi and ca = t.c in
  let tv = t.term_var and te = t.term_expt and ch = t.child in
  let active = ws.active and union = ws.union and sel = ws.sel in
  (* Tangent forward over the active slots only; [v], [w] and [sel]
     are reused from the preceding {!eval_grad} at the same point. *)
  for ai = 0 to ws.n_active - 1 do
    let k = active.%(ai) in
    let o = opa.%(k) in
    if o = op_term then begin
      let accd = ref 0.0 in
      for j = loa.%(k) to hia.%(k) - 1 do
        accd := !accd +. (te.%(j) *. dx.%(tv.%(j)))
      done;
      vd.%(k) <- v.%(k) *. !accd
    end
    else if o = op_sum then begin
      let accd = ref 0.0 in
      for j = loa.%(k) to hia.%(k) - 1 do
        accd := !accd +. vd.%(ch.%(j))
      done;
      vd.%(k) <- !accd
    end
    else if o = op_max then begin
      if mu > 0.0 && Float.is_finite v.%(k) then begin
        let d = ref 0.0 in
        for j = loa.%(k) to hia.%(k) - 1 do
          d := !d +. (w.%(j) *. vd.%(ch.%(j)))
        done;
        (* [wd] uses the unscaled log-sum-exp tangent [d]; the fused
           factor scales the slot's own outgoing tangent. *)
        for j = loa.%(k) to hia.%(k) - 1 do
          wd.%(j) <- w.%(j) *. (vd.%(ch.%(j)) -. !d) /. mu
        done;
        vd.%(k) <- ca.%(k) *. !d
      end
      else
        vd.%(k) <-
          ca.%(k) *. (if sel.%(k) >= 0 then vd.%(ch.%(sel.%(k))) else 0.0)
    end
    else if o = op_scale then vd.%(k) <- ca.%(k) *. vd.%(loa.%(k))
    else if o = op_affine then begin
      let accd = ref 0.0 in
      for j = loa.%(k) to hia.%(k) - 1 do
        accd := !accd +. (te.%(j) *. dx.%(tv.%(j)))
      done;
      vd.%(k) <- !accd
    end
    else if o = op_hinge then begin
      let cj = loa.%(k) in
      let up = Float.max v.%(cj) 0.0 in
      vd.%(k) <- 2.0 *. up *. vd.%(cj)
    end
    else vd.%(k) <- 0.0
  done;
  (* Reverse scatter over the union, descending (the union list is
     ascending): the adjoint [adj] is read-only here, only the adjoint
     tangents accumulate.  Same expressions and guards as
     {!eval_hvp}. *)
  for ui = ws.n_union - 1 downto 0 do
    adjd.%(union.%(ui)) <- 0.0
  done;
  Array.fill hvp 0 (Vec.dim hvp) 0.0;
  for ui = ws.n_union - 1 downto 0 do
    let k = union.%(ui) in
    let a = adj.%(k) in
    let ad = adjd.%(k) in
    if a <> 0.0 || ad <> 0.0 then begin
      let o = opa.%(k) in
      if o = op_term then
        for j = loa.%(k) to hia.%(k) - 1 do
          let i = tv.%(j) in
          let e = te.%(j) in
          hvp.%(i) <- hvp.%(i) +. (e *. ((ad *. v.%(k)) +. (a *. vd.%(k))))
        done
      else if o = op_affine then
        for j = loa.%(k) to hia.%(k) - 1 do
          let i = tv.%(j) in
          hvp.%(i) <- hvp.%(i) +. (ad *. te.%(j))
        done
      else if o = op_sum then
        for j = loa.%(k) to hia.%(k) - 1 do
          let cj = ch.%(j) in
          adjd.%(cj) <- adjd.%(cj) +. ad
        done
      else if o = op_max then begin
        let ac = a *. ca.%(k) in
        let adc = ad *. ca.%(k) in
        if mu > 0.0 && Float.is_finite v.%(k) then
          for j = loa.%(k) to hia.%(k) - 1 do
            let cj = ch.%(j) in
            adjd.%(cj) <- adjd.%(cj) +. (adc *. w.%(j)) +. (ac *. wd.%(j))
          done
        else begin
          let j = rev_sel t ws k in
          if j >= loa.%(k) then begin
            let cj = ch.%(j) in
            adjd.%(cj) <- adjd.%(cj) +. adc
          end
        end
      end
      else if o = op_scale then begin
        let cj = loa.%(k) in
        adjd.%(cj) <- adjd.%(cj) +. (ad *. ca.%(k))
      end
      else if o = op_hinge then begin
        let cj = loa.%(k) in
        let u = v.%(cj) in
        let up = Float.max u 0.0 in
        adjd.%(cj) <-
          adjd.%(cj) +. (ad *. 2.0 *. up)
          +. (if u > 0.0 then a *. 2.0 *. vd.%(cj) else 0.0)
      end
      (* op_const: nothing *)
    end
  done

let mask_active ws = ws.n_active

let mask_union ws = ws.n_union

(* ------------------------------------------------------------------ *)
(* Gauss–Newton diagonal                                               *)
(* ------------------------------------------------------------------ *)

(* Diagonal of the Gauss–Newton part of the Hessian at the point of
   the last {!eval_grad}: each posynomial term contributes
   adj_k · v_k · e_i² to coordinate i, which is the exact diagonal of
   sum_k adj_k ∇²v_k.  The smoothed-max coupling curvature is dropped,
   so the result {e underestimates} the true diagonal on coordinates
   whose curvature lives in a max — consumers must floor it
   ({!Precond.jacobi_clamp}) or the Jacobi inverse over-amplifies
   exactly those coordinates. *)
let hess_diag t ws ~diag =
  check_dim "hess_diag" t diag;
  Array.fill diag 0 (Vec.dim diag) 0.0;
  let opa = t.op and loa = t.lo and hia = t.hi in
  let tv = t.term_var and te = t.term_expt in
  let v = ws.v and adj = ws.adj in
  let n = Array.length opa in
  for k = 0 to n - 1 do
    let o = opa.%(k) in
    if o = op_term then begin
      let a = adj.%(k) in
      if a <> 0.0 then begin
        let av = a *. v.%(k) in
        for j = loa.%(k) to hia.%(k) - 1 do
          let e = te.%(j) in
          let i = tv.%(j) in
          diag.%(i) <- diag.%(i) +. (av *. e *. e)
        done
      end
    end
    else if o = op_hinge then begin
      (* The Gauss–Newton part of (u)₊² is 2·𝟙[u>0]·∇u∇uᵀ; its diagonal
         is exact when the child is a term or an affine form (the
         2(u)₊·∇²u part flows through the child's own adjoint, which the
         term branch above already counts).  Other children are skipped
         — an underestimate, like the dropped max coupling. *)
      let a = adj.%(k) in
      let cj = t.lo.(k) in
      if a <> 0.0 && v.%(cj) > 0.0 then begin
        let oc = opa.%(cj) in
        if oc = op_affine then begin
          let a2 = 2.0 *. a in
          for j = loa.%(cj) to hia.%(cj) - 1 do
            let e = te.%(j) in
            let i = tv.%(j) in
            diag.%(i) <- diag.%(i) +. (a2 *. e *. e)
          done
        end
        else if oc = op_term then begin
          let a2 = 2.0 *. a in
          let vc = v.%(cj) in
          for j = loa.%(cj) to hia.%(cj) - 1 do
            let g = te.%(j) *. vc in
            let i = tv.%(j) in
            diag.%(i) <- diag.%(i) +. (a2 *. g *. g)
          done
        end
      end
    end
  done

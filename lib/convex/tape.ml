module Vec = Numeric.Vec

(* Opcodes.  Each slot k reads:
     op_const: value c.(k)
     op_term : coeff c.(k), exponent segment [lo.(k), hi.(k)) of
               term_var/term_expt
     op_sum  : constant bias c.(k), child segment [lo.(k), hi.(k)) of child
     op_max  : child segment [lo.(k), hi.(k)) of child
     op_scale: factor c.(k), single child slot lo.(k)
   Slots are in topological (children-first) order; the root is [root]. *)
let op_const = 0

let op_term = 1

let op_sum = 2

let op_max = 3

let op_scale = 4

type t = {
  n_vars : int;
  root : int;
  op : int array;
  lo : int array;
  hi : int array;
  c : float array;
  term_var : int array;
  term_expt : float array;
  child : int array;
}

type workspace = {
  v : float array;  (* per-slot values *)
  adj : float array;  (* per-slot adjoints *)
  w : float array;  (* softmax weights, parallel to [child] *)
  s : float array;  (* scalar scratch (softmax normaliser) *)
  vd : float array;  (* per-slot value tangents (HVP forward sweep) *)
  adjd : float array;  (* per-slot adjoint tangents (HVP reverse sweep) *)
  wd : float array;  (* softmax weight tangents, parallel to [child] *)
}

(* Compile-time instruction forms, collected in reverse order and
   flattened into the shared arrays afterwards. *)
type instr =
  | IConst of float
  | ITerm of float * (int * float) array
  | ISum of float * int array
  | IMax of int array
  | IScale of float * int

let compile root_expr =
  (* [const_val e] is [Some v] when the subtree at [e] contains no
     variables, memoised per DAG node. *)
  let const_memo : (int, float option) Hashtbl.t = Hashtbl.create 64 in
  let rec const_val e =
    match Hashtbl.find_opt const_memo (Expr.id e) with
    | Some r -> r
    | None ->
        let r =
          match Expr.view e with
          | Expr.V_const c -> Some c
          | Expr.V_term _ -> None
          | Expr.V_scale (f, e') ->
              Option.map (fun v -> f *. v) (const_val e')
          | Expr.V_sum es ->
              Array.fold_left
                (fun acc e' ->
                  match (acc, const_val e') with
                  | Some a, Some v -> Some (a +. v)
                  | _ -> None)
                (Some 0.0) es
          | Expr.V_max _ ->
              (* Never foldable: the log-sum-exp smoothing makes even a
                 max of constants depend on the evaluation-time [mu]. *)
              None
        in
        Hashtbl.add const_memo (Expr.id e) r;
        r
  in
  let instrs = ref [] in
  let num_slots = ref 0 in
  let push i =
    instrs := i :: !instrs;
    let slot = !num_slots in
    incr num_slots;
    slot
  in
  let slot_memo : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let rec emit e =
    match Hashtbl.find_opt slot_memo (Expr.id e) with
    | Some s -> s
    | None ->
        let slot =
          match const_val e with
          | Some v -> push (IConst v)
          | None -> (
              match Expr.view e with
              | Expr.V_const c -> push (IConst c)
              | Expr.V_term { coeff; expts } -> push (ITerm (coeff, expts))
              | Expr.V_scale (f, e') ->
                  let cs = emit e' in
                  push (IScale (f, cs))
              | Expr.V_sum es ->
                  (* Fold constant summands into the bias; keep the
                     construction order of the variable children. *)
                  let bias = ref 0.0 in
                  let kids = ref [] in
                  Array.iter
                    (fun e' ->
                      match const_val e' with
                      | Some v -> bias := !bias +. v
                      | None -> kids := emit e' :: !kids)
                    es;
                  let kids = Array.of_list (List.rev !kids) in
                  if !bias = 0.0 && Array.length kids = 1 then kids.(0)
                  else push (ISum (!bias, kids))
              | Expr.V_max es ->
                  (* Constant branches stay as slots so the subgradient
                     tie-break (first maximising branch, in order) and
                     the softmax weighting match {!Expr} exactly. *)
                  push (IMax (Array.map emit es)))
        in
        Hashtbl.add slot_memo (Expr.id e) slot;
        slot
  in
  let root = emit root_expr in
  let n = !num_slots in
  let op = Array.make n 0 in
  let lo = Array.make n 0 in
  let hi = Array.make n 0 in
  let c = Array.make n 0.0 in
  let n_terms = ref 0 and n_children = ref 0 in
  List.iter
    (function
      | ITerm (_, expts) -> n_terms := !n_terms + Array.length expts
      | ISum (_, kids) | IMax kids -> n_children := !n_children + Array.length kids
      | IConst _ | IScale _ -> ())
    !instrs;
  let term_var = Array.make !n_terms 0 in
  let term_expt = Array.make !n_terms 0.0 in
  let child = Array.make !n_children 0 in
  let tpos = ref 0 and cpos = ref 0 in
  List.iteri
    (fun i instr ->
      (* [instrs] is reversed: slot k lives at list position n-1-k. *)
      let k = n - 1 - i in
      match instr with
      | IConst v ->
          op.(k) <- op_const;
          c.(k) <- v
      | ITerm (coeff, expts) ->
          op.(k) <- op_term;
          c.(k) <- coeff;
          (* Segments are filled right-to-left over the reversed list,
             which keeps them contiguous; intra-segment order is
             irrelevant to the (commutative) accumulations. *)
          hi.(k) <- !n_terms - !tpos;
          Array.iter
            (fun (var, a) ->
              incr tpos;
              term_var.(!n_terms - !tpos) <- var;
              term_expt.(!n_terms - !tpos) <- a)
            expts;
          lo.(k) <- !n_terms - !tpos
      | ISum (bias, kids) ->
          op.(k) <- op_sum;
          c.(k) <- bias;
          hi.(k) <- !n_children - !cpos;
          Array.iter
            (fun s ->
              incr cpos;
              child.(!n_children - !cpos) <- s)
            kids;
          lo.(k) <- !n_children - !cpos
      | IMax kids ->
          op.(k) <- op_max;
          hi.(k) <- !n_children - !cpos;
          (* Reverse fill preserves nothing; re-reverse so the segment
             keeps construction order (the max tie-break needs it). *)
          let m = Array.length kids in
          for j = 0 to m - 1 do
            child.(!n_children - !cpos - m + j) <- kids.(j)
          done;
          cpos := !cpos + m;
          lo.(k) <- !n_children - !cpos
      | IScale (f, s) ->
          op.(k) <- op_scale;
          c.(k) <- f;
          lo.(k) <- s)
    !instrs;
  { n_vars = Expr.max_var root_expr + 1; root; op; lo; hi; c; term_var;
    term_expt; child }

let n_vars t = t.n_vars

let num_slots t = Array.length t.op

let num_term_entries t = Array.length t.term_var

let num_children t = Array.length t.child

let create_workspace t =
  {
    v = Array.make (Int.max 1 (num_slots t)) 0.0;
    adj = Array.make (Int.max 1 (num_slots t)) 0.0;
    w = Array.make (Int.max 1 (num_children t)) 0.0;
    s = Array.make 1 0.0;
    vd = Array.make (Int.max 1 (num_slots t)) 0.0;
    adjd = Array.make (Int.max 1 (num_slots t)) 0.0;
    wd = Array.make (Int.max 1 (num_children t)) 0.0;
  }

let check_dim name t x =
  if Vec.dim x < t.n_vars then
    invalid_arg
      (Printf.sprintf "Tape.%s: tape uses variable %d but x has dim %d" name
         (t.n_vars - 1) (Vec.dim x))

(* Forward sweep.  With [weights = true] (gradient path, mu > 0) the
   normalised softmax weights of every max are stored in [ws.w] for
   the reverse sweep.  Allocation-free: all accumulators live in the
   workspace's flat float arrays. *)
let forward ~mu ~weights t ws x =
  let v = ws.v and w = ws.w and s = ws.s in
  let n = Array.length t.op in
  for k = 0 to n - 1 do
    let o = t.op.(k) in
    if o = op_term then begin
      v.(k) <- 0.0;
      for j = t.lo.(k) to t.hi.(k) - 1 do
        v.(k) <- v.(k) +. (t.term_expt.(j) *. x.(t.term_var.(j)))
      done;
      v.(k) <- t.c.(k) *. exp v.(k)
    end
    else if o = op_sum then begin
      v.(k) <- t.c.(k);
      for j = t.lo.(k) to t.hi.(k) - 1 do
        v.(k) <- v.(k) +. v.(t.child.(j))
      done
    end
    else if o = op_max then begin
      v.(k) <- neg_infinity;
      for j = t.lo.(k) to t.hi.(k) - 1 do
        if v.(t.child.(j)) > v.(k) then v.(k) <- v.(t.child.(j))
      done;
      if mu > 0.0 && Float.is_finite v.(k) then begin
        (* v.(k) currently holds the shift m; s.(0) accumulates the
           log-sum-exp normaliser. *)
        s.(0) <- 0.0;
        for j = t.lo.(k) to t.hi.(k) - 1 do
          let e = exp ((v.(t.child.(j)) -. v.(k)) /. mu) in
          if weights then w.(j) <- e;
          s.(0) <- s.(0) +. e
        done;
        if weights then
          for j = t.lo.(k) to t.hi.(k) - 1 do
            w.(j) <- w.(j) /. s.(0)
          done;
        v.(k) <- v.(k) +. (mu *. log s.(0))
      end
    end
    else if o = op_scale then v.(k) <- t.c.(k) *. v.(t.lo.(k))
    else (* op_const *) v.(k) <- t.c.(k)
  done;
  v.(t.root)

let eval ?(mu = 0.0) t ws x =
  check_dim "eval" t x;
  forward ~mu ~weights:false t ws x

(* Forward sweep carrying first-order tangents along direction [dx]:
   after the sweep, [ws.vd.(k)] is the directional derivative of slot
   [k] along [dx], and for smoothed maxima [ws.wd.(j)] holds the
   tangent of the softmax weight [ws.w.(j)].  At [mu <= 0] the max is
   piecewise linear: the tangent follows the first maximising branch
   (construction order), the same branch the subgradient picks, so the
   Gauss–Newton-style reverse sweep below yields the Hessian of the
   active piece.  Allocation-free, like {!forward}. *)
let forward_tangent ~mu t ws x dx =
  let v = ws.v and w = ws.w and s = ws.s and vd = ws.vd and wd = ws.wd in
  let n = Array.length t.op in
  for k = 0 to n - 1 do
    let o = t.op.(k) in
    if o = op_term then begin
      v.(k) <- 0.0;
      vd.(k) <- 0.0;
      for j = t.lo.(k) to t.hi.(k) - 1 do
        v.(k) <- v.(k) +. (t.term_expt.(j) *. x.(t.term_var.(j)));
        vd.(k) <- vd.(k) +. (t.term_expt.(j) *. dx.(t.term_var.(j)))
      done;
      v.(k) <- t.c.(k) *. exp v.(k);
      (* d(c·e^s) = c·e^s·ds *)
      vd.(k) <- v.(k) *. vd.(k)
    end
    else if o = op_sum then begin
      v.(k) <- t.c.(k);
      vd.(k) <- 0.0;
      for j = t.lo.(k) to t.hi.(k) - 1 do
        v.(k) <- v.(k) +. v.(t.child.(j));
        vd.(k) <- vd.(k) +. vd.(t.child.(j))
      done
    end
    else if o = op_max then begin
      v.(k) <- neg_infinity;
      (* s.(0) temporarily holds the index of the first maximising
         branch; the strict [>] keeps the earliest of any tie, matching
         the subgradient tie-break. *)
      s.(0) <- -1.0;
      for j = t.lo.(k) to t.hi.(k) - 1 do
        if v.(t.child.(j)) > v.(k) then begin
          v.(k) <- v.(t.child.(j));
          s.(0) <- float_of_int j
        end
      done;
      vd.(k) <-
        (if s.(0) >= 0.0 then vd.(t.child.(int_of_float s.(0))) else 0.0);
      if mu > 0.0 && Float.is_finite v.(k) then begin
        let m = v.(k) in
        s.(0) <- 0.0;
        for j = t.lo.(k) to t.hi.(k) - 1 do
          let e = exp ((v.(t.child.(j)) -. m) /. mu) in
          w.(j) <- e;
          s.(0) <- s.(0) +. e
        done;
        vd.(k) <- 0.0;
        for j = t.lo.(k) to t.hi.(k) - 1 do
          w.(j) <- w.(j) /. s.(0);
          vd.(k) <- vd.(k) +. (w.(j) *. vd.(t.child.(j)))
        done;
        (* dw_j = w_j (dv_j - dv_k)/mu, with dv_k = sum_l w_l dv_l. *)
        for j = t.lo.(k) to t.hi.(k) - 1 do
          wd.(j) <- w.(j) *. (vd.(t.child.(j)) -. vd.(k)) /. mu
        done;
        v.(k) <- m +. (mu *. log s.(0))
      end
    end
    else if o = op_scale then begin
      v.(k) <- t.c.(k) *. v.(t.lo.(k));
      vd.(k) <- t.c.(k) *. vd.(t.lo.(k))
    end
    else begin
      (* op_const *)
      v.(k) <- t.c.(k);
      vd.(k) <- 0.0
    end
  done;
  v.(t.root)

let eval_hvp ?(mu = 0.0) t ws ~x ~dx ~grad ~hvp =
  check_dim "eval_hvp" t x;
  if Vec.dim dx <> Vec.dim x then
    invalid_arg "Tape.eval_hvp: dx/x dimension mismatch";
  if Vec.dim grad <> Vec.dim x || Vec.dim hvp <> Vec.dim x then
    invalid_arg "Tape.eval_hvp: grad/hvp/x dimension mismatch";
  let value = forward_tangent ~mu t ws x dx in
  let v = ws.v and adj = ws.adj and w = ws.w in
  let vd = ws.vd and adjd = ws.adjd and wd = ws.wd in
  let n = Array.length t.op in
  Array.fill adj 0 n 0.0;
  Array.fill adjd 0 n 0.0;
  Array.fill grad 0 (Vec.dim grad) 0.0;
  Array.fill hvp 0 (Vec.dim hvp) 0.0;
  adj.(t.root) <- 1.0;
  for k = n - 1 downto 0 do
    let a = adj.(k) in
    let ad = adjd.(k) in
    if a <> 0.0 || ad <> 0.0 then begin
      let o = t.op.(k) in
      if o = op_term then
        for j = t.lo.(k) to t.hi.(k) - 1 do
          let i = t.term_var.(j) in
          let e = t.term_expt.(j) in
          grad.(i) <- grad.(i) +. (a *. e *. v.(k));
          (* d(a·e·v) = e·(da·v + a·dv) *)
          hvp.(i) <- hvp.(i) +. (e *. ((ad *. v.(k)) +. (a *. vd.(k))))
        done
      else if o = op_sum then
        for j = t.lo.(k) to t.hi.(k) - 1 do
          adj.(t.child.(j)) <- adj.(t.child.(j)) +. a;
          adjd.(t.child.(j)) <- adjd.(t.child.(j)) +. ad
        done
      else if o = op_max then
        if mu > 0.0 && Float.is_finite v.(k) then
          for j = t.lo.(k) to t.hi.(k) - 1 do
            adj.(t.child.(j)) <- adj.(t.child.(j)) +. (a *. w.(j));
            (* d(a·w_j) = da·w_j + a·dw_j — the a·dw_j term is where the
               curvature of the smoothed max enters the Hessian. *)
            adjd.(t.child.(j)) <-
              adjd.(t.child.(j)) +. (ad *. w.(j)) +. (a *. wd.(j))
          done
        else begin
          (* Same first-maximising-branch scan as eval_grad; the branch
             indicator is locally constant, so its tangent is zero. *)
          ws.s.(0) <- -1.0;
          for j = t.hi.(k) - 1 downto t.lo.(k) do
            if v.(t.child.(j)) >= v.(k) then ws.s.(0) <- float_of_int j
          done;
          if ws.s.(0) >= 0.0 then begin
            let j = int_of_float ws.s.(0) in
            adj.(t.child.(j)) <- adj.(t.child.(j)) +. a;
            adjd.(t.child.(j)) <- adjd.(t.child.(j)) +. ad
          end
        end
      else if o = op_scale then begin
        adj.(t.lo.(k)) <- adj.(t.lo.(k)) +. (a *. t.c.(k));
        adjd.(t.lo.(k)) <- adjd.(t.lo.(k)) +. (ad *. t.c.(k))
      end
      (* op_const: adjoint discarded *)
    end
  done;
  value

let eval_grad ?(mu = 0.0) t ws ~x ~grad =
  check_dim "eval_grad" t x;
  if Vec.dim grad <> Vec.dim x then
    invalid_arg "Tape.eval_grad: grad/x dimension mismatch";
  let value = forward ~mu ~weights:true t ws x in
  let v = ws.v and adj = ws.adj and w = ws.w in
  let n = Array.length t.op in
  Array.fill adj 0 n 0.0;
  Array.fill grad 0 (Vec.dim grad) 0.0;
  adj.(t.root) <- 1.0;
  for k = n - 1 downto 0 do
    let a = adj.(k) in
    if a <> 0.0 then begin
      let o = t.op.(k) in
      if o = op_term then
        for j = t.lo.(k) to t.hi.(k) - 1 do
          let i = t.term_var.(j) in
          grad.(i) <- grad.(i) +. (a *. t.term_expt.(j) *. v.(k))
        done
      else if o = op_sum then
        for j = t.lo.(k) to t.hi.(k) - 1 do
          adj.(t.child.(j)) <- adj.(t.child.(j)) +. a
        done
      else if o = op_max then
        if mu > 0.0 && Float.is_finite v.(k) then
          for j = t.lo.(k) to t.hi.(k) - 1 do
            adj.(t.child.(j)) <- adj.(t.child.(j)) +. (a *. w.(j))
          done
        else begin
          (* Subgradient: the first maximising branch in construction
             order, exactly as {!Expr.eval_grad} picks it.  [v.(k)] is
             the exact max here, so equality finds that branch.  The
             downward scan keeps the lowest index; the scratch cell
             (not a ref) keeps this allocation-free. *)
          ws.s.(0) <- -1.0;
          for j = t.hi.(k) - 1 downto t.lo.(k) do
            if v.(t.child.(j)) >= v.(k) then ws.s.(0) <- float_of_int j
          done;
          if ws.s.(0) >= 0.0 then begin
            let j = int_of_float ws.s.(0) in
            adj.(t.child.(j)) <- adj.(t.child.(j)) +. a
          end
        end
      else if o = op_scale then
        adj.(t.lo.(k)) <- adj.(t.lo.(k)) +. (a *. t.c.(k))
      (* op_const: adjoint discarded *)
    end
  done;
  value

(** Convex expression DAGs over log-transformed variables.

    The allocation objective of the paper (Section 2) is built from
    posynomial terms [c · Π pᵢ^aᵢ].  Substituting [xᵢ = ln pᵢ] turns
    each term into [c · exp(Σ aᵢ xᵢ)], which is convex in x; sums,
    positive scalings and pointwise maxima preserve convexity, so every
    expression representable here is convex in x.

    Expressions are hash-consed into a DAG by construction (every node
    carries a unique id) and evaluated with memoisation, so shared
    subterms — e.g. the finish-time recurrences [yᵢ] reused by many
    successors — cost O(DAG size), not O(tree size).

    The pointwise [max] is optionally smoothed by log-sum-exp with
    temperature [mu]: [smax(v) = mu·ln Σ exp(vₖ/mu)].  Smoothing keeps
    the objective differentiable for the projected-gradient solver and
    upper-bounds the true max by at most [mu·ln k]. *)

type t

type view =
  | V_const of float
  | V_term of { coeff : float; expts : (int * float) array }
  | V_sum of t array
  | V_max of t array
  | V_scale of float * t
  | V_affine of { bias : float; coefs : (int * float) array }
  | V_hinge of t
      (** One-level structural view of a node, for compilers over the
          DAG (see {!Tape}).  The arrays are the node's own storage —
          treat them as read-only. *)

val view : t -> view

val id : t -> int
(** Unique node identifier (for memo tables and testing). *)

val const : float -> t
(** Constant; must be non-negative and finite to preserve the
    posynomial discipline. *)

val term : coeff:float -> expts:(int * float) list -> t
(** [term ~coeff ~expts] is [coeff · exp(Σ (i,a) ∈ expts. a·xᵢ)], i.e.
    the posynomial monomial [coeff · Π pᵢ^a].  [coeff] must be positive
    and finite.  Duplicate variable indices are summed. *)

val sum : t list -> t
(** Sum of subexpressions; [sum []] is [const 0.]. *)

val max_ : t list -> t
(** Pointwise maximum; requires a non-empty list. *)

val scale : float -> t -> t
(** Multiply by a non-negative constant. *)

val add : t -> t -> t

val affine : bias:float -> coefs:(int * float) list -> t
(** [affine ~bias ~coefs] is [bias + Σ (i,a) ∈ coefs. a·xᵢ] — an affine
    form over the {e log-space} variables, with any-sign bias and
    coefficients (unlike posynomial terms).  Affine forms are convex
    (and concave), so they compose freely with [sum]/[max_]/[scale].
    Duplicate variable indices are summed; zero coefficients dropped.

    Together with {!hinge} this extends the posynomial grammar to the
    penalty objectives of the consensus-ADMM decomposition ({!Admm}):
    consensus copies, pinned parameter variables and augmented-
    Lagrangian hinge terms all live in affine/hinge land. *)

val hinge : t -> t
(** [hinge e] is [(max(e, 0))²] — the positive-part square.  Since
    [u ↦ (max(u,0))²] is convex {e and nondecreasing}, [hinge e] is
    convex for {e any} convex [e]: no sign condition on [e] is needed.
    It is C¹ everywhere (gradient [2·(e)₊·∇e]), so the solver needs no
    smoothing for the hinge itself.  Constant children fold. *)

val sq_affine : bias:float -> coefs:(int * float) list -> t
(** [(bias + Σ a·xᵢ)²] as [hinge e + hinge (−e)] — the full square of
    an affine form (two-sided penalty), still convex. *)

val num_nodes : t -> int
(** Number of distinct DAG nodes reachable from the root. *)

val max_var : t -> int
(** Largest variable index referenced, or [-1] if none. *)

val eval : ?mu:float -> t -> Numeric.Vec.t -> float
(** Evaluate at x.  [mu <= 0.] (default) gives the exact max; [mu > 0.]
    gives the log-sum-exp smoothed upper bound. *)

val eval_grad : ?mu:float -> t -> Numeric.Vec.t -> float * Numeric.Vec.t
(** Value and (sub)gradient at x.  With [mu <= 0.] the max contributes
    the gradient of one maximising branch (a valid subgradient); with
    [mu > 0.] the softmax-weighted combination (the exact gradient of
    the smoothed function). *)

val eval_p : ?mu:float -> t -> Numeric.Vec.t -> float
(** Evaluate with variables given in p-space (processor counts);
    equivalent to [eval expr (map ln p)].  All components must be
    positive. *)

val pp : Format.formatter -> t -> unit
(** Structural printer (debugging aid). *)

(* Jacobi (diagonal) preconditioner for the solver's projected CG.

   The tape exposes the exact diagonal of the Gauss–Newton part of the
   smoothed Hessian ({!Tape.hess_diag}); a diagonal solve with it is
   the classical Jacobi preconditioner.  The posynomial terms span
   wildly different magnitudes (per-node work terms vs. critical-path
   sums), which is precisely the per-coordinate scaling imbalance
   Jacobi repairs, so even this cheapest preconditioner cuts the CG
   iteration count visibly (the `solver.cg_iters` Obs counter tracks
   it). *)

module Vec = Numeric.Vec

(* Relative floor for diagonal entries: entries below [floor_rel] times
   the largest free entry (or nonpositive, or non-finite ones) are
   clamped up so the preconditioner stays SPD and bounded.

   The floor doubles as a damping term, and its size matters: the
   Gauss-Newton diagonal drops the smoothed-max coupling curvature, so
   a coordinate living only in currently-losing max branches reports
   near-zero curvature even though a modest move flips the branch (a
   kink the quadratic model cannot see).  At 1e-10 the Jacobi inverse
   amplified such coordinates ~1e10-fold, Armijo then shrank every
   step to protect them, and on kink-heavy instances the Newton stage
   stalled percents above the optimum.  1e-6 caps the amplification
   while leaving genuinely-scaled coordinates untouched (measured:
   same-or-better CG counts, stalls gone). *)
let floor_rel = 1e-6

let jacobi_clamp ~free m =
  let n = Vec.dim m in
  let dmax = ref 0.0 in
  for i = 0 to n - 1 do
    if free.(i) && Float.is_finite m.(i) && m.(i) > !dmax then dmax := m.(i)
  done;
  if !dmax > 0.0 then begin
    let fl = floor_rel *. !dmax in
    for i = 0 to n - 1 do
      m.(i) <- (if Float.is_finite m.(i) && m.(i) > fl then m.(i) else fl)
    done;
    true
  end
  else begin
    (* Degenerate diagonal (e.g. every free coordinate dead at this
       point): fall back to the identity, i.e. unpreconditioned CG. *)
    Array.fill m 0 n 1.0;
    false
  end

let apply ~free m r z =
  let n = Vec.dim r in
  for i = 0 to n - 1 do
    z.(i) <- (if free.(i) then r.(i) /. m.(i) else 0.0)
  done

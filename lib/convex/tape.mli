(** Flat-tape compilation of {!Expr} DAGs with reverse-mode gradients.

    {!Expr.eval_grad} is forward-mode over the DAG: every node carries
    a dense n-vector and every edge costs an O(n) [axpy], so one
    gradient is O(n · |DAG|) work and O(|DAG|) heap vectors.  The
    solver calls it thousands of times per problem, which is what
    limits the allocator to toy MDGs.

    [compile] walks the DAG once and emits a flat, topologically
    sorted instruction array: constant subtrees are folded, constant
    summands are fused into a per-[Sum] bias, and every [Term]'s
    exponent list is flattened into shared index/exponent arrays.  A
    reusable {!workspace} holds the per-slot value and adjoint buffers
    plus a softmax-weight slab (sized at compile time) for the
    smoothed [max].  Evaluation is one forward sweep over the tape;
    the gradient is a forward sweep followed by a reverse (adjoint)
    sweep that accumulates scalar adjoints straight into the caller's
    output vector — O(|tape|) total, with zero heap allocation once
    the workspace exists.

    Semantics match {!Expr.eval} / {!Expr.eval_grad} exactly,
    including the subgradient choice at [mu <= 0] (the first
    maximising branch, in construction order) and the log-sum-exp
    smoothing for [mu > 0]; the reference implementations remain in
    {!Expr} and the test suite cross-checks the two.

    The extended grammar ({!Expr.affine} leaves and {!Expr.hinge}
    positive-part squares, used by the consensus-ADMM block
    objectives) compiles to two extra opcodes: affine slots share the
    term index/coefficient arrays (so the gradient transpose covers
    them for free), and hinges are unary slots whose [2·(u)₊] adjoint
    factor also injects adjoint tangents at [mu <= 0] — the masked-HVP
    closure accounts for that. *)

type t
(** A compiled objective: immutable, shareable between workspaces. *)

type workspace
(** Mutable evaluation buffers for one tape.  Not thread-safe; create
    one workspace per concurrent evaluator. *)

val compile : Expr.t -> t
(** One-shot compilation of the DAG reachable from the root. *)

val create_workspace : t -> workspace
(** Fresh buffers sized for the tape.  All subsequent [eval] /
    [eval_grad] calls through this workspace are allocation-free. *)

val n_vars : t -> int
(** Number of variables the tape reads, i.e. {!Expr.max_var}[ + 1]. *)

val num_slots : t -> int
(** Number of instructions (distinct live DAG nodes after folding). *)

val num_term_entries : t -> int
(** Total flattened (variable, exponent) pairs across all terms. *)

val num_children : t -> int
(** Total flattened child references across all sums and maxima. *)

val eval : ?mu:float -> t -> workspace -> Numeric.Vec.t -> float
(** Forward sweep; equals {!Expr.eval}[ ~mu root x].  Raises
    [Invalid_argument] if [x] is shorter than {!n_vars}. *)

val root_branches : t -> workspace -> float array
(** When the tape's root is a max: the values of its branches (with
    the root's fused scale factor applied) as left in [workspace] by
    the {e last} forward sweep — call {!eval} at the point (and [mu])
    of interest first.  Branches appear in construction order, so for
    an objective built as [max_ [a; b]] the result is [[| v_a; v_b |]].
    Returns [[||]] when the root is not a max (after simplification).
    Note the branches of a [mu > 0] sweep are themselves smoothed if
    they contain inner maxima. *)

val eval_grad :
  ?mu:float -> t -> workspace -> x:Numeric.Vec.t -> grad:Numeric.Vec.t -> float
(** Forward + reverse sweep.  Overwrites [grad] (which must have the
    same dimension as [x]) with the (sub)gradient and returns the
    value; equals {!Expr.eval_grad}[ ~mu root x]. *)

val eval_hvp :
  ?mu:float ->
  t ->
  workspace ->
  x:Numeric.Vec.t ->
  dx:Numeric.Vec.t ->
  grad:Numeric.Vec.t ->
  hvp:Numeric.Vec.t ->
  float
(** Hessian-vector product by forward-over-reverse: one forward sweep
    carrying first-order tangents along the direction [dx], then one
    reverse sweep propagating both adjoints and adjoint tangents.
    Overwrites [grad] with the gradient (identical to {!eval_grad})
    and [hvp] with [H(x)·dx], and returns the value — all in
    O(|tape|), allocation-free on a warm workspace (roughly twice the
    cost of {!eval_grad}).

    With [mu > 0] the smoothed objective is C² and [hvp] is its exact
    Hessian-vector product.  With [mu <= 0] the objective is piecewise
    smooth; [hvp] is the Hessian of the currently active piece (each
    max differentiates through its first maximising branch, matching
    the subgradient tie-break), which is the generalised Hessian used
    by the solver's final polishing stage. *)

(** {1 Parallel level-scheduled sweeps}

    The tape's topological order induces a level schedule: slots of
    equal depth are mutually independent, so each level can be swept
    by several OCaml domains at once.  The reverse sweeps are
    parallelised by {e gathering} each slot's adjoint from its parents
    (via a transpose built once per tape) instead of scattering, with
    the incoming edges ordered so every per-slot accumulation replays
    the serial sweep's additions in the same order — results are
    bit-identical to the serial entry points.  Narrow levels run on
    the calling domain only, so small tapes pay one pool handoff and
    nothing else; with a pool of size 1 these are exactly the serial
    sweeps. *)

val num_levels : t -> int
(** Depth of the level schedule (longest instruction chain).  Builds
    the schedule on first use; the plan is cached in the tape. *)

val eval_pool :
  ?mu:float -> t -> Numeric.Domain_pool.t -> workspace -> Numeric.Vec.t -> float
(** {!eval} swept by the pool's domains, bit-identical to {!eval}. *)

val eval_grad_pool :
  ?mu:float ->
  t ->
  Numeric.Domain_pool.t ->
  workspace ->
  x:Numeric.Vec.t ->
  grad:Numeric.Vec.t ->
  float
(** {!eval_grad} swept by the pool's domains, bit-identical to it. *)

val eval_hvp_pool :
  ?mu:float ->
  t ->
  Numeric.Domain_pool.t ->
  workspace ->
  x:Numeric.Vec.t ->
  dx:Numeric.Vec.t ->
  grad:Numeric.Vec.t ->
  hvp:Numeric.Vec.t ->
  float
(** {!eval_hvp} swept by the pool's domains, bit-identical to it. *)

(** {1 Masked Hessian-vector products}

    Inside projected Newton-CG most coordinates are frozen on box
    faces: tangents enter only through the free coordinates, so most
    of the tape is dead in the HVP's forward-tangent sweep, and (at
    [mu <= 0], where maxima differentiate through one branch) in the
    reverse sweep too.  [hvp_mask] computes, for the current free set,
    the {e active} slots (those whose value depends on a free
    variable) and the {e union} with the slots reachable by adjoint
    tangents; [hvp_masked] then sweeps only those slots.  Results
    equal {!eval_hvp}'s [hvp] on the free coordinates (up to the sign
    of exact zeros); frozen coordinates are returned as zero.

    Protocol: call {!eval_grad} at the point [x] with the same [mu],
    then [hvp_mask], then any number of [hvp_masked] calls — with no
    other sweep through the same workspace in between ([hvp_masked]
    reuses the values, softmax weights, adjoints and max selections
    the gradient sweep left behind). *)

val hvp_mask : ?mu:float -> t -> workspace -> free:bool array -> unit
(** Prepare the mask for the given free set.  [free] must cover all
    tape variables.  Requires a preceding {!eval_grad} with the same
    [mu] on this workspace. *)

val hvp_masked :
  t ->
  workspace ->
  x:Numeric.Vec.t ->
  dx:Numeric.Vec.t ->
  hvp:Numeric.Vec.t ->
  unit
(** Overwrite [hvp] with [H(x)·dx] restricted to the mask's free
    coordinates.  [x] must be the point of the preparing
    {!eval_grad}.  O(active ∪ reachable) per call. *)

val mask_active : workspace -> int
(** Slots swept by the masked forward tangent (diagnostics). *)

val mask_union : workspace -> int
(** Slots swept by the masked reverse pass (diagnostics). *)

val hess_diag : t -> workspace -> diag:Numeric.Vec.t -> unit
(** Overwrite [diag] with the Gauss–Newton diagonal of the Hessian at
    the point of the last {!eval_grad} on this workspace: each
    posynomial term contributes [adj·v·e²] per coordinate, and each
    active hinge over a term or affine child contributes
    [2·adj·(∇u)ᵢ²]; the (PSD) smoothed-max curvature is dropped.
    Basis of the solver's Jacobi preconditioner. *)

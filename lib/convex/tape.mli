(** Flat-tape compilation of {!Expr} DAGs with reverse-mode gradients.

    {!Expr.eval_grad} is forward-mode over the DAG: every node carries
    a dense n-vector and every edge costs an O(n) [axpy], so one
    gradient is O(n · |DAG|) work and O(|DAG|) heap vectors.  The
    solver calls it thousands of times per problem, which is what
    limits the allocator to toy MDGs.

    [compile] walks the DAG once and emits a flat, topologically
    sorted instruction array: constant subtrees are folded, constant
    summands are fused into a per-[Sum] bias, and every [Term]'s
    exponent list is flattened into shared index/exponent arrays.  A
    reusable {!workspace} holds the per-slot value and adjoint buffers
    plus a softmax-weight slab (sized at compile time) for the
    smoothed [max].  Evaluation is one forward sweep over the tape;
    the gradient is a forward sweep followed by a reverse (adjoint)
    sweep that accumulates scalar adjoints straight into the caller's
    output vector — O(|tape|) total, with zero heap allocation once
    the workspace exists.

    Semantics match {!Expr.eval} / {!Expr.eval_grad} exactly,
    including the subgradient choice at [mu <= 0] (the first
    maximising branch, in construction order) and the log-sum-exp
    smoothing for [mu > 0]; the reference implementations remain in
    {!Expr} and the test suite cross-checks the two. *)

type t
(** A compiled objective: immutable, shareable between workspaces. *)

type workspace
(** Mutable evaluation buffers for one tape.  Not thread-safe; create
    one workspace per concurrent evaluator. *)

val compile : Expr.t -> t
(** One-shot compilation of the DAG reachable from the root. *)

val create_workspace : t -> workspace
(** Fresh buffers sized for the tape.  All subsequent [eval] /
    [eval_grad] calls through this workspace are allocation-free. *)

val n_vars : t -> int
(** Number of variables the tape reads, i.e. {!Expr.max_var}[ + 1]. *)

val num_slots : t -> int
(** Number of instructions (distinct live DAG nodes after folding). *)

val num_term_entries : t -> int
(** Total flattened (variable, exponent) pairs across all terms. *)

val num_children : t -> int
(** Total flattened child references across all sums and maxima. *)

val eval : ?mu:float -> t -> workspace -> Numeric.Vec.t -> float
(** Forward sweep; equals {!Expr.eval}[ ~mu root x].  Raises
    [Invalid_argument] if [x] is shorter than {!n_vars}. *)

val eval_grad :
  ?mu:float -> t -> workspace -> x:Numeric.Vec.t -> grad:Numeric.Vec.t -> float
(** Forward + reverse sweep.  Overwrites [grad] (which must have the
    same dimension as [x]) with the (sub)gradient and returns the
    value; equals {!Expr.eval_grad}[ ~mu root x]. *)

val eval_hvp :
  ?mu:float ->
  t ->
  workspace ->
  x:Numeric.Vec.t ->
  dx:Numeric.Vec.t ->
  grad:Numeric.Vec.t ->
  hvp:Numeric.Vec.t ->
  float
(** Hessian-vector product by forward-over-reverse: one forward sweep
    carrying first-order tangents along the direction [dx], then one
    reverse sweep propagating both adjoints and adjoint tangents.
    Overwrites [grad] with the gradient (identical to {!eval_grad})
    and [hvp] with [H(x)·dx], and returns the value — all in
    O(|tape|), allocation-free on a warm workspace (roughly twice the
    cost of {!eval_grad}).

    With [mu > 0] the smoothed objective is C² and [hvp] is its exact
    Hessian-vector product.  With [mu <= 0] the objective is piecewise
    smooth; [hvp] is the Hessian of the currently active piece (each
    max differentiates through its first maximising branch, matching
    the subgradient tie-break), which is the generalised Hessian used
    by the solver's final polishing stage. *)

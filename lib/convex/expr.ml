module Vec = Numeric.Vec

type node =
  | Const of float
  | Term of { coeff : float; expts : (int * float) array }
  | Sum of t array
  | Max of t array
  | Scale of float * t
  | Affine of { bias : float; coefs : (int * float) array }
  | Hinge of t

and t = { id : int; node : node }

type view =
  | V_const of float
  | V_term of { coeff : float; expts : (int * float) array }
  | V_sum of t array
  | V_max of t array
  | V_scale of float * t
  | V_affine of { bias : float; coefs : (int * float) array }
  | V_hinge of t

let view e =
  match e.node with
  | Const c -> V_const c
  | Term { coeff; expts } -> V_term { coeff; expts }
  | Sum es -> V_sum es
  | Max es -> V_max es
  | Scale (c, e') -> V_scale (c, e')
  | Affine { bias; coefs } -> V_affine { bias; coefs }
  | Hinge e' -> V_hinge e'

let id e = e.id

(* Node ids only need to be unique and increasing along construction
   order; the atomic counter keeps them unique when expressions are
   built concurrently on several domains (the plan server does). *)
let counter = Atomic.make 1

let mk node = { id = Atomic.fetch_and_add counter 1; node }

let const c =
  if not (Float.is_finite c) || c < 0.0 then
    invalid_arg "Expr.const: negative or non-finite constant";
  mk (Const c)

let term ~coeff ~expts =
  if not (Float.is_finite coeff) || coeff <= 0.0 then
    invalid_arg "Expr.term: coefficient must be positive and finite";
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (i, a) ->
      if i < 0 then invalid_arg "Expr.term: negative variable index";
      if not (Float.is_finite a) then invalid_arg "Expr.term: non-finite exponent";
      let cur = Option.value (Hashtbl.find_opt tbl i) ~default:0.0 in
      Hashtbl.replace tbl i (cur +. a))
    expts;
  let expts =
    Hashtbl.fold (fun i a acc -> if a = 0.0 then acc else (i, a) :: acc) tbl []
    |> List.sort (fun (i, _) (j, _) -> Int.compare i j)
    |> Array.of_list
  in
  if Array.length expts = 0 then mk (Const coeff) else mk (Term { coeff; expts })

let sum = function
  | [] -> const 0.0
  | [ e ] -> e
  | es -> mk (Sum (Array.of_list es))

let max_ = function
  | [] -> invalid_arg "Expr.max_: empty list"
  | [ e ] -> e
  | es -> mk (Max (Array.of_list es))

let scale c e =
  if not (Float.is_finite c) || c < 0.0 then
    invalid_arg "Expr.scale: negative or non-finite factor";
  if c = 1.0 then e else mk (Scale (c, e))

let add a b = sum [ a; b ]

(* Affine forms and positive-part squares extend the posynomial
   language just enough for penalty objectives (consensus-ADMM block
   subproblems): an affine form is both convex and concave, and
   [hinge e = (max(e,0))²] composes a nondecreasing convex scalar
   function with a convex [e], so every expression built from the
   extended grammar is still convex in x. *)
let affine ~bias ~coefs =
  if not (Float.is_finite bias) then invalid_arg "Expr.affine: non-finite bias";
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (i, a) ->
      if i < 0 then invalid_arg "Expr.affine: negative variable index";
      if not (Float.is_finite a) then
        invalid_arg "Expr.affine: non-finite coefficient";
      let cur = Option.value (Hashtbl.find_opt tbl i) ~default:0.0 in
      Hashtbl.replace tbl i (cur +. a))
    coefs;
  let coefs =
    Hashtbl.fold (fun i a acc -> if a = 0.0 then acc else (i, a) :: acc) tbl []
    |> List.sort (fun (i, _) (j, _) -> Int.compare i j)
    |> Array.of_list
  in
  mk (Affine { bias; coefs })

let hinge e =
  match e.node with
  | Const c ->
      let u = Float.max c 0.0 in
      const (u *. u)
  | Affine { bias; coefs } when Array.length coefs = 0 ->
      let u = Float.max bias 0.0 in
      const (u *. u)
  | _ -> mk (Hinge e)

(* (e)² for an affine [e]: the two one-sided hinges partition the line,
   so their sum is the full square — expressible without a dedicated
   square node, and each summand is convex on its own. *)
let sq_affine ~bias ~coefs =
  let neg = List.map (fun (i, a) -> (i, -.a)) coefs in
  add (hinge (affine ~bias ~coefs)) (hinge (affine ~bias:(-.bias) ~coefs:neg))

let fold_reachable f acc root =
  let seen = Hashtbl.create 64 in
  let rec go acc e =
    if Hashtbl.mem seen e.id then acc
    else begin
      Hashtbl.add seen e.id ();
      let acc = f acc e in
      match e.node with
      | Const _ | Term _ | Affine _ -> acc
      | Scale (_, e') | Hinge e' -> go acc e'
      | Sum es | Max es -> Array.fold_left go acc es
    end
  in
  go acc root

let num_nodes root = fold_reachable (fun n _ -> n + 1) 0 root

let max_var root =
  fold_reachable
    (fun m e ->
      match e.node with
      | Term { expts; _ } ->
          Array.fold_left (fun m (i, _) -> Int.max m i) m expts
      | Affine { coefs; _ } ->
          Array.fold_left (fun m (i, _) -> Int.max m i) m coefs
      | Const _ | Sum _ | Max _ | Scale _ | Hinge _ -> m)
    (-1) root

(* Log-sum-exp of [vs] at temperature [mu], with the usual max shift for
   numerical stability.  Exact max when [mu <= 0]. *)
let smooth_max ~mu vs =
  let m = Array.fold_left Float.max neg_infinity vs in
  if mu <= 0.0 || not (Float.is_finite m) then m
  else
    let s = Array.fold_left (fun acc v -> acc +. exp ((v -. m) /. mu)) 0.0 vs in
    m +. (mu *. log s)

let check_vars name e x =
  let mv = max_var e in
  if mv >= Vec.dim x then
    invalid_arg
      (Printf.sprintf "Expr.%s: expression uses variable %d but x has dim %d"
         name mv (Vec.dim x))

let eval ?(mu = 0.0) e x =
  check_vars "eval" e x;
  let memo = Hashtbl.create 64 in
  let rec go e =
    match Hashtbl.find_opt memo e.id with
    | Some v -> v
    | None ->
        let v =
          match e.node with
          | Const c -> c
          | Term { coeff; expts } ->
              let s =
                Array.fold_left (fun acc (i, a) -> acc +. (a *. x.(i))) 0.0 expts
              in
              coeff *. exp s
          | Sum es -> Array.fold_left (fun acc e' -> acc +. go e') 0.0 es
          | Max es -> smooth_max ~mu (Array.map go es)
          | Scale (c, e') -> c *. go e'
          | Affine { bias; coefs } ->
              Array.fold_left
                (fun acc (i, a) -> acc +. (a *. x.(i)))
                bias coefs
          | Hinge e' ->
              let u = Float.max (go e') 0.0 in
              u *. u
        in
        Hashtbl.add memo e.id v;
        v
  in
  go e

let eval_grad ?(mu = 0.0) e x =
  check_vars "eval_grad" e x;
  let n = Vec.dim x in
  let memo : (int, float * Vec.t) Hashtbl.t = Hashtbl.create 64 in
  let rec go e =
    match Hashtbl.find_opt memo e.id with
    | Some vg -> vg
    | None ->
        let vg =
          match e.node with
          | Const c -> (c, Vec.create n 0.0)
          | Term { coeff; expts } ->
              let s =
                Array.fold_left (fun acc (i, a) -> acc +. (a *. x.(i))) 0.0 expts
              in
              let v = coeff *. exp s in
              let g = Vec.create n 0.0 in
              Array.iter (fun (i, a) -> g.(i) <- a *. v) expts;
              (v, g)
          | Sum es ->
              let v = ref 0.0 in
              let g = Vec.create n 0.0 in
              Array.iter
                (fun e' ->
                  let v', g' = go e' in
                  v := !v +. v';
                  Vec.axpy 1.0 g' g)
                es;
              (!v, g)
          | Max es ->
              let vgs = Array.map go es in
              let vs = Array.map fst vgs in
              let v = smooth_max ~mu vs in
              let g = Vec.create n 0.0 in
              if mu <= 0.0 then begin
                (* Subgradient: pick one maximising branch. *)
                let best = ref 0 in
                Array.iteri (fun k vk -> if vk > vs.(!best) then best := k) vs;
                Vec.axpy 1.0 (snd vgs.(!best)) g
              end
              else begin
                let m = Array.fold_left Float.max neg_infinity vs in
                let ws = Array.map (fun vk -> exp ((vk -. m) /. mu)) vs in
                let z = Array.fold_left ( +. ) 0.0 ws in
                Array.iteri (fun k (_, gk) -> Vec.axpy (ws.(k) /. z) gk g) vgs
              end;
              (v, g)
          | Scale (c, e') ->
              let v', g' = go e' in
              (c *. v', Vec.scale c g')
          | Affine { bias; coefs } ->
              let v =
                Array.fold_left
                  (fun acc (i, a) -> acc +. (a *. x.(i)))
                  bias coefs
              in
              let g = Vec.create n 0.0 in
              Array.iter (fun (i, a) -> g.(i) <- a) coefs;
              (v, g)
          | Hinge e' ->
              let v', g' = go e' in
              let u = Float.max v' 0.0 in
              (u *. u, Vec.scale (2.0 *. u) g')
        in
        Hashtbl.add memo e.id vg;
        vg
  in
  go e

let eval_p ?(mu = 0.0) e p =
  Array.iter
    (fun v ->
      if v <= 0.0 then invalid_arg "Expr.eval_p: non-positive processor count")
    p;
  eval ~mu e (Vec.map log p)

let rec pp fmt e =
  match e.node with
  | Const c -> Format.fprintf fmt "%g" c
  | Term { coeff; expts } ->
      Format.fprintf fmt "%g" coeff;
      Array.iter (fun (i, a) -> Format.fprintf fmt "*p%d^%g" i a) expts
  | Sum es -> pp_seq fmt "+" es
  | Max es ->
      Format.fprintf fmt "max";
      pp_seq fmt ", " es
  | Scale (c, e') -> Format.fprintf fmt "%g*(%a)" c pp e'
  | Affine { bias; coefs } ->
      Format.fprintf fmt "(%g" bias;
      Array.iter (fun (i, a) -> Format.fprintf fmt "%+g*x%d" a i) coefs;
      Format.fprintf fmt ")"
  | Hinge e' -> Format.fprintf fmt "pos(%a)^2" pp e'

and pp_seq fmt sep es =
  Format.fprintf fmt "(";
  Array.iteri
    (fun k e ->
      if k > 0 then Format.fprintf fmt "%s" sep;
      pp fmt e)
    es;
  Format.fprintf fmt ")"

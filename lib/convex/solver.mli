(** Projected-gradient solver for box-constrained convex programs.

    Minimises a convex expression (see {!Expr}) over a box
    [lo ≤ x ≤ hi].  Non-smooth maxima are handled by annealing a
    log-sum-exp smoothing temperature: each stage minimises the smoothed
    (convex, C¹) objective by projected gradient descent with Armijo
    backtracking, then the temperature shrinks.  Because the smoothed
    objective over-estimates the true one by at most [mu·ln k], the
    final iterate is within a vanishing additive gap of the global
    minimum of the original problem.

    The objective is compiled once per solve to a flat instruction
    tape ({!Tape}) with reverse-mode gradients, so every FISTA
    iteration, Armijo probe and per-stage exact evaluation costs
    O(|tape|) and allocates nothing — instead of the O(n·|DAG|)
    forward-mode sweep of {!Expr.eval_grad}.  The DAG-walking
    implementation remains available as the [Reference] engine for
    cross-checking.

    On the tape engine each stage — including the exact (mu = 0)
    polish — is finished by a projected Newton-CG refinement
    ({!options.second_order}, on by default): after a short FISTA
    burst, Jacobi-preconditioned conjugate gradients over masked tape
    Hessian-vector products ({!Tape.hvp_masked}, swept over the
    instructions live under the current free set only) solve the
    Newton system on the free (non-bound) variables, cutting the
    iteration count at tight smoothing temperatures from hundreds to a
    handful.  At mu = 0 the masked HVP is the generalised Hessian of
    the active piece, and the projected-Newton polish is what pushes a
    stalled first-order anneal the last ~1e-3 to the optimum.  Large
    tapes can additionally run every full-tape sweep on several OCaml
    domains ({!options.domains}), bit-identically to the serial sweep.
    The [Reference] engine has no second-order oracle and keeps the
    pure first-order behaviour.

    Supplying a starting point [x0] warm-starts the solve; when an
    Armijo-probed gradient step at the tightest smoothing temperature
    can no longer decrease the objective appreciably — i.e. the point
    is already near-optimal, as a previous optimum from a nearby
    problem in a parameter sweep typically is — the anneal is skipped
    entirely, which makes such re-solves several times cheaper. *)

type problem = {
  objective : Expr.t;
  lo : Numeric.Vec.t;
  hi : Numeric.Vec.t;
}

type options = {
  max_iters : int;        (** per smoothing stage *)
  tol : float;            (** stop when the projected-gradient step
                              moves x by less than [tol] in inf-norm *)
  mu_init : float;        (** initial smoothing temperature, as a
                              fraction of the initial objective value *)
  mu_final : float;       (** final temperature (same scaling) *)
  mu_decay : float;       (** multiplicative decay per stage, in (0,1) *)
  step_init : float;      (** initial trial step for line search *)
  armijo_c : float;       (** sufficient-decrease constant *)
  armijo_shrink : float;  (** backtracking factor, in (0,1) *)
  second_order : bool;    (** finish smoothed stages with projected
                              Newton-CG over tape Hessian-vector
                              products (tape engines only) *)
  fista_burst : int;      (** FISTA iterations per smoothed stage before
                              handing over to Newton-CG *)
  newton_max_iters : int; (** outer Newton iterations per stage *)
  cg_max_iters : int;     (** CG iterations per Newton system (also
                              capped at the variable count) *)
  accept_warm_start : bool;
      (** when a supplied [x0] passes the warm-start probe at the
          tightest smoothing temperature {e and} an identical probe of
          the exact (unsmoothed) objective — i.e. no Armijo-backtracked
          projected-gradient step achieves more than the stall
          tolerance, the criterion every stage itself stops on — return
          [x0] immediately with zero iterations.  Off by default.  The
          probes are directional certificates only: at kinks of the
          exact max objective they can accept a point ~1e-5 above the
          optimum, so callers needing tighter guarantees (the plan
          cache among them) should reuse stored results for exact
          duplicates instead. *)
  precondition : bool;
      (** Jacobi-precondition the Newton-CG inner solves with the
          tape's Gauss–Newton Hessian diagonal ({!Tape.hess_diag},
          clamped by {!Precond.jacobi_clamp}).  On by default; with it
          off the identity diagonal reproduces plain CG bit for bit. *)
  domains : int;
      (** domains for the parallel level-scheduled tape sweeps
          ({!Tape.eval_pool} and friends) on tapes of at least ~1000
          slots.  1 = serial (the sweeps are then exactly the serial
          ones); 0 = one per recommended core; parallel results are
          bit-identical to serial either way.  Defaults to the
          [PARADIGM_DOMAINS] environment variable, else 1. *)
}

val default_options : options

type result = {
  x : Numeric.Vec.t;      (** final iterate (inside the box) *)
  value : float;          (** exact (unsmoothed) objective at [x] *)
  iterations : int;       (** total gradient iterations across stages
                              (FISTA plus Newton outer iterations) *)
  stages : int;           (** smoothing stages performed *)
  converged : bool;       (** the final exact (unsmoothed) stage hit its
                              step tolerance *)
  hvp_evals : int;        (** Hessian-vector products evaluated *)
  cg_iterations : int;    (** total CG iterations across Newton solves *)
}

type compiled
(** A tape-compiled objective together with its reusable evaluation
    workspace.  Compile once per problem and share across solves and
    exact evaluations; the workspace is mutable, so a [compiled] value
    must not be used from two evaluators concurrently. *)

val compile : ?obs:Obs.t -> Expr.t -> compiled
(** Compile an objective to a flat tape (see {!Tape}).  With a live
    [obs] sink the compilation is wrapped in a ["solver.compile"] span
    and emits a ["solver.tape"] counter sampling the DAG and tape
    sizes ([dag_nodes], [slots], [term_entries], [children], [vars]). *)

val compiled_branches : compiled -> float array
(** {!Tape.root_branches} of the compiled tape: the root max's branch
    values as left by the last {!eval_compiled} — call that first at
    the point of interest.  Empty when the objective's root is not a
    max. *)

val eval_compiled : ?mu:float -> compiled -> Numeric.Vec.t -> float
(** Evaluate a compiled objective; equals {!Expr.eval} on the original
    expression.  O(|tape|), allocation-free. *)

val share_tape : compiled -> compiled
(** A new [compiled] value sharing the (immutable) instruction tape but
    owning a fresh evaluation workspace.  This is how a cached
    compilation is handed to concurrent solvers: each domain calls
    [share_tape] on the cache entry and works in its own scratch
    space.  O(|tape|) allocation, no recompilation. *)

type engine =
  | Tape  (** compile the objective to a tape inside [solve] (default) *)
  | Precompiled of compiled  (** reuse an existing {!compile} result *)
  | Reference
      (** the memoised DAG-walking {!Expr.eval} / {!Expr.eval_grad} —
          the slow reference implementation, kept for cross-checks *)

val solve :
  ?options:options ->
  ?engine:engine ->
  ?obs:Obs.t ->
  ?x0:Numeric.Vec.t ->
  problem ->
  result
(** Solve the problem.  [x0] defaults to the box centre; it is projected
    into the box first.  Supplying [x0] enables warm-starting: if the
    point is already near-optimal at the tightest smoothing
    temperature, all earlier annealing stages are skipped; and the
    result is never worse than [x0] itself — if the staged solve ends
    above the (projected) starting point, the starting point is
    returned.  Raises
    [Invalid_argument] if the box is empty or dimensions disagree, or
    if a [Precompiled] tape references variables outside the box.

    With a live [obs] sink (default {!Obs.null}: no overhead) the
    solve is wrapped in a ["solver.solve"] span and every smoothing
    stage emits a ["solver.stage"] counter sampling the smoothing
    temperature [mu], gradient [iterations], Armijo [backtracks], the
    exact (unsmoothed) [objective] reached and its [decrease] from the
    previous stage.  Stages refined by Newton-CG additionally emit
    ["solver.hvp"] (Hessian-vector products) and ["solver.cg_iters"]
    (outer Newton and inner CG iterations); a warm-started solve emits
    one ["solver.warm_start"] counter recording the probed gradient-step
    decrease at [x0] and whether the anneal was skipped. *)

val golden_section :
  ?tol:float -> f:(float -> float) -> lo:float -> hi:float -> unit -> float
(** Minimiser of a unimodal function on [lo, hi] by golden-section
    search (used for one-dimensional calibration problems). *)

module Vec = Numeric.Vec

type problem = {
  objective : Expr.t;
  lo : Vec.t;
  hi : Vec.t;
}

type options = {
  max_iters : int;
  tol : float;
  mu_init : float;
  mu_final : float;
  mu_decay : float;
  step_init : float;
  armijo_c : float;
  armijo_shrink : float;
}

let default_options =
  {
    max_iters = 300;
    tol = 1e-6;
    mu_init = 1e-2;
    mu_final = 1e-6;
    mu_decay = 0.01;
    step_init = 1.0;
    armijo_c = 1e-4;
    armijo_shrink = 0.5;
  }

type result = {
  x : Vec.t;
  value : float;
  iterations : int;
  stages : int;
  converged : bool;
}

let validate { objective; lo; hi } =
  let n = Vec.dim lo in
  if Vec.dim hi <> n then invalid_arg "Solver.solve: lo/hi dimension mismatch";
  for i = 0 to n - 1 do
    if lo.(i) > hi.(i) then invalid_arg "Solver.solve: empty box"
  done;
  if Expr.max_var objective >= n then
    invalid_arg "Solver.solve: objective references variables outside the box"

(* One stage of accelerated projected gradient descent (FISTA with
   function-value restart) with Armijo backtracking, at a fixed
   smoothing temperature.  Returns (x, iterations, hit_tol,
   backtracks) where [backtracks] counts line-search shrink steps.

   The momentum point [y] may leave the box; the objective is defined
   on all of R^n (sums of exponentials), so evaluating there is fine —
   the prox step projects back. *)
let stage ~opts ~mu ~objective ~lo ~hi x0 =
  let project v = Vec.clamp ~lo ~hi v in
  let x = ref (project x0) in
  let y = ref !x in
  let t = ref 1.0 in
  let step = ref opts.step_init in
  let fx = ref (Expr.eval ~mu objective !x) in
  let iters = ref 0 in
  let backtracks = ref 0 in
  let hit_tol = ref false in
  (try
     for _ = 1 to opts.max_iters do
       incr iters;
       let f_y, g = Expr.eval_grad ~mu objective !y in
       (* Backtracking on the projected-arc step from y. *)
       let rec search step_try tries =
         if tries = 0 then None
         else
           let cand = project (Vec.sub !y (Vec.scale step_try g)) in
           let fc = Expr.eval ~mu objective cand in
           let d = Vec.sub !y cand in
           if fc <= f_y -. (opts.armijo_c /. step_try *. Vec.dot d d) then
             Some (cand, fc, step_try)
           else begin
             incr backtracks;
             search (step_try *. opts.armijo_shrink) (tries - 1)
           end
       in
       match search !step 60 with
       | None ->
           hit_tol := true;
           raise Exit
       | Some (cand, fc, used_step) ->
           (* Let the step grow back after a successful iteration so a
              single steep region does not clamp it forever. *)
           step := Float.min (used_step *. 2.0) (opts.step_init *. 1e3);
           let move = Vec.norm_inf (Vec.sub cand !x) in
           if fc > !fx then begin
             (* Momentum overshot: restart from the best iterate. *)
             t := 1.0;
             y := !x;
             if move < opts.tol then begin
               hit_tol := true;
               raise Exit
             end
           end
           else begin
             let t' = (1.0 +. sqrt (1.0 +. (4.0 *. !t *. !t))) /. 2.0 in
             let beta = (!t -. 1.0) /. t' in
             y := Vec.add cand (Vec.scale beta (Vec.sub cand !x));
             t := t';
             x := cand;
             fx := fc;
             if move < opts.tol then begin
               hit_tol := true;
               raise Exit
             end
           end
     done
   with Exit -> ());
  (!x, !iters, !hit_tol, !backtracks)

let solve ?(options = default_options) ?(obs = Obs.null) ?x0 problem =
  validate problem;
  let { objective; lo; hi } = problem in
  let n = Vec.dim lo in
  let x0 =
    match x0 with
    | Some x ->
        if Vec.dim x <> n then invalid_arg "Solver.solve: x0 dimension mismatch";
        Vec.clamp ~lo ~hi x
    | None -> Vec.init n (fun i -> (lo.(i) +. hi.(i)) /. 2.0)
  in
  Obs.span obs ~cat:"solver" "solver.solve"
    ~args:[ ("vars", Obs.Events.Int n) ]
  @@ fun () ->
  (* Scale smoothing temperatures by the magnitude of the objective so
     the anneal behaves the same for millisecond- and second-scale
     costs. *)
  let f0 = Float.max (Float.abs (Expr.eval objective x0)) 1e-30 in
  let mu_init = options.mu_init *. f0 in
  let mu_final = options.mu_final *. f0 in
  let x = ref x0 in
  let total_iters = ref 0 in
  let stages_done = ref 0 in
  let last_obj = ref Float.nan in
  (* Per-stage convergence telemetry: smoothing temperature, gradient
     iterations, Armijo backtracks and the exact objective reached.
     The extra exact evaluation only happens with a live sink. *)
  let report ~mu ~iters ~backtracks =
    if Obs.enabled obs then begin
      let f_exact = Expr.eval objective !x in
      let decrease =
        if Float.is_nan !last_obj then 0.0 else !last_obj -. f_exact
      in
      last_obj := f_exact;
      Obs.counter obs "solver.stage"
        [
          ("stage", float_of_int !stages_done);
          ("mu", mu);
          ("iterations", float_of_int iters);
          ("backtracks", float_of_int backtracks);
          ("objective", f_exact);
          ("decrease", decrease);
        ]
    end
  in
  let mu = ref mu_init in
  let continue = ref true in
  while !continue do
    let x', iters, _, backtracks =
      stage ~opts:options ~mu:!mu ~objective ~lo ~hi !x
    in
    x := x';
    total_iters := !total_iters + iters;
    incr stages_done;
    report ~mu:!mu ~iters ~backtracks;
    if !mu <= mu_final then continue := false
    else mu := Float.max (!mu *. options.mu_decay) mu_final
  done;
  (* Finish with one exact (subgradient) polishing stage; convergence is
     judged on this final stage (intermediate smoothed stages need not
     reach full tolerance to anneal onward). *)
  let x', iters, ok, backtracks =
    stage ~opts:options ~mu:0.0 ~objective ~lo ~hi !x
  in
  x := x';
  total_iters := !total_iters + iters;
  incr stages_done;
  report ~mu:0.0 ~iters ~backtracks;
  {
    x = !x;
    value = Expr.eval objective !x;
    iterations = !total_iters;
    stages = !stages_done;
    converged = ok;
  }

let golden_section ?(tol = 1e-9) ~f ~lo ~hi () =
  if hi < lo then invalid_arg "Solver.golden_section: hi < lo";
  if hi -. lo <= tol then (lo +. hi) /. 2.0
  else begin
    let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
    let a = ref lo and b = ref hi in
    let c = ref (!b -. (phi *. (!b -. !a))) in
    let d = ref (!a +. (phi *. (!b -. !a))) in
    let fc = ref (f !c) and fd = ref (f !d) in
    while !b -. !a > tol do
      if !fc < !fd then begin
        b := !d;
        d := !c;
        fd := !fc;
        c := !b -. (phi *. (!b -. !a));
        fc := f !c
      end
      else begin
        a := !c;
        c := !d;
        fc := !fd;
        d := !a +. (phi *. (!b -. !a));
        fd := f !d
      end
    done;
    (!a +. !b) /. 2.0
  end

module Vec = Numeric.Vec

type problem = {
  objective : Expr.t;
  lo : Vec.t;
  hi : Vec.t;
}

type options = {
  max_iters : int;
  tol : float;
  mu_init : float;
  mu_final : float;
  mu_decay : float;
  step_init : float;
  armijo_c : float;
  armijo_shrink : float;
}

let default_options =
  {
    max_iters = 300;
    tol = 1e-6;
    mu_init = 1e-2;
    mu_final = 1e-6;
    mu_decay = 0.01;
    step_init = 1.0;
    armijo_c = 1e-4;
    armijo_shrink = 0.5;
  }

type result = {
  x : Vec.t;
  value : float;
  iterations : int;
  stages : int;
  converged : bool;
}

type compiled = {
  expr : Expr.t;
  tape : Tape.t;
  ws : Tape.workspace;
}

let compile ?(obs = Obs.null) expr =
  Obs.span obs ~cat:"solver" "solver.compile" @@ fun () ->
  let tape = Tape.compile expr in
  if Obs.enabled obs then
    Obs.counter obs "solver.tape"
      [
        ("dag_nodes", float_of_int (Expr.num_nodes expr));
        ("slots", float_of_int (Tape.num_slots tape));
        ("term_entries", float_of_int (Tape.num_term_entries tape));
        ("children", float_of_int (Tape.num_children tape));
        ("vars", float_of_int (Tape.n_vars tape));
      ];
  { expr; tape; ws = Tape.create_workspace tape }

let eval_compiled ?(mu = 0.0) c x = Tape.eval ~mu c.tape c.ws x

type engine = Tape | Precompiled of compiled | Reference

let validate { objective; lo; hi } =
  let n = Vec.dim lo in
  if Vec.dim hi <> n then invalid_arg "Solver.solve: lo/hi dimension mismatch";
  for i = 0 to n - 1 do
    if lo.(i) > hi.(i) then invalid_arg "Solver.solve: empty box"
  done;
  if Expr.max_var objective >= n then
    invalid_arg "Solver.solve: objective references variables outside the box"

let clamp1 lo hi v = if v < lo then lo else if v > hi then hi else v

(* One stage of accelerated projected gradient descent (FISTA with
   function-value restart) with Armijo backtracking, at a fixed
   smoothing temperature.  [x] (the current iterate), [y] (the
   momentum point), [g] (the gradient) and [cand] (the line-search
   probe) are caller-owned buffers reused across stages; [x] is
   updated in place.  [f]/[fg] evaluate the objective (and write its
   gradient into [g]).  Returns (iterations, hit_tol, backtracks).

   The momentum point [y] may leave the box; the objective is defined
   on all of R^n (sums of exponentials), so evaluating there is fine —
   the prox step projects back. *)
let stage ~opts ~mu ~f ~fg ~lo ~hi ~x ~y ~g ~cand =
  let n = Vec.dim x in
  for i = 0 to n - 1 do
    x.(i) <- clamp1 lo.(i) hi.(i) x.(i)
  done;
  Array.blit x 0 y 0 n;
  let t = ref 1.0 in
  let step = ref opts.step_init in
  let fx = ref (f ~mu x) in
  let iters = ref 0 in
  let backtracks = ref 0 in
  let hit_tol = ref false in
  (try
     for _ = 1 to opts.max_iters do
       incr iters;
       let f_y = fg ~mu y in
       (* Backtracking on the projected-arc step from y. *)
       let rec search step_try tries =
         if tries = 0 then None
         else begin
           let dd = ref 0.0 in
           for i = 0 to n - 1 do
             let ci = clamp1 lo.(i) hi.(i) (y.(i) -. (step_try *. g.(i))) in
             cand.(i) <- ci;
             let d = y.(i) -. ci in
             dd := !dd +. (d *. d)
           done;
           let fc = f ~mu cand in
           if fc <= f_y -. (opts.armijo_c /. step_try *. !dd) then
             Some (fc, step_try)
           else begin
             incr backtracks;
             search (step_try *. opts.armijo_shrink) (tries - 1)
           end
         end
       in
       match search !step 60 with
       | None ->
           hit_tol := true;
           raise Exit
       | Some (fc, used_step) ->
           (* Let the step grow back after a successful iteration so a
              single steep region does not clamp it forever. *)
           step := Float.min (used_step *. 2.0) (opts.step_init *. 1e3);
           let move = ref 0.0 in
           for i = 0 to n - 1 do
             let d = Float.abs (cand.(i) -. x.(i)) in
             if d > !move then move := d
           done;
           if fc > !fx then begin
             (* Momentum overshot: restart from the best iterate. *)
             t := 1.0;
             Array.blit x 0 y 0 n;
             if !move < opts.tol then begin
               hit_tol := true;
               raise Exit
             end
           end
           else begin
             let t' = (1.0 +. sqrt (1.0 +. (4.0 *. !t *. !t))) /. 2.0 in
             let beta = (!t -. 1.0) /. t' in
             for i = 0 to n - 1 do
               y.(i) <- cand.(i) +. (beta *. (cand.(i) -. x.(i)));
               x.(i) <- cand.(i)
             done;
             t := t';
             fx := fc;
             if !move < opts.tol then begin
               hit_tol := true;
               raise Exit
             end
           end
     done
   with Exit -> ());
  (!iters, !hit_tol, !backtracks)

let solve ?(options = default_options) ?(engine = Tape) ?(obs = Obs.null) ?x0
    problem =
  validate problem;
  let { objective; lo; hi } = problem in
  let n = Vec.dim lo in
  let x =
    match x0 with
    | Some x ->
        if Vec.dim x <> n then invalid_arg "Solver.solve: x0 dimension mismatch";
        Vec.clamp ~lo ~hi x
    | None -> Vec.init n (fun i -> (lo.(i) +. hi.(i)) /. 2.0)
  in
  (* Evaluation engine: the flat tape (compiled here unless the caller
     already did) is the fast path; [Reference] keeps the memoised
     DAG-walking {!Expr} implementation callable for cross-checks. *)
  let g = Vec.create n 0.0 in
  let f, fg =
    match engine with
    | Tape | Precompiled _ ->
        let c =
          match engine with
          | Precompiled c ->
              if Tape.n_vars c.tape > n then
                invalid_arg
                  "Solver.solve: precompiled tape references variables outside \
                   the box";
              c
          | _ -> compile ~obs objective
        in
        ( (fun ~mu x -> Tape.eval ~mu c.tape c.ws x),
          fun ~mu x -> Tape.eval_grad ~mu c.tape c.ws ~x ~grad:g )
    | Reference ->
        ( (fun ~mu x -> Expr.eval ~mu objective x),
          fun ~mu x ->
            let v, g' = Expr.eval_grad ~mu objective x in
            Array.blit g' 0 g 0 n;
            v )
  in
  Obs.span obs ~cat:"solver" "solver.solve"
    ~args:[ ("vars", Obs.Events.Int n) ]
  @@ fun () ->
  let y = Vec.create n 0.0 in
  let cand = Vec.create n 0.0 in
  (* Scale smoothing temperatures by the magnitude of the objective so
     the anneal behaves the same for millisecond- and second-scale
     costs. *)
  let f0 = Float.max (Float.abs (f ~mu:0.0 x)) 1e-30 in
  let mu_init = options.mu_init *. f0 in
  let mu_final = options.mu_final *. f0 in
  let total_iters = ref 0 in
  let stages_done = ref 0 in
  let last_obj = ref Float.nan in
  (* Per-stage convergence telemetry: smoothing temperature, gradient
     iterations, Armijo backtracks and the exact objective reached.
     The extra exact evaluation only happens with a live sink. *)
  let report ~mu ~iters ~backtracks =
    if Obs.enabled obs then begin
      let f_exact = f ~mu:0.0 x in
      let decrease =
        if Float.is_nan !last_obj then 0.0 else !last_obj -. f_exact
      in
      last_obj := f_exact;
      Obs.counter obs "solver.stage"
        [
          ("stage", float_of_int !stages_done);
          ("mu", mu);
          ("iterations", float_of_int iters);
          ("backtracks", float_of_int backtracks);
          ("objective", f_exact);
          ("decrease", decrease);
        ]
    end
  in
  let run_stage mu =
    let iters, ok, backtracks =
      stage ~opts:options ~mu ~f ~fg ~lo ~hi ~x ~y ~g ~cand
    in
    total_iters := !total_iters + iters;
    incr stages_done;
    report ~mu ~iters ~backtracks;
    ok
  in
  let mu = ref mu_init in
  let continue = ref true in
  while !continue do
    ignore (run_stage !mu);
    if !mu <= mu_final then continue := false
    else mu := Float.max (!mu *. options.mu_decay) mu_final
  done;
  (* Finish with one exact (subgradient) polishing stage; convergence is
     judged on this final stage (intermediate smoothed stages need not
     reach full tolerance to anneal onward). *)
  let ok = run_stage 0.0 in
  {
    x;
    value = f ~mu:0.0 x;
    iterations = !total_iters;
    stages = !stages_done;
    converged = ok;
  }

let golden_section ?(tol = 1e-9) ~f ~lo ~hi () =
  if hi < lo then invalid_arg "Solver.golden_section: hi < lo";
  if hi -. lo <= tol then (lo +. hi) /. 2.0
  else begin
    let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
    let a = ref lo and b = ref hi in
    let c = ref (!b -. (phi *. (!b -. !a))) in
    let d = ref (!a +. (phi *. (!b -. !a))) in
    let fc = ref (f !c) and fd = ref (f !d) in
    while !b -. !a > tol do
      if !fc < !fd then begin
        b := !d;
        d := !c;
        fd := !fc;
        c := !b -. (phi *. (!b -. !a));
        fc := f !c
      end
      else begin
        a := !c;
        c := !d;
        fc := !fd;
        d := !a +. (phi *. (!b -. !a));
        fd := f !d
      end
    done;
    (!a +. !b) /. 2.0
  end

module Vec = Numeric.Vec

type problem = {
  objective : Expr.t;
  lo : Vec.t;
  hi : Vec.t;
}

type options = {
  max_iters : int;
  tol : float;
  mu_init : float;
  mu_final : float;
  mu_decay : float;
  step_init : float;
  armijo_c : float;
  armijo_shrink : float;
  second_order : bool;
  fista_burst : int;
  newton_max_iters : int;
  cg_max_iters : int;
  accept_warm_start : bool;
  precondition : bool;
  domains : int;
}

(* Default domain count for the parallel tape sweeps: the
   PARADIGM_DOMAINS environment variable (0 = one domain per
   recommended core), else serial.  An env default keeps the knob
   reachable from every entry point — CI runs the whole suite at
   PARADIGM_DOMAINS=4 without threading a flag through. *)
let default_domains =
  match Sys.getenv_opt "PARADIGM_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 0 -> v
      | _ -> 1)
  | None -> 1

let default_options =
  {
    max_iters = 300;
    tol = 1e-6;
    mu_init = 1e-2;
    mu_final = 1e-6;
    mu_decay = 0.01;
    step_init = 1.0;
    armijo_c = 1e-4;
    armijo_shrink = 0.5;
    second_order = true;
    fista_burst = 0;
    newton_max_iters = 20;
    cg_max_iters = 8;
    accept_warm_start = false;
    precondition = true;
    domains = default_domains;
  }

type result = {
  x : Vec.t;
  value : float;
  iterations : int;
  stages : int;
  converged : bool;
  hvp_evals : int;
  cg_iterations : int;
}

type compiled = {
  expr : Expr.t;
  tape : Tape.t;
  ws : Tape.workspace;
}

let compile ?(obs = Obs.null) expr =
  Obs.span obs ~cat:"solver" "solver.compile" @@ fun () ->
  let tape = Tape.compile expr in
  if Obs.enabled obs then
    Obs.counter obs "solver.tape"
      [
        ("dag_nodes", float_of_int (Expr.num_nodes expr));
        ("slots", float_of_int (Tape.num_slots tape));
        ("term_entries", float_of_int (Tape.num_term_entries tape));
        ("children", float_of_int (Tape.num_children tape));
        ("vars", float_of_int (Tape.n_vars tape));
      ];
  { expr; tape; ws = Tape.create_workspace tape }

let eval_compiled ?(mu = 0.0) c x = Tape.eval ~mu c.tape c.ws x

let compiled_branches c = Tape.root_branches c.tape c.ws

(* The tape itself is immutable after [compile]; only the workspace is
   scratch.  Sharing the tape under a fresh workspace is what lets a
   cached compilation serve concurrent solves on separate domains. *)
let share_tape c = { c with ws = Tape.create_workspace c.tape }

type engine = Tape | Precompiled of compiled | Reference

let validate { objective; lo; hi } =
  let n = Vec.dim lo in
  if Vec.dim hi <> n then invalid_arg "Solver.solve: lo/hi dimension mismatch";
  for i = 0 to n - 1 do
    if lo.(i) > hi.(i) then invalid_arg "Solver.solve: empty box"
  done;
  if Expr.max_var objective >= n then
    invalid_arg "Solver.solve: objective references variables outside the box"

let clamp1 lo hi v = if v < lo then lo else if v > hi then hi else v

(* Minimum tape size before the solver routes full-tape sweeps through
   a domain pool: below this the fork-join handoff costs more than the
   sweep.  (Per-level splitting has its own finer threshold inside
   {!Tape}.) *)
let parallel_cutoff = 1024

(* One stage of accelerated projected gradient descent (FISTA with
   function-value restart) with Armijo backtracking, at a fixed
   smoothing temperature.  [x] (the current iterate), [y] (the
   momentum point), [g] (the gradient) and [cand] (the line-search
   probe) are caller-owned buffers reused across stages; [x] is
   updated in place.  [f]/[fg] evaluate the objective (and write its
   gradient into [g]).  Returns (iterations, hit_tol, backtracks).

   The momentum point [y] may leave the box; the objective is defined
   on all of R^n (sums of exponentials), so evaluating there is fine —
   the prox step projects back. *)
let stage ~opts ~mu ~f ~fg ~lo ~hi ~x ~y ~g ~cand =
  let n = Vec.dim x in
  for i = 0 to n - 1 do
    x.(i) <- clamp1 lo.(i) hi.(i) x.(i)
  done;
  Array.blit x 0 y 0 n;
  let t = ref 1.0 in
  let step = ref opts.step_init in
  let fx = ref (f ~mu x) in
  let iters = ref 0 in
  let backtracks = ref 0 in
  let hit_tol = ref false in
  (try
     for _ = 1 to opts.max_iters do
       incr iters;
       let f_y = fg ~mu y in
       (* Backtracking on the projected-arc step from y. *)
       let rec search step_try tries =
         if tries = 0 then None
         else begin
           let dd = ref 0.0 in
           for i = 0 to n - 1 do
             let ci = clamp1 lo.(i) hi.(i) (y.(i) -. (step_try *. g.(i))) in
             cand.(i) <- ci;
             let d = y.(i) -. ci in
             dd := !dd +. (d *. d)
           done;
           let fc = f ~mu cand in
           if fc <= f_y -. (opts.armijo_c /. step_try *. !dd) then
             Some (fc, step_try)
           else begin
             incr backtracks;
             search (step_try *. opts.armijo_shrink) (tries - 1)
           end
         end
       in
       match search !step 60 with
       | None ->
           hit_tol := true;
           raise Exit
       | Some (fc, used_step) ->
           (* Let the step grow back after a successful iteration so a
              single steep region does not clamp it forever. *)
           step := Float.min (used_step *. 2.0) (opts.step_init *. 1e3);
           let move = ref 0.0 in
           for i = 0 to n - 1 do
             let d = Float.abs (cand.(i) -. x.(i)) in
             if d > !move then move := d
           done;
           if fc > !fx then begin
             (* Momentum overshot: restart from the best iterate. *)
             t := 1.0;
             Array.blit x 0 y 0 n;
             if !move < opts.tol then begin
               hit_tol := true;
               raise Exit
             end
           end
           else begin
             let t' = (1.0 +. sqrt (1.0 +. (4.0 *. !t *. !t))) /. 2.0 in
             let beta = (!t -. 1.0) /. t' in
             for i = 0 to n - 1 do
               y.(i) <- cand.(i) +. (beta *. (cand.(i) -. x.(i)));
               x.(i) <- cand.(i)
             done;
             t := t';
             fx := fc;
             if !move < opts.tol then begin
               hit_tol := true;
               raise Exit
             end
           end
     done
   with Exit -> ());
  (!iters, !hit_tol, !backtracks)

(* Second-order oracle handed to {!newton_stage}: a masked
   Hessian-vector product on the current free set plus the hooks that
   prepare it ([so_mask], called right after the gradient sweep at the
   same point and temperature) and the Gauss–Newton diagonal feeding
   the Jacobi preconditioner.  All three close over one tape
   workspace; the stage is careful to keep the tape's
   eval_grad → mask → masked-HVP protocol (no other sweep through the
   workspace in between). *)
type second_order = {
  so_mask : mu:float -> free:bool array -> unit;
  so_hvp : x:Vec.t -> dx:Vec.t -> hvp:Vec.t -> unit;
  so_diag : diag:Vec.t -> unit;
}

(* One stage of projected (two-metric) Newton-CG at a fixed smoothing
   temperature, taking over from the FISTA burst once first-order
   progress stalls.  Each outer iteration computes the gradient,
   freezes the active box faces (bound reached, gradient pushing
   outward), solves [H d = -g] on the free variables by
   Jacobi-preconditioned conjugate gradients driven by masked tape
   Hessian-vector products, fills the active components with steepest
   descent and backtracks along the projected arc.  The CG is inexact
   (Eisenstat–Walker-style forcing), so far from the optimum a handful
   of HVPs buy a Newton-quality step, while near it the tolerance
   tightens for superlinear convergence.  With [opts.precondition]
   false the identity diagonal reproduces plain CG bit for bit.  All
   buffers are caller-owned; [x] and [g] are updated in place.
   Returns (outer iterations, cg iterations, hvp count, hit_tol). *)
let newton_stage ~opts ~tol ~mu ~f ~fg ~so ~lo ~hi ~x ~g ~cand ~d ~r ~p ~hp ~z
    ~mdiag ~free =
  let n = Vec.dim x in
  let outer = ref 0 and cg_total = ref 0 and hvps = ref 0 in
  let hit_tol = ref false in
  let f_prev = ref infinity in
  (try
     for _ = 1 to opts.newton_max_iters do
       incr outer;
       let fx = fg ~mu x in
       (* Stationarity: the projected-gradient step length, plus an
          objective-stall stop — with inexact CG the iterates can keep
          inching below the step tolerance long after the objective has
          converged, so a relative decrease under [tol] ends the stage. *)
       let pg = ref 0.0 in
       for i = 0 to n - 1 do
         let step = x.(i) -. clamp1 lo.(i) hi.(i) (x.(i) -. g.(i)) in
         if Float.abs step > !pg then pg := Float.abs step
       done;
       if !pg < tol then begin
         hit_tol := true;
         raise Exit
       end;
       let stalled = !f_prev -. fx < tol *. (1.0 +. Float.abs fx) in
       f_prev := fx;
       if stalled then begin
         (* The Newton steps have stalled.  Before concluding the
            stage, vet the stall against a plain projected-gradient
            step: a truncated or floor-damped CG direction can inch
            along while the gradient still descends, and exiting on
            the inching alone leaves the stage measurably short of
            stationarity on kink-heavy instances. *)
         (* Strict descent, not Armijo sufficient decrease: in a kink
            valley of the max the function can drop well below [fx]
            at step lengths where the linear model grossly
            over-promises, so the Armijo test rejects exactly the
            steps that escape the valley. *)
         let rec gprobe alpha tries =
           if tries = 0 then None
           else begin
             for i = 0 to n - 1 do
               cand.(i) <- clamp1 lo.(i) hi.(i) (x.(i) -. (alpha *. g.(i)))
             done;
             let fc = f ~mu cand in
             if fc < fx then Some fc
             else gprobe (alpha *. opts.armijo_shrink) (tries - 1)
           end
         in
         match gprobe 1.0 40 with
         | Some fc when fx -. fc >= tol *. (1.0 +. Float.abs fx) ->
             (* Real descent remains: take the gradient step and keep
                the stage alive. *)
             Array.blit cand 0 x 0 n
         | _ ->
             hit_tol := true;
             raise Exit
       end
       else begin
       (* Active faces: at a bound with the gradient pushing outward. *)
       for i = 0 to n - 1 do
         let eps = 1e-9 *. (1.0 +. (hi.(i) -. lo.(i))) in
         free.(i) <-
           not
             ((x.(i) <= lo.(i) +. eps && g.(i) > 0.0)
             || (x.(i) >= hi.(i) -. eps && g.(i) < 0.0))
       done;
       (* Mask the tape to the free set (the HVPs below sweep only the
          live instructions), then build the Jacobi preconditioner
          from the Gauss–Newton diagonal.  Both reuse the values and
          adjoints the [fg] sweep above left in the workspace, so no
          further sweep may run until CG is done. *)
       so.so_mask ~mu ~free;
       if opts.precondition then begin
         so.so_diag ~diag:mdiag;
         ignore (Precond.jacobi_clamp ~free mdiag)
       end
       else Array.fill mdiag 0 n 1.0;
       (* Preconditioned CG on the free subspace: H restricted by
          zeroing the direction on active faces before the HVP and its
          result after; stopping still measures the plain residual. *)
       let rs = ref 0.0 and rz = ref 0.0 in
       for i = 0 to n - 1 do
         d.(i) <- 0.0;
         r.(i) <- (if free.(i) then -.g.(i) else 0.0);
         z.(i) <- r.(i) /. mdiag.(i);
         p.(i) <- z.(i);
         rs := !rs +. (r.(i) *. r.(i));
         rz := !rz +. (r.(i) *. z.(i))
       done;
       let gnorm = sqrt !rs in
       let cg_tol =
         gnorm *. Float.min 0.5 (sqrt (gnorm /. (1.0 +. Float.abs fx)))
       in
       (let continue_cg = ref (gnorm > 0.0) in
        let iter = ref 0 in
        while !continue_cg && !iter < Int.min opts.cg_max_iters n do
          incr iter;
          incr cg_total;
          so.so_hvp ~x ~dx:p ~hvp:hp;
          incr hvps;
          let php = ref 0.0 in
          for i = 0 to n - 1 do
            if not free.(i) then hp.(i) <- 0.0;
            php := !php +. (p.(i) *. hp.(i))
          done;
          if !php <= 0.0 then begin
            (* Numerical curvature loss (the objective is convex):
               fall back to (preconditioned) steepest descent if no
               step was built. *)
            if Array.for_all (fun di -> di = 0.0) d then
              Array.blit z 0 d 0 n;
            continue_cg := false
          end
          else begin
            let alpha = !rz /. !php in
            let rs' = ref 0.0 in
            for i = 0 to n - 1 do
              d.(i) <- d.(i) +. (alpha *. p.(i));
              r.(i) <- r.(i) -. (alpha *. hp.(i));
              rs' := !rs' +. (r.(i) *. r.(i))
            done;
            if sqrt !rs' <= cg_tol then continue_cg := false
            else begin
              let rz' = ref 0.0 in
              for i = 0 to n - 1 do
                z.(i) <- r.(i) /. mdiag.(i);
                rz' := !rz' +. (r.(i) *. z.(i))
              done;
              let beta = !rz' /. !rz in
              for i = 0 to n - 1 do
                p.(i) <- z.(i) +. (beta *. p.(i))
              done;
              rz := !rz'
            end;
            rs := !rs'
          end
        done);
       (* Active components move by steepest descent; the projection
          keeps them on (or returns them to) their faces. *)
       for i = 0 to n - 1 do
         if not free.(i) then d.(i) <- -.g.(i)
       done;
       (* Backtracking Armijo on the projected arc. *)
       let rec search alpha tries =
         if tries = 0 then None
         else begin
           let gd = ref 0.0 in
           for i = 0 to n - 1 do
             let ci = clamp1 lo.(i) hi.(i) (x.(i) +. (alpha *. d.(i))) in
             cand.(i) <- ci;
             gd := !gd +. (g.(i) *. (ci -. x.(i)))
           done;
           let fc = f ~mu cand in
           if fc <= fx +. (opts.armijo_c *. !gd) && !gd < 0.0 then Some fc
           else search (alpha *. opts.armijo_shrink) (tries - 1)
         end
       in
       let step =
         match search 1.0 40 with
         | Some fc -> Some fc
         | None ->
             (* No descent along the Newton arc.  A truncated (or
                badly preconditioned) CG direction can fail Armijo
                while the plain projected gradient still descends, so
                fall back before declaring the stage converged —
                without this the stage can stop percents above the
                optimum on kink-heavy instances. *)
             for i = 0 to n - 1 do
               d.(i) <- -.g.(i)
             done;
             search 1.0 40
       in
       match step with
       | None ->
           (* Not even the projected gradient descends: the iterate is
              as good as this stage can make it. *)
           hit_tol := true;
           raise Exit
       | Some _ ->
           (* A tiny accepted step is NOT an exit on its own: a badly
              scaled CG direction can produce sub-[tol] moves far from
              stationarity.  The next iteration's objective-stall
              check vets such creep against a projected-gradient probe
              before the stage may conclude. *)
           Array.blit cand 0 x 0 n
       end
     done
   with Exit -> ());
  (!outer, !cg_total, !hvps, !hit_tol)

let solve ?(options = default_options) ?(engine = Tape) ?(obs = Obs.null) ?x0
    problem =
  validate problem;
  let { objective; lo; hi } = problem in
  let n = Vec.dim lo in
  let x =
    match x0 with
    | Some x ->
        if Vec.dim x <> n then invalid_arg "Solver.solve: x0 dimension mismatch";
        Vec.clamp ~lo ~hi x
    | None -> Vec.init n (fun i -> (lo.(i) +. hi.(i)) /. 2.0)
  in
  (* Evaluation engine: the flat tape (compiled here unless the caller
     already did) is the fast path; [Reference] keeps the memoised
     DAG-walking {!Expr} implementation callable for cross-checks. *)
  let g = Vec.create n 0.0 in
  let f, fg, so, pool =
    match engine with
    | Tape | Precompiled _ ->
        let c =
          match engine with
          | Precompiled c ->
              if Tape.n_vars c.tape > n then
                invalid_arg
                  "Solver.solve: precompiled tape references variables outside \
                   the box";
              c
          | _ -> compile ~obs objective
        in
        (* Parallel level-scheduled sweeps for the full-tape paths
           (FISTA, line-search probes, Newton gradients) when the
           caller asked for domains and the tape is big enough to
           amortise the fork-join handoff.  The CG's HVPs stay on the
           masked serial path: they touch only the live fraction of
           the tape, which is usually below the cutoff anyway. *)
        let nd =
          if options.domains = 0 then Domain.recommended_domain_count ()
          else options.domains
        in
        (* Checked out per solve — concurrent solves (the plan server's
           worker domains) must not share a pool, whose job state is
           single-job — and released when this solve returns. *)
        let pool =
          if nd > 1 && Tape.num_slots c.tape >= parallel_cutoff then begin
            if Obs.enabled obs then
              Obs.counter obs "solver.parallel_tape"
                [
                  ("domains", float_of_int nd);
                  ("slots", float_of_int (Tape.num_slots c.tape));
                  ("levels", float_of_int (Tape.num_levels c.tape));
                ];
            Some (Numeric.Domain_pool.acquire ~size:nd)
          end
          else None
        in
        let f, fg =
          match pool with
          | Some pool ->
              ( (fun ~mu x -> Tape.eval_pool ~mu c.tape pool c.ws x),
                fun ~mu x -> Tape.eval_grad_pool ~mu c.tape pool c.ws ~x ~grad:g
              )
          | None ->
              ( (fun ~mu x -> Tape.eval ~mu c.tape c.ws x),
                fun ~mu x -> Tape.eval_grad ~mu c.tape c.ws ~x ~grad:g )
        in
        ( f,
          fg,
          Some
            {
              so_mask = (fun ~mu ~free -> Tape.hvp_mask ~mu c.tape c.ws ~free);
              so_hvp =
                (fun ~x ~dx ~hvp -> Tape.hvp_masked c.tape c.ws ~x ~dx ~hvp);
              so_diag = (fun ~diag -> Tape.hess_diag c.tape c.ws ~diag);
            },
          pool )
    | Reference ->
        ( (fun ~mu x -> Expr.eval ~mu objective x),
          (fun ~mu x ->
            let v, g' = Expr.eval_grad ~mu objective x in
            Array.blit g' 0 g 0 n;
            v),
          (* No second-order oracle on the DAG-walking path: [solve]
             falls back to pure FISTA, which doubles as the reference
             behaviour the property tests pin the Newton path to. *)
          None,
          None )
  in
  Fun.protect ~finally:(fun () ->
      Option.iter Numeric.Domain_pool.release pool)
  @@ fun () ->
  Obs.span obs ~cat:"solver" "solver.solve"
    ~args:[ ("vars", Obs.Events.Int n) ]
  @@ fun () ->
  let y = Vec.create n 0.0 in
  let cand = Vec.create n 0.0 in
  (* Newton-CG buffers (step, residual, CG direction, H·p,
     preconditioned residual, preconditioner diagonal, active-set
     mask) — allocated once per solve, reused across stages. *)
  let use_newton = options.second_order && so <> None in
  let d = Vec.create n 0.0 in
  let r = Vec.create n 0.0 in
  let p = Vec.create n 0.0 in
  let hp = Vec.create n 0.0 in
  let z = Vec.create n 0.0 in
  let mdiag = Vec.create n 1.0 in
  let free = Array.make n true in
  (* Scale smoothing temperatures by the magnitude of the objective so
     the anneal behaves the same for millisecond- and second-scale
     costs. *)
  let f_start = f ~mu:0.0 x in
  (* Monotonicity guard for warm starts: remember the (projected)
     caller-supplied point so the solve can never return anything
     worse than it. *)
  let start_copy =
    match x0 with Some _ -> Some (Array.copy x, f_start) | None -> None
  in
  let f0 = Float.max (Float.abs f_start) 1e-30 in
  let mu_init = options.mu_init *. f0 in
  let mu_final = options.mu_final *. f0 in
  let total_iters = ref 0 in
  let stages_done = ref 0 in
  let total_hvps = ref 0 in
  let total_cg = ref 0 in
  let last_obj = ref Float.nan in
  (* Per-stage convergence telemetry: smoothing temperature, gradient
     iterations, Armijo backtracks and the exact objective reached.
     The extra exact evaluation only happens with a live sink. *)
  let report ~mu ~iters ~backtracks =
    if Obs.enabled obs then begin
      let f_exact = f ~mu:0.0 x in
      let decrease =
        if Float.is_nan !last_obj then 0.0 else !last_obj -. f_exact
      in
      last_obj := f_exact;
      Obs.counter obs "solver.stage"
        [
          ("stage", float_of_int !stages_done);
          ("mu", mu);
          ("iterations", float_of_int iters);
          ("backtracks", float_of_int backtracks);
          ("objective", f_exact);
          ("decrease", decrease);
        ]
    end
  in
  let run_stage mu =
    (* With the second-order engine available, every stage runs a
       short FISTA burst to enter the Newton basin, then hands over to
       Newton-CG — including the exact (mu = 0) polish, where the
       masked HVP is the generalised Hessian of the active piece: a
       projected-Newton step along it is what pushes the last ~1e-3 of
       a stalled anneal out (first-order steps zig-zag on the kinks of
       the max and stall above the optimum). *)
    let fista_opts =
      if use_newton then
        { options with max_iters = Int.min options.fista_burst options.max_iters }
      else options
    in
    let iters, ok, backtracks =
      stage ~opts:fista_opts ~mu ~f ~fg ~lo ~hi ~x ~y ~g ~cand
    in
    total_iters := !total_iters + iters;
    let ok =
      if use_newton && not ok then begin
        let so = Option.get so in
        (* Intermediate smoothed stages only guide the anneal — the
           next stage re-solves at a tighter temperature anyway — so
           they stop on a loose tolerance; only the tightest smoothed
           stage and the exact polish run to full [options.tol].  The
           loose stages are also the expensive ones: at large mu the
           smoothed-max curvature couples almost the whole tape into
           the masked HVPs. *)
        let tol =
          if mu > mu_final *. 1.000001 then Float.max options.tol 1e-4
          else options.tol
        in
        let outer, cg_iters, hvps, hit =
          newton_stage ~opts:options ~tol ~mu ~f ~fg ~so ~lo ~hi ~x ~g ~cand
            ~d ~r ~p ~hp ~z ~mdiag ~free
        in
        total_iters := !total_iters + outer;
        total_hvps := !total_hvps + hvps;
        total_cg := !total_cg + cg_iters;
        if Obs.enabled obs then begin
          Obs.counter obs "solver.hvp"
            [
              ("stage", float_of_int !stages_done);
              ("hvps", float_of_int hvps);
            ];
          Obs.counter obs "solver.cg_iters"
            [
              ("stage", float_of_int !stages_done);
              ("newton_iters", float_of_int outer);
              ("cg_iters", float_of_int cg_iters);
            ]
        end;
        hit
      end
      else ok
    in
    incr stages_done;
    report ~mu ~iters ~backtracks;
    ok
  in
  (* Warm starts: when the caller supplies [x0] and it is already
     near-optimal at the tightest smoothing temperature, the anneal
     from [mu_init] is redundant — skip straight to [mu_final].
     Near-optimality is probed by one Armijo-backtracked projected
     gradient step: near the optimum no step can decrease the smoothed
     objective appreciably, while from a far start the probe finds a
     substantial decrease.  (The raw projected-gradient length does not
     separate the two at tight smoothing — the smoothed gradient at a
     kink of the max is O(1) even at the exact optimum.)  Skipping is
     safe for correctness — the problem is convex and the skipped-to
     stage still solves to full tolerance — the anneal only exists to
     guide a cold start. *)
  let mu = ref mu_init in
  let accepted = ref false in
  (match x0 with
  | Some _ when mu_init > mu_final ->
      (* Achievable Armijo-backtracked decrease of the mu-smoothed
         objective from [x]: the same sufficient-decrease test the
         stages themselves run, so "no achievable decrease" means [x]
         already satisfies the stage stopping criterion. *)
      let probe_decrease mu =
        let fx = fg ~mu x in
        let rec probe alpha tries =
          if tries = 0 then 0.0
          else begin
            let gd = ref 0.0 in
            for i = 0 to n - 1 do
              let ci = clamp1 lo.(i) hi.(i) (x.(i) -. (alpha *. g.(i))) in
              cand.(i) <- ci;
              gd := !gd +. (g.(i) *. (ci -. x.(i)))
            done;
            let fc = f ~mu cand in
            if fc <= fx +. (options.armijo_c *. !gd) && !gd < 0.0 then fx -. fc
            else probe (alpha *. options.armijo_shrink) (tries - 1)
          end
        in
        (fx, probe options.step_init 30)
      in
      let below_tol fx d = d <= options.tol *. (1.0 +. Float.abs fx) in
      (* Skip only when the probe cannot decrease the objective by more
         than the stages' own relative stall tolerance — i.e. [x0]
         already satisfies the stopping criterion the skipped stages
         would be run to meet.  Empirically this separates re-solves of
         the same problem (probe decrease ~1e-8..1e-7, skip) from
         starts carried over from a perturbed problem (~1e-5..1e-4,
         anneal), where the carried-over point sits on kinks of the max
         and needs the anneal to recover full accuracy. *)
      let fx, decrease = probe_decrease mu_final in
      let skip = below_tol fx decrease in
      if skip then mu := mu_final;
      (* Warm-start acceptance (opt-in): when no Armijo step improves
         the smoothed objective *and* none improves the exact one, [x0]
         meets the stopping criterion of every stage the solve would
         run — return it outright.  This is what makes answering an
         exact-duplicate plan request O(probe) instead of O(solve). *)
      if skip && options.accept_warm_start then begin
        let fx0, d0 = probe_decrease 0.0 in
        if below_tol fx0 d0 then accepted := true
      end;
      if Obs.enabled obs then
        Obs.counter obs "solver.warm_start"
          [
            ("provided", 1.0);
            ("skipped_to_mu_final", if skip then 1.0 else 0.0);
            ("accepted", if !accepted then 1.0 else 0.0);
            ("probe_decrease", decrease);
          ]
  | _ -> ());
  let ok =
    if !accepted then true
    else begin
      let continue = ref true in
      while !continue do
        ignore (run_stage !mu);
        (* The relative slack absorbs decay rounding: with decay 0.01,
           1e-4 ·. 0.01 lands a hair above 1e-6 in floats, and an exact
           [<=] would run a whole duplicate stage at ~mu_final. *)
        if !mu <= mu_final *. 1.000001 then continue := false
        else mu := Float.max (!mu *. options.mu_decay) mu_final
      done;
      (* Finish with one exact (subgradient) polishing stage;
         convergence is judged on this final stage (intermediate
         smoothed stages need not reach full tolerance to anneal
         onward). *)
      let ok = ref (run_stage 0.0) in
      (* Kink-valley escape: the exact polish can park on a kink where
         every mu = 0 subgradient direction ascends, yet the
         mu_final-smoothed gradient — which averages the branches and
         so points along the valley floor — still finds O(1e-4..1e-3)
         of descent.  Probe for that, and when present re-descend the
         tightest smoothed stage and re-polish, keeping the best exact
         point (two passes bound the cost; in practice one suffices). *)
      let strict_descent mu =
        let fx = fg ~mu x in
        let rec probe alpha tries =
          if tries = 0 then 0.0
          else begin
            for i = 0 to n - 1 do
              cand.(i) <- clamp1 lo.(i) hi.(i) (x.(i) -. (alpha *. g.(i)))
            done;
            let fc = f ~mu cand in
            if fc < fx then fx -. fc else probe (alpha /. 2.0) (tries - 1)
          end
        in
        (fx, probe 1.0 30)
      in
      (try
         for _ = 1 to 2 do
           let fx, d = strict_descent mu_final in
           if d <= options.tol *. (1.0 +. Float.abs fx) then raise Exit;
           let best_x = Array.copy x in
           let best_v = f ~mu:0.0 x in
           ignore (run_stage mu_final);
           ok := run_stage 0.0;
           if f ~mu:0.0 x >= best_v then begin
             Array.blit best_x 0 x 0 n;
             raise Exit
           end
         done
       with Exit -> ());
      !ok
    end
  in
  let value = f ~mu:0.0 x in
  let value =
    match start_copy with
    | Some (x_init, f_init) when f_init < value ->
        Array.blit x_init 0 x 0 n;
        f_init
    | _ -> value
  in
  {
    x;
    value;
    iterations = !total_iters;
    stages = !stages_done;
    converged = ok;
    hvp_evals = !total_hvps;
    cg_iterations = !total_cg;
  }

let golden_section ?(tol = 1e-9) ~f ~lo ~hi () =
  if hi < lo then invalid_arg "Solver.golden_section: hi < lo";
  if hi -. lo <= tol then (lo +. hi) /. 2.0
  else begin
    let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
    let a = ref lo and b = ref hi in
    let c = ref (!b -. (phi *. (!b -. !a))) in
    let d = ref (!a +. (phi *. (!b -. !a))) in
    let fc = ref (f !c) and fd = ref (f !d) in
    while !b -. !a > tol do
      if !fc < !fd then begin
        b := !d;
        d := !c;
        fd := !fc;
        c := !b -. (phi *. (!b -. !a));
        fc := f !c
      end
      else begin
        a := !c;
        c := !d;
        fc := !fd;
        d := !a +. (phi *. (!b -. !a));
        fd := f !d
      end
    done;
    (!a +. !b) /. 2.0
  end

module Vec = Numeric.Vec
module Pool = Numeric.Domain_pool

type export = { key : int; param : int }
type import = { key : int; copy : int; param : int }

type block = {
  objective : Expr.t;
  lo : Vec.t;
  hi : Vec.t;
  x0 : Vec.t;
  exports : export array;
  imports : import array;
  area_param : int;
  prox : (int * int) array;
  links : (int * (int * int)) array;
  measure : Vec.t -> float array * float;
}

type options = {
  max_outer : int;
  rho_init : float;
  eps_abs : float;
  eps_rel : float;
  adapt_ratio : float;
  solver : Solver.options;
  domains : int;
}

let default_options =
  {
    max_outer = 30;
    rho_init = 4.0;
    eps_abs = 1e-8;
    eps_rel = 1e-4;
    adapt_ratio = 10.0;
    solver = { Solver.default_options with Solver.accept_warm_start = true };
    domains = Solver.default_options.Solver.domains;
  }

type stats = {
  blocks : int;
  outer_iterations : int;
  inner_iterations : int;
  primal_residual : float;
  dual_residual : float;
  rho_final : float;
  converged : bool;
  residuals : (float * float) array;
}

type result = {
  solutions : Vec.t array;
  phi : float;
  t : float;
  stats : stats;
}

let run ?(obs = Obs.null) ?(options = default_options) ~n_cons ~cost blocks =
  let nb = Array.length blocks in
  if nb = 0 then invalid_arg "Admm.run: empty block list";
  if options.max_outer < 1 then invalid_arg "Admm.run: max_outer < 1";
  (* Index the consensus topology.  Slot [n_cons] is the epigraph t. *)
  let exporter = Array.make (n_cons + 1) (-1, -1) in
  let importers = Array.make (Int.max n_cons 1) [] in
  Array.iteri
    (fun k b ->
      Array.iteri
        (fun ei (e : export) ->
          if e.key < -1 || e.key >= n_cons then
            invalid_arg "Admm.run: export key out of range";
          let slot = if e.key < 0 then n_cons else e.key in
          if fst exporter.(slot) >= 0 then
            invalid_arg "Admm.run: duplicate exporter for a consensus slot";
          exporter.(slot) <- (k, ei))
        b.exports;
      Array.iteri
        (fun ii (i : import) ->
          if i.key < 0 || i.key >= n_cons then
            invalid_arg "Admm.run: import key out of range";
          importers.(i.key) <- (k, ii) :: importers.(i.key))
        b.imports)
    blocks;
  if fst exporter.(n_cons) < 0 then
    invalid_arg "Admm.run: no block exports the epigraph variable";
  for m = 0 to n_cons - 1 do
    if fst exporter.(m) < 0 then
      invalid_arg "Admm.run: consensus slot without an exporter"
  done;
  let importers = Array.map List.rev importers in
  (* Mutable copies of the boxes: parameter entries are rewritten every
     outer iteration; everything else keeps the caller's bounds. *)
  let los = Array.map (fun b -> Vec.copy b.lo) blocks in
  let his = Array.map (fun b -> Vec.copy b.hi) blocks in
  let xs = Array.map (fun b -> Vec.clamp ~lo:b.lo ~hi:b.hi b.x0) blocks in
  let compiled = Array.map (fun b -> Solver.compile ~obs b.objective) blocks in
  let inner = Array.make nb 0 in
  let meas_y = Array.make nb [||] in
  let meas_a = Array.make nb 0.0 in
  let measure_at k x =
    let ys, area = blocks.(k).measure x in
    if Array.length ys <> Array.length blocks.(k).exports then
      invalid_arg "Admm.run: measure arity mismatch";
    meas_y.(k) <- ys;
    meas_a.(k) <- area
  in
  for k = 0 to nb - 1 do
    measure_at k xs.(k)
  done;
  let yval slot =
    let k, ei = exporter.(slot) in
    meas_y.(k).(ei)
  in
  (* Consensus state: boundary times h, epigraph t, area shares a. *)
  let h = Array.init (Int.max n_cons 1) (fun m -> if m < n_cons then yval m else 0.0) in
  let sum_a = Array.fold_left ( +. ) 0.0 meas_a in
  let t = ref (Float.max (yval n_cons) sum_a) in
  let a = Array.copy meas_a in
  let scale0 = Float.max !t 1e-9 in
  let rho0 = options.rho_init /. scale0 in
  let rho = ref rho0 in
  (* Scaled duals: α per export (≥ 0), β per import (free), v per
     block area (≥ 0). *)
  let alpha = Array.map (fun b -> Array.make (Array.length b.exports) 0.0) blocks in
  let beta = Array.map (fun b -> Array.make (Array.length b.imports) 0.0) blocks in
  let v = Array.make nb 0.0 in
  let pin k p value =
    los.(k).(p) <- value;
    his.(k).(p) <- value
  in
  let set_params () =
    for k = 0 to nb - 1 do
      let b = blocks.(k) in
      Array.iteri
        (fun ei (e : export) ->
          let tgt = if e.key < 0 then !t else h.(e.key) in
          pin k e.param (tgt -. alpha.(k).(ei)))
        b.exports;
      Array.iteri
        (fun ii (i : import) -> pin k i.param (h.(i.key) -. beta.(k).(ii)))
        b.imports;
      pin k b.area_param (a.(k) -. v.(k));
      Array.iter (fun (l, p) -> pin k p xs.(k).(l)) b.prox;
      Array.iter (fun (p, (ob, ol)) -> pin k p xs.(ob).(ol)) b.links
    done
  in
  let solver_opts = { options.solver with Solver.domains = 1 } in
  let solve_block k =
    let b = blocks.(k) in
    let r : Solver.result =
      Solver.solve ~options:solver_opts
        ~engine:(Solver.Precompiled compiled.(k))
        ~x0:xs.(k)
        { Solver.objective = b.objective; lo = los.(k); hi = his.(k) }
    in
    xs.(k) <- r.x;
    inner.(k) <- inner.(k) + r.iterations;
    measure_at k r.x
  in
  let nd = Int.max 1 (Int.min options.domains nb) in
  let solve_all pool =
    match pool with
    | None ->
        for k = 0 to nb - 1 do
          solve_block k
        done
    | Some p ->
        let stride = Pool.size p in
        Pool.run p (fun di ->
            let k = ref di in
            while !k < nb do
              solve_block !k;
              k := !k + stride
            done)
  in
  (* Exact h-step: minimise (d − h)₊² + Σ_j (e_j − h)² over h, where
     d = y + α prices the exporter's inequality and the e_j = η + β
     price the importers' equalities. *)
  let update_h () =
    for m = 0 to n_cons - 1 do
      let ek, ei = exporter.(m) in
      let d = meas_y.(ek).(ei) +. alpha.(ek).(ei) in
      match importers.(m) with
      | [] -> h.(m) <- d
      | imps ->
          let n = List.length imps in
          let es =
            List.fold_left
              (fun acc (k, ii) ->
                let i = blocks.(k).imports.(ii) in
                acc +. xs.(k).(i.copy) +. beta.(k).(ii))
              0.0 imps
          in
          let h1 = (d +. es) /. float_of_int (1 + n) in
          h.(m) <- (if h1 <= d then h1 else Float.max d (es /. float_of_int n))
    done
  in
  (* Exact (t, a)-step: minimise t + ρ/2·[(d_stop − t)₊² + Σ(c_k − a_k)₊²]
     s.t. Σ a_k ≤ t.  Water-filling gives a common gap θ = (Σc − t)₊/K,
     and t is the root of the increasing derivative φ'. *)
  let update_t_a () =
    let sk, si = exporter.(n_cons) in
    let d_stop = meas_y.(sk).(si) +. alpha.(sk).(si) in
    let c = Array.init nb (fun k -> meas_a.(k) +. v.(k)) in
    let sum_c = Array.fold_left ( +. ) 0.0 c in
    let fk = float_of_int nb in
    let dphi tt =
      1.0
      -. (!rho *. Float.max (d_stop -. tt) 0.0)
      -. (!rho /. fk *. Float.max (sum_c -. tt) 0.0)
    in
    let hi0 = Float.max d_stop sum_c in
    let lo0 =
      let step = ref (Float.max (1.0 /. !rho) 1e-6) in
      let l = ref (hi0 -. !step) in
      let guard = ref 0 in
      while dphi !l > 0.0 && !guard < 200 do
        step := !step *. 2.0;
        l := hi0 -. !step;
        incr guard
      done;
      !l
    in
    let lo = ref lo0 and hi_ = ref hi0 in
    for _ = 1 to 80 do
      let mid = 0.5 *. (!lo +. !hi_) in
      if dphi mid > 0.0 then hi_ := mid else lo := mid
    done;
    t := 0.5 *. (!lo +. !hi_);
    let theta = Float.max (sum_c -. !t) 0.0 /. fk in
    Array.iteri (fun k ck -> a.(k) <- ck -. theta) c
  in
  (* Primal residual over all consensus constraints (positive parts for
     inequalities), plus the magnitude scale for relative tolerances. *)
  let residuals () =
    let pr2 = ref 0.0 and npr = ref 0 and sc = ref 1e-12 in
    let add2 x =
      pr2 := !pr2 +. (x *. x);
      incr npr
    in
    for m = 0 to n_cons - 1 do
      let ek, ei = exporter.(m) in
      let ym = meas_y.(ek).(ei) in
      sc := Float.max !sc (Float.max (Float.abs ym) (Float.abs h.(m)));
      add2 (Float.max (ym -. h.(m)) 0.0);
      List.iter
        (fun (k, ii) ->
          let i = blocks.(k).imports.(ii) in
          let e = xs.(k).(i.copy) in
          sc := Float.max !sc (Float.abs e);
          add2 (e -. h.(m)))
        importers.(m)
    done;
    let ys = yval n_cons in
    sc := Float.max !sc (Float.max (Float.abs ys) (Float.abs !t));
    add2 (Float.max (ys -. !t) 0.0);
    for k = 0 to nb - 1 do
      sc := Float.max !sc (Float.max (Float.abs meas_a.(k)) (Float.abs a.(k)));
      add2 (Float.max (meas_a.(k) -. a.(k)) 0.0)
    done;
    (sqrt !pr2, !npr, !sc)
  in
  let dual_residual ~h_prev ~t_prev ~a_prev =
    let s2 = ref 0.0 in
    for m = 0 to n_cons - 1 do
      let d = h.(m) -. h_prev.(m) in
      s2 := !s2 +. (d *. d *. float_of_int (1 + List.length importers.(m)))
    done;
    let dt = !t -. t_prev in
    s2 := !s2 +. (dt *. dt);
    for k = 0 to nb - 1 do
      let d = a.(k) -. a_prev.(k) in
      s2 := !s2 +. (d *. d)
    done;
    !rho *. sqrt !s2
  in
  let update_duals () =
    Array.iteri
      (fun k b ->
        Array.iteri
          (fun ei (e : export) ->
            let tgt = if e.key < 0 then !t else h.(e.key) in
            alpha.(k).(ei) <-
              Float.max 0.0 (alpha.(k).(ei) +. meas_y.(k).(ei) -. tgt))
          b.exports;
        Array.iteri
          (fun ii (i : import) ->
            beta.(k).(ii) <- beta.(k).(ii) +. xs.(k).(i.copy) -. h.(i.key))
          b.imports;
        v.(k) <- Float.max 0.0 (v.(k) +. meas_a.(k) -. a.(k)))
      blocks
  in
  let dual_norm () =
    let s2 = ref 0.0 in
    Array.iter (Array.iter (fun x -> s2 := !s2 +. (x *. x))) alpha;
    Array.iter (Array.iter (fun x -> s2 := !s2 +. (x *. x))) beta;
    Array.iter (fun x -> s2 := !s2 +. (x *. x)) v;
    !rho *. sqrt !s2
  in
  let scale_duals f =
    Array.iter (fun al -> Array.iteri (fun i x -> al.(i) <- x *. f) al) alpha;
    Array.iter (fun bl -> Array.iteri (fun i x -> bl.(i) <- x *. f) bl) beta;
    Array.iteri (fun i x -> v.(i) <- x *. f) v
  in
  Obs.counter obs "solver.admm_blocks"
    [ ("blocks", float_of_int nb); ("consensus", float_of_int n_cons) ];
  let best_phi = ref infinity in
  let best_xs = ref [||] in
  let best_t = ref !t in
  let hist = ref [] in
  let pr_final = ref 0.0 and du_final = ref 0.0 in
  let converged = ref false in
  let outer = ref 0 in
  let pool = if nd > 1 then Some (Pool.acquire ~size:nd) else None in
  Fun.protect
    ~finally:(fun () -> Option.iter Pool.release pool)
    (fun () ->
      let continue_ = ref true in
      while !continue_ && !outer < options.max_outer do
        incr outer;
        set_params ();
        solve_all pool;
        let h_prev = Array.copy h and t_prev = !t and a_prev = Array.copy a in
        update_h ();
        update_t_a ();
        let pr, npr, sc = residuals () in
        let du = dual_residual ~h_prev ~t_prev ~a_prev in
        update_duals ();
        let phi = cost xs in
        if phi < !best_phi then begin
          best_phi := phi;
          best_xs := Array.map Vec.copy xs;
          best_t := !t
        end;
        hist := (pr, du) :: !hist;
        pr_final := pr;
        du_final := du;
        Obs.counter obs "solver.admm_outer"
          [
            ("iteration", float_of_int !outer);
            ("rho", !rho);
            ("primal", pr);
            ("dual", du);
            ("phi", phi);
          ];
        let eps_pri =
          (options.eps_abs *. sqrt (float_of_int npr)) +. (options.eps_rel *. sc)
        in
        let eps_dua =
          (options.eps_abs *. sqrt (float_of_int npr))
          +. (options.eps_rel *. Float.max (dual_norm ()) sc)
        in
        if pr <= eps_pri && du <= eps_dua then begin
          converged := true;
          continue_ := false
        end
        else if pr > options.adapt_ratio *. du && !rho < rho0 *. 1e6 then begin
          rho := !rho *. 2.0;
          scale_duals 0.5
        end
        else if du > options.adapt_ratio *. pr && !rho > rho0 *. 1e-6 then begin
          rho := !rho /. 2.0;
          scale_duals 2.0
        end
      done);
  if Array.length !best_xs = 0 then begin
    best_xs := Array.map Vec.copy xs;
    best_phi := cost xs
  end;
  Obs.counter obs "solver.admm_done"
    [
      ("outer", float_of_int !outer);
      ("converged", if !converged then 1.0 else 0.0);
      ("primal", !pr_final);
      ("dual", !du_final);
      ("rho", !rho);
    ];
  {
    solutions = !best_xs;
    phi = !best_phi;
    t = !best_t;
    stats =
      {
        blocks = nb;
        outer_iterations = !outer;
        inner_iterations = Array.fold_left ( + ) 0 inner;
        primal_residual = !pr_final;
        dual_residual = !du_final;
        rho_final = !rho;
        converged = !converged;
        residuals = Array.of_list (List.rev !hist);
      };
  }

(** Generic consensus-ADMM driver over block-decomposed convex programs.

    The allocation program [min Φ = max(A_p, C_p)] decomposes per MDG
    block (see {!Mdg.Partition} and {!Core.Decompose}): in epigraph
    form [min t] s.t. [Σ_k A_k ≤ t] and [y_STOP ≤ t], each block [k]
    owns its nodes' log-allocations, the finish times of its boundary
    (cut-edge source) nodes couple blocks, and the area/critical-path
    bound couples everything to the epigraph variable [t].

    This module is the {e numeric} driver and knows nothing about
    MDGs: a {!block} is a box-constrained convex objective (built by
    the caller from hinge/affine penalties, see {!Expr.hinge}) plus
    index metadata tying some of its variables to the consensus
    quantities:

    - {e exports}: for each boundary node the owning block exposes, a
      pinned parameter carries the consensus target [h_m − α_m]
      (or [t − α] for the epigraph export, [key = -1]); the block
      objective penalises [hinge (y_m − param)].
    - {e imports}: a downstream block reading boundary time [m] owns a
      copy variable η with a two-sided penalty [sq_affine (η − param)]
      against [h_m − β].
    - {e area}: one pinned parameter per block carries its share
      target [a_k − v_k]; the objective penalises [hinge (A_k − param)].
    - {e prox} / {e links}: pinned parameters tracking the block's own
      previous iterate (damping) and neighbour blocks' current
      allocations (Gauss–Jacobi pricing of cross-cut transfers).

    All penalties are ρ-free, so each block compiles to a tape {e
    once}; outer iterations only rewrite the pinned parameters'
    (degenerate) box bounds and re-solve warm-started through the
    [Precompiled] engine.  Block solves run in parallel on a
    {!Numeric.Domain_pool} (block [k] on participant [k mod domains];
    results are deterministic regardless of scheduling).  The driver
    closes each outer iteration with exact consensus updates — a
    closed-form [h]-step, a water-filling [(t, a)]-step solved by
    bisection — scaled-dual updates with adaptive ρ (duals rescaled on
    every ρ change), and a Boyd-style primal/dual residual stopping
    rule.  The best-Φ iterate (measured by the caller's [cost]
    callback, typically one monolithic tape evaluation) is returned,
    to be handed to the monolithic polish. *)

type export = {
  key : int;
      (** consensus slot this export feeds: a boundary finish time in
          [0, n_cons), or [-1] for the epigraph variable [t] (exactly
          one block — the one owning STOP — exports it) *)
  param : int;  (** pinned parameter variable carrying [h_m - α] *)
}

type import = {
  key : int;  (** consensus slot in [0, n_cons) *)
  copy : int;  (** local copy variable η for the boundary time *)
  param : int;  (** pinned parameter variable carrying [h_m - β] *)
}

type block = {
  objective : Expr.t;
  lo : Numeric.Vec.t;
  hi : Numeric.Vec.t;  (** box; parameter entries are overwritten *)
  x0 : Numeric.Vec.t;  (** initial local iterate (projected into box) *)
  exports : export array;
  imports : import array;
  area_param : int;  (** pinned parameter carrying [a_k - v_k] *)
  prox : (int * int) array;
      (** [(local, param)]: param tracks the block's own previous
          iterate at [local] (proximal damping) *)
  links : (int * (int * int)) array;
      (** [(param, (block, local))]: param tracks another block's
          current iterate (cross-cut transfer pricing) *)
  measure : Numeric.Vec.t -> float array * float;
      (** exact export values (in [exports] order) and block area at a
          local solution; called once per block per outer iteration,
          possibly from a pool domain *)
}

type options = {
  max_outer : int;  (** outer (consensus) iteration cap *)
  rho_init : float;
      (** initial penalty, in units of 1/Φ — the driver divides by the
          initial epigraph scale *)
  eps_abs : float;  (** absolute residual tolerance (Boyd §3.3.1) *)
  eps_rel : float;  (** relative residual tolerance *)
  adapt_ratio : float;
      (** double (halve) ρ when the primal residual exceeds
          [adapt_ratio] times the dual one (and conversely), rescaling
          the scaled duals to keep the unscaled ones fixed *)
  solver : Solver.options;
      (** per-block subproblem solver options; [domains] is forced to
          1 inside block solves (the pool parallelism is across
          blocks) *)
  domains : int;  (** domains for parallel block solves; 1 = serial *)
}

val default_options : options
(** 30 outer iterations, [rho_init = 4.], [eps_abs = 1e-8],
    [eps_rel = 1e-4], [adapt_ratio = 10.], warm-start-accepting
    defaults for the block solver, [domains] from the session default
    ({!Solver.default_options}). *)

type stats = {
  blocks : int;
  outer_iterations : int;  (** outer iterations performed *)
  inner_iterations : int;  (** total block-solver iterations *)
  primal_residual : float;  (** at the last outer iteration *)
  dual_residual : float;
  rho_final : float;
  converged : bool;  (** the residual stopping rule fired *)
  residuals : (float * float) array;
      (** per-outer-iteration (primal, dual) residual history *)
}

type result = {
  solutions : Numeric.Vec.t array;
      (** per-block local iterates of the best-Φ outer iteration *)
  phi : float;  (** [cost solutions] — the best value seen *)
  t : float;  (** epigraph consensus value at that iteration *)
  stats : stats;
}

val run :
  ?obs:Obs.t ->
  ?options:options ->
  n_cons:int ->
  cost:(Numeric.Vec.t array -> float) ->
  block array ->
  result
(** Run consensus ADMM over the blocks.  [n_cons] is the number of
    boundary consensus slots; every slot must have exactly one
    exporter, the epigraph slot ([key = -1]) exactly one, and import
    keys must be in range — [Invalid_argument] otherwise.  [cost] maps
    the per-block iterates to the global objective (it is called once
    per outer iteration, from the driver's own domain).

    With a live [obs] sink the run emits ["solver.admm_blocks"] once
    (block and consensus counts), ["solver.admm_outer"] per outer
    iteration (iteration, ρ, primal/dual residuals, Φ) and
    ["solver.admm_done"] at the end. *)

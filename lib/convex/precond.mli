(** Jacobi (diagonal) preconditioning for the projected Newton-CG.

    Built from the tape's Gauss–Newton Hessian diagonal
    ({!Tape.hess_diag}); see {!Solver} for where it enters the CG
    recurrence.  With the preconditioner disabled the solver runs the
    same recurrence with the identity diagonal, which reproduces plain
    CG bit for bit. *)

val jacobi_clamp : free:bool array -> Numeric.Vec.t -> bool
(** Clamp a raw (possibly indefinite or singular) Hessian diagonal
    into an SPD Jacobi preconditioner, in place: entries that are
    non-finite, nonpositive or tiny relative to the largest free entry
    are raised to a relative floor.  Returns [false] — and resets the
    diagonal to the identity — when no free entry is usable. *)

val apply :
  free:bool array -> Numeric.Vec.t -> Numeric.Vec.t -> Numeric.Vec.t -> unit
(** [apply ~free m r z] overwrites [z] with [M⁻¹ r] on the free
    coordinates ([z_i = r_i / m_i]) and zero elsewhere. *)

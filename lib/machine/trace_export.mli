(** Export simulation traces through the {!Obs} telemetry subsystem.

    {!to_obs} replays a finished {!Sim.result} into any sink — the
    post-hoc counterpart of passing [?obs] to {!Sim.run} directly —
    and {!to_json}/{!save} render a standalone Chrome trace-event
    JSON file for [chrome://tracing] / Perfetto.  Each processor
    becomes a thread; compute/send/receive/wait segments become
    complete ("ph":"X") events with microsecond timestamps. *)

val to_obs : ?pid:int -> ?process_name:string -> Obs.t -> Sim.result -> unit
(** Emit process/thread metadata and one [Complete] event per
    activity segment (simulated seconds) into the sink.  [pid]
    defaults to 0 for standalone exports; pick a distinct pid when
    mixing with other timelines. *)

val to_json : ?process_name:string -> Sim.result -> string
(** The trace as a JSON array of event objects. *)

val save : ?process_name:string -> string -> Sim.result -> unit
(** Write the JSON to a file path. *)

(** Discrete-event execution of MPMD programs on the simulated
    multicomputer.

    Each processor walks its op list.  [Compute] occupies it for the
    given duration; [Send] occupies it for the ground-truth send-busy
    time and puts a message in flight; [Recv] blocks until the matching
    message (same MDG edge, same source processor) has arrived, then
    occupies the processor for the receive-busy time.  Messages whose
    source and destination processor coincide are local copies and cost
    a negligible fixed per-byte time on each side.

    The simulation is deterministic.  If it reaches a state where no
    event is pending but some processor still has ops (mismatched
    send/recv pairs), it raises [Deadlock] with a diagnostic. *)

exception Deadlock of string

type activity =
  | Busy_compute of int   (** MDG node id *)
  | Busy_send of int      (** MDG edge id *)
  | Busy_recv of int      (** MDG edge id *)
  | Waiting of int        (** blocked in Recv for this MDG edge *)

type segment = {
  proc : int;
  start : float;
  finish : float;
  activity : activity;
}

type result = {
  finish_time : float;          (** when the last processor went idle *)
  proc_finish : float array;    (** per-processor completion times *)
  busy : float array;           (** per-processor busy seconds
                                    (compute + send + recv) *)
  segments : segment list;      (** full activity trace, time-ordered *)
  messages_delivered : int;
}

val activity_label : activity -> string
(** Human-readable label, e.g. ["compute node 3"]. *)

val activity_category : activity -> string
(** ["compute"], ["communication"] or ["idle"]. *)

val run :
  ?topology:Topology.t ->
  ?obs:Obs.t ->
  ?obs_pid:int ->
  Ground_truth.t ->
  Program.t ->
  result
(** [?topology] adds distance/contention delays on top of the ground
    truth's uniform base network (default: none — the paper's uniform
    assumption).  The topology's contention state is reset at the start
    of the run.

    With a live [obs] sink (default {!Obs.null}: no overhead) the
    simulator forwards its event trace as it runs: one process/thread
    naming block, a [Complete] event per activity segment stamped in
    simulated seconds, and a final ["sim.messages_delivered"] counter.
    [obs_pid] (default 1) keeps the simulated timeline separate from
    the compiler's wall-clock events (pid 0 by convention). *)

val utilisation : result -> float
(** Mean fraction of [finish_time] the processors spent busy. *)

val node_spans : result -> (int * (float * float)) list
(** For every MDG node that computed, its earliest compute start and
    latest compute finish across processors. *)

let to_obs ?(pid = 0) ?(process_name = "simulated multicomputer") obs
    (r : Sim.result) =
  if Obs.enabled obs then begin
    Obs.process_name obs ~pid process_name;
    Array.iteri
      (fun p _ -> Obs.thread_name obs ~pid ~tid:p (Printf.sprintf "P%02d" p))
      r.busy;
    List.iter
      (fun (s : Sim.segment) ->
        Obs.complete obs ~pid ~tid:s.proc
          ~cat:(Sim.activity_category s.activity)
          (Sim.activity_label s.activity)
          ~ts:s.start ~dur:(s.finish -. s.start))
      r.segments
  end

let to_json ?process_name r =
  let recorder = Obs.Recorder.create () in
  to_obs ?process_name (Obs.Recorder.sink recorder) r;
  Obs.Chrome_format.to_json (Obs.Recorder.events recorder)

let save ?process_name path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json ?process_name r))

exception Deadlock of string

type activity =
  | Busy_compute of int
  | Busy_send of int
  | Busy_recv of int
  | Waiting of int

type segment = {
  proc : int;
  start : float;
  finish : float;
  activity : activity;
}

type result = {
  finish_time : float;
  proc_finish : float array;
  busy : float array;
  segments : segment list;
  messages_delivered : int;
}

let activity_label = function
  | Busy_compute node -> Printf.sprintf "compute node %d" node
  | Busy_send edge -> Printf.sprintf "send edge %d" edge
  | Busy_recv edge -> Printf.sprintf "recv edge %d" edge
  | Waiting edge -> Printf.sprintf "wait edge %d" edge

let activity_category = function
  | Busy_compute _ -> "compute"
  | Busy_send _ | Busy_recv _ -> "communication"
  | Waiting _ -> "idle"

type event =
  | Advance of int  (* processor becomes free and looks at its next op *)
  | Deliver of { dst : int; edge : int; src : int; bytes : float }

(* Key identifying a message stream between two processors on one MDG
   edge. *)
type key = { k_dst : int; k_edge : int; k_src : int }

let local_copy_per_byte = 0.5e-9

let run ?topology ?(obs = Obs.null) ?(obs_pid = 1) gt program =
  Option.iter Topology.reset topology;
  let n = Program.procs program in
  if Obs.enabled obs then begin
    Obs.process_name obs ~pid:obs_pid "simulated multicomputer";
    for p = 0 to n - 1 do
      Obs.thread_name obs ~pid:obs_pid ~tid:p (Printf.sprintf "P%02d" p)
    done
  end;
  let code = Array.init n (fun p -> Array.of_list (Program.code program p)) in
  let pc = Array.make n 0 in
  let parked : (key, float) Hashtbl.t = Hashtbl.create 64 in
  (* parked maps the key a processor is blocked on to its park time;
     the processor id is inside the key (k_dst). *)
  let mailbox : (key, float Queue.t) Hashtbl.t = Hashtbl.create 64 in
  let q : event Event_queue.t = Event_queue.create () in
  let segments = ref [] in
  let busy = Array.make n 0.0 in
  let proc_finish = Array.make n 0.0 in
  let delivered = ref 0 in
  let record proc start finish activity =
    if finish > start then begin
      segments := { proc; start; finish; activity } :: !segments;
      (match activity with
      | Busy_compute _ | Busy_send _ | Busy_recv _ ->
          busy.(proc) <- busy.(proc) +. (finish -. start)
      | Waiting _ -> ());
      (* Forward the segment to the telemetry sink on the simulated
         clock, under the simulator's own pid. *)
      if Obs.enabled obs then
        Obs.complete obs ~pid:obs_pid ~tid:proc
          ~cat:(activity_category activity)
          (activity_label activity) ~ts:start ~dur:(finish -. start)
    end
  in
  let send_cost ~self ~dst ~bytes ~now =
    if self = dst then (bytes *. local_copy_per_byte, 0.0)
    else
      let busy = Ground_truth.send_busy gt ~bytes in
      let extra =
        match topology with
        | None -> 0.0
        | Some topo ->
            (* The message enters the network when the send completes. *)
            Topology.message_delay topo ~src:self ~dst ~bytes ~now:(now +. busy)
      in
      (busy, Ground_truth.net_delay gt ~bytes +. extra)
  in
  let recv_cost ~self ~src ~bytes =
    if self = src then bytes *. local_copy_per_byte
    else Ground_truth.recv_busy gt ~bytes
  in
  let start_recv p t park_time (op_edge : int) src bytes =
    record p park_time t (Waiting op_edge);
    let cost = recv_cost ~self:p ~src ~bytes in
    record p t (t +. cost) (Busy_recv op_edge);
    pc.(p) <- pc.(p) + 1;
    Event_queue.push q ~time:(t +. cost) (Advance p)
  in
  let advance p t =
    if pc.(p) >= Array.length code.(p) then proc_finish.(p) <- t
    else
      match code.(p).(pc.(p)) with
      | Program.Compute { node; seconds } ->
          record p t (t +. seconds) (Busy_compute node);
          pc.(p) <- pc.(p) + 1;
          Event_queue.push q ~time:(t +. seconds) (Advance p)
      | Program.Send { edge; dst_proc; bytes } ->
          let busy_time, delay = send_cost ~self:p ~dst:dst_proc ~bytes ~now:t in
          record p t (t +. busy_time) (Busy_send edge);
          Event_queue.push q
            ~time:(t +. busy_time +. delay)
            (Deliver { dst = dst_proc; edge; src = p; bytes });
          pc.(p) <- pc.(p) + 1;
          Event_queue.push q ~time:(t +. busy_time) (Advance p)
      | Program.Recv { edge; src_proc; bytes = _ } -> (
          let key = { k_dst = p; k_edge = edge; k_src = src_proc } in
          match Hashtbl.find_opt mailbox key with
          | Some box when not (Queue.is_empty box) ->
              let bytes = Queue.pop box in
              start_recv p t t edge src_proc bytes
          | _ ->
              if Hashtbl.mem parked key then
                raise
                  (Deadlock
                     (Printf.sprintf
                        "processor %d issued two concurrent recvs on edge %d \
                         from %d"
                        p edge src_proc));
              Hashtbl.replace parked key t)
  in
  for p = 0 to n - 1 do
    Event_queue.push q ~time:0.0 (Advance p)
  done;
  let rec loop () =
    match Event_queue.pop q with
    | None -> ()
    | Some (t, Advance p) ->
        advance p t;
        loop ()
    | Some (t, Deliver { dst; edge; src; bytes }) ->
        incr delivered;
        let key = { k_dst = dst; k_edge = edge; k_src = src } in
        (match Hashtbl.find_opt parked key with
        | Some park_time ->
            Hashtbl.remove parked key;
            start_recv dst t park_time edge src bytes
        | None ->
            let box =
              match Hashtbl.find_opt mailbox key with
              | Some box -> box
              | None ->
                  let box = Queue.create () in
                  Hashtbl.replace mailbox key box;
                  box
            in
            Queue.push bytes box);
        loop ()
  in
  loop ();
  let stuck =
    List.filter_map
      (fun p -> if pc.(p) < Array.length code.(p) then Some p else None)
      (List.init n Fun.id)
  in
  if stuck <> [] then
    raise
      (Deadlock
         (Printf.sprintf "processors %s blocked in Recv with no matching Send"
            (String.concat ", " (List.map string_of_int stuck))));
  let finish_time = Array.fold_left Float.max 0.0 proc_finish in
  if Obs.enabled obs then
    Obs.counter obs ~pid:obs_pid ~ts:finish_time "sim.messages_delivered"
      [ ("count", float_of_int !delivered) ];
  {
    finish_time;
    proc_finish;
    busy;
    segments =
      List.sort
        (fun a b -> compare (a.start, a.proc) (b.start, b.proc))
        !segments;
    messages_delivered = !delivered;
  }

let utilisation r =
  if r.finish_time <= 0.0 then 1.0
  else
    let n = Array.length r.busy in
    Array.fold_left ( +. ) 0.0 r.busy /. (float_of_int n *. r.finish_time)

let node_spans r =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun s ->
      match s.activity with
      | Busy_compute node ->
          let lo, hi =
            Option.value (Hashtbl.find_opt tbl node)
              ~default:(Float.infinity, Float.neg_infinity)
          in
          Hashtbl.replace tbl node (Float.min lo s.start, Float.max hi s.finish)
      | Busy_send _ | Busy_recv _ | Waiting _ -> ())
    r.segments;
  Hashtbl.fold (fun node span acc -> (node, span) :: acc) tbl []
  |> List.sort compare

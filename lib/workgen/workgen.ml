module G = Mdg.Graph

type dist =
  | Const of float
  | Uniform of float * float
  | Log_uniform of float * float

type spec = {
  depth : int;
  branching : int;
  divide : int;
  combine : int;
  cutoff : float;
  wiring : float;
  twod_fraction : float;
  tau : dist;
  alpha : dist;
  bytes : dist;
  tau_decay : float;
  bytes_decay : float;
}

let default_spec =
  {
    depth = 2;
    branching = 3;
    divide = 2;
    combine = 2;
    cutoff = 0.0;
    wiring = 0.3;
    twod_fraction = 0.25;
    tau = Log_uniform (0.01, 1.0);
    alpha = Uniform (0.02, 0.3);
    bytes = Log_uniform (1024.0, 262144.0);
    tau_decay = 0.6;
    bytes_decay = 0.5;
  }

let check_dist name = function
  | Const c ->
      if not (Float.is_finite c) || c < 0.0 then
        invalid_arg (Printf.sprintf "Workgen: %s constant %g out of range" name c)
  | Uniform (lo, hi) ->
      if not (Float.is_finite lo && Float.is_finite hi) || lo < 0.0 || hi < lo
      then
        invalid_arg
          (Printf.sprintf "Workgen: %s uniform range [%g, %g] invalid" name lo
             hi)
  | Log_uniform (lo, hi) ->
      if not (Float.is_finite lo && Float.is_finite hi) || lo <= 0.0 || hi < lo
      then
        invalid_arg
          (Printf.sprintf "Workgen: %s log-uniform range [%g, %g] invalid" name
             lo hi)

let check_unit name v =
  if not (Float.is_finite v) || v < 0.0 || v > 1.0 then
    invalid_arg (Printf.sprintf "Workgen: %s %g outside [0, 1]" name v)

let validate s =
  if s.depth < 0 then invalid_arg "Workgen: depth < 0";
  if s.branching < 1 then invalid_arg "Workgen: branching < 1";
  if s.divide < 0 then invalid_arg "Workgen: divide < 0";
  if s.combine < 0 then invalid_arg "Workgen: combine < 0";
  check_unit "cutoff" s.cutoff;
  check_unit "wiring" s.wiring;
  check_unit "twod_fraction" s.twod_fraction;
  check_dist "tau" s.tau;
  check_dist "alpha" s.alpha;
  check_dist "bytes" s.bytes;
  if not (Float.is_finite s.tau_decay) || s.tau_decay <= 0.0 then
    invalid_arg "Workgen: tau_decay <= 0";
  if not (Float.is_finite s.bytes_decay) || s.bytes_decay <= 0.0 then
    invalid_arg "Workgen: bytes_decay <= 0"

let num_tasks s =
  (* 1 + b + b^2 + ... + b^depth, saturating instead of overflowing. *)
  let rec go level acc width =
    if level > s.depth || acc > max_int / 2 then acc
    else
      go (level + 1) (acc + width)
        (if width > max_int / (s.branching + 1) then max_int else width * s.branching)
  in
  go 0 0 1

(* Deterministic splittable PRNG (same LCG as Kernels.Workloads). *)
module Rng = struct
  type t = { mutable state : int64 }

  let make seed = { state = Int64.of_int (seed lxor 0x5DEECE66D) }

  let next t =
    t.state <-
      Int64.add (Int64.mul t.state 6364136223846793005L) 1442695040888963407L;
    Int64.to_int (Int64.shift_right_logical t.state 17) land 0xFFFFFF

  let float t = float_of_int (next t) /. float_of_int 0x1000000

  let int t n = if n <= 0 then 0 else next t mod n
end

let draw rng = function
  | Const c -> c
  | Uniform (lo, hi) -> lo +. (Rng.float rng *. (hi -. lo))
  | Log_uniform (lo, hi) ->
      exp (log lo +. (Rng.float rng *. (log hi -. log lo)))

(* ------------------------------------------------------------------ *)
(* Graph generation                                                    *)
(* ------------------------------------------------------------------ *)

let generate s ~seed =
  validate s;
  let rng = Rng.make seed in
  let b = G.create_builder () in
  let present = Hashtbl.create 64 in
  (* The builder rejects duplicate (src, dst) pairs; forced
     connectivity edges and wiring extras may coincide, so dedupe
     here.  Byte/kind draws happen only for edges actually added,
     keeping the stream deterministic. *)
  let add_edge ~src ~dst ~bscale =
    if src <> dst && not (Hashtbl.mem present (src, dst)) then begin
      Hashtbl.add present (src, dst) ();
      let bytes = Float.max 1.0 (draw rng s.bytes *. bscale) in
      let kind : G.transfer_kind =
        if Rng.float rng < s.twod_fraction then Twod else Oned
      in
      G.add_edge b ~src ~dst ~bytes ~kind
    end
  in
  let node ~label ~tscale =
    let alpha = Float.min 1.0 (Float.max 0.0 (draw rng s.alpha)) in
    let tau = Float.max 1e-9 (draw rng s.tau *. tscale) in
    G.add_node b ~label ~kernel:(Synthetic { alpha; tau })
  in
  (* A task returns its (entries, exits): the nodes upstream tasks
     feed into and the nodes its result leaves from. *)
  let rec task path level =
    let gen = s.depth - level in
    let tscale = s.tau_decay ** float_of_int gen in
    let bscale = s.bytes_decay ** float_of_int gen in
    if level <= 0 then begin
      let id = node ~label:(path ^ ".leaf") ~tscale in
      ([ id ], [ id ])
    end
    else begin
      let divide =
        Array.init s.divide (fun i ->
            node ~label:(Printf.sprintf "%s.div%d" path i) ~tscale)
      in
      let children =
        Array.init s.branching (fun i ->
            let level' =
              if level > 1 && Rng.float rng < s.cutoff then 0 else level - 1
            in
            task (Printf.sprintf "%s.%d" path i) level')
      in
      if s.divide > 0 then
        Array.iter
          (fun (entries, _) ->
            List.iter
              (fun e ->
                (* One forced predecessor keeps every child reachable
                   from the divide phase... *)
                let forced = divide.(Rng.int rng s.divide) in
                add_edge ~src:forced ~dst:e ~bscale;
                (* ...wiring adds the rest of the fan-out. *)
                Array.iter
                  (fun d ->
                    if d <> forced && Rng.float rng < s.wiring then
                      add_edge ~src:d ~dst:e ~bscale)
                  divide)
              entries)
          children;
      let combine =
        Array.init s.combine (fun i ->
            node ~label:(Printf.sprintf "%s.comb%d" path i) ~tscale)
      in
      if s.combine > 0 then begin
        (* Every combine node consumes some child's result, and every
           child's result reaches some combine node. *)
        Array.iter
          (fun c ->
            let _, exits = children.(Rng.int rng s.branching) in
            let exits = Array.of_list exits in
            add_edge ~src:exits.(Rng.int rng (Array.length exits)) ~dst:c
              ~bscale)
          combine;
        Array.iter
          (fun (_, exits) ->
            List.iter
              (fun x ->
                let forced = combine.(Rng.int rng s.combine) in
                add_edge ~src:x ~dst:forced ~bscale;
                Array.iter
                  (fun c ->
                    if c <> forced && Rng.float rng < s.wiring then
                      add_edge ~src:x ~dst:c ~bscale)
                  combine)
              exits)
          children
      end;
      let concat f =
        Array.to_list children |> List.concat_map f
      in
      let entries =
        if s.divide > 0 then Array.to_list divide else concat fst
      in
      let exits =
        if s.combine > 0 then Array.to_list combine else concat snd
      in
      (entries, exits)
    end
  in
  ignore (task "r" s.depth);
  G.normalise (G.build b)

(* ------------------------------------------------------------------ *)
(* Program generation                                                  *)
(* ------------------------------------------------------------------ *)

let generate_program s ~seed ~size =
  validate s;
  (* A distinct stream tag so graph and program draws of the same seed
     are unrelated. *)
  let rng = Rng.make (seed lxor 0x9E3779B9) in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "m%d" !counter
  in
  let stmts = ref [] in
  let emit target rhs =
    let dist : Frontend.Ast.distribution =
      if Rng.float rng < s.twod_fraction then Col else Row
    in
    stmts := Frontend.Ast.stmt ~dist target rhs :: !stmts;
    target
  in
  let pick pool = pool.(Rng.int rng (Array.length pool)) in
  let binop a b : Frontend.Ast.rhs =
    if Rng.int rng 2 = 0 then Add (a, b) else Sub (a, b)
  in
  (* Every statement writes a fresh matrix, so the program is in SSA
     form: reordering along any flow-dependence-respecting schedule
     cannot change the computed values. *)
  let rec task level a b =
    if level <= 0 then emit (fresh ()) (Mul (a, b))
    else begin
      let pool = ref [| a; b |] in
      for _ = 1 to s.divide do
        let x = pick !pool in
        let y = pick !pool in
        pool := Array.append !pool [| emit (fresh ()) (binop x y) |]
      done;
      let outs =
        Array.init s.branching (fun _ ->
            let level' =
              if level > 1 && Rng.float rng < s.cutoff then 0 else level - 1
            in
            let x = pick !pool in
            let y = pick !pool in
            task level' x y)
      in
      let acc = ref outs in
      let result = ref outs.(Array.length outs - 1) in
      for _ = 1 to s.combine do
        let x = pick !acc in
        let y = pick !acc in
        result := emit (fresh ()) (binop x y);
        acc := Array.append !acc [| !result |]
      done;
      !result
    end
  in
  let a = emit "A" Init in
  let b = emit "B" Init in
  ignore (task s.depth a b);
  Frontend.Ast.program ~size (List.rev !stmts)

(* ------------------------------------------------------------------ *)
(* Spec grammar                                                        *)
(* ------------------------------------------------------------------ *)

let dist_to_string = function
  | Const c -> Printf.sprintf "%g" c
  | Uniform (lo, hi) -> Printf.sprintf "u%g~%g" lo hi
  | Log_uniform (lo, hi) -> Printf.sprintf "l%g~%g" lo hi

let spec_to_string s =
  String.concat ","
    [
      Printf.sprintf "depth=%d" s.depth;
      Printf.sprintf "branch=%d" s.branching;
      Printf.sprintf "div=%d" s.divide;
      Printf.sprintf "comb=%d" s.combine;
      Printf.sprintf "cutoff=%g" s.cutoff;
      Printf.sprintf "wiring=%g" s.wiring;
      Printf.sprintf "twod=%g" s.twod_fraction;
      "tau=" ^ dist_to_string s.tau;
      "alpha=" ^ dist_to_string s.alpha;
      "bytes=" ^ dist_to_string s.bytes;
      Printf.sprintf "taudecay=%g" s.tau_decay;
      Printf.sprintf "bytesdecay=%g" s.bytes_decay;
    ]

let dist_of_string str =
  let range tail =
    match String.split_on_char '~' tail with
    | [ lo; hi ] -> (
        match (float_of_string_opt lo, float_of_string_opt hi) with
        | Some lo, Some hi -> Some (lo, hi)
        | _ -> None)
    | _ -> None
  in
  if str = "" then None
  else
    match str.[0] with
    | 'u' ->
        Option.map
          (fun (lo, hi) -> Uniform (lo, hi))
          (range (String.sub str 1 (String.length str - 1)))
    | 'l' ->
        Option.map
          (fun (lo, hi) -> Log_uniform (lo, hi))
          (range (String.sub str 1 (String.length str - 1)))
    | _ -> Option.map (fun c -> Const c) (float_of_string_opt str)

let spec_of_string str =
  let ( let* ) = Result.bind in
  let int_field k v f =
    match int_of_string_opt v with
    | Some i -> Ok (f i)
    | None -> Error (Printf.sprintf "spec key %s: bad integer %S" k v)
  in
  let float_field k v f =
    match float_of_string_opt v with
    | Some x -> Ok (f x)
    | None -> Error (Printf.sprintf "spec key %s: bad float %S" k v)
  in
  let dist_field k v f =
    match dist_of_string v with
    | Some d -> Ok (f d)
    | None ->
        Error
          (Printf.sprintf
             "spec key %s: bad distribution %S (want <c>, u<lo>~<hi> or \
              l<lo>~<hi>)"
             k v)
  in
  let apply s kv =
    match String.index_opt kv '=' with
    | None -> Error (Printf.sprintf "spec item %S is not key=value" kv)
    | Some i -> (
        let k = String.sub kv 0 i in
        let v = String.sub kv (i + 1) (String.length kv - i - 1) in
        match k with
        | "depth" -> int_field k v (fun depth -> { s with depth })
        | "branch" -> int_field k v (fun branching -> { s with branching })
        | "div" -> int_field k v (fun divide -> { s with divide })
        | "comb" -> int_field k v (fun combine -> { s with combine })
        | "cutoff" -> float_field k v (fun cutoff -> { s with cutoff })
        | "wiring" -> float_field k v (fun wiring -> { s with wiring })
        | "twod" ->
            float_field k v (fun twod_fraction -> { s with twod_fraction })
        | "tau" -> dist_field k v (fun tau -> { s with tau })
        | "alpha" -> dist_field k v (fun alpha -> { s with alpha })
        | "bytes" -> dist_field k v (fun bytes -> { s with bytes })
        | "taudecay" -> float_field k v (fun tau_decay -> { s with tau_decay })
        | "bytesdecay" ->
            float_field k v (fun bytes_decay -> { s with bytes_decay })
        | _ -> Error (Printf.sprintf "unknown spec key %S" k))
  in
  let items =
    String.split_on_char ',' (String.trim str)
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let* s =
    List.fold_left
      (fun acc kv ->
        let* s = acc in
        apply s kv)
      (Ok default_spec) items
  in
  match validate s with
  | () -> Ok s
  | exception Invalid_argument msg -> Error msg

let spec_of_string_exn str =
  match spec_of_string str with
  | Ok s -> s
  | Error msg -> invalid_arg ("Workgen.spec_of_string: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(* Every candidate strictly decreases the measure (depth, branching,
   divide + combine, #non-degenerate float knobs, #non-constant
   distributions), so shrinking cannot loop. *)
let shrink_spec s =
  let shrink_dist = function
    | Const _ -> None
    | Uniform (lo, _) | Log_uniform (lo, _) -> Some (Const lo)
  in
  List.filter_map
    (fun c -> c)
    [
      (if s.depth > 0 then Some { s with depth = s.depth - 1 } else None);
      (if s.branching > 1 then Some { s with branching = s.branching - 1 }
       else None);
      (if s.divide > 0 then Some { s with divide = s.divide - 1 } else None);
      (if s.combine > 0 then Some { s with combine = s.combine - 1 } else None);
      (if s.cutoff > 0.0 then Some { s with cutoff = 0.0 } else None);
      (if s.wiring > 0.0 then Some { s with wiring = 0.0 } else None);
      (if s.twod_fraction > 0.0 then Some { s with twod_fraction = 0.0 }
       else None);
      Option.map (fun tau -> { s with tau }) (shrink_dist s.tau);
      Option.map (fun alpha -> { s with alpha }) (shrink_dist s.alpha);
      Option.map (fun bytes -> { s with bytes }) (shrink_dist s.bytes);
    ]

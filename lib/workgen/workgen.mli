(** Randomized recursive-workload generator.

    The paper validates its pipeline on exactly two hand-built kernels
    (complex matrix multiply and one-level Strassen); this module
    generates the broader divide–combine nested-dataflow class those
    kernels belong to (Dinh & Simhadri, arXiv:1602.04552): a recursion
    schema expands into a tree of tasks, each internal task
    contributing a {e divide} phase, [branching] recursive children
    and a {e combine} phase, with per-level cost decay and
    configurable irregularity — the knobs follow the realistic-model
    axes of Papp et al. (arXiv:2404.15246).

    Everything here is deterministic in [(spec, seed)]: the same pair
    always produces the same graph (or program), across processes and
    platforms, which is what lets property-test failures be pinned as
    corpus seeds (see [test/corpus/workgen.seeds]) and benchmark rows
    be reproduced from their [spec]/[seed] columns. *)

(** {1 Specifications} *)

type dist =
  | Const of float                (** the constant itself *)
  | Uniform of float * float      (** uniform on [[lo, hi]] *)
  | Log_uniform of float * float
      (** exp of a uniform draw on [[log lo, log hi]] — scale-free
          cost mixtures; requires [lo > 0] *)

type spec = {
  depth : int;        (** recursion depth; [0] generates a single leaf *)
  branching : int;    (** children per internal task, [>= 1] *)
  divide : int;       (** nodes in each divide phase, [>= 0] *)
  combine : int;      (** nodes in each combine phase, [>= 0] *)
  cutoff : float;
      (** probability that a child stops recursing early (its subtree
          collapses to a leaf), in [[0, 1]] — irregular recursion
          trees; [0] is a perfectly balanced tree *)
  wiring : float;
      (** probability of each {e extra} divide→child / child→combine
          edge beyond the forced connectivity edges, in [[0, 1]] *)
  twod_fraction : float;  (** fraction of 2D (redistributing) transfers *)
  tau : dist;             (** leaf/phase serial times, seconds *)
  alpha : dist;           (** Amdahl serial fractions (clamped to [[0,1]]) *)
  bytes : dist;           (** transfer sizes, bytes *)
  tau_decay : float;
      (** per-level multiplier on [tau] going down the recursion
          ([> 0]; Strassen-like workloads shrink, [1.0] is flat) *)
  bytes_decay : float;    (** per-level multiplier on [bytes], [> 0] *)
}

val default_spec : spec
(** [depth=2, branching=3, divide=2, combine=2], no cutoff, Strassen-ish
    decays; see [workgen.ml] for the exact constants. *)

val validate : spec -> unit
(** Raises [Invalid_argument] with a descriptive message on any
    out-of-range field.  Called by both generators. *)

val num_tasks : spec -> int
(** Number of tasks (internal + leaf) of the {e balanced} recursion
    tree — the [cutoff = 0] upper bound on tree size.  Node counts
    follow: internal tasks contribute [divide + combine] nodes, leaves
    one each, plus START/STOP. *)

(** {1 Generation} *)

val generate : spec -> seed:int -> Mdg.Graph.t
(** Expand the recursion schema into a normalised MDG of [Synthetic]
    nodes (no calibration needed: Amdahl parameters are carried by the
    kernels themselves).  Deterministic in [(spec, seed)]. *)

val generate_program : spec -> seed:int -> size:int -> Frontend.Ast.program
(** Expand the same schema into a recursive matrix {e program} (the
    front-end IR): leaves are matrix multiplies, divide/combine phases
    are adds/subtracts, every statement writes a fresh matrix (SSA),
    so any execution order respecting flow dependences computes the
    same values — the property [test/test_workgen_prop.ml] checks
    against {!Frontend.Interp}.  Statement distributions ([@row]/[@col])
    are drawn with [twod_fraction].  Deterministic in [(spec, seed)];
    [size] is the (uniform) matrix dimension. *)

(** {1 Spec grammar}

    Specs have a compact textual form used by the bench CLI
    ([random:<spec>:<seed>]), the regression corpus and the replay env
    var: comma-separated [key=value] overrides on {!default_spec},
    e.g. ["depth=3,branch=2,cutoff=0.2"].  Keys: [depth], [branch],
    [div], [comb], [cutoff], [wiring], [twod], [tau], [alpha],
    [bytes], [taudecay], [bytesdecay].  Distributions render as a bare
    float (constant), [u<lo>~<hi>] (uniform) or [l<lo>~<hi>]
    (log-uniform), e.g. ["tau=l0.01~1"]. *)

val spec_to_string : spec -> string
(** Canonical full rendering (every key, [%g] floats);
    [spec_of_string (spec_to_string s)] is [Ok s] for any valid spec
    whose floats have at most six significant digits. *)

val spec_of_string : string -> (spec, string) result
(** Parse overrides over {!default_spec}; validates the result. *)

val spec_of_string_exn : string -> spec
(** Raises [Invalid_argument] on a parse or validation error. *)

(** {1 Shrinking} *)

val shrink_spec : spec -> spec list
(** One-step-smaller candidate specs, for property-test shrinking:
    fewer levels, smaller fan-out, fewer divide/combine nodes, then
    zeroed irregularity knobs and constant cost distributions.  Every
    candidate is valid and strictly smaller under a well-founded
    measure, so repeated shrinking terminates. *)

type options = {
  addr : string;
  port : int;
  workers : int;
  backlog : int;
  config : Core.Pipeline.config;
  default_params : Costmodel.Params.t Lazy.t;
}

let default_options =
  {
    addr = "127.0.0.1";
    port = 0;
    workers = 4;
    backlog = 64;
    config = Core.Pipeline.default_config;
    default_params = lazy (Costmodel.Params.cm5 ());
  }

type t = {
  options : options;
  listen_fd : Unix.file_descr;
  bound_port : int;
  cache : Core.Plan_cache.t;
  obs : Obs.t;
  stopping : bool Atomic.t;
  served : int Atomic.t;
  accepted : int Atomic.t;
  queue : Unix.file_descr Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable domains : unit Domain.t list;
}

(* How often blocked reads/accepts re-check the stop flag. *)
let poll_interval = 0.05

(* ------------------------------------------------------------------ *)
(* Buffered line reading over a raw fd with a receive timeout          *)
(* ------------------------------------------------------------------ *)

type read_result = Line of string | Eof | Timeout

type reader = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  pending : Buffer.t;  (* bytes read but not yet terminated by '\n' *)
  mutable lines : string list;  (* complete lines, oldest first *)
}

let make_reader fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO poll_interval;
  { fd; chunk = Bytes.create 65536; pending = Buffer.create 256; lines = [] }

let rec read_line r =
  match r.lines with
  | line :: rest ->
      r.lines <- rest;
      Line line
  | [] -> (
      match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
      | 0 ->
          (* A partial trailing line is still a request: it will fail
             JSON parsing and be answered before the close. *)
          if Buffer.length r.pending > 0 then begin
            let line = Buffer.contents r.pending in
            Buffer.clear r.pending;
            Line line
          end
          else Eof
      | n ->
          let rec split start =
            match Bytes.index_from_opt r.chunk start '\n' with
            | Some nl when nl < n ->
                Buffer.add_subbytes r.pending r.chunk start (nl - start);
                let line = Buffer.contents r.pending in
                Buffer.clear r.pending;
                r.lines <- r.lines @ [ line ];
                split (nl + 1)
            | _ -> Buffer.add_subbytes r.pending r.chunk start (n - start)
          in
          split 0;
          read_line r
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Timeout
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line r
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> Eof)

let write_line fd line =
  let data = line ^ "\n" in
  let len = String.length data in
  let rec go off =
    if off < len then
      match Unix.write_substring fd data off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  match go 0 with
  | () -> true
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> false

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let plan_config t (req : Protocol.plan_request) =
  let config = { t.options.config with obs = t.obs; cache = Some t.cache } in
  match req.pb with
  | None -> config
  | Some pb ->
      {
        config with
        psa_options = { config.psa_options with pb = Core.Psa.Fixed pb };
      }

let handle t ~id request =
  match request with
  | Protocol.Ping -> Protocol.pong_reply ~id
  | Protocol.Stats -> Protocol.stats_reply ~id (Core.Plan_cache.stats t.cache)
  | Protocol.Plan req -> (
      let params =
        match req.params with
        | Some p -> p
        | None -> Lazy.force t.options.default_params
      in
      let config = plan_config t req in
      match
        Core.Pipeline.plan ~config
          (Core.Pipeline.request params req.graph ~procs:req.procs)
      with
      | Ok plan -> Protocol.plan_reply ~id plan
      | Error e -> Protocol.pipeline_error_reply ~id e)

let answer t line =
  let reply =
    match Protocol.decode_request line with
    | Error (id, msg) -> Protocol.error_reply ~id ~kind:"protocol_error" msg
    | Ok (id, request) -> (
        match handle t ~id request with
        | reply -> reply
        | exception exn ->
            (* A bug in a pipeline stage must not take the worker (and
               with it every queued connection) down. *)
            Protocol.error_reply ~id ~kind:"internal_error"
              (Printexc.to_string exn))
  in
  Atomic.incr t.served;
  Json.to_string reply

let serve_connection t fd =
  let obs = t.obs in
  let reader = make_reader fd in
  (* Once stopping, allow one extra poll interval of idleness before
     closing: a request written just before the stop call may still be
     in flight when the first timeout fires. *)
  let grace = ref false in
  let rec loop () =
    match read_line reader with
    | Eof -> ()
    | Timeout ->
        if Atomic.get t.stopping then begin
          if not !grace then begin
            grace := true;
            loop ()
          end
        end
        else loop ()
    | Line line ->
        let reply =
          if Obs.enabled obs then
            Obs.span obs ~cat:"server" "server.request" (fun () -> answer t line)
          else answer t line
        in
        if write_line fd reply then loop ()
  in
  (match
     if Obs.enabled obs then
       Obs.span obs ~cat:"server" "server.connection" (fun () -> loop ())
     else loop ()
   with
  | () -> ()
  | exception _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Domains                                                             *)
(* ------------------------------------------------------------------ *)

let worker_loop t =
  let rec next () =
    let job =
      Mutex.protect t.lock (fun () ->
          let rec wait () =
            match Queue.take_opt t.queue with
            | Some fd -> Some fd
            | None ->
                if Atomic.get t.stopping then None
                else begin
                  Condition.wait t.nonempty t.lock;
                  wait ()
                end
          in
          wait ())
    in
    match job with
    | Some fd ->
        serve_connection t fd;
        next ()
    | None -> ()
  in
  next ()

let acceptor_loop t =
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ t.listen_fd ] [] [] poll_interval with
      | [ _ ], _, _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ ->
              Atomic.incr t.accepted;
              if Obs.enabled t.obs then
                Obs.counter t.obs "server.requests"
                  [ ("connections", float_of_int (Atomic.get t.accepted)) ];
              Mutex.protect t.lock (fun () ->
                  Queue.add fd t.queue;
                  Condition.signal t.nonempty)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (* Wake every idle worker so the pool can drain and exit. *)
  Mutex.protect t.lock (fun () -> Condition.broadcast t.nonempty)

let start ?(options = default_options) () =
  if options.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  let t =
    try
      Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
      Unix.bind listen_fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string options.addr, options.port));
      Unix.listen listen_fd options.backlog;
      let bound_port =
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, p) -> p
        | Unix.ADDR_UNIX _ -> assert false
      in
      let cache =
        match options.config.cache with
        | Some c -> c
        | None -> Core.Plan_cache.create ()
      in
      {
        options;
        listen_fd;
        bound_port;
        cache;
        obs = Obs.Sink.locking options.config.obs;
        stopping = Atomic.make false;
        served = Atomic.make 0;
        accepted = Atomic.make 0;
        queue = Queue.create ();
        lock = Mutex.create ();
        nonempty = Condition.create ();
        domains = [];
      }
    with exn ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      raise exn
  in
  let acceptor = Domain.spawn (fun () -> acceptor_loop t) in
  let workers =
    List.init options.workers (fun _ -> Domain.spawn (fun () -> worker_loop t))
  in
  t.domains <- acceptor :: workers;
  t

let port t = t.bound_port

let cache t = t.cache

let stats t = Core.Plan_cache.stats t.cache

let requests_served t = Atomic.get t.served

let connections_accepted t = Atomic.get t.accepted

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    Mutex.protect t.lock (fun () -> Condition.broadcast t.nonempty);
    List.iter Domain.join t.domains;
    t.domains <- [];
    Obs.flush t.obs
  end

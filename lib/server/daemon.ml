type options = {
  addr : string;
  port : int;
  workers : int;
  backlog : int;
  max_pending : int;
  config : Core.Pipeline.config;
  default_params : Costmodel.Params.t Lazy.t;
}

let default_options =
  {
    addr = "127.0.0.1";
    port = 0;
    workers = 4;
    backlog = 64;
    max_pending = 64;
    config = Core.Pipeline.default_config;
    default_params = lazy (Costmodel.Params.cm5 ());
  }

(* Per-op latency histogram bucket upper bounds (ms); the final bucket
   is the overflow.  Log-spaced: the interesting split is protocol-only
   ops (sub-ms), cache hits (~1 ms), warm solves (~10 ms) and cold
   solves (~100 ms+). *)
let latency_bounds_ms = [| 1.0; 3.0; 10.0; 30.0; 100.0; 300.0; 1000.0 |]

let latency_ops = [| "plan"; "stats"; "ping"; "error" |]

type t = {
  options : options;
  listen_fd : Unix.file_descr;
  bound_port : int;
  cache : Core.Plan_cache.t;
  obs : Obs.t;
  stopping : bool Atomic.t;
  served : int Atomic.t;
  accepted : int Atomic.t;
  shed : int Atomic.t;
  queue : Unix.file_descr Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  (* Workers currently holding a connection; guarded by [lock].  The
     admission invariant is [busy + Queue.length queue <= workers +
     max_pending]: a connection is admitted only if a worker slot or a
     pending slot is free for it, otherwise it is shed. *)
  mutable busy : int;
  (* latency.(op).(bucket) counts answered requests; guarded by [lock]
     (one increment per request — negligible next to the request). *)
  latency : int array array;
  mutable domains : unit Domain.t list;
}

(* How often blocked reads/accepts re-check the stop flag. *)
let poll_interval = 0.05

(* ------------------------------------------------------------------ *)
(* Buffered line reading over a raw fd with a receive timeout          *)
(* ------------------------------------------------------------------ *)

type read_result = Line of string | Eof | Timeout

type reader = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  pending : Buffer.t;  (* bytes read but not yet terminated by '\n' *)
  mutable lines : string list;  (* complete lines, oldest first *)
}

let make_reader fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO poll_interval;
  { fd; chunk = Bytes.create 65536; pending = Buffer.create 256; lines = [] }

let rec read_line r =
  match r.lines with
  | line :: rest ->
      r.lines <- rest;
      Line line
  | [] -> (
      match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
      | 0 ->
          (* A partial trailing line is still a request: it will fail
             JSON parsing and be answered before the close. *)
          if Buffer.length r.pending > 0 then begin
            let line = Buffer.contents r.pending in
            Buffer.clear r.pending;
            Line line
          end
          else Eof
      | n ->
          let rec split start =
            match Bytes.index_from_opt r.chunk start '\n' with
            | Some nl when nl < n ->
                Buffer.add_subbytes r.pending r.chunk start (nl - start);
                let line = Buffer.contents r.pending in
                Buffer.clear r.pending;
                r.lines <- r.lines @ [ line ];
                split (nl + 1)
            | _ -> Buffer.add_subbytes r.pending r.chunk start (n - start)
          in
          split 0;
          read_line r
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Timeout
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line r
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> Eof)

let write_line fd line =
  let data = line ^ "\n" in
  let len = String.length data in
  let rec go off =
    if off < len then
      match Unix.write_substring fd data off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  match go 0 with
  | () -> true
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> false

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let plan_config t (req : Protocol.plan_request) =
  let config = { t.options.config with obs = t.obs; cache = Some t.cache } in
  match req.pb with
  | None -> config
  | Some pb ->
      {
        config with
        psa_options = { config.psa_options with pb = Core.Psa.Fixed pb };
      }

let server_stats t =
  let queue_depth, latency =
    Mutex.protect t.lock (fun () ->
        (Queue.length t.queue, Array.map Array.copy t.latency))
  in
  {
    Protocol.queue_depth;
    max_pending = t.options.max_pending;
    shed = Atomic.get t.shed;
    accepted = Atomic.get t.accepted;
    served = Atomic.get t.served;
    bounds_ms = Array.copy latency_bounds_ms;
    latency =
      List.init (Array.length latency_ops) (fun i ->
          { Protocol.op = latency_ops.(i); buckets = latency.(i) });
  }

let handle t ~id request =
  match request with
  | Protocol.Ping -> Protocol.pong_reply ~id
  | Protocol.Stats ->
      Protocol.stats_reply ~id ~server:(server_stats t)
        (Core.Plan_cache.stats t.cache)
  | Protocol.Plan req -> (
      let params =
        match req.params with
        | Some p -> p
        | None -> Lazy.force t.options.default_params
      in
      let config = plan_config t req in
      match
        Core.Pipeline.plan ~config
          (Core.Pipeline.request params req.graph ~procs:req.procs)
      with
      | Ok plan -> Protocol.plan_reply ~id plan
      | Error e -> Protocol.pipeline_error_reply ~id e)

let op_index = function
  | Protocol.Plan _ -> 0
  | Protocol.Stats -> 1
  | Protocol.Ping -> 2

let error_op = 3

let record_latency t ~op dt_ms =
  let n = Array.length latency_bounds_ms in
  let b = ref 0 in
  while !b < n && dt_ms > latency_bounds_ms.(!b) do
    incr b
  done;
  Mutex.protect t.lock (fun () ->
      t.latency.(op).(!b) <- t.latency.(op).(!b) + 1)

let answer t line =
  let t0 = Unix.gettimeofday () in
  let op, reply =
    match Protocol.decode_request line with
    | Error (id, msg) ->
        (error_op, Protocol.error_reply ~id ~kind:"protocol_error" msg)
    | Ok (id, request) -> (
        match handle t ~id request with
        | reply -> (op_index request, reply)
        | exception exn ->
            (* A bug in a pipeline stage must not take the worker (and
               with it every queued connection) down. *)
            ( error_op,
              Protocol.error_reply ~id ~kind:"internal_error"
                (Printexc.to_string exn) ))
  in
  record_latency t ~op (1e3 *. (Unix.gettimeofday () -. t0));
  Atomic.incr t.served;
  Json.to_string reply

let serve_connection t fd =
  let obs = t.obs in
  let reader = make_reader fd in
  (* Once stopping, allow one extra poll interval of idleness before
     closing: a request written just before the stop call may still be
     in flight when the first timeout fires. *)
  let grace = ref false in
  let rec loop () =
    match read_line reader with
    | Eof -> ()
    | Timeout ->
        if Atomic.get t.stopping then begin
          if not !grace then begin
            grace := true;
            loop ()
          end
        end
        else loop ()
    | Line line ->
        let reply =
          if Obs.enabled obs then
            Obs.span obs ~cat:"server" "server.request" (fun () -> answer t line)
          else answer t line
        in
        if write_line fd reply then loop ()
  in
  (match
     if Obs.enabled obs then
       Obs.span obs ~cat:"server" "server.connection" (fun () -> loop ())
     else loop ()
   with
  | () -> ()
  | exception _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Domains                                                             *)
(* ------------------------------------------------------------------ *)

let worker_loop t =
  let rec next () =
    let job =
      Mutex.protect t.lock (fun () ->
          let rec wait () =
            match Queue.take_opt t.queue with
            | Some fd ->
                t.busy <- t.busy + 1;
                Some fd
            | None ->
                if Atomic.get t.stopping then None
                else begin
                  Condition.wait t.nonempty t.lock;
                  wait ()
                end
          in
          wait ())
    in
    match job with
    | Some fd ->
        Fun.protect
          ~finally:(fun () ->
            Mutex.protect t.lock (fun () -> t.busy <- t.busy - 1))
          (fun () -> serve_connection t fd);
        next ()
    | None -> ()
  in
  next ()

(* How long a shed client should wait before retrying: roughly the
   time for the connections ahead of it to drain, assuming each holds
   its worker for about one warm request burst. *)
let retry_after_ms t ~in_system =
  max 25 (50 * in_system / max 1 t.options.workers)

(* Over capacity: answer with the typed [overloaded] error (carrying
   the retry hint) and close.  Best-effort — the reply is one short
   line, which fits a fresh socket's send buffer; a short send timeout
   keeps a dead peer from stalling the acceptor. *)
let shed_connection t fd ~in_system =
  Atomic.incr t.shed;
  if Obs.enabled t.obs then
    Obs.counter t.obs "server.queue"
      [
        ("shed", float_of_int (Atomic.get t.shed));
        ("depth", float_of_int (in_system - t.options.workers));
      ];
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO poll_interval
   with Unix.Unix_error _ -> ());
  (match
     write_line fd
       (Json.to_string
          (Protocol.overloaded_reply ~id:Json.Null
             ~retry_after_ms:(retry_after_ms t ~in_system)))
   with
  | (_ : bool) -> ()
  | exception Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let acceptor_loop t =
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ t.listen_fd ] [] [] poll_interval with
      | [ _ ], _, _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ ->
              (* Admission control: the connections in the system
                 (being served + waiting) may not exceed the worker
                 pool plus [max_pending] waiting slots.  Beyond that,
                 queueing would only grow latency without bound — shed
                 instead. *)
              let admitted, in_system =
                Mutex.protect t.lock (fun () ->
                    let in_system = t.busy + Queue.length t.queue in
                    if
                      in_system
                      >= t.options.workers + t.options.max_pending
                    then (false, in_system)
                    else begin
                      Queue.add fd t.queue;
                      Condition.signal t.nonempty;
                      (true, in_system + 1)
                    end)
              in
              if admitted then begin
                Atomic.incr t.accepted;
                if Obs.enabled t.obs then
                  Obs.counter t.obs "server.requests"
                    [
                      ("connections", float_of_int (Atomic.get t.accepted));
                      ( "queue_depth",
                        float_of_int (max 0 (in_system - t.options.workers))
                      );
                    ]
              end
              else shed_connection t fd ~in_system
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (* Wake every idle worker so the pool can drain and exit. *)
  Mutex.protect t.lock (fun () -> Condition.broadcast t.nonempty)

let start ?(options = default_options) () =
  if options.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if options.max_pending < 0 then
    invalid_arg "Server.start: max_pending must be >= 0";
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  let t =
    try
      Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
      Unix.bind listen_fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string options.addr, options.port));
      Unix.listen listen_fd options.backlog;
      let bound_port =
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, p) -> p
        | Unix.ADDR_UNIX _ -> assert false
      in
      let cache =
        match options.config.cache with
        | Some c -> c
        | None -> Core.Plan_cache.create ()
      in
      {
        options;
        listen_fd;
        bound_port;
        cache;
        obs = Obs.Sink.locking options.config.obs;
        stopping = Atomic.make false;
        served = Atomic.make 0;
        accepted = Atomic.make 0;
        shed = Atomic.make 0;
        queue = Queue.create ();
        lock = Mutex.create ();
        nonempty = Condition.create ();
        busy = 0;
        latency =
          Array.init (Array.length latency_ops) (fun _ ->
              Array.make (Array.length latency_bounds_ms + 1) 0);
        domains = [];
      }
    with exn ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      raise exn
  in
  let acceptor = Domain.spawn (fun () -> acceptor_loop t) in
  let workers =
    List.init options.workers (fun _ -> Domain.spawn (fun () -> worker_loop t))
  in
  t.domains <- acceptor :: workers;
  t

let port t = t.bound_port

let cache t = t.cache

let stats t = Core.Plan_cache.stats t.cache

let requests_served t = Atomic.get t.served

let connections_accepted t = Atomic.get t.accepted

let connections_shed t = Atomic.get t.shed

let queue_depth t = Mutex.protect t.lock (fun () -> Queue.length t.queue)

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    Mutex.protect t.lock (fun () -> Condition.broadcast t.nonempty);
    List.iter Domain.join t.domains;
    t.domains <- [];
    Obs.flush t.obs
  end

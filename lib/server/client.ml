type t = { fd : Unix.file_descr; ic : in_channel; mutable next_id : int }

let connect ?(addr = "127.0.0.1") ~port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port))
   with exn ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise exn);
  { fd; ic = Unix.in_channel_of_descr fd; next_id = 1 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_line t line =
  let data = line ^ "\n" in
  let len = String.length data in
  let rec go off =
    if off < len then
      match Unix.write_substring t.fd data off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let recv_line t =
  match input_line t.ic with
  | line -> Ok line
  | exception End_of_file -> Error "connection closed by server"
  | exception Sys_error msg -> Error msg

let ( let* ) = Result.bind

let rpc t json =
  send_line t (Json.to_string json);
  let* line = recv_line t in
  Protocol.decode_reply line

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  Json.int id

let plan ?params ?pb t graph ~procs =
  let* _id, reply =
    rpc t
      (Protocol.encode_plan_request ~id:(fresh_id t) ?params ?pb graph ~procs)
  in
  match reply with
  | Protocol.Plan_reply s -> Ok s
  | Protocol.Error_reply { kind; message; _ } ->
      Error (Printf.sprintf "%s: %s" kind message)
  | _ -> Error "unexpected reply to plan request"

let stats t =
  let* _id, reply = rpc t (Protocol.encode_stats_request ~id:(fresh_id t) ()) in
  match reply with
  | Protocol.Stats_reply { cache; server } -> Ok (cache, server)
  | Protocol.Error_reply { kind; message; _ } ->
      Error (Printf.sprintf "%s: %s" kind message)
  | _ -> Error "unexpected reply to stats request"

let ping t =
  let* _id, reply = rpc t (Protocol.encode_ping_request ~id:(fresh_id t) ()) in
  match reply with
  | Protocol.Pong -> Ok ()
  | Protocol.Error_reply { kind; message; _ } ->
      Error (Printf.sprintf "%s: %s" kind message)
  | _ -> Error "unexpected reply to ping"

(** The plan server: PARADIGM's planner as a long-running concurrent
    service.

    A server owns a TCP listening socket and a fixed pool of worker
    domains (OCaml 5 [Domain]s).  An acceptor domain hands accepted
    connections to the pool through a {e bounded} queue: at most
    [workers + max_pending] connections are in the system at once, and
    a connection beyond that is shed with a fast typed [overloaded]
    reply (plus retry hint) instead of queueing forever — overload
    degrades into explicit, retryable errors rather than unbounded
    latency.  Each worker speaks the newline-delimited JSON protocol
    ({!Protocol}) for the lifetime of its connection, answering every
    request line with exactly one reply line.  Malformed input
    produces an [Error_reply], never a crash or a dropped
    connection.

    All workers share one {!Core.Plan_cache} through the
    {!Core.Pipeline.config} they plan with, so the compiled-tape and
    warm-start caches warm up across clients: the steady state for a
    repetitive request mix is a tape hit plus a warm-start accept
    (solver answers in two gradient probes — see
    {!Convex.Solver.options.accept_warm_start}).

    {!stop} is graceful: the listener closes immediately, workers
    finish the request they are executing and any further requests
    already readable on their connection, idle connections close
    within the poll interval, and [stop] returns only after every
    domain has joined.

    All workers also coalesce concurrent identical cache misses
    through the shared cache's singleflight table
    ({!Core.Plan_cache.coalesce}): N clients hammering one uncached
    key cost one solve, not N.

    Telemetry: the configured sink is wrapped in {!Obs.Sink.locking}
    and receives ["server.connection"] spans, ["server.request"]
    spans (per request line, covering decode → plan → reply), a
    ["server.requests"] counter (connections admitted + queue depth)
    and a ["server.queue"] counter (shed total + depth at shed time),
    in addition to the pipeline's own spans and cache counters
    (["pipeline.cache"] now carries a [coalesced] flag).  The [stats]
    op and {!server_stats} expose queue depth, shed counts and per-op
    latency histograms. *)

type options = {
  addr : string;  (** listen address, default ["127.0.0.1"] *)
  port : int;  (** TCP port; [0] picks an ephemeral port (see {!port}) *)
  workers : int;  (** worker-domain pool size *)
  backlog : int;  (** listen backlog *)
  max_pending : int;
      (** bound on admitted connections {e waiting} for a worker.  A
          connection arriving when [workers + max_pending] connections
          are already in the system (being served or waiting) is {b
          shed}: it is answered one {!Protocol.overloaded_reply} line
          (typed [overloaded] error with a [retry_after_ms] hint) and
          closed instead of queueing without bound.  [0] disables
          waiting entirely — admit only when a worker is free. *)
  config : Core.Pipeline.config;
      (** base planning configuration; if it carries no cache the
          server installs a fresh shared {!Core.Plan_cache} *)
  default_params : Costmodel.Params.t Lazy.t;
      (** cost model used when a request sends no ["params"] *)
}

val default_options : options
(** Loopback, ephemeral port, 4 workers, 64 pending slots, default
    pipeline config (a fresh cache is installed), CM-5 paper
    constants. *)

type t

val start : ?options:options -> unit -> t
(** Bind, listen and spawn the acceptor and worker domains.  Raises
    [Unix.Unix_error] if the address cannot be bound. *)

val port : t -> int
(** The bound TCP port — the actual one when [options.port = 0]. *)

val cache : t -> Core.Plan_cache.t
(** The shared plan cache (the configured one, or the installed
    fresh one). *)

val stats : t -> Core.Plan_cache.stats

val server_stats : t -> Protocol.server_stats
(** Serving-side counters: current queue depth, shed/accepted/served
    totals and the per-op latency histograms (the same snapshot the
    [stats] op returns in its ["server"] section). *)

val requests_served : t -> int
(** Total request lines answered (including error replies). *)

val connections_accepted : t -> int
(** Connections admitted to the worker queue (shed ones excluded). *)

val connections_shed : t -> int
(** Connections refused with the [overloaded] reply. *)

val queue_depth : t -> int
(** Admitted connections currently waiting for a worker. *)

val stop : t -> unit
(** Graceful shutdown as described above.  Idempotent. *)

(** The plan server: PARADIGM's planner as a long-running concurrent
    service.

    A server owns a TCP listening socket and a fixed pool of worker
    domains (OCaml 5 [Domain]s).  An acceptor domain hands accepted
    connections to the pool through a bounded-latency queue; each
    worker speaks the newline-delimited JSON protocol ({!Protocol})
    for the lifetime of its connection, answering every request line
    with exactly one reply line.  Malformed input produces an
    [Error_reply], never a crash or a dropped connection.

    All workers share one {!Core.Plan_cache} through the
    {!Core.Pipeline.config} they plan with, so the compiled-tape and
    warm-start caches warm up across clients: the steady state for a
    repetitive request mix is a tape hit plus a warm-start accept
    (solver answers in two gradient probes — see
    {!Convex.Solver.options.accept_warm_start}).

    {!stop} is graceful: the listener closes immediately, workers
    finish the request they are executing and any further requests
    already readable on their connection, idle connections close
    within the poll interval, and [stop] returns only after every
    domain has joined.

    Telemetry: the configured sink is wrapped in {!Obs.Sink.locking}
    and receives ["server.connection"] spans, ["server.request"]
    spans (per request line, covering decode → plan → reply) and a
    ["server.requests"] counter, in addition to the pipeline's own
    spans and cache counters. *)

type options = {
  addr : string;  (** listen address, default ["127.0.0.1"] *)
  port : int;  (** TCP port; [0] picks an ephemeral port (see {!port}) *)
  workers : int;  (** worker-domain pool size *)
  backlog : int;  (** listen backlog *)
  config : Core.Pipeline.config;
      (** base planning configuration; if it carries no cache the
          server installs a fresh shared {!Core.Plan_cache} *)
  default_params : Costmodel.Params.t Lazy.t;
      (** cost model used when a request sends no ["params"] *)
}

val default_options : options
(** Loopback, ephemeral port, 4 workers, default pipeline config (a
    fresh cache is installed), CM-5 paper constants. *)

type t

val start : ?options:options -> unit -> t
(** Bind, listen and spawn the acceptor and worker domains.  Raises
    [Unix.Unix_error] if the address cannot be bound. *)

val port : t -> int
(** The bound TCP port — the actual one when [options.port = 0]. *)

val cache : t -> Core.Plan_cache.t
(** The shared plan cache (the configured one, or the installed
    fresh one). *)

val stats : t -> Core.Plan_cache.stats

val requests_served : t -> int
(** Total request lines answered (including error replies). *)

val connections_accepted : t -> int

val stop : t -> unit
(** Graceful shutdown as described above.  Idempotent. *)

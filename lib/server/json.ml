type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf x =
  if Float.is_integer x && Float.abs x <= 9.007199254740992e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else if Float.is_finite x then
    Buffer.add_string buf (Printf.sprintf "%.17g" x)
  else
    (* JSON has no infinities/NaN; null is the conventional stand-in. *)
    Buffer.add_string buf "null"

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> add_num buf x
  | Str s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          add buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun msg -> raise (Bad (!pos, msg))) fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %c, got %c" c c'
    | None -> fail "expected %c, got end of input" c
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail "bad literal"
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = d0 then fail "malformed number"
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> x
    | None -> fail "malformed number"
  in
  let string_ () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "dangling escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "bad \\u escape";
                   let hex = String.sub s !pos 4 in
                   (match int_of_string_opt ("0x" ^ hex) with
                   | None -> fail "bad \\u escape"
                   | Some code ->
                       pos := !pos + 4;
                       (* Encode the code point as UTF-8; surrogate
                          pairs outside the BMP are not needed by this
                          protocol and decode as two replacement-range
                          sequences. *)
                       if code < 0x80 then Buffer.add_char buf (Char.chr code)
                       else if code < 0x800 then begin
                         Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                         Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                       end
                       else begin
                         Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                         Buffer.add_char buf
                           (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                         Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                       end)
               | c -> fail "bad escape \\%c" c);
            go ()
        | c when Char.code c < 0x20 -> fail "raw control character in string"
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (string_ ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let entry () =
            skip_ws ();
            let k = string_ () in
            skip_ws ();
            expect ':';
            let v = value () in
            (k, v)
          in
          let fields = ref [ entry () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := entry () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> Num (number ())
    | Some c -> fail "unexpected character %C" c
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters after value";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let int i = Num (float_of_int i)

let float_array a = List (Array.to_list (Array.map (fun x -> Num x) a))

let int_array a = List (Array.to_list (Array.map (fun i -> int i) a))

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Num _ -> "number"
  | Str _ -> "string"
  | List _ -> "array"
  | Obj _ -> "object"

let field name v =
  match v with
  | Obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing field %S" name))
  | other -> Error (Printf.sprintf "expected an object, got %s" (type_name other))

let to_num = function
  | Num x -> Ok x
  | other -> Error (Printf.sprintf "expected a number, got %s" (type_name other))

let to_int = function
  | Num x when Float.is_integer x && Float.abs x <= 1e15 ->
      Ok (int_of_float x)
  | Num _ -> Error "expected an integer"
  | other -> Error (Printf.sprintf "expected an integer, got %s" (type_name other))

let to_str = function
  | Str s -> Ok s
  | other -> Error (Printf.sprintf "expected a string, got %s" (type_name other))

let to_list = function
  | List xs -> Ok xs
  | other -> Error (Printf.sprintf "expected an array, got %s" (type_name other))

let ( let* ) = Result.bind

let in_field name r =
  Result.map_error (fun e -> Printf.sprintf "field %S: %s" name e) r

let int_field name v =
  let* f = field name v in
  in_field name (to_int f)

let num_field name v =
  let* f = field name v in
  in_field name (to_num f)

let str_field name v =
  let* f = field name v in
  in_field name (to_str f)

(** Wire protocol of the plan server: newline-delimited JSON.

    Each request is one JSON object on one line; the server answers
    with exactly one JSON object line per request, in order.  Requests
    carry an optional ["id"] (any JSON value) that is echoed verbatim
    in the reply, so pipelining clients can match answers to
    questions.

    {2 Requests}

    {v
      {"op":"plan", "id":1, "mdg":"mdg\nnode 0 mul:64 \"m\"\n...",
       "procs":64,
       "params":{"transfer":{"t_ss":...,"t_ps":...,"t_sr":...,
                             "t_pr":...,"t_n":...},
                 "processing":[{"kernel":"mul:64",
                                "alpha":0.013,"tau":0.58}, ...]},
       "options":{"pb":8}}
      {"op":"stats","id":2}
      {"op":"ping","id":3}
    v}

    ["op"] defaults to ["plan"].  ["mdg"] is the {!Mdg.Serialize} line
    format embedded as a JSON string; ["params"] is optional (the
    server's calibrated default applies) as is ["options"].

    {2 Replies}

    A plan reply ([status = "ok"]) carries the plan summary — Φ, the
    schedule makespan, per-node allocations, solver convergence and
    the cache outcome for this request:

    {v
      {"id":1,"status":"ok","phi":0.81,"t_psa":0.93,"makespan":0.93,
       "pb":8,"procs":64,"nodes":25,
       "alloc":[...],"rounded_alloc":[...],
       "solver":{"iterations":312,"stages":5,"converged":true},
       "cache":{"tape":"hit","warm":"hit","solve_skipped":true}}
    v}

    Failures — malformed JSON, an invalid MDG, or any typed
    {!Core.Pipeline.error} — answer [status = "error"] with a
    machine-readable ["kind"] (the {!Core.Pipeline.error_kind} tags
    plus ["protocol_error"] and ["overloaded"]) and a human-readable
    ["message"].  A malformed line never terminates the connection;
    an ["overloaded"] shed reply (carrying a ["retry_after_ms"] hint)
    is the one reply after which the server closes the connection —
    the request was never admitted. *)

(** {2 Requests} *)

type plan_request = {
  graph : Mdg.Graph.t;
  procs : int;
  params : Costmodel.Params.t option;  (** [None]: server default *)
  pb : int option;  (** processor-bound override (power of two) *)
}

type request =
  | Plan of plan_request
  | Stats  (** cache statistics snapshot *)
  | Ping

val decode_request : string -> (Json.t * request, Json.t * string) result
(** Parse one request line.  Both constructors carry the request id to
    echo ([Json.Null] when absent or unrecoverable); [Error] carries
    the protocol-error message. *)

val encode_plan_request :
  ?id:Json.t ->
  ?params:Costmodel.Params.t ->
  ?pb:int ->
  Mdg.Graph.t ->
  procs:int ->
  Json.t
(** Client-side encoder for a plan request. *)

val encode_stats_request : ?id:Json.t -> unit -> Json.t

val encode_ping_request : ?id:Json.t -> unit -> Json.t

(** {2 Cost parameters} *)

val params_to_json : Costmodel.Params.t -> Json.t

val params_of_json : Json.t -> (Costmodel.Params.t, string) result

(** {2 Replies} *)

type plan_summary = {
  phi : float;
  t_psa : float;
  makespan : float;
  pb : int;
  procs : int;
  nodes : int;
  alloc : float array;
  rounded_alloc : int array;
  iterations : int;
  stages : int;
  converged : bool;
  tape_cache : string;  (** ["hit"] / ["miss"] / ["off"] *)
  warm_cache : string;  (** plus ["shape_hit"] *)
  solve_skipped : bool;
  coalesced : bool;
      (** served by a concurrent identical request's solve
          ({!Core.Plan_cache.coalesce}) *)
}

type op_latency = { op : string; buckets : int array }
(** Latency histogram for one op: [buckets] has one count per bound in
    {!server_stats.bounds_ms} plus a final overflow bucket. *)

(** Daemon-side serving statistics, carried in the [stats] reply's
    ["server"] section (absent when the reply was produced by
    something other than a live daemon). *)
type server_stats = {
  queue_depth : int;  (** connections admitted but not yet taken by a worker *)
  max_pending : int;  (** the daemon's accept-queue bound *)
  shed : int;  (** connections answered [overloaded] and closed *)
  accepted : int;  (** connections admitted to the queue *)
  served : int;  (** request lines answered *)
  bounds_ms : float array;  (** histogram bucket upper bounds, ms *)
  latency : op_latency list;  (** per-op latency histograms *)
}

type reply =
  | Plan_reply of plan_summary
  | Stats_reply of { cache : Core.Plan_cache.stats; server : server_stats option }
  | Pong
  | Error_reply of { kind : string; message : string; retry_after_ms : int option }
      (** [retry_after_ms] is only set on [overloaded] shed replies *)

val plan_reply : id:Json.t -> Core.Pipeline.plan -> Json.t

val stats_reply : id:Json.t -> ?server:server_stats -> Core.Plan_cache.stats -> Json.t

val pong_reply : id:Json.t -> Json.t

val error_reply : id:Json.t -> kind:string -> string -> Json.t

val overloaded_kind : string
(** The error-reply kind of a shed request: ["overloaded"]. *)

val overloaded_reply : id:Json.t -> retry_after_ms:int -> Json.t
(** The load-shedding reply: [status = "error"], [kind =
    {!overloaded_kind}], and a ["retry_after_ms"] hint after which the
    client should retry.  Sent by the daemon when the accept queue is
    over capacity, before closing the connection. *)

val pipeline_error_reply : id:Json.t -> Core.Pipeline.error -> Json.t

val decode_reply : string -> (Json.t * reply, string) result
(** Client-side decoder: the echoed id plus the typed reply. *)

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Cost parameters                                                     *)
(* ------------------------------------------------------------------ *)

let params_to_json params =
  let tf = Costmodel.Params.transfer params in
  let processing =
    List.map
      (fun kernel ->
        let p = Costmodel.Params.processing params kernel in
        Json.Obj
          [
            ("kernel", Json.Str (Mdg.Serialize.kernel_to_string kernel));
            ("alpha", Json.Num p.alpha);
            ("tau", Json.Num p.tau);
          ])
      (Costmodel.Params.known_kernels params)
  in
  Json.Obj
    [
      ( "transfer",
        Json.Obj
          [
            ("t_ss", Json.Num tf.t_ss);
            ("t_ps", Json.Num tf.t_ps);
            ("t_sr", Json.Num tf.t_sr);
            ("t_pr", Json.Num tf.t_pr);
            ("t_n", Json.Num tf.t_n);
          ] );
      ("processing", Json.List processing);
    ]

let params_of_json j =
  let* tf = Json.field "transfer" j in
  let* t_ss = Json.num_field "t_ss" tf in
  let* t_ps = Json.num_field "t_ps" tf in
  let* t_sr = Json.num_field "t_sr" tf in
  let* t_pr = Json.num_field "t_pr" tf in
  let* t_n = Json.num_field "t_n" tf in
  let params =
    Costmodel.Params.make ~transfer:{ t_ss; t_ps; t_sr; t_pr; t_n }
  in
  let entries =
    match Json.member "processing" j with
    | None | Some Json.Null -> Ok []
    | Some p -> Json.to_list p
  in
  let* entries = entries in
  let rec register = function
    | [] -> Ok params
    | entry :: rest ->
        let* kernel_str = Json.str_field "kernel" entry in
        let* kernel = Mdg.Serialize.kernel_of_string kernel_str in
        let* alpha = Json.num_field "alpha" entry in
        let* tau = Json.num_field "tau" entry in
        (match Costmodel.Params.set_processing params kernel { alpha; tau } with
        | () -> register rest
        | exception Invalid_argument msg -> Error msg)
  in
  register entries

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type plan_request = {
  graph : Mdg.Graph.t;
  procs : int;
  params : Costmodel.Params.t option;
  pb : int option;
}

type request = Plan of plan_request | Stats | Ping

let request_id j = Option.value (Json.member "id" j) ~default:Json.Null

let decode_plan id j =
  let res =
    let* mdg = Json.str_field "mdg" j in
    let* graph =
      match Mdg.Serialize.of_string mdg with
      | g -> Ok g
      | exception Mdg.Serialize.Parse_error { line; message } ->
          Error (Printf.sprintf "mdg line %d: %s" line message)
      | exception Invalid_argument msg ->
          Error (Printf.sprintf "invalid mdg: %s" msg)
    in
    let* procs = Json.int_field "procs" j in
    let* params =
      match Json.member "params" j with
      | None | Some Json.Null -> Ok None
      | Some p -> Result.map Option.some (params_of_json p)
    in
    let* pb =
      match Json.member "options" j with
      | None | Some Json.Null -> Ok None
      | Some opts -> (
          match Json.member "pb" opts with
          | None | Some Json.Null -> Ok None
          | Some pb -> Result.map Option.some (Json.to_int pb))
    in
    Ok (Plan { graph; procs; params; pb })
  in
  match res with
  | Ok req -> Ok (id, req)
  | Error msg -> Error (id, msg)

let decode_request line =
  match Json.of_string line with
  | Error msg -> Error (Json.Null, msg)
  | Ok j -> (
      let id = request_id j in
      match Json.member "op" j with
      | None | Some (Json.Str "plan") -> decode_plan id j
      | Some (Json.Str "stats") -> Ok (id, Stats)
      | Some (Json.Str "ping") -> Ok (id, Ping)
      | Some (Json.Str op) ->
          Error (id, Printf.sprintf "unknown op %S (plan|stats|ping)" op)
      | Some _ -> Error (id, "field \"op\" must be a string"))

let with_id id fields =
  match id with Json.Null -> fields | id -> ("id", id) :: fields

let encode_plan_request ?(id = Json.Null) ?params ?pb graph ~procs =
  Json.Obj
    (with_id id
       ([
          ("op", Json.Str "plan");
          ("mdg", Json.Str (Mdg.Serialize.to_string graph));
          ("procs", Json.int procs);
        ]
       @ (match params with
         | None -> []
         | Some p -> [ ("params", params_to_json p) ])
       @
       match pb with
       | None -> []
       | Some pb -> [ ("options", Json.Obj [ ("pb", Json.int pb) ]) ]))

let encode_stats_request ?(id = Json.Null) () =
  Json.Obj (with_id id [ ("op", Json.Str "stats") ])

let encode_ping_request ?(id = Json.Null) () =
  Json.Obj (with_id id [ ("op", Json.Str "ping") ])

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)
(* ------------------------------------------------------------------ *)

type plan_summary = {
  phi : float;
  t_psa : float;
  makespan : float;
  pb : int;
  procs : int;
  nodes : int;
  alloc : float array;
  rounded_alloc : int array;
  iterations : int;
  stages : int;
  converged : bool;
  tape_cache : string;
  warm_cache : string;
  solve_skipped : bool;
  coalesced : bool;
}

type op_latency = { op : string; buckets : int array }

type server_stats = {
  queue_depth : int;
  max_pending : int;
  shed : int;
  accepted : int;
  served : int;
  bounds_ms : float array;
  latency : op_latency list;
}

type reply =
  | Plan_reply of plan_summary
  | Stats_reply of { cache : Core.Plan_cache.stats; server : server_stats option }
  | Pong
  | Error_reply of { kind : string; message : string; retry_after_ms : int option }

let cache_use_to_string : Core.Pipeline.cache_use -> string = function
  | Hit -> "hit"
  | Shape_hit -> "shape_hit"
  | Miss -> "miss"
  | Off -> "off"

let plan_reply ~id (plan : Core.Pipeline.plan) =
  Json.Obj
    (with_id id
       [
         ("status", Json.Str "ok");
         ("phi", Json.Num plan.allocation.phi);
         ("t_psa", Json.Num plan.psa.t_psa);
         ("makespan", Json.Num (Core.Schedule.makespan plan.psa.schedule));
         ("pb", Json.int plan.psa.pb);
         ("procs", Json.int plan.procs);
         ("nodes", Json.int (Mdg.Graph.num_nodes plan.graph));
         ("alloc", Json.float_array plan.allocation.alloc);
         ("rounded_alloc", Json.int_array plan.psa.rounded_alloc);
         ( "solver",
           Json.Obj
             [
               ("iterations", Json.int plan.allocation.solver.iterations);
               ("stages", Json.int plan.allocation.solver.stages);
               ("converged", Json.Bool plan.allocation.solver.converged);
             ] );
         ( "cache",
           Json.Obj
             [
               ("tape", Json.Str (cache_use_to_string plan.cache.tape));
               ("warm", Json.Str (cache_use_to_string plan.cache.warm));
               ("solve_skipped", Json.Bool plan.cache.solve_skipped);
               ("coalesced", Json.Bool plan.cache.coalesced);
             ] );
       ])

let server_stats_to_json (s : server_stats) =
  Json.Obj
    [
      ("queue_depth", Json.int s.queue_depth);
      ("max_pending", Json.int s.max_pending);
      ("shed", Json.int s.shed);
      ("accepted", Json.int s.accepted);
      ("served", Json.int s.served);
      ( "latency",
        Json.Obj
          [
            ("bounds_ms", Json.float_array s.bounds_ms);
            ( "ops",
              Json.List
                (List.map
                   (fun l ->
                     Json.Obj
                       [
                         ("op", Json.Str l.op);
                         ("buckets", Json.int_array l.buckets);
                       ])
                   s.latency) );
          ] );
    ]

let stats_reply ~id ?server (s : Core.Plan_cache.stats) =
  Json.Obj
    (with_id id
       ([
          ("status", Json.Str "ok");
          ( "stats",
            Json.Obj
              [
                ("tape_hits", Json.int s.tape_hits);
                ("tape_misses", Json.int s.tape_misses);
                ("warm_hits", Json.int s.warm_hits);
                ("warm_shape_hits", Json.int s.warm_shape_hits);
                ("warm_procs_hits", Json.int s.warm_procs_hits);
                ("warm_misses", Json.int s.warm_misses);
                ("coalesce_leaders", Json.int s.coalesce_leaders);
                ("coalesce_hits", Json.int s.coalesce_hits);
                ("tape_entries", Json.int s.tape_entries);
                ("warm_entries", Json.int s.warm_entries);
              ] );
        ]
       @
       match server with
       | None -> []
       | Some srv -> [ ("server", server_stats_to_json srv) ]))

let pong_reply ~id = Json.Obj (with_id id [ ("status", Json.Str "ok") ])

let error_reply ~id ~kind message =
  Json.Obj
    (with_id id
       [
         ("status", Json.Str "error");
         ("kind", Json.Str kind);
         ("message", Json.Str message);
       ])

let overloaded_kind = "overloaded"

let overloaded_reply ~id ~retry_after_ms =
  Json.Obj
    (with_id id
       [
         ("status", Json.Str "error");
         ("kind", Json.Str overloaded_kind);
         ( "message",
           Json.Str
             (Printf.sprintf
                "server overloaded: request shed; retry after ~%d ms"
                retry_after_ms) );
         ("retry_after_ms", Json.int retry_after_ms);
       ])

let pipeline_error_reply ~id err =
  error_reply ~id
    ~kind:(Core.Pipeline.error_kind err)
    (Core.Pipeline.error_to_string err)

let decode_plan_summary j =
  let* phi = Json.num_field "phi" j in
  let* t_psa = Json.num_field "t_psa" j in
  let* makespan = Json.num_field "makespan" j in
  let* pb = Json.int_field "pb" j in
  let* procs = Json.int_field "procs" j in
  let* nodes = Json.int_field "nodes" j in
  let floats l =
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | x :: rest ->
          let* x = Json.to_num x in
          go (x :: acc) rest
    in
    go [] l
  in
  let ints l =
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | x :: rest ->
          let* x = Json.to_int x in
          go (x :: acc) rest
    in
    go [] l
  in
  let* alloc = Result.bind (Json.field "alloc" j) Json.to_list in
  let* alloc = floats alloc in
  let* rounded = Result.bind (Json.field "rounded_alloc" j) Json.to_list in
  let* rounded_alloc = ints rounded in
  let* solver = Json.field "solver" j in
  let* iterations = Json.int_field "iterations" solver in
  let* stages = Json.int_field "stages" solver in
  let* converged =
    match Json.member "converged" solver with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error "field \"converged\": expected a bool"
  in
  let* cache = Json.field "cache" j in
  let* tape_cache = Json.str_field "tape" cache in
  let* warm_cache = Json.str_field "warm" cache in
  let* solve_skipped =
    match Json.member "solve_skipped" cache with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error "field \"solve_skipped\": expected a bool"
  in
  let* coalesced =
    match Json.member "coalesced" cache with
    | Some (Json.Bool b) -> Ok b
    | None -> Ok false
    | Some _ -> Error "field \"coalesced\": expected a bool"
  in
  Ok
    {
      phi;
      t_psa;
      makespan;
      pb;
      procs;
      nodes;
      alloc;
      rounded_alloc;
      iterations;
      stages;
      converged;
      tape_cache;
      warm_cache;
      solve_skipped;
      coalesced;
    }

let decode_stats j =
  let* s = Json.field "stats" j in
  let* tape_hits = Json.int_field "tape_hits" s in
  let* tape_misses = Json.int_field "tape_misses" s in
  let* warm_hits = Json.int_field "warm_hits" s in
  let* warm_shape_hits = Json.int_field "warm_shape_hits" s in
  let* warm_procs_hits = Json.int_field "warm_procs_hits" s in
  let* warm_misses = Json.int_field "warm_misses" s in
  let* coalesce_leaders = Json.int_field "coalesce_leaders" s in
  let* coalesce_hits = Json.int_field "coalesce_hits" s in
  let* tape_entries = Json.int_field "tape_entries" s in
  let* warm_entries = Json.int_field "warm_entries" s in
  Ok
    {
      Core.Plan_cache.tape_hits;
      tape_misses;
      warm_hits;
      warm_shape_hits;
      warm_procs_hits;
      warm_misses;
      coalesce_leaders;
      coalesce_hits;
      tape_entries;
      warm_entries;
    }

let decode_server_stats j =
  match Json.member "server" j with
  | None | Some Json.Null -> Ok None
  | Some s ->
      let* queue_depth = Json.int_field "queue_depth" s in
      let* max_pending = Json.int_field "max_pending" s in
      let* shed = Json.int_field "shed" s in
      let* accepted = Json.int_field "accepted" s in
      let* served = Json.int_field "served" s in
      let* lat = Json.field "latency" s in
      let* bounds = Result.bind (Json.field "bounds_ms" lat) Json.to_list in
      let* bounds_ms =
        let rec go acc = function
          | [] -> Ok (Array.of_list (List.rev acc))
          | x :: rest ->
              let* x = Json.to_num x in
              go (x :: acc) rest
        in
        go [] bounds
      in
      let* ops = Result.bind (Json.field "ops" lat) Json.to_list in
      let* latency =
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | o :: rest ->
              let* op = Json.str_field "op" o in
              let* bl = Result.bind (Json.field "buckets" o) Json.to_list in
              let* buckets =
                let rec ints acc = function
                  | [] -> Ok (Array.of_list (List.rev acc))
                  | x :: rest ->
                      let* x = Json.to_int x in
                      ints (x :: acc) rest
                in
                ints [] bl
              in
              go ({ op; buckets } :: acc) rest
        in
        go [] ops
      in
      Ok
        (Some
           { queue_depth; max_pending; shed; accepted; served; bounds_ms; latency })

let decode_reply line =
  let* j = Json.of_string line in
  let id = request_id j in
  let* status = Json.str_field "status" j in
  match status with
  | "error" ->
      let* kind = Json.str_field "kind" j in
      let* message = Json.str_field "message" j in
      let* retry_after_ms =
        match Json.member "retry_after_ms" j with
        | None | Some Json.Null -> Ok None
        | Some v -> Result.map Option.some (Json.to_int v)
      in
      Ok (id, Error_reply { kind; message; retry_after_ms })
  | "ok" ->
      if Json.member "phi" j <> None then
        let* s = decode_plan_summary j in
        Ok (id, Plan_reply s)
      else if Json.member "stats" j <> None then
        let* cache = decode_stats j in
        let* server = decode_server_stats j in
        Ok (id, Stats_reply { cache; server })
      else Ok (id, Pong)
  | other -> Error (Printf.sprintf "unknown status %S" other)

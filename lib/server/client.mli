(** Blocking client for the plan server's protocol.

    One connection, one outstanding request at a time: each call
    writes a request line and blocks until the reply line arrives.
    The typed helpers stamp sequential integer ids.  For concurrent
    load, open several clients (the bench's load generator runs one
    per client domain). *)

type t

val connect : ?addr:string -> port:int -> unit -> t
(** Raises [Unix.Unix_error] if the connection is refused. *)

val close : t -> unit

val rpc : t -> Json.t -> (Json.t * Protocol.reply, string) result
(** Send one raw request value, await the reply: the echoed id and
    decoded reply.  [Error] means the connection died or the reply was
    unparseable — protocol-level failures arrive as
    {!Protocol.Error_reply}. *)

val send_line : t -> string -> unit
(** Escape hatch for protocol tests: ship an arbitrary (possibly
    malformed) line. *)

val recv_line : t -> (string, string) result

val plan :
  ?params:Costmodel.Params.t ->
  ?pb:int ->
  t ->
  Mdg.Graph.t ->
  procs:int ->
  (Protocol.plan_summary, string) result
(** Request a plan; [Error] renders protocol error replies as
    ["kind: message"] (a shed request reads ["overloaded: ..."] — the
    server closes the connection after that reply, so retry on a fresh
    {!connect}). *)

val stats :
  t ->
  (Core.Plan_cache.stats * Protocol.server_stats option, string) result
(** Cache statistics plus, when the peer is a live daemon, its
    serving-side counters (queue depth, sheds, latency buckets). *)

val ping : t -> (unit, string) result

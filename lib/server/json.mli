(** A minimal JSON codec for the plan server's wire protocol.

    The repository deliberately depends only on the OCaml toolchain,
    so the newline-delimited JSON protocol ({!Protocol}) carries its
    own self-contained codec: the full JSON value model, a strict
    recursive-descent parser returning [result] (a malformed request
    must produce a typed error reply, never an exception), and a
    compact printer whose output contains no newlines — one value per
    line is the protocol's framing.

    Numbers are [float]s (as in JSON itself); integral values within
    [2^53] print without a fractional part, so OCaml [int] fields
    round-trip exactly through {!int_field}. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering, single line (strings escape control
    characters). *)

val of_string : string -> (t, string) result
(** Strict parse of exactly one JSON value (surrounding whitespace
    allowed).  [Error] carries a one-line description with a byte
    offset. *)

(** {2 Construction helpers} *)

val int : int -> t

val float_array : float array -> t

val int_array : int array -> t

(** {2 Access helpers}

    All return [Error] rather than raising: the server turns any of
    these into an [invalid_request] protocol reply. *)

val member : string -> t -> t option
(** Field of an object; [None] if absent or not an object. *)

val field : string -> t -> (t, string) result
(** Required field of an object. *)

val to_num : t -> (float, string) result

val to_int : t -> (int, string) result
(** Accepts only integral numbers. *)

val to_str : t -> (string, string) result

val to_list : t -> (t list, string) result

val int_field : string -> t -> (int, string) result

val num_field : string -> t -> (float, string) result

val str_field : string -> t -> (string, string) result

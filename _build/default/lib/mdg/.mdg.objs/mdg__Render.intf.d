lib/mdg/render.mli: Graph

lib/mdg/graph.mli: Format

lib/mdg/analysis.mli: Graph

lib/mdg/render.ml: Analysis Array Buffer Format Graph Int List Printf String

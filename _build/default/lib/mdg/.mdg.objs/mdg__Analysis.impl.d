lib/mdg/analysis.ml: Array Float Graph Hashtbl Int List Option Printf Set

lib/mdg/serialize.mli: Graph

lib/mdg/serialize.ml: Array Buffer Graph List Printf String

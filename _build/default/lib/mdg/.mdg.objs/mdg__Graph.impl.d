lib/mdg/graph.ml: Array Float Format Hashtbl List Queue

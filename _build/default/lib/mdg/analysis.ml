let topological_order g =
  let n = Graph.num_nodes g in
  let indeg = Array.make n 0 in
  List.iter
    (fun (e : Graph.edge) -> indeg.(e.dst) <- indeg.(e.dst) + 1)
    (Graph.edges g);
  (* Min-id-first ready set keeps the order deterministic. *)
  let module IS = Set.Make (Int) in
  let ready = ref IS.empty in
  Array.iteri (fun i d -> if d = 0 then ready := IS.add i !ready) indeg;
  let rec go acc =
    match IS.min_elt_opt !ready with
    | None -> List.rev acc
    | Some u ->
        ready := IS.remove u !ready;
        List.iter
          (fun (e : Graph.edge) ->
            indeg.(e.dst) <- indeg.(e.dst) - 1;
            if indeg.(e.dst) = 0 then ready := IS.add e.dst !ready)
          (Graph.succs g u);
        go (u :: acc)
  in
  let order = go [] in
  assert (List.length order = n);
  order

let reverse_topological_order g = List.rev (topological_order g)

let reachable g s =
  let n = Graph.num_nodes g in
  if s < 0 || s >= n then invalid_arg "Analysis.reachable: bad node";
  let seen = Array.make n false in
  let rec dfs u =
    if not seen.(u) then begin
      seen.(u) <- true;
      List.iter (fun (e : Graph.edge) -> dfs e.dst) (Graph.succs g u)
    end
  in
  dfs s;
  seen

let check_weight what w =
  if w < 0.0 || not (Float.is_finite w) then
    invalid_arg (Printf.sprintf "Analysis: negative or non-finite %s weight" what)

let finish_times ~node_weight ~edge_weight g =
  let n = Graph.num_nodes g in
  let y = Array.make n 0.0 in
  List.iter
    (fun u ->
      let t_u = node_weight u in
      check_weight "node" t_u;
      let start =
        List.fold_left
          (fun acc (e : Graph.edge) ->
            let d = edge_weight e in
            check_weight "edge" d;
            Float.max acc (y.(e.src) +. d))
          0.0 (Graph.preds g u)
      in
      y.(u) <- start +. t_u)
    (topological_order g);
  y

let critical_path_time ~node_weight ~edge_weight g =
  let y = finish_times ~node_weight ~edge_weight g in
  Array.fold_left Float.max 0.0 y

let critical_path ~node_weight ~edge_weight g =
  let y = finish_times ~node_weight ~edge_weight g in
  let n = Graph.num_nodes g in
  (* Walk back from the node with the largest finish time, at each step
     choosing a predecessor that realises the start time. *)
  let last = ref 0 in
  for i = 1 to n - 1 do
    if y.(i) > y.(!last) then last := i
  done;
  let eps v = 1e-12 *. (1.0 +. Float.abs v) in
  let rec back u acc =
    let start = y.(u) -. node_weight u in
    match
      List.find_opt
        (fun (e : Graph.edge) ->
          Float.abs (y.(e.src) +. edge_weight e -. start) <= eps start)
        (Graph.preds g u)
    with
    | Some e -> back e.src (u :: acc)
    | None -> u :: acc
  in
  back !last []

let total_area ~node_weight ~procs g =
  let acc = ref 0.0 in
  for i = 0 to Graph.num_nodes g - 1 do
    let t = node_weight i in
    let p = procs i in
    check_weight "node" t;
    if p < 0.0 then invalid_arg "Analysis.total_area: negative processor count";
    acc := !acc +. (t *. p)
  done;
  !acc

let levels g =
  let n = Graph.num_nodes g in
  let lvl = Array.make n 0 in
  List.iter
    (fun u ->
      List.iter
        (fun (e : Graph.edge) -> lvl.(e.dst) <- Int.max lvl.(e.dst) (lvl.(e.src) + 1))
        (Graph.succs g u))
    (topological_order g);
  lvl

let depth g =
  let lvl = levels g in
  1 + Array.fold_left Int.max 0 lvl

let max_width g =
  let lvl = levels g in
  let counts = Hashtbl.create 16 in
  Array.iter
    (fun l ->
      let c = Option.value (Hashtbl.find_opt counts l) ~default:0 in
      Hashtbl.replace counts l (c + 1))
    lvl;
  Hashtbl.fold (fun _ c acc -> Int.max c acc) counts 0

(** Rendering MDGs for humans: Graphviz DOT and a plain-text adjacency
    listing (used by the Figure 6 reproduction). *)

val to_dot : ?name:string -> Graph.t -> string
(** Graphviz source for the graph.  Node labels include the kernel;
    edge labels include bytes and transfer kind. *)

val to_ascii : Graph.t -> string
(** Levelised text rendering: one line per depth level listing the
    nodes at that level, followed by the edge list. *)

val summary : Graph.t -> string
(** One-line structural summary (nodes, edges, depth, width). *)

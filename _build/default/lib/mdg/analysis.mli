(** Structural analyses over MDGs: topological order, longest paths
    (critical path), reachability, and parallelism metrics.

    Weighted analyses are parameterised by weight functions so they can
    be reused with model-predicted weights (allocation, Section 2),
    rounded-allocation weights (PSA, Section 3), or measured weights. *)

val topological_order : Graph.t -> int list
(** Node ids in a topological order of the precedence relation
    (deterministic: ties broken by node id). *)

val reverse_topological_order : Graph.t -> int list

val reachable : Graph.t -> int -> bool array
(** [reachable g s] marks every node reachable from [s] (including
    [s]). *)

val finish_times :
  node_weight:(int -> float) ->
  edge_weight:(Graph.edge -> float) ->
  Graph.t ->
  float array
(** The paper's recurrence [yᵢ = max over preds (y_m + t^D_mi) + Tᵢ]:
    earliest finish time of each node assuming unlimited processors.
    Raises [Invalid_argument] on negative weights. *)

val critical_path_time :
  node_weight:(int -> float) ->
  edge_weight:(Graph.edge -> float) ->
  Graph.t ->
  float
(** [C_p]: the largest finish time over all nodes. *)

val critical_path :
  node_weight:(int -> float) ->
  edge_weight:(Graph.edge -> float) ->
  Graph.t ->
  int list
(** One maximising path (node ids, source to sink). *)

val total_area :
  node_weight:(int -> float) -> procs:(int -> float) -> Graph.t -> float
(** [Σᵢ Tᵢ·pᵢ]: total processor-time area (the numerator of the
    paper's average finish time [A_p]). *)

val depth : Graph.t -> int
(** Number of nodes on the longest unit-weight path. *)

val max_width : Graph.t -> int
(** Size of the largest antichain layer: the maximum, over the
    levelisation by unit-depth, of nodes sharing a level.  An upper
    bound estimate of exploitable functional parallelism. *)

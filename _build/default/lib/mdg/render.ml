let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let to_dot ?(name = "mdg") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  rankdir=TB;\n  node [shape=box];\n";
  Array.iter
    (fun (nd : Graph.node) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\\n%s\"];\n" nd.id (escape nd.label)
           (Format.asprintf "%a" Graph.pp_kernel nd.kernel)))
    (Graph.nodes g);
  List.iter
    (fun (e : Graph.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%gB %s\"];\n" e.src e.dst e.bytes
           (Format.asprintf "%a" Graph.pp_transfer_kind e.kind)))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_ascii g =
  let buf = Buffer.create 1024 in
  (* Group nodes by unit-depth level. *)
  let n = Graph.num_nodes g in
  let lvl = Array.make n 0 in
  List.iter
    (fun u ->
      List.iter
        (fun (e : Graph.edge) -> lvl.(e.dst) <- Int.max lvl.(e.dst) (lvl.(e.src) + 1))
        (Graph.succs g u))
    (Analysis.topological_order g);
  let max_lvl = Array.fold_left Int.max 0 lvl in
  for l = 0 to max_lvl do
    let here =
      Array.to_list (Graph.nodes g)
      |> List.filter (fun (nd : Graph.node) -> lvl.(nd.id) = l)
    in
    Buffer.add_string buf (Printf.sprintf "level %d: " l);
    List.iteri
      (fun k (nd : Graph.node) ->
        if k > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (Printf.sprintf "[%d]%s" nd.id nd.label))
      here;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf "edges:\n";
  List.iter
    (fun (e : Graph.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "  %d -> %d  (%g bytes, %s)\n" e.src e.dst e.bytes
           (Format.asprintf "%a" Graph.pp_transfer_kind e.kind)))
    (Graph.edges g);
  Buffer.contents buf

let summary g =
  Printf.sprintf "%d nodes, %d edges, depth %d, max width %d"
    (Graph.num_nodes g)
    (List.length (Graph.edges g))
    (Analysis.depth g) (Analysis.max_width g)

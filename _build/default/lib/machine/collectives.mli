(** Collective-communication building blocks.

    The CM-5 exposed hardware-assisted collectives; data-parallel loop
    bodies (the insides of MDG nodes) are built from them.  This module
    provides software collectives as {!Program} fragments — per-
    processor op lists a code generator can splice into an MPMD
    program — together with analytic time models used in tests.

    Message tags: every collective consumes a contiguous range of edge
    tags starting at [edge_base]; {!tags_used} reports how many, so
    callers can allocate disjoint ranges. *)

type fragment = (int * Program.op list) list
(** Ops to append to each processor, in execution order. *)

val broadcast :
  edge_base:int -> procs:int array -> root_index:int -> bytes:float -> fragment
(** Binomial-tree broadcast of a [bytes]-sized buffer from
    [procs.(root_index)] to every processor in [procs].
    Raises [Invalid_argument] on empty sets or bad indices. *)

val reduce :
  edge_base:int ->
  procs:int array ->
  root_index:int ->
  bytes:float ->
  combine_seconds:float ->
  fragment
(** Binomial-tree reduction to [procs.(root_index)]: each merge
    receives [bytes] and then computes for [combine_seconds]. *)

val allgather :
  edge_base:int -> procs:int array -> bytes_per_proc:float -> fragment
(** Ring allgather: after [p-1] steps every processor holds all
    [p × bytes_per_proc] data. *)

val tags_used :
  [ `Broadcast | `Reduce | `Allgather ] -> procs:int -> int
(** Upper bound on distinct edge tags consumed by a collective over
    [procs] processors. *)

val model_broadcast_time : Ground_truth.t -> procs:int -> bytes:float -> float
(** Analytic binomial-tree time: [ceil(log2 p)] sequential rounds of
    one send + one receive on the critical path. *)

val model_allgather_time :
  Ground_truth.t -> procs:int -> bytes_per_proc:float -> float
(** Analytic ring time: [p-1] steps of send ∥ receive (the receive
    side dominates each step's critical path together with the send
    busy time). *)

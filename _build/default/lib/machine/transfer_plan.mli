(** Message-level plans for inter-node array redistribution.

    Expands an MDG edge (bytes, 1D/2D kind, sender and receiver
    processor sets) into the individual point-to-point messages the
    machine actually exchanges:

    - 1D (distribution dimension unchanged): block-interval overlap —
      sender [s] owns byte range [[sL/pᵢ, (s+1)L/pᵢ)], receiver [r]
      owns [[rL/pⱼ, (r+1)L/pⱼ)]; a message is generated for every
      overlapping pair.  When one count divides the other this yields
      exactly [max(pᵢ,pⱼ)] messages, as the paper's cost model
      assumes.
    - 2D (dimension flips): all-to-all — every sender sends
      [L/(pᵢ·pⱼ)] bytes to every receiver.

    Messages whose source and destination are the same physical
    processor represent local copies; the simulator charges them
    (almost) nothing. *)

type message = {
  src_proc : int;
  dst_proc : int;
  bytes : float;
}

val messages :
  kind:Mdg.Graph.transfer_kind ->
  bytes:float ->
  senders:int array ->
  receivers:int array ->
  message list
(** Raises [Invalid_argument] on empty processor sets or negative
    sizes.  Zero-byte transfers yield no messages. *)

val total_bytes : message list -> float

val max_messages_per_sender : message list -> int

val conserves_bytes : ?eps:float -> bytes:float -> message list -> bool
(** Check that message sizes sum to the transferred array size. *)

type fragment = (int * Program.op list) list

let check_procs name procs =
  if Array.length procs = 0 then invalid_arg (name ^ ": empty processor set")

let check_root name procs root_index =
  if root_index < 0 || root_index >= Array.length procs then
    invalid_arg (name ^ ": root index out of range")

let check_bytes name bytes =
  if bytes < 0.0 || not (Float.is_finite bytes) then
    invalid_arg (name ^ ": bad byte count")

let rounds_for m =
  let rec go r reach = if reach >= m then r else go (r + 1) (reach * 2) in
  go 0 1

(* Work in "relative rank" space: the root is relative 0; [abs rel]
   maps back to a physical processor. *)
let relative procs root_index =
  let m = Array.length procs in
  fun rel -> procs.((rel + root_index) mod m)

let broadcast ~edge_base ~procs ~root_index ~bytes =
  check_procs "Collectives.broadcast" procs;
  check_root "Collectives.broadcast" procs root_index;
  check_bytes "Collectives.broadcast" bytes;
  let m = Array.length procs in
  let abs = relative procs root_index in
  let ops = Array.make m [] in
  (* Binomial tree: in round k, relative ranks < 2^k send to rank+2^k. *)
  for k = 0 to rounds_for m - 1 do
    let stride = 1 lsl k in
    for src = 0 to Int.min (stride - 1) (m - 1) do
      let dst = src + stride in
      if dst < m then begin
        let tag = edge_base + dst in
        ops.(src) <-
          Program.Send { edge = tag; dst_proc = abs dst; bytes } :: ops.(src);
        ops.(dst) <-
          Program.Recv { edge = tag; src_proc = abs src; bytes } :: ops.(dst)
      end
    done
  done;
  List.init m (fun rel -> (abs rel, List.rev ops.(rel)))

let reduce ~edge_base ~procs ~root_index ~bytes ~combine_seconds =
  check_procs "Collectives.reduce" procs;
  check_root "Collectives.reduce" procs root_index;
  check_bytes "Collectives.reduce" bytes;
  if combine_seconds < 0.0 then
    invalid_arg "Collectives.reduce: negative combine time";
  let m = Array.length procs in
  let abs = relative procs root_index in
  let ops = Array.make m [] in
  (* Mirror of the broadcast tree: in round k, relative ranks with
     bit k set (and lower bits clear) send to rank - 2^k. *)
  for k = 0 to rounds_for m - 1 do
    let stride = 1 lsl k in
    let period = 2 * stride in
    let rec each src =
      if src < m then begin
        let dst = src - stride in
        let tag = edge_base + src in
        ops.(src) <-
          Program.Send { edge = tag; dst_proc = abs dst; bytes } :: ops.(src);
        ops.(dst) <-
          Program.Compute { node = -1; seconds = combine_seconds }
          :: Program.Recv { edge = tag; src_proc = abs src; bytes }
          :: ops.(dst);
        each (src + period)
      end
    in
    each stride
  done;
  List.init m (fun rel -> (abs rel, List.rev ops.(rel)))

let allgather ~edge_base ~procs ~bytes_per_proc =
  check_procs "Collectives.allgather" procs;
  check_bytes "Collectives.allgather" bytes_per_proc;
  let m = Array.length procs in
  let ops = Array.make m [] in
  (* Ring: at step s every rank sends one chunk right and receives one
     chunk from the left. *)
  for s = 0 to m - 2 do
    for rel = 0 to m - 1 do
      let right = (rel + 1) mod m in
      let left = (rel + m - 1) mod m in
      let send_tag = edge_base + (s * m) + rel in
      let recv_tag = edge_base + (s * m) + left in
      ops.(rel) <-
        Program.Recv
          { edge = recv_tag; src_proc = procs.(left); bytes = bytes_per_proc }
        :: Program.Send
             { edge = send_tag; dst_proc = procs.(right); bytes = bytes_per_proc }
        :: ops.(rel)
    done
  done;
  List.init m (fun rel -> (procs.(rel), List.rev ops.(rel)))

let tags_used kind ~procs =
  match kind with
  | `Broadcast | `Reduce -> procs
  | `Allgather -> procs * Int.max 0 (procs - 1)

let step_time gt ~bytes =
  Ground_truth.send_busy gt ~bytes
  +. Ground_truth.net_delay gt ~bytes
  +. Ground_truth.recv_busy gt ~bytes

let model_broadcast_time gt ~procs ~bytes =
  if procs < 1 then invalid_arg "Collectives.model_broadcast_time: procs < 1";
  let rounds = float_of_int (rounds_for procs) in
  (* Two candidate critical paths: the receive chain down the tree, or
     the root's serialised sends followed by one delivery. *)
  Float.max
    (rounds *. step_time gt ~bytes)
    ((rounds *. Ground_truth.send_busy gt ~bytes)
    +. Ground_truth.net_delay gt ~bytes
    +. Ground_truth.recv_busy gt ~bytes)

let model_allgather_time gt ~procs ~bytes_per_proc =
  if procs < 1 then invalid_arg "Collectives.model_allgather_time: procs < 1";
  float_of_int (procs - 1) *. step_time gt ~bytes:bytes_per_proc

module G = Mdg.Graph

let measure_kernel gt kernel ~procs = Ground_truth.kernel_time gt kernel ~procs

let kernel_sweep gt kernel ~procs =
  List.map (fun p -> (p, measure_kernel gt kernel ~procs:p)) procs

let measure_transfer gt ~kind ~p_send ~p_recv ~bytes =
  if p_send < 1 || p_recv < 1 then
    invalid_arg "Measure.measure_transfer: processor count < 1";
  (* Disjoint processor sets so that no message degenerates into a local
     copy: the microbenchmark isolates genuine communication. *)
  let senders = Array.init p_send Fun.id in
  let receivers = Array.init p_recv (fun r -> p_send + r) in
  let msgs = Transfer_plan.messages ~kind ~bytes ~senders ~receivers in
  let send_busy = Hashtbl.create 16 and recv_busy = Hashtbl.create 16 in
  let bump tbl k v =
    Hashtbl.replace tbl k (v +. Option.value (Hashtbl.find_opt tbl k) ~default:0.0)
  in
  let net = ref 0.0 in
  List.iter
    (fun (m : Transfer_plan.message) ->
      bump send_busy m.src_proc (Ground_truth.send_busy gt ~bytes:m.bytes);
      bump recv_busy m.dst_proc (Ground_truth.recv_busy gt ~bytes:m.bytes);
      net := Float.max !net (Ground_truth.net_delay gt ~bytes:m.bytes))
    msgs;
  let table_max tbl = Hashtbl.fold (fun _ v acc -> Float.max v acc) tbl 0.0 in
  {
    Costmodel.Transfer.send = table_max send_busy;
    network = !net;
    receive = table_max recv_busy;
  }

let transfer_sweep gt ~kinds ~proc_pairs ~sizes =
  List.concat_map
    (fun kind ->
      List.concat_map
        (fun (p_send, p_recv) ->
          List.map
            (fun bytes ->
              {
                Costmodel.Fit.kind;
                p_send;
                p_recv;
                bytes;
                measured = measure_transfer gt ~kind ~p_send ~p_recv ~bytes;
              })
            sizes)
        proc_pairs)
    kinds

let default_proc_pairs p =
  let pows = Numeric.Pow2.pow2_range p in
  List.concat_map (fun a -> List.map (fun b -> (a, b)) pows) pows

let default_sizes = [ 8192.0; 32768.0; 65536.0; 131072.0; 262144.0; 524288.0 ]

let calibrate gt ~procs kernels =
  let tf =
    Costmodel.Fit.fit_transfer
      (transfer_sweep gt ~kinds:[ G.Oned; G.Twod ]
         ~proc_pairs:(default_proc_pairs 32) ~sizes:default_sizes)
  in
  let params = Costmodel.Params.make ~transfer:tf.params in
  let qualities =
    List.map
      (fun kernel ->
        let samples = kernel_sweep gt kernel ~procs in
        let proc, quality = Costmodel.Fit.fit_processing samples in
        Costmodel.Params.set_processing params kernel proc;
        (kernel, quality))
      (List.sort_uniq compare kernels)
  in
  (params, qualities, tf)

(** Export simulation traces to the Chrome trace-event JSON format, so
    executions can be inspected in [chrome://tracing] / Perfetto.

    Each processor becomes a thread; compute/send/receive/wait
    segments become complete ("ph":"X") events with microsecond
    timestamps. *)

val to_json : ?process_name:string -> Sim.result -> string
(** The trace as a JSON array of event objects. *)

val save : ?process_name:string -> string -> Sim.result -> unit
(** Write the JSON to a file path. *)

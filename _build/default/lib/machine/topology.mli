(** Interconnect topologies.

    The paper's transfer model assumes "network costs are the same for
    all processor pairs", noting this "is valid for most of the current
    machines".  This module makes that assumption testable: it models
    distance-dependent latency and root-level bandwidth contention for
    a CM-5-style fat tree and a 2-D mesh, next to the paper's uniform
    network.  {!Sim.run}'s [?topology] argument injects the extra
    delays; the [topology] bench experiment quantifies how much the
    uniform assumption costs on each. *)

type t

val uniform : ?latency:float -> unit -> t
(** The paper's model: every pair is [latency] apart (default 0). *)

val fat_tree :
  ?arity:int ->
  ?hop_latency:float ->
  ?root_bytes_per_sec:float ->
  procs:int ->
  unit ->
  t
(** CM-5-style fat tree over [procs] leaves with the given [arity]
    (default 4, the CM-5's).  A message pays [hop_latency] (default
    0.5 µs) per switch hop up to and down from the lowest common
    ancestor.  Messages whose route crosses the tree root additionally
    share the root bisection bandwidth [root_bytes_per_sec] (default
    [2.5e8]); this is the contention term. *)

val mesh2d : ?hop_latency:float -> procs:int -> unit -> t
(** Square(ish) 2-D mesh with dimension-ordered routing and
    [hop_latency] (default 0.5 µs) per hop.  No contention model. *)

val hops : t -> src:int -> dst:int -> int
(** Number of switch hops between two processors (0 for [src = dst]
    and on the uniform network). *)

val message_delay : t -> src:int -> dst:int -> bytes:float -> now:float -> float
(** Extra in-flight delay for a message injected at time [now],
    *beyond* the machine's base network delay.  Stateful for
    contended topologies: root-crossing messages queue on the shared
    bisection, so calls must be made in nondecreasing [now] order per
    simulation run (the simulator guarantees this). *)

val reset : t -> unit
(** Clear contention state between simulation runs. *)

val describe : t -> string

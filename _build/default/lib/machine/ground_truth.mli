(** "True" machine characteristics for the simulated multicomputer.

    The paper measured its costs on a real 64-node CM-5; with no CM-5
    available, this module plays the role of the physical machine.  It
    is deliberately *not* identical to the posynomial cost models of
    [Costmodel] — it layers deterministic second-order effects on top
    of them (tree-synchronisation overhead that grows with log p,
    per-packet costs, a cache bonus when a processor's share of the
    data fits in cache) so that the training-sets fit in the
    experiments is approximate, as it is in the paper's Figures 3/5/9,
    rather than tautological.

    First-order constants are the paper's own published CM-5 numbers
    (Tables 1 and 2), so fitted parameters land close to the paper's. *)

type t

val cm5_like : unit -> t
(** The default machine used in all experiments. *)

val ideal : unit -> t
(** A machine with the perturbations switched off: the cost models are
    exact on it.  Used in tests to validate fitting machinery. *)

(** {1 Kernel timing} *)

val kernel_time : t -> Mdg.Graph.kernel -> procs:int -> float
(** Wall-clock seconds for one execution of [kernel] spread over
    [procs] processors (including intra-kernel communication, which is
    what the paper's α captures).  Raises [Invalid_argument] if
    [procs < 1]. *)

val kernel_serial_time : t -> Mdg.Graph.kernel -> float
(** [kernel_time t k ~procs:1]. *)

val per_op_time : t -> Mdg.Graph.kernel -> float
(** Seconds per elementary operation (flop for multiplies, element
    op for adds/initialises) of the kernel's compute phase — the raw
    rate a data-parallel expansion of the kernel computes at.
    Raises [Invalid_argument] for [Synthetic]/[Dummy] kernels, which
    have no operation count. *)

(** {1 Message timing} *)

val send_busy : t -> bytes:float -> float
(** Seconds the sending processor is busy injecting one message. *)

val recv_busy : t -> bytes:float -> float
(** Seconds the receiving processor is busy draining one message
    (includes the CM-5-style network-time-billed-to-receiver effect). *)

val net_delay : t -> bytes:float -> float
(** In-flight latency between send completion and availability at the
    receiver. *)

(** {1 Introspection} *)

val describe : t -> string
(** Human-readable summary of the machine's true constants. *)

(** Explicit data-parallel expansion of kernel nodes.

    The cost models (and {!Ground_truth.kernel_time}) treat a loop nest
    on k processors as one aggregate number with an Amdahl shape.  This
    module provides the alternative a real HPF-style compiler would
    emit: each processor computes its block of the iteration space and
    the operands it lacks are fetched with explicit collectives
    (matrix multiply needs the full second operand → ring allgather;
    addition and initialisation are perfectly aligned → no
    communication).

    Running the expansion on the simulator and comparing with the
    aggregate model (bench target [expand]) quantifies how faithful
    the Amdahl abstraction is to executable data-parallel code. *)

val expand :
  Ground_truth.t ->
  Mdg.Graph.kernel ->
  procs:int array ->
  node:int ->
  edge_base:int ->
  Collectives.fragment
(** Per-processor ops realising one execution of [kernel] over the
    given processor set.  [node] labels the compute ops; message tags
    start at [edge_base].  [Synthetic] kernels fall back to the
    aggregate time (they have no internal structure); [Dummy] expands
    to nothing.  Raises [Invalid_argument] on an empty processor
    set. *)

val tags_used : Mdg.Graph.kernel -> procs:int -> int
(** Tag-range budget for {!expand}. *)

val simulated_time :
  Ground_truth.t -> Mdg.Graph.kernel -> procs:int -> float
(** Wall-clock time of the expansion executed on the simulator with
    processors [0..procs-1]. *)

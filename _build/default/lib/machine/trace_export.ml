let label_of = function
  | Sim.Busy_compute node -> Printf.sprintf "compute node %d" node
  | Sim.Busy_send edge -> Printf.sprintf "send edge %d" edge
  | Sim.Busy_recv edge -> Printf.sprintf "recv edge %d" edge
  | Sim.Waiting edge -> Printf.sprintf "wait edge %d" edge

let category_of = function
  | Sim.Busy_compute _ -> "compute"
  | Sim.Busy_send _ | Sim.Busy_recv _ -> "communication"
  | Sim.Waiting _ -> "idle"

let to_json ?(process_name = "simulated multicomputer") (r : Sim.result) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  (* Metadata: name the process and one thread per processor. *)
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"%s\"}}"
       process_name);
  Array.iteri
    (fun p _ ->
      Buffer.add_string buf
        (Printf.sprintf
           ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"P%02d\"}}"
           p p))
    r.busy;
  List.iter
    (fun (s : Sim.segment) ->
      Buffer.add_string buf
        (Printf.sprintf
           ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d}"
           (label_of s.activity) (category_of s.activity) (s.start *. 1e6)
           ((s.finish -. s.start) *. 1e6)
           s.proc))
    r.segments;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let save ?process_name path r =
  let oc = open_out path in
  output_string oc (to_json ?process_name r);
  close_out oc

lib/machine/topology.mli:

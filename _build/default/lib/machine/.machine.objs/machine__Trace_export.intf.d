lib/machine/trace_export.mli: Sim

lib/machine/trace_export.ml: Array Buffer List Printf Sim

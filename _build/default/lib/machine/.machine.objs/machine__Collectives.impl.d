lib/machine/collectives.ml: Array Float Ground_truth Int List Program

lib/machine/program.ml: Array Float Format List

lib/machine/topology.ml: Float Printf

lib/machine/event_queue.ml: Array Float Int

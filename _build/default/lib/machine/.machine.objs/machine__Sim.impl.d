lib/machine/sim.ml: Array Event_queue Float Fun Ground_truth Hashtbl List Option Printf Program Queue String Topology

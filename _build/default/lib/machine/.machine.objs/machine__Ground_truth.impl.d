lib/machine/ground_truth.ml: Costmodel Float Mdg Printf

lib/machine/kernel_expand.ml: Array Collectives Fun Ground_truth List Mdg Program Sim

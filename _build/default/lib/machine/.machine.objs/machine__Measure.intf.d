lib/machine/measure.mli: Costmodel Ground_truth Mdg

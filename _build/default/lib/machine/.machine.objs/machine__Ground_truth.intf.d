lib/machine/ground_truth.mli: Mdg

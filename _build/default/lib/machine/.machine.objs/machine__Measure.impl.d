lib/machine/measure.ml: Array Costmodel Float Fun Ground_truth Hashtbl List Mdg Numeric Option Transfer_plan

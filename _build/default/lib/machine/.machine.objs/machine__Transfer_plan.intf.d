lib/machine/transfer_plan.mli: Mdg

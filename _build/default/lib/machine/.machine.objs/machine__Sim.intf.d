lib/machine/sim.mli: Ground_truth Program Topology

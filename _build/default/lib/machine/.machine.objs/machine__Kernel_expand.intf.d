lib/machine/kernel_expand.mli: Collectives Ground_truth Mdg

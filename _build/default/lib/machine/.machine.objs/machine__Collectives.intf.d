lib/machine/collectives.mli: Ground_truth Program

lib/machine/transfer_plan.ml: Array Float Hashtbl Int List Mdg Option

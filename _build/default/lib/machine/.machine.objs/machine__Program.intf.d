lib/machine/program.mli: Format

type op =
  | Compute of { node : int; seconds : float }
  | Send of { edge : int; dst_proc : int; bytes : float }
  | Recv of { edge : int; src_proc : int; bytes : float }

type t = { procs : int; code : op list array }

let validate_op ~procs op =
  match op with
  | Compute { seconds; _ } ->
      if seconds < 0.0 || not (Float.is_finite seconds) then
        invalid_arg "Program.make: negative compute duration"
  | Send { dst_proc; bytes; _ } ->
      if dst_proc < 0 || dst_proc >= procs then
        invalid_arg "Program.make: Send names a processor outside the machine";
      if bytes < 0.0 || not (Float.is_finite bytes) then
        invalid_arg "Program.make: negative message size"
  | Recv { src_proc; bytes; _ } ->
      if src_proc < 0 || src_proc >= procs then
        invalid_arg "Program.make: Recv names a processor outside the machine";
      if bytes < 0.0 || not (Float.is_finite bytes) then
        invalid_arg "Program.make: negative message size"

let make ~procs code =
  if procs < 1 then invalid_arg "Program.make: procs < 1";
  if Array.length code <> procs then
    invalid_arg "Program.make: code length does not match procs";
  Array.iter (List.iter (validate_op ~procs)) code;
  { procs; code }

let procs t = t.procs

let code t p =
  if p < 0 || p >= t.procs then invalid_arg "Program.code: bad processor";
  t.code.(p)

let num_ops t = Array.fold_left (fun acc ops -> acc + List.length ops) 0 t.code

let collect pred t =
  let acc = ref [] in
  Array.iteri
    (fun p ops -> List.iter (fun op -> if pred op then acc := (p, op) :: !acc) ops)
    t.code;
  List.rev !acc

let sends t = collect (function Send _ -> true | Compute _ | Recv _ -> false) t

let recvs t = collect (function Recv _ -> true | Compute _ | Send _ -> false) t

let pp_op fmt = function
  | Compute { node; seconds } ->
      Format.fprintf fmt "compute node=%d %.3f ms" node (seconds *. 1e3)
  | Send { edge; dst_proc; bytes } ->
      Format.fprintf fmt "send edge=%d -> P%d (%g B)" edge dst_proc bytes
  | Recv { edge; src_proc; bytes } ->
      Format.fprintf fmt "recv edge=%d <- P%d (%g B)" edge src_proc bytes

let pp fmt t =
  Format.fprintf fmt "@[<v>MPMD program on %d processors@," t.procs;
  Array.iteri
    (fun p ops ->
      Format.fprintf fmt "P%d:@," p;
      List.iter (fun op -> Format.fprintf fmt "  %a@," pp_op op) ops)
    t.code;
  Format.fprintf fmt "@]"

(** Binary-heap priority queue for discrete-event simulation.

    Events are ordered by time; ties are broken by insertion sequence
    so the simulation is deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Raises [Invalid_argument] on non-finite or negative times. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val peek_time : 'a t -> float option

module G = Mdg.Graph

type kernel_consts = {
  per_op : float;  (* seconds per flop *)
  alpha : float;   (* true serial fraction *)
}

type t = {
  init_k : kernel_consts;
  add_k : kernel_consts;
  mul_k : kernel_consts;
  (* Perturbations (zeroed on the ideal machine): *)
  sync_frac : float;           (* fraction of tau spent per log2 level *)
  cache_threshold : float;     (* per-processor bytes under which ... *)
  cache_factor : float;        (* ... the work term is scaled by this *)
  pkt_bytes : float;           (* packet size, bytes *)
  pkt_cost : float;            (* extra sender cost per packet *)
  wire_latency : float;        (* constant in-flight latency *)
  (* First-order message constants: *)
  t_ss : float;
  t_ps : float;
  t_sr : float;
  t_pr : float;
  t_n : float;
}

(* First-order constants are reverse-engineered from the paper's
   Table 1: tau(add 64) = 3.73 ms over 4096 ops, tau(mul 64) = 298.47 ms
   over 2*64^3 flops. *)
let cm5_like () =
  {
    init_k = { per_op = 400e-9; alpha = 0.05 };
    add_k = { per_op = 911e-9; alpha = 0.067 };
    mul_k = { per_op = 569e-9; alpha = 0.121 };
    sync_frac = 0.002;
    cache_threshold = 16_384.0;
    cache_factor = 0.97;
    pkt_bytes = 4096.0;
    pkt_cost = 8e-6;
    wire_latency = 5e-6;
    t_ss = 770e-6;
    t_ps = 485e-9;
    t_sr = 460e-6;
    t_pr = 424e-9;
    t_n = 0.0;
  }

let ideal () =
  {
    (cm5_like ()) with
    sync_frac = 0.0;
    cache_factor = 1.0;
    pkt_cost = 0.0;
    wire_latency = 0.0;
    t_ss = Costmodel.Params.cm5_transfer.t_ss;
    t_ps = Costmodel.Params.cm5_transfer.t_ps;
    t_sr = Costmodel.Params.cm5_transfer.t_sr;
    t_pr = Costmodel.Params.cm5_transfer.t_pr;
    t_n = Costmodel.Params.cm5_transfer.t_n;
  }

let log2_levels procs =
  if procs <= 1 then 0.0 else Float.ceil (Float.log2 (float_of_int procs))

let amdahl ~alpha ~tau ~p = tau *. (alpha +. ((1.0 -. alpha) /. p))

let kernel_time t kernel ~procs =
  if procs < 1 then invalid_arg "Ground_truth.kernel_time: procs < 1";
  let p = float_of_int procs in
  match kernel with
  | G.Dummy -> 0.0
  | G.Synthetic { alpha; tau } ->
      (* Synthetic loops are specification devices (Figure 1 example,
         random test graphs): the machine realises them exactly. *)
      amdahl ~alpha ~tau ~p
  | G.Matrix_init _ | G.Matrix_add _ | G.Matrix_multiply _ ->
      let consts =
        match kernel with
        | G.Matrix_init _ -> t.init_k
        | G.Matrix_add _ -> t.add_k
        | G.Matrix_multiply _ -> t.mul_k
        | G.Synthetic _ | G.Dummy -> assert false
      in
      let tau = G.kernel_flops kernel *. consts.per_op in
      let share_bytes = G.kernel_bytes kernel /. p in
      let cache =
        if share_bytes < t.cache_threshold then t.cache_factor else 1.0
      in
      let serial = consts.alpha *. tau in
      let parallel = (1.0 -. consts.alpha) *. tau /. p *. cache in
      let sync = t.sync_frac *. tau *. log2_levels procs in
      serial +. parallel +. sync

let kernel_serial_time t kernel = kernel_time t kernel ~procs:1

let per_op_time t = function
  | G.Matrix_init _ -> t.init_k.per_op
  | G.Matrix_add _ -> t.add_k.per_op
  | G.Matrix_multiply _ -> t.mul_k.per_op
  | G.Synthetic _ | G.Dummy ->
      invalid_arg "Ground_truth.per_op_time: kernel has no operation count"

let check_bytes name bytes =
  if bytes < 0.0 || not (Float.is_finite bytes) then
    invalid_arg ("Ground_truth." ^ name ^ ": bad byte count")

let send_busy t ~bytes =
  check_bytes "send_busy" bytes;
  let packets = if t.pkt_cost = 0.0 then 0.0 else Float.ceil (bytes /. t.pkt_bytes) in
  t.t_ss +. (bytes *. t.t_ps) +. (packets *. t.pkt_cost)

let recv_busy t ~bytes =
  check_bytes "recv_busy" bytes;
  t.t_sr +. (bytes *. t.t_pr)

let net_delay t ~bytes =
  check_bytes "net_delay" bytes;
  t.wire_latency +. (bytes *. t.t_n)

let describe t =
  Printf.sprintf
    "simulated multicomputer: init %.0f ns/op (a=%.3f), add %.0f ns/op \
     (a=%.3f), mul %.0f ns/flop (a=%.3f); msg send %.0f us + %.0f ns/B, \
     recv %.0f us + %.0f ns/B; sync %.2f%%/level, packets %.0f B @ %.0f us, \
     wire %.0f us"
    (t.init_k.per_op *. 1e9) t.init_k.alpha (t.add_k.per_op *. 1e9)
    t.add_k.alpha (t.mul_k.per_op *. 1e9) t.mul_k.alpha (t.t_ss *. 1e6)
    (t.t_ps *. 1e9) (t.t_sr *. 1e6) (t.t_pr *. 1e9) (t.sync_frac *. 100.0)
    t.pkt_bytes (t.pkt_cost *. 1e6) (t.wire_latency *. 1e6)

type message = {
  src_proc : int;
  dst_proc : int;
  bytes : float;
}

let messages ~kind ~bytes ~senders ~receivers =
  if Array.length senders = 0 || Array.length receivers = 0 then
    invalid_arg "Transfer_plan.messages: empty processor set";
  if bytes < 0.0 || not (Float.is_finite bytes) then
    invalid_arg "Transfer_plan.messages: bad byte count";
  if bytes = 0.0 then []
  else
    let pi = Array.length senders and pj = Array.length receivers in
    match (kind : Mdg.Graph.transfer_kind) with
    | Twod ->
        let chunk = bytes /. float_of_int (pi * pj) in
        Array.to_list senders
        |> List.concat_map (fun s ->
               Array.to_list receivers
               |> List.map (fun r -> { src_proc = s; dst_proc = r; bytes = chunk }))
    | Oned ->
        let fi = float_of_int pi and fj = float_of_int pj in
        let acc = ref [] in
        for s = pi - 1 downto 0 do
          let s_lo = float_of_int s *. bytes /. fi in
          let s_hi = float_of_int (s + 1) *. bytes /. fi in
          for r = pj - 1 downto 0 do
            let r_lo = float_of_int r *. bytes /. fj in
            let r_hi = float_of_int (r + 1) *. bytes /. fj in
            let overlap = Float.min s_hi r_hi -. Float.max s_lo r_lo in
            if overlap > 1e-9 then
              acc :=
                {
                  src_proc = senders.(s);
                  dst_proc = receivers.(r);
                  bytes = overlap;
                }
                :: !acc
          done
        done;
        !acc

let total_bytes msgs = List.fold_left (fun acc m -> acc +. m.bytes) 0.0 msgs

let max_messages_per_sender msgs =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun m ->
      let c = Option.value (Hashtbl.find_opt counts m.src_proc) ~default:0 in
      Hashtbl.replace counts m.src_proc (c + 1))
    msgs;
  Hashtbl.fold (fun _ c acc -> Int.max c acc) counts 0

let conserves_bytes ?(eps = 1e-6) ~bytes msgs =
  Float.abs (total_bytes msgs -. bytes) <= eps *. Float.max 1.0 bytes

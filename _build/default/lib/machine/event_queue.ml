type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;  (* heap.(0) unused when size = 0 *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty q = q.size = 0

let length q = q.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow q entry =
  let cap = Array.length q.heap in
  if q.size = cap then begin
    let ncap = Int.max 16 (cap * 2) in
    let heap = Array.make ncap entry in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end

let push q ~time payload =
  if not (Float.is_finite time) || time < 0.0 then
    invalid_arg "Event_queue.push: bad time";
  let entry = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  grow q entry;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  (* Sift up. *)
  let i = ref (q.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before q.heap.(!i) q.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let t = q.heap.(!i) in
    q.heap.(!i) <- q.heap.(parent);
    q.heap.(parent) <- t;
    i := parent
  done

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < q.size && before q.heap.(l) q.heap.(!smallest) then smallest := l;
        if r < q.size && before q.heap.(r) q.heap.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let t = q.heap.(!i) in
          q.heap.(!i) <- q.heap.(!smallest);
          q.heap.(!smallest) <- t;
          i := !smallest
        end
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time

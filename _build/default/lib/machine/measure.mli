(** Training-set measurement harness (paper Section 4).

    Runs microbenchmarks against the simulated machine and returns the
    raw samples that [Costmodel.Fit] regresses into Table 1 / Table 2
    parameters.  Processing measurements time an isolated kernel;
    transfer measurements expand a redistribution into its message plan
    over disjoint sender/receiver processor sets and report the three
    cost components the way the paper attributes them: processor time
    on the send side, processor time on the receive side, and residual
    in-flight network time. *)

val measure_kernel : Ground_truth.t -> Mdg.Graph.kernel -> procs:int -> float
(** Wall-clock seconds for the kernel on [procs] processors. *)

val kernel_sweep :
  Ground_truth.t -> Mdg.Graph.kernel -> procs:int list -> (int * float) list
(** Samples for {!Costmodel.Fit.fit_processing}. *)

val measure_transfer :
  Ground_truth.t ->
  kind:Mdg.Graph.transfer_kind ->
  p_send:int ->
  p_recv:int ->
  bytes:float ->
  Costmodel.Transfer.components
(** Measured components of one redistribution. *)

val transfer_sweep :
  Ground_truth.t ->
  kinds:Mdg.Graph.transfer_kind list ->
  proc_pairs:(int * int) list ->
  sizes:float list ->
  Costmodel.Fit.transfer_sample list
(** Cartesian sweep producing samples for
    {!Costmodel.Fit.fit_transfer}. *)

val default_proc_pairs : int -> (int * int) list
(** Power-of-two (sender, receiver) count pairs up to [p] used by the
    experiments. *)

val default_sizes : float list
(** Array sizes (bytes) used by the experiments: 8 KiB – 512 KiB. *)

val calibrate : Ground_truth.t -> procs:int list -> Mdg.Graph.kernel list ->
  Costmodel.Params.t * (Mdg.Graph.kernel * Costmodel.Fit.quality) list *
  Costmodel.Fit.transfer_fit
(** Full training-sets calibration: fit transfer parameters from the
    default sweep and processing parameters for every listed matrix
    kernel, returning a ready-to-use parameter set plus fit quality. *)

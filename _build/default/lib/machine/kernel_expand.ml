module G = Mdg.Graph

let compute ~node seconds =
  if seconds > 0.0 then [ Program.Compute { node; seconds } ] else []

let expand gt kernel ~procs ~node ~edge_base =
  if Array.length procs = 0 then invalid_arg "Kernel_expand.expand: empty set";
  let k = Array.length procs in
  let share flops = flops /. float_of_int k *. Ground_truth.per_op_time gt kernel in
  match kernel with
  | G.Dummy -> List.init k (fun i -> (procs.(i), []))
  | G.Synthetic _ ->
      (* No internal structure to expand: aggregate time on each
         processor. *)
      let t = Ground_truth.kernel_time gt kernel ~procs:k in
      List.init k (fun i -> (procs.(i), compute ~node t))
  | G.Matrix_init _ | G.Matrix_add _ ->
      (* Perfectly aligned elementwise loops: pure local compute. *)
      let t = share (G.kernel_flops kernel) in
      List.init k (fun i -> (procs.(i), compute ~node t))
  | G.Matrix_multiply _ ->
      (* Row-block C = A·B: every processor owns row blocks of A and B
         but needs all of B — ring allgather, then local dgemm. *)
      let bytes_per_proc = G.kernel_bytes kernel /. float_of_int k in
      let gather = Collectives.allgather ~edge_base ~procs ~bytes_per_proc in
      let t = share (G.kernel_flops kernel) in
      List.map (fun (p, ops) -> (p, ops @ compute ~node t)) gather

let tags_used kernel ~procs =
  match kernel with
  | G.Matrix_multiply _ -> Collectives.tags_used `Allgather ~procs
  | G.Matrix_init _ | G.Matrix_add _ | G.Synthetic _ | G.Dummy -> 0

let simulated_time gt kernel ~procs =
  if procs < 1 then invalid_arg "Kernel_expand.simulated_time: procs < 1";
  let procs_arr = Array.init procs Fun.id in
  let frag = expand gt kernel ~procs:procs_arr ~node:0 ~edge_base:0 in
  let code = Array.make procs [] in
  List.iter (fun (p, ops) -> code.(p) <- code.(p) @ ops) frag;
  (Sim.run gt (Program.make ~procs code)).finish_time

type kind =
  | Uniform of { latency : float }
  | Fat_tree of {
      arity : int;
      levels : int;          (* tree height above the leaves *)
      hop_latency : float;
      root_bytes_per_sec : float;
      mutable root_free : float;  (* when the root bisection is next idle *)
    }
  | Mesh2d of { width : int; hop_latency : float }

type t = kind ref

let uniform ?(latency = 0.0) () =
  if latency < 0.0 then invalid_arg "Topology.uniform: negative latency";
  ref (Uniform { latency })

let fat_tree ?(arity = 4) ?(hop_latency = 0.5e-6) ?(root_bytes_per_sec = 2.5e8)
    ~procs () =
  if arity < 2 then invalid_arg "Topology.fat_tree: arity < 2";
  if procs < 1 then invalid_arg "Topology.fat_tree: procs < 1";
  if hop_latency < 0.0 || root_bytes_per_sec <= 0.0 then
    invalid_arg "Topology.fat_tree: bad constants";
  let levels =
    let rec go levels reach = if reach >= procs then levels else go (levels + 1) (reach * arity) in
    go 0 1
  in
  ref (Fat_tree { arity; levels; hop_latency; root_bytes_per_sec; root_free = 0.0 })

let mesh2d ?(hop_latency = 0.5e-6) ~procs () =
  if procs < 1 then invalid_arg "Topology.mesh2d: procs < 1";
  if hop_latency < 0.0 then invalid_arg "Topology.mesh2d: negative latency";
  let width = int_of_float (Float.ceil (sqrt (float_of_int procs))) in
  ref (Mesh2d { width; hop_latency })

(* Level of the lowest common ancestor in an arity-a tree: smallest l
   with src / a^l = dst / a^l. *)
let lca_level ~arity src dst =
  let rec go l s d = if s = d then l else go (l + 1) (s / arity) (d / arity) in
  go 0 src dst

let hops t ~src ~dst =
  if src < 0 || dst < 0 then invalid_arg "Topology.hops: negative processor id";
  if src = dst then 0
  else
    match !t with
    | Uniform _ -> 0
    | Fat_tree { arity; _ } -> 2 * lca_level ~arity src dst
    | Mesh2d { width; _ } ->
        abs ((src mod width) - (dst mod width))
        + abs ((src / width) - (dst / width))

let message_delay t ~src ~dst ~bytes ~now =
  if bytes < 0.0 then invalid_arg "Topology.message_delay: negative bytes";
  if src = dst then 0.0
  else
    match !t with
    | Uniform { latency } -> latency
    | Mesh2d { hop_latency; _ } ->
        float_of_int (hops t ~src ~dst) *. hop_latency
    | Fat_tree ({ arity; levels; hop_latency; root_bytes_per_sec; _ } as ft) ->
        let base = float_of_int (hops t ~src ~dst) *. hop_latency in
        if lca_level ~arity src dst >= levels && levels > 0 then begin
          (* Root-crossing: serialise on the bisection. *)
          let transit = bytes /. root_bytes_per_sec in
          let start = Float.max now ft.root_free in
          ft.root_free <- start +. transit;
          base +. (start -. now) +. transit
        end
        else base

let reset t =
  match !t with
  | Fat_tree ft -> ft.root_free <- 0.0
  | Uniform _ | Mesh2d _ -> ()

let describe t =
  match !t with
  | Uniform { latency } -> Printf.sprintf "uniform network (%.2f us)" (latency *. 1e6)
  | Fat_tree { arity; levels; hop_latency; root_bytes_per_sec; _ } ->
      Printf.sprintf
        "fat tree: arity %d, %d levels, %.2f us/hop, root bisection %.0f MB/s"
        arity levels (hop_latency *. 1e6) (root_bytes_per_sec /. 1e6)
  | Mesh2d { width; hop_latency } ->
      Printf.sprintf "2D mesh: width %d, %.2f us/hop" width (hop_latency *. 1e6)

(** MPMD programs: per-processor operation sequences.

    This is the executable form of a schedule — what the paper's step 5
    (Section 1.2) calls "an executable program for each processor".
    Programs are built by [Core.Codegen] from a schedule, or by hand in
    tests, and executed by {!Sim}. *)

type op =
  | Compute of { node : int; seconds : float }
      (** Keep this processor busy for [seconds] on behalf of MDG node
          [node] (intra-node communication time is folded in). *)
  | Send of { edge : int; dst_proc : int; bytes : float }
      (** Inject one message on behalf of MDG edge [edge]. *)
  | Recv of { edge : int; src_proc : int; bytes : float }
      (** Block until the matching message arrives, then spend the
          receive-processing time. *)

type t

val make : procs:int -> op list array -> t
(** [make ~procs code] builds a program for a [procs]-processor
    machine; [code] must have length [procs].  Validates that every
    [Send]/[Recv] names a processor inside the machine and that
    durations/sizes are non-negative. *)

val procs : t -> int

val code : t -> int -> op list

val num_ops : t -> int

val sends : t -> (int * op) list
(** All [Send] ops paired with their processor, in program order. *)

val recvs : t -> (int * op) list

val pp_op : Format.formatter -> op -> unit

val pp : Format.formatter -> t -> unit

(** Lowering {!Ast} programs to MDGs: dependence analysis plus
    transfer classification.

    Each statement becomes one node.  For every operand read, a
    flow-dependence edge is added from the operand's last writer; edges
    between the same pair of statements are merged (their byte counts
    add).  The transfer kind is 1D when producer and consumer use the
    same distribution and 2D when the distribution dimension flips; a
    merged edge is 2D if any contributing operand needed
    redistribution, which over-approximates cost conservatively. *)

type node_map = {
  node_of_stmt : int array;  (** statement index -> MDG node id *)
}

val to_mdg : Ast.program -> Mdg.Graph.t * node_map
(** Normalised MDG of the program. *)

val kernels : Ast.program -> Mdg.Graph.kernel list
(** Distinct kernels used by the program (for calibration). *)

val flow_dependences : Ast.program -> (int * int * string) list
(** Raw dependence triples [(writer stmt, reader stmt, matrix)] before
    merging — exposed for tests. *)

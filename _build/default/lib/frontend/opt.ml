module SS = Set.Make (String)

let defined_check p names =
  let defined = SS.of_list (Ast.defined_matrices p) in
  List.iter
    (fun name ->
      if not (SS.mem name defined) then
        invalid_arg
          (Printf.sprintf "Opt: keep mentions undefined matrix %s" name))
    names

let dead_code_elimination ?keep (p : Ast.program) =
  let keep = match keep with None -> Ast.outputs p | Some names -> names in
  defined_check p keep;
  let stmts = Array.of_list p.stmts in
  let n = Array.length stmts in
  let needed = Array.make n false in
  (* Backward liveness over matrix names: a statement is needed iff its
     target is live just after it. *)
  let live = ref (SS.of_list keep) in
  for k = n - 1 downto 0 do
    let s = stmts.(k) in
    if SS.mem s.Ast.target !live then begin
      needed.(k) <- true;
      live := SS.remove s.Ast.target !live;
      List.iter (fun r -> live := SS.add r !live) (Ast.reads s)
    end
  done;
  let kept =
    Array.to_list stmts
    |> List.filteri (fun k _ -> needed.(k))
  in
  Ast.program ~size:p.size kept

let common_subexpressions ?(keep = []) (p : Ast.program) =
  defined_check p keep;
  let protected_names = SS.of_list keep in
  (* Global value numbering.  Only names defined exactly once may serve
     as representatives for reuse: they hold their value for the rest
     of the program, so redirecting a later read to them is always
     safe. *)
  let def_count = Hashtbl.create 16 in
  List.iter
    (fun (s : Ast.stmt) ->
      Hashtbl.replace def_count s.target
        (1 + Option.value (Hashtbl.find_opt def_count s.target) ~default:0))
    p.stmts;
  let single_assignment name = Hashtbl.find_opt def_count name = Some 1 in
  let next_vn = ref 0 in
  let fresh () =
    incr next_vn;
    !next_vn
  in
  let env : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let rep : (int, string) Hashtbl.t = Hashtbl.create 16 in
  let table : (string * int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let vn_of name = Hashtbl.find env name in
  (* The name to use when reading [name]: its representative if its
     current value has one, otherwise the name itself. *)
  let resolved name =
    Option.value (Hashtbl.find_opt rep (vn_of name)) ~default:name
  in
  let kept = ref [] in
  let define target vn =
    Hashtbl.replace env target vn;
    if single_assignment target && not (Hashtbl.mem rep vn) then
      Hashtbl.replace rep vn target
  in
  List.iter
    (fun (s : Ast.stmt) ->
      match s.rhs with
      | Ast.Init ->
          (* Fresh data every time: never merged. *)
          define s.target (fresh ());
          kept := s :: !kept
      | Ast.Add (a, b) | Ast.Sub (a, b) | Ast.Mul (a, b) -> (
          let va = vn_of a and vb = vn_of b in
          let key =
            match s.rhs with
            | Ast.Add _ ->
                (* Commutative: canonicalise operand order. *)
                ("+", Int.min va vb, Int.max va vb)
            | Ast.Sub _ -> ("-", va, vb)
            | Ast.Mul _ -> ("*", va, vb)
            | Ast.Init -> assert false
          in
          let reusable =
            (* A protected (kept output) name must stay defined. *)
            if SS.mem s.target protected_names then None
            else
              match Hashtbl.find_opt table key with
              | Some vn when Hashtbl.mem rep vn -> Some vn
              | Some _ | None -> None
          in
          match reusable with
          | Some vn ->
              (* Drop the statement; later reads of the target resolve
                 to the representative. *)
              Hashtbl.replace env s.target vn
          | None ->
              let ra = resolved a and rb = resolved b in
              let rhs =
                match s.rhs with
                | Ast.Add _ -> Ast.Add (ra, rb)
                | Ast.Sub _ -> Ast.Sub (ra, rb)
                | Ast.Mul _ -> Ast.Mul (ra, rb)
                | Ast.Init -> assert false
              in
              let vn = fresh () in
              Hashtbl.replace table key vn;
              define s.target vn;
              kept := { s with rhs } :: !kept))
    p.stmts;
  Ast.program ~size:p.size (List.rev !kept)

let optimise ?keep p =
  let keep = match keep with None -> Ast.outputs p | Some names -> names in
  dead_code_elimination ~keep (common_subexpressions ~keep p)

(** Reference interpreter for matrix programs.

    Executes a program on real dense matrices ({!Numeric.Mat}), giving
    the optimiser and lowering passes a ground truth to be checked
    against: a transformation is semantics-preserving iff the final
    values of the preserved matrices are unchanged.

    [init] fills the target deterministically from the matrix {e name}
    (and the ambient [seed]), so re-initialising the same name yields
    the same data and removing unrelated statements cannot change any
    surviving value. *)

val run : ?seed:int -> Ast.program -> (string * Numeric.Mat.t) list
(** Final value of every defined matrix, in first-definition order. *)

val outputs : ?seed:int -> Ast.program -> (string * Numeric.Mat.t) list
(** Final values of just the program's {!Ast.outputs}. *)

val equivalent : ?seed:int -> ?eps:float -> on:string list ->
  Ast.program -> Ast.program -> bool
(** Do the two programs compute the same final values for the matrices
    named in [on]?  Raises [Invalid_argument] if either program does
    not define one of them. *)

lib/frontend/opt.mli: Ast

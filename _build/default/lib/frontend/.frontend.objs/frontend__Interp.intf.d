lib/frontend/interp.mli: Ast Numeric

lib/frontend/interp.ml: Ast Char Hashtbl Kernels List Numeric Printf String

lib/frontend/opt.ml: Array Ast Hashtbl Int List Option Printf Set String

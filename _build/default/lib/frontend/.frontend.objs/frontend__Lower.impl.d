lib/frontend/lower.ml: Array Ast Format Hashtbl List Mdg Option

lib/frontend/parse.mli: Ast

lib/frontend/ast.mli: Format Mdg

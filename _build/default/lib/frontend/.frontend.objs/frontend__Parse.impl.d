lib/frontend/parse.ml: Ast Buffer List Printf String

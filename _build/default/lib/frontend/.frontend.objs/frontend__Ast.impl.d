lib/frontend/ast.ml: Array Format Hashtbl List Mdg Printf

lib/frontend/lower.mli: Ast Mdg

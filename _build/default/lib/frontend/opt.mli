(** Classic scalar optimisations over matrix programs, run before MDG
    lowering: fewer statements means fewer MDG nodes for the allocator
    and scheduler to place.

    Both passes are semantics-preserving with respect to the program's
    {e live-out} matrices — by default, the final value of every
    matrix name. *)

val dead_code_elimination : ?keep:string list -> Ast.program -> Ast.program
(** Remove statements whose results can never reach a live-out value.
    [keep] names the matrices whose final values must be preserved
    (default: {!Ast.outputs}).  Raises [Invalid_argument] if [keep]
    mentions an undefined matrix. *)

val common_subexpressions : ?keep:string list -> Ast.program -> Ast.program
(** Global value numbering: a statement whose right-hand side computes
    the same value as an earlier one (same operator on operands with
    the same value numbers; [+] is commutative, [-] and [*] are not;
    [init] is never merged) is deleted, and later reads of its target
    are redirected to the surviving name.  A statement is only reused
    while the surviving name still holds that value (redefinitions
    invalidate it), and statements defining a [keep] name are never
    deleted (default [keep]: nothing protected). *)

val optimise : ?keep:string list -> Ast.program -> Ast.program
(** [common_subexpressions] followed by [dead_code_elimination]. *)

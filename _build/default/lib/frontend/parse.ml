exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let is_ident s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_')
       s
  && not (s.[0] >= '0' && s.[0] <= '9')

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse_dist lineno = function
  | "@row" -> Ast.Row
  | "@col" -> Ast.Col
  | other -> fail lineno "expected @row or @col, got %s" other

let parse_stmt lineno toks =
  let stmt_of target rhs dist = Ast.stmt ?dist target rhs in
  let check_ident t =
    if not (is_ident t) then fail lineno "bad identifier %s" t;
    t
  in
  match toks with
  | [ t; "="; "init" ] -> stmt_of (check_ident t) Ast.Init None
  | [ t; "="; "init"; d ] ->
      stmt_of (check_ident t) Ast.Init (Some (parse_dist lineno d))
  | [ t; "="; a; op; b ] | [ t; "="; a; op; b; _ ] ->
      let dist =
        match toks with
        | [ _; _; _; _; _; d ] -> Some (parse_dist lineno d)
        | _ -> None
      in
      let a = check_ident a and b = check_ident b in
      let rhs =
        match op with
        | "+" -> Ast.Add (a, b)
        | "-" -> Ast.Sub (a, b)
        | "*" -> Ast.Mul (a, b)
        | other -> fail lineno "unknown operator %s" other
      in
      stmt_of (check_ident t) rhs dist
  | _ -> fail lineno "cannot parse statement"

let program_of_string text =
  let lines = String.split_on_char '\n' text in
  let size = ref None in
  let stmts = ref [] in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim (strip_comment raw) in
      if line <> "" then
        match tokens line with
        | [ "size"; n ] -> (
            if !size <> None then fail lineno "duplicate size directive";
            match int_of_string_opt n with
            | Some n when n >= 1 -> size := Some n
            | _ -> fail lineno "bad size %s" n)
        | toks ->
            if !size = None then fail lineno "size directive must come first";
            stmts := parse_stmt lineno toks :: !stmts)
    lines;
  match !size with
  | None -> fail 0 "missing size directive"
  | Some size -> Ast.program ~size (List.rev !stmts)

let program_to_string (p : Ast.program) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "size %d\n" p.size);
  List.iter
    (fun (s : Ast.stmt) ->
      let dist = match s.dist with Ast.Row -> "@row" | Ast.Col -> "@col" in
      let body =
        match s.rhs with
        | Ast.Init -> Printf.sprintf "%s = init" s.target
        | Ast.Add (a, b) -> Printf.sprintf "%s = %s + %s" s.target a b
        | Ast.Sub (a, b) -> Printf.sprintf "%s = %s - %s" s.target a b
        | Ast.Mul (a, b) -> Printf.sprintf "%s = %s * %s" s.target a b
      in
      Buffer.add_string buf (Printf.sprintf "%s %s\n" body dist))
    p.stmts;
  Buffer.contents buf

type distribution = Row | Col

type rhs =
  | Init
  | Add of string * string
  | Sub of string * string
  | Mul of string * string

type stmt = {
  target : string;
  rhs : rhs;
  dist : distribution;
}

type program = {
  size : int;
  stmts : stmt list;
}

let stmt ?(dist = Row) target rhs = { target; rhs; dist }

let reads s =
  match s.rhs with
  | Init -> []
  | Add (a, b) | Sub (a, b) | Mul (a, b) -> [ a; b ]

let program ~size stmts =
  if size < 1 then invalid_arg "Ast.program: size < 1";
  if stmts = [] then invalid_arg "Ast.program: empty program";
  let defined = Hashtbl.create 16 in
  List.iteri
    (fun k s ->
      if s.target = "" then
        invalid_arg (Printf.sprintf "Ast.program: statement %d has empty target" k);
      List.iter
        (fun operand ->
          if not (Hashtbl.mem defined operand) then
            invalid_arg
              (Printf.sprintf
                 "Ast.program: statement %d reads undefined matrix %s" k operand))
        (reads s);
      Hashtbl.replace defined s.target ())
    stmts;
  { size; stmts }

let defined_matrices p =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun s ->
      if Hashtbl.mem seen s.target then None
      else begin
        Hashtbl.add seen s.target ();
        Some s.target
      end)
    p.stmts

let outputs p =
  let stmts = Array.of_list p.stmts in
  let n = Array.length stmts in
  let last_def = Hashtbl.create 16 in
  Array.iteri (fun k s -> Hashtbl.replace last_def s.target k) stmts;
  let read_after name def_idx =
    let rec go k =
      k < n && (List.mem name (reads stmts.(k)) || go (k + 1))
    in
    go (def_idx + 1)
  in
  defined_matrices p
  |> List.filter (fun name -> not (read_after name (Hashtbl.find last_def name)))

let kernel_of_stmt ~size s : Mdg.Graph.kernel =
  match s.rhs with
  | Init -> Matrix_init size
  | Add _ | Sub _ -> Matrix_add size
  | Mul _ -> Matrix_multiply size

let pp_dist fmt = function
  | Row -> Format.fprintf fmt "row"
  | Col -> Format.fprintf fmt "col"

let pp_stmt fmt s =
  (match s.rhs with
  | Init -> Format.fprintf fmt "%s = init" s.target
  | Add (a, b) -> Format.fprintf fmt "%s = %s + %s" s.target a b
  | Sub (a, b) -> Format.fprintf fmt "%s = %s - %s" s.target a b
  | Mul (a, b) -> Format.fprintf fmt "%s = %s * %s" s.target a b);
  Format.fprintf fmt " @@%a" pp_dist s.dist

let pp fmt p =
  Format.fprintf fmt "@[<v>size %d@," p.size;
  List.iter (fun s -> Format.fprintf fmt "%a@," pp_stmt s) p.stmts;
  Format.fprintf fmt "@]"

module G = Mdg.Graph

type node_map = { node_of_stmt : int array }

let flow_dependences (p : Ast.program) =
  let last_writer = Hashtbl.create 16 in
  let deps = ref [] in
  List.iteri
    (fun k (s : Ast.stmt) ->
      List.iter
        (fun operand ->
          match Hashtbl.find_opt last_writer operand with
          | Some w -> deps := (w, k, operand) :: !deps
          | None ->
              (* Ast.program validation guarantees a writer exists. *)
              assert false)
        (Ast.reads s);
      Hashtbl.replace last_writer s.target k)
    p.stmts;
  List.rev !deps

let to_mdg (p : Ast.program) =
  let stmts = Array.of_list p.stmts in
  let b = G.create_builder () in
  let node_of_stmt =
    Array.mapi
      (fun k (s : Ast.stmt) ->
        let label = Format.asprintf "s%d: %a" k Ast.pp_stmt s in
        G.add_node b ~label ~kernel:(Ast.kernel_of_stmt ~size:p.size s))
      stmts
  in
  (* Merge dependences per (writer, reader) pair: byte counts add, and
     any 2D contribution makes the merged edge 2D. *)
  let merged : (int * int, float * G.transfer_kind) Hashtbl.t =
    Hashtbl.create 32
  in
  let operand_bytes = float_of_int (8 * p.size * p.size) in
  List.iter
    (fun (w, r, _operand) ->
      let kind : G.transfer_kind =
        if stmts.(w).Ast.dist = stmts.(r).Ast.dist then Oned else Twod
      in
      let bytes0, kind0 =
        Option.value (Hashtbl.find_opt merged (w, r)) ~default:(0.0, kind)
      in
      let kind = if kind0 = G.Twod || kind = G.Twod then G.Twod else G.Oned in
      Hashtbl.replace merged (w, r) (bytes0 +. operand_bytes, kind))
    (flow_dependences p);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged []
  |> List.sort compare
  |> List.iter (fun ((w, r), (bytes, kind)) ->
         G.add_edge b ~src:node_of_stmt.(w) ~dst:node_of_stmt.(r) ~bytes ~kind);
  (G.normalise (G.build b), { node_of_stmt })

let kernels (p : Ast.program) =
  List.map (Ast.kernel_of_stmt ~size:p.size) p.stmts |> List.sort_uniq compare

(** A miniature matrix-program IR — the front-end substrate the paper
    defers to future work (Section 1.2, step 1: "identification of the
    nodes and edges to be used in the MDG representation").

    A program is a sequence of whole-matrix statements over named N×N
    matrices.  Every statement corresponds to one loop nest (one MDG
    node); data dependences between statements become MDG edges. *)

type distribution =
  | Row  (** matrix distributed by blocks of rows *)
  | Col  (** matrix distributed by blocks of columns *)

type rhs =
  | Init                       (** initialise the target *)
  | Add of string * string     (** elementwise sum *)
  | Sub of string * string     (** elementwise difference *)
  | Mul of string * string     (** matrix product *)

type stmt = {
  target : string;
  rhs : rhs;
  dist : distribution;  (** distribution of the loop's iteration space *)
}

type program = {
  size : int;          (** all matrices are size×size *)
  stmts : stmt list;
}

val stmt : ?dist:distribution -> string -> rhs -> stmt
(** [dist] defaults to [Row]. *)

val program : size:int -> stmt list -> program
(** Validates the program:
    - [size >= 1] and at least one statement;
    - every operand is defined (written by an earlier statement);
    - no statement reads its own target before this definition exists.
    Raises [Invalid_argument] with a descriptive message otherwise. *)

val reads : stmt -> string list

val defined_matrices : program -> string list
(** In first-definition order. *)

val outputs : program -> string list
(** Matrices whose final value is never read by a later statement —
    the program's results, and the default preservation set for the
    optimiser. *)

val kernel_of_stmt : size:int -> stmt -> Mdg.Graph.kernel

val pp_stmt : Format.formatter -> stmt -> unit

val pp : Format.formatter -> program -> unit

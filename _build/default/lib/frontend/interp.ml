module Mat = Numeric.Mat

let name_seed seed name =
  (* FNV-1a over the name, mixed with the ambient seed. *)
  let h = ref 0x811C9DC5 in
  String.iter
    (fun c ->
      h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    name;
  !h lxor (seed * 0x9E3779B1) land 0x3FFFFFFF

let run ?(seed = 0) (p : Ast.program) =
  let env : (string, Mat.t) Hashtbl.t = Hashtbl.create 16 in
  let value name =
    match Hashtbl.find_opt env name with
    | Some m -> m
    | None -> assert false (* Ast.program validates defined-before-use *)
  in
  List.iter
    (fun (s : Ast.stmt) ->
      let result =
        match s.rhs with
        | Ast.Init ->
            Kernels.Dense.random_matrix ~seed:(name_seed seed s.target) p.size
        | Ast.Add (a, b) -> Mat.add (value a) (value b)
        | Ast.Sub (a, b) -> Mat.sub (value a) (value b)
        | Ast.Mul (a, b) -> Mat.matmul (value a) (value b)
      in
      Hashtbl.replace env s.target result)
    p.stmts;
  List.map (fun name -> (name, value name)) (Ast.defined_matrices p)

let outputs ?seed p =
  let finals = run ?seed p in
  let outs = Ast.outputs p in
  List.filter (fun (name, _) -> List.mem name outs) finals

let equivalent ?seed ?(eps = 1e-9) ~on p q =
  let vp = run ?seed p and vq = run ?seed q in
  let find prog finals name =
    match List.assoc_opt name finals with
    | Some m -> m
    | None ->
        invalid_arg
          (Printf.sprintf "Interp.equivalent: %s not defined in %s" name prog)
  in
  List.for_all
    (fun name ->
      Mat.approx_equal ~eps (find "first program" vp name)
        (find "second program" vq name))
    on

(** Textual front end for {!Ast} programs.

    Grammar (one item per line; blank lines and [#] comments ignored):

    {v
      size <n>
      <ident> = init            [@row | @col]
      <ident> = <ident> + <ident>   [@row | @col]
      <ident> = <ident> - <ident>   [@row | @col]
      <ident> = <ident> * <ident>   [@row | @col]
    v}

    The distribution annotation defaults to [@row]. *)

exception Parse_error of { line : int; message : string }

val program_of_string : string -> Ast.program
(** Raises [Parse_error] on malformed input and [Invalid_argument] if
    the parsed program fails {!Ast.program} validation. *)

val program_to_string : Ast.program -> string
(** Round-trippable pretty printer. *)

module G = Mdg.Graph
module M = Machine

let mpmd gt g sched =
  let procs = Schedule.machine_procs sched in
  let edges = Array.of_list (G.edges g) in
  (* Expand every edge into its message plan once, so send and receive
     sides agree exactly. *)
  let plans =
    Array.map
      (fun (e : G.edge) ->
        if e.bytes = 0.0 then []
        else
          M.Transfer_plan.messages ~kind:e.kind ~bytes:e.bytes
            ~senders:(Schedule.entry sched e.src).procs
            ~receivers:(Schedule.entry sched e.dst).procs)
      edges
  in
  let index = Hashtbl.create (Array.length edges) in
  Array.iteri (fun k (e : G.edge) -> Hashtbl.replace index (e.src, e.dst) k) edges;
  let edge_ids_in g node sel =
    List.map (fun (e : G.edge) -> Hashtbl.find index (e.src, e.dst)) (sel g node)
  in
  let code = Array.make procs [] in
  (* Entries are already sorted by start time; appending per node keeps
     each processor's ops in schedule order. *)
  List.iter
    (fun (entry : Schedule.entry) ->
      let node = G.node g entry.node in
      let nprocs = Array.length entry.procs in
      let compute_seconds =
        M.Ground_truth.kernel_time gt node.kernel ~procs:nprocs
      in
      Array.iter
        (fun p ->
          let recvs =
            List.concat_map
              (fun eid ->
                List.filter_map
                  (fun (m : M.Transfer_plan.message) ->
                    if m.dst_proc = p then
                      Some
                        (M.Program.Recv
                           { edge = eid; src_proc = m.src_proc; bytes = m.bytes })
                    else None)
                  plans.(eid))
              (edge_ids_in g entry.node G.preds)
          in
          let sends =
            List.concat_map
              (fun eid ->
                List.filter_map
                  (fun (m : M.Transfer_plan.message) ->
                    if m.src_proc = p then
                      Some
                        (M.Program.Send
                           { edge = eid; dst_proc = m.dst_proc; bytes = m.bytes })
                    else None)
                  plans.(eid))
              (edge_ids_in g entry.node G.succs)
          in
          let compute =
            if compute_seconds > 0.0 then
              [ M.Program.Compute { node = entry.node; seconds = compute_seconds } ]
            else []
          in
          code.(p) <- code.(p) @ recvs @ compute @ sends)
        entry.procs)
    (Schedule.entries sched);
  M.Program.make ~procs code

let all_procs procs = Array.init procs Fun.id

let spmd_schedule params g ~procs =
  if procs < 1 then invalid_arg "Codegen.spmd_schedule: procs < 1";
  let allocf _ = float_of_int procs in
  let t = ref 0.0 in
  let entries =
    List.map
      (fun i ->
        let w = Costmodel.Weights.node_weight params g ~alloc:allocf i in
        let start = !t in
        t := !t +. w;
        { Schedule.node = i; procs = all_procs procs; start; finish = !t })
      (Mdg.Analysis.topological_order g)
  in
  Schedule.make ~machine_procs:procs entries

let spmd gt g ~procs =
  if procs < 1 then invalid_arg "Codegen.spmd: procs < 1";
  let edges = Array.of_list (G.edges g) in
  let everyone = all_procs procs in
  let plans =
    Array.map
      (fun (e : G.edge) ->
        if e.bytes = 0.0 then []
        else
          M.Transfer_plan.messages ~kind:e.kind ~bytes:e.bytes ~senders:everyone
            ~receivers:everyone)
      edges
  in
  let code = Array.make procs [] in
  let order = Mdg.Analysis.topological_order g in
  List.iter
    (fun i ->
      let node = G.node g i in
      let compute_seconds = M.Ground_truth.kernel_time gt node.kernel ~procs in
      for p = 0 to procs - 1 do
        let recvs =
          List.concat
            (List.mapi
               (fun eid (e : G.edge) ->
                 if e.dst <> i then []
                 else
                   List.filter_map
                     (fun (m : M.Transfer_plan.message) ->
                       if m.dst_proc = p then
                         Some
                           (M.Program.Recv
                              { edge = eid; src_proc = m.src_proc; bytes = m.bytes })
                       else None)
                     plans.(eid))
               (Array.to_list edges))
        in
        let sends =
          List.concat
            (List.mapi
               (fun eid (e : G.edge) ->
                 if e.src <> i then []
                 else
                   List.filter_map
                     (fun (m : M.Transfer_plan.message) ->
                       if m.src_proc = p then
                         Some
                           (M.Program.Send
                              { edge = eid; dst_proc = m.dst_proc; bytes = m.bytes })
                       else None)
                     plans.(eid))
               (Array.to_list edges))
        in
        let compute =
          if compute_seconds > 0.0 then
            [ M.Program.Compute { node = i; seconds = compute_seconds } ]
          else []
        in
        code.(p) <- code.(p) @ recvs @ compute @ sends
      done)
    order;
  M.Program.make ~procs code

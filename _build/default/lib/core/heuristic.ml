module G = Mdg.Graph

type strategy =
  | Data_parallel
  | Level_uniform
  | Level_tau_proportional

let all = [ Data_parallel; Level_uniform; Level_tau_proportional ]

let name = function
  | Data_parallel -> "data-parallel (all nodes on p)"
  | Level_uniform -> "level-uniform split"
  | Level_tau_proportional -> "level tau-proportional split"

let levels g =
  let n = G.num_nodes g in
  let lvl = Array.make n 0 in
  List.iter
    (fun u ->
      List.iter
        (fun (e : G.edge) -> lvl.(e.dst) <- Int.max lvl.(e.dst) (lvl.(e.src) + 1))
        (G.succs g u))
    (Mdg.Analysis.topological_order g);
  lvl

let allocate params g ~procs strategy =
  if not (G.is_normalised g) then
    invalid_arg "Heuristic.allocate: graph must be normalised";
  if procs < 1 then invalid_arg "Heuristic.allocate: procs < 1";
  let n = G.num_nodes g in
  let p = float_of_int procs in
  match strategy with
  | Data_parallel -> Array.make n p
  | Level_uniform ->
      let lvl = levels g in
      let count = Hashtbl.create 16 in
      Array.iter
        (fun l ->
          Hashtbl.replace count l
            (1 + Option.value (Hashtbl.find_opt count l) ~default:0))
        lvl;
      Array.init n (fun i ->
          Float.max 1.0 (p /. float_of_int (Hashtbl.find count lvl.(i))))
  | Level_tau_proportional ->
      let lvl = levels g in
      let tau i = (Costmodel.Params.processing params (G.node g i).kernel).tau in
      let level_tau = Hashtbl.create 16 in
      Array.iteri
        (fun i l ->
          Hashtbl.replace level_tau l
            (tau i +. Option.value (Hashtbl.find_opt level_tau l) ~default:0.0))
        lvl;
      Array.init n (fun i ->
          let total = Hashtbl.find level_tau lvl.(i) in
          if total <= 0.0 then p
          else Float.max 1.0 (Float.min p (p *. tau i /. total)))

let evaluate_all params g ~procs =
  let g = G.normalise g in
  let entry label alloc =
    let phi = Allocation.evaluate params g ~procs ~alloc in
    let psa = Psa.schedule params g ~procs ~alloc in
    (label, phi, psa.t_psa)
  in
  let convex = Allocation.solve params g ~procs in
  entry "convex program (this paper)" convex.alloc
  :: List.map
       (fun strategy -> entry (name strategy) (allocate params g ~procs strategy))
       all

let check ~procs ~pb =
  if procs < 1 then invalid_arg "Bounds: procs < 1";
  if pb < 1 || pb > procs then invalid_arg "Bounds: pb outside [1, procs]"

let theorem1_factor ~procs ~pb =
  check ~procs ~pb;
  let p = float_of_int procs and b = float_of_int pb in
  1.0 +. (p /. (p -. b +. 1.0))

let theorem2_factor ~procs ~pb =
  check ~procs ~pb;
  let p = float_of_int procs and b = float_of_int pb in
  1.5 *. 1.5 *. (p /. b) ** 2.0

let theorem3_factor ~procs ~pb =
  theorem1_factor ~procs ~pb *. theorem2_factor ~procs ~pb

let optimal_pb ~procs =
  if procs < 1 then invalid_arg "Bounds.optimal_pb: procs < 1";
  let candidates = Numeric.Pow2.pow2_range procs in
  List.fold_left
    (fun best pb ->
      if theorem3_factor ~procs ~pb < theorem3_factor ~procs ~pb:best then pb
      else best)
    (List.hd candidates) candidates

let rounding_factor_bounds = (2.0 /. 3.0, 4.0 /. 3.0)

let check_theorem1 ~t_psa ~t_opt_lower ~procs ~pb =
  t_psa <= (theorem1_factor ~procs ~pb *. t_opt_lower) +. 1e-9

let check_theorem3 ~t_psa ~phi ~procs ~pb =
  t_psa <= (theorem3_factor ~procs ~pb *. phi) +. 1e-9

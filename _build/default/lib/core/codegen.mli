(** MPMD and SPMD code generation (paper Section 1.2, steps 4–5).

    Turns a schedule into the per-processor op sequences executed by
    {!Machine.Sim}: for every node, in schedule order, each of its
    processors receives its share of every incoming transfer, computes
    for the ground-truth kernel time at the node's allocation, then
    sends its share of every outgoing transfer.

    Transfers are expanded into point-to-point messages by
    {!Machine.Transfer_plan}; messages between a processor and itself
    are local copies, which is how SPMD programs (same distribution on
    the same processors for consecutive 1D-linked loops) avoid paying
    communication costs. *)

val mpmd :
  Machine.Ground_truth.t -> Mdg.Graph.t -> Schedule.t -> Machine.Program.t
(** Generate the MPMD program for a schedule of the graph.  Raises
    [Invalid_argument] if the schedule does not cover the graph. *)

val spmd :
  Machine.Ground_truth.t -> Mdg.Graph.t -> procs:int -> Machine.Program.t
(** The pure-data-parallel baseline: every node runs on all [procs]
    processors, in topological order. *)

val spmd_schedule :
  Costmodel.Params.t -> Mdg.Graph.t -> procs:int -> Schedule.t
(** The schedule the SPMD baseline corresponds to (model weights, all
    nodes on all processors, sequential). *)

module G = Mdg.Graph

type plan = {
  graph : G.t;
  params : Costmodel.Params.t;
  procs : int;
  allocation : Allocation.result;
  psa : Psa.result;
}

let plan ?solver_options ?psa_options params g ~procs =
  let g = G.normalise g in
  let allocation = Allocation.solve ?options:solver_options params g ~procs in
  let psa =
    Psa.schedule ?options:psa_options params g ~procs ~alloc:allocation.alloc
  in
  { graph = g; params; procs; allocation; psa }

let phi p = p.allocation.phi

let predicted_time p = p.psa.t_psa

let schedule p = p.psa.schedule

let simulate gt p = Machine.Sim.run gt (Codegen.mpmd gt p.graph p.psa.schedule)

let simulate_spmd gt g ~procs =
  let g = G.normalise g in
  Machine.Sim.run gt (Codegen.spmd gt g ~procs)

let serial_time gt g =
  Array.fold_left
    (fun acc (nd : G.node) ->
      acc +. Machine.Ground_truth.kernel_serial_time gt nd.kernel)
    0.0
    (G.nodes (G.normalise g))

type comparison = {
  procs : int;
  serial : float;
  mpmd_time : float;
  spmd_time : float;
  mpmd_speedup : float;
  spmd_speedup : float;
  mpmd_efficiency : float;
  spmd_efficiency : float;
  predicted : float;
  phi : float;
}

let compare_mpmd_spmd ?solver_options ?psa_options gt params g ~procs =
  let g = G.normalise g in
  let p = plan ?solver_options ?psa_options params g ~procs in
  let mpmd = simulate gt p in
  let spmd = simulate_spmd gt g ~procs in
  let serial = serial_time gt g in
  {
    procs;
    serial;
    mpmd_time = mpmd.finish_time;
    spmd_time = spmd.finish_time;
    mpmd_speedup = Numeric.Stats.speedup ~serial ~parallel:mpmd.finish_time;
    spmd_speedup = Numeric.Stats.speedup ~serial ~parallel:spmd.finish_time;
    mpmd_efficiency =
      Numeric.Stats.efficiency ~serial ~parallel:mpmd.finish_time ~procs;
    spmd_efficiency =
      Numeric.Stats.efficiency ~serial ~parallel:spmd.finish_time ~procs;
    predicted = predicted_time p;
    phi = phi p;
  }

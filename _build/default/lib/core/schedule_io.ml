exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let to_string s =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "schedule %d\n" (Schedule.machine_procs s));
  List.iter
    (fun (e : Schedule.entry) ->
      Buffer.add_string buf
        (Printf.sprintf "entry %d %.17g %.17g %s\n" e.node e.start e.finish
           (String.concat ","
              (Array.to_list (Array.map string_of_int e.procs)))))
    (Schedule.entries s);
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let machine = ref None in
  let entries = ref [] in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim raw in
      if line <> "" && line.[0] <> '#' then
        match String.split_on_char ' ' line with
        | [ "schedule"; procs ] -> (
            if !machine <> None then fail lineno "duplicate schedule header";
            match int_of_string_opt procs with
            | Some p when p >= 1 -> machine := Some p
            | _ -> fail lineno "bad processor count %S" procs)
        | [ "entry"; node; start; finish; procs ] -> (
            if !machine = None then fail lineno "entry before schedule header";
            let int_field name v =
              match int_of_string_opt v with
              | Some i -> i
              | None -> fail lineno "bad %s %S" name v
            in
            let float_field name v =
              match float_of_string_opt v with
              | Some f -> f
              | None -> fail lineno "bad %s %S" name v
            in
            let procs =
              String.split_on_char ',' procs
              |> List.map (int_field "processor")
              |> Array.of_list
            in
            entries :=
              {
                Schedule.node = int_field "node" node;
                start = float_field "start" start;
                finish = float_field "finish" finish;
                procs;
              }
              :: !entries)
        | _ -> fail lineno "cannot parse line")
    lines;
  match !machine with
  | None -> fail 0 "missing schedule header"
  | Some machine_procs -> Schedule.make ~machine_procs (List.rev !entries)

let save path s =
  let oc = open_out path in
  output_string oc (to_string s);
  close_out oc

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text

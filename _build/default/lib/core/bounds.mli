(** Optimality bounds from paper Section 5 (Theorems 1–3, Corollary 1).

    These quantify how far the PSA's finish time can be from the convex
    program's optimum Φ, and drive the choice of the processor bound PB
    used in the PSA's bounding step. *)

val theorem1_factor : procs:int -> pb:int -> float
(** [1 + p/(p - PB + 1)]: list-scheduling loss when no node uses more
    than [pb] of the [procs] processors (Theorem 1).  Requires
    [1 <= pb <= procs]. *)

val theorem2_factor : procs:int -> pb:int -> float
(** [(3/2)² · (p/PB)²]: loss from the rounding-off and bounding steps
    (Theorem 2). *)

val theorem3_factor : procs:int -> pb:int -> float
(** Product of the two: end-to-end guarantee
    [T_psa ≤ theorem3_factor · Φ] (Theorem 3). *)

val optimal_pb : procs:int -> int
(** The power of two in [1, procs] minimising {!theorem3_factor}
    (Corollary 1).  Requires [procs >= 1]. *)

val rounding_factor_bounds : float * float
(** [(2/3, 4/3)]: the worst-case multiplicative change of any node's
    allocation in the rounding-off step. *)

val check_theorem1 :
  t_psa:float -> t_opt_lower:float -> procs:int -> pb:int -> bool
(** [t_psa <= factor · t_opt_lower] — used by property tests with a
    lower bound on the optimal PB-bounded finish time. *)

val check_theorem3 : t_psa:float -> phi:float -> procs:int -> pb:int -> bool

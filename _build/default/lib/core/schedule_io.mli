(** Textual serialisation of schedules, so a plan computed once (the
    expensive convex solve) can be saved and re-simulated or inspected
    later.

    Format:

    {v
      schedule <machine_procs>
      entry <node> <start> <finish> <proc,proc,...>
      ...
    v}

    Round-trips: [of_string (to_string s)] reconstructs an equal
    schedule. *)

exception Parse_error of { line : int; message : string }

val to_string : Schedule.t -> string

val of_string : string -> Schedule.t
(** Raises {!Parse_error} on malformed input and [Invalid_argument] if
    the entries fail {!Schedule.make} validation. *)

val save : string -> Schedule.t -> unit

val load : string -> Schedule.t

(** Schedules: the output of the PSA (paper Section 3).

    A schedule assigns each MDG node a set of physical processors and a
    [start, finish) interval.  Zero-duration entries (dummy nodes) are
    permitted. *)

type entry = {
  node : int;
  procs : int array;   (** sorted, distinct physical processor ids *)
  start : float;
  finish : float;
}

type t

val make : machine_procs:int -> entry list -> t
(** Builds and validates basic well-formedness: every processor id is
    inside the machine, intervals are ordered, one entry per node.
    Raises [Invalid_argument] otherwise. *)

val machine_procs : t -> int

val entries : t -> entry list
(** Sorted by start time (ties by node id). *)

val entry : t -> int -> entry
(** Entry for a node id; raises [Not_found]. *)

val makespan : t -> float

val num_entries : t -> int

val allocation : t -> int -> int
(** Number of processors used by a node. *)

val validate :
  Costmodel.Params.t -> Mdg.Graph.t -> t -> (unit, string list) result
(** Deep validation against the graph and cost model:
    - every graph node is scheduled;
    - no processor runs two nodes at once;
    - precedence: a node starts no earlier than each predecessor's
      finish plus the network delay [t^D] under the schedule's
      allocation;
    - each entry's duration equals the model node weight [Tᵢ] under
      the schedule's allocation (within tolerance). *)

val busy_area : t -> float
(** [Σ (finish - start)·|procs|] over entries — the processor-time
    area actually reserved by the schedule. *)

val pp : Format.formatter -> t -> unit

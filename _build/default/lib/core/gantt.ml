let symbol k =
  let alphabet = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz" in
  alphabet.[k mod String.length alphabet]

let of_schedule ?(width = 72) g sched =
  if width < 8 then invalid_arg "Gantt.of_schedule: width too small";
  let span = Schedule.makespan sched in
  let buf = Buffer.create 1024 in
  let procs = Schedule.machine_procs sched in
  if span <= 0.0 then Buffer.add_string buf "(empty schedule)\n"
  else begin
    let entries = Schedule.entries sched in
    for p = 0 to procs - 1 do
      Buffer.add_string buf (Printf.sprintf "P%02d |" p);
      for c = 0 to width - 1 do
        let t = span *. (float_of_int c +. 0.5) /. float_of_int width in
        let here =
          List.find_opt
            (fun (e : Schedule.entry) ->
              e.start <= t && t < e.finish
              && Array.exists (( = ) p) e.procs)
            entries
        in
        Buffer.add_char buf
          (match here with Some e -> symbol e.node | None -> '.')
      done;
      Buffer.add_string buf "|\n"
    done;
    Buffer.add_string buf
      (Printf.sprintf "     0%*s\n" width (Printf.sprintf "%.4f s" span));
    Buffer.add_string buf "legend:\n";
    List.iter
      (fun (e : Schedule.entry) ->
        if e.finish > e.start then
          Buffer.add_string buf
            (Printf.sprintf "  %c = [%d] %s on %d procs, %.4f .. %.4f\n"
               (symbol e.node) e.node (Mdg.Graph.node g e.node).label
               (Array.length e.procs) e.start e.finish))
      entries
  end;
  Buffer.contents buf

let of_sim ?(width = 72) (r : Machine.Sim.result) =
  if width < 8 then invalid_arg "Gantt.of_sim: width too small";
  let span = r.finish_time in
  let buf = Buffer.create 1024 in
  if span <= 0.0 then Buffer.add_string buf "(empty trace)\n"
  else begin
    let procs = Array.length r.busy in
    for p = 0 to procs - 1 do
      Buffer.add_string buf (Printf.sprintf "P%02d |" p);
      for c = 0 to width - 1 do
        let t = span *. (float_of_int c +. 0.5) /. float_of_int width in
        let here =
          List.find_opt
            (fun (s : Machine.Sim.segment) ->
              s.proc = p && s.start <= t && t < s.finish)
            r.segments
        in
        Buffer.add_char buf
          (match here with
          | Some { activity = Busy_compute _; _ } -> 'c'
          | Some { activity = Busy_send _; _ } -> 's'
          | Some { activity = Busy_recv _; _ } -> 'r'
          | Some { activity = Waiting _; _ } -> 'w'
          | None -> '.')
      done;
      Buffer.add_string buf "|\n"
    done;
    Buffer.add_string buf
      (Printf.sprintf "     0%*s\n" width (Printf.sprintf "%.4f s" span));
    Buffer.add_string buf
      "legend: c = compute, s = send, r = receive, w = waiting, . = idle\n"
  end;
  Buffer.contents buf

let allocation_table g ~real ~rounded =
  let n = Mdg.Graph.num_nodes g in
  if Array.length real <> n || Array.length rounded <> n then
    invalid_arg "Gantt.allocation_table: length mismatch";
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-4s %-22s %10s %8s\n" "node" "label" "convex p_i" "rounded");
  for i = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "%-4d %-22s %10.3f %8d\n" i
         (Mdg.Graph.node g i).label real.(i) rounded.(i))
  done;
  Buffer.contents buf

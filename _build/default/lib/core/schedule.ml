type entry = {
  node : int;
  procs : int array;
  start : float;
  finish : float;
}

type t = {
  machine_procs : int;
  by_node : (int, entry) Hashtbl.t;
  ordered : entry list;
}

let make ~machine_procs entries =
  if machine_procs < 1 then invalid_arg "Schedule.make: machine_procs < 1";
  let by_node = Hashtbl.create (List.length entries) in
  List.iter
    (fun e ->
      if Hashtbl.mem by_node e.node then
        invalid_arg
          (Printf.sprintf "Schedule.make: node %d scheduled twice" e.node);
      if Array.length e.procs = 0 then
        invalid_arg (Printf.sprintf "Schedule.make: node %d has no processors" e.node);
      let sorted = Array.copy e.procs in
      Array.sort Int.compare sorted;
      if sorted <> e.procs then
        invalid_arg (Printf.sprintf "Schedule.make: node %d processors not sorted" e.node);
      Array.iteri
        (fun k p ->
          if p < 0 || p >= machine_procs then
            invalid_arg
              (Printf.sprintf "Schedule.make: node %d uses processor %d outside machine" e.node p);
          if k > 0 && sorted.(k - 1) = p then
            invalid_arg
              (Printf.sprintf "Schedule.make: node %d lists processor %d twice" e.node p))
        sorted;
      if
        e.start < 0.0 || e.finish < e.start
        || not (Float.is_finite e.start && Float.is_finite e.finish)
      then
        invalid_arg (Printf.sprintf "Schedule.make: node %d has a bad interval" e.node);
      Hashtbl.add by_node e.node e)
    entries;
  let ordered =
    List.sort (fun a b -> compare (a.start, a.node) (b.start, b.node)) entries
  in
  { machine_procs; by_node; ordered }

let machine_procs t = t.machine_procs

let entries t = t.ordered

let entry t node =
  match Hashtbl.find_opt t.by_node node with
  | Some e -> e
  | None -> raise Not_found

let makespan t = List.fold_left (fun acc e -> Float.max acc e.finish) 0.0 t.ordered

let num_entries t = List.length t.ordered

let allocation t node = Array.length (entry t node).procs

let busy_area t =
  List.fold_left
    (fun acc e -> acc +. ((e.finish -. e.start) *. float_of_int (Array.length e.procs)))
    0.0 t.ordered

let overlap a b = a.start < b.finish && b.start < a.finish

let shares_proc a b =
  Array.exists (fun p -> Array.exists (( = ) p) b.procs) a.procs

let validate params g t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let n = Mdg.Graph.num_nodes g in
  for i = 0 to n - 1 do
    if not (Hashtbl.mem t.by_node i) then err "node %d is not scheduled" i
  done;
  if !errors = [] then begin
    let alloc i = float_of_int (allocation t i) in
    (* Processor exclusivity: zero-duration entries cannot conflict. *)
    let es = Array.of_list t.ordered in
    Array.iteri
      (fun k a ->
        for l = k + 1 to Array.length es - 1 do
          let b = es.(l) in
          if overlap a b && shares_proc a b then
            err "nodes %d and %d overlap on a shared processor" a.node b.node
        done)
      es;
    (* Precedence with network delays. *)
    List.iter
      (fun (e : Mdg.Graph.edge) ->
        let src = entry t e.src and dst = entry t e.dst in
        let delay = Costmodel.Weights.edge_weight params ~alloc e in
        let eps = 1e-9 *. (1.0 +. Float.abs src.finish) in
        if dst.start +. eps < src.finish +. delay then
          err "edge %d->%d violated: dst starts %.9g before %.9g" e.src e.dst
            dst.start (src.finish +. delay))
      (Mdg.Graph.edges g);
    (* Durations match the model's node weights. *)
    for i = 0 to n - 1 do
      let e = entry t i in
      let w = Costmodel.Weights.node_weight params g ~alloc i in
      let d = e.finish -. e.start in
      if Float.abs (d -. w) > 1e-9 *. (1.0 +. w) then
        err "node %d has duration %.9g but model weight %.9g" i d w
    done
  end;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let pp fmt t =
  Format.fprintf fmt "@[<v>schedule on %d processors, makespan %.6f s@,"
    t.machine_procs (makespan t);
  List.iter
    (fun e ->
      Format.fprintf fmt "  node %2d on %2d procs [%s] : %.6f .. %.6f@," e.node
        (Array.length e.procs)
        (String.concat ","
           (Array.to_list (Array.map string_of_int e.procs)))
        e.start e.finish)
    t.ordered;
  Format.fprintf fmt "@]"

lib/core/bounds.ml: List Numeric

lib/core/allocation.mli: Convex Costmodel Mdg

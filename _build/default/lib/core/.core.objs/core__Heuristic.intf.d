lib/core/heuristic.mli: Costmodel Mdg

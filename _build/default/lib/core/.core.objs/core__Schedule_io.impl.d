lib/core/schedule_io.ml: Array Buffer List Printf Schedule String

lib/core/codegen.mli: Costmodel Machine Mdg Schedule

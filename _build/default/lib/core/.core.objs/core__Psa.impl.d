lib/core/psa.ml: Array Bounds Costmodel Float Int List Mdg Numeric Schedule Set

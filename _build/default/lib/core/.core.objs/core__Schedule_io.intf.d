lib/core/schedule_io.mli: Schedule

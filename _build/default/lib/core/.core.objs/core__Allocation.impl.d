lib/core/allocation.ml: Array Convex Costmodel List Mdg Numeric Option

lib/core/heuristic.ml: Allocation Array Costmodel Float Hashtbl Int List Mdg Option Psa

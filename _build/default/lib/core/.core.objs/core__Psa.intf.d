lib/core/psa.mli: Costmodel Mdg Schedule

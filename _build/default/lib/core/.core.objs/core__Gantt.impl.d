lib/core/gantt.ml: Array Buffer List Machine Mdg Printf Schedule String

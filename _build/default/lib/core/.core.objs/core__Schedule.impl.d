lib/core/schedule.ml: Array Costmodel Float Format Hashtbl Int List Mdg Printf String

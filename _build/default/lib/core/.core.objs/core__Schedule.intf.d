lib/core/schedule.mli: Costmodel Format Mdg

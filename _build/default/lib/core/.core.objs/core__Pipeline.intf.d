lib/core/pipeline.mli: Allocation Convex Costmodel Machine Mdg Psa Schedule

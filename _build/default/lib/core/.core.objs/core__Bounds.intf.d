lib/core/bounds.mli:

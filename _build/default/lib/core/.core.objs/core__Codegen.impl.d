lib/core/codegen.ml: Array Costmodel Fun Hashtbl List Machine Mdg Schedule

lib/core/gantt.mli: Machine Mdg Schedule

lib/core/pipeline.ml: Allocation Array Codegen Costmodel Machine Mdg Numeric Psa

(** ASCII Gantt charts (paper Figure 7 style). *)

val of_schedule : ?width:int -> Mdg.Graph.t -> Schedule.t -> string
(** One row per processor; each occupied time slot shows a symbol for
    the node running there, '.' for idle.  A legend maps symbols to
    node labels with their allocation and interval. *)

val of_sim : ?width:int -> Machine.Sim.result -> string
(** Same rendering from a simulation trace: 'c'/'s'/'r'/'w' mark
    compute, send, receive and waiting activity. *)

val allocation_table :
  Mdg.Graph.t -> real:float array -> rounded:int array -> string
(** Side-by-side table of the convex program's real allocation and the
    PSA's rounded/bounded allocation, one row per node. *)

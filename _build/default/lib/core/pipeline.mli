(** End-to-end compilation pipeline: the composition the PARADIGM
    compiler performs (paper Section 1.2).

    [plan] runs allocation (convex program) and scheduling (PSA);
    [simulate] generates the MPMD program and executes it on the
    simulated machine; [simulate_spmd] runs the pure-data-parallel
    baseline the paper compares against. *)

type plan = {
  graph : Mdg.Graph.t;
  params : Costmodel.Params.t;
  procs : int;
  allocation : Allocation.result;
  psa : Psa.result;
}

val plan :
  ?solver_options:Convex.Solver.options ->
  ?psa_options:Psa.options ->
  Costmodel.Params.t ->
  Mdg.Graph.t ->
  procs:int ->
  plan
(** Normalises the graph if necessary, solves the allocation problem
    and runs the PSA. *)

val phi : plan -> float
(** Φ: the convex program's optimal finish time. *)

val predicted_time : plan -> float
(** T_psa: the schedule's (model-)predicted program finish time. *)

val schedule : plan -> Schedule.t

val simulate : Machine.Ground_truth.t -> plan -> Machine.Sim.result
(** Generate the MPMD program and execute it on the machine. *)

val simulate_spmd :
  Machine.Ground_truth.t -> Mdg.Graph.t -> procs:int -> Machine.Sim.result
(** Run the SPMD baseline of the (normalised) graph. *)

val serial_time : Machine.Ground_truth.t -> Mdg.Graph.t -> float
(** Measured single-processor execution time: sum of kernel serial
    times, no communication.  The speedup baseline of Figure 8. *)

type comparison = {
  procs : int;
  serial : float;
  mpmd_time : float;
  spmd_time : float;
  mpmd_speedup : float;
  spmd_speedup : float;
  mpmd_efficiency : float;
  spmd_efficiency : float;
  predicted : float;   (** T_psa *)
  phi : float;
}

val compare_mpmd_spmd :
  ?solver_options:Convex.Solver.options ->
  ?psa_options:Psa.options ->
  Machine.Ground_truth.t ->
  Costmodel.Params.t ->
  Mdg.Graph.t ->
  procs:int ->
  comparison
(** The full Figure 8 / Figure 9 / Table 3 measurement for one machine
    size. *)

(** Heuristic processor-allocation baselines.

    The paper's key claim for its allocation step is that an exact
    convex program beats the heuristics of earlier work (its reference
    [6], Ramaswamy & Banerjee ICPP'93, and the processing-cost-only
    analysis of Prasanna & Agarwal).  These strategies reproduce that
    class of heuristic so the benefit can be quantified (bench target
    [heuristics]):

    - {!Data_parallel}: every node uses all processors — the SPMD
      allocation.
    - {!Level_uniform}: nodes at the same depth level split the
      machine evenly (pure functional parallelism within a level).
    - {!Level_tau_proportional}: nodes at the same level split the
      machine in proportion to their serial times, the natural
      work-balancing heuristic when transfer costs are ignored.

    All strategies return real-valued allocations in [1, p] suitable
    for {!Psa.schedule}, like {!Allocation.solve}. *)

type strategy =
  | Data_parallel
  | Level_uniform
  | Level_tau_proportional

val all : strategy list

val name : strategy -> string

val allocate :
  Costmodel.Params.t -> Mdg.Graph.t -> procs:int -> strategy -> float array
(** Requires a normalised graph.  Raises [Invalid_argument]
    otherwise. *)

val evaluate_all :
  Costmodel.Params.t ->
  Mdg.Graph.t ->
  procs:int ->
  (string * float * float) list
(** For every strategy plus the convex optimum: [(name, phi_at_alloc,
    t_psa)] — the objective value of its allocation and the finish
    time after the PSA.  Sorted as [all] with the convex result
    first. *)

(** Posynomial functions: finite sums of monomials [c · Π pᵢ^aᵢ] with
    positive coefficients [c] and arbitrary real exponents [aᵢ].

    Posynomials are the function class of the paper's Lemmas 1 and 2:
    every processing/data-transfer cost must be posynomial so that the
    log-substituted allocation problem is convex (geometric
    programming, Ecker 1980).  This module provides the algebra needed
    to build those cost functions and machine-check their claimed
    properties in the test suite. *)

type monomial = { coeff : float; expts : (int * float) list }
(** [coeff] must be positive and finite; [expts] maps variable index to
    exponent. *)

type t

val zero : t
(** The empty posynomial (identically 0). *)

val of_monomials : monomial list -> t
(** Normalises: merges monomials with identical exponent vectors and
    drops nothing else.  Raises [Invalid_argument] on non-positive
    coefficients. *)

val monomials : t -> monomial list

val constant : float -> t
(** Raises on negative constants; [constant 0.] is [zero]. *)

val var : int -> t
(** The single variable [pᵢ]. *)

val monomial : float -> (int * float) list -> t

val add : t -> t -> t

val sum : t list -> t

val mul : t -> t -> t
(** Product of posynomials (still a posynomial). *)

val scale : float -> t -> t
(** Non-negative scaling. *)

val mul_var : int -> float -> t -> t
(** [mul_var i a f] multiplies every monomial by [pᵢ^a] — used for the
    paper's condition (2), e.g. checking that [t^C·pᵢ] is posynomial. *)

val pow : t -> int -> t
(** Non-negative integer power. *)

val eval : t -> Numeric.Vec.t -> float
(** Evaluate at a point in p-space; all components must be positive. *)

val to_expr : t -> Expr.t
(** Lower to the convex expression DAG (x-space). *)

val degree_in : int -> t -> float * float
(** [(min, max)] exponent of variable [i] across monomials; [(0., 0.)]
    for [zero] or unused variables. *)

val is_constant : t -> bool

val pp : Format.formatter -> t -> unit

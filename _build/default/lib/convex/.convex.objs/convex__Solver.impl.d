lib/convex/solver.ml: Array Expr Float Numeric

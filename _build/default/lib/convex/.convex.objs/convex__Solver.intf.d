lib/convex/solver.mli: Expr Numeric

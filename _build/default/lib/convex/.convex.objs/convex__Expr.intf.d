lib/convex/expr.mli: Format Numeric

lib/convex/expr.ml: Array Float Format Hashtbl Int List Numeric Option Printf

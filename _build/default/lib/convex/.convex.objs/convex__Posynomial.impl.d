lib/convex/posynomial.ml: Array Expr Float Format Hashtbl Int List Numeric Option

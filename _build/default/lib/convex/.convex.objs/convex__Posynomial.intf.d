lib/convex/posynomial.mli: Expr Format Numeric

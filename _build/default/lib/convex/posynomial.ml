module Vec = Numeric.Vec

type monomial = { coeff : float; expts : (int * float) list }

(* Invariant: each monomial's [expts] is sorted by variable index with
   no duplicates and no zero exponents; coefficients are positive; no
   two monomials share an exponent vector. *)
type t = monomial list

let normalise_expts expts =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (i, a) ->
      if i < 0 then invalid_arg "Posynomial: negative variable index";
      let cur = Option.value (Hashtbl.find_opt tbl i) ~default:0.0 in
      Hashtbl.replace tbl i (cur +. a))
    expts;
  Hashtbl.fold (fun i a acc -> if a = 0.0 then acc else (i, a) :: acc) tbl []
  |> List.sort (fun (i, _) (j, _) -> Int.compare i j)

let zero : t = []

let of_monomials ms =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun { coeff; expts } ->
      if not (Float.is_finite coeff) || coeff <= 0.0 then
        invalid_arg "Posynomial.of_monomials: non-positive coefficient";
      let key = normalise_expts expts in
      let cur = Option.value (Hashtbl.find_opt tbl key) ~default:0.0 in
      Hashtbl.replace tbl key (cur +. coeff))
    ms;
  Hashtbl.fold (fun expts coeff acc -> { coeff; expts } :: acc) tbl []
  |> List.sort compare

let monomials t = t

let constant c =
  if not (Float.is_finite c) || c < 0.0 then
    invalid_arg "Posynomial.constant: negative constant";
  if c = 0.0 then zero else [ { coeff = c; expts = [] } ]

let var i = [ { coeff = 1.0; expts = [ (i, 1.0) ] } ]

let monomial coeff expts = of_monomials [ { coeff; expts } ]

let add a b = of_monomials (a @ b)

let sum ts = of_monomials (List.concat ts)

let mul a b =
  of_monomials
    (List.concat_map
       (fun ma ->
         List.map
           (fun mb ->
             { coeff = ma.coeff *. mb.coeff; expts = ma.expts @ mb.expts })
           b)
       a)

let scale c t =
  if not (Float.is_finite c) || c < 0.0 then
    invalid_arg "Posynomial.scale: negative factor";
  if c = 0.0 then zero
  else List.map (fun m -> { m with coeff = c *. m.coeff }) t

let mul_var i a t =
  of_monomials (List.map (fun m -> { m with expts = (i, a) :: m.expts }) t)

let rec pow t n =
  if n < 0 then invalid_arg "Posynomial.pow: negative power";
  if n = 0 then constant 1.0 else mul t (pow t (n - 1))

let eval t p =
  Array.iter
    (fun v ->
      if v <= 0.0 then invalid_arg "Posynomial.eval: non-positive point")
    p;
  List.fold_left
    (fun acc { coeff; expts } ->
      acc
      +. coeff
         *. List.fold_left
              (fun prod (i, a) ->
                if i >= Vec.dim p then
                  invalid_arg "Posynomial.eval: variable out of range"
                else prod *. (p.(i) ** a))
              1.0 expts)
    0.0 t

let to_expr t =
  match t with
  | [] -> Expr.const 0.0
  | ms ->
      Expr.sum
        (List.map (fun { coeff; expts } -> Expr.term ~coeff ~expts) ms)

let degree_in i t =
  let expt m = Option.value (List.assoc_opt i m.expts) ~default:0.0 in
  match t with
  | [] -> (0.0, 0.0)
  | m :: rest ->
      List.fold_left
        (fun (lo, hi) m' ->
          let a = expt m' in
          (Float.min lo a, Float.max hi a))
        (expt m, expt m)
        rest

let is_constant t = List.for_all (fun m -> m.expts = []) t

let pp fmt t =
  match t with
  | [] -> Format.fprintf fmt "0"
  | ms ->
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.fprintf fmt " + ")
        (fun fmt { coeff; expts } ->
          Format.fprintf fmt "%g" coeff;
          List.iter (fun (i, a) -> Format.fprintf fmt "·p%d^%g" i a) expts)
        fmt ms

module G = Mdg.Graph

type datasheet = {
  flop_time : float;
  mem_op_time : float;
  store_time : float;
  loop_startup : float;
  gather_per_byte : float;
  nominal_transfer : Params.transfer;
}

(* Nominal constants one would read off CM-5 documentation: a ~33 MHz
   SPARC node with vector units disabled sustains roughly 1.8 Mflop/s
   on compiled dense loops; CMMD quotes sub-millisecond message
   latencies.  None of these are fitted against the simulator. *)
let cm5_datasheet =
  {
    flop_time = 560e-9;
    mem_op_time = 900e-9;
    store_time = 400e-9;
    loop_startup = 150e-6;
    gather_per_byte = 1.0e-6;
    nominal_transfer =
      { t_ss = 700e-6; t_ps = 500e-9; t_sr = 500e-6; t_pr = 400e-9; t_n = 0.0 };
  }

let amdahl_of ~serial ~parallel : Params.processing =
  let tau = serial +. parallel in
  if tau <= 0.0 then { alpha = 0.0; tau = 0.0 }
  else { alpha = serial /. tau; tau }

let estimate_processing ds kernel : Params.processing =
  match kernel with
  | G.Dummy -> { alpha = 0.0; tau = 0.0 }
  | G.Synthetic { alpha; tau } -> { alpha; tau }
  | G.Matrix_init n ->
      let elems = float_of_int (n * n) in
      amdahl_of ~serial:ds.loop_startup ~parallel:(elems *. ds.store_time)
  | G.Matrix_add n ->
      let elems = float_of_int (n * n) in
      amdahl_of ~serial:ds.loop_startup ~parallel:(elems *. ds.mem_op_time)
  | G.Matrix_multiply _ ->
      (* 2n^3 flops of parallelisable work; gathering the second
         operand's blocks moves ~8n^2 bytes per processor regardless of
         p, which is what shows up as the loop's serial fraction. *)
      let flops = G.kernel_flops kernel in
      let gather_bytes = G.kernel_bytes kernel in
      amdahl_of
        ~serial:(ds.loop_startup +. (gather_bytes *. ds.gather_per_byte))
        ~parallel:(flops *. ds.flop_time)

let estimate_transfer ds = ds.nominal_transfer

let params ds kernels =
  let t = Params.make ~transfer:(estimate_transfer ds) in
  List.iter
    (fun kernel ->
      match kernel with
      | G.Synthetic _ | G.Dummy -> ()
      | G.Matrix_init _ | G.Matrix_add _ | G.Matrix_multiply _ ->
          Params.set_processing t kernel (estimate_processing ds kernel))
    (List.sort_uniq compare kernels);
  t

(** Concrete MDG weights under a given processor allocation.

    Combines {!Processing} and {!Transfer} into the paper's node weight
    [Tᵢ = Σ t^R + t^C + Σ t^S] and edge weight [t^D], evaluated at a
    concrete (real- or integer-valued) allocation.  Used by the PSA to
    recompute weights after rounding/bounding, and by the predictor. *)

val node_weight :
  Params.t -> Mdg.Graph.t -> alloc:(int -> float) -> int -> float
(** [node_weight params g ~alloc i] is [Tᵢ]: receive components of all
    incoming transfers + processing cost + send components of all
    outgoing transfers, at the given allocation. *)

val processing_only :
  Params.t -> Mdg.Graph.t -> alloc:(int -> float) -> int -> float
(** Just [t^C]. *)

val edge_weight : Params.t -> alloc:(int -> float) -> Mdg.Graph.edge -> float
(** [t^D] for the edge. *)

val average_finish_time :
  Params.t -> Mdg.Graph.t -> alloc:(int -> float) -> procs:int -> float
(** [A_p = (1/p)·Σ Tᵢ·pᵢ]. *)

val critical_path_time :
  Params.t -> Mdg.Graph.t -> alloc:(int -> float) -> float
(** [C_p]: longest-path finish time under the allocation. *)

val lower_bound :
  Params.t -> Mdg.Graph.t -> alloc:(int -> float) -> procs:int -> float
(** [max(A_p, C_p)]: the paper's Φ evaluated at a specific allocation
    (the convex program minimises this quantity over allocations). *)

val serial_time : Params.t -> Mdg.Graph.t -> float
(** Total single-processor execution time: [Σ τᵢ], no transfers (on
    one processor all data is local).  The speedup baseline used in
    Figure 8. *)

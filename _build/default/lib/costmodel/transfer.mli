(** Data-transfer cost model (paper eqs. 2–3, Lemma 2).

    A transfer of an [L]-byte array from a node on [p_i] processors to a
    node on [p_j] processors has three components:
    - send cost [t^S] (charged to the sending node's weight),
    - network cost [t^D] (the edge weight),
    - receive cost [t^R] (charged to the receiving node's weight).

    The 1D form (ROW2ROW / COL2COL) applies when the distribution
    dimension is unchanged; the 2D form (ROW2COL / COL2ROW) when it
    flips.  All components are posynomial in [p_i, p_j] (Lemma 2) with
    the caveat, noted in DESIGN.md, that the 1D [t^D] involves
    [1/max(p_i,p_j)], which we bound above by [1/√(p_i·p_j)] inside the
    convex objective ([t_n = 0] on the CM-5, so the surrogate is
    inactive in all paper experiments). *)

type components = { send : float; network : float; receive : float }

val components :
  Params.transfer ->
  kind:Mdg.Graph.transfer_kind ->
  bytes:float ->
  p_send:float ->
  p_recv:float ->
  components
(** Exact model values for real processor counts [>= 1].
    Zero-byte transfers (dummy edges) cost zero in every component. *)

val total : components -> float

(** {1 Convex-expression forms}

    Variables are the log-processor-counts of the two endpoint nodes;
    [vi] is the sender's variable index, [vj] the receiver's. *)

val send_expr :
  Params.transfer ->
  kind:Mdg.Graph.transfer_kind ->
  bytes:float ->
  vi:int ->
  vj:int ->
  Convex.Expr.t

val receive_expr :
  Params.transfer ->
  kind:Mdg.Graph.transfer_kind ->
  bytes:float ->
  vi:int ->
  vj:int ->
  Convex.Expr.t

val network_expr :
  Params.transfer ->
  kind:Mdg.Graph.transfer_kind ->
  bytes:float ->
  vi:int ->
  vj:int ->
  Convex.Expr.t
(** Uses the posynomial surrogate [L·t_n/√(p_i·p_j)] for the 1D case. *)

val send_times_p_expr :
  Params.transfer ->
  kind:Mdg.Graph.transfer_kind ->
  bytes:float ->
  vi:int ->
  vj:int ->
  Convex.Expr.t
(** [t^S·p_i], needed by the average-finish-time term (condition 2 of
    Section 2). *)

val receive_times_p_expr :
  Params.transfer ->
  kind:Mdg.Graph.transfer_kind ->
  bytes:float ->
  vi:int ->
  vj:int ->
  Convex.Expr.t
(** [t^R·p_j]. *)

(** {1 Posynomial forms (for Lemma 2 property checks)} *)

val send_posynomial_2d :
  Params.transfer -> bytes:float -> vi:int -> vj:int -> Convex.Posynomial.t

val receive_posynomial_2d :
  Params.transfer -> bytes:float -> vi:int -> vj:int -> Convex.Posynomial.t

val network_posynomial_2d :
  Params.transfer -> bytes:float -> vi:int -> vj:int -> Convex.Posynomial.t

lib/costmodel/params.mli: Format Mdg

lib/costmodel/static_estimate.mli: Mdg Params

lib/costmodel/fit.ml: Array Float Fun List Mdg Numeric Params Processing Transfer

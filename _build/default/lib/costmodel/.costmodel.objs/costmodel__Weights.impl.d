lib/costmodel/weights.ml: Array Float List Mdg Params Processing Transfer

lib/costmodel/transfer.mli: Convex Mdg Params

lib/costmodel/processing.mli: Convex Params

lib/costmodel/static_estimate.ml: List Mdg Params

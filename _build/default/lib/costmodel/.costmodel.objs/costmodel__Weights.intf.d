lib/costmodel/weights.mli: Mdg Params

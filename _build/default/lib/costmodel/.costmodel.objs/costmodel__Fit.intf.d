lib/costmodel/fit.mli: Mdg Params Transfer

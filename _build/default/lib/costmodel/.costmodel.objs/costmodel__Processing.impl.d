lib/costmodel/processing.ml: Convex Params

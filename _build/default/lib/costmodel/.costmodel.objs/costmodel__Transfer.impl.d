lib/costmodel/transfer.ml: Convex Float Mdg Params

lib/costmodel/params.ml: Float Format Hashtbl List Mdg Printf

(** Static (measurement-free) cost estimation.

    The paper obtains its model parameters by the training-sets
    approach — running microbenchmarks on the CM-5 — and notes
    (Section 1.2, item 2) that the static estimation techniques of
    Gupta and Banerjee could eliminate the measurements.  This module
    provides that alternative: it derives Amdahl processing parameters
    and transfer parameters purely from a machine {e datasheet} (per-
    operation costs a vendor publishes) and the structure of each
    kernel (operation counts, intra-loop communication volume).

    Static estimates are deliberately rougher than fitted ones — the
    point of the experiment comparing them (bench target [static]) is
    to quantify how much accuracy the training-sets approach buys. *)

type datasheet = {
  flop_time : float;
      (** nominal seconds per floating-point operation in a
          compute-bound loop (matrix multiply) *)
  mem_op_time : float;
      (** seconds per element operation in a memory-bound loop
          (matrix addition: 2 loads + 1 store per flop) *)
  store_time : float;
      (** seconds per element store (initialisation loops) *)
  loop_startup : float;
      (** fixed per-loop-nest overhead: argument broadcast, loop
          bounds setup — serial with respect to p *)
  gather_per_byte : float;
      (** effective seconds per byte of intra-loop operand gathering
          (matrix multiply needs remote rows/columns of one operand;
          this traffic does not shrink with p and so behaves as serial
          fraction) *)
  nominal_transfer : Params.transfer;
      (** vendor-quoted message-passing constants *)
}

val cm5_datasheet : datasheet
(** A plausible CM-5 datasheet, written down from nominal hardware
    characteristics rather than measurement (and therefore close to,
    but not equal to, the paper's fitted Table 1/2 values). *)

val estimate_processing : datasheet -> Mdg.Graph.kernel -> Params.processing
(** Amdahl parameters from operation counts: [tau] is serial +
    parallelisable work, [alpha] their ratio.  [Synthetic] kernels
    return their own parameters; [Dummy] is free. *)

val estimate_transfer : datasheet -> Params.transfer
(** The datasheet's nominal transfer constants. *)

val params : datasheet -> Mdg.Graph.kernel list -> Params.t
(** Full parameter set for the given kernels, statically estimated —
    a drop-in replacement for {!Machine.Measure.calibrate}'s result. *)

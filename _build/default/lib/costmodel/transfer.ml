module E = Convex.Expr
module P = Convex.Posynomial

type components = { send : float; network : float; receive : float }

let check_args ~bytes ~p_send ~p_recv =
  if bytes < 0.0 || not (Float.is_finite bytes) then
    invalid_arg "Transfer: negative byte count";
  if p_send < 1.0 || p_recv < 1.0 then
    invalid_arg "Transfer: processor counts must be >= 1"

let components (tr : Params.transfer) ~kind ~bytes ~p_send ~p_recv =
  check_args ~bytes ~p_send ~p_recv;
  if bytes = 0.0 then { send = 0.0; network = 0.0; receive = 0.0 }
  else
    let pi = p_send and pj = p_recv and l = bytes in
    match (kind : Mdg.Graph.transfer_kind) with
    | Oned ->
        let pmax = Float.max pi pj in
        {
          send = (pmax /. pi *. tr.t_ss) +. (l /. pi *. tr.t_ps);
          network = l /. pmax *. tr.t_n;
          receive = (pmax /. pj *. tr.t_sr) +. (l /. pj *. tr.t_pr);
        }
    | Twod ->
        {
          send = (pj *. tr.t_ss) +. (l /. pi *. tr.t_ps);
          network = l /. (pi *. pj) *. tr.t_n;
          receive = (pi *. tr.t_sr) +. (l /. pj *. tr.t_pr);
        }

let total { send; network; receive } = send +. network +. receive

(* [max(1, p_j/p_i)] as a convex expression. *)
let max1_ratio ~num ~den =
  E.max_ [ E.term ~coeff:1.0 ~expts:[]; E.term ~coeff:1.0 ~expts:[ (num, 1.0); (den, -1.0) ] ]

let zero = E.const 0.0

let send_expr (tr : Params.transfer) ~kind ~bytes ~vi ~vj =
  if bytes = 0.0 then zero
  else
    match (kind : Mdg.Graph.transfer_kind) with
    | Oned ->
        E.sum
          [
            E.scale tr.t_ss (max1_ratio ~num:vj ~den:vi);
            E.term ~coeff:(bytes *. tr.t_ps) ~expts:[ (vi, -1.0) ];
          ]
    | Twod ->
        E.sum
          [
            E.term ~coeff:tr.t_ss ~expts:[ (vj, 1.0) ];
            E.term ~coeff:(bytes *. tr.t_ps) ~expts:[ (vi, -1.0) ];
          ]

let receive_expr (tr : Params.transfer) ~kind ~bytes ~vi ~vj =
  if bytes = 0.0 then zero
  else
    match (kind : Mdg.Graph.transfer_kind) with
    | Oned ->
        E.sum
          [
            E.scale tr.t_sr (max1_ratio ~num:vi ~den:vj);
            E.term ~coeff:(bytes *. tr.t_pr) ~expts:[ (vj, -1.0) ];
          ]
    | Twod ->
        E.sum
          [
            E.term ~coeff:tr.t_sr ~expts:[ (vi, 1.0) ];
            E.term ~coeff:(bytes *. tr.t_pr) ~expts:[ (vj, -1.0) ];
          ]

let network_expr (tr : Params.transfer) ~kind ~bytes ~vi ~vj =
  if bytes = 0.0 || tr.t_n = 0.0 then zero
  else
    match (kind : Mdg.Graph.transfer_kind) with
    | Oned ->
        (* Posynomial surrogate: 1/max(pi,pj) <= 1/sqrt(pi*pj). *)
        E.term ~coeff:(bytes *. tr.t_n) ~expts:[ (vi, -0.5); (vj, -0.5) ]
    | Twod -> E.term ~coeff:(bytes *. tr.t_n) ~expts:[ (vi, -1.0); (vj, -1.0) ]

(* t^S·p_i.  For the 1D case: max(p_i, p_j)·t_ss + L·t_ps. *)
let send_times_p_expr (tr : Params.transfer) ~kind ~bytes ~vi ~vj =
  if bytes = 0.0 then zero
  else
    match (kind : Mdg.Graph.transfer_kind) with
    | Oned ->
        E.sum
          [
            E.scale tr.t_ss
              (E.max_
                 [
                   E.term ~coeff:1.0 ~expts:[ (vi, 1.0) ];
                   E.term ~coeff:1.0 ~expts:[ (vj, 1.0) ];
                 ]);
            E.const (bytes *. tr.t_ps);
          ]
    | Twod ->
        E.sum
          [
            E.term ~coeff:tr.t_ss ~expts:[ (vi, 1.0); (vj, 1.0) ];
            E.const (bytes *. tr.t_ps);
          ]

(* t^R·p_j. *)
let receive_times_p_expr (tr : Params.transfer) ~kind ~bytes ~vi ~vj =
  if bytes = 0.0 then zero
  else
    match (kind : Mdg.Graph.transfer_kind) with
    | Oned ->
        E.sum
          [
            E.scale tr.t_sr
              (E.max_
                 [
                   E.term ~coeff:1.0 ~expts:[ (vi, 1.0) ];
                   E.term ~coeff:1.0 ~expts:[ (vj, 1.0) ];
                 ]);
            E.const (bytes *. tr.t_pr);
          ]
    | Twod ->
        E.sum
          [
            E.term ~coeff:tr.t_sr ~expts:[ (vi, 1.0); (vj, 1.0) ];
            E.const (bytes *. tr.t_pr);
          ]

let pos_term c expts = if c > 0.0 then P.monomial c expts else P.zero

let send_posynomial_2d (tr : Params.transfer) ~bytes ~vi ~vj =
  P.sum [ pos_term tr.t_ss [ (vj, 1.0) ]; pos_term (bytes *. tr.t_ps) [ (vi, -1.0) ] ]

let receive_posynomial_2d (tr : Params.transfer) ~bytes ~vi ~vj =
  P.sum [ pos_term tr.t_sr [ (vi, 1.0) ]; pos_term (bytes *. tr.t_pr) [ (vj, -1.0) ] ]

let network_posynomial_2d (tr : Params.transfer) ~bytes ~vi ~vj =
  pos_term (bytes *. tr.t_n) [ (vi, -1.0); (vj, -1.0) ]

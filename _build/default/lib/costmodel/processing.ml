module P = Convex.Posynomial

let cost (proc : Params.processing) p =
  if p < 1.0 then invalid_arg "Processing.cost: p < 1";
  (proc.alpha +. ((1.0 -. proc.alpha) /. p)) *. proc.tau

let cost_int proc p = cost proc (float_of_int p)

(* Zero-cost kernels (dummies) still need a valid posynomial; the empty
   posynomial represents them exactly. *)
let posynomial (proc : Params.processing) ~var =
  let serial = proc.alpha *. proc.tau in
  let parallel = (1.0 -. proc.alpha) *. proc.tau in
  P.sum
    [
      (if serial > 0.0 then P.monomial serial [] else P.zero);
      (if parallel > 0.0 then P.monomial parallel [ (var, -1.0) ] else P.zero);
    ]

let posynomial_times_p (proc : Params.processing) ~var =
  P.mul_var var 1.0 (posynomial proc ~var)

let expr proc ~var = P.to_expr (posynomial proc ~var)

let expr_times_p proc ~var = P.to_expr (posynomial_times_p proc ~var)

let limit (proc : Params.processing) = proc.alpha *. proc.tau

let best_speedup (proc : Params.processing) ~procs =
  if procs < 1 then invalid_arg "Processing.best_speedup: procs < 1";
  proc.tau /. cost_int proc procs

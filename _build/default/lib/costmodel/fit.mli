(** Training-sets parameter fitting (paper Section 4, after
    Balasundaram et al.): run measurements on the target machine, then
    least-squares fit the cost-model parameters.

    Processing: [t(p) = α·τ + (1-α)·τ/p] is linear in [(a, b) =
    (α·τ, (1-α)·τ)] with basis [(1, 1/p)]; then [τ = a + b] and
    [α = a/(a+b)].

    Transfers: send costs across both 1D and 2D samples share the
    coefficients [(t_ss, t_ps)] with kind-dependent bases
    ([max(pᵢ,pⱼ)/pᵢ, L/pᵢ] for 1D; [pⱼ, L/pᵢ] for 2D), and similarly
    receive costs share [(t_sr, t_pr)]; the network coefficient [t_n]
    is fit on its own basis. *)

type quality = { r_squared : float; rmse : float }

val fit_processing : (int * float) list -> Params.processing * quality
(** [fit_processing [(p, seconds); ...]] fits Amdahl parameters.
    Requires at least two distinct processor counts.  The fitted α is
    clamped into [0, 1]. *)

type transfer_sample = {
  kind : Mdg.Graph.transfer_kind;
  p_send : int;
  p_recv : int;
  bytes : float;
  measured : Transfer.components;  (** measured times, seconds *)
}

type transfer_fit = {
  params : Params.transfer;
  send_quality : quality;
  receive_quality : quality;
  network_quality : quality;
}

val fit_transfer : transfer_sample list -> transfer_fit
(** Fit all five Table 2 parameters.  Requires at least two samples
    with distinct bases per component.  Negative fitted coefficients
    are clamped to zero (as happens for [t_n] on the CM-5, where the
    network time is absorbed into the receive cost). *)

val predict_processing : Params.processing -> int -> float
(** Model prediction, convenience re-export of {!Processing.cost_int}. *)

module G = Mdg.Graph

let transfer_components params ~alloc (e : G.edge) =
  Transfer.components (Params.transfer params) ~kind:e.kind ~bytes:e.bytes
    ~p_send:(alloc e.src) ~p_recv:(alloc e.dst)

let processing_only params g ~alloc i =
  let nd = G.node g i in
  Processing.cost (Params.processing params nd.kernel) (alloc i)

let node_weight params g ~alloc i =
  let recv =
    List.fold_left
      (fun acc e -> acc +. (transfer_components params ~alloc e).receive)
      0.0 (G.preds g i)
  in
  let send =
    List.fold_left
      (fun acc e -> acc +. (transfer_components params ~alloc e).send)
      0.0 (G.succs g i)
  in
  recv +. processing_only params g ~alloc i +. send

let edge_weight params ~alloc e = (transfer_components params ~alloc e).network

let average_finish_time params g ~alloc ~procs =
  if procs < 1 then invalid_arg "Weights.average_finish_time: procs < 1";
  let area =
    Mdg.Analysis.total_area ~node_weight:(node_weight params g ~alloc) ~procs:alloc g
  in
  area /. float_of_int procs

let critical_path_time params g ~alloc =
  Mdg.Analysis.critical_path_time
    ~node_weight:(node_weight params g ~alloc)
    ~edge_weight:(edge_weight params ~alloc)
    g

let lower_bound params g ~alloc ~procs =
  Float.max
    (average_finish_time params g ~alloc ~procs)
    (critical_path_time params g ~alloc)

let serial_time params g =
  Array.fold_left
    (fun acc (nd : G.node) ->
      acc +. (Params.processing params nd.kernel).tau)
    0.0 (G.nodes g)

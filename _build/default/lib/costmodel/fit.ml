module L = Numeric.Linreg

type quality = { r_squared : float; rmse : float }

let quality_of_fit (f : L.fit) = { r_squared = f.r_squared; rmse = f.rmse }

let fit_processing samples =
  let distinct = List.sort_uniq compare (List.map fst samples) in
  if List.length distinct < 2 then
    invalid_arg "Fit.fit_processing: need at least two distinct processor counts";
  List.iter
    (fun (p, t) ->
      if p < 1 then invalid_arg "Fit.fit_processing: processor count < 1";
      if t < 0.0 then invalid_arg "Fit.fit_processing: negative time")
    samples;
  let inputs = List.map (fun (p, _) -> [| float_of_int p |]) samples in
  let observations = List.map snd samples in
  let f =
    L.fit ~basis:(fun a -> [| 1.0; 1.0 /. a.(0) |]) ~inputs ~observations
  in
  let a = Float.max f.coeffs.(0) 0.0 in
  let b = Float.max f.coeffs.(1) 0.0 in
  let tau = a +. b in
  let alpha = if tau <= 0.0 then 0.0 else Float.min 1.0 (a /. tau) in
  (({ alpha; tau } : Params.processing), quality_of_fit f)

type transfer_sample = {
  kind : Mdg.Graph.transfer_kind;
  p_send : int;
  p_recv : int;
  bytes : float;
  measured : Transfer.components;
}

type transfer_fit = {
  params : Params.transfer;
  send_quality : quality;
  receive_quality : quality;
  network_quality : quality;
}

let validate_sample s =
  if s.p_send < 1 || s.p_recv < 1 then
    invalid_arg "Fit.fit_transfer: processor count < 1";
  if s.bytes <= 0.0 then invalid_arg "Fit.fit_transfer: non-positive byte count"

(* Startup-count and per-byte bases from eqs. 2-3 of the paper. *)
let send_basis s =
  let pi = float_of_int s.p_send and pj = float_of_int s.p_recv in
  match s.kind with
  | Mdg.Graph.Oned -> [| Float.max pi pj /. pi; s.bytes /. pi |]
  | Mdg.Graph.Twod -> [| pj; s.bytes /. pi |]

let receive_basis s =
  let pi = float_of_int s.p_send and pj = float_of_int s.p_recv in
  match s.kind with
  | Mdg.Graph.Oned -> [| Float.max pi pj /. pj; s.bytes /. pj |]
  | Mdg.Graph.Twod -> [| pi; s.bytes /. pj |]

let network_basis s =
  let pi = float_of_int s.p_send and pj = float_of_int s.p_recv in
  match s.kind with
  | Mdg.Graph.Oned -> [| s.bytes /. Float.max pi pj |]
  | Mdg.Graph.Twod -> [| s.bytes /. (pi *. pj) |]

let component_fit ~basis ~value samples =
  let inputs = List.map (fun s -> basis s) samples in
  let observations = List.map value samples in
  L.fit ~basis:Fun.id ~inputs ~observations

let fit_transfer samples =
  if List.length samples < 2 then
    invalid_arg "Fit.fit_transfer: need at least two samples";
  List.iter validate_sample samples;
  let send =
    component_fit ~basis:send_basis
      ~value:(fun s -> s.measured.Transfer.send)
      samples
  in
  let receive =
    component_fit ~basis:receive_basis
      ~value:(fun s -> s.measured.Transfer.receive)
      samples
  in
  let network =
    component_fit ~basis:network_basis
      ~value:(fun s -> s.measured.Transfer.network)
      samples
  in
  let pos v = Float.max v 0.0 in
  let params : Params.transfer =
    {
      t_ss = pos send.coeffs.(0);
      t_ps = pos send.coeffs.(1);
      t_sr = pos receive.coeffs.(0);
      t_pr = pos receive.coeffs.(1);
      t_n = pos network.coeffs.(0);
    }
  in
  {
    params;
    send_quality = quality_of_fit send;
    receive_quality = quality_of_fit receive;
    network_quality = quality_of_fit network;
  }

let predict_processing = Processing.cost_int

(** Processing cost model (paper eq. 1, Lemma 1):
    [t^C(p) = (α + (1-α)/p)·τ]. *)

val cost : Params.processing -> float -> float
(** [cost proc p] for a real processor count [p >= 1].  Raises
    [Invalid_argument] if [p < 1]. *)

val cost_int : Params.processing -> int -> float

val posynomial : Params.processing -> var:int -> Convex.Posynomial.t
(** The cost as a posynomial in variable [var]:
    [α·τ + (1-α)·τ·p⁻¹] (Lemma 1). *)

val posynomial_times_p : Params.processing -> var:int -> Convex.Posynomial.t
(** [t^C·p = α·τ·p + (1-α)·τ]: the paper's condition (2) for the
    average-finish-time term. *)

val expr : Params.processing -> var:int -> Convex.Expr.t
(** Convex-expression form for the allocation objective. *)

val expr_times_p : Params.processing -> var:int -> Convex.Expr.t

val limit : Params.processing -> float
(** [lim p→∞ t^C(p) = α·τ]: the serial floor. *)

val best_speedup : Params.processing -> procs:int -> float
(** Speedup of the loop itself at [procs] processors under the model. *)

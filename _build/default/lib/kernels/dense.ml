module Mat = Numeric.Mat

let require_square name m =
  if Mat.rows m <> Mat.cols m then invalid_arg (name ^ ": matrix not square")

let quadrants m =
  require_square "Dense.quadrants" m;
  let n = Mat.rows m in
  if n mod 2 <> 0 then invalid_arg "Dense.quadrants: odd size";
  let h = n / 2 in
  let sub ri ci = Mat.init h h (fun i j -> Mat.get m (ri + i) (ci + j)) in
  (sub 0 0, sub 0 h, sub h 0, sub h h)

let assemble a11 a12 a21 a22 =
  let h = Mat.rows a11 in
  List.iter
    (fun m ->
      if Mat.rows m <> h || Mat.cols m <> h then
        invalid_arg "Dense.assemble: quadrant size mismatch")
    [ a11; a12; a21; a22 ];
  Mat.init (2 * h) (2 * h) (fun i j ->
      match (i < h, j < h) with
      | true, true -> Mat.get a11 i j
      | true, false -> Mat.get a12 i (j - h)
      | false, true -> Mat.get a21 (i - h) j
      | false, false -> Mat.get a22 (i - h) (j - h))

(* The seven Strassen products and their combination, parameterised by
   the half-size multiply so that one-level and full recursion share the
   formula. *)
let strassen_step ~multiply a b =
  let a11, a12, a21, a22 = quadrants a in
  let b11, b12, b21, b22 = quadrants b in
  let m1 = multiply (Mat.add a11 a22) (Mat.add b11 b22) in
  let m2 = multiply (Mat.add a21 a22) b11 in
  let m3 = multiply a11 (Mat.sub b12 b22) in
  let m4 = multiply a22 (Mat.sub b21 b11) in
  let m5 = multiply (Mat.add a11 a12) b22 in
  let m6 = multiply (Mat.sub a21 a11) (Mat.add b11 b12) in
  let m7 = multiply (Mat.sub a12 a22) (Mat.add b21 b22) in
  let c11 = Mat.add (Mat.sub (Mat.add m1 m4) m5) m7 in
  let c12 = Mat.add m3 m5 in
  let c21 = Mat.add m2 m4 in
  let c22 = Mat.add (Mat.add (Mat.sub m1 m2) m3) m6 in
  assemble c11 c12 c21 c22

let check_strassen_args name a b =
  require_square name a;
  require_square name b;
  if Mat.rows a <> Mat.rows b then invalid_arg (name ^ ": size mismatch");
  if not (Numeric.Pow2.is_pow2 (Mat.rows a)) then
    invalid_arg (name ^ ": size not a power of two")

let rec strassen ?(threshold = 32) a b =
  check_strassen_args "Dense.strassen" a b;
  if threshold < 1 then invalid_arg "Dense.strassen: threshold < 1";
  if Mat.rows a <= threshold then Mat.matmul a b
  else strassen_step ~multiply:(strassen ~threshold) a b

let strassen_one_level a b =
  check_strassen_args "Dense.strassen_one_level" a b;
  if Mat.rows a < 2 then invalid_arg "Dense.strassen_one_level: size < 2";
  strassen_step ~multiply:Mat.matmul a b

type complex_matrix = { re : Mat.t; im : Mat.t }

let complex_matmul a b =
  let ac = Mat.matmul a.re b.re in
  let bd = Mat.matmul a.im b.im in
  let ad = Mat.matmul a.re b.im in
  let bc = Mat.matmul a.im b.re in
  { re = Mat.sub ac bd; im = Mat.add ad bc }

let complex_matmul_direct a b =
  let n = Mat.rows a.re in
  let inner f i j =
    let acc = ref 0.0 in
    for k = 0 to Mat.cols a.re - 1 do
      acc := !acc +. f k i j
    done;
    !acc
  in
  {
    re =
      Mat.init n (Mat.cols b.re)
        (fun i j ->
          inner
            (fun k i j ->
              (Mat.get a.re i k *. Mat.get b.re k j)
              -. (Mat.get a.im i k *. Mat.get b.im k j))
            i j);
    im =
      Mat.init n (Mat.cols b.re)
        (fun i j ->
          inner
            (fun k i j ->
              (Mat.get a.re i k *. Mat.get b.im k j)
              +. (Mat.get a.im i k *. Mat.get b.re k j))
            i j);
  }

(* Small deterministic LCG so tests do not depend on Stdlib.Random
   state. *)
let random_matrix ~seed n =
  let state = ref (Int64.of_int (seed lxor 0x9E3779B9)) in
  let next () =
    state :=
      Int64.add (Int64.mul !state 6364136223846793005L) 1442695040888963407L;
    let bits = Int64.to_int (Int64.shift_right_logical !state 17) land 0xFFFFFF in
    (float_of_int bits /. float_of_int 0x7FFFFF) -. 1.0
  in
  Mat.init n n (fun _ _ -> next ())

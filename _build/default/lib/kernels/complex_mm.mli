(** MDG of the paper's first test program: complex matrix
    multiplication, [(A+iB)(C+iD) = (AC - BD) + i(AD + BC)].

    Structure (paper Figure 6, left): four initialisation loops, four
    real N×N multiplies that can all run concurrently, and two real
    additions combining them.  All transfers are 1D (the paper states
    both test programs use only 1D transfers). *)

type node_ids = {
  init_ar : int;
  init_ai : int;
  init_br : int;
  init_bi : int;
  mul_ac : int;  (** A_re · B_re *)
  mul_bd : int;  (** A_im · B_im *)
  mul_ad : int;  (** A_re · B_im *)
  mul_bc : int;  (** A_im · B_re *)
  add_re : int;  (** C_re = AC - BD *)
  add_im : int;  (** C_im = AD + BC *)
}

val graph : ?n:int -> unit -> Mdg.Graph.t * node_ids
(** Normalised MDG for [n]×[n] complex matrix multiply (default 64,
    the paper's size).  Raises [Invalid_argument] unless [n >= 1]. *)

val kernels : n:int -> Mdg.Graph.kernel list
(** The distinct matrix kernels appearing in the graph (for
    calibration). *)

val verify_numerics : n:int -> seed:int -> bool
(** Check, on real data, that the 4-multiply/2-add decomposition the
    MDG encodes equals direct complex multiplication. *)

(** Dense matrix algorithms used by the paper's test programs.

    These are real numerical implementations — not cost models — used
    to (a) validate that the MDG decompositions in {!Complex_mm} and
    {!Strassen_mdg} compute what they claim, and (b) derive operation
    counts.  [Numeric.Mat] supplies the representation and the naive
    O(n³) multiply. *)

val strassen : ?threshold:int -> Numeric.Mat.t -> Numeric.Mat.t -> Numeric.Mat.t
(** Strassen's algorithm (Press et al., Numerical Recipes).  Requires
    square matrices of equal power-of-two size.  Recursion switches to
    the naive multiply at [threshold] (default 32).
    Raises [Invalid_argument] on non-square or non-power-of-two
    inputs. *)

val strassen_one_level : Numeric.Mat.t -> Numeric.Mat.t -> Numeric.Mat.t
(** Exactly one level of Strassen recursion (the paper's test program):
    7 half-size naive multiplies and 18 half-size additions. *)

type complex_matrix = { re : Numeric.Mat.t; im : Numeric.Mat.t }

val complex_matmul : complex_matrix -> complex_matrix -> complex_matrix
(** Complex matrix product via 4 real multiplies and 2 real additions,
    the decomposition of the paper's first test program:
    [(A+iB)(C+iD) = (AC - BD) + i(AD + BC)]. *)

val complex_matmul_direct : complex_matrix -> complex_matrix -> complex_matrix
(** Reference implementation multiplying elementwise complex numbers. *)

val random_matrix : seed:int -> int -> Numeric.Mat.t
(** Deterministic pseudo-random n×n matrix with entries in [-1, 1]. *)

val quadrants : Numeric.Mat.t -> Numeric.Mat.t * Numeric.Mat.t * Numeric.Mat.t * Numeric.Mat.t
(** [(a11, a12, a21, a22)] of an even-sized square matrix. *)

val assemble :
  Numeric.Mat.t -> Numeric.Mat.t -> Numeric.Mat.t -> Numeric.Mat.t -> Numeric.Mat.t
(** Inverse of {!quadrants}. *)

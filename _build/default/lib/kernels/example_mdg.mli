(** The three-node motivating example of the paper's Figures 1–2.

    Node N1 feeds N2 and N3; there are no data-transfer costs.  The
    Amdahl parameters are chosen so that on a 4-processor system the
    naive all-processors-sequential schedule finishes in 15.6 s while
    the mixed schedule (N1 on 4, then N2 ∥ N3 on 2 each) finishes in
    14.3 s — the numbers in the paper's text. *)

val graph : unit -> Mdg.Graph.t
(** Normalised MDG (START/STOP dummies included). *)

val n1 : int
val n2 : int
val n3 : int
(** Node ids of the three loops inside {!graph}. *)

val naive_finish_time : procs:int -> float
(** Execution time of the pure-data-parallel schedule: every node on
    all [procs] processors, sequentially. *)

val mixed_finish_time : procs:int -> float
(** Execution time of the schedule that runs N1 on all processors then
    N2 and N3 concurrently on half each.  Requires an even processor
    count. *)

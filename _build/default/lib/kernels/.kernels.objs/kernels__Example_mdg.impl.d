lib/kernels/example_mdg.ml: Mdg

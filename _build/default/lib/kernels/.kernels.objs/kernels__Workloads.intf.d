lib/kernels/workloads.mli: Mdg

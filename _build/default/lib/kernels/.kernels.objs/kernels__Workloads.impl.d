lib/kernels/workloads.ml: Array Int64 Mdg Printf

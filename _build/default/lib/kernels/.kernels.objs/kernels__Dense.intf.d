lib/kernels/dense.mli: Numeric

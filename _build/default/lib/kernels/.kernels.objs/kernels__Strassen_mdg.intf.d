lib/kernels/strassen_mdg.mli: Mdg

lib/kernels/strassen_mdg.ml: Array Dense List Mdg Numeric Printf

lib/kernels/complex_mm.ml: Dense Mdg Numeric

lib/kernels/complex_mm.mli: Mdg

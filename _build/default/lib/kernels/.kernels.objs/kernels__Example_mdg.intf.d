lib/kernels/example_mdg.mli: Mdg

lib/kernels/dense.ml: Int64 List Numeric

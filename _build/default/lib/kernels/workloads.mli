(** Synthetic MDG generators for property tests and ablation studies.

    All generators are deterministic in their [seed]. *)

type shape = {
  layers : int;          (** depth of the layered DAG *)
  width : int;           (** max nodes per layer *)
  edge_density : float;  (** probability of an edge between adjacent
                             layers' node pairs, in [0,1] *)
  tau_range : float * float;    (** serial times, seconds *)
  alpha_range : float * float;  (** serial fractions *)
  bytes_range : float * float;  (** transfer sizes *)
  twod_fraction : float;        (** fraction of 2D transfers *)
}

val default_shape : shape

val random_layered : seed:int -> shape -> Mdg.Graph.t
(** Random layered DAG of [Synthetic] nodes, normalised, with every
    node connected (no isolated nodes: each non-first-layer node gets
    at least one predecessor in the previous layer). *)

val chain : length:int -> tau:float -> alpha:float -> bytes:float -> Mdg.Graph.t
(** A pure pipeline: no functional parallelism at all. *)

val fork_join : branches:int -> tau:float -> alpha:float -> bytes:float -> Mdg.Graph.t
(** One fork into [branches] identical independent loops and a join:
    maximal functional parallelism. *)

val fully_independent : count:int -> tau:float -> alpha:float -> Mdg.Graph.t
(** [count] loops with no precedence constraints (normalisation adds
    START/STOP). *)

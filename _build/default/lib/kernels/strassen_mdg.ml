module G = Mdg.Graph

type node_ids = {
  init_a : int;
  init_b : int;
  pre_adds : int array;
  muls : int array;
  post_adds : int array;
}

let graph ?(n = 128) () =
  if n < 2 || n mod 2 <> 0 then invalid_arg "Strassen_mdg.graph: n must be even and >= 2";
  let half = n / 2 in
  let q = float_of_int (8 * half * half) in
  (* One quadrant's bytes. *)
  let b = G.create_builder () in
  let init label = G.add_node b ~label ~kernel:(Matrix_init n) in
  let add label = G.add_node b ~label ~kernel:(Matrix_add half) in
  let mul label = G.add_node b ~label ~kernel:(Matrix_multiply half) in
  let edge src dst ~bytes = G.add_edge b ~src ~dst ~bytes ~kind:Oned in
  let init_a = init "init A" in
  let init_b = init "init B" in
  (* Pre-additions: each consumes two quadrants of A or B. *)
  let pre_specs =
    [|
      ("S1 = A11+A22", init_a);
      ("S2 = B11+B22", init_b);
      ("S3 = A21+A22", init_a);
      ("S4 = B12-B22", init_b);
      ("S5 = B21-B11", init_b);
      ("S6 = A11+A12", init_a);
      ("S7 = A21-A11", init_a);
      ("S8 = B11+B12", init_b);
      ("S9 = A12-A22", init_a);
      ("S10 = B21+B22", init_b);
    |]
  in
  let pre_adds =
    Array.map
      (fun (label, src) ->
        let id = add label in
        edge src id ~bytes:(2.0 *. q);
        id)
      pre_specs
  in
  let s k = pre_adds.(k - 1) in
  (* Multiplies: operands are either pre-add results or raw quadrants
     straight from the initialisation loops. *)
  let mk_mul label (src1, bytes1) (src2, bytes2) =
    let id = mul label in
    edge src1 id ~bytes:bytes1;
    edge src2 id ~bytes:bytes2;
    id
  in
  let m1 = mk_mul "M1 = S1*S2" (s 1, q) (s 2, q) in
  let m2 = mk_mul "M2 = S3*B11" (s 3, q) (init_b, q) in
  let m3 = mk_mul "M3 = A11*S4" (init_a, q) (s 4, q) in
  let m4 = mk_mul "M4 = A22*S5" (init_a, q) (s 5, q) in
  let m5 = mk_mul "M5 = S6*B22" (s 6, q) (init_b, q) in
  let m6 = mk_mul "M6 = S7*S8" (s 7, q) (s 8, q) in
  let m7 = mk_mul "M7 = S9*S10" (s 9, q) (s 10, q) in
  let muls = [| m1; m2; m3; m4; m5; m6; m7 |] in
  (* Post-additions assembling the result quadrants. *)
  let mk_add label src1 src2 =
    let id = add label in
    edge src1 id ~bytes:q;
    edge src2 id ~bytes:q;
    id
  in
  let t1 = mk_add "T1 = M1+M4" m1 m4 in
  let t2 = mk_add "T2 = T1-M5" t1 m5 in
  let c11 = mk_add "C11 = T2+M7" t2 m7 in
  let c12 = mk_add "C12 = M3+M5" m3 m5 in
  let c21 = mk_add "C21 = M2+M4" m2 m4 in
  let u1 = mk_add "U1 = M1-M2" m1 m2 in
  let u2 = mk_add "U2 = U1+M3" u1 m3 in
  let c22 = mk_add "C22 = U2+M6" u2 m6 in
  let post_adds = [| t1; t2; c11; c12; c21; u1; u2; c22 |] in
  let g = G.normalise (G.build b) in
  (g, { init_a; init_b; pre_adds; muls; post_adds })

let kernels ~n =
  let half = n / 2 in
  [ G.Matrix_init n; G.Matrix_add half; G.Matrix_multiply half ]

(* Recursive expansion.  [product b ~levels ~n (a, ab) (bm, bb) prefix]
   adds nodes computing the n-by-n product of the matrices produced by
   nodes [a] and [bm] (reading [ab] and [bb] bytes from them
   respectively) and returns the node holding the result. *)
let rec product b ~levels ~n (a_node, a_bytes) (b_node, b_bytes) prefix =
  if levels = 0 then begin
    let id = G.add_node b ~label:(prefix ^ "mul") ~kernel:(Matrix_multiply n) in
    G.add_edge b ~src:a_node ~dst:id ~bytes:a_bytes ~kind:Oned;
    G.add_edge b ~src:b_node ~dst:id ~bytes:b_bytes ~kind:Oned;
    id
  end
  else begin
    let half = n / 2 in
    let q = float_of_int (8 * half * half) in
    let add label =
      G.add_node b ~label:(prefix ^ label) ~kernel:(Matrix_add half)
    in
    (* Pre-additions read two quadrants of one operand. *)
    let pre src label =
      let id = add label in
      G.add_edge b ~src ~dst:id ~bytes:(2.0 *. q) ~kind:Oned;
      id
    in
    let s1 = pre a_node "S1" and s2 = pre b_node "S2" in
    let s3 = pre a_node "S3" and s4 = pre b_node "S4" in
    let s5 = pre b_node "S5" and s6 = pre a_node "S6" in
    let s7 = pre a_node "S7" and s8 = pre b_node "S8" in
    let s9 = pre a_node "S9" and s10 = pre b_node "S10" in
    let sub_product k x y =
      product b ~levels:(levels - 1) ~n:half x y
        (Printf.sprintf "%sM%d." prefix k)
    in
    let m1 = sub_product 1 (s1, q) (s2, q) in
    let m2 = sub_product 2 (s3, q) (b_node, q) in
    let m3 = sub_product 3 (a_node, q) (s4, q) in
    let m4 = sub_product 4 (a_node, q) (s5, q) in
    let m5 = sub_product 5 (s6, q) (b_node, q) in
    let m6 = sub_product 6 (s7, q) (s8, q) in
    let m7 = sub_product 7 (s9, q) (s10, q) in
    let post label x y =
      let id = add label in
      G.add_edge b ~src:x ~dst:id ~bytes:q ~kind:Oned;
      G.add_edge b ~src:y ~dst:id ~bytes:q ~kind:Oned;
      id
    in
    let t1 = post "T1" m1 m4 in
    let t2 = post "T2" t1 m5 in
    let c11 = post "C11" t2 m7 in
    let c12 = post "C12" m3 m5 in
    let c21 = post "C21" m2 m4 in
    let u1 = post "U1" m1 m2 in
    let u2 = post "U2" u1 m3 in
    let c22 = post "C22" u2 m6 in
    (* Zero-cost assembly of the four result quadrants into one value;
       the edges still carry real transfer volume. *)
    let out = G.add_node b ~label:(prefix ^ "assemble") ~kernel:Dummy in
    List.iter
      (fun quadrant -> G.add_edge b ~src:quadrant ~dst:out ~bytes:q ~kind:Oned)
      [ c11; c12; c21; c22 ];
    out
  end

let check_recursive ~levels ~n =
  if levels < 1 then invalid_arg "Strassen_mdg: levels < 1";
  if n mod (1 lsl levels) <> 0 || n < 1 lsl levels then
    invalid_arg "Strassen_mdg: n must be divisible by 2^levels"

let graph_recursive ~levels ~n =
  check_recursive ~levels ~n;
  let full = float_of_int (8 * n * n) in
  let b = G.create_builder () in
  let init_a = G.add_node b ~label:"init A" ~kernel:(Matrix_init n) in
  let init_b = G.add_node b ~label:"init B" ~kernel:(Matrix_init n) in
  ignore (product b ~levels ~n (init_a, full) (init_b, full) "");
  G.normalise (G.build b)

let kernels_recursive ~levels ~n =
  check_recursive ~levels ~n;
  let adds = List.init levels (fun l -> G.Matrix_add (n / (1 lsl (l + 1)))) in
  List.sort_uniq compare
    (G.Matrix_init n :: G.Matrix_multiply (n / (1 lsl levels)) :: adds)

let verify_numerics ~n ~seed =
  let a = Dense.random_matrix ~seed n in
  let b = Dense.random_matrix ~seed:(seed + 7) n in
  let via_strassen = Dense.strassen_one_level a b in
  let direct = Numeric.Mat.matmul a b in
  Numeric.Mat.approx_equal ~eps:(1e-9 *. float_of_int n) via_strassen direct

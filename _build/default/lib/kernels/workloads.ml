module G = Mdg.Graph

type shape = {
  layers : int;
  width : int;
  edge_density : float;
  tau_range : float * float;
  alpha_range : float * float;
  bytes_range : float * float;
  twod_fraction : float;
}

let default_shape =
  {
    layers = 4;
    width = 4;
    edge_density = 0.4;
    tau_range = (0.01, 1.0);
    alpha_range = (0.02, 0.3);
    bytes_range = (1024.0, 262144.0);
    twod_fraction = 0.25;
  }

(* Deterministic splittable PRNG (same LCG as Dense.random_matrix). *)
module Rng = struct
  type t = { mutable state : int64 }

  let make seed = { state = Int64.of_int (seed lxor 0x5DEECE66D) }

  let next t =
    t.state <-
      Int64.add (Int64.mul t.state 6364136223846793005L) 1442695040888963407L;
    Int64.to_int (Int64.shift_right_logical t.state 17) land 0xFFFFFF

  let float t = float_of_int (next t) /. float_of_int 0x1000000

  let in_range t (lo, hi) = lo +. (float t *. (hi -. lo))

  let int t n = if n <= 0 then 0 else next t mod n
end

let random_layered ~seed shape =
  if shape.layers < 1 || shape.width < 1 then
    invalid_arg "Workloads.random_layered: bad shape";
  if shape.edge_density < 0.0 || shape.edge_density > 1.0 then
    invalid_arg "Workloads.random_layered: edge_density outside [0,1]";
  let rng = Rng.make seed in
  let b = G.create_builder () in
  let layers =
    Array.init shape.layers (fun l ->
        let count = 1 + Rng.int rng shape.width in
        Array.init count (fun k ->
            let alpha = Rng.in_range rng shape.alpha_range in
            let tau = Rng.in_range rng shape.tau_range in
            G.add_node b
              ~label:(Printf.sprintf "L%d.%d" l k)
              ~kernel:(Synthetic { alpha; tau })))
  in
  let kind () : G.transfer_kind =
    if Rng.float rng < shape.twod_fraction then Twod else Oned
  in
  for l = 0 to shape.layers - 2 do
    let cur = layers.(l) and nxt = layers.(l + 1) in
    Array.iter
      (fun dst ->
        (* Guaranteed predecessor keeps the graph connected. *)
        let forced = cur.(Rng.int rng (Array.length cur)) in
        G.add_edge b ~src:forced ~dst
          ~bytes:(Rng.in_range rng shape.bytes_range)
          ~kind:(kind ());
        Array.iter
          (fun src ->
            if src <> forced && Rng.float rng < shape.edge_density then
              G.add_edge b ~src ~dst
                ~bytes:(Rng.in_range rng shape.bytes_range)
                ~kind:(kind ()))
          cur)
      nxt
  done;
  G.normalise (G.build b)

let synthetic ~alpha ~tau : G.kernel = Synthetic { alpha; tau }

let chain ~length ~tau ~alpha ~bytes =
  if length < 1 then invalid_arg "Workloads.chain: length < 1";
  let b = G.create_builder () in
  let ids =
    Array.init length (fun i ->
        G.add_node b ~label:(Printf.sprintf "stage%d" i)
          ~kernel:(synthetic ~alpha ~tau))
  in
  for i = 0 to length - 2 do
    G.add_edge b ~src:ids.(i) ~dst:ids.(i + 1) ~bytes ~kind:Oned
  done;
  G.normalise (G.build b)

let fork_join ~branches ~tau ~alpha ~bytes =
  if branches < 1 then invalid_arg "Workloads.fork_join: branches < 1";
  let b = G.create_builder () in
  let fork = G.add_node b ~label:"fork" ~kernel:(synthetic ~alpha ~tau) in
  let join = G.add_node b ~label:"join" ~kernel:(synthetic ~alpha ~tau) in
  for k = 0 to branches - 1 do
    let mid =
      G.add_node b ~label:(Printf.sprintf "branch%d" k)
        ~kernel:(synthetic ~alpha ~tau)
    in
    G.add_edge b ~src:fork ~dst:mid ~bytes ~kind:Oned;
    G.add_edge b ~src:mid ~dst:join ~bytes ~kind:Oned
  done;
  G.normalise (G.build b)

let fully_independent ~count ~tau ~alpha =
  if count < 1 then invalid_arg "Workloads.fully_independent: count < 1";
  let b = G.create_builder () in
  for k = 0 to count - 1 do
    ignore
      (G.add_node b ~label:(Printf.sprintf "task%d" k)
         ~kernel:(synthetic ~alpha ~tau))
  done;
  G.normalise (G.build b)

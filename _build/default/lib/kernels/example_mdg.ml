module G = Mdg.Graph

(* Amdahl parameters reverse-engineered from the paper's numbers:
   with t(p) = (alpha + (1-alpha)/p)·tau,
     t1(4) + t2(4) + t3(4)      = 15.6 s   (naive schedule)
     t1(4) + max(t2(2), t3(2))  = 14.3 s   (mixed schedule)
   using identical N2/N3.  Taking tau1 = 8, alpha1 = 0.1 gives
   t1(4) = 2.6; then t2(2) = 11.7 and t2(4) = 6.5 pin down
   alpha2 = 1.3/22.1, tau2 = 22.1. *)
type amdahl = { alpha : float; tau : float }

let p1 = { alpha = 0.1; tau = 8.0 }

and p23 = { alpha = 1.3 /. 22.1; tau = 22.1 }

let amdahl a p =
  (a.alpha +. ((1.0 -. a.alpha) /. float_of_int p)) *. a.tau

let build () =
  let b = G.create_builder () in
  let n1 = G.add_node b ~label:"N1" ~kernel:(Synthetic { alpha = p1.alpha; tau = p1.tau }) in
  let n2 = G.add_node b ~label:"N2" ~kernel:(Synthetic { alpha = p23.alpha; tau = p23.tau }) in
  let n3 = G.add_node b ~label:"N3" ~kernel:(Synthetic { alpha = p23.alpha; tau = p23.tau }) in
  G.add_edge b ~src:n1 ~dst:n2 ~bytes:0.0 ~kind:Oned;
  G.add_edge b ~src:n1 ~dst:n3 ~bytes:0.0 ~kind:Oned;
  (G.normalise (G.build b), n1, n2, n3)

let n1 = 0
let n2 = 1
let n3 = 2

let graph () =
  let g, _, _, _ = build () in
  g

let naive_finish_time ~procs =
  if procs < 1 then invalid_arg "Example_mdg.naive_finish_time: procs < 1";
  amdahl p1 procs +. (2.0 *. amdahl p23 procs)

let mixed_finish_time ~procs =
  if procs < 2 || procs mod 2 <> 0 then
    invalid_arg "Example_mdg.mixed_finish_time: need an even processor count";
  amdahl p1 procs +. amdahl p23 (procs / 2)

module G = Mdg.Graph

type node_ids = {
  init_ar : int;
  init_ai : int;
  init_br : int;
  init_bi : int;
  mul_ac : int;
  mul_bd : int;
  mul_ad : int;
  mul_bc : int;
  add_re : int;
  add_im : int;
}

let graph ?(n = 64) () =
  if n < 1 then invalid_arg "Complex_mm.graph: n < 1";
  let bytes = float_of_int (8 * n * n) in
  let b = G.create_builder () in
  let init label = G.add_node b ~label ~kernel:(Matrix_init n) in
  let mul label = G.add_node b ~label ~kernel:(Matrix_multiply n) in
  let add label = G.add_node b ~label ~kernel:(Matrix_add n) in
  let init_ar = init "init Ar" in
  let init_ai = init "init Ai" in
  let init_br = init "init Br" in
  let init_bi = init "init Bi" in
  let mul_ac = mul "Ar*Br" in
  let mul_bd = mul "Ai*Bi" in
  let mul_ad = mul "Ar*Bi" in
  let mul_bc = mul "Ai*Br" in
  let add_re = add "Cr = ArBr - AiBi" in
  let add_im = add "Ci = ArBi + AiBr" in
  let edge src dst = G.add_edge b ~src ~dst ~bytes ~kind:Oned in
  edge init_ar mul_ac;
  edge init_ar mul_ad;
  edge init_ai mul_bd;
  edge init_ai mul_bc;
  edge init_br mul_ac;
  edge init_br mul_bc;
  edge init_bi mul_bd;
  edge init_bi mul_ad;
  edge mul_ac add_re;
  edge mul_bd add_re;
  edge mul_ad add_im;
  edge mul_bc add_im;
  let g = G.normalise (G.build b) in
  ( g,
    {
      init_ar;
      init_ai;
      init_br;
      init_bi;
      mul_ac;
      mul_bd;
      mul_ad;
      mul_bc;
      add_re;
      add_im;
    } )

let kernels ~n = [ G.Matrix_init n; G.Matrix_add n; G.Matrix_multiply n ]

let verify_numerics ~n ~seed =
  let a =
    {
      Dense.re = Dense.random_matrix ~seed n;
      im = Dense.random_matrix ~seed:(seed + 1) n;
    }
  in
  let b =
    {
      Dense.re = Dense.random_matrix ~seed:(seed + 2) n;
      im = Dense.random_matrix ~seed:(seed + 3) n;
    }
  in
  let via_mdg = Dense.complex_matmul a b in
  let direct = Dense.complex_matmul_direct a b in
  let tol = 1e-9 *. float_of_int n in
  Numeric.Mat.approx_equal ~eps:tol via_mdg.re direct.re
  && Numeric.Mat.approx_equal ~eps:tol via_mdg.im direct.im

(** MDG of the paper's second test program: one level of Strassen's
    matrix multiplication on an N×N problem (paper: 128×128).

    Structure (paper Figure 6, right): two initialisation loops for A
    and B, ten half-size pre-additions forming the Strassen operand
    sums, seven half-size multiplies M1..M7, and eight half-size
    post-additions assembling C11, C12, C21, C22.  All transfers are
    1D; edge byte counts equal the half-size operand(s) flowing along
    the edge. *)

type node_ids = {
  init_a : int;
  init_b : int;
  pre_adds : int array;   (** 10 nodes: S1..S10 *)
  muls : int array;       (** 7 nodes: M1..M7 *)
  post_adds : int array;  (** 8 nodes, ending in C11, C12, C21, C22 *)
}

val graph : ?n:int -> unit -> Mdg.Graph.t * node_ids
(** Normalised MDG for one-level Strassen on an [n]×[n] problem
    (default 128, the paper's size).  [n] must be even and at least
    2. *)

val kernels : n:int -> Mdg.Graph.kernel list
(** Distinct matrix kernels appearing in the graph: init at full size,
    add and multiply at half size. *)

val verify_numerics : n:int -> seed:int -> bool
(** Check on real data that one-level Strassen equals the naive
    product. *)

(** {1 Multi-level recursion}

    The paper evaluates one recursion level; fully recursive Strassen
    is the natural extension and produces much larger MDGs (one level:
    29 nodes; two levels: ~200), which exercise the allocator and
    scheduler at scale. *)

val graph_recursive : levels:int -> n:int -> Mdg.Graph.t
(** Strassen's algorithm recursively expanded [levels] deep: every
    multiply at level [l < levels] is replaced by the 10-pre-add /
    7-multiply / 8-post-add sub-MDG on half-size blocks, with a
    zero-cost assembly node collecting each sub-product's quadrants.
    [graph_recursive ~levels:1 ~n] has the same shape as {!graph}.
    Raises [Invalid_argument] unless [levels >= 1] and [n] is
    divisible by [2^levels]. *)

val kernels_recursive : levels:int -> n:int -> Mdg.Graph.kernel list
(** All distinct kernels in the recursive graph: init at [n], adds at
    [n/2, n/4, ...], multiplies at [n/2^levels]. *)

lib/numeric/stats.mli:

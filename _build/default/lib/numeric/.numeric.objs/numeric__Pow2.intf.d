lib/numeric/pow2.mli:

lib/numeric/linreg.mli: Vec

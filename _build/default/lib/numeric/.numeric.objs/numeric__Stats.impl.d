lib/numeric/stats.ml: Array Float Int List

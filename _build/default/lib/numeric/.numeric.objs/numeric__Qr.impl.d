lib/numeric/qr.ml: Array Float Mat Vec

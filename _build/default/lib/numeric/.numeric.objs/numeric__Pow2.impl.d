lib/numeric/pow2.ml: Float List

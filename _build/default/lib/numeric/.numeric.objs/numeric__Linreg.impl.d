lib/numeric/linreg.ml: Array List Mat Qr Vec

lib/numeric/qr.mli: Mat Vec

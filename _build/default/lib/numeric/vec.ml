type t = float array

let create n x = Array.make n x

let init = Array.init

let copy = Array.copy

let dim = Array.length

let fill v x = Array.fill v 0 (Array.length v) x

let of_list = Array.of_list

let to_list = Array.to_list

let check_dims name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)"
                   name (Array.length a) (Array.length b))

let map2 f a b =
  check_dims "map2" a b;
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add a b = map2 ( +. ) a b

let sub a b = map2 ( -. ) a b

let mul a b = map2 ( *. ) a b

let scale c v = Array.map (fun x -> c *. x) v

let axpy a x y =
  check_dims "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let dot a b =
  check_dims "dot" a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 v = sqrt (dot v v)

let norm_inf v = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0.0 v

let dist2 a b = norm2 (sub a b)

let sum v = Array.fold_left ( +. ) 0.0 v

let nonempty name v =
  if Array.length v = 0 then invalid_arg ("Vec." ^ name ^ ": empty vector")

let mean v =
  nonempty "mean" v;
  sum v /. float_of_int (Array.length v)

let min_elt v =
  nonempty "min_elt" v;
  Array.fold_left Float.min v.(0) v

let max_elt v =
  nonempty "max_elt" v;
  Array.fold_left Float.max v.(0) v

let map = Array.map

let clamp ~lo ~hi v =
  check_dims "clamp" lo v;
  check_dims "clamp" hi v;
  Array.init (Array.length v) (fun i -> Float.min hi.(i) (Float.max lo.(i) v.(i)))

let approx_equal ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a b

let pp fmt v =
  Format.fprintf fmt "[|%a|]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ")
       (fun fmt x -> Format.fprintf fmt "%g" x))
    (Array.to_list v)

(** Power-of-two arithmetic used by the PSA rounding and bounding steps
    (paper Section 3, Theorem 2). *)

val is_pow2 : int -> bool
(** True for 1, 2, 4, 8, ...; false for non-positive integers. *)

val floor_pow2 : int -> int
(** Largest power of two [<= n]; raises [Invalid_argument] if [n < 1]. *)

val ceil_pow2 : int -> int
(** Smallest power of two [>= n]; raises [Invalid_argument] if [n < 1]. *)

val log2_exact : int -> int
(** [log2_exact (1 lsl k) = k]; raises [Invalid_argument] on
    non-powers of two. *)

val nearest_pow2 : float -> int
(** Round a positive real to the arithmetically nearest power of two,
    ties rounding up.  This is the paper's rounding-off step: the result
    never changes the value by more than a factor in [2/3, 4/3].
    Raises [Invalid_argument] if the argument is not positive and
    finite. *)

val pow2_range : int -> int list
(** [pow2_range p] lists every power of two in [1, p], ascending.
    Raises [Invalid_argument] if [p < 1]. *)

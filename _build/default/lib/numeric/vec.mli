(** Dense vectors of floats.

    Thin, allocation-explicit helpers over [float array] used throughout
    the numeric substrate.  All binary operations require equal lengths
    and raise [Invalid_argument] otherwise. *)

type t = float array

val create : int -> float -> t
(** [create n x] is a fresh vector of length [n] filled with [x]. *)

val init : int -> (int -> float) -> t
(** [init n f] is [| f 0; ...; f (n-1) |]. *)

val copy : t -> t

val dim : t -> int

val fill : t -> float -> unit

val of_list : float list -> t

val to_list : t -> float list

val add : t -> t -> t
(** Pointwise sum. *)

val sub : t -> t -> t
(** Pointwise difference. *)

val mul : t -> t -> t
(** Pointwise (Hadamard) product. *)

val scale : float -> t -> t
(** [scale c v] multiplies every component by [c]. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val dot : t -> t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Max-absolute-value norm; 0 for the empty vector. *)

val dist2 : t -> t -> float
(** Euclidean distance. *)

val sum : t -> float

val mean : t -> float
(** Arithmetic mean; raises [Invalid_argument] on the empty vector. *)

val min_elt : t -> float
(** Smallest component; raises [Invalid_argument] on the empty vector. *)

val max_elt : t -> float
(** Largest component; raises [Invalid_argument] on the empty vector. *)

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t

val clamp : lo:t -> hi:t -> t -> t
(** Componentwise projection onto the box [lo, hi]. *)

val approx_equal : ?eps:float -> t -> t -> bool
(** True when vectors have equal length and all components differ by at
    most [eps] (default [1e-9]). *)

val pp : Format.formatter -> t -> unit

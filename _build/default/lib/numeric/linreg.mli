(** Multiple linear regression by least squares.

    Used to implement the paper's "training sets" approach: measured
    costs are regressed onto the basis functions of the posynomial cost
    models to recover machine parameters (Tables 1 and 2 of the
    paper). *)

type fit = {
  coeffs : Vec.t;      (** fitted coefficients, one per basis function *)
  residuals : Vec.t;   (** per-sample [predicted - observed] *)
  r_squared : float;   (** coefficient of determination *)
  rmse : float;        (** root-mean-square error *)
}

val fit :
  basis:(float array -> float array) ->
  inputs:float array list ->
  observations:float list ->
  fit
(** [fit ~basis ~inputs ~observations] regresses each observation onto
    [basis input].  All basis rows must have the same length, and there
    must be at least as many samples as coefficients.

    @raise Invalid_argument on empty or mismatched data. *)

val predict : basis:(float array -> float array) -> fit -> float array -> float
(** Evaluate the fitted model on a fresh input. *)

val fit_through_origin_1d :
  xs:float list -> ys:float list -> float
(** Slope of the best [y = a x] fit (no intercept). *)

val fit_affine_1d : xs:float list -> ys:float list -> float * float
(** [(intercept, slope)] of the best [y = a + b x] fit. *)

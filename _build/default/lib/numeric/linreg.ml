type fit = {
  coeffs : Vec.t;
  residuals : Vec.t;
  r_squared : float;
  rmse : float;
}

let design ~basis ~inputs =
  let rows = List.map basis inputs in
  match rows with
  | [] -> invalid_arg "Linreg.fit: no samples"
  | first :: _ ->
      let k = Array.length first in
      if k = 0 then invalid_arg "Linreg.fit: empty basis";
      List.iter
        (fun r ->
          if Array.length r <> k then
            invalid_arg "Linreg.fit: inconsistent basis row lengths")
        rows;
      Mat.of_arrays (Array.of_list rows)

let fit ~basis ~inputs ~observations =
  if List.length inputs <> List.length observations then
    invalid_arg "Linreg.fit: inputs/observations length mismatch";
  let a = design ~basis ~inputs in
  if Mat.rows a < Mat.cols a then
    invalid_arg "Linreg.fit: fewer samples than coefficients";
  let y = Vec.of_list observations in
  (* Householder QR is the primary path (stabler for badly scaled
     designs); normal equations with Tikhonov fallback handle rank
     deficiency. *)
  let coeffs =
    try Qr.lsq a y with Failure _ -> Mat.solve_lsq a y
  in
  let predicted = Mat.mat_vec a coeffs in
  let residuals = Vec.sub predicted y in
  let n = Vec.dim y in
  let ss_res = Vec.dot residuals residuals in
  let y_mean = Vec.mean y in
  let ss_tot =
    Array.fold_left (fun acc v -> acc +. ((v -. y_mean) ** 2.0)) 0.0 y
  in
  let r_squared = if ss_tot <= 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  let rmse = sqrt (ss_res /. float_of_int n) in
  { coeffs; residuals; r_squared; rmse }

let predict ~basis f input = Vec.dot (basis input) f.coeffs

let fit_through_origin_1d ~xs ~ys =
  if List.length xs <> List.length ys || xs = [] then
    invalid_arg "Linreg.fit_through_origin_1d: bad data";
  let sxy = List.fold_left2 (fun acc x y -> acc +. (x *. y)) 0.0 xs ys in
  let sxx = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
  if sxx = 0.0 then invalid_arg "Linreg.fit_through_origin_1d: degenerate xs";
  sxy /. sxx

let fit_affine_1d ~xs ~ys =
  let inputs = List.map (fun x -> [| x |]) xs in
  let f = fit ~basis:(fun a -> [| 1.0; a.(0) |]) ~inputs ~observations:ys in
  (f.coeffs.(0), f.coeffs.(1))

type t = { rows : int; cols : int; data : float array }

let create rows cols x =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) x }

let init rows cols f =
  if rows < 0 || cols < 0 then invalid_arg "Mat.init: negative dimension";
  let data = Array.make (rows * cols) 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then invalid_arg "Mat.of_arrays: zero rows";
  let cols = Array.length a.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> cols then invalid_arg "Mat.of_arrays: ragged rows")
    a;
  init rows cols (fun i j -> a.(i).(j))

let rows m = m.rows

let cols m = m.cols

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Mat.get: index out of bounds";
  m.data.((i * m.cols) + j)

let set m i j x =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Mat.set: index out of bounds";
  m.data.((i * m.cols) + j) <- x

let to_arrays m = Array.init m.rows (fun i -> Array.init m.cols (fun j -> get m i j))

let copy m = { m with data = Array.copy m.data }

let row m i = Array.init m.cols (fun j -> get m i j)

let col m j = Array.init m.rows (fun i -> get m i j)

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let same_shape name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: shape mismatch (%dx%d vs %dx%d)" name a.rows
         a.cols b.rows b.cols)

let add a b =
  same_shape "add" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) +. b.data.(k)) }

let sub a b =
  same_shape "sub" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) -. b.data.(k)) }

let scale c m = { m with data = Array.map (fun x -> c *. x) m.data }

let matmul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.matmul: inner dimension mismatch (%d vs %d)" a.cols
         b.rows);
  let c = create a.rows b.cols 0.0 in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            c.data.((i * c.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

let mat_vec m v =
  if m.cols <> Array.length v then
    invalid_arg "Mat.mat_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.((i * m.cols) + j) *. v.(j))
      done;
      !acc)

let map f m = { m with data = Array.map f m.data }

let frobenius_norm m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)

let max_abs_diff a b =
  same_shape "max_abs_diff" a b;
  let d = ref 0.0 in
  Array.iteri (fun k x -> d := Float.max !d (Float.abs (x -. b.data.(k)))) a.data;
  !d

let approx_equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols && max_abs_diff a b <= eps

(* Gaussian elimination with partial pivoting on an augmented copy. *)
let solve a b =
  if a.rows <> a.cols then invalid_arg "Mat.solve: matrix not square";
  if a.rows <> Array.length b then invalid_arg "Mat.solve: rhs dimension mismatch";
  let n = a.rows in
  let m = copy a in
  let x = Array.copy b in
  for k = 0 to n - 1 do
    (* Pivot selection. *)
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (get m i k) > Float.abs (get m !pivot k) then pivot := i
    done;
    if Float.abs (get m !pivot k) < 1e-12 then
      failwith "Mat.solve: singular or near-singular matrix";
    if !pivot <> k then begin
      for j = 0 to n - 1 do
        let t = get m k j in
        set m k j (get m !pivot j);
        set m !pivot j t
      done;
      let t = x.(k) in
      x.(k) <- x.(!pivot);
      x.(!pivot) <- t
    end;
    for i = k + 1 to n - 1 do
      let f = get m i k /. get m k k in
      if f <> 0.0 then begin
        for j = k to n - 1 do
          set m i j (get m i j -. (f *. get m k j))
        done;
        x.(i) <- x.(i) -. (f *. x.(k))
      end
    done
  done;
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (get m i j *. x.(j))
    done;
    x.(i) <- !acc /. get m i i
  done;
  x

let solve_lsq a b =
  if a.rows <> Array.length b then
    invalid_arg "Mat.solve_lsq: rhs dimension mismatch";
  let at = transpose a in
  let ata = matmul at a in
  let atb = mat_vec at b in
  try solve ata atb
  with Failure _ ->
    (* Tikhonov-regularised fallback for rank-deficient designs. *)
    let n = cols a in
    let reg = init n n (fun i j -> get ata i j +. if i = j then 1e-9 else 0.0) in
    solve reg atb

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%10.6g" (get m i j)
    done;
    Format.fprintf fmt "]";
    if i < m.rows - 1 then Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"

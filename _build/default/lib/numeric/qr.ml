(* Householder QR: A = Q R, with Q stored implicitly as the sequence of
   Householder vectors in the lower trapezoid of [factors] and R in its
   upper triangle. *)

type t = {
  m : int;
  n : int;
  factors : Mat.t;   (* packed: R above the diagonal, v_k below *)
  betas : Vec.t;     (* Householder scalars *)
}

let factorise a =
  let m = Mat.rows a and n = Mat.cols a in
  if m < n then invalid_arg "Qr.factorise: more columns than rows";
  let f = Mat.copy a in
  let betas = Array.make n 0.0 in
  for k = 0 to n - 1 do
    (* Build the Householder vector annihilating column k below row k. *)
    let norm = ref 0.0 in
    for i = k to m - 1 do
      norm := !norm +. (Mat.get f i k ** 2.0)
    done;
    let norm = sqrt !norm in
    if norm > 0.0 then begin
      let akk = Mat.get f k k in
      let alpha = if akk >= 0.0 then -.norm else norm in
      (* v = x - alpha e1, normalised so v_k = 1. *)
      let v0 = akk -. alpha in
      if v0 <> 0.0 then begin
        for i = k + 1 to m - 1 do
          Mat.set f i k (Mat.get f i k /. v0)
        done;
        (* beta = 2 / (v'v); with v_k = 1 after the scaling above,
           v'v = 1 + sum_{i>k} f_ik^2. *)
        let vtv = ref 1.0 in
        for i = k + 1 to m - 1 do
          vtv := !vtv +. (Mat.get f i k ** 2.0)
        done;
        let beta = 2.0 /. !vtv in
        betas.(k) <- beta;
        Mat.set f k k alpha;
        (* Apply H = I - beta v v' to the remaining columns. *)
        for j = k + 1 to n - 1 do
          let dot = ref (Mat.get f k j) in
          for i = k + 1 to m - 1 do
            dot := !dot +. (Mat.get f i k *. Mat.get f i j)
          done;
          let s = beta *. !dot in
          Mat.set f k j (Mat.get f k j -. s);
          for i = k + 1 to m - 1 do
            Mat.set f i j (Mat.get f i j -. (s *. Mat.get f i k))
          done
        done
      end
      else begin
        (* Column already annihilated below the diagonal. *)
        betas.(k) <- 0.0;
        Mat.set f k k alpha
      end
    end
  done;
  { m; n; factors = f; betas }

(* Apply Q' to a length-m vector in place (Householder reflections in
   order). *)
let apply_qt t y =
  let y = Array.copy y in
  for k = 0 to t.n - 1 do
    if t.betas.(k) <> 0.0 then begin
      let dot = ref y.(k) in
      for i = k + 1 to t.m - 1 do
        dot := !dot +. (Mat.get t.factors i k *. y.(i))
      done;
      let s = t.betas.(k) *. !dot in
      y.(k) <- y.(k) -. s;
      for i = k + 1 to t.m - 1 do
        y.(i) <- y.(i) -. (s *. Mat.get t.factors i k)
      done
    end
  done;
  y

(* Apply Q to a length-m vector (reflections in reverse order). *)
let q_times t y =
  if Array.length y <> t.m then invalid_arg "Qr.q_times: dimension mismatch";
  let y = Array.copy y in
  for k = t.n - 1 downto 0 do
    if t.betas.(k) <> 0.0 then begin
      let dot = ref y.(k) in
      for i = k + 1 to t.m - 1 do
        dot := !dot +. (Mat.get t.factors i k *. y.(i))
      done;
      let s = t.betas.(k) *. !dot in
      y.(k) <- y.(k) -. s;
      for i = k + 1 to t.m - 1 do
        y.(i) <- y.(i) -. (s *. Mat.get t.factors i k)
      done
    end
  done;
  y

let r_diagonal t = Array.init t.n (fun k -> Mat.get t.factors k k)

let solve_lsq t b =
  if Array.length b <> t.m then invalid_arg "Qr.solve_lsq: rhs dimension mismatch";
  let qtb = apply_qt t b in
  let x = Array.make t.n 0.0 in
  for i = t.n - 1 downto 0 do
    let rii = Mat.get t.factors i i in
    if Float.abs rii < 1e-14 then failwith "Qr.solve_lsq: rank-deficient system";
    let acc = ref qtb.(i) in
    for j = i + 1 to t.n - 1 do
      acc := !acc -. (Mat.get t.factors i j *. x.(j))
    done;
    x.(i) <- !acc /. rii
  done;
  x

let lsq a b = solve_lsq (factorise a) b

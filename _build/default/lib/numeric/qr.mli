(** Householder QR factorisation and least squares.

    Numerically stabler than the normal equations used by
    {!Mat.solve_lsq}: the condition number enters once, not squared.
    Used by {!Linreg} when the design matrix is ill-conditioned (e.g.
    transfer fits mixing per-byte and startup columns whose magnitudes
    differ by six orders). *)

type t
(** A QR factorisation of an m×n matrix with m >= n. *)

val factorise : Mat.t -> t
(** Householder QR.  Raises [Invalid_argument] if the matrix has fewer
    rows than columns. *)

val solve_lsq : t -> Vec.t -> Vec.t
(** Minimiser of ‖Ax − b‖₂ via [R x = Qᵀ b].  Raises [Failure] if R is
    (numerically) rank deficient. *)

val lsq : Mat.t -> Vec.t -> Vec.t
(** [lsq a b] = [solve_lsq (factorise a) b]. *)

val r_diagonal : t -> Vec.t
(** The diagonal of R (its near-zero entries witness rank
    deficiency). *)

val q_times : t -> Vec.t -> Vec.t
(** Apply Q to a length-m vector (reconstructs [a x] from [R x]
    padded with zeros; exposed for testing orthogonality). *)

(** Small descriptive-statistics helpers used by the experiment
    harness when reporting reproduction quality. *)

val mean : float list -> float
(** Raises [Invalid_argument] on the empty list. *)

val variance : float list -> float
(** Population variance; raises on the empty list. *)

val stddev : float list -> float

val geometric_mean : float list -> float
(** Raises [Invalid_argument] if the list is empty or has a
    non-positive element. *)

val median : float list -> float
(** Raises [Invalid_argument] on the empty list. *)

val percentile : float -> float list -> float
(** [percentile q xs] for [q] in [0,1], linear interpolation between
    order statistics. *)

val relative_error : actual:float -> predicted:float -> float
(** [(predicted - actual) / actual]; raises if [actual = 0]. *)

val max_relative_error : actual:float list -> predicted:float list -> float
(** Largest absolute relative error across paired samples. *)

val mean_absolute_percentage_error :
  actual:float list -> predicted:float list -> float
(** MAPE in percent across paired samples. *)

val speedup : serial:float -> parallel:float -> float
(** [serial /. parallel]; raises if [parallel <= 0]. *)

val efficiency : serial:float -> parallel:float -> procs:int -> float
(** Speedup divided by processor count. *)

(** Dense row-major matrices of floats.

    Sized for the small systems that arise in cost-model fitting
    (normal equations with a handful of unknowns) and for the matrix
    kernels in [Kernels]; not tuned for very large problems. *)

type t

val create : int -> int -> float -> t
(** [create rows cols x] is a [rows]×[cols] matrix filled with [x]. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init rows cols f] has entry [f i j] at row [i], column [j]. *)

val identity : int -> t

val of_arrays : float array array -> t
(** Copies a rectangular array-of-rows; raises [Invalid_argument] if the
    rows are ragged or there are zero rows. *)

val to_arrays : t -> float array array

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val copy : t -> t

val row : t -> int -> Vec.t
(** Copy of row [i]. *)

val col : t -> int -> Vec.t
(** Copy of column [j]. *)

val transpose : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val matmul : t -> t -> t
(** Standard O(n³) triple loop; dimension-checked. *)

val mat_vec : t -> Vec.t -> Vec.t

val map : (float -> float) -> t -> t

val frobenius_norm : t -> float

val max_abs_diff : t -> t -> float
(** Largest absolute entrywise difference; raises on shape mismatch. *)

val approx_equal : ?eps:float -> t -> t -> bool

val solve : t -> Vec.t -> Vec.t
(** [solve a b] solves [a x = b] for square [a] by Gaussian elimination
    with partial pivoting.  Raises [Failure] on (near-)singular
    systems. *)

val solve_lsq : t -> Vec.t -> Vec.t
(** [solve_lsq a b] returns the least-squares solution of the
    overdetermined system [a x ≈ b] via the normal equations with
    Tikhonov fallback when AᵀA is singular. *)

val pp : Format.formatter -> t -> unit

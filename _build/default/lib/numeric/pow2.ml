let is_pow2 n = n > 0 && n land (n - 1) = 0

let floor_pow2 n =
  if n < 1 then invalid_arg "Pow2.floor_pow2: n < 1";
  let rec go acc = if acc * 2 <= n then go (acc * 2) else acc in
  go 1

let ceil_pow2 n =
  if n < 1 then invalid_arg "Pow2.ceil_pow2: n < 1";
  let f = floor_pow2 n in
  if f = n then f else f * 2

let log2_exact n =
  if not (is_pow2 n) then invalid_arg "Pow2.log2_exact: not a power of two";
  let rec go k acc = if acc = n then k else go (k + 1) (acc * 2) in
  go 0 1

let nearest_pow2 x =
  if not (Float.is_finite x) || x <= 0.0 then
    invalid_arg "Pow2.nearest_pow2: non-positive argument";
  if x <= 1.0 then 1
  else
    let lo = floor_pow2 (int_of_float (Float.floor x)) in
    let hi = lo * 2 in
    (* Arithmetic nearest, ties up: matches the paper's worst-case
       change of [2/3, 4/3] at the midpoint 1.5*lo. *)
    if x -. float_of_int lo < float_of_int hi -. x then lo else hi

let pow2_range p =
  if p < 1 then invalid_arg "Pow2.pow2_range: p < 1";
  let rec go acc k = if k > p then List.rev acc else go (k :: acc) (k * 2) in
  go [] 1

let nonempty name = function
  | [] -> invalid_arg ("Stats." ^ name ^ ": empty list")
  | xs -> xs

let mean xs =
  let xs = nonempty "mean" xs in
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance xs =
  let xs = nonempty "variance" xs in
  let m = mean xs in
  List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
  /. float_of_int (List.length xs)

let stddev xs = sqrt (variance xs)

let geometric_mean xs =
  let xs = nonempty "geometric_mean" xs in
  List.iter
    (fun x ->
      if x <= 0.0 then
        invalid_arg "Stats.geometric_mean: non-positive element")
    xs;
  exp (mean (List.map log xs))

let sorted xs = List.sort Float.compare xs

let median xs =
  let xs = sorted (nonempty "median" xs) in
  let a = Array.of_list xs in
  let n = Array.length a in
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let percentile q xs =
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.percentile: q out of [0,1]";
  let a = Array.of_list (sorted (nonempty "percentile" xs)) in
  let n = Array.length a in
  if n = 1 then a.(0)
  else
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = Int.min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let relative_error ~actual ~predicted =
  if actual = 0.0 then invalid_arg "Stats.relative_error: zero actual";
  (predicted -. actual) /. actual

let paired name actual predicted =
  if List.length actual <> List.length predicted || actual = [] then
    invalid_arg ("Stats." ^ name ^ ": bad paired data");
  List.combine actual predicted

let max_relative_error ~actual ~predicted =
  paired "max_relative_error" actual predicted
  |> List.fold_left
       (fun acc (a, p) -> Float.max acc (Float.abs (relative_error ~actual:a ~predicted:p)))
       0.0

let mean_absolute_percentage_error ~actual ~predicted =
  let pairs = paired "mean_absolute_percentage_error" actual predicted in
  100.0
  *. mean
       (List.map
          (fun (a, p) -> Float.abs (relative_error ~actual:a ~predicted:p))
          pairs)

let speedup ~serial ~parallel =
  if parallel <= 0.0 then invalid_arg "Stats.speedup: non-positive time";
  serial /. parallel

let efficiency ~serial ~parallel ~procs =
  if procs <= 0 then invalid_arg "Stats.efficiency: non-positive procs";
  speedup ~serial ~parallel /. float_of_int procs

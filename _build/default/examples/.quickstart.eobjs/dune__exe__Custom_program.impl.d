examples/custom_program.ml: Core Frontend List Machine Mdg Printf

examples/topology_study.mli:

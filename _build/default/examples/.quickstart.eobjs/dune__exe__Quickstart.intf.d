examples/quickstart.mli:

examples/quickstart.ml: Core Costmodel Kernels Machine Mdg Printf

examples/complex_matmul.mli:

examples/strassen.mli:

examples/topology_study.ml: Array Core Fun Kernels List Machine Printf

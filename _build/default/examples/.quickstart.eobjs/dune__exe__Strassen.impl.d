examples/strassen.ml: Array Core Kernels List Machine Mdg Printf

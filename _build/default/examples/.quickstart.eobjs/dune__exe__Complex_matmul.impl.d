examples/complex_matmul.ml: Core Costmodel Format Kernels List Machine Mdg Printf

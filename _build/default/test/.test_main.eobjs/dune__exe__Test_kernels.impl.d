test/test_kernels.ml: Alcotest Array Kernels List Mdg Numeric Printf QCheck QCheck_alcotest

test/test_extensions2.ml: Alcotest Array Ast Convex Core Filename Float Frontend Kernels List Lower Machine Mdg Opt String Sys

test/test_costmodel.ml: Alcotest Convex Costmodel Float List Machine Mdg Printf QCheck QCheck_alcotest

test/test_extensions.ml: Alcotest Array Core Costmodel Filename Float Kernels List Machine Mdg Printf QCheck QCheck_alcotest Sys

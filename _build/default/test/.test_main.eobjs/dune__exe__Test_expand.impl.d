test/test_expand.ml: Alcotest Array Fun List Machine Mdg Printf

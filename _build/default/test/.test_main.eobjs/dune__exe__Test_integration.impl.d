test/test_integration.ml: Alcotest Array Core Costmodel Float Frontend Kernels List Machine Mdg Printf QCheck QCheck_alcotest

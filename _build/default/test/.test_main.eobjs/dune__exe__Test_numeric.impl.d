test/test_numeric.ml: Alcotest Array Float Gen Linreg List Mat Numeric Pow2 QCheck QCheck_alcotest Qr Stats Vec

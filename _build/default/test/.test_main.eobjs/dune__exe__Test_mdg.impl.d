test/test_mdg.ml: Alcotest Array Fun Hashtbl Kernels List Mdg QCheck QCheck_alcotest String

test/test_machine.ml: Alcotest Array Costmodel Float Fun Int List Machine Mdg QCheck QCheck_alcotest

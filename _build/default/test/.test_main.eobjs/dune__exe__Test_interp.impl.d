test/test_interp.ml: Alcotest Array Ast Frontend Interp List Numeric Opt Printf QCheck QCheck_alcotest

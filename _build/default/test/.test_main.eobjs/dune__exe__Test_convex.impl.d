test/test_convex.ml: Alcotest Array Convex Expr Float Gen List Numeric Posynomial Printf QCheck QCheck_alcotest Solver

test/test_network.ml: Alcotest Array Float Fun List Machine Printf QCheck QCheck_alcotest

test/test_frontend.ml: Alcotest Array Ast Core Float Frontend List Lower Machine Mdg Parse

test/test_core.ml: Alcotest Allocation Array Bounds Codegen Core Costmodel Float Gantt Gen Kernels List Machine Mdg Numeric Pipeline Printf Psa QCheck QCheck_alcotest Schedule String

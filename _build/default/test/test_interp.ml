(* Semantic tests: the interpreter as ground truth for the optimiser
   and the front end. *)

open Frontend
module Mat = Numeric.Mat

let prog stmts = Ast.program ~size:8 stmts

let test_interp_basic () =
  let p =
    prog
      [
        Ast.stmt "A" Ast.Init;
        Ast.stmt "B" (Ast.Add ("A", "A"));
        Ast.stmt "C" (Ast.Sub ("B", "A"));
      ]
  in
  let finals = Interp.run ~seed:3 p in
  let a = List.assoc "A" finals and c = List.assoc "C" finals in
  (* C = 2A - A = A. *)
  Alcotest.(check bool) "C = A" true (Mat.approx_equal ~eps:1e-12 a c)

let test_interp_mul_matches_dense () =
  let p =
    prog
      [
        Ast.stmt "A" Ast.Init;
        Ast.stmt "B" Ast.Init;
        Ast.stmt "C" (Ast.Mul ("A", "B"));
      ]
  in
  let finals = Interp.run ~seed:7 p in
  let a = List.assoc "A" finals
  and b = List.assoc "B" finals
  and c = List.assoc "C" finals in
  Alcotest.(check bool) "C = A*B" true
    (Mat.approx_equal ~eps:1e-12 (Mat.matmul a b) c)

let test_interp_init_stable_by_name () =
  (* Re-initialising the same name yields identical data; the value is
     independent of surrounding statements. *)
  let p1 = prog [ Ast.stmt "A" Ast.Init ] in
  let p2 = prog [ Ast.stmt "Z" Ast.Init; Ast.stmt "A" Ast.Init ] in
  Alcotest.(check bool) "stable" true
    (Mat.approx_equal
       (List.assoc "A" (Interp.run ~seed:1 p1))
       (List.assoc "A" (Interp.run ~seed:1 p2)))

let test_interp_outputs () =
  let p =
    prog
      [
        Ast.stmt "A" Ast.Init;
        Ast.stmt "B" (Ast.Add ("A", "A"));
        Ast.stmt "C" (Ast.Mul ("B", "B"));
      ]
  in
  (* Only C's final value is never read. *)
  Alcotest.(check (list string)) "outputs" [ "C" ]
    (List.map fst (Interp.outputs p))

let test_equivalent_detects_difference () =
  let p = prog [ Ast.stmt "A" Ast.Init; Ast.stmt "B" (Ast.Add ("A", "A")) ] in
  let q = prog [ Ast.stmt "A" Ast.Init; Ast.stmt "B" (Ast.Mul ("A", "A")) ] in
  Alcotest.(check bool) "different" false (Interp.equivalent ~on:[ "B" ] p q);
  Alcotest.(check bool) "same" true (Interp.equivalent ~on:[ "A" ] p q)

(* Random single-assignment program generator: operands drawn from
   previously defined names, with deliberate duplicate right-hand sides
   so CSE has work to do. *)
let random_program_gen =
  let open QCheck.Gen in
  let* n_inits = int_range 1 3 in
  let* n_ops = int_range 1 12 in
  let* picks = list_size (return (3 * n_ops)) (int_range 0 1000) in
  let picks = ref picks in
  let next_pick bound =
    match !picks with
    | [] -> 0
    | p :: rest ->
        picks := rest;
        p mod bound
  in
  let names = ref (List.init n_inits (fun i -> Printf.sprintf "I%d" i)) in
  let stmts =
    ref (List.init n_inits (fun i -> Ast.stmt (Printf.sprintf "I%d" i) Ast.Init))
  in
  for k = 0 to n_ops - 1 do
    let pool = Array.of_list !names in
    let a = pool.(next_pick (Array.length pool)) in
    let b = pool.(next_pick (Array.length pool)) in
    let rhs =
      match next_pick 4 with
      | 0 -> Ast.Add (a, b)
      | 1 -> Ast.Sub (a, b)
      | _ -> Ast.Mul (a, b)
      (* Mul twice as likely: more CSE-able pairs. *)
    in
    let target = Printf.sprintf "T%d" k in
    names := target :: !names;
    stmts := Ast.stmt target rhs :: !stmts
  done;
  return (Ast.program ~size:4 (List.rev !stmts))

let prop_optimise_preserves_outputs =
  QCheck.Test.make ~name:"optimise preserves output values" ~count:100
    (QCheck.make random_program_gen)
    (fun p ->
      let outs = Ast.outputs p in
      let q = Opt.optimise p in
      Interp.equivalent ~seed:11 ~eps:1e-9 ~on:outs p q)

let prop_cse_preserves_all_final_values =
  (* CSE alone keeps every name's final value (eliminated targets
     resolve to their representatives at read sites; the names
     themselves may vanish, so compare only names still defined). *)
  QCheck.Test.make ~name:"CSE preserves surviving final values" ~count:100
    (QCheck.make random_program_gen)
    (fun p ->
      let q = Opt.common_subexpressions p in
      let survivors = Ast.defined_matrices q in
      Interp.equivalent ~seed:5 ~eps:1e-9 ~on:survivors p q)

let prop_dce_only_removes =
  QCheck.Test.make ~name:"DCE result is a subsequence of the input" ~count:100
    (QCheck.make random_program_gen)
    (fun p ->
      let q = Opt.dead_code_elimination p in
      let rec subseq xs ys =
        match (xs, ys) with
        | [], _ -> true
        | _, [] -> false
        | x :: xs', y :: ys' ->
            if x = y then subseq xs' ys' else subseq xs ys'
      in
      subseq q.Ast.stmts p.Ast.stmts
      && Interp.equivalent ~seed:2 ~on:(Ast.outputs p) p q)

let suite =
  [
    Alcotest.test_case "interp: arithmetic identities" `Quick test_interp_basic;
    Alcotest.test_case "interp: matmul agrees with Mat" `Quick
      test_interp_mul_matches_dense;
    Alcotest.test_case "interp: init stable by name" `Quick
      test_interp_init_stable_by_name;
    Alcotest.test_case "interp: outputs" `Quick test_interp_outputs;
    Alcotest.test_case "interp: equivalence check" `Quick
      test_equivalent_detects_difference;
    QCheck_alcotest.to_alcotest prop_optimise_preserves_outputs;
    QCheck_alcotest.to_alcotest prop_cse_preserves_all_final_values;
    QCheck_alcotest.to_alcotest prop_dce_only_removes;
  ]

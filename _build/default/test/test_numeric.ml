(* Unit and property tests for the numeric substrate: Vec, Mat, Linreg,
   Stats, Pow2. *)

open Numeric

let check_float = Alcotest.(check (float 1e-9))

let check_close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec_basic () =
  let v = Vec.init 4 float_of_int in
  check_float "sum" 6.0 (Vec.sum v);
  check_float "mean" 1.5 (Vec.mean v);
  check_float "min" 0.0 (Vec.min_elt v);
  check_float "max" 3.0 (Vec.max_elt v);
  check_float "dot" 14.0 (Vec.dot v v);
  check_float "norm2" (sqrt 14.0) (Vec.norm2 v)

let test_vec_ops () =
  let a = Vec.of_list [ 1.0; 2.0 ] and b = Vec.of_list [ 3.0; 5.0 ] in
  Alcotest.(check bool) "add" true (Vec.approx_equal (Vec.add a b) [| 4.0; 7.0 |]);
  Alcotest.(check bool) "sub" true (Vec.approx_equal (Vec.sub b a) [| 2.0; 3.0 |]);
  Alcotest.(check bool) "mul" true (Vec.approx_equal (Vec.mul a b) [| 3.0; 10.0 |]);
  Alcotest.(check bool)
    "scale" true
    (Vec.approx_equal (Vec.scale 2.0 a) [| 2.0; 4.0 |]);
  check_float "dist2" (sqrt 13.0) (Vec.dist2 a b)

let test_vec_axpy () =
  let x = [| 1.0; 2.0 |] and y = [| 10.0; 20.0 |] in
  Vec.axpy 3.0 x y;
  Alcotest.(check bool) "axpy" true (Vec.approx_equal y [| 13.0; 26.0 |])

let test_vec_clamp () =
  let lo = [| 0.0; 0.0; 0.0 |] and hi = [| 1.0; 1.0; 1.0 |] in
  let v = Vec.clamp ~lo ~hi [| -0.5; 0.5; 1.5 |] in
  Alcotest.(check bool) "clamp" true (Vec.approx_equal v [| 0.0; 0.5; 1.0 |])

let test_vec_errors () =
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Vec.dot: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Vec.dot [| 1.0; 2.0 |] [| 1.0; 2.0; 3.0 |]));
  Alcotest.check_raises "empty mean" (Invalid_argument "Vec.mean: empty vector")
    (fun () -> ignore (Vec.mean [||]))

let test_vec_norm_inf () =
  check_float "norm_inf" 3.0 (Vec.norm_inf [| -3.0; 2.0 |]);
  check_float "norm_inf empty" 0.0 (Vec.norm_inf [||])

(* ------------------------------------------------------------------ *)
(* Mat                                                                 *)
(* ------------------------------------------------------------------ *)

let test_mat_identity_mul () =
  let a = Mat.init 3 3 (fun i j -> float_of_int ((3 * i) + j)) in
  let i3 = Mat.identity 3 in
  Alcotest.(check bool) "A*I = A" true (Mat.approx_equal (Mat.matmul a i3) a);
  Alcotest.(check bool) "I*A = A" true (Mat.approx_equal (Mat.matmul i3 a) a)

let test_mat_matmul_known () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Mat.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Mat.matmul a b in
  Alcotest.(check bool)
    "2x2 product" true
    (Mat.approx_equal c (Mat.of_arrays [| [| 19.0; 22.0 |]; [| 43.0; 50.0 |] |]))

let test_mat_transpose () =
  let a = Mat.init 2 3 (fun i j -> float_of_int ((10 * i) + j)) in
  let t = Mat.transpose a in
  Alcotest.(check int) "rows" 3 (Mat.rows t);
  Alcotest.(check int) "cols" 2 (Mat.cols t);
  check_float "entry" (Mat.get a 1 2) (Mat.get t 2 1);
  Alcotest.(check bool)
    "double transpose" true
    (Mat.approx_equal (Mat.transpose t) a)

let test_mat_solve () =
  let a = Mat.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Mat.solve a [| 5.0; 10.0 |] in
  Alcotest.(check bool) "solution" true (Vec.approx_equal x [| 1.0; 3.0 |])

let test_mat_solve_pivot () =
  (* Requires row exchange: leading zero pivot. *)
  let a = Mat.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Mat.solve a [| 2.0; 3.0 |] in
  Alcotest.(check bool) "pivoted" true (Vec.approx_equal x [| 3.0; 2.0 |])

let test_mat_solve_singular () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular"
    (Failure "Mat.solve: singular or near-singular matrix") (fun () ->
      ignore (Mat.solve a [| 1.0; 2.0 |]))

let test_mat_solve_roundtrip () =
  (* Random well-conditioned systems solve to high accuracy. *)
  let n = 6 in
  let a =
    Mat.init n n (fun i j ->
        (if i = j then 10.0 else 0.0) +. sin (float_of_int ((i * n) + j)))
  in
  let x_true = Vec.init n (fun i -> float_of_int (i + 1)) in
  let b = Mat.mat_vec a x_true in
  let x = Mat.solve a b in
  Alcotest.(check bool) "roundtrip" true (Vec.approx_equal ~eps:1e-8 x x_true)

let test_mat_lsq_exact () =
  (* Overdetermined but consistent system recovers exactly. *)
  let a =
    Mat.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |]; [| 1.0; 1.0 |] |]
  in
  let x = Mat.solve_lsq a [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check bool) "lsq" true (Vec.approx_equal ~eps:1e-8 x [| 1.0; 2.0 |])

let test_mat_errors () =
  Alcotest.check_raises "ragged"
    (Invalid_argument "Mat.of_arrays: ragged rows") (fun () ->
      ignore (Mat.of_arrays [| [| 1.0 |]; [| 1.0; 2.0 |] |]));
  Alcotest.check_raises "matmul mismatch"
    (Invalid_argument "Mat.matmul: inner dimension mismatch (2 vs 3)")
    (fun () ->
      ignore (Mat.matmul (Mat.create 2 2 0.0) (Mat.create 3 3 0.0)))

(* ------------------------------------------------------------------ *)
(* Qr                                                                  *)
(* ------------------------------------------------------------------ *)

let test_qr_matches_normal_equations () =
  let a =
    Mat.of_arrays
      [| [| 1.0; 2.0 |]; [| 3.0; 1.0 |]; [| 0.5; 4.0 |]; [| 2.0; 2.0 |] |]
  in
  let b = [| 1.0; 2.0; 3.0; 4.0 |] in
  let via_qr = Qr.lsq a b in
  let via_ne = Mat.solve_lsq a b in
  Alcotest.(check bool) "agree" true (Vec.approx_equal ~eps:1e-8 via_qr via_ne)

let test_qr_exact_square () =
  let a = Mat.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Qr.lsq a [| 5.0; 10.0 |] in
  Alcotest.(check bool) "square system" true
    (Vec.approx_equal ~eps:1e-10 x [| 1.0; 3.0 |])

let test_qr_preserves_norm () =
  (* Q is orthogonal: applying it preserves Euclidean norms. *)
  let a =
    Mat.init 5 3 (fun i j -> sin (float_of_int ((7 * i) + j)) +. 2.0)
  in
  let f = Qr.factorise a in
  let y = [| 1.0; -2.0; 0.5; 3.0; -1.0 |] in
  check_close ~eps:1e-10 "norm preserved" (Vec.norm2 y) (Vec.norm2 (Qr.q_times f y))

let test_qr_ill_conditioned_columns () =
  (* Columns scaled apart by 1e7 — the regime of transfer fits mixing
     startup (1e-4 s) and per-byte (1e-9 s/B) coefficients. *)
  let xs = List.init 12 (fun i -> float_of_int (i + 1)) in
  let t_ss = 7.7e-4 and t_ps = 4.9e-10 in
  let a =
    Mat.of_arrays
      (Array.of_list
         (List.map (fun x -> [| x; 1e7 *. x *. x |]) xs))
  in
  let b =
    Vec.of_list (List.map (fun x -> (t_ss *. x) +. (t_ps *. 1e7 *. x *. x)) xs)
  in
  let c = Qr.lsq a b in
  check_close ~eps:1e-10 "startup coeff" t_ss c.(0);
  check_close ~eps:1e-14 "per-byte coeff" t_ps c.(1)

let test_qr_rank_deficient () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |]; [| 3.0; 6.0 |] |] in
  let f = Qr.factorise a in
  let diag = Qr.r_diagonal f in
  Alcotest.(check bool) "tiny second pivot" true (Float.abs diag.(1) < 1e-10);
  Alcotest.(check bool) "solve raises" true
    (try
       ignore (Qr.solve_lsq f [| 1.0; 2.0; 3.0 |]);
       false
     with Failure _ -> true)

let test_qr_rejects_wide () =
  Alcotest.check_raises "wide"
    (Invalid_argument "Qr.factorise: more columns than rows") (fun () ->
      ignore (Qr.factorise (Mat.create 2 3 1.0)))

let prop_qr_residual_minimal =
  (* The QR least-squares residual is no larger than at perturbed
     candidate solutions. *)
  QCheck.Test.make ~name:"QR least-squares residual is minimal" ~count:100
    QCheck.(pair (int_range 0 1000) (pair (float_range (-1.0) 1.0) (float_range (-1.0) 1.0)))
    (fun (seed, (d0, d1)) ->
      let a =
        Mat.init 6 2 (fun i j ->
            sin (float_of_int ((seed * 31) + (i * 7) + j)) +. 1.5)
      in
      let b = Vec.init 6 (fun i -> cos (float_of_int (seed + i))) in
      let x = Qr.lsq a b in
      let resid v = Vec.norm2 (Vec.sub (Mat.mat_vec a v) b) in
      resid x <= resid [| x.(0) +. d0; x.(1) +. d1 |] +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Linreg                                                              *)
(* ------------------------------------------------------------------ *)

let test_linreg_exact () =
  (* y = 2 + 3x fits exactly. *)
  let xs = [ 1.0; 2.0; 3.0; 4.0 ] in
  let ys = List.map (fun x -> 2.0 +. (3.0 *. x)) xs in
  let intercept, slope = Linreg.fit_affine_1d ~xs ~ys in
  check_close "intercept" 2.0 intercept;
  check_close "slope" 3.0 slope

let test_linreg_origin () =
  let xs = [ 1.0; 2.0; 4.0 ] in
  let ys = List.map (fun x -> 5.0 *. x) xs in
  check_close "slope through origin" 5.0 (Linreg.fit_through_origin_1d ~xs ~ys)

let test_linreg_multi () =
  (* y = 1*b0 + 2*b1 with basis (1/x, x). *)
  let basis a = [| 1.0 /. a.(0); a.(0) |] in
  let inputs = List.map (fun x -> [| x |]) [ 1.0; 2.0; 3.0; 5.0; 8.0 ] in
  let observations =
    List.map (fun i -> (1.0 /. i.(0)) +. (2.0 *. i.(0))) inputs
  in
  let f = Linreg.fit ~basis ~inputs ~observations in
  check_close "c0" 1.0 f.coeffs.(0);
  check_close "c1" 2.0 f.coeffs.(1);
  check_close "r2" 1.0 f.r_squared;
  Alcotest.(check bool) "rmse tiny" true (f.rmse < 1e-9)

let test_linreg_noisy_r2 () =
  (* Deterministic "noise": r^2 below 1 but high. *)
  let xs = List.init 20 (fun i -> float_of_int (i + 1)) in
  let ys = List.map (fun x -> (2.0 *. x) +. sin (10.0 *. x)) xs in
  let inputs = List.map (fun x -> [| x |]) xs in
  let f = Linreg.fit ~basis:(fun a -> [| 1.0; a.(0) |]) ~inputs ~observations:ys in
  Alcotest.(check bool) "r2 in (0.9, 1)" true
    (f.r_squared > 0.9 && f.r_squared < 1.0)

let test_linreg_predict () =
  let basis a = [| 1.0; a.(0) |] in
  let inputs = List.map (fun x -> [| x |]) [ 0.0; 1.0; 2.0 ] in
  let f = Linreg.fit ~basis ~inputs ~observations:[ 1.0; 3.0; 5.0 ] in
  check_close "predict" 9.0 (Linreg.predict ~basis f [| 4.0 |])

let test_linreg_errors () =
  Alcotest.check_raises "no samples" (Invalid_argument "Linreg.fit: no samples")
    (fun () ->
      ignore (Linreg.fit ~basis:(fun a -> a) ~inputs:[] ~observations:[]));
  Alcotest.check_raises "underdetermined"
    (Invalid_argument "Linreg.fit: fewer samples than coefficients") (fun () ->
      ignore
        (Linreg.fit
           ~basis:(fun a -> [| 1.0; a.(0) |])
           ~inputs:[ [| 1.0 |] ] ~observations:[ 1.0 ]))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_basic () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "variance" (2.0 /. 3.0) (Stats.variance [ 1.0; 2.0; 3.0 ]);
  check_float "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check_float "median even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ])

let test_stats_geomean () =
  check_close "geometric mean" 2.0 (Stats.geometric_mean [ 1.0; 2.0; 4.0 ])

let test_stats_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check_float "p0" 1.0 (Stats.percentile 0.0 xs);
  check_float "p50" 3.0 (Stats.percentile 0.5 xs);
  check_float "p100" 5.0 (Stats.percentile 1.0 xs);
  check_float "p25" 2.0 (Stats.percentile 0.25 xs)

let test_stats_errors_and_speedup () =
  check_float "speedup" 4.0 (Stats.speedup ~serial:8.0 ~parallel:2.0);
  check_float "efficiency" 0.5
    (Stats.efficiency ~serial:8.0 ~parallel:2.0 ~procs:8);
  check_float "relerr" 0.1 (Stats.relative_error ~actual:10.0 ~predicted:11.0);
  check_float "mape" 10.0
    (Stats.mean_absolute_percentage_error ~actual:[ 10.0; 10.0 ]
       ~predicted:[ 11.0; 9.0 ]);
  check_float "maxrel" 0.2
    (Stats.max_relative_error ~actual:[ 10.0; 10.0 ] ~predicted:[ 11.0; 8.0 ])

(* ------------------------------------------------------------------ *)
(* Pow2                                                                *)
(* ------------------------------------------------------------------ *)

let test_pow2_predicates () =
  Alcotest.(check bool) "1" true (Pow2.is_pow2 1);
  Alcotest.(check bool) "64" true (Pow2.is_pow2 64);
  Alcotest.(check bool) "6" false (Pow2.is_pow2 6);
  Alcotest.(check bool) "0" false (Pow2.is_pow2 0);
  Alcotest.(check bool) "-4" false (Pow2.is_pow2 (-4))

let test_pow2_floor_ceil () =
  Alcotest.(check int) "floor 1" 1 (Pow2.floor_pow2 1);
  Alcotest.(check int) "floor 63" 32 (Pow2.floor_pow2 63);
  Alcotest.(check int) "floor 64" 64 (Pow2.floor_pow2 64);
  Alcotest.(check int) "ceil 33" 64 (Pow2.ceil_pow2 33);
  Alcotest.(check int) "ceil 32" 32 (Pow2.ceil_pow2 32);
  Alcotest.(check int) "log2 32" 5 (Pow2.log2_exact 32)

let test_pow2_nearest () =
  Alcotest.(check int) "2.9 -> 2" 2 (Pow2.nearest_pow2 2.9);
  Alcotest.(check int) "3.0 -> 4 (tie up)" 4 (Pow2.nearest_pow2 3.0);
  Alcotest.(check int) "3.1 -> 4" 4 (Pow2.nearest_pow2 3.1);
  Alcotest.(check int) "0.3 -> 1" 1 (Pow2.nearest_pow2 0.3);
  Alcotest.(check int) "1.4 -> 1" 1 (Pow2.nearest_pow2 1.4);
  Alcotest.(check int) "47 -> 32" 32 (Pow2.nearest_pow2 47.0);
  Alcotest.(check int) "49 -> 64" 64 (Pow2.nearest_pow2 49.0)

let test_pow2_range () =
  Alcotest.(check (list int)) "range 1" [ 1 ] (Pow2.pow2_range 1);
  Alcotest.(check (list int))
    "range 20" [ 1; 2; 4; 8; 16 ] (Pow2.pow2_range 20)

(* The paper's rounding-factor claim: nearest-power-of-two rounding
   changes any value by a factor within [2/3, 4/3]. *)
let prop_nearest_factor =
  QCheck.Test.make ~name:"nearest_pow2 factor within [2/3, 4/3]" ~count:500
    QCheck.(float_range 1.0 64.0)
    (fun p ->
      let r = float_of_int (Pow2.nearest_pow2 p) in
      let f = r /. p in
      f >= (2.0 /. 3.0) -. 1e-9 && f <= (4.0 /. 3.0) +. 1e-9)

let prop_lsq_residual_orthogonal =
  (* Least-squares residuals are orthogonal to the column space. *)
  QCheck.Test.make ~name:"lsq residual orthogonal to design columns" ~count:100
    QCheck.(list_of_size (Gen.int_range 3 12) (float_range (-5.0) 5.0))
    (fun xs ->
      QCheck.assume (List.length xs >= 3);
      let inputs = List.map (fun x -> [| x |]) xs in
      let observations = List.map (fun x -> (x *. x) +. 1.0) xs in
      let basis a = [| 1.0; a.(0) |] in
      let f = Linreg.fit ~basis ~inputs ~observations in
      let design = List.map basis inputs in
      let col k = List.map (fun row -> row.(k)) design in
      let dot xs ys = List.fold_left2 (fun acc a b -> acc +. (a *. b)) 0.0 xs ys in
      let res = Array.to_list f.residuals in
      let scale =
        1.0 +. List.fold_left (fun acc r -> acc +. Float.abs r) 0.0 res
      in
      Float.abs (dot (col 0) res) < 1e-6 *. scale
      && Float.abs (dot (col 1) res) < 1e-6 *. scale)

let suite =
  [
    Alcotest.test_case "vec basic reductions" `Quick test_vec_basic;
    Alcotest.test_case "vec pointwise ops" `Quick test_vec_ops;
    Alcotest.test_case "vec axpy in place" `Quick test_vec_axpy;
    Alcotest.test_case "vec clamp to box" `Quick test_vec_clamp;
    Alcotest.test_case "vec error conditions" `Quick test_vec_errors;
    Alcotest.test_case "vec infinity norm" `Quick test_vec_norm_inf;
    Alcotest.test_case "mat identity multiply" `Quick test_mat_identity_mul;
    Alcotest.test_case "mat known 2x2 product" `Quick test_mat_matmul_known;
    Alcotest.test_case "mat transpose" `Quick test_mat_transpose;
    Alcotest.test_case "mat solve 2x2" `Quick test_mat_solve;
    Alcotest.test_case "mat solve needs pivoting" `Quick test_mat_solve_pivot;
    Alcotest.test_case "mat solve singular" `Quick test_mat_solve_singular;
    Alcotest.test_case "mat solve roundtrip 6x6" `Quick test_mat_solve_roundtrip;
    Alcotest.test_case "mat least squares consistent" `Quick test_mat_lsq_exact;
    Alcotest.test_case "mat error conditions" `Quick test_mat_errors;
    Alcotest.test_case "qr matches normal equations" `Quick
      test_qr_matches_normal_equations;
    Alcotest.test_case "qr exact square solve" `Quick test_qr_exact_square;
    Alcotest.test_case "qr preserves norms (orthogonality)" `Quick
      test_qr_preserves_norm;
    Alcotest.test_case "qr ill-conditioned columns" `Quick
      test_qr_ill_conditioned_columns;
    Alcotest.test_case "qr rank deficiency" `Quick test_qr_rank_deficient;
    Alcotest.test_case "qr rejects wide matrices" `Quick test_qr_rejects_wide;
    QCheck_alcotest.to_alcotest prop_qr_residual_minimal;
    Alcotest.test_case "linreg exact affine" `Quick test_linreg_exact;
    Alcotest.test_case "linreg through origin" `Quick test_linreg_origin;
    Alcotest.test_case "linreg custom basis" `Quick test_linreg_multi;
    Alcotest.test_case "linreg noisy r^2" `Quick test_linreg_noisy_r2;
    Alcotest.test_case "linreg predict" `Quick test_linreg_predict;
    Alcotest.test_case "linreg error conditions" `Quick test_linreg_errors;
    Alcotest.test_case "stats basics" `Quick test_stats_basic;
    Alcotest.test_case "stats geometric mean" `Quick test_stats_geomean;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats speedup/efficiency/error" `Quick
      test_stats_errors_and_speedup;
    Alcotest.test_case "pow2 predicates" `Quick test_pow2_predicates;
    Alcotest.test_case "pow2 floor/ceil/log2" `Quick test_pow2_floor_ceil;
    Alcotest.test_case "pow2 nearest rounding" `Quick test_pow2_nearest;
    Alcotest.test_case "pow2 range" `Quick test_pow2_range;
    QCheck_alcotest.to_alcotest prop_nearest_factor;
    QCheck_alcotest.to_alcotest prop_lsq_residual_orthogonal;
  ]

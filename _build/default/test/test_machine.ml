(* Tests for the machine substrate: event queue, ground truth, message
   plans, programs, the discrete-event simulator and the measurement
   harness. *)

module G = Mdg.Graph
module M = Machine
module GT = Machine.Ground_truth

let check_close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Event queue                                                         *)
(* ------------------------------------------------------------------ *)

let test_eq_ordering () =
  let q = M.Event_queue.create () in
  M.Event_queue.push q ~time:3.0 "c";
  M.Event_queue.push q ~time:1.0 "a";
  M.Event_queue.push q ~time:2.0 "b";
  Alcotest.(check int) "length" 3 (M.Event_queue.length q);
  Alcotest.(check (option (float 0.0))) "peek" (Some 1.0) (M.Event_queue.peek_time q);
  let order = List.init 3 (fun _ -> M.Event_queue.pop q) in
  Alcotest.(check (list (option (pair (float 0.0) string))))
    "sorted"
    [ Some (1.0, "a"); Some (2.0, "b"); Some (3.0, "c") ]
    order;
  Alcotest.(check bool) "empty" true (M.Event_queue.is_empty q)

let test_eq_fifo_ties () =
  let q = M.Event_queue.create () in
  M.Event_queue.push q ~time:1.0 "first";
  M.Event_queue.push q ~time:1.0 "second";
  Alcotest.(check (option (pair (float 0.0) string)))
    "tie keeps insertion order" (Some (1.0, "first")) (M.Event_queue.pop q)

let test_eq_many () =
  (* Heap property under a pseudo-random workload. *)
  let q = M.Event_queue.create () in
  let x = ref 12345 in
  for _ = 1 to 500 do
    x := ((!x * 1103515245) + 12345) land 0x3FFFFFFF;
    M.Event_queue.push q ~time:(float_of_int (!x mod 1000)) ()
  done;
  let prev = ref neg_infinity in
  for _ = 1 to 500 do
    match M.Event_queue.pop q with
    | Some (t, ()) ->
        Alcotest.(check bool) "nondecreasing" true (t >= !prev);
        prev := t
    | None -> Alcotest.fail "queue exhausted early"
  done

let test_eq_rejects_bad_time () =
  let q = M.Event_queue.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Event_queue.push: bad time")
    (fun () -> M.Event_queue.push q ~time:(-1.0) ())

(* ------------------------------------------------------------------ *)
(* Ground truth                                                        *)
(* ------------------------------------------------------------------ *)

let test_gt_serial_times_match_paper () =
  let gt = GT.cm5_like () in
  (* tau(add 64) ~ 3.73 ms, tau(mul 64) ~ 298.47 ms (Table 1). *)
  check_close ~eps:0.2e-3 "add tau" 3.73e-3
    (GT.kernel_serial_time gt (G.Matrix_add 64));
  check_close ~eps:2e-3 "mul tau" 298.47e-3
    (GT.kernel_serial_time gt (G.Matrix_multiply 64))

let test_gt_kernel_monotone () =
  let gt = GT.cm5_like () in
  List.iter
    (fun kernel ->
      let t1 = GT.kernel_time gt kernel ~procs:1 in
      let t64 = GT.kernel_time gt kernel ~procs:64 in
      Alcotest.(check bool) "faster on 64" true (t64 < t1))
    [ G.Matrix_add 64; G.Matrix_multiply 64; G.Matrix_init 128 ]

let test_gt_synthetic_exact_amdahl () =
  let gt = GT.cm5_like () in
  let k = G.Synthetic { alpha = 0.25; tau = 8.0 } in
  check_close "p=1" 8.0 (GT.kernel_time gt k ~procs:1);
  check_close "p=4" (8.0 *. (0.25 +. (0.75 /. 4.0))) (GT.kernel_time gt k ~procs:4)

let test_gt_dummy_free () =
  let gt = GT.cm5_like () in
  check_close "dummy" 0.0 (GT.kernel_time gt G.Dummy ~procs:16)

let test_gt_perturbations_vs_ideal () =
  (* The cm5_like machine deviates from pure Amdahl; ideal does not. *)
  let real = GT.cm5_like () and ideal = GT.ideal () in
  let k = G.Matrix_multiply 64 in
  let t_real = GT.kernel_time real k ~procs:64 in
  let t_ideal = GT.kernel_time ideal k ~procs:64 in
  Alcotest.(check bool) "real slower at scale (sync overhead)" true
    (t_real > t_ideal);
  (* but within 25%: the perturbation is second-order. *)
  Alcotest.(check bool) "perturbation bounded" true
    (t_real /. t_ideal < 1.25)

let test_gt_message_costs () =
  let gt = GT.ideal () in
  let tr = Costmodel.Params.cm5_transfer in
  check_close "send" (tr.t_ss +. (1000.0 *. tr.t_ps)) (GT.send_busy gt ~bytes:1000.0);
  check_close "recv" (tr.t_sr +. (1000.0 *. tr.t_pr)) (GT.recv_busy gt ~bytes:1000.0);
  check_close "net (ideal)" 0.0 (GT.net_delay gt ~bytes:1000.0);
  let real = GT.cm5_like () in
  Alcotest.(check bool) "packetisation adds cost" true
    (GT.send_busy real ~bytes:8192.0
    > GT.send_busy real ~bytes:1.0 +. (8191.0 *. 485e-9))

(* ------------------------------------------------------------------ *)
(* Transfer plans                                                      *)
(* ------------------------------------------------------------------ *)

let procs a b = (Array.init a Fun.id, Array.init b (fun i -> a + i))

let test_plan_1d_equal () =
  let senders, receivers = procs 4 4 in
  let msgs = M.Transfer_plan.messages ~kind:G.Oned ~bytes:4096.0 ~senders ~receivers in
  Alcotest.(check int) "4 messages" 4 (List.length msgs);
  Alcotest.(check bool) "conserves" true
    (M.Transfer_plan.conserves_bytes ~bytes:4096.0 msgs);
  List.iter
    (fun (m : M.Transfer_plan.message) ->
      check_close "each 1024" 1024.0 m.bytes;
      Alcotest.(check int) "aligned pairs" m.src_proc (m.dst_proc - 4))
    msgs

let test_plan_1d_expand () =
  (* 2 senders -> 8 receivers: 8 messages, 4 per sender. *)
  let senders, receivers = procs 2 8 in
  let msgs = M.Transfer_plan.messages ~kind:G.Oned ~bytes:8192.0 ~senders ~receivers in
  Alcotest.(check int) "8 messages" 8 (List.length msgs);
  Alcotest.(check int) "per sender" 4 (M.Transfer_plan.max_messages_per_sender msgs);
  Alcotest.(check bool) "conserves" true
    (M.Transfer_plan.conserves_bytes ~bytes:8192.0 msgs)

let test_plan_1d_contract () =
  (* 8 senders -> 2 receivers: 8 messages of L/8. *)
  let senders, receivers = procs 8 2 in
  let msgs = M.Transfer_plan.messages ~kind:G.Oned ~bytes:8192.0 ~senders ~receivers in
  Alcotest.(check int) "8 messages" 8 (List.length msgs);
  List.iter (fun (m : M.Transfer_plan.message) -> check_close "1024" 1024.0 m.bytes) msgs

let test_plan_1d_nonaligned () =
  (* 3 senders -> 2 receivers: boundary at 1/2 cuts sender 1's block. *)
  let senders, receivers = procs 3 2 in
  let msgs = M.Transfer_plan.messages ~kind:G.Oned ~bytes:600.0 ~senders ~receivers in
  Alcotest.(check int) "4 messages" 4 (List.length msgs);
  Alcotest.(check bool) "conserves" true
    (M.Transfer_plan.conserves_bytes ~bytes:600.0 msgs)

let test_plan_2d () =
  let senders, receivers = procs 3 5 in
  let msgs = M.Transfer_plan.messages ~kind:G.Twod ~bytes:1500.0 ~senders ~receivers in
  Alcotest.(check int) "all-to-all" 15 (List.length msgs);
  List.iter (fun (m : M.Transfer_plan.message) -> check_close "100 each" 100.0 m.bytes) msgs

let test_plan_zero_bytes () =
  let senders, receivers = procs 2 2 in
  Alcotest.(check int) "no messages" 0
    (List.length (M.Transfer_plan.messages ~kind:G.Oned ~bytes:0.0 ~senders ~receivers))

let prop_plan_conserves =
  QCheck.Test.make ~name:"transfer plans conserve bytes" ~count:200
    QCheck.(triple (int_range 1 16) (int_range 1 16) (float_range 1.0 1e6))
    (fun (pi, pj, bytes) ->
      let senders, receivers = procs pi pj in
      List.for_all
        (fun kind ->
          let msgs = M.Transfer_plan.messages ~kind ~bytes ~senders ~receivers in
          M.Transfer_plan.conserves_bytes ~bytes msgs
          && List.for_all (fun (m : M.Transfer_plan.message) -> m.bytes > 0.0) msgs)
        [ G.Oned; G.Twod ])

(* For power-of-two processor sets the 1D plan has exactly max(pi,pj)
   messages, as the paper's cost model assumes. *)
let prop_plan_1d_pow2_message_count =
  QCheck.Test.make ~name:"1D plans have max(pi,pj) messages on powers of two"
    ~count:100
    QCheck.(pair (int_range 0 5) (int_range 0 5))
    (fun (a, b) ->
      let pi = 1 lsl a and pj = 1 lsl b in
      let senders, receivers = procs pi pj in
      let msgs =
        M.Transfer_plan.messages ~kind:G.Oned ~bytes:65536.0 ~senders ~receivers
      in
      List.length msgs = Int.max pi pj)

(* ------------------------------------------------------------------ *)
(* Program + Sim                                                       *)
(* ------------------------------------------------------------------ *)

let test_program_validation () =
  Alcotest.check_raises "bad dst"
    (Invalid_argument "Program.make: Send names a processor outside the machine")
    (fun () ->
      ignore
        (M.Program.make ~procs:2
           [| [ M.Program.Send { edge = 0; dst_proc = 5; bytes = 1.0 } ]; [] |]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Program.make: code length does not match procs") (fun () ->
      ignore (M.Program.make ~procs:2 [| [] |]))

let test_sim_compute_only () =
  let gt = GT.ideal () in
  let prog =
    M.Program.make ~procs:2
      [|
        [ M.Program.Compute { node = 0; seconds = 2.0 } ];
        [ M.Program.Compute { node = 1; seconds = 3.0 } ];
      |]
  in
  let r = M.Sim.run gt prog in
  check_close "finish" 3.0 r.finish_time;
  check_close "p0 busy" 2.0 r.busy.(0);
  check_close "p1 busy" 3.0 r.busy.(1);
  check_close "utilisation" (5.0 /. 6.0) (M.Sim.utilisation r)

let test_sim_send_recv () =
  let gt = GT.ideal () in
  let bytes = 1000.0 in
  let prog =
    M.Program.make ~procs:2
      [|
        [ M.Program.Send { edge = 7; dst_proc = 1; bytes } ];
        [ M.Program.Recv { edge = 7; src_proc = 0; bytes } ];
      |]
  in
  let r = M.Sim.run gt prog in
  let send_t = GT.send_busy gt ~bytes and recv_t = GT.recv_busy gt ~bytes in
  check_close "finish = send + recv" (send_t +. recv_t) r.finish_time;
  Alcotest.(check int) "one message" 1 r.messages_delivered;
  (* Receiver waited for the send. *)
  let waited =
    List.exists
      (fun (s : M.Sim.segment) ->
        match s.activity with M.Sim.Waiting 7 -> s.proc = 1 | _ -> false)
      r.segments
  in
  Alcotest.(check bool) "waiting recorded" true waited

let test_sim_recv_before_send_ok () =
  (* Receiver posts first and blocks; no deadlock. *)
  let gt = GT.ideal () in
  let prog =
    M.Program.make ~procs:2
      [|
        [
          M.Program.Compute { node = 0; seconds = 1.0 };
          M.Program.Send { edge = 0; dst_proc = 1; bytes = 100.0 };
        ];
        [ M.Program.Recv { edge = 0; src_proc = 0; bytes = 100.0 } ];
      |]
  in
  let r = M.Sim.run gt prog in
  Alcotest.(check bool) "receiver finished after 1s" true (r.proc_finish.(1) > 1.0)

let test_sim_message_order_independent () =
  (* Two messages on different edges arrive; recvs posted in the other
     order still match by (edge, src). *)
  let gt = GT.ideal () in
  let prog =
    M.Program.make ~procs:3
      [|
        [ M.Program.Send { edge = 0; dst_proc = 2; bytes = 10.0 } ];
        [
          M.Program.Compute { node = 9; seconds = 0.5 };
          M.Program.Send { edge = 1; dst_proc = 2; bytes = 10.0 };
        ];
        [
          (* Waits for the *later* message first. *)
          M.Program.Recv { edge = 1; src_proc = 1; bytes = 10.0 };
          M.Program.Recv { edge = 0; src_proc = 0; bytes = 10.0 };
        ];
      |]
  in
  let r = M.Sim.run gt prog in
  Alcotest.(check int) "both delivered" 2 r.messages_delivered

let test_sim_local_copy_cheap () =
  let gt = GT.ideal () in
  let bytes = 1e6 in
  let prog =
    M.Program.make ~procs:1
      [|
        [
          M.Program.Send { edge = 0; dst_proc = 0; bytes };
          M.Program.Recv { edge = 0; src_proc = 0; bytes };
        ];
      |]
  in
  let r = M.Sim.run gt prog in
  Alcotest.(check bool) "local copy far cheaper than a real send" true
    (r.finish_time < GT.send_busy gt ~bytes /. 100.0)

let test_sim_deadlock_detected () =
  let gt = GT.ideal () in
  let prog =
    M.Program.make ~procs:2
      [| [ M.Program.Recv { edge = 0; src_proc = 1; bytes = 1.0 } ]; [] |]
  in
  Alcotest.(check bool) "deadlock raised" true
    (try
       ignore (M.Sim.run gt prog);
       false
     with M.Sim.Deadlock _ -> true)

let test_sim_fifo_same_stream () =
  (* Two messages on the same (edge, src, dst) stream: FIFO matching. *)
  let gt = GT.ideal () in
  let prog =
    M.Program.make ~procs:2
      [|
        [
          M.Program.Send { edge = 0; dst_proc = 1; bytes = 10.0 };
          M.Program.Send { edge = 0; dst_proc = 1; bytes = 20.0 };
        ];
        [
          M.Program.Recv { edge = 0; src_proc = 0; bytes = 10.0 };
          M.Program.Recv { edge = 0; src_proc = 0; bytes = 20.0 };
        ];
      |]
  in
  let r = M.Sim.run gt prog in
  Alcotest.(check int) "two messages" 2 r.messages_delivered

let test_sim_node_spans () =
  let gt = GT.ideal () in
  let prog =
    M.Program.make ~procs:2
      [|
        [ M.Program.Compute { node = 5; seconds = 1.0 } ];
        [ M.Program.Compute { node = 5; seconds = 2.0 } ];
      |]
  in
  let r = M.Sim.run gt prog in
  match M.Sim.node_spans r with
  | [ (5, (start, finish)) ] ->
      check_close "start" 0.0 start;
      check_close "finish" 2.0 finish
  | _ -> Alcotest.fail "expected one span"

(* ------------------------------------------------------------------ *)
(* Measure                                                             *)
(* ------------------------------------------------------------------ *)

let test_measure_transfer_matches_model_on_ideal () =
  let gt = GT.ideal () in
  let tr = Costmodel.Params.cm5_transfer in
  List.iter
    (fun (kind, pi, pj) ->
      let bytes = 32768.0 in
      let m = M.Measure.measure_transfer gt ~kind ~p_send:pi ~p_recv:pj ~bytes in
      let c =
        Costmodel.Transfer.components tr ~kind ~bytes ~p_send:(float_of_int pi)
          ~p_recv:(float_of_int pj)
      in
      check_close ~eps:1e-9 "send" c.send m.send;
      check_close ~eps:1e-9 "recv" c.receive m.receive)
    [ (G.Oned, 4, 4); (G.Oned, 2, 8); (G.Oned, 8, 2); (G.Twod, 2, 4) ]

let test_measure_kernel_sweep () =
  let gt = GT.cm5_like () in
  let sweep = M.Measure.kernel_sweep gt (G.Matrix_add 64) ~procs:[ 1; 2; 4 ] in
  Alcotest.(check int) "3 samples" 3 (List.length sweep);
  let t1 = List.assoc 1 sweep and t4 = List.assoc 4 sweep in
  Alcotest.(check bool) "speedup" true (t4 < t1)

let test_calibrate_cm5_close_to_paper () =
  (* Against the perturbed machine the fitted constants land near the
     paper's Tables 1-2 (within a few percent). *)
  let gt = GT.cm5_like () in
  let params, _, tf =
    M.Measure.calibrate gt
      ~procs:[ 1; 2; 4; 8; 16; 32; 64 ]
      [ G.Matrix_add 64; G.Matrix_multiply 64 ]
  in
  let tr = Costmodel.Params.cm5_transfer in
  let within pct a b = Float.abs (a -. b) <= pct *. b in
  Alcotest.(check bool) "t_ss ~ paper" true (within 0.05 tf.params.t_ss tr.t_ss);
  Alcotest.(check bool) "t_ps ~ paper" true (within 0.05 tf.params.t_ps tr.t_ps);
  Alcotest.(check bool) "t_sr ~ paper" true (within 0.05 tf.params.t_sr tr.t_sr);
  Alcotest.(check bool) "t_pr ~ paper" true (within 0.05 tf.params.t_pr tr.t_pr);
  let add = Costmodel.Params.processing params (G.Matrix_add 64) in
  let mul = Costmodel.Params.processing params (G.Matrix_multiply 64) in
  Alcotest.(check bool) "add tau ~ 3.73ms" true (within 0.05 add.tau 3.73e-3);
  Alcotest.(check bool) "mul tau ~ 298.47ms" true (within 0.05 mul.tau 298.47e-3);
  Alcotest.(check bool) "add alpha ~ 6.7%" true (Float.abs (add.alpha -. 0.067) < 0.03);
  Alcotest.(check bool) "mul alpha ~ 12.1%" true (Float.abs (mul.alpha -. 0.121) < 0.03)

let suite =
  [
    Alcotest.test_case "event queue ordering" `Quick test_eq_ordering;
    Alcotest.test_case "event queue FIFO ties" `Quick test_eq_fifo_ties;
    Alcotest.test_case "event queue heap property" `Quick test_eq_many;
    Alcotest.test_case "event queue rejects bad times" `Quick
      test_eq_rejects_bad_time;
    Alcotest.test_case "ground truth serial times (Table 1)" `Quick
      test_gt_serial_times_match_paper;
    Alcotest.test_case "ground truth kernels speed up" `Quick
      test_gt_kernel_monotone;
    Alcotest.test_case "ground truth synthetic exact" `Quick
      test_gt_synthetic_exact_amdahl;
    Alcotest.test_case "ground truth dummy free" `Quick test_gt_dummy_free;
    Alcotest.test_case "ground truth perturbations bounded" `Quick
      test_gt_perturbations_vs_ideal;
    Alcotest.test_case "ground truth message costs" `Quick test_gt_message_costs;
    Alcotest.test_case "plan: 1D equal counts" `Quick test_plan_1d_equal;
    Alcotest.test_case "plan: 1D expanding" `Quick test_plan_1d_expand;
    Alcotest.test_case "plan: 1D contracting" `Quick test_plan_1d_contract;
    Alcotest.test_case "plan: 1D non-aligned" `Quick test_plan_1d_nonaligned;
    Alcotest.test_case "plan: 2D all-to-all" `Quick test_plan_2d;
    Alcotest.test_case "plan: zero bytes" `Quick test_plan_zero_bytes;
    QCheck_alcotest.to_alcotest prop_plan_conserves;
    QCheck_alcotest.to_alcotest prop_plan_1d_pow2_message_count;
    Alcotest.test_case "program validation" `Quick test_program_validation;
    Alcotest.test_case "sim: compute only" `Quick test_sim_compute_only;
    Alcotest.test_case "sim: send/recv handshake" `Quick test_sim_send_recv;
    Alcotest.test_case "sim: recv posted before send" `Quick
      test_sim_recv_before_send_ok;
    Alcotest.test_case "sim: out-of-order recv matching" `Quick
      test_sim_message_order_independent;
    Alcotest.test_case "sim: local copies are cheap" `Quick
      test_sim_local_copy_cheap;
    Alcotest.test_case "sim: deadlock detection" `Quick test_sim_deadlock_detected;
    Alcotest.test_case "sim: FIFO within a stream" `Quick test_sim_fifo_same_stream;
    Alcotest.test_case "sim: node spans" `Quick test_sim_node_spans;
    Alcotest.test_case "measure: ideal transfers match model" `Quick
      test_measure_transfer_matches_model_on_ideal;
    Alcotest.test_case "measure: kernel sweep" `Quick test_measure_kernel_sweep;
    Alcotest.test_case "measure: calibration reproduces Tables 1-2" `Slow
      test_calibrate_cm5_close_to_paper;
  ]

(* Tests for the explicit data-parallel kernel expansion. *)

module G = Mdg.Graph
module M = Machine

let gt = M.Ground_truth.cm5_like ()

let test_expand_serial_matches_aggregate () =
  (* On one processor there is no communication: expansion equals the
     aggregate parallel term; for p = 1 the aggregate is exactly the
     serial time. *)
  List.iter
    (fun kernel ->
      let agg = M.Ground_truth.kernel_time gt kernel ~procs:1 in
      let exp = M.Kernel_expand.simulated_time gt kernel ~procs:1 in
      Alcotest.(check (float 1e-9)) "p=1 identical" agg exp)
    [ G.Matrix_add 64; G.Matrix_multiply 64; G.Matrix_init 128 ]

let test_expand_close_at_small_p () =
  (* At the per-node processor counts the allocator typically picks,
     the expansion stays within 25% of the aggregate model. *)
  List.iter
    (fun procs ->
      let agg = M.Ground_truth.kernel_time gt (G.Matrix_multiply 64) ~procs in
      let exp =
        M.Kernel_expand.simulated_time gt (G.Matrix_multiply 64) ~procs
      in
      Alcotest.(check bool)
        (Printf.sprintf "p=%d ratio %.2f" procs (exp /. agg))
        true
        (exp /. agg > 0.75 && exp /. agg < 1.25))
    [ 1; 2; 4; 8 ]

let test_expand_add_pure_local () =
  (* Aligned adds generate no messages. *)
  let frag =
    M.Kernel_expand.expand gt (G.Matrix_add 64) ~procs:(Array.init 8 Fun.id)
      ~node:5 ~edge_base:0
  in
  List.iter
    (fun (_, ops) ->
      List.iter
        (fun op ->
          match op with
          | M.Program.Compute { node; _ } -> Alcotest.(check int) "labelled" 5 node
          | M.Program.Send _ | M.Program.Recv _ ->
              Alcotest.fail "unexpected communication in an aligned add")
        ops)
    frag

let test_expand_mul_has_allgather () =
  let procs = Array.init 4 Fun.id in
  let frag =
    M.Kernel_expand.expand gt (G.Matrix_multiply 64) ~procs ~node:1 ~edge_base:10
  in
  let sends =
    List.concat_map snd frag
    |> List.filter (function M.Program.Send _ -> true | _ -> false)
  in
  (* Ring allgather: p messages per step, p-1 steps. *)
  Alcotest.(check int) "12 sends" 12 (List.length sends);
  (* All tags within the declared budget. *)
  let budget = M.Kernel_expand.tags_used (G.Matrix_multiply 64) ~procs:4 in
  List.iter
    (function
      | M.Program.Send { edge; _ } ->
          Alcotest.(check bool) "tag in range" true
            (edge >= 10 && edge < 10 + budget)
      | _ -> ())
    sends

let test_expand_dummy_and_synthetic () =
  let procs = Array.init 3 Fun.id in
  let frag = M.Kernel_expand.expand gt G.Dummy ~procs ~node:0 ~edge_base:0 in
  Alcotest.(check int) "dummy empty" 0 (List.length (List.concat_map snd frag));
  let syn = G.Synthetic { alpha = 0.2; tau = 1.0 } in
  let t = M.Kernel_expand.simulated_time gt syn ~procs:4 in
  Alcotest.(check (float 1e-9)) "synthetic aggregate"
    (M.Ground_truth.kernel_time gt syn ~procs:4)
    t

let test_expand_speedup_monotone_small () =
  (* More processors never slow the expansion down in the regime where
     compute dominates. *)
  let t2 = M.Kernel_expand.simulated_time gt (G.Matrix_multiply 128) ~procs:2 in
  let t4 = M.Kernel_expand.simulated_time gt (G.Matrix_multiply 128) ~procs:4 in
  let t8 = M.Kernel_expand.simulated_time gt (G.Matrix_multiply 128) ~procs:8 in
  Alcotest.(check bool) "2 -> 4 faster" true (t4 < t2);
  Alcotest.(check bool) "4 -> 8 faster" true (t8 < t4)

let suite =
  [
    Alcotest.test_case "expand: p=1 equals aggregate" `Quick
      test_expand_serial_matches_aggregate;
    Alcotest.test_case "expand: close to aggregate at small p" `Quick
      test_expand_close_at_small_p;
    Alcotest.test_case "expand: adds are pure local" `Quick
      test_expand_add_pure_local;
    Alcotest.test_case "expand: multiply allgathers" `Quick
      test_expand_mul_has_allgather;
    Alcotest.test_case "expand: dummy/synthetic fallbacks" `Quick
      test_expand_dummy_and_synthetic;
    Alcotest.test_case "expand: speedup at small p" `Quick
      test_expand_speedup_monotone_small;
  ]
